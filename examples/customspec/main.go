// Customspec shows the toolset's kernel-agnostic workflow of paper §III:
// the campaign is defined entirely by two XML artefacts — an API Header
// (Fig. 2) and a Data Type dictionary (Fig. 3) — which a test engineer
// writes by hand for the kernel under test. Here we author both from
// scratch for a two-hypercall sweep with a custom, deliberately hostile
// value set, run the campaign through the public pkg/xmrobust API, and
// render one generated mutant source.
//
//	go run ./examples/customspec
package main

import (
	"fmt"
	"log"

	"xmrobust/pkg/xmrobust"
)

const apiXML = `<?xml version="1.0"?>
<ApiHeader Kernel="XtratuM" Version="3.x (LEON3)">
  <Function Name="XM_reset_system" ReturnType="xm_s32_t" IsPointer="NO" Tested="YES">
    <ParametersList>
      <Parameter Name="mode" Type="xm_u32_t" IsPointer="NO" ValueSet="hostile_modes"/>
    </ParametersList>
  </Function>
  <Function Name="XM_set_timer" ReturnType="xm_s32_t" IsPointer="NO" Tested="YES">
    <ParametersList>
      <Parameter Name="clockId" Type="xm_u32_t" IsPointer="NO"/>
      <Parameter Name="absTime" Type="xmTime_t" IsPointer="NO"/>
      <Parameter Name="interval" Type="xmTime_t" IsPointer="NO"/>
    </ParametersList>
  </Function>
</ApiHeader>`

const dictXML = `<?xml version="1.0"?>
<DataTypes>
  <DataType Name="xm_u32_t">
    <BasicType>unsigned int</BasicType>
    <TestValues>
      <Value>0</Value>
      <Value>1</Value>
      <Value Desc="MAX_U32" Validity="invalid">4294967295</Value>
    </TestValues>
  </DataType>
  <DataType Name="xm_s64_t">
    <BasicType>signed long long</BasicType>
    <TestValues>
      <Value>1</Value>
      <Value Desc="MIN_S64" Validity="invalid">-9223372036854775808</Value>
    </TestValues>
  </DataType>
  <ValueSet Name="hostile_modes">
    <Value>2</Value>
    <Value>16</Value>
    <Value Desc="MAX_U32" Validity="invalid">4294967295</Value>
  </ValueSet>
</DataTypes>`

func main() {
	header, err := xmrobust.ParseHeader([]byte(apiXML))
	if err != nil {
		log.Fatal(err)
	}
	d, err := xmrobust.ParseDict([]byte(dictXML))
	if err != nil {
		log.Fatal(err)
	}

	datasets, err := xmrobust.Generate(header, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-authored campaign: %d datasets over %d hypercalls\n\n",
		len(datasets), len(header.Tested()))

	fmt.Println("first generated mutant source:")
	fmt.Println(xmrobust.RenderMutantC(datasets[0]))

	results, err := xmrobust.RunDatasets(datasets,
		xmrobust.WithHeader(header), xmrobust.WithDict(d))
	if err != nil {
		log.Fatal(err)
	}
	issues, err := xmrobust.Classify(results)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(xmrobust.SummarizeIssues(issues))
}
