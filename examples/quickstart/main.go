// Quickstart: boot the EagleEye TSP testbed on the simulated LEON3, watch
// the synthetic on-board software fly for a second of virtual time, then
// throw the paper's sharpest dataset at the kernel and watch the health
// monitor catch it — entirely through the public pkg/xmrobust API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xmrobust/pkg/xmrobust"
)

func main() {
	// 1. Boot the five-partition EagleEye system (250 ms major frame,
	//    FDIR as the only system partition) on a legacy XtratuM-like
	//    kernel and run four cyclic schedules.
	k, err := xmrobust.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if err := k.RunMajorFrames(4); err != nil {
		log.Fatal(err)
	}
	st := k.Status()
	fmt.Printf("nominal mission: %d major frames, kernel %s, %d hypercalls served\n",
		st.MAFCount, st.State, k.HypercallCount())
	rep, _ := xmrobust.TestbedStatus(k)
	fmt.Printf("FDIR saw %d partitions up, drained %d downlink frames\n\n",
		rep.PartitionsUp, rep.FramesDrained)

	// 2. Generate the test datasets for one hypercall with the data type
	//    fault model (paper Fig. 4/5 pipeline).
	header := xmrobust.DefaultHeader()
	f, _ := header.Function("XM_set_timer")
	matrix, err := xmrobust.BuildMatrix(f, xmrobust.BuiltinDict())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XM_set_timer: %d datasets from the type dictionaries (Eq. 1)\n",
		matrix.Combinations())

	// 3. Inject each dataset from the FDIR partition on a fresh testbed
	//    and report what the kernel did.
	for _, ds := range matrix.Datasets() {
		res, err := xmrobust.RunOne(ds)
		if err != nil {
			log.Fatal(err)
		}
		outcome := "robust"
		switch {
		case res.SimCrashed:
			outcome = "SIMULATOR CRASH: " + res.CrashReason
		case res.KernelState == xmrobust.KStateHalted:
			outcome = "XM HALT: " + res.KernelHalt
		default:
			if rc, ok := res.LastReturn(); ok {
				outcome = rc.String()
			}
		}
		fmt.Printf("  %-70s -> %s\n", ds, outcome)
	}
	fmt.Println("\nRun cmd/xmfuzz for the full 2616-test campaign.")
}
