// Fdir-recovery demonstrates the separation-kernel dependability
// mechanisms of paper §II on the EagleEye testbed: a payload partition
// goes rogue and violates spatial separation; the health monitor contains
// the fault (the partition is halted, the victim's memory is untouched);
// the FDIR system partition detects the halt through the HM log and
// recovers the partition with a warm reset — while the rest of the
// spacecraft keeps flying its cyclic schedule undisturbed. Everything
// runs through the public pkg/xmrobust API.
//
//	go run ./examples/fdir-recovery
package main

import (
	"fmt"
	"log"

	"xmrobust/pkg/xmrobust"
)

// roguePayload behaves nominally for two frames, then writes into the
// PLATFORM partition's memory.
type roguePayload struct{ cycle int }

func (r *roguePayload) Boot(env xmrobust.Env) {}

func (r *roguePayload) Step(env xmrobust.Env) bool {
	r.cycle++
	env.Compute(3000)
	if r.cycle == 3 {
		// Spatial separation violation: PLATFORM's data area.
		env.Write(xmrobust.DefaultRAMBase+0x100000, []byte{0xDE, 0xAD})
	}
	return false
}

func main() {
	k, err := xmrobust.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if err := k.AttachProgram(xmrobust.Payload, &roguePayload{}); err != nil {
		log.Fatal(err)
	}

	for frame := 1; frame <= 6; frame++ {
		if err := k.RunMajorFrames(1); err != nil {
			log.Fatal(err)
		}
		ps, _ := k.PartitionStatus(xmrobust.Payload)
		fmt.Printf("frame %d: PAYLOAD %-9s boots=%d\n", frame, ps.State, ps.BootCount)
	}

	fmt.Println("\nhealth monitor log:")
	for _, e := range k.HMEntries() {
		fmt.Printf("  %s\n", e)
	}

	rep, err := xmrobust.TestbedStatus(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFDIR observations: %d HM entries read, %d partitions recovered\n",
		rep.HMEntriesSeen, rep.Recovered)

	// The victim partition's memory was never touched: fault containment.
	b, err := k.ReadGuest(xmrobust.Platform, xmrobust.DefaultRAMBase+0x100000, 2)
	if err != nil {
		log.Fatal(err)
	}
	if b[0] == 0xDE {
		fmt.Println("FAULT PROPAGATED — spatial separation broken!")
	} else {
		fmt.Println("victim memory untouched: spatial separation held")
	}
	ps, _ := k.PartitionStatus(xmrobust.Payload)
	fmt.Printf("final PAYLOAD state: %s after %d boots\n", ps.State, ps.BootCount)
}
