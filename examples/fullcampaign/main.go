// Fullcampaign reproduces the paper's complete case study end to end:
// the 2616-test data-type fault-model campaign against the legacy
// XtratuM-like kernel, the Table III aggregation, the CRASH tally, the
// nine §IV.C issues — and then the same campaign against the patched
// kernel as the fault-removal ablation.
//
//	go run ./examples/fullcampaign
package main

import (
	"fmt"
	"log"
	"time"

	"xmrobust/internal/campaign"
	"xmrobust/internal/core"
	"xmrobust/internal/report"
	"xmrobust/internal/xm"
)

func run(name string, faults xm.FaultSet) *core.CampaignReport {
	start := time.Now()
	rep, err := core.RunCampaign(campaign.Options{Faults: faults})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s kernel: campaign of %d tests in %v ===\n\n",
		name, len(rep.Results), time.Since(start).Round(time.Millisecond))
	return rep
}

func main() {
	legacy := run("legacy", xm.LegacyFaults())
	fmt.Println(report.Full(legacy))

	patched := run("patched", xm.PatchedFaults())
	fmt.Println(report.TableIII(patched))
	fmt.Printf("fault-removal ablation: %d issues on the legacy kernel, %d after the fixes\n",
		len(legacy.Issues), len(patched.Issues))
}
