// Fullcampaign reproduces the paper's complete case study end to end
// through the public pkg/xmrobust API: the 2616-test data-type
// fault-model campaign against the legacy XtratuM-like kernel, the Table
// III aggregation, the CRASH tally, the nine §IV.C issues — and then the
// same campaign against the patched kernel as the fault-removal
// ablation.
//
//	go run ./examples/fullcampaign
package main

import (
	"fmt"
	"log"
	"time"

	"xmrobust/pkg/xmrobust"
)

func run(name string, opts ...xmrobust.Option) *xmrobust.Report {
	start := time.Now()
	rep, err := xmrobust.Run(opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s kernel: campaign of %d tests in %v ===\n\n",
		name, rep.Total(), time.Since(start).Round(time.Millisecond))
	return rep
}

func main() {
	// Batched execution leases runs of 16 tests per worker slot on the
	// copy-on-write snapshot pool — the fast path; results are
	// byte-identical to the unbatched engine.
	legacy := run("legacy", xmrobust.WithFaults(xmrobust.LegacyFaults()),
		xmrobust.WithSnapshotPool(false), xmrobust.WithBatchSize(16))
	fmt.Println(legacy.Summary())

	patched := run("patched", xmrobust.WithPatchedKernel(),
		xmrobust.WithBatchSize(16))
	fmt.Println(patched.TableText())
	fmt.Printf("fault-removal ablation: %d issues on the legacy kernel, %d after the fixes\n",
		len(legacy.Issues()), len(patched.Issues()))
}
