package xmrobust

import (
	"fmt"
	"io"

	"xmrobust/internal/analysis"
	"xmrobust/internal/campaign"
	"xmrobust/internal/core"
	"xmrobust/internal/report"
)

// Report is the outcome of one campaign, wrapping either the eager
// report (every Result in memory) or the streamed report (aggregates
// only; the raw logs live in the checkpoint directory's shards).
type Report struct {
	eager    *core.CampaignReport
	stream   *core.StreamReport
	shardDir string
}

// Streamed reports whether the campaign ran through the sharded engine
// (WithCheckpoint); only eager reports retain per-test Results in
// memory.
func (r *Report) Streamed() bool { return r.stream != nil }

// Summary renders the complete campaign report: the plan line, Table
// III, the CRASH tally, the issue list, and the coverage and divergence
// sections when the campaign produced them.
func (r *Report) Summary() string {
	if r.stream != nil {
		return report.StreamSummary(r.stream)
	}
	return report.Full(r.eager)
}

// TableText renders the paper's Table III for this campaign.
func (r *Report) TableText() string {
	if r.stream != nil {
		return report.StreamTableIII(r.stream)
	}
	return report.TableIII(r.eager)
}

// TableCSV renders Table III as CSV.
func (r *Report) TableCSV() string {
	if r.stream != nil {
		return report.StreamTableIIICSV(r.stream)
	}
	return report.TableIIICSV(r.eager)
}

// IssuesText renders the clustered issue list (§IV.C).
func (r *Report) IssuesText() string { return analysis.Summary(r.Issues()) }

// Issues returns the clustered issue list.
func (r *Report) Issues() []Issue {
	if r.stream != nil {
		return r.stream.Issues
	}
	return r.eager.Issues
}

// Results returns every execution log of an eager campaign, in campaign
// order (nil for streamed campaigns — their logs live in the shard
// files; see WriteLog).
func (r *Report) Results() []Result {
	if r.eager == nil {
		return nil
	}
	return r.eager.Results
}

// Total returns the campaign size; Executed how many tests ran in this
// call; Skipped how many were restored from a checkpoint.
func (r *Report) Total() int {
	if r.stream != nil {
		return r.stream.Total
	}
	return len(r.eager.Results)
}

// Executed returns the number of tests executed by this call.
func (r *Report) Executed() int {
	if r.stream != nil {
		return r.stream.Executed
	}
	return len(r.eager.Results)
}

// Skipped returns the number of tests restored from the checkpoint.
func (r *Report) Skipped() int {
	if r.stream != nil {
		return r.stream.Skipped
	}
	return 0
}

// HarnessErrors counts tests that failed in the harness rather than the
// kernel — the campaign-health signal command-line tools gate their exit
// status on. Robustness findings are the product, not errors.
func (r *Report) HarnessErrors() int {
	if r.stream != nil {
		return r.stream.HarnessErrors
	}
	n := 0
	for _, res := range r.eager.Results {
		if res.RunErr != "" {
			n++
		}
	}
	return n
}

// Divergences returns the diff-target disagreements of the campaign, in
// campaign order (empty outside diff targets).
func (r *Report) Divergences() []DivergenceFinding {
	if r.stream != nil {
		return r.stream.Divergences
	}
	return r.eager.Divergences
}

// MaskingText renders the fault-masking study (paper Fig. 7). It needs
// every classified result in memory and is therefore only available on
// eager campaigns.
func (r *Report) MaskingText() (string, error) {
	if r.eager == nil {
		return "", fmt.Errorf("xmrobust: the masking study requires an eager campaign (drop WithCheckpoint)")
	}
	return analysis.MaskingSummary(analysis.MaskingStudy(r.eager.Classified)), nil
}

// WriteLog writes the raw campaign log to w as JSON Lines, one
// self-contained record per test in campaign order, returning the record
// count. Streamed campaigns merge their shard files; eager campaigns
// serialise their in-memory results — the byte streams are identical for
// identical campaigns.
func (r *Report) WriteLog(w io.Writer) (int, error) {
	if r.stream != nil {
		return campaign.MergeShards(r.shardDir, w)
	}
	if err := campaign.WriteJSON(w, r.eager.Results); err != nil {
		return 0, err
	}
	return len(r.eager.Results), nil
}
