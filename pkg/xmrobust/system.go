package xmrobust

import (
	"xmrobust/internal/eagleeye"
	"xmrobust/internal/xm"
	"xmrobust/internal/xmcfg"
)

// SystemOption configures NewSystem.
type SystemOption func(*sysConfig)

type sysConfig struct {
	faults    FaultSet
	hasFaults bool
	configXML []byte
}

// WithSystemFaults boots the system on the given kernel version (default
// LegacyFaults).
func WithSystemFaults(fs FaultSet) SystemOption {
	return func(c *sysConfig) { c.faults, c.hasFaults = fs, true }
}

// WithConfigXML boots an XM_CF-style XML system description with empty
// partitions instead of the EagleEye testbed — useful for schedule and
// configuration validation.
func WithConfigXML(data []byte) SystemOption {
	return func(c *sysConfig) { c.configXML = data }
}

// NewSystem boots a TSP system ready to run: by default the
// five-partition EagleEye testbed with its synthetic on-board software
// on the legacy kernel — the simulated equivalent of launching TSIM with
// a packed XtratuM image. The returned kernel exposes the full system
// surface: RunMajorFrames, Status, PartitionStatus, HMEntries,
// AttachProgram, guest memory access.
func NewSystem(options ...SystemOption) (*Kernel, error) {
	var cfg sysConfig
	for _, o := range options {
		o(&cfg)
	}
	faults := xm.LegacyFaults()
	if cfg.hasFaults {
		faults = cfg.faults
	}
	if cfg.configXML == nil {
		return eagleeye.NewSystem(xm.WithFaults(faults))
	}
	parsed, err := xmcfg.Parse(cfg.configXML)
	if err != nil {
		return nil, err
	}
	return xm.New(parsed, xm.WithFaults(faults))
}
