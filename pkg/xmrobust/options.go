package xmrobust

import (
	"context"
	"fmt"
	"time"

	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
	"xmrobust/internal/inject"
	"xmrobust/internal/target"
)

// Option configures a campaign run (functional options over
// campaign.Options and the streaming engine).
type Option func(*config)

// config collects the campaign and engine configuration an option list
// builds.
type config struct {
	opts      campaign.Options
	eng       campaign.EngineOptions
	fn        string
	injectSet bool
}

// build folds an option list into the resolved configuration.
func build(options []Option) (config, error) {
	var cfg config
	for _, o := range options {
		o(&cfg)
	}
	if cfg.injectSet {
		// Reject out-of-range rates here rather than at target
		// construction: a rate of 0 would otherwise silently select the
		// schedule default of 1 — the opposite of what the caller asked.
		// Negated form so NaN fails too.
		if r := cfg.opts.Inject.Rate; !(r > 0 && r <= 1) {
			return cfg, fmt.Errorf("xmrobust: injection rate %v outside (0, 1]", r)
		}
		// And reject a schedule aimed at a target that never injects —
		// the silent alternative is a user believing they ran an SEU
		// campaign when zero faults were injected (the WithCorpus /
		// feedback-plan pairing is policed the same way).
		tgt, err := target.New(cfg.opts.Target, target.Config{Inject: cfg.opts.Inject})
		if err != nil {
			return cfg, err
		}
		is, ok := tgt.(interface{ InjectSignature() string })
		if !ok || is.InjectSignature() == "" {
			return cfg, fmt.Errorf("xmrobust: WithInjection requires an inject:* target, not %q", tgt.Name())
		}
	}
	if cfg.fn != "" {
		base := apispec.Default()
		if cfg.opts.Header != nil {
			base = cfg.opts.Header
		}
		// Rewrite the tested selection on a copy — the caller's header
		// (WithHeader) must not be mutated behind their back.
		header := *base
		header.Functions = append([]apispec.Function(nil), base.Functions...)
		found := false
		for i := range header.Functions {
			tested := header.Functions[i].Name == cfg.fn
			if tested {
				found = true
			}
			header.Functions[i].Tested = map[bool]string{true: "YES", false: "NO"}[tested]
		}
		if !found {
			return cfg, fmt.Errorf("xmrobust: unknown hypercall %q", cfg.fn)
		}
		cfg.opts.Header = &header
	}
	cfg.eng.Options = cfg.opts
	return cfg, nil
}

// WithPlan selects the test-generation strategy: "exhaustive" (default,
// the paper's full Eq. 1 product), "pairwise", "rand:N", "boundary",
// "feedback:N" (coverage-guided), "phantom" (the §V extension suite), or
// any strategy registered with the testgen registries. See Plans.
func WithPlan(spec string) Option { return func(c *config) { c.opts.Plan = spec } }

// WithTarget selects the execution backend: "sim" (default, the
// simulated LEON3 testbed), "phantom" (the analytical kernel model), or
// "diff:a,b" (execute on both, record divergences). See Targets.
func WithTarget(spec string) Option { return func(c *config) { c.opts.Target = spec } }

// WithSeed feeds randomised plans (rand:N, feedback:N); deterministic
// strategies ignore it.
func WithSeed(seed int64) Option { return func(c *config) { c.opts.Seed = seed } }

// WithCoverage collects kernel edge coverage per test (feedback plans
// force it on).
func WithCoverage() Option { return func(c *config) { c.opts.Coverage = true } }

// WithInjection arms the SEU schedule of an inject:* target: rate is the
// fraction of tests injected (in (0, 1]) and sites restricts the flip
// sites ("ram", "mmu", "iu", "timer", "clock"; none listed: all). The
// schedule is keyed by WithSeed, so one seed reproduces both the test
// plan and the fault sequence. Requires a target that injects (an
// inject:* spec, possibly diff-wrapped) — pairing it with any other
// backend is rejected up front rather than silently injecting nothing.
// Inject targets run without it at the default schedule (every test
// injected, all sites).
func WithInjection(rate float64, sites ...string) Option {
	return func(c *config) {
		c.opts.Inject = inject.Params{Rate: rate, Sites: sites}
		c.injectSet = true
	}
}

// WithCorpus attaches the feedback plan's JSON Lines corpus file:
// previously admitted datasets load as mutation parents, new admissions
// append. Only valid with WithPlan("feedback:N").
func WithCorpus(path string) Option { return func(c *config) { c.opts.Corpus = path } }

// WithMAFs sets the number of major frames each test runs for (default
// 2).
func WithMAFs(n int) Option { return func(c *config) { c.opts.MAFs = n } }

// WithWorkers sets the engine parallelism (default GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *config) { c.opts.Workers = n } }

// WithStress pre-loads the system before injection (paper §V): one
// warm-up frame with saturated IPC queues.
func WithStress() Option { return func(c *config) { c.opts.Stress = true } }

// WithFaults selects the kernel version under test (default
// LegacyFaults, the version the paper tested).
func WithFaults(fs FaultSet) Option { return func(c *config) { c.opts.Faults = fs } }

// WithPatchedKernel tests the revised kernel the XtratuM team shipped
// after the campaign (the fault-removal ablation).
func WithPatchedKernel() Option { return func(c *config) { c.opts.Faults = PatchedFaults() } }

// WithHeader sets the API spec with the tested selection (default: the
// paper's Fig. 2 header).
func WithHeader(h *Header) Option { return func(c *config) { c.opts.Header = h } }

// WithDict sets the data-type value dictionary (default: the paper's
// Fig. 3/Table II dictionaries).
func WithDict(d *Dictionary) Option { return func(c *config) { c.opts.Dict = d } }

// WithFunction restricts the campaign to one hypercall.
func WithFunction(name string) Option { return func(c *config) { c.fn = name } }

// WithProgress installs a (done, total) callback invoked after every
// test.
func WithProgress(fn func(done, total int)) Option {
	return func(c *config) { c.opts.Progress = fn }
}

// WithCheckpoint streams the campaign through the sharded engine:
// execution logs land in JSON Lines shards under dir, and a checkpoint
// file tracks completed tests so WithResume continues an interrupted
// campaign. MergeLog (or Report.WriteLog) restores the single merged
// log.
func WithCheckpoint(dir string) Option { return func(c *config) { c.eng.ShardDir = dir } }

// WithResume resumes an interrupted campaign from its WithCheckpoint
// state. The checkpoint refuses a plan, seed or target mismatch by name.
func WithResume() Option { return func(c *config) { c.eng.Resume = true } }

// WithShards sets the shard-writer count of a checkpointed campaign
// (default: the worker count).
func WithShards(n int) Option { return func(c *config) { c.eng.Shards = n } }

// WithFreshMachines disables machine pooling on the sim target: every
// test executes on a freshly allocated simulated machine.
func WithFreshMachines() Option { return func(c *config) { c.eng.FreshMachines = true } }

// WithBatchSize leases contiguous runs of n tests to each engine worker
// on targets that batch (the sim backend): the machine rewinds through a
// copy-on-write snapshot and the testbed kernel recycles in place
// between the lease's tests, amortising per-test setup across the run.
// Results are byte-identical to unbatched execution — the capability's
// contract, pinned by the engine's batching tests. Targets without the
// capability and feedback-driven plans ignore it.
func WithBatchSize(n int) Option { return func(c *config) { c.eng.BatchSize = n } }

// WithSnapshotPool selects the copy-on-write snapshot recycler for the
// campaign's machines (the default pool), overriding WithFreshMachines
// and the legacy reset-and-verify pool. strict makes every recycle audit
// the full machine image instead of the sampled stride — slow, for
// isolation studies.
func WithSnapshotPool(strict bool) Option {
	return func(c *config) {
		c.eng.FreshMachines = false
		c.eng.LegacyPool = false
		c.eng.PoolStrict = strict
	}
}

// WithCodec selects the record codec checkpointed campaigns write their
// shard files with: "json" (the encoding/json reference, the default) or
// "raw" (the hand-rolled allocation-free encoder). Every codec produces
// the same wire format byte for byte — the choice affects encoding cost
// only, never what a campaign log contains.
func WithCodec(name string) Option { return func(c *config) { c.eng.Codec = name } }

// WithLimit stops dispatching after n tests this call (0: run
// everything); combined with WithCheckpoint it gives budgeted runs the
// same semantics as an interruption.
func WithLimit(n int) Option { return func(c *config) { c.eng.Limit = n } }

// WithStore routes a checkpointed campaign's persistence — checkpoint,
// log shards, corpus — through the given store instead of the local
// filesystem. The seam distributed campaigns use when shards live away
// from the coordinating process; NewMemStore() gives ephemeral runs.
func WithStore(s Store) Option { return func(c *config) { c.eng.Store = s } }

// WithObs attaches an observability handle to the campaign: the engine,
// lease coordinator and execution targets publish metrics into its
// registry and live progress into its snapshot, and checkpointed
// campaigns stream span-style trace events into the shard directory.
// Serve the handle over HTTP with ServeOps. Nil — the default — keeps
// the hot path at one nil check per event (pinned by
// BenchmarkObsOverhead).
func WithObs(o *Obs) Option { return func(c *config) { c.eng.Obs = o } }

// WithContext arms cooperative cancellation: once ctx is done the
// engine stops issuing work, in-flight tests finish (remote leases are
// abandoned), shards flush, and Run returns ctx's error — with
// WithCheckpoint the interrupted campaign is durable, and WithResume
// replays it to a byte-identical merged log. A nil ctx (the default)
// runs the campaign to completion unconditionally.
func WithContext(ctx context.Context) Option { return func(c *config) { c.eng.Ctx = ctx } }

// WithLeaseTTL arms the coordinator's deadline-based lease reclaim:
// a leased range not completed within d is re-issued to another worker.
// The engine deduplicates re-executed tests by sequence number, so the
// merged log stays byte-identical to a single-worker run. Zero (the
// default) trusts workers to hand leases back on failure — the remote
// backend does — and reclaims nothing; feedback plans force 0, because
// re-breeding from a reclaimed range would fork the schedule.
func WithLeaseTTL(d time.Duration) Option { return func(c *config) { c.eng.LeaseTTL = d } }
