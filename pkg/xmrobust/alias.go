package xmrobust

// This file re-exports the vocabulary of the internal packages that the
// public API traffics in. Aliases keep the facade thin — a Result built
// by the campaign engine IS a xmrobust.Result — while external importers
// never name an internal package.

import (
	"xmrobust/internal/analysis"
	"xmrobust/internal/apispec"
	"xmrobust/internal/core"
	"xmrobust/internal/dict"
	"xmrobust/internal/eagleeye"
	"xmrobust/internal/inject"
	"xmrobust/internal/obs"
	"xmrobust/internal/sparc"
	"xmrobust/internal/store"
	"xmrobust/internal/target"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// Core campaign vocabulary.
type (
	// Result is the execution log of one test case.
	Result = target.Result
	// Divergence is a diff-target disagreement between two backends.
	Divergence = target.Divergence
	// DivergenceFinding locates a divergence in a campaign.
	DivergenceFinding = core.DivergenceFinding
	// Injection is the SEU record of one inject-target run: where the
	// schedule flipped a bit and how the outcome compared to the clean
	// reference leg.
	Injection = inject.Injection
	// InjectionStudy is the per-site outcome tally of an SEU campaign.
	InjectionStudy = analysis.InjectionStudy
	// Dataset is one generated test case: a hypercall with one value per
	// parameter (and, for §V extension tests, a phantom state).
	Dataset = testgen.Dataset
	// Matrix is the per-hypercall test_value_matrix of paper Fig. 5.
	Matrix = testgen.Matrix
	// Issue is one clustered robustness finding.
	Issue = analysis.Issue
	// Header is the API specification (paper Fig. 2).
	Header = apispec.Header
	// Dictionary is the data-type test-value dictionary (paper Fig. 3).
	Dictionary = dict.Dictionary
	// FaultSet selects the kernel version under test.
	FaultSet = xm.FaultSet
	// Store is the persistence seam of checkpointed campaigns: where
	// checkpoints, log shards and corpus files live (WithStore). The
	// default is the local filesystem; NewMemStore keeps everything in
	// memory.
	Store = store.Store
)

// Observability vocabulary (WithObs, ServeOps).
type (
	// Obs bundles one process's observability spine — metrics registry,
	// trace-event stream, live progress — attached to a campaign with
	// WithObs and served over HTTP with ServeOps.
	Obs = obs.Obs
	// OpsServer is the HTTP server ServeOps starts: /metrics (Prometheus
	// text), /healthz, /progress (JSON) and /debug/pprof.
	OpsServer = obs.OpsServer
	// ProgressSnapshot is one point-in-time view of a running campaign:
	// done/total, throughput, ETA and per-outcome tallies.
	ProgressSnapshot = obs.Snapshot
)

// Simulated-system vocabulary (NewSystem, guest programs).
type (
	// Kernel is a booted TSP system: the XtratuM-like separation kernel
	// hosting its partitions on the simulated LEON3 machine.
	Kernel = xm.Kernel
	// Env is the execution environment a guest program runs in.
	Env = xm.Env
	// RetCode is the signed 32-bit hypercall return code.
	RetCode = xm.RetCode
	// KState is the hypervisor execution state; PState a partition's.
	KState = xm.KState
	PState = xm.PState
	// Addr is a physical address of the simulated machine.
	Addr = sparc.Addr
	// TestbedReport is the FDIR partition's view of the EagleEye testbed.
	TestbedReport = eagleeye.FDIRReport
)

// Kernel and partition states.
const (
	KStateRunning = xm.KStateRunning
	KStateHalted  = xm.KStateHalted

	PStateNormal    = xm.PStateNormal
	PStateSuspended = xm.PStateSuspended
	PStateHalted    = xm.PStateHalted
)

// EagleEye testbed partition ids and landmark addresses.
const (
	Platform = eagleeye.Platform
	Payload  = eagleeye.Payload
	GNC      = eagleeye.GNC
	TMTC     = eagleeye.TMTC
	FDIR     = eagleeye.FDIR

	DefaultRAMBase = sparc.DefaultRAMBase
)

// Re-exported constructors and helpers of the preparation and analysis
// phases.
var (
	// LegacyFaults is the kernel version the paper tested; PatchedFaults
	// the revised kernel shipped after the campaign.
	LegacyFaults  = xm.LegacyFaults
	PatchedFaults = xm.PatchedFaults

	// DefaultHeader returns the paper's Fig. 2 API spec; BuiltinDict the
	// Fig. 3/Table II dictionaries. ParseHeader and ParseDict load
	// hand-authored XML artefacts (the kernel-agnostic workflow of
	// paper §III).
	DefaultHeader = apispec.Default
	BuiltinDict   = dict.Builtin
	ParseHeader   = apispec.Parse
	ParseDict     = dict.Parse

	// Generate materialises the full Eq. 1 dataset list of a spec;
	// BuildMatrix the per-hypercall value matrix; RenderMutantC one
	// dataset's mutant source.
	Generate      = testgen.Generate
	BuildMatrix   = testgen.BuildMatrix
	RenderMutantC = testgen.RenderMutantC

	// SummarizeIssues renders an issue list as the §IV.C findings
	// section.
	SummarizeIssues = analysis.Summary

	// TestbedStatus reads the FDIR partition's testbed report out of a
	// running EagleEye system.
	TestbedStatus = eagleeye.Report

	// LocalStore is the default campaign persistence (plain files);
	// NewMemStore builds an in-memory store for tests and ephemeral
	// campaigns (see WithStore).
	LocalStore  = store.Local
	NewMemStore = store.NewMem

	// NewObs builds an observability handle (WithObs); ServeOps exposes
	// one over HTTP — /metrics, /healthz, /progress, /debug/pprof.
	NewObs   = obs.New
	ServeOps = obs.ListenAndServe
)
