package xmrobust_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"xmrobust/internal/campaign"
	"xmrobust/pkg/xmrobust"
)

// TestGoldenFacadeMatchesCampaignRun is the refactor's golden test: a
// seeded sim campaign through the public facade (streamed, sharded,
// checkpointed) must produce a merged JSON Lines log byte-identical to
// the log of the pre-refactor campaign.Run path (eager, in-memory,
// WriteJSON).
func TestGoldenFacadeMatchesCampaignRun(t *testing.T) {
	const plan, seed = "rand:60", int64(42)

	results, err := campaign.Run(campaign.Options{Plan: plan, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := campaign.WriteJSON(&want, results); err != nil {
		t.Fatal(err)
	}

	rep, err := xmrobust.Run(
		xmrobust.WithPlan(plan),
		xmrobust.WithSeed(seed),
		xmrobust.WithTarget("sim"),
		xmrobust.WithCheckpoint(t.TempDir()),
	)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	n, err := rep.WriteLog(&got)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(results) {
		t.Fatalf("facade log has %d records, campaign.Run produced %d", n, len(results))
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("facade merged log differs from the campaign.Run log")
	}
	// The default backend serialises as the target field's absence —
	// the contract that keeps sim logs byte-identical to logs written
	// before the target layer existed.
	if bytes.Contains(got.Bytes(), []byte(`"target"`)) {
		t.Fatal("sim records carry an explicit target field, breaking pre-target-layer log compatibility")
	}
}

// TestResumeRefusesTargetMismatch pins the checkpoint acceptance
// criterion: a campaign checkpointed on one backend refuses to resume on
// another, naming both.
func TestResumeRefusesTargetMismatch(t *testing.T) {
	dir := t.TempDir()
	base := []xmrobust.Option{
		xmrobust.WithPlan("rand:6"),
		xmrobust.WithSeed(1),
		xmrobust.WithMAFs(1),
		xmrobust.WithCheckpoint(dir),
	}
	if _, err := xmrobust.Run(append(base, xmrobust.WithTarget("sim"))...); err != nil {
		t.Fatal(err)
	}
	_, err := xmrobust.Run(append(base,
		xmrobust.WithTarget("phantom"), xmrobust.WithResume())...)
	if err == nil {
		t.Fatal("resume on a different target was accepted")
	}
	if !strings.Contains(err.Error(), `"sim"`) || !strings.Contains(err.Error(), `"phantom"`) {
		t.Fatalf("mismatch error does not name both targets: %v", err)
	}
	// Resuming on the recorded target still works.
	rep, err := xmrobust.Run(append(base,
		xmrobust.WithTarget("sim"), xmrobust.WithResume())...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped() != 6 || rep.Executed() != 0 {
		t.Fatalf("resume skipped %d / executed %d, want 6 / 0", rep.Skipped(), rep.Executed())
	}
}

func TestInventoriesListPlansAndTargets(t *testing.T) {
	plans := map[string]bool{}
	for _, p := range xmrobust.Plans() {
		plans[p.Name] = true
		if p.Desc == "" {
			t.Errorf("plan %q has no description", p.Name)
		}
	}
	for _, want := range []string{"exhaustive", "pairwise", "rand", "boundary", "feedback", "phantom"} {
		if !plans[want] {
			t.Errorf("plan inventory lacks %q", want)
		}
	}
	targets := map[string]bool{}
	for _, tg := range xmrobust.Targets() {
		targets[tg.Name] = true
	}
	for _, want := range []string{"sim", "phantom", "diff"} {
		if !targets[want] {
			t.Errorf("target inventory lacks %q", want)
		}
	}
}

func TestDiffCampaignReportsDivergences(t *testing.T) {
	rep, err := xmrobust.Run(
		xmrobust.WithPlan("rand:30"),
		xmrobust.WithSeed(7),
		xmrobust.WithMAFs(1),
		xmrobust.WithTarget("diff:sim,phantom"),
	)
	if err != nil {
		t.Fatal(err)
	}
	divs := rep.Divergences()
	if len(divs) == 0 {
		t.Fatal("diff campaign over the legacy kernel found no divergences")
	}
	for i := 1; i < len(divs); i++ {
		if divs[i].Seq <= divs[i-1].Seq {
			t.Fatalf("divergences out of campaign order: %d after %d", divs[i].Seq, divs[i-1].Seq)
		}
	}
	if !strings.Contains(rep.Summary(), "DIVERGENCES") {
		t.Fatal("summary lacks the divergence section")
	}
	// Determinism: the same seeded diff campaign reproduces the same
	// divergence set (the property make diff-smoke pins in CI).
	rep2, err := xmrobust.Run(
		xmrobust.WithPlan("rand:30"),
		xmrobust.WithSeed(7),
		xmrobust.WithMAFs(1),
		xmrobust.WithTarget("diff:sim,phantom"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary() != rep2.Summary() {
		t.Fatal("seeded diff campaign is not deterministic")
	}
}

func TestPhantomPlanOnPhantomTarget(t *testing.T) {
	// The §V suite runs on the model too: 50 predictions, no simulator.
	rep, err := xmrobust.Run(
		xmrobust.WithPlan("phantom"),
		xmrobust.WithTarget("phantom"),
		xmrobust.WithMAFs(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 50 {
		t.Fatalf("phantom plan = %d tests, want 50", rep.Total())
	}
	if n := rep.HarnessErrors(); n != 0 {
		t.Fatalf("%d harness errors", n)
	}
}

func TestRunOneAndClassify(t *testing.T) {
	header := xmrobust.DefaultHeader()
	f, ok := header.Function("XM_set_timer")
	if !ok {
		t.Fatal("no XM_set_timer")
	}
	m, err := xmrobust.BuildMatrix(f, xmrobust.BuiltinDict())
	if err != nil {
		t.Fatal(err)
	}
	res, err := xmrobust.RunOne(m.Datasets()[0], xmrobust.WithMAFs(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != "" {
		t.Fatal(res.RunErr)
	}
	issues, err := xmrobust.Classify([]xmrobust.Result{res})
	if err != nil {
		t.Fatal(err)
	}
	_ = issues // one benign test may legitimately raise nothing
}

func TestWithFunctionRestrictsCampaign(t *testing.T) {
	rep, err := xmrobust.Run(
		xmrobust.WithFunction("XM_get_time"),
		xmrobust.WithMAFs(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results() {
		if res.Dataset.Func.Name != "XM_get_time" {
			t.Fatalf("campaign leaked %s", res.Dataset.Func.Name)
		}
	}
	if _, err := xmrobust.Run(xmrobust.WithFunction("XM_nope")); err == nil {
		t.Fatal("unknown hypercall accepted")
	}
}

func TestNewSystemBootsAndFlies(t *testing.T) {
	k, err := xmrobust.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(2); err != nil {
		t.Fatal(err)
	}
	if st := k.Status(); st.State != xmrobust.KStateRunning {
		t.Fatalf("kernel %v after nominal flight", st.State)
	}
	rep, err := xmrobust.TestbedStatus(k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PartitionsUp == 0 {
		t.Fatal("FDIR saw no partitions up")
	}
}

// TestWithInjectionValidatesRate: the facade rejects rates outside
// (0, 1] up front — including NaN, which slips through naive comparison
// guards — instead of silently running the schedule default.
func TestWithInjectionValidatesRate(t *testing.T) {
	for _, rate := range []float64{0, -1, 1.5, math.NaN()} {
		if _, err := xmrobust.Run(
			xmrobust.WithTarget("inject:sim"),
			xmrobust.WithInjection(rate),
		); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
	// A schedule aimed at a target that never injects is a user mistake
	// (zero faults would be injected); it is rejected by name.
	for _, tgt := range []string{"", "sim", "phantom", "diff:sim,phantom"} {
		_, err := xmrobust.Run(xmrobust.WithTarget(tgt), xmrobust.WithInjection(1))
		if err == nil || !strings.Contains(err.Error(), "inject:*") {
			t.Errorf("target %q with WithInjection: %v", tgt, err)
		}
	}
	// A diff-wrapped inject leg injects; the pairing is legitimate.
	if _, err := xmrobust.Run(
		xmrobust.WithTarget("diff:phantom,inject:sim"),
		xmrobust.WithPlan("rand:3"), xmrobust.WithMAFs(1),
		xmrobust.WithInjection(1, "ram"),
	); err != nil {
		t.Errorf("diff-wrapped inject rejected: %v", err)
	}
	rep, err := xmrobust.Run(
		xmrobust.WithTarget("inject:sim"),
		xmrobust.WithPlan("rand:5"),
		xmrobust.WithSeed(1),
		xmrobust.WithMAFs(1),
		xmrobust.WithInjection(1, "ram"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Summary(), "SEU FAULT INJECTION") {
		t.Fatal("injected facade campaign reports no SEU section")
	}
}
