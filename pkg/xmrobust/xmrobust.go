// Package xmrobust is the public API of the robustness-testing toolset:
// a functional-options facade over the campaign engine, the pluggable
// test-plan and execution-target registries, and the log-analysis
// pipeline of the paper's methodology (Preparation, Test Generation and
// Execution, Log Analysis).
//
// The one-call workflow:
//
//	rep, err := xmrobust.Run(
//		xmrobust.WithPlan("pairwise"),
//		xmrobust.WithTarget("diff:sim,phantom"),
//		xmrobust.WithSeed(7),
//	)
//	fmt.Print(rep.Summary())
//
// Campaigns stream through a pooled worker engine. With WithCheckpoint
// the execution logs shard into JSON Lines files and an interrupted
// campaign resumes (WithResume) from its last completed test; without it
// the campaign runs eagerly in memory and every Result stays accessible
// through Report.Results.
package xmrobust

import (
	"fmt"
	"io"
	"path/filepath"

	"xmrobust/internal/analysis"
	"xmrobust/internal/campaign"
	"xmrobust/internal/core"
	"xmrobust/internal/target"
	"xmrobust/internal/testgen"

	// The remote backend registers itself ("remote:<addr>[,<addr>...]")
	// so WithTarget("remote:...") fans a campaign out across xmworker
	// fleets without any further wiring.
	_ "xmrobust/internal/remote"
)

// Run executes a robustness campaign configured by the options (zero
// options: the paper's campaign — legacy kernel, exhaustive plan, sim
// target, two major frames per test).
func Run(options ...Option) (*Report, error) {
	cfg, err := build(options)
	if err != nil {
		return nil, err
	}
	if cfg.eng.ShardDir != "" {
		eo := cfg.eng
		eo.CheckpointPath = filepath.Join(eo.ShardDir, "checkpoint.jsonl")
		srep, err := core.RunCampaignStream(cfg.opts, eo)
		if err != nil {
			return nil, err
		}
		return &Report{stream: srep, shardDir: eo.ShardDir}, nil
	}
	if cfg.eng.Resume {
		return nil, fmt.Errorf("xmrobust: WithResume requires WithCheckpoint")
	}
	rep, err := core.RunCampaign(cfg.opts, cfg.eng)
	if err != nil {
		return nil, err
	}
	return &Report{eager: rep}, nil
}

// RunOne executes a single dataset on the configured target (default: a
// fresh simulated testbed) and returns its execution log.
func RunOne(ds Dataset, options ...Option) (Result, error) {
	cfg, err := build(options)
	if err != nil {
		return Result{}, err
	}
	return campaign.RunOne(ds, cfg.opts), nil
}

// RunDatasets executes a pre-generated dataset list and returns the
// results in dataset order.
func RunDatasets(datasets []Dataset, options ...Option) ([]Result, error) {
	cfg, err := build(options)
	if err != nil {
		return nil, err
	}
	return campaign.RunDatasets(datasets, cfg.opts), nil
}

// Classify runs the log-analysis phase over a result list: per-test
// CRASH-scale verdicts clustered into the campaign's issue list.
func Classify(results []Result, options ...Option) ([]Issue, error) {
	cfg, err := build(options)
	if err != nil {
		return nil, err
	}
	oracle := analysis.NewOracle(cfg.opts.Faults)
	return analysis.Cluster(analysis.ClassifyAll(results, oracle)), nil
}

// MergeLog writes the shard records of a checkpointed campaign directory
// to w as one JSON Lines log in campaign order, returning the record
// count — byte-identical to the log an uninterrupted eager campaign
// writes with Report.WriteLog.
func MergeLog(dir string, w io.Writer) (int, error) {
	return campaign.MergeShards(dir, w)
}

// PlanInfo describes one registered test-plan strategy.
type PlanInfo = testgen.PlanInfo

// TargetInfo describes one registered execution backend.
type TargetInfo = target.Info

// Plans returns every registered test-plan strategy — the discovery
// surface behind xmfuzz -list.
func Plans() []PlanInfo { return testgen.PlanInventory() }

// Targets returns every registered execution backend.
func Targets() []TargetInfo { return target.Inventory() }
