// Package xmrobust_test holds the benchmark harness: one benchmark per
// table and figure of the paper's evaluation, plus the ablations DESIGN.md
// §7 calls out and micro-benchmarks of the substrates. Run with
//
//	go test -bench=. -benchmem
//
// The expensive benchmarks (full campaigns) regenerate Table III / Fig. 8
// per iteration; the reported time is the cost of reproducing the paper's
// headline experiment from scratch.
package xmrobust_test

import (
	"runtime"
	"sync"
	"testing"

	"xmrobust/internal/analysis"
	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
	"xmrobust/internal/core"
	"xmrobust/internal/cover"
	"xmrobust/internal/dict"
	"xmrobust/internal/eagleeye"
	"xmrobust/internal/report"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// cachedLegacy memoises one legacy campaign for the derived benchmarks
// (Fig. 8, issue detection) so they measure their own stage only.
var (
	legacyOnce sync.Once
	legacyRep  *core.CampaignReport
)

func legacyCampaign(b *testing.B) *core.CampaignReport {
	b.Helper()
	legacyOnce.Do(func() {
		rep, err := core.RunCampaign(campaign.Options{})
		if err != nil {
			panic(err)
		}
		legacyRep = rep
	})
	return legacyRep
}

// --- Table I / Table II -------------------------------------------------------

// BenchmarkTable1DataTypes regenerates Table I (the XM data-type
// inventory).
func BenchmarkTable1DataTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(report.TableI()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2ValueSet regenerates Table II (the xm_s32_t test-value
// set) from the builtin dictionary.
func BenchmarkTable2ValueSet(b *testing.B) {
	d := dict.Builtin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(report.TableII(d, "xm_s32_t")) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Table III / campaign -----------------------------------------------------

// BenchmarkTable3Campaign regenerates Table III: the complete 2661-test
// campaign against the legacy kernel, classification and clustering
// included. This is the paper's headline experiment.
func BenchmarkTable3Campaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.RunCampaign(campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Issues) != 9 {
			b.Fatalf("issues = %d, want 9", len(rep.Issues))
		}
	}
}

// BenchmarkFig45Generation regenerates the Fig. 4/Fig. 5 pipeline: XML
// spec + dictionaries to the full 2661-dataset suite.
func BenchmarkFig45Generation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		datasets, err := testgen.Generate(apispec.Default(), dict.Builtin())
		if err != nil {
			b.Fatal(err)
		}
		if len(datasets) != 2661 {
			b.Fatalf("datasets = %d", len(datasets))
		}
	}
}

// BenchmarkGenerate measures plan construction plus a full iteration of
// the emitted stream, per strategy — the generation front of the
// pipeline. Regressions in the greedy covering array, the sampler or the
// lazy mixed-radix addressing all surface here.
func BenchmarkGenerate(b *testing.B) {
	for _, spec := range []string{"exhaustive", "pairwise", "rand:500", "boundary"} {
		b.Run(spec, func(b *testing.B) {
			h, d := apispec.Default(), dict.Builtin()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := testgen.NewPlan(spec, h, d, 1)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for _, ds := range testgen.All(p) {
					if len(ds.Values) > 4 {
						b.Fatal("malformed dataset")
					}
					n++
				}
				if n != p.Len() {
					b.Fatalf("iterated %d of %d", n, p.Len())
				}
			}
		})
	}
}

// BenchmarkPlanPairwise isolates the greedy 2-way covering-array
// construction over the default spec, coverage verification included.
func BenchmarkPlanPairwise(b *testing.B) {
	h, d := apispec.Default(), dict.Builtin()
	for i := 0; i < b.N; i++ {
		p, err := testgen.NewPlan("pairwise", h, d, 0)
		if err != nil {
			b.Fatal(err)
		}
		st := testgen.Measure(p)
		if st.PairCoverage() != 1 {
			b.Fatalf("pair coverage = %v", st.PairCoverage())
		}
		if st.Reduction() < 2 {
			b.Fatalf("reduction = %.2fx", st.Reduction())
		}
	}
}

// BenchmarkFig8Distribution regenerates the Fig. 8 distribution from a
// finished campaign.
func BenchmarkFig8Distribution(b *testing.B) {
	rep := legacyCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := report.ComputeDistribution(rep)
		if d.Total() != 61 {
			b.Fatalf("total = %d", d.Total())
		}
	}
}

// BenchmarkIssueDetection measures the Log Analysis phase alone:
// CRASH classification plus issue clustering over the 2661 execution logs.
func BenchmarkIssueDetection(b *testing.B) {
	rep := legacyCampaign(b)
	oracle := analysis.NewOracle(xm.LegacyFaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classified := analysis.ClassifyAll(rep.Results, oracle)
		if issues := analysis.Cluster(classified); len(issues) != 9 {
			b.Fatalf("issues = %d", len(issues))
		}
	}
}

// --- Ablations (DESIGN.md §7) ---------------------------------------------------

// BenchmarkAblationPatchedKernel runs the campaign against the patched
// kernel: the fault-removal outcome (0 issues).
func BenchmarkAblationPatchedKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.RunCampaign(campaign.Options{Faults: xm.PatchedFaults()})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Issues) != 0 {
			b.Fatalf("patched kernel raised %d issues", len(rep.Issues))
		}
	}
}

// BenchmarkAblationFaultMasking runs the campaign with the boundary-only
// dictionary (valid values stripped): the multicall findings vanish
// because every pointer dataset is masked by its first invalid parameter —
// the paper's Fig. 7 effect, measured.
func BenchmarkAblationFaultMasking(b *testing.B) {
	stripped := dict.WithoutValid(dict.Builtin())
	for i := 0; i < b.N; i++ {
		rep, err := core.RunCampaign(campaign.Options{Dict: stripped})
		if err != nil {
			b.Fatal(err)
		}
		// The three XM_multicall issues need valid pointers to surface.
		if counts := analysis.IssuesByCategory(rep.Issues); counts[xm.CatMisc] != 0 {
			b.Fatalf("boundary-only dictionary still found %d Misc issues", counts[xm.CatMisc])
		}
	}
}

// BenchmarkAblationStressState runs the campaign with the pre-loaded
// (stressful) system state of paper §V.
func BenchmarkAblationStressState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.RunCampaign(campaign.Options{Stress: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Issues) == 0 {
			b.Fatal("stress campaign found nothing")
		}
	}
}

// BenchmarkAblationSerialExecution runs the campaign single-threaded, the
// baseline for the worker-pool speedup.
func BenchmarkAblationSerialExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.RunCampaign(campaign.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Issues) != 9 {
			b.Fatalf("issues = %d", len(rep.Issues))
		}
	}
}

// BenchmarkExtensionPhantomCampaign runs the §V phantom-parameter
// extension: the 10 parameter-less hypercalls under 5 system states,
// through the same campaign pipeline as every other plan.
func BenchmarkExtensionPhantomCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.RunCampaign(campaign.Options{Plan: "phantom"})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Results) != 50 {
			b.Fatalf("phantom tests = %d, want 50", len(rep.Results))
		}
		if len(rep.Issues) != 0 {
			b.Fatalf("phantom campaign raised %d issues", len(rep.Issues))
		}
	}
}

// --- Engine benchmarks --------------------------------------------------------

// engineSuite repeats one representative dataset n times — the uniform
// workload the pooled-vs-fresh comparison is measured on.
func engineSuite(b *testing.B, n int) []testgen.Dataset {
	b.Helper()
	header := apispec.Default()
	f, _ := header.Function("XM_memory_copy")
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		b.Fatal(err)
	}
	ds := m.Datasets()[0]
	out := make([]testgen.Dataset, n)
	for i := range out {
		out[i] = ds
	}
	return out
}

// BenchmarkCampaign measures raw test-execution throughput of the
// streaming engine: pooled (reset-and-verify machine reuse) against the
// seed's fresh-machine-per-test baseline. ns/op is the cost of one test.
func BenchmarkCampaign(b *testing.B) {
	for _, mode := range []struct {
		name  string
		fresh bool
	}{{"fresh", true}, {"pooled", false}} {
		b.Run(mode.name, func(b *testing.B) {
			datasets := engineSuite(b, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := campaign.Stream(datasets, campaign.EngineOptions{
				Options:       campaign.Options{Workers: 1},
				FreshMachines: mode.fresh,
			}, nil); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// liveHeap forces a collection and returns the live heap size.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// BenchmarkCampaignMemory compares what a campaign *retains*: the eager
// API accumulates every execution log, the streaming engine holds nothing
// once a result is consumed. The live-B metric is the heap growth across
// one 512-test run — flat for streaming, linear in test count for eager.
func BenchmarkCampaignMemory(b *testing.B) {
	const tests = 512
	b.Run("eager", func(b *testing.B) {
		datasets := engineSuite(b, tests)
		before := liveHeap()
		var retained [][]campaign.Result
		for i := 0; i < b.N; i++ {
			retained = append(retained, campaign.RunDatasets(datasets, campaign.Options{}))
		}
		b.ReportMetric(float64(liveHeap()-before)/float64(b.N), "live-B/run")
		runtime.KeepAlive(retained)
	})
	b.Run("streaming", func(b *testing.B) {
		datasets := engineSuite(b, tests)
		before := liveHeap()
		for i := 0; i < b.N; i++ {
			if _, err := campaign.Stream(datasets, campaign.EngineOptions{}, nil); err != nil {
				b.Fatal(err)
			}
		}
		after := liveHeap()
		if after < before {
			after = before
		}
		b.ReportMetric(float64(after-before)/float64(b.N), "live-B/run")
	})
	// plan-streaming goes one further: the suite itself is never
	// materialised — the engine pulls each dataset lazily out of the
	// plan, so neither the generation nor the execution side retains
	// per-test state.
	b.Run("plan-streaming", func(b *testing.B) {
		plan, err := testgen.NewPlan("rand:512", apispec.Default(), dict.Builtin(), 7)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Len() != tests {
			b.Fatalf("plan has %d tests, want %d", plan.Len(), tests)
		}
		before := liveHeap()
		for i := 0; i < b.N; i++ {
			if _, err := campaign.StreamPlan(plan, campaign.EngineOptions{}, nil); err != nil {
				b.Fatal(err)
			}
		}
		after := liveHeap()
		if after < before {
			after = before
		}
		b.ReportMetric(float64(after-before)/float64(b.N), "live-B/run")
	})
}

// --- Substrate micro-benchmarks ---------------------------------------------------

// BenchmarkSingleInjection measures one complete test execution: fresh
// machine + kernel + testbed, two major frames, log collection.
func BenchmarkSingleInjection(b *testing.B) {
	header := apispec.Default()
	f, _ := header.Function("XM_memory_copy")
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		b.Fatal(err)
	}
	ds := m.Datasets()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := campaign.RunOne(ds, campaign.Options{})
		if res.RunErr != "" {
			b.Fatal(res.RunErr)
		}
	}
}

// BenchmarkEagleEyeMajorFrame measures the testbed's execution rate: one
// 250 ms cyclic schedule of the five-partition OBSW.
func BenchmarkEagleEyeMajorFrame(b *testing.B) {
	k, err := eagleeye.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.RunMajorFrames(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHypercallDispatch measures the kernel's hypercall path
// (XM_get_time through the guest environment).
func BenchmarkHypercallDispatch(b *testing.B) {
	k, err := eagleeye.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	area, _ := k.PartitionDataArea(eagleeye.FDIR)
	calls := 0
	prog := benchProg(func(env xm.Env) bool {
		for j := 0; j < 64; j++ {
			env.Hypercall(xm.NrGetTime, uint64(xm.HwClock), uint64(area.Base))
			calls++
		}
		return false
	})
	if err := k.AttachProgram(eagleeye.FDIR, prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for calls < b.N {
		if err := k.RunMajorFrames(1); err != nil {
			b.Fatal(err)
		}
	}
}

type benchProg func(env xm.Env) bool

func (p benchProg) Boot(env xm.Env)      {}
func (p benchProg) Step(env xm.Env) bool { return p(env) }

// BenchmarkDispatchCoverage measures the cost of the kernel edge-coverage
// instrumentation on the hypercall dispatch path, against the same
// workload as BenchmarkHypercallDispatch. The "off" case is every
// non-feedback campaign: the coverage sink is nil and each potential site
// costs one pointer comparison. Measured against the pre-instrumentation
// BenchmarkHypercallDispatch baseline (~104 ns/op) the "off" path lands
// at ~102 ns/op — within noise, far inside the <5% budget — and full
// collection ("on") costs ~109 ns/op (Xeon 2.1 GHz; compare
// BenchmarkCampaign for the whole-test view).
func BenchmarkDispatchCoverage(b *testing.B) {
	for _, mode := range []struct {
		name    string
		covered bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var opts []xm.Option
			m := &cover.Map{}
			if mode.covered {
				opts = append(opts, xm.WithCoverage(m))
			}
			k, err := eagleeye.NewSystem(opts...)
			if err != nil {
				b.Fatal(err)
			}
			area, _ := k.PartitionDataArea(eagleeye.FDIR)
			calls := 0
			prog := benchProg(func(env xm.Env) bool {
				for j := 0; j < 64; j++ {
					env.Hypercall(xm.NrGetTime, uint64(xm.HwClock), uint64(area.Base))
					calls++
				}
				return false
			})
			if err := k.AttachProgram(eagleeye.FDIR, prog); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for calls < b.N {
				if err := k.RunMajorFrames(1); err != nil {
					b.Fatal(err)
				}
			}
			if mode.covered && m.Empty() {
				b.Fatal("instrumented run recorded no edges")
			}
		})
	}
}
