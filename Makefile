# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` means a green pipeline.

GO ?= go

.PHONY: build test bench bench-smoke plan-smoke lint fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark run with allocation stats.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: keeps benchmark code compiling and
# executing without paying for stable numbers. CI runs this.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# A full pairwise-plan campaign through the streaming engine: exercises
# plan generation, coverage reporting and the sharded log end to end, and
# fails on harness errors. CI runs this.
plan-smoke:
	rm -rf /tmp/xmplan-smoke
	$(GO) run ./cmd/xmfuzz -plan pairwise -stream /tmp/xmplan-smoke -csv > /dev/null
	rm -rf /tmp/xmplan-smoke

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

ci: build lint test bench-smoke plan-smoke
