# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` means a green pipeline.

GO ?= go

.PHONY: build examples test bench bench-1x bench-smoke bench-sweep plan-smoke feedback-smoke diff-smoke inject-smoke remote-smoke obs-smoke daemon-smoke fuzz-smoke xmlint lint vulncheck fmt ci

build:
	$(GO) build ./...

# The four example programs are part of the module; building them
# explicitly keeps them from rotting even if the main build list changes.
examples:
	$(GO) build ./examples/...

test:
	$(GO) test -race ./...

# Full benchmark run with allocation stats.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: keeps benchmark code compiling and
# executing without paying for stable numbers. CI runs this.
bench-1x:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The perf trajectory: xmbench measures steady-state engine throughput
# on sim (shared target, warm pool, fixed-seed plan), writes the
# measurement to BENCH_smoke.json, and gates tests/sec and allocs/test
# against the committed BENCH_1.json baseline at ±15%. BENCH_0.json is
# the pre-snapshot-pool seed — the committed pair records the speedup
# instead of claiming it. CI runs this and uploads the JSON artifact.
bench-smoke: bench-1x
	$(GO) run ./cmd/xmbench -reps 10 -o BENCH_smoke.json -baseline BENCH_1.json -gate 15 \
		-note "ci smoke: gated against the committed BENCH_1.json at ±15%"

# The scaling trajectory: one measurement per workers count (1/2/4/8)
# plus a loopback remote: point over two in-process worker servers (the
# full wire round-trip). The gate requires the workers=8 point to beat
# workers=1 by ×3, clamped to 0.6·min(workers, NumCPU) so a small CI
# machine enforces "parallelism must not collapse" instead of a speedup
# its cores cannot produce. BENCH_2.json is the committed sweep measured
# by this protocol at -reps 10. CI runs this.
bench-sweep:
	$(GO) run ./cmd/xmbench -reps 5 -sweep 1,2,4,8 -remote-workers 2 -min-scale 3 \
		-o BENCH_sweep_smoke.json -note "ci sweep smoke"

# A full pairwise-plan campaign through the streaming engine: exercises
# plan generation, coverage reporting and the sharded log end to end, and
# fails on harness errors. CI runs this.
plan-smoke:
	rm -rf /tmp/xmplan-smoke
	$(GO) run ./cmd/xmfuzz -plan pairwise -stream /tmp/xmplan-smoke -csv > /dev/null
	rm -rf /tmp/xmplan-smoke

# A short seeded feedback campaign against a rand campaign of the same
# budget and seed: the coverage-guided loop must discover strictly more
# kernel edges, or the feedback subsystem has regressed. CI runs this.
feedback-smoke:
	@fb=$$($(GO) run ./cmd/xmfuzz -plan feedback:300 -seed 1 \
		| awk '/^kernel edges discovered:/{print $$4}'); \
	rd=$$($(GO) run ./cmd/xmfuzz -plan rand:300 -seed 1 -cover-stats \
		| awk '/^kernel edges discovered:/{print $$4}'); \
	echo "feedback:300 -> $$fb edges, rand:300 -> $$rd edges"; \
	test -n "$$fb" && test -n "$$rd" && test "$$fb" -gt "$$rd"

# A short diff:sim,phantom campaign through the streaming engine: the
# model-vs-simulation divergence oracle must stay deterministic at a
# fixed seed — 11 of 40 tests diverge on the legacy kernel. A changed
# count means the simulated kernel or the phantom model changed
# behaviour; update the expectation only for an intended change. CI
# runs this.
diff-smoke:
	rm -rf /tmp/xmdiff-smoke
	@out=$$($(GO) run ./cmd/xmfuzz -plan rand:40 -seed 7 -mafs 1 \
		-target diff:sim,phantom -stream /tmp/xmdiff-smoke \
		| grep '^target diff:sim,phantom:'); \
	echo "$$out"; \
	test "$$out" = "target diff:sim,phantom: 11 of 40 tests diverged"
	rm -rf /tmp/xmdiff-smoke

# A fixed-seed SEU fault-injection campaign through the streaming engine:
# the schedule, the flip sites and the outcome classification must stay
# byte-deterministic — the pinned line is the campaign-wide outcome tally
# of inject:sim at rand:200 seed 1. A changed tally means the schedule,
# a flip site or the kernel changed behaviour; update the expectation
# only for an intended change. The race run over the injection subsystem
# rides along. CI runs this.
inject-smoke:
	$(GO) test -race ./internal/inject ./internal/target
	rm -rf /tmp/xminject-smoke
	@out=$$($(GO) run ./cmd/xmfuzz -plan rand:200 -seed 1 -target inject:sim \
		-stream /tmp/xminject-smoke | grep '^injection:'); \
	echo "$$out"; \
	test "$$out" = "injection: 200 of 200 tests armed, 160 flips applied — masked 152, wrong-result 0, hm-detected 8, crash 0, hang 0"
	rm -rf /tmp/xminject-smoke

# Distributed-execution smoke: two loopback xmworker processes serve the
# sim target; the same fixed-seed rand:400 campaign runs once in-process
# and once over -target remote:..., with one worker told to die
# mid-campaign (-exit-after) so its outstanding leases hand back and
# re-execute on the survivor. The two merged logs must be byte-identical
# — the distributed invariant of the coordinator — and the doomed worker
# must actually have died, or the reclaim path went unexercised. CI runs
# this.
remote-smoke:
	rm -rf /tmp/xmremote-smoke && mkdir -p /tmp/xmremote-smoke
	$(GO) build -o /tmp/xmremote-smoke/xmworker ./cmd/xmworker
	@set -e; d=/tmp/xmremote-smoke; \
	$(GO) run ./cmd/xmfuzz -plan rand:400 -seed 3 -stream $$d/ref -o $$d/ref.jsonl > /dev/null; \
	$$d/xmworker -quiet -exit-after 120 > $$d/w1.out & w1=$$!; \
	$$d/xmworker -quiet > $$d/w2.out & w2=$$!; \
	a1=""; a2=""; \
	for i in 1 2 3 4 5 6 7 8 9 10; do \
		a1=$$(sed -n 's/^xmworker: listening on \([^ ]*\).*/\1/p' $$d/w1.out); \
		a2=$$(sed -n 's/^xmworker: listening on \([^ ]*\).*/\1/p' $$d/w2.out); \
		test -n "$$a1" && test -n "$$a2" && break; sleep 1; \
	done; \
	test -n "$$a1" && test -n "$$a2"; \
	$(GO) run ./cmd/xmfuzz -plan rand:400 -seed 3 -workers 2 \
		-target remote:$$a1,$$a2 -stream $$d/dist -o $$d/dist.jsonl > /dev/null; \
	kill $$w1 $$w2 2> /dev/null || true; \
	grep -q 'exit-after 120 tests reached' $$d/w1.out; \
	cmp $$d/ref.jsonl $$d/dist.jsonl; \
	echo "remote-smoke: rand:400 over 2 remote workers (one killed mid-run) merged byte-identical"
	rm -rf /tmp/xmremote-smoke

# Observability smoke: a fixed-seed SEU campaign over two loopback
# workers with the full metrics/trace/progress spine attached, its ops
# endpoints scraped over HTTP while it runs. Asserts every layer
# (engine, lease coordinator, remote client, workers, injection
# outcomes) reported non-zero series AND that instrumentation changed
# not one byte of the merged campaign log. The graceful worker drain
# rides along. CI runs this.
obs-smoke:
	$(GO) test -race -count 1 -run 'TestObsSmoke|TestServerGracefulShutdown' ./internal/remote
	$(GO) test -count 1 ./internal/obs

# Campaign-service smoke: builds the real xmrobustd binary, submits a
# fixed-seed inject:sim campaign over HTTP with an SSE subscriber, and
# asserts the stream, the served merged log and a direct pkg/xmrobust
# run are byte-identical; then cancels a second campaign mid-run
# (DELETE), resumes its checkpoint through the library to the
# uninterrupted bytes, and SIGTERM-drains the daemon. CI runs this.
daemon-smoke:
	$(GO) test -race -count 1 -run TestDaemonSmoke ./cmd/xmrobustd
	$(GO) test -race -count 1 ./internal/serve

# A short fuzz run over the codec round-trip property (raw and json
# codecs must agree byte for byte on arbitrary records): long enough to
# shake out encoding regressions, short enough for every CI run. The
# corpus under internal/campaign/testdata stays checked in. CI runs this.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzJSONRecordRoundTrip$$' -fuzztime 10s ./internal/campaign

# The invariant lint suite: cmd/xmlint is a go vet tool (see
# internal/lint) checking determinism, obsnil, registry and seqfield.
# Building it locally keeps the suite at the exact commit being linted.
xmlint:
	@mkdir -p bin
	$(GO) build -o bin/xmlint ./cmd/xmlint

lint: xmlint
	$(GO) vet ./...
	$(GO) vet -vettool=bin/xmlint ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Known-vulnerability scan. govulncheck lives outside the module (the
# library ships zero dependencies), so this step is advisory: it runs
# when the tool is installed and is skipped — loudly — when not. CI
# installs it and uploads the report as an artifact, non-blocking.
vulncheck:
	@if command -v govulncheck > /dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

fmt:
	gofmt -w .

ci: build examples lint test fuzz-smoke bench-smoke bench-sweep plan-smoke feedback-smoke diff-smoke inject-smoke remote-smoke obs-smoke daemon-smoke
