package remote

import (
	"bytes"
	"net"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
	"xmrobust/internal/dict"
	"xmrobust/internal/target"
	"xmrobust/internal/testgen"
)

// testPlan builds a small deterministic plan over a couple of quick
// hypercalls.
func testPlan(t *testing.T, spec string, seed int64, funcs ...string) testgen.Plan {
	t.Helper()
	keep := map[string]bool{}
	for _, f := range funcs {
		keep[f] = true
	}
	h := apispec.Default()
	for i := range h.Functions {
		if !keep[h.Functions[i].Name] {
			h.Functions[i].Tested = "NO"
		}
	}
	p, err := testgen.NewPlan(spec, h, dict.Builtin(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// startWorker serves tgt on a loopback listener and returns its address
// and server (for death simulation).
func startWorker(t *testing.T, tgt string, workers, exitAfter int) (string, *Server, net.Listener) {
	t.Helper()
	backend, err := target.New(tgt, target.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Target: backend, Workers: workers, ExitAfter: exitAfter}
	if exitAfter > 0 {
		srv.OnExit = func() {
			// The in-process stand-in for os.Exit: drop the listener and
			// every live connection, leaving in-flight leases unanswered.
			ln.Close()
			srv.CloseConnections()
		}
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close(); srv.CloseConnections() })
	return ln.Addr().String(), srv, ln
}

// mergedLog runs the plan through the streaming engine against the given
// target spec and returns the merged campaign log bytes.
func mergedLog(t *testing.T, plan testgen.Plan, tgtSpec string, workers, batch int) []byte {
	t.Helper()
	dir := t.TempDir()
	eo := campaign.EngineOptions{
		Options:   campaign.Options{Workers: workers, Target: tgtSpec},
		ShardDir:  dir,
		BatchSize: batch,
	}
	stats, err := campaign.StreamPlan(plan, eo, nil)
	if err != nil {
		t.Fatalf("stream on %s: %v", tgtSpec, err)
	}
	if stats.Executed != plan.Len() {
		t.Fatalf("stream on %s executed %d of %d", tgtSpec, stats.Executed, plan.Len())
	}
	var buf bytes.Buffer
	n, err := campaign.MergeShards(dir, &buf)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if n != plan.Len() {
		t.Fatalf("merge on %s: %d records, want %d", tgtSpec, n, plan.Len())
	}
	return buf.Bytes()
}

// TestFrameRoundTrip pins the length-prefixed framing.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 70000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), len(want))
		}
	}
	// A corrupt length prefix must be refused, not allocated.
	if _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// TestRemoteMergeByteIdentical: a campaign fanned across two loopback
// workers merges to exactly the bytes of the same campaign executed
// in-process — the tentpole invariant of the distributed path.
func TestRemoteMergeByteIdentical(t *testing.T) {
	plan := testPlan(t, "rand:40", 1, "XM_set_timer", "XM_get_time")
	local := mergedLog(t, plan, "sim", 2, 0)

	addr1, _, _ := startWorker(t, "sim", 2, 0)
	addr2, _, _ := startWorker(t, "sim", 2, 0)
	remote := mergedLog(t, plan, "remote:"+addr1+","+addr2, 4, 3)

	if !bytes.Equal(local, remote) {
		t.Fatalf("remote merged log differs from local: %d vs %d bytes", len(remote), len(local))
	}
}

// TestRemoteWorkerDeathHandsBack: a worker dying mid-lease loses nothing
// — its unanswered leases re-execute on the surviving worker and the
// merged log still matches the single-process run byte for byte.
func TestRemoteWorkerDeathHandsBack(t *testing.T) {
	plan := testPlan(t, "rand:30", 7, "XM_set_timer", "XM_get_time")
	local := mergedLog(t, plan, "sim", 1, 0)

	dying, _, _ := startWorker(t, "sim", 1, 5)
	healthy, _, _ := startWorker(t, "sim", 2, 0)
	remote := mergedLog(t, plan, "remote:"+dying+","+healthy, 4, 2)

	if !bytes.Equal(local, remote) {
		t.Fatalf("merged log after worker death differs from local: %d vs %d bytes", len(remote), len(local))
	}
}

// TestRemoteRefusesMixedFleet: workers advertising different targets
// cannot form one fleet — their records would splice two backends' logs
// into one campaign.
func TestRemoteRefusesMixedFleet(t *testing.T) {
	addr1, _, _ := startWorker(t, "sim", 1, 0)
	addr2, _, _ := startWorker(t, "phantom", 1, 0)
	tgt, err := target.New("remote:"+addr1+","+addr2, target.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.Provision(2); err == nil {
		t.Fatal("mixed-target fleet accepted")
	}
}

// TestRemoteRefusesEmptyFleet: a remote spec without addresses, and a
// fleet with no reachable worker, both fail loudly at construction or
// provision time.
func TestRemoteRefusesEmptyFleet(t *testing.T) {
	if _, err := target.New("remote:", target.Config{}); err == nil {
		t.Fatal("empty address list accepted")
	}
	tgt, err := target.New("remote:127.0.0.1:1", target.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.Provision(1); err == nil {
		t.Fatal("unreachable fleet accepted")
	}
}

// TestWorkerTarget pins the hello discovery surface.
func TestWorkerTarget(t *testing.T) {
	addr, _, _ := startWorker(t, "phantom", 1, 0)
	got, err := WorkerTarget(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got != "phantom" {
		t.Fatalf("hello target %q, want %q", got, "phantom")
	}
}
