package remote

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xmrobust/internal/campaign"
	"xmrobust/internal/obs"
	"xmrobust/internal/target"
	"xmrobust/internal/testgen"
)

// Server wraps one local target behind the wire protocol: every accepted
// connection gets a hello, then a stream of lease requests, each executed
// on the wrapped target and answered with campaign-log records.
// Connections pipeline — a request is handled in its own goroutine,
// bounded by the worker pool — so one slow lease never stalls the link.
type Server struct {
	// Target executes the leases; it may be any registered backend
	// (sim, phantom, diff:..., inject:...). Provision is called once with
	// Workers before the first request executes.
	Target target.Target
	// Workers bounds concurrent lease execution (default 1).
	Workers int
	// ExitAfter, when positive, makes the server call OnExit once that
	// many tests have executed — before the crossing request's response
	// is written. It deterministically simulates a worker dying mid-lease
	// (the lease's client never hears back), the scenario lease hand-back
	// and re-execution exist for; see the remote-smoke make target.
	ExitAfter int
	// OnExit is called when ExitAfter trips (required with ExitAfter).
	OnExit func()
	// Logf, when set, receives one line per accepted connection and per
	// refused request.
	Logf func(format string, args ...any)
	// Obs, when non-nil, publishes the worker's metrics (tests executed,
	// open connections, wire bytes) and live progress — the worker side
	// of the observability spine.
	Obs *obs.Obs

	provisionOnce sync.Once
	provisionErr  error
	sem           chan struct{}
	executed      atomic.Int64
	exitOnce      sync.Once
	met           *obs.WorkerMetrics // set in provision; nil handles when obs off

	draining atomic.Bool
	connWG   sync.WaitGroup

	connsMu sync.Mutex
	open    map[net.Conn]struct{}
	ln      net.Listener
}

// Listen binds addr, starts serving in a background goroutine, and
// returns the bound address — the in-process form of running
// cmd/xmworker, used by benchmarks and tests. Provisioning failures
// surface here, synchronously. Stop the server with Close.
func (s *Server) Listen(addr string) (string, error) {
	if err := s.provision(); err != nil {
		return "", fmt.Errorf("remote: provision %s: %w", s.Target.Name(), err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops a Listen-started server: the listener stops accepting and
// every live connection drops.
func (s *Server) Close() {
	if s.ln != nil {
		s.ln.Close()
	}
	s.CloseConnections()
}

// CloseConnections drops every live connection — the in-process analogue
// of the worker dying (cmd/xmworker's OnExit simply exits). Clients see
// their in-flight leases fail and hand them to another worker.
func (s *Server) CloseConnections() {
	s.connsMu.Lock()
	for conn := range s.open {
		conn.Close()
	}
	s.connsMu.Unlock()
}

func (s *Server) track(conn net.Conn) {
	s.connsMu.Lock()
	if s.open == nil {
		s.open = map[net.Conn]struct{}{}
	}
	s.open[conn] = struct{}{}
	s.connsMu.Unlock()
	s.met.Connections.Add(1)
}

func (s *Server) untrack(conn net.Conn) {
	s.connsMu.Lock()
	delete(s.open, conn)
	s.connsMu.Unlock()
	s.met.Connections.Add(-1)
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// provision prepares the wrapped target for the configured parallelism,
// once across every connection.
func (s *Server) provision() error {
	s.provisionOnce.Do(func() {
		if s.Workers <= 0 {
			s.Workers = 1
		}
		s.sem = make(chan struct{}, s.Workers)
		s.met = obs.NewWorkerMetrics(s.Obs.Registry())
		s.Obs.Prog().Begin(0, 0)
		s.provisionErr = s.Target.Provision(s.Workers)
	})
	return s.provisionErr
}

// Serve accepts connections until the listener closes, handling each in
// its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	if err := s.provision(); err != nil {
		return fmt.Errorf("remote: provision %s: %w", s.Target.Name(), err)
	}
	s.connsMu.Lock()
	s.ln = ln
	s.connsMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.logf("connection from %s", conn.RemoteAddr())
		// Track before handing off so a Shutdown between accept and the
		// goroutine's first read still reaches this connection.
		s.track(conn)
		s.connWG.Add(1)
		go func(conn net.Conn) {
			defer s.connWG.Done()
			s.handleConn(conn)
		}(conn)
	}
}

// Shutdown drains the server gracefully: the listener stops accepting,
// every open connection stops reading new frames (its pending read is
// unblocked by an immediate read deadline), in-flight requests finish
// executing and write their responses, and only then do the connections
// close. It returns once every connection handler has exited. Clients
// treat the subsequent connection loss like any dead worker: unanswered
// leases hand back and re-execute elsewhere.
func (s *Server) Shutdown() {
	s.draining.Store(true)
	s.connsMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.open {
		conn.SetReadDeadline(time.Now())
	}
	s.connsMu.Unlock()
	s.connWG.Wait()
}

// Draining reports whether Shutdown has begun — how a serving loop
// distinguishes a graceful drain's listener-closed error from a fault.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleConn speaks the protocol on one connection: hello, then a loop
// of pipelined lease requests until the peer hangs up (or Shutdown
// breaks the read loop; requests already read still answer).
func (s *Server) handleConn(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	var wmu sync.Mutex // responses from concurrent leases interleave frames, never bytes
	hello := encodeJSON(Hello{Proto: ProtoVersion, Target: s.Target.Name()})
	wmu.Lock()
	err := WriteFrame(conn, hello)
	wmu.Unlock()
	if err != nil {
		return
	}
	s.met.WireTx.Add(uint64(len(hello)) + frameOverhead)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		s.met.WireRx.Add(uint64(len(payload)) + frameOverhead)
		wg.Add(1)
		go func(payload []byte) {
			defer wg.Done()
			s.handleRequest(conn, &wmu, payload)
		}(payload)
	}
}

// handleRequest executes one lease and writes its response frame.
func (s *Server) handleRequest(conn net.Conn, wmu *sync.Mutex, payload []byte) {
	if s.ExitAfter > 0 && int(s.executed.Load()) >= s.ExitAfter {
		// Already dying: a dead worker answers nothing.
		return
	}
	var req execRequest
	if err := unmarshalRequest(payload, &req); err != nil {
		s.logf("refusing request: %v", err)
		s.respond(conn, wmu, respHeader{ID: req.ID, Err: err.Error()}, nil)
		return
	}
	spec := specFromWire(req.Spec)
	datasets := make([]testgen.Dataset, 0, len(req.Tests))
	for _, wt := range req.Tests {
		ds, err := testFromWire(wt, spec.Header)
		if err != nil {
			s.respond(conn, wmu, respHeader{ID: req.ID, Err: err.Error()}, nil)
			return
		}
		datasets = append(datasets, ds)
	}
	codec, err := campaign.NewCodec("raw")
	if err != nil {
		s.respond(conn, wmu, respHeader{ID: req.ID, Err: err.Error()}, nil)
		return
	}

	s.sem <- struct{}{}
	var results []target.Result
	if be, ok := s.Target.(target.BatchExecutor); ok && len(datasets) > 1 {
		slot := s.Target.Acquire()
		results = be.ExecuteBatch(slot, datasets, spec)
		s.Target.Release(slot)
	} else {
		results = make([]target.Result, 0, len(datasets))
		for _, ds := range datasets {
			slot := s.Target.Acquire()
			results = append(results, s.Target.Execute(slot, ds, spec))
			s.Target.Release(slot)
		}
	}
	<-s.sem
	s.met.Executed.Add(uint64(len(results)))
	s.Obs.Prog().Done(len(results))

	records := make([][]byte, 0, len(results))
	for i, r := range results {
		rec := campaign.ToRecord(req.Tests[i].Pos, r)
		line, err := codec.AppendEncode(nil, &rec)
		if err != nil {
			s.respond(conn, wmu, respHeader{ID: req.ID, Err: err.Error()}, nil)
			return
		}
		records = append(records, append(line, '\n'))
	}
	if s.ExitAfter > 0 {
		if total := s.executed.Add(int64(len(req.Tests))); int(total) >= s.ExitAfter {
			// Die without responding: the client sees the connection drop
			// with this lease in flight and must re-execute it elsewhere.
			s.exitOnce.Do(s.OnExit)
			return
		}
	}
	s.respond(conn, wmu, respHeader{ID: req.ID, N: len(records)}, records)
}

// respond writes one response frame: the header line, then the records.
func (s *Server) respond(conn net.Conn, wmu *sync.Mutex, hdr respHeader, records [][]byte) {
	payload := append(encodeJSON(hdr), '\n')
	for _, rec := range records {
		payload = append(payload, rec...)
	}
	wmu.Lock()
	defer wmu.Unlock()
	if err := WriteFrame(conn, payload); err != nil {
		s.logf("response %d: %v", hdr.ID, err)
		return
	}
	s.met.WireTx.Add(uint64(len(payload)) + frameOverhead)
}

// unmarshalRequest decodes a request frame.
func unmarshalRequest(payload []byte, req *execRequest) error {
	if err := json.Unmarshal(payload, req); err != nil {
		return fmt.Errorf("remote: bad request frame: %w", err)
	}
	return nil
}
