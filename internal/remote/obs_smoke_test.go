package remote

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"xmrobust/internal/campaign"
	"xmrobust/internal/inject"
	"xmrobust/internal/obs"
	"xmrobust/internal/target"
	"xmrobust/internal/testgen"
)

// httpGet fetches one ops endpoint and returns the body.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, err %v", url, resp.StatusCode, err)
	}
	return string(body)
}

// promValue extracts one unlabelled (or exactly-spelled) series value
// from an exposition body.
func promValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition:\n%s", series, body)
	return 0
}

// promSum sums every series of one family (label sets vary).
func promSum(t *testing.T, body, family string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		_, rest, ok := strings.Cut(line, "} ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("family %s: bad line %q", family, line)
		}
		sum += v
	}
	return sum
}

// TestObsSmoke is the end-to-end observability exercise the obs-smoke CI
// target runs: a fixed-seed SEU campaign fanned over two loopback
// workers with the full spine attached — engine metrics, lease
// coordinator, remote client, worker servers, injection outcomes — its
// /metrics, /healthz and /progress endpoints scraped over HTTP while it
// runs. Two invariants: every layer reported non-zero series, and the
// instrumented distributed campaign's merged log is byte-identical to
// the plain in-process run.
func TestObsSmoke(t *testing.T) {
	const seed = 5
	plan := testPlan(t, "rand:400", seed, "XM_set_timer", "XM_get_time", "XM_get_system_status", "XM_reset_partition")
	tests := plan.Len() // rand:N clamps to the restricted value space
	if tests == 0 {
		t.Fatal("empty plan")
	}

	run := func(tgtSpec string, o *obs.Obs) []byte {
		dir := t.TempDir()
		eo := campaign.EngineOptions{
			Options:   campaign.Options{Workers: 4, Target: tgtSpec, Seed: seed},
			ShardDir:  dir,
			BatchSize: 4,
			Obs:       o,
		}
		stats, err := campaign.StreamPlan(plan, eo, nil)
		if err != nil {
			t.Fatalf("stream on %s: %v", tgtSpec, err)
		}
		if stats.Executed != plan.Len() {
			t.Fatalf("stream on %s executed %d of %d", tgtSpec, stats.Executed, plan.Len())
		}
		var buf bytes.Buffer
		if _, err := campaign.MergeShards(dir, &buf); err != nil {
			t.Fatalf("merge: %v", err)
		}
		return buf.Bytes()
	}
	local := run("inject:sim", nil)

	// The coordinator and the worker fleet each get their own handle, as
	// separate processes would: wo aggregates both loopback workers.
	o := obs.New()
	wo := obs.New()
	params := inject.Params{Seed: seed}
	worker := func() string {
		backend, err := target.New("inject:sim", target.Config{Inject: params, Obs: wo})
		if err != nil {
			t.Fatal(err)
		}
		srv := &Server{Target: backend, Workers: 2, Obs: wo}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		return addr
	}
	addrs := worker() + "," + worker()

	ops, err := obs.ListenAndServe("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	base := "http://" + ops.Addr()

	// Scrape concurrently while the campaign runs; correctness asserts
	// happen on the final state so fast campaigns cannot flake this.
	stop := make(chan struct{})
	scraped := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scraped <- n
				return
			default:
				resp, err := http.Get(base + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					n++
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	remoteLog := run("remote:"+addrs, o)
	close(stop)
	if n := <-scraped; n == 0 {
		t.Error("no /metrics scrape succeeded during the campaign")
	}

	if !bytes.Equal(local, remoteLog) {
		t.Errorf("instrumented remote log differs from plain local log: %d vs %d bytes",
			len(remoteLog), len(local))
	}

	// Coordinator-side series over HTTP.
	metrics := httpGet(t, base+"/metrics")
	if v := promValue(t, metrics, "xm_engine_tests_executed_total"); int(v) != tests {
		t.Errorf("xm_engine_tests_executed_total = %v, want %d", v, tests)
	}
	issued := promValue(t, metrics, "xm_lease_issued_total")
	completed := promValue(t, metrics, "xm_lease_completed_total")
	if issued == 0 || issued != completed {
		t.Errorf("leases issued=%v completed=%v, want equal and non-zero", issued, completed)
	}
	if v := promSum(t, metrics, "xm_remote_dials_total"); v == 0 {
		t.Error("xm_remote_dials_total is zero")
	}
	if v := promSum(t, metrics, "xm_remote_wire_bytes_total"); v == 0 {
		t.Error("xm_remote_wire_bytes_total is zero")
	}

	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/healthz")), &health); err != nil || health.Status != "ok" {
		t.Errorf("/healthz = %+v, err %v", health, err)
	}
	var prog obs.Snapshot
	if err := json.Unmarshal([]byte(httpGet(t, base+"/progress")), &prog); err != nil {
		t.Fatalf("/progress: %v", err)
	}
	if int(prog.Done) != tests || int(prog.Total) != tests {
		t.Errorf("/progress = %d/%d, want %d/%d", prog.Done, prog.Total, tests, tests)
	}

	// Worker-side series: both loopback workers share wo, so the fleet's
	// executed count covers the whole campaign (re-executions would only
	// add to it).
	var wb strings.Builder
	if err := wo.Registry().WriteProm(&wb); err != nil {
		t.Fatal(err)
	}
	wmetrics := wb.String()
	if v := promValue(t, wmetrics, "xm_worker_tests_executed_total"); int(v) < tests {
		t.Errorf("xm_worker_tests_executed_total = %v, want >= %d", v, tests)
	}
	// Only applied flips tally an outcome — a scheduled flip can still
	// miss (land beyond the test's execution), so the sum is positive but
	// below the test count.
	if v := promSum(t, wmetrics, "xm_inject_outcomes_total"); v == 0 {
		t.Error("xm_inject_outcomes_total is zero")
	}
}

// gateTarget blocks every Execute on a channel — the probe for draining
// in-flight work through a graceful shutdown.
type gateTarget struct {
	started chan struct{}
	gate    chan struct{}
}

func (g *gateTarget) Name() string         { return "gate" }
func (g *gateTarget) Provision(int) error  { return nil }
func (g *gateTarget) Acquire() target.Slot { return nil }
func (g *gateTarget) Release(target.Slot)  {}
func (g *gateTarget) Execute(_ target.Slot, _ testgen.Dataset, _ target.RunSpec) target.Result {
	g.started <- struct{}{}
	<-g.gate
	return target.Result{}
}

// TestServerGracefulShutdown pins the drain contract: Shutdown waits for
// the in-flight lease, its response still reaches the client, and only
// then does the connection close.
func TestServerGracefulShutdown(t *testing.T) {
	backend := &gateTarget{started: make(chan struct{}, 1), gate: make(chan struct{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Target: backend, Workers: 1}
	go srv.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := ReadFrame(conn); err != nil { // hello
		t.Fatal(err)
	}
	req := execRequest{ID: 7, Tests: []wireTest{{Pos: 0, Func: "XM_get_time"}}}
	if err := WriteFrame(conn, encodeJSON(req)); err != nil {
		t.Fatal(err)
	}
	<-backend.started

	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()
	select {
	case <-done:
		t.Fatal("Shutdown returned with a lease still executing")
	case <-time.After(50 * time.Millisecond):
	}
	if !srv.Draining() {
		t.Error("Draining() false during shutdown")
	}

	close(backend.gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight lease finished")
	}

	// The drained lease's response made it out before the close.
	payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("in-flight response lost in shutdown: %v", err)
	}
	var hdr respHeader
	head, _, _ := bytes.Cut(payload, []byte("\n"))
	if err := json.Unmarshal(head, &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.ID != 7 || hdr.Err != "" || hdr.N != 1 {
		t.Errorf("response header = %+v, want ID 7 with 1 record", hdr)
	}
	if _, err := ReadFrame(conn); err == nil {
		t.Error("connection still open after drain")
	}
}
