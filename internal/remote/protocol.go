// Package remote is the distributed execution layer: it puts any local
// target behind a TCP connection (Server, served by cmd/xmworker) and
// registers the "remote:<addr>[,<addr>...]" campaign backend that fans
// leases across those workers (client.go). The wire carries what the
// execution seam already made serialisable — datasets ship as resolved
// dict values, results return as campaign-log records through the raw
// codec — so a remote campaign's merged log is byte-identical to the
// same campaign executed in-process: the record round-trip is a fixed
// point (see FuzzJSONRecordRoundTrip) and duplicated executions dedupe
// by seq at merge time.
package remote

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/target"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// ProtoVersion is the wire protocol version; both ends refuse a
// mismatch rather than misparse each other.
const ProtoVersion = 1

// maxFrame bounds one length-prefixed frame — far above any real lease
// but small enough that a corrupt length prefix cannot ask for the moon.
const maxFrame = 64 << 20

// frameOverhead is the per-frame framing cost (the 4-byte length
// prefix), counted alongside payload bytes in the wire-byte metrics.
const frameOverhead = 4

// WriteFrame writes one length-prefixed frame: a 4-byte big-endian
// payload length followed by the payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("remote: frame of %d bytes exceeds the %d-byte limit", len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("remote: frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Hello is the first frame a worker sends on every connection: its
// protocol version and the target spec it executes on. The client
// refuses a version or target mismatch — mixing targets would splice
// two backends' logs into one campaign.
type Hello struct {
	Proto  int    `json:"proto"`
	Target string `json:"target"`
}

// wireValue is one resolved dictionary value on the wire — the same
// three fields a campaign-log record carries per parameter.
type wireValue struct {
	Raw      string `json:"raw"`
	Desc     string `json:"desc,omitempty"`
	Validity string `json:"validity,omitempty"`
}

// wireTest is one dataset to execute: its global campaign position plus
// everything the worker needs to rebuild the testgen.Dataset. The
// hypercall ships by name — the worker resolves the signature from its
// spec header, exactly as the campaign-log reader does.
type wireTest struct {
	Pos    int         `json:"pos"`
	Func   string      `json:"func"`
	State  string      `json:"state,omitempty"`
	Values []wireValue `json:"values"`
}

// wireSpec is the per-run execution parameters on the wire: the RunSpec
// knobs that shape a log. Header and Dict stay local (datasets ship
// resolved; the worker's spec header supplies signatures), and Inject is
// never set at this layer — SEU composites run worker-side, inside the
// worker's own target spec.
type wireSpec struct {
	Faults   xm.FaultSet `json:"faults"`
	MAFs     int         `json:"mafs"`
	Stress   bool        `json:"stress,omitempty"`
	Coverage bool        `json:"coverage,omitempty"`
}

// execRequest is one lease on the wire: an ID for response matching
// (connections pipeline; responses may interleave) plus the spec and
// tests to execute.
type execRequest struct {
	ID    uint64     `json:"id"`
	Spec  wireSpec   `json:"spec"`
	Tests []wireTest `json:"tests"`
}

// respHeader is the first line of a response frame; N campaign-log
// record lines (raw-codec JSON Lines, in request order) follow. Err is
// set only for malformed requests — per-test failures travel inside the
// records as RunErr, like every other harness error.
type respHeader struct {
	ID  uint64 `json:"id"`
	N   int    `json:"n"`
	Err string `json:"err,omitempty"`
}

// specToWire projects a RunSpec onto the wire.
func specToWire(spec target.RunSpec) wireSpec {
	return wireSpec{Faults: spec.Faults, MAFs: spec.MAFs, Stress: spec.Stress, Coverage: spec.Coverage}
}

// specFromWire rebuilds the worker-side RunSpec, filling the header and
// dictionary from the defaults the worker executes against.
func specFromWire(ws wireSpec) target.RunSpec {
	return target.RunSpec{
		Faults:   ws.Faults,
		MAFs:     ws.MAFs,
		Stress:   ws.Stress,
		Header:   apispec.Default(),
		Dict:     dict.Builtin(),
		Coverage: ws.Coverage,
	}
}

// testToWire projects one dataset at its campaign position onto the wire.
func testToWire(pos int, ds testgen.Dataset) wireTest {
	wt := wireTest{Pos: pos, Func: ds.Func.Name, State: ds.State}
	for _, v := range ds.Values {
		wt.Values = append(wt.Values, wireValue{Raw: v.Raw, Desc: v.Desc, Validity: v.Validity.String()})
	}
	return wt
}

// testFromWire rebuilds the dataset, resolving the hypercall signature
// against h by name (a bare Function when the spec does not know it, the
// campaign-log reader's lenient behaviour).
func testFromWire(wt wireTest, h *apispec.Header) (testgen.Dataset, error) {
	f, ok := h.Function(wt.Func)
	if !ok {
		f = apispec.Function{Name: wt.Func}
	}
	values := make([]dict.Value, 0, len(wt.Values))
	for _, wv := range wt.Values {
		v := dict.Value{Raw: wv.Raw, Desc: wv.Desc}
		if wv.Validity != "" {
			val, err := dict.ParseValidity(wv.Validity)
			if err != nil {
				return testgen.Dataset{}, fmt.Errorf("remote: test %d: %w", wt.Pos, err)
			}
			v.Validity = val
		}
		values = append(values, v)
	}
	return testgen.Dataset{Func: f, Index: wt.Pos, Values: values, State: wt.State}, nil
}

// encodeJSON marshals a protocol message, panicking on the impossible
// (every message type marshals by construction).
func encodeJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("remote: marshal %T: %v", v, err))
	}
	return data
}
