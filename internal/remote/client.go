package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
	"xmrobust/internal/obs"
	"xmrobust/internal/target"
	"xmrobust/internal/testgen"
)

// Name is the registered spec prefix of the distributed backend.
const Name = "remote"

func init() {
	target.Register(Name,
		"execute on xmworker processes over TCP: remote:<addr>[,<addr>...]",
		func(arg string, cfg target.Config) (target.Target, error) { return newClient(arg, cfg) })
}

// Tunables of the fan-out client. The window bounds pipelined leases per
// connection so one worker cannot swallow the whole queue while another
// idles; the backoff paces redials of a down worker; the attempt cap is
// what turns "every worker is gone" into RunErr records instead of a
// campaign hang.
const (
	inflightWindow = 8
	dialBackoffMin = 50 * time.Millisecond
	dialBackoffMax = 2 * time.Second
	execAttempts   = 8
	dialTimeout    = 3 * time.Second
	helloTimeout   = 5 * time.Second
)

// errConnDown marks a transport failure a retry on another connection
// can heal (as opposed to a protocol refusal, which is deterministic).
var errConnDown = errors.New("remote: connection down")

// client is the "remote:" execution backend: it fans leases across one
// managed connection per worker address. Execute and ExecuteBatch are
// synchronous per caller — the campaign engine's worker pool provides
// the concurrency, and per-connection windows keep each worker's
// pipeline bounded. A connection failure retries the lease on the next
// live worker (re-dialling dead ones behind a backoff), which is the
// lease hand-back path: the caller still holds the lease, so the
// coordinator sees one completion however many workers the lease
// bounced through.
type client struct {
	spec   string
	addrs  []string
	header *apispec.Header
	codec  campaign.Codec
	// ctx is the campaign's cancellation context (target.Config.Ctx).
	// Once done, in-flight round trips abandon their wait — the worker
	// may still execute the lease, but nobody listens — and exec returns
	// Aborted results the engine discards instead of logging. Never nil
	// (Background when the campaign runs uncancellable).
	ctx context.Context

	next   atomic.Uint64 // round-robin cursor over addrs
	nextID atomic.Uint64 // request IDs, unique across connections

	// met is the client's metric set — always a non-nil struct; its
	// handles are nil (one nil check per event) when obs is off.
	met *obs.RemoteMetrics

	mu    sync.Mutex
	conns []*workerConn // lazily (re)dialled, one slot per addr
	dial  []dialState   // per-addr redial pacing
}

// dialState paces redials of one address.
type dialState struct {
	delay     time.Duration
	notBefore time.Time
}

// workerConn is one live connection: a write lock, a response
// demultiplexer keyed by request ID, and an in-flight window.
type workerConn struct {
	addr        string
	helloTarget string // target spec the worker's hello advertised
	conn        net.Conn
	window      chan struct{}
	met         *obs.RemoteMetrics // never nil; nil handles when obs off

	wmu sync.Mutex // frame writes interleave frames, never bytes

	pmu     sync.Mutex
	pending map[uint64]chan []byte
	downErr error
}

func newClient(arg string, cfg target.Config) (*client, error) {
	var addrs []string
	for _, a := range strings.Split(arg, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("target: remote: no worker addresses (want remote:<addr>[,<addr>...])")
	}
	codec, err := campaign.NewCodec("raw")
	if err != nil {
		return nil, err
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return &client{
		spec:   Name + ":" + strings.Join(addrs, ","),
		addrs:  addrs,
		header: apispec.Default(),
		codec:  codec,
		ctx:    ctx,
		met:    obs.NewRemoteMetrics(cfg.Obs.Registry()),
		conns:  make([]*workerConn, len(addrs)),
		dial:   make([]dialState, len(addrs)),
	}, nil
}

// Name returns the canonical spec.
func (c *client) Name() string { return c.spec }

// Provision dials every worker. One live worker is enough to run (the
// rest keep re-dialling behind the scenes), but zero is a refusal — a
// campaign against an empty fleet should fail loudly, not emit a log of
// RunErr records. A fleet advertising two different target specs is
// refused too: its records would splice two backends' logs into one
// campaign.
func (c *client) Provision(workers int) error {
	var (
		firstErr error
		fleet    string
		fleetOf  string
	)
	live := 0
	for i := range c.addrs {
		wc, err := c.getConn(i)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if live == 0 {
			fleet, fleetOf = wc.helloTarget, wc.addr
		} else if wc.helloTarget != fleet {
			return fmt.Errorf("target: remote: worker %s executes %q but %s executes %q — a fleet must share one target",
				wc.addr, wc.helloTarget, fleetOf, fleet)
		}
		live++
	}
	if live == 0 {
		return fmt.Errorf("target: remote: no worker reachable: %w", firstErr)
	}
	return nil
}

// Acquire and Release are trivial: the client's slots are the
// per-connection windows, managed inside exec.
func (c *client) Acquire() target.Slot { return nil }

// Release returns a slot (a no-op; see Acquire).
func (c *client) Release(target.Slot) {}

// Execute runs one dataset on some live worker.
func (c *client) Execute(_ target.Slot, ds testgen.Dataset, spec target.RunSpec) target.Result {
	return c.exec([]testgen.Dataset{ds}, spec)[0]
}

// ExecuteBatch runs a lease of datasets on some live worker in one
// round trip — the BatchExecutor capability, so the engine amortises
// the network round trip exactly like a pooled target amortises
// recycle-and-verify. Results are byte-identical to unbatched execution
// whether or not the worker's own target batches.
func (c *client) ExecuteBatch(_ target.Slot, batch []testgen.Dataset, spec target.RunSpec) []target.Result {
	return c.exec(batch, spec)
}

// exec round-trips one lease, handing it to the next worker on every
// transport failure until a response lands or the attempt budget is
// spent (then every test fails with RunErr — the campaign completes and
// classifies the outage instead of hanging).
func (c *client) exec(batch []testgen.Dataset, spec target.RunSpec) []target.Result {
	req := execRequest{Spec: specToWire(spec)}
	for _, ds := range batch {
		// The dataset's Index is its global campaign position — plans and
		// slices both key it that way — so the worker's records come back
		// already carrying the right seq.
		req.Tests = append(req.Tests, testToWire(ds.Index, ds))
	}
	var lastErr error
	for attempt := 0; attempt < execAttempts; attempt++ {
		if err := c.ctx.Err(); err != nil {
			// The campaign is cancelled: abandon the lease. Aborted
			// results are discarded by the engine — the positions stay
			// pending and re-execute on resume.
			return abortedResults(batch, err)
		}
		wc, err := c.pick()
		if err != nil {
			lastErr = err
			c.met.Retries.Inc()
			time.Sleep(backoff(attempt))
			continue
		}
		req.ID = c.nextID.Add(1)
		payload, err := wc.roundTrip(c.ctx, req.ID, encodeJSON(req))
		if c.ctx.Err() != nil && payload == nil {
			return abortedResults(batch, c.ctx.Err())
		}
		if errors.Is(err, errConnDown) {
			// The worker died with our lease in flight: hand it to the
			// next one. Anything it already executed re-executes there,
			// byte-identically.
			lastErr = err
			c.met.Retries.Inc()
			continue
		}
		if err != nil {
			return errResults(batch, err)
		}
		results, err := c.decodeResults(payload, batch)
		if err != nil {
			return errResults(batch, err)
		}
		return results
	}
	return errResults(batch, lastErr)
}

// pick returns a live connection, round-robin across the fleet,
// re-dialling dead workers whose backoff has elapsed.
func (c *client) pick() (*workerConn, error) {
	start := int(c.next.Add(1))
	var firstErr error
	for k := 0; k < len(c.addrs); k++ {
		i := (start + k) % len(c.addrs)
		wc, err := c.getConn(i)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return wc, nil
	}
	return nil, fmt.Errorf("remote: no live worker: %w", firstErr)
}

// getConn returns the live connection for addr i, dialling if the slot
// is empty or dead and its backoff window has elapsed.
func (c *client) getConn(i int) (*workerConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wc := c.conns[i]; wc != nil && !wc.down() {
		return wc, nil
	}
	if now := time.Now(); now.Before(c.dial[i].notBefore) {
		return nil, fmt.Errorf("remote: %s is down (retry backoff)", c.addrs[i])
	}
	wc, err := dialWorker(c.addrs[i], c.met)
	if err != nil {
		c.met.DialErrors.Inc()
		d := &c.dial[i]
		d.delay *= 2
		if d.delay < dialBackoffMin {
			d.delay = dialBackoffMin
		}
		if d.delay > dialBackoffMax {
			d.delay = dialBackoffMax
		}
		d.notBefore = time.Now().Add(d.delay)
		return nil, err
	}
	c.met.Dials.Inc()
	c.dial[i] = dialState{}
	c.conns[i] = wc
	return wc, nil
}

// dialWorker dials one worker and verifies its hello. met must be
// non-nil (its handles may be — obs off).
func dialWorker(addr string, met *obs.RemoteMetrics) (*workerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: %s: no hello: %w", addr, err)
	}
	conn.SetReadDeadline(time.Time{})
	var hello Hello
	if err := json.Unmarshal(payload, &hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: %s: bad hello: %w", addr, err)
	}
	if hello.Proto != ProtoVersion {
		conn.Close()
		return nil, fmt.Errorf("remote: %s speaks protocol %d, this client speaks %d", addr, hello.Proto, ProtoVersion)
	}
	wc := &workerConn{
		addr:        addr,
		helloTarget: hello.Target,
		conn:        conn,
		window:      make(chan struct{}, inflightWindow),
		met:         met,
		pending:     map[uint64]chan []byte{},
	}
	go wc.readLoop()
	return wc, nil
}

// WorkerTarget dials addr and returns the target spec its hello
// advertises — the discovery surface behind fleet-consistency checks.
func WorkerTarget(addr string) (string, error) {
	wc, err := dialWorker(addr, obs.NewRemoteMetrics(nil))
	if err != nil {
		return "", err
	}
	wc.conn.Close()
	return wc.helloTarget, nil
}

// down reports whether the connection has failed.
func (wc *workerConn) down() bool {
	wc.pmu.Lock()
	defer wc.pmu.Unlock()
	return wc.downErr != nil
}

// fail marks the connection dead and wakes every pending round trip with
// the bad news.
func (wc *workerConn) fail(err error) {
	wc.pmu.Lock()
	if wc.downErr == nil {
		wc.downErr = err
		for id, ch := range wc.pending {
			close(ch)
			delete(wc.pending, id)
		}
	}
	wc.pmu.Unlock()
	wc.conn.Close()
}

// readLoop demultiplexes response frames to their waiting round trips.
func (wc *workerConn) readLoop() {
	for {
		payload, err := ReadFrame(wc.conn)
		if err != nil {
			wc.fail(fmt.Errorf("%w: %s: %v", errConnDown, wc.addr, err))
			return
		}
		wc.met.WireRx.Add(uint64(len(payload)) + frameOverhead)
		line := payload
		if i := bytes.IndexByte(payload, '\n'); i >= 0 {
			line = payload[:i]
		}
		var hdr respHeader
		if err := json.Unmarshal(line, &hdr); err != nil {
			wc.fail(fmt.Errorf("%w: %s: bad response header: %v", errConnDown, wc.addr, err))
			return
		}
		wc.pmu.Lock()
		ch := wc.pending[hdr.ID]
		delete(wc.pending, hdr.ID)
		wc.pmu.Unlock()
		if ch != nil {
			ch <- payload
		}
	}
}

// roundTrip sends one request frame and waits for its response payload,
// respecting the in-flight window. errConnDown failures are retryable
// on another connection; a done ctx abandons the wait (the connection
// stays healthy — the worker's eventual response is dropped by the
// demultiplexer, whose pending entry is removed here).
func (wc *workerConn) roundTrip(ctx context.Context, id uint64, frame []byte) ([]byte, error) {
	select {
	case wc.window <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	wc.met.Inflight.Add(1)
	defer func() {
		wc.met.Inflight.Add(-1)
		<-wc.window
	}()

	ch := make(chan []byte, 1)
	wc.pmu.Lock()
	if wc.downErr != nil {
		err := wc.downErr
		wc.pmu.Unlock()
		return nil, err
	}
	wc.pending[id] = ch
	wc.pmu.Unlock()

	wc.wmu.Lock()
	err := WriteFrame(wc.conn, frame)
	wc.wmu.Unlock()
	if err == nil {
		wc.met.WireTx.Add(uint64(len(frame)) + frameOverhead)
	}
	if err != nil {
		wc.fail(fmt.Errorf("%w: %s: %v", errConnDown, wc.addr, err))
		return nil, fmt.Errorf("%w: %s: %v", errConnDown, wc.addr, err)
	}

	select {
	case payload, ok := <-ch:
		if !ok {
			wc.pmu.Lock()
			err := wc.downErr
			wc.pmu.Unlock()
			return nil, err
		}
		return payload, nil
	case <-ctx.Done():
		wc.pmu.Lock()
		delete(wc.pending, id)
		wc.pmu.Unlock()
		return nil, ctx.Err()
	}
}

// decodeResults turns a response payload back into execution logs, in
// lease order.
func (c *client) decodeResults(payload []byte, batch []testgen.Dataset) ([]target.Result, error) {
	i := bytes.IndexByte(payload, '\n')
	if i < 0 {
		return nil, fmt.Errorf("remote: response without header line")
	}
	var hdr respHeader
	if err := json.Unmarshal(payload[:i], &hdr); err != nil {
		return nil, fmt.Errorf("remote: bad response header: %w", err)
	}
	if hdr.Err != "" {
		return nil, fmt.Errorf("remote: worker refused lease: %s", hdr.Err)
	}
	if hdr.N != len(batch) {
		return nil, fmt.Errorf("remote: worker returned %d records for a lease of %d", hdr.N, len(batch))
	}
	results := make([]target.Result, 0, len(batch))
	rest := payload[i+1:]
	for len(results) < hdr.N {
		j := bytes.IndexByte(rest, '\n')
		if j < 0 {
			return nil, fmt.Errorf("remote: response truncated at record %d", len(results))
		}
		var rec campaign.JSONRecord
		if err := c.codec.Decode(rest[:j+1], &rec); err != nil {
			return nil, fmt.Errorf("remote: record %d: %w", len(results), err)
		}
		r, err := rec.Result(c.header)
		if err != nil {
			return nil, fmt.Errorf("remote: record %d: %w", len(results), err)
		}
		results = append(results, r)
		rest = rest[j+1:]
	}
	return results, nil
}

// abortedResults marks every test of a cancelled lease Aborted — the
// engine discards them instead of logging, so the positions stay
// unmarked in the checkpoint and re-execute on resume.
func abortedResults(batch []testgen.Dataset, err error) []target.Result {
	out := make([]target.Result, 0, len(batch))
	for _, ds := range batch {
		out = append(out, target.Result{Dataset: ds, RunErr: err.Error(), Aborted: true})
	}
	return out
}

// errResults fails every test of a lease with the transport error — the
// harness-error shape every other backend uses for environmental
// failures.
func errResults(batch []testgen.Dataset, err error) []target.Result {
	out := make([]target.Result, 0, len(batch))
	for _, ds := range batch {
		out = append(out, target.Result{Dataset: ds, RunErr: err.Error()})
	}
	return out
}

// backoff paces lease retries when no worker is reachable.
func backoff(attempt int) time.Duration {
	d := dialBackoffMin << attempt
	if d > dialBackoffMax {
		d = dialBackoffMax
	}
	return d
}
