// Package apispec models the API Header XML of paper Fig. 2: the list of
// all hypercalls of the separation kernel under test, with parameter names
// and data types — the first of the two kernel-specific inputs to the
// test-generation toolset (the other being the Data Type XML of package
// dict).
//
// The document can be authored by hand for an arbitrary kernel, or derived
// from the xm package's hypercall registry with FromRegistry. Two
// extensions over the paper's excerpt support campaign definition:
// Tested="YES|NO" selects the calls of the campaign, and a per-parameter
// ValueSet attribute overrides the type-bound dictionary with a named set
// (the context-narrowed datasets of paper §V).
package apispec

import (
	"encoding/xml"
	"fmt"
	"strings"

	"xmrobust/internal/xm"
)

// Parameter is one formal parameter of a hypercall.
type Parameter struct {
	Name      string `xml:"Name,attr"`
	Type      string `xml:"Type,attr"`
	IsPointer string `xml:"IsPointer,attr"` // "YES"/"NO", as in paper Fig. 2
	// ValueSet optionally names a dict.NamedSet overriding the type-bound
	// dictionary for this parameter.
	ValueSet string `xml:"ValueSet,attr,omitempty"`
}

// Pointer reports the IsPointer flag.
func (p Parameter) Pointer() bool { return strings.EqualFold(p.IsPointer, "YES") }

// Function is one <Function> element: a hypercall signature.
type Function struct {
	Name       string      `xml:"Name,attr"`
	ReturnType string      `xml:"ReturnType,attr"`
	IsPointer  string      `xml:"IsPointer,attr"`
	Category   string      `xml:"Category,attr,omitempty"`
	Tested     string      `xml:"Tested,attr,omitempty"` // "YES"/"NO"
	Params     []Parameter `xml:"ParametersList>Parameter"`
}

// IsTested reports whether the function is part of the campaign.
func (f Function) IsTested() bool { return strings.EqualFold(f.Tested, "YES") }

// Header is the API Header XML document root.
type Header struct {
	XMLName   xml.Name   `xml:"ApiHeader"`
	Kernel    string     `xml:"Kernel,attr,omitempty"`
	Version   string     `xml:"Version,attr,omitempty"`
	Functions []Function `xml:"Function"`
}

// Function looks up a hypercall by name.
func (h *Header) Function(name string) (Function, bool) {
	for _, f := range h.Functions {
		if f.Name == name {
			return f, true
		}
	}
	return Function{}, false
}

// Tested returns the functions selected for the campaign, in document
// order.
func (h *Header) Tested() []Function {
	var out []Function
	for _, f := range h.Functions {
		if f.IsTested() {
			out = append(out, f)
		}
	}
	return out
}

// Validate checks structural consistency and, when the function names
// exist in the xm registry, agreement with the kernel's actual ABI.
func (h *Header) Validate() error {
	seen := map[string]bool{}
	for _, f := range h.Functions {
		if f.Name == "" {
			return fmt.Errorf("apispec: function without Name")
		}
		if seen[f.Name] {
			return fmt.Errorf("apispec: duplicate function %q", f.Name)
		}
		seen[f.Name] = true
		for _, p := range f.Params {
			if p.Name == "" || p.Type == "" {
				return fmt.Errorf("apispec: %s: parameter without Name/Type", f.Name)
			}
		}
		if spec, ok := xm.LookupName(f.Name); ok {
			if len(spec.Params) != len(f.Params) {
				return fmt.Errorf("apispec: %s: %d parameters, kernel ABI has %d",
					f.Name, len(f.Params), len(spec.Params))
			}
			for i, p := range f.Params {
				if spec.Params[i].Type != p.Type {
					return fmt.Errorf("apispec: %s/%s: type %q, kernel ABI has %q",
						f.Name, p.Name, p.Type, spec.Params[i].Type)
				}
			}
		}
	}
	return nil
}

// Parse reads an API Header XML document.
func Parse(data []byte) (*Header, error) {
	var h Header
	if err := xml.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("apispec: %w", err)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// Emit writes the document as indented XML.
func (h *Header) Emit() ([]byte, error) {
	out, err := xml.MarshalIndent(h, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("apispec: %w", err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

func yesNo(b bool) string {
	if b {
		return "YES"
	}
	return "NO"
}

// FromRegistry derives the API Header document from the kernel's hypercall
// registry, marking the given tested set and applying per-parameter value
// set overrides (function name -> parameter name -> named set).
func FromRegistry(tested map[string]bool, overrides map[string]map[string]string) *Header {
	h := &Header{Kernel: "XtratuM", Version: "3.x (LEON3)"}
	for _, spec := range xm.Hypercalls() {
		f := Function{
			Name:       spec.Name,
			ReturnType: spec.ReturnType,
			IsPointer:  "NO",
			Category:   string(spec.Category),
			Tested:     yesNo(tested[spec.Name]),
		}
		for _, p := range spec.Params {
			fp := Parameter{Name: p.Name, Type: p.Type, IsPointer: yesNo(p.Pointer)}
			if ov, ok := overrides[spec.Name]; ok {
				fp.ValueSet = ov[p.Name]
			}
			f.Params = append(f.Params, fp)
		}
		h.Functions = append(h.Functions, f)
	}
	return h
}

// DefaultTested returns the 39-hypercall selection of the paper's campaign
// (Table III "Hypercalls tested" column): every call with parameters
// except the twelve documented skips.
func DefaultTested() map[string]bool {
	skipped := map[string]bool{
		// Untested calls with parameters (12), per the campaign notes.
		"XM_get_partition_mmap":   true,
		"XM_set_partition_opmode": true,
		"XM_get_plan_status":      true,
		"XM_create_queuing_port":  true,
		"XM_get_port_info":        true,
		"XM_update_page32":        true,
		"XM_trace_open":           true,
		"XM_flush_cache":          true,
		"XM_get_params":           true,
		"XM_sparc_set_psr":        true,
		"XM_sparc_write_tbr":      true,
		"XM_sparc_iflush":         true,
	}
	tested := map[string]bool{}
	for _, spec := range xm.Hypercalls() {
		if spec.NumParams() == 0 || skipped[spec.Name] {
			continue
		}
		tested[spec.Name] = true
	}
	return tested
}

// DefaultOverrides returns the per-parameter value-set overrides of the
// reproduction campaign: the plan-management reduced dataset (plan
// switches only take effect at the next major frame, so a full sweep is
// impractical — hence the paper's two Plan Management tests) and the
// narrowed interrupt-route type set.
func DefaultOverrides() map[string]map[string]string {
	return map[string]map[string]string{
		"XM_switch_sched_plan": {
			"planId":     "plan_ids",
			"prevPlanId": "null_only",
		},
		"XM_route_irq": {
			"type": "irq_types",
		},
		// Bitmask-typed parameters get a bit-pattern dictionary (single
		// bits, adjacent bits, all-ones) rather than the generic integer
		// boundaries.
		"XM_trace_event": {
			"bitmask": "trace_bitmasks",
		},
	}
}

// Default returns the campaign's API Header document: the full registry
// with the paper's tested selection and overrides.
func Default() *Header {
	return FromRegistry(DefaultTested(), DefaultOverrides())
}
