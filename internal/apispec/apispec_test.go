package apispec

import (
	"strings"
	"testing"

	"xmrobust/internal/xm"
)

func TestDefaultCoversWholeRegistry(t *testing.T) {
	h := Default()
	if len(h.Functions) != xm.NumHypercalls {
		t.Fatalf("functions = %d, want %d", len(h.Functions), xm.NumHypercalls)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultTestedSelectionIs39(t *testing.T) {
	h := Default()
	tested := h.Tested()
	if len(tested) != 39 {
		t.Fatalf("tested = %d hypercalls, want 39 (Table III)", len(tested))
	}
	// Per-category tested counts of Table III.
	want := map[xm.Category]int{
		xm.CatSystem: 2, xm.CatPartition: 6, xm.CatTime: 2, xm.CatPlan: 1,
		xm.CatIPC: 8, xm.CatMemory: 1, xm.CatHM: 3, xm.CatTrace: 4,
		xm.CatInterrupt: 4, xm.CatMisc: 3, xm.CatSparc: 5,
	}
	got := map[xm.Category]int{}
	for _, f := range tested {
		got[xm.Category(f.Category)]++
	}
	for cat, n := range want {
		if got[cat] != n {
			t.Errorf("%s: tested %d, want %d", cat, got[cat], n)
		}
	}
}

func TestNoParameterlessCallIsTested(t *testing.T) {
	// The paper excluded parameter-less hypercalls from the campaign
	// scope ("this was not considered for the scope of this exercise").
	for _, f := range Default().Tested() {
		if len(f.Params) == 0 {
			t.Errorf("%s: parameter-less call marked tested", f.Name)
		}
	}
}

func TestOverridesApplied(t *testing.T) {
	h := Default()
	f, ok := h.Function("XM_switch_sched_plan")
	if !ok {
		t.Fatal("XM_switch_sched_plan missing")
	}
	if f.Params[0].ValueSet != "plan_ids" || f.Params[1].ValueSet != "null_only" {
		t.Fatalf("overrides = %+v", f.Params)
	}
	r, _ := h.Function("XM_route_irq")
	if r.Params[0].ValueSet != "irq_types" {
		t.Fatalf("route_irq override = %+v", r.Params)
	}
}

func TestEmitMatchesFig2Shape(t *testing.T) {
	out, err := Default().Emit()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`<Function Name="XM_reset_partition" ReturnType="xm_s32_t" IsPointer="NO"`,
		"<ParametersList>",
		`<Parameter Name="partitionId" Type="xm_s32_t" IsPointer="NO"`,
		`<Parameter Name="resetMode" Type="xm_u32_t" IsPointer="NO"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("emitted XML lacks %q (Fig. 2 shape)", want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	out, err := Default().Emit()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.Functions) != xm.NumHypercalls {
		t.Fatalf("round trip lost functions: %d", len(h2.Functions))
	}
	if len(h2.Tested()) != 39 {
		t.Fatalf("round trip lost tested flags: %d", len(h2.Tested()))
	}
	f, ok := h2.Function("XM_set_timer")
	if !ok || len(f.Params) != 3 || f.Params[1].Type != "xmTime_t" {
		t.Fatalf("XM_set_timer after round trip: %+v %v", f, ok)
	}
}

func TestParseHandAuthoredHeader(t *testing.T) {
	// The Fig. 2 excerpt, verbatim (modulo the document root).
	src := `<?xml version="1.0"?>
<ApiHeader Kernel="XtratuM">
  <Function Name="XM_reset_partition" ReturnType="xm_s32_t" IsPointer="NO" Tested="YES">
    <ParametersList>
      <Parameter Name="partitionId" Type="xm_s32_t" IsPointer="NO"/>
      <Parameter Name="resetMode" Type="xm_u32_t" IsPointer="NO"/>
      <Parameter Name="status" Type="xm_u32_t" IsPointer="NO"/>
    </ParametersList>
  </Function>
</ApiHeader>`
	h, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Tested()) != 1 {
		t.Fatalf("tested = %d", len(h.Tested()))
	}
	f := h.Tested()[0]
	if f.Name != "XM_reset_partition" || len(f.Params) != 3 {
		t.Fatalf("parsed %+v", f)
	}
	if f.Params[0].Pointer() {
		t.Error("partitionId marked pointer")
	}
}

func TestValidateCatchesABIMismatch(t *testing.T) {
	src := `<ApiHeader>
  <Function Name="XM_reset_partition" ReturnType="xm_s32_t">
    <ParametersList>
      <Parameter Name="partitionId" Type="xm_s32_t"/>
    </ParametersList>
  </Function>
</ApiHeader>`
	if _, err := Parse([]byte(src)); err == nil {
		t.Fatal("accepted a header disagreeing with the kernel ABI arity")
	}
	src2 := strings.Replace(`<ApiHeader>
  <Function Name="XM_halt_partition" ReturnType="xm_s32_t">
    <ParametersList>
      <Parameter Name="partitionId" Type="xm_u32_t"/>
    </ParametersList>
  </Function>
</ApiHeader>`, "", "", 1)
	if _, err := Parse([]byte(src2)); err == nil {
		t.Fatal("accepted a header disagreeing with the kernel ABI types")
	}
}

func TestValidateCatchesStructuralErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"dup function", `<ApiHeader><Function Name="A"/><Function Name="A"/></ApiHeader>`},
		{"unnamed function", `<ApiHeader><Function Name=""/></ApiHeader>`},
		{"unnamed param", `<ApiHeader><Function Name="F"><ParametersList><Parameter Name="" Type="xm_u32_t"/></ParametersList></Function></ApiHeader>`},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestUnknownKernelFunctionsAllowed(t *testing.T) {
	// Headers for other kernels must parse: registry validation only
	// applies to names the kernel knows.
	src := `<ApiHeader Kernel="PikeOS">
  <Function Name="p4_thread_create" ReturnType="int" Tested="YES">
    <ParametersList><Parameter Name="prio" Type="xm_u32_t"/></ParametersList>
  </Function>
</ApiHeader>`
	h, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.Kernel != "PikeOS" || len(h.Tested()) != 1 {
		t.Fatalf("parsed %+v", h)
	}
}
