package campaign

import (
	"bytes"
	"strings"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
)

func smallResults(t *testing.T) []Result {
	t.Helper()
	h := apispec.Default()
	f, _ := h.Function("XM_reset_system")
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	return RunDatasets(m.Datasets(), Options{Workers: 2})
}

func TestJSONRoundTrip(t *testing.T) {
	results := smallResults(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	summaries, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRoundTrip(results, summaries); err != nil {
		t.Fatal(err)
	}
}

func TestJSONIsLineOriented(t *testing.T) {
	results := smallResults(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(results) {
		t.Fatalf("lines = %d, results = %d", len(lines), len(results))
	}
	for i, l := range lines {
		if !strings.HasPrefix(l, `{"func":"XM_reset_system"`) {
			t.Fatalf("line %d = %q", i, l)
		}
	}
}

func TestJSONCarriesTheEvidence(t *testing.T) {
	results := smallResults(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// The mode=2 record carries the unexpected reset evidence.
	if !strings.Contains(s, `"dataset":["2"]`) || !strings.Contains(s, `"cold_resets":2`) {
		t.Fatalf("export lacks the reset evidence:\n%s", s)
	}
	if !strings.Contains(s, `"return_names":["XM_INVALID_PARAM"`) {
		// Modes 0/1 legitimately reset; the invalid ones never return on
		// the legacy kernel — so INVALID_PARAM only appears if the
		// patched kernel ran. Check the legacy shape instead:
		if !strings.Contains(s, `"returns":null`) && !strings.Contains(s, `"invocations":2`) {
			t.Fatalf("export shape unexpected:\n%s", s)
		}
	}
}

func TestVerifyRoundTripDetectsDrift(t *testing.T) {
	results := smallResults(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	summaries, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	summaries[0].Func = "XM_other"
	if err := VerifyRoundTrip(results, summaries); err == nil {
		t.Fatal("func drift not detected")
	}
	if err := VerifyRoundTrip(results, summaries[1:]); err == nil {
		t.Fatal("length drift not detected")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
