package campaign

// This file is the record codec seam: campaign-log records reach disk
// through a Codec, registered like targets and plans. Two codecs ship
// built in — "json" (encoding/json, the reference implementation) and
// "raw" (a hand-rolled encoder/decoder producing byte-identical lines
// without encoding/json's per-record reflection and allocation cost).
// The wire format never varies with the codec: a shard written with one
// reads back with the other, and the golden test pins both to the same
// bytes across the fuzz corpus.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"

	"xmrobust/internal/inject"
)

// injectInjection keeps the decoder's nested-object parser on the same
// type the record embeds.
type injectInjection = inject.Injection

// Codec serialises campaign-log records to JSON Lines and back. Every
// codec speaks the same wire format — the encoding/json rendering of
// JSONRecord — so the codec choice is a cost decision, never a
// compatibility one. AppendEncode appends one record (without the
// trailing newline) to dst and returns the extended buffer; Decode
// overwrites *rec with the record parsed from one line.
type Codec interface {
	Name() string
	AppendEncode(dst []byte, rec *JSONRecord) ([]byte, error)
	Decode(line []byte, rec *JSONRecord) error
}

// CodecInfo describes one registered codec for discovery surfaces.
type CodecInfo struct {
	Name string
	Desc string
}

type codecEntry struct {
	desc  string
	codec Codec
}

// codecRegistry mirrors the target and plan registries.
var codecRegistry = map[string]codecEntry{}

// RegisterCodec adds (or replaces) a record codec under its own Name,
// with a one-line description for the discovery surfaces.
func RegisterCodec(desc string, c Codec) {
	codecRegistry[c.Name()] = codecEntry{desc: desc, codec: c}
}

// NewCodec resolves a codec name against the registry ("" defaults to
// json, the reference implementation).
func NewCodec(name string) (Codec, error) {
	if name == "" {
		name = "json"
	}
	e, ok := codecRegistry[name]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown codec %q (have %s)", name, strings.Join(CodecNames(), ", "))
	}
	return e.codec, nil
}

// CodecNames returns the registered codec names, sorted.
func CodecNames() []string {
	out := make([]string, 0, len(codecRegistry))
	for n := range codecRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CodecInventory returns every registered codec with its description,
// sorted by name.
func CodecInventory() []CodecInfo {
	out := make([]CodecInfo, 0, len(codecRegistry))
	for n, e := range codecRegistry {
		out = append(out, CodecInfo{Name: n, Desc: e.desc})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

func init() {
	RegisterCodec("encoding/json record serialisation — the reference wire format (default)", jsonCodec{})
	RegisterCodec("hand-rolled allocation-free serialisation, byte-identical to json", rawCodec{})
}

// --- json codec ---------------------------------------------------------

// jsonCodec is the reference codec: encoding/json, whose rendering of
// JSONRecord defines the wire format every other codec must reproduce.
type jsonCodec struct{}

func (jsonCodec) Name() string { return "json" }

func (jsonCodec) AppendEncode(dst []byte, rec *JSONRecord) ([]byte, error) {
	out, err := json.Marshal(rec)
	if err != nil {
		return dst, err
	}
	return append(dst, out...), nil
}

func (jsonCodec) Decode(line []byte, rec *JSONRecord) error {
	*rec = JSONRecord{}
	return json.Unmarshal(line, rec)
}

// --- raw codec ----------------------------------------------------------

// rawCodec hand-rolls the JSONRecord wire format: the encoder reproduces
// encoding/json's rendering byte for byte (field order, omitempty, nil
// slices as null, HTML escaping, U+FFFD replacement) without reflection
// or per-record allocation; the decoder parses the same format strictly
// and defers to encoding/json on any line it does not fully recognise,
// so hostile or foreign input gets exactly the reference semantics.
type rawCodec struct{}

func (rawCodec) Name() string { return "raw" }

func (rawCodec) AppendEncode(dst []byte, rec *JSONRecord) ([]byte, error) {
	return rawAppendRecord(dst, rec), nil
}

func (rawCodec) Decode(line []byte, rec *JSONRecord) error {
	*rec = JSONRecord{}
	if rawDecodeRecord(line, rec) != nil {
		*rec = JSONRecord{}
		return json.Unmarshal(line, rec)
	}
	return nil
}

// --- raw encoder --------------------------------------------------------

const rawHexDigits = "0123456789abcdef"

// rawAppendString appends the encoding/json rendering of s: quoted, with
// HTML-sensitive characters (<, >, &) and controls escaped, invalid
// UTF-8 replaced by �, and U+2028/U+2029 escaped for embedders.
func rawAppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', rawHexDigits[b>>4], rawHexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', rawHexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// rawAppendStrings renders a []string field without omitempty semantics:
// nil is null, empty is [].
func rawAppendStrings(dst []byte, ss []string) []byte {
	if ss == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, s := range ss {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = rawAppendString(dst, s)
	}
	return append(dst, ']')
}

func rawAppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// rawAppendRecord appends the wire rendering of rec — field for field
// the order and omitempty behaviour of the JSONRecord struct tags.
func rawAppendRecord(dst []byte, rec *JSONRecord) []byte {
	dst = append(dst, `{"func":`...)
	dst = rawAppendString(dst, rec.Func)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendInt(dst, int64(rec.Seq), 10)
	if rec.Target != "" {
		dst = append(dst, `,"target":`...)
		dst = rawAppendString(dst, rec.Target)
	}
	if rec.State != "" {
		dst = append(dst, `,"state":`...)
		dst = rawAppendString(dst, rec.State)
	}
	if rec.TestPart != 0 {
		dst = append(dst, `,"test_part":`...)
		dst = strconv.AppendInt(dst, int64(rec.TestPart), 10)
	}
	dst = append(dst, `,"dataset":`...)
	dst = rawAppendStrings(dst, rec.Dataset)
	if len(rec.Descs) > 0 {
		dst = append(dst, `,"descs":`...)
		dst = rawAppendStrings(dst, rec.Descs)
	}
	if len(rec.Validity) > 0 {
		dst = append(dst, `,"validity":`...)
		dst = rawAppendStrings(dst, rec.Validity)
	}
	dst = append(dst, `,"invocations":`...)
	dst = strconv.AppendInt(dst, int64(rec.Invocations), 10)
	dst = append(dst, `,"returns":`...)
	if rec.Returns == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, rc := range rec.Returns {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(rc), 10)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"return_names":`...)
	dst = rawAppendStrings(dst, rec.ReturnNames)
	dst = append(dst, `,"kernel_state":`...)
	dst = rawAppendString(dst, rec.KernelState)
	if rec.KernelHalt != "" {
		dst = append(dst, `,"kernel_halt":`...)
		dst = rawAppendString(dst, rec.KernelHalt)
	}
	dst = append(dst, `,"cold_resets":`...)
	dst = strconv.AppendUint(dst, uint64(rec.ColdResets), 10)
	dst = append(dst, `,"warm_resets":`...)
	dst = strconv.AppendUint(dst, uint64(rec.WarmResets), 10)
	if len(rec.HMEvents) > 0 {
		dst = append(dst, `,"hm_events":`...)
		dst = rawAppendStrings(dst, rec.HMEvents)
	}
	if len(rec.HMLog) > 0 {
		dst = append(dst, `,"hm":[`...)
		for i := range rec.HMLog {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = rawAppendHMEvent(dst, &rec.HMLog[i])
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"part_state":`...)
	dst = rawAppendString(dst, rec.PartState)
	if rec.PartDetail != "" {
		dst = append(dst, `,"part_detail":`...)
		dst = rawAppendString(dst, rec.PartDetail)
	}
	dst = append(dst, `,"sim_crashed":`...)
	dst = rawAppendBool(dst, rec.SimCrashed)
	if rec.CrashReason != "" {
		dst = append(dst, `,"crash_reason":`...)
		dst = rawAppendString(dst, rec.CrashReason)
	}
	if rec.RunErr != "" {
		dst = append(dst, `,"run_err":`...)
		dst = rawAppendString(dst, rec.RunErr)
	}
	if len(rec.Cover) > 0 {
		dst = append(dst, `,"cover":[`...)
		for i, site := range rec.Cover {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendUint(dst, uint64(site), 10)
		}
		dst = append(dst, ']')
	}
	if rec.CoverSig != "" {
		dst = append(dst, `,"cover_sig":`...)
		dst = rawAppendString(dst, rec.CoverSig)
	}
	if d := rec.Divergence; d != nil {
		dst = append(dst, `,"divergence":{"targets":[`...)
		dst = rawAppendString(dst, d.Targets[0])
		dst = append(dst, ',')
		dst = rawAppendString(dst, d.Targets[1])
		dst = append(dst, `],"fields":`...)
		dst = rawAppendStrings(dst, d.Fields)
		dst = append(dst, `,"a":`...)
		dst = rawAppendStrings(dst, d.A)
		dst = append(dst, `,"b":`...)
		dst = rawAppendStrings(dst, d.B)
		dst = append(dst, '}')
	}
	if inj := rec.Injection; inj != nil {
		dst = append(dst, `,"injection":{"site":`...)
		dst = rawAppendString(dst, inj.Site)
		dst = append(dst, `,"phase":`...)
		dst = rawAppendString(dst, inj.Phase)
		dst = append(dst, `,"bit":`...)
		dst = strconv.AppendUint(dst, uint64(inj.Bit), 10)
		if inj.Frame != 0 {
			dst = append(dst, `,"frame":`...)
			dst = strconv.AppendInt(dst, int64(inj.Frame), 10)
		}
		if inj.Addr != 0 {
			dst = append(dst, `,"addr":`...)
			dst = strconv.AppendUint(dst, inj.Addr, 10)
		}
		if inj.Cycle != 0 {
			dst = append(dst, `,"cycle":`...)
			dst = strconv.AppendInt(dst, inj.Cycle, 10)
		}
		dst = append(dst, `,"applied":`...)
		dst = rawAppendBool(dst, inj.Applied)
		if inj.Outcome != "" {
			dst = append(dst, `,"outcome":`...)
			dst = rawAppendString(dst, inj.Outcome)
		}
		if inj.Delta != "" {
			dst = append(dst, `,"delta":`...)
			dst = rawAppendString(dst, inj.Delta)
		}
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

func rawAppendHMEvent(dst []byte, e *JSONHMEvent) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, uint64(e.Seq), 10)
	dst = append(dst, `,"t":`...)
	dst = strconv.AppendInt(dst, e.Time, 10)
	dst = append(dst, `,"ev":`...)
	dst = strconv.AppendInt(dst, int64(e.Event), 10)
	dst = append(dst, `,"act":`...)
	dst = strconv.AppendInt(dst, int64(e.Action), 10)
	if e.Sys {
		dst = append(dst, `,"sys":true`...)
	}
	dst = append(dst, `,"part":`...)
	dst = strconv.AppendInt(dst, int64(e.Part), 10)
	if e.Detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = rawAppendString(dst, e.Detail)
	}
	return append(dst, '}')
}

// --- raw decoder --------------------------------------------------------

// errRawFallback marks a line the strict parser declines: anything
// outside the wire format's own shape (unknown keys, non-integer
// numbers, out-of-range values, trailing garbage). The codec then hands
// the line to encoding/json, whose semantics — including its exact
// error — are authoritative.
var errRawFallback = fmt.Errorf("campaign: raw codec: line outside the strict wire format")

type rawParser struct {
	b []byte
	i int
}

func (p *rawParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// lit consumes c (after whitespace) and reports whether it was there.
func (p *rawParser) lit(c byte) bool {
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// null consumes the null literal when present.
func (p *rawParser) null() bool {
	p.ws()
	if p.i+4 <= len(p.b) && string(p.b[p.i:p.i+4]) == "null" {
		p.i += 4
		return true
	}
	return false
}

// str parses one JSON string with full escape handling. Raw control
// characters and malformed escapes defer to the fallback, matching
// encoding/json's rejections; invalid UTF-8 passes through as U+FFFD,
// matching its coercion.
func (p *rawParser) str() (string, error) {
	p.ws()
	if p.i >= len(p.b) || p.b[p.i] != '"' {
		return "", errRawFallback
	}
	p.i++
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := string(p.b[start:p.i])
			p.i++
			return s, nil
		}
		if c == '\\' || c < ' ' || c >= utf8.RuneSelf {
			break
		}
		p.i++
	}
	buf := append(make([]byte, 0, 64), p.b[start:p.i]...)
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c == '"':
			p.i++
			return string(buf), nil
		case c < ' ':
			return "", errRawFallback
		case c == '\\':
			p.i++
			if p.i >= len(p.b) {
				return "", errRawFallback
			}
			switch e := p.b[p.i]; e {
			case '"', '\\', '/':
				buf = append(buf, e)
				p.i++
			case 'b':
				buf = append(buf, '\b')
				p.i++
			case 'f':
				buf = append(buf, '\f')
				p.i++
			case 'n':
				buf = append(buf, '\n')
				p.i++
			case 'r':
				buf = append(buf, '\r')
				p.i++
			case 't':
				buf = append(buf, '\t')
				p.i++
			case 'u':
				p.i++
				r, err := p.hex4()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					r2 := rune(utf8.RuneError)
					if p.i+2 <= len(p.b) && p.b[p.i] == '\\' && p.b[p.i+1] == 'u' {
						save := p.i
						p.i += 2
						lo, err := p.hex4()
						if err != nil {
							return "", err
						}
						if dec := utf16.DecodeRune(r, lo); dec != utf8.RuneError {
							r2 = dec
						} else {
							p.i = save
						}
					}
					r = r2
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return "", errRawFallback
			}
		case c < utf8.RuneSelf:
			buf = append(buf, c)
			p.i++
		default:
			r, size := utf8.DecodeRune(p.b[p.i:])
			if r == utf8.RuneError && size == 1 {
				buf = utf8.AppendRune(buf, utf8.RuneError)
				p.i++
			} else {
				buf = append(buf, p.b[p.i:p.i+size]...)
				p.i += size
			}
		}
	}
	return "", errRawFallback
}

// hex4 parses four hex digits of a \u escape.
func (p *rawParser) hex4() (rune, error) {
	if p.i+4 > len(p.b) {
		return 0, errRawFallback
	}
	var r rune
	for _, c := range p.b[p.i : p.i+4] {
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 + rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 + rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 + rune(c-'A'+10)
		default:
			return 0, errRawFallback
		}
	}
	p.i += 4
	return r, nil
}

// intIn parses a JSON integer within [min, max]. Fractions, exponents,
// leading zeros and out-of-range values defer to the fallback — exactly
// the inputs encoding/json rejects (or that would overflow the field).
func (p *rawParser) intIn(min, max int64) (int64, error) {
	p.ws()
	neg := false
	if p.i < len(p.b) && p.b[p.i] == '-' {
		neg = true
		p.i++
	}
	start := p.i
	var v uint64
	for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
		d := uint64(p.b[p.i] - '0')
		// Cap the magnitude at 1<<63 (the widest any int64 field needs);
		// anything larger overflows every integer field and falls back.
		if v > ((1<<63)-d)/10 {
			return 0, errRawFallback
		}
		v = v*10 + d
		p.i++
	}
	if p.i == start || (p.b[start] == '0' && p.i-start > 1) {
		return 0, errRawFallback
	}
	if p.i < len(p.b) {
		switch p.b[p.i] {
		case '.', 'e', 'E':
			return 0, errRawFallback
		}
	}
	var out int64
	if neg {
		// v == 1<<63 negates to exactly minInt64.
		out = -int64(v)
	} else {
		if v > 1<<63-1 {
			return 0, errRawFallback
		}
		out = int64(v)
	}
	if out < min || out > max {
		return 0, errRawFallback
	}
	return out, nil
}

// uintIn parses a JSON non-negative integer within [0, max].
func (p *rawParser) uintIn(max uint64) (uint64, error) {
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == '-' {
		return 0, errRawFallback
	}
	start := p.i
	var v uint64
	for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
		d := uint64(p.b[p.i] - '0')
		if v > max/10 || v*10 > max-d {
			return 0, errRawFallback
		}
		v = v*10 + d
		p.i++
	}
	if p.i == start || (p.b[start] == '0' && p.i-start > 1) {
		return 0, errRawFallback
	}
	if p.i < len(p.b) {
		switch p.b[p.i] {
		case '.', 'e', 'E':
			return 0, errRawFallback
		}
	}
	return v, nil
}

func (p *rawParser) boolVal(cur bool) (bool, error) {
	p.ws()
	if p.i+4 <= len(p.b) && string(p.b[p.i:p.i+4]) == "true" {
		p.i += 4
		return true, nil
	}
	if p.i+5 <= len(p.b) && string(p.b[p.i:p.i+5]) == "false" {
		p.i += 5
		return false, nil
	}
	if p.null() {
		return cur, nil
	}
	return false, errRawFallback
}

// strVal parses a string value, with null keeping the current value —
// encoding/json's no-op semantics for null.
func (p *rawParser) strVal(cur string) (string, error) {
	if p.null() {
		return cur, nil
	}
	return p.str()
}

// strsVal parses a []string value (null → nil, [] → empty non-nil, as
// encoding/json decodes).
func (p *rawParser) strsVal() ([]string, error) {
	if p.null() {
		return nil, nil
	}
	if !p.lit('[') {
		return nil, errRawFallback
	}
	if p.lit(']') {
		return []string{}, nil
	}
	var out []string
	for {
		s, err := p.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if p.lit(']') {
			return out, nil
		}
		if !p.lit(',') {
			return nil, errRawFallback
		}
	}
}

// comma consumes the separator after one object member and reports
// whether the object continues (false: it closed).
func (p *rawParser) comma() (bool, error) {
	p.ws()
	if p.i >= len(p.b) {
		return false, errRawFallback
	}
	switch p.b[p.i] {
	case ',':
		p.i++
		return true, nil
	case '}':
		p.i++
		return false, nil
	}
	return false, errRawFallback
}

// rawDecodeRecord strictly parses one wire-format line into rec. Any
// deviation from the format returns errRawFallback, and the caller
// re-parses with encoding/json; unknown (and case-variant) keys fall
// back wholesale so encoding/json's lenient field matching stays the
// single source of truth for foreign input.
func rawDecodeRecord(line []byte, rec *JSONRecord) error {
	p := rawParser{b: line}
	if !p.lit('{') {
		return errRawFallback
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == '}' {
		p.i++
		return p.end()
	}
	for {
		key, err := p.str()
		if err != nil {
			return err
		}
		if !p.lit(':') {
			return errRawFallback
		}
		switch key {
		case "func":
			rec.Func, err = p.strVal(rec.Func)
		case "seq":
			var v int64
			if p.null() {
				break
			}
			if v, err = p.intIn(minInt, maxInt); err == nil {
				rec.Seq = int(v)
			}
		case "target":
			rec.Target, err = p.strVal(rec.Target)
		case "state":
			rec.State, err = p.strVal(rec.State)
		case "test_part":
			var v int64
			if p.null() {
				break
			}
			if v, err = p.intIn(minInt, maxInt); err == nil {
				rec.TestPart = int(v)
			}
		case "dataset":
			rec.Dataset, err = p.strsVal()
		case "descs":
			rec.Descs, err = p.strsVal()
		case "validity":
			rec.Validity, err = p.strsVal()
		case "invocations":
			var v int64
			if p.null() {
				break
			}
			if v, err = p.intIn(minInt, maxInt); err == nil {
				rec.Invocations = int(v)
			}
		case "returns":
			rec.Returns, err = p.returnsVal()
		case "return_names":
			rec.ReturnNames, err = p.strsVal()
		case "kernel_state":
			rec.KernelState, err = p.strVal(rec.KernelState)
		case "kernel_halt":
			rec.KernelHalt, err = p.strVal(rec.KernelHalt)
		case "cold_resets":
			var v uint64
			if p.null() {
				break
			}
			if v, err = p.uintIn(1<<32 - 1); err == nil {
				rec.ColdResets = uint32(v)
			}
		case "warm_resets":
			var v uint64
			if p.null() {
				break
			}
			if v, err = p.uintIn(1<<32 - 1); err == nil {
				rec.WarmResets = uint32(v)
			}
		case "hm_events":
			rec.HMEvents, err = p.strsVal()
		case "hm":
			rec.HMLog, err = p.hmVal()
		case "part_state":
			rec.PartState, err = p.strVal(rec.PartState)
		case "part_detail":
			rec.PartDetail, err = p.strVal(rec.PartDetail)
		case "sim_crashed":
			rec.SimCrashed, err = p.boolVal(rec.SimCrashed)
		case "crash_reason":
			rec.CrashReason, err = p.strVal(rec.CrashReason)
		case "run_err":
			rec.RunErr, err = p.strVal(rec.RunErr)
		case "cover":
			rec.Cover, err = p.coverVal()
		case "cover_sig":
			rec.CoverSig, err = p.strVal(rec.CoverSig)
		case "divergence":
			rec.Divergence, err = p.divergenceVal()
		case "injection":
			rec.Injection, err = p.injectionVal()
		default:
			return errRawFallback
		}
		if err != nil {
			return err
		}
		more, err := p.comma()
		if err != nil {
			return err
		}
		if !more {
			return p.end()
		}
	}
}

const (
	maxInt = int64(^uint(0) >> 1)
	minInt = -maxInt - 1
)

// end requires the line to hold nothing but trailing whitespace.
func (p *rawParser) end() error {
	p.ws()
	if p.i != len(p.b) {
		return errRawFallback
	}
	return nil
}

func (p *rawParser) returnsVal() ([]int32, error) {
	if p.null() {
		return nil, nil
	}
	if !p.lit('[') {
		return nil, errRawFallback
	}
	if p.lit(']') {
		return []int32{}, nil
	}
	var out []int32
	for {
		v, err := p.intIn(-1<<31, 1<<31-1)
		if err != nil {
			return nil, err
		}
		out = append(out, int32(v))
		if p.lit(']') {
			return out, nil
		}
		if !p.lit(',') {
			return nil, errRawFallback
		}
	}
}

func (p *rawParser) coverVal() ([]uint32, error) {
	if p.null() {
		return nil, nil
	}
	if !p.lit('[') {
		return nil, errRawFallback
	}
	if p.lit(']') {
		return []uint32{}, nil
	}
	var out []uint32
	for {
		v, err := p.uintIn(1<<32 - 1)
		if err != nil {
			return nil, err
		}
		out = append(out, uint32(v))
		if p.lit(']') {
			return out, nil
		}
		if !p.lit(',') {
			return nil, errRawFallback
		}
	}
}

func (p *rawParser) hmVal() ([]JSONHMEvent, error) {
	if p.null() {
		return nil, nil
	}
	if !p.lit('[') {
		return nil, errRawFallback
	}
	if p.lit(']') {
		return []JSONHMEvent{}, nil
	}
	var out []JSONHMEvent
	for {
		e, err := p.hmEvent()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.lit(']') {
			return out, nil
		}
		if !p.lit(',') {
			return nil, errRawFallback
		}
	}
}

func (p *rawParser) hmEvent() (JSONHMEvent, error) {
	var e JSONHMEvent
	if !p.lit('{') {
		return e, errRawFallback
	}
	if p.lit('}') {
		return e, nil
	}
	for {
		key, err := p.str()
		if err != nil {
			return e, err
		}
		if !p.lit(':') {
			return e, errRawFallback
		}
		switch key {
		case "seq":
			var v uint64
			if p.null() {
				break
			}
			if v, err = p.uintIn(1<<32 - 1); err == nil {
				e.Seq = uint32(v)
			}
		case "t":
			if p.null() {
				break
			}
			e.Time, err = p.intIn(minInt64, maxInt64)
		case "ev":
			var v int64
			if p.null() {
				break
			}
			if v, err = p.intIn(minInt, maxInt); err == nil {
				e.Event = int(v)
			}
		case "act":
			var v int64
			if p.null() {
				break
			}
			if v, err = p.intIn(minInt, maxInt); err == nil {
				e.Action = int(v)
			}
		case "sys":
			e.Sys, err = p.boolVal(e.Sys)
		case "part":
			var v int64
			if p.null() {
				break
			}
			if v, err = p.intIn(minInt, maxInt); err == nil {
				e.Part = int(v)
			}
		case "detail":
			e.Detail, err = p.strVal(e.Detail)
		default:
			return e, errRawFallback
		}
		if err != nil {
			return e, err
		}
		more, err := p.comma()
		if err != nil {
			return e, err
		}
		if !more {
			return e, nil
		}
	}
}

const (
	maxInt64 = int64(1<<63 - 1)
	minInt64 = -maxInt64 - 1
)

func (p *rawParser) divergenceVal() (*Divergence, error) {
	if p.null() {
		return nil, nil
	}
	if !p.lit('{') {
		return nil, errRawFallback
	}
	d := &Divergence{}
	if p.lit('}') {
		return d, nil
	}
	for {
		key, err := p.str()
		if err != nil {
			return nil, err
		}
		if !p.lit(':') {
			return nil, errRawFallback
		}
		switch key {
		case "targets":
			err = p.targetsVal(&d.Targets)
		case "fields":
			d.Fields, err = p.strsVal()
		case "a":
			d.A, err = p.strsVal()
		case "b":
			d.B, err = p.strsVal()
		default:
			return nil, errRawFallback
		}
		if err != nil {
			return nil, err
		}
		more, err := p.comma()
		if err != nil {
			return nil, err
		}
		if !more {
			return d, nil
		}
	}
}

// targetsVal decodes into the fixed [2]string with encoding/json's array
// semantics: missing trailing elements stay zero, extras are discarded.
func (p *rawParser) targetsVal(dst *[2]string) error {
	if p.null() {
		return nil
	}
	if !p.lit('[') {
		return errRawFallback
	}
	if p.lit(']') {
		return nil
	}
	for n := 0; ; n++ {
		s, err := p.str()
		if err != nil {
			return err
		}
		if n < len(dst) {
			dst[n] = s
		}
		if p.lit(']') {
			return nil
		}
		if !p.lit(',') {
			return errRawFallback
		}
	}
}

func (p *rawParser) injectionVal() (*injectInjection, error) {
	if p.null() {
		return nil, nil
	}
	if !p.lit('{') {
		return nil, errRawFallback
	}
	inj := &injectInjection{}
	if p.lit('}') {
		return inj, nil
	}
	for {
		key, err := p.str()
		if err != nil {
			return nil, err
		}
		if !p.lit(':') {
			return nil, errRawFallback
		}
		switch key {
		case "site":
			inj.Site, err = p.strVal(inj.Site)
		case "phase":
			inj.Phase, err = p.strVal(inj.Phase)
		case "bit":
			var v uint64
			if p.null() {
				break
			}
			if v, err = p.uintIn(255); err == nil {
				inj.Bit = uint8(v)
			}
		case "frame":
			var v int64
			if p.null() {
				break
			}
			if v, err = p.intIn(minInt, maxInt); err == nil {
				inj.Frame = int(v)
			}
		case "addr":
			if p.null() {
				break
			}
			inj.Addr, err = p.uintIn(1<<64 - 1)
		case "cycle":
			if p.null() {
				break
			}
			inj.Cycle, err = p.intIn(minInt64, maxInt64)
		case "applied":
			inj.Applied, err = p.boolVal(inj.Applied)
		case "outcome":
			inj.Outcome, err = p.strVal(inj.Outcome)
		case "delta":
			inj.Delta, err = p.strVal(inj.Delta)
		default:
			return nil, errRawFallback
		}
		if err != nil {
			return nil, err
		}
		more, err := p.comma()
		if err != nil {
			return nil, err
		}
		if !more {
			return inj, nil
		}
	}
}
