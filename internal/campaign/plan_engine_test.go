package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
)

// planHeader restricts the default spec to a few quick hypercalls so
// plan-level engine tests stay fast.
func planHeader(t *testing.T, funcs ...string) *apispec.Header {
	t.Helper()
	keep := map[string]bool{}
	for _, f := range funcs {
		keep[f] = true
	}
	h := apispec.Default()
	for i := range h.Functions {
		if !keep[h.Functions[i].Name] {
			h.Functions[i].Tested = "NO"
		}
	}
	return h
}

func testPlan(t *testing.T, spec string, seed int64, funcs ...string) testgen.Plan {
	t.Helper()
	p, err := testgen.NewPlan(spec, planHeader(t, funcs...), dict.Builtin(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStreamPlanMatchesSlice: executing a lazy plan must yield exactly the
// results of executing its materialised slice — the engine consumes the
// stream, not a copy of it.
func TestStreamPlanMatchesSlice(t *testing.T) {
	plan := testPlan(t, "pairwise", 0, "XM_set_timer", "XM_get_time")
	opts := Options{Workers: 4}

	fromPlan := make([]Result, plan.Len())
	if _, err := StreamPlan(plan, EngineOptions{Options: opts}, func(pos int, r Result) {
		fromPlan[pos] = r
	}); err != nil {
		t.Fatal(err)
	}
	fromSlice := RunDatasets(testgen.Materialize(plan), opts)
	if len(fromPlan) != len(fromSlice) {
		t.Fatalf("plan executed %d tests, slice %d", len(fromPlan), len(fromSlice))
	}
	for i := range fromPlan {
		if fromPlan[i].Dataset.String() != fromSlice[i].Dataset.String() {
			t.Fatalf("test %d: plan ran %s, slice %s", i, fromPlan[i].Dataset, fromSlice[i].Dataset)
		}
	}
}

// TestPlanCheckpointResume: an interrupted plan-streamed campaign resumes
// to a merged log byte-identical to the uninterrupted run's.
func TestPlanCheckpointResume(t *testing.T) {
	plan := testPlan(t, "pairwise", 0, "XM_set_timer", "XM_reset_system")
	opts := Options{Workers: 2}

	full := t.TempDir()
	if _, err := StreamPlan(plan, EngineOptions{
		Options: opts, ShardDir: full, CheckpointPath: filepath.Join(full, "ckpt.jsonl"),
	}, nil); err != nil {
		t.Fatal(err)
	}

	split := t.TempDir()
	eo := EngineOptions{Options: opts, ShardDir: split,
		CheckpointPath: filepath.Join(split, "ckpt.jsonl"), Limit: plan.Len() / 2}
	if _, err := StreamPlan(plan, eo, nil); err != nil {
		t.Fatal(err)
	}
	eo.Limit = 0
	eo.Resume = true
	stats, err := StreamPlan(plan, eo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != plan.Len()/2 {
		t.Fatalf("resume skipped %d, want %d", stats.Skipped, plan.Len()/2)
	}

	var a, b bytes.Buffer
	if _, err := MergeShards(full, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(split, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("merged logs differ between uninterrupted and resumed plan campaigns")
	}
}

// TestResumeRefusesDifferentPlan: a checkpoint's completion marks are
// positions in ONE plan's stream; resuming any other plan must fail with
// an error naming the checkpointed plan and fingerprint, not produce a
// silently mixed log.
func TestResumeRefusesDifferentPlan(t *testing.T) {
	pairwise := testPlan(t, "pairwise", 0, "XM_set_timer", "XM_reset_system")
	boundary := testPlan(t, "boundary", 0, "XM_set_timer", "XM_reset_system")

	dir := t.TempDir()
	eo := EngineOptions{Options: Options{Workers: 2}, ShardDir: dir,
		CheckpointPath: filepath.Join(dir, "ckpt.jsonl"), Limit: 3}
	if _, err := StreamPlan(pairwise, eo, nil); err != nil {
		t.Fatal(err)
	}
	eo.Limit = 0
	eo.Resume = true
	_, err := StreamPlan(boundary, eo, nil)
	if err == nil {
		t.Fatal("resume under a different plan accepted")
	}
	for _, want := range []string{"pairwise", pairwise.Fingerprint(), "boundary"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error %q does not name %q", err, want)
		}
	}
	// The matching plan still resumes.
	if _, err := StreamPlan(pairwise, eo, nil); err != nil {
		t.Fatalf("matching plan refused: %v", err)
	}
}

// TestResumeRefusesDifferentTarget: a checkpoint records the execution
// backend its shard logs came from; resuming on any other backend must
// fail with an error naming both, not splice two targets' logs into one
// campaign.
func TestResumeRefusesDifferentTarget(t *testing.T) {
	plan := testPlan(t, "boundary", 0, "XM_set_timer", "XM_reset_system")

	dir := t.TempDir()
	eo := EngineOptions{Options: Options{Workers: 2, Target: "sim"}, ShardDir: dir,
		CheckpointPath: filepath.Join(dir, "ckpt.jsonl"), Limit: 3}
	if _, err := StreamPlan(plan, eo, nil); err != nil {
		t.Fatal(err)
	}
	eo.Limit = 0
	eo.Resume = true
	eo.Options.Target = "phantom"
	_, err := StreamPlan(plan, eo, nil)
	if err == nil {
		t.Fatal("resume under a different target accepted")
	}
	for _, want := range []string{`"sim"`, `"phantom"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error %q does not name %s", err, want)
		}
	}
	// The matching target still resumes.
	eo.Options.Target = "sim"
	if _, err := StreamPlan(plan, eo, nil); err != nil {
		t.Fatalf("matching target refused: %v", err)
	}
}

// TestResumeRefusesDifferentSeed: rand:N under another seed is another
// plan — same strategy string, different fingerprint.
func TestResumeRefusesDifferentSeed(t *testing.T) {
	seed1 := testPlan(t, "rand:6", 1, "XM_set_timer", "XM_reset_system")
	seed2 := testPlan(t, "rand:6", 2, "XM_set_timer", "XM_reset_system")

	dir := t.TempDir()
	eo := EngineOptions{Options: Options{Workers: 2}, ShardDir: dir,
		CheckpointPath: filepath.Join(dir, "ckpt.jsonl"), Limit: 2}
	if _, err := StreamPlan(seed1, eo, nil); err != nil {
		t.Fatal(err)
	}
	eo.Limit = 0
	eo.Resume = true
	if _, err := StreamPlan(seed2, eo, nil); err == nil {
		t.Fatal("resume under a different seed accepted")
	} else if !strings.Contains(err.Error(), seed1.Fingerprint()) {
		t.Errorf("mismatch error %q does not name the checkpointed fingerprint %s", err, seed1.Fingerprint())
	}
}

// TestResumeRefusesLegacyCheckpoint: a checkpoint written before plan
// recording (no plan/plan_fp header fields) cannot be safely resumed and
// must say so explicitly rather than print blank identifiers.
func TestResumeRefusesLegacyCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	if err := os.WriteFile(ckpt,
		[]byte(`{"campaign":"tests=4|mafs=2|stress=false|faults={}"}`+"\n"+`{"seq":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	plan := testPlan(t, "exhaustive", 0, "XM_set_timer")
	eo := EngineOptions{Options: Options{Workers: 1}, ShardDir: dir,
		CheckpointPath: ckpt, Resume: true}
	_, err := StreamPlan(plan, eo, nil)
	if err == nil {
		t.Fatal("legacy checkpoint accepted")
	}
	if !strings.Contains(err.Error(), "predates plan recording") {
		t.Fatalf("legacy checkpoint error = %q", err)
	}
}

// TestDatasetSliceFingerprint: slice sources fingerprint their content, so
// checkpoints guard pre-built lists exactly like plans.
func TestDatasetSliceFingerprint(t *testing.T) {
	plan := testPlan(t, "exhaustive", 0, "XM_set_timer")
	all := testgen.Materialize(plan)
	a := DatasetSlice(all).Fingerprint()
	if b := DatasetSlice(all).Fingerprint(); a != b {
		t.Fatal("fingerprint unstable")
	}
	if c := DatasetSlice(all[:len(all)-1]).Fingerprint(); a == c {
		t.Fatal("fingerprint ignores content")
	}
}
