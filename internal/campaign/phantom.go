package campaign

import (
	"fmt"

	"xmrobust/internal/apispec"
	"xmrobust/internal/eagleeye"
	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// PhantomState is one value of the "phantom parameter" of paper §V: the
// Ballista technique that extends the data type fault model to
// parameter-less hypercalls by varying the *system state* the call fires
// in instead of its (non-existent) arguments. "Phantom parameters could be
// used in this case to set the separation kernel into a particular
// stressful state before invoking the test calls."
type PhantomState struct {
	Name string
	Desc string
	// warmupFrames is how many major frames the setter runs before the
	// test partition is armed.
	warmupFrames int
	// setup mutates the freshly booted system (attaching setter programs,
	// arming timers) before the warm-up frames run.
	setup func(k *xm.Kernel) error
}

// PhantomStates returns the phantom-parameter value set of the extension
// campaign: the nominal state plus four loaded/degraded states.
func PhantomStates() []PhantomState {
	return []PhantomState{
		{
			Name: "nominal",
			Desc: "freshly booted system",
		},
		{
			Name:         "ipc-saturated",
			Desc:         "queuing channels full, sampling messages pending",
			warmupFrames: 3,
			setup: func(k *xm.Kernel) error {
				// With the FDIR consumer replaced by the (idle) setter,
				// three frames of OBSW traffic saturate the downlink
				// queue and leave fresh sampling messages everywhere.
				return k.AttachProgram(eagleeye.FDIR, idleProgram{})
			},
		},
		{
			Name:         "hm-backlog",
			Desc:         "health-monitor log loaded, one partition halted",
			warmupFrames: 2,
			setup: func(k *xm.Kernel) error {
				if err := k.AttachProgram(eagleeye.Payload, &rogueProgram{}); err != nil {
					return err
				}
				return k.AttachProgram(eagleeye.FDIR, idleProgram{})
			},
		},
		{
			Name:         "timer-armed",
			Desc:         "periodic 10ms virtual timer live on the hardware clock",
			warmupFrames: 1,
			setup: func(k *xm.Kernel) error {
				return k.AttachProgram(eagleeye.FDIR, armTimerProgram{})
			},
		},
		{
			Name:         "survival-plan",
			Desc:         "system switched to the degraded scheduling plan",
			warmupFrames: 1,
			setup: func(k *xm.Kernel) error {
				return k.AttachProgram(eagleeye.FDIR, switchPlanProgram{})
			},
		},
	}
}

// idleProgram occupies a partition without doing anything.
type idleProgram struct{}

func (idleProgram) Boot(env xm.Env)      {}
func (idleProgram) Step(env xm.Env) bool { env.Compute(100); return false }

// rogueProgram violates spatial separation once, loading the HM log.
type rogueProgram struct{ fired bool }

func (r *rogueProgram) Boot(env xm.Env) {}

func (r *rogueProgram) Step(env xm.Env) bool {
	if !r.fired {
		r.fired = true
		env.Write(sparc.DefaultRAMBase, []byte{1}) // hypervisor image: trap
	}
	return false
}

// armTimerProgram arms a sane periodic timer from the FDIR slot.
type armTimerProgram struct{}

func (armTimerProgram) Boot(env xm.Env) {}

func (armTimerProgram) Step(env xm.Env) bool {
	env.Hypercall(xm.NrSetTimer, uint64(xm.HwClock), uint64(env.Now()+5000), 10000)
	return false
}

// switchPlanProgram requests the survival plan (plan 1).
type switchPlanProgram struct{}

func (switchPlanProgram) Boot(env xm.Env) {}

func (switchPlanProgram) Step(env xm.Env) bool {
	area := sparc.DefaultRAMBase + sparc.Addr(0x100000*(eagleeye.FDIR+1))
	env.Hypercall(xm.NrSwitchSchedPlan, 1, uint64(area))
	return false
}

// PhantomDataset pairs a parameter-less hypercall with one phantom state.
// It reuses testgen.Dataset so the analysis pipeline applies unchanged;
// the state travels in the dataset's function Category/ValueSet-free form
// via the State field of the result.
type PhantomDataset struct {
	Func  apispec.Function
	State PhantomState
}

// String renders the phantom call.
func (pd PhantomDataset) String() string {
	return fmt.Sprintf("%s() @ %s", pd.Func.Name, pd.State.Name)
}

// GeneratePhantom builds the extension suite: every untested
// parameter-less hypercall of the header crossed with every phantom state.
func GeneratePhantom(h *apispec.Header) []PhantomDataset {
	var out []PhantomDataset
	for _, f := range h.Functions {
		if len(f.Params) != 0 {
			continue
		}
		for _, st := range PhantomStates() {
			out = append(out, PhantomDataset{Func: f, State: st})
		}
	}
	return out
}

// RunPhantom executes one phantom test: boot, apply the state setter, run
// the warm-up schedules, then arm the fault placeholder and run the usual
// observation frames.
func RunPhantom(pd PhantomDataset, opts Options) Result {
	opts = opts.withDefaults()
	res := Result{Dataset: testgen.Dataset{Func: pd.Func}, TestPartition: eagleeye.FDIR}

	spec, ok := xm.LookupName(pd.Func.Name)
	if !ok {
		res.RunErr = fmt.Sprintf("campaign: hypercall %q not in kernel ABI", pd.Func.Name)
		return res
	}
	k, err := eagleeye.NewSystem(xm.WithFaults(opts.Faults))
	if err != nil {
		res.RunErr = err.Error()
		return res
	}
	if pd.State.setup != nil {
		if err := pd.State.setup(k); err != nil {
			res.RunErr = err.Error()
			return res
		}
	}
	if pd.State.warmupFrames > 0 {
		if err := k.RunMajorFrames(pd.State.warmupFrames); err != nil {
			res.RunErr = fmt.Sprintf("campaign: phantom warm-up: %v", err)
			return res
		}
	}
	prog := &testProg{nr: spec.Nr}
	if err := k.AttachProgram(eagleeye.FDIR, prog); err != nil {
		res.RunErr = err.Error()
		return res
	}
	var runErr error
	for i := 0; i < opts.MAFs; i++ {
		if runErr = k.RunMajorFrames(1); runErr != nil {
			break
		}
	}
	switch runErr {
	case nil, xm.ErrHalted:
	default:
		if _, isCrash := runErr.(sparc.ErrCrashed); !isCrash {
			res.RunErr = runErr.Error()
		}
	}
	res.Invocations = prog.invocations
	res.Returns = prog.returns
	st := k.Status()
	res.KernelState = st.State
	res.KernelHalt = st.HaltDetail
	res.ColdResets = st.ColdResets
	res.WarmResets = st.WarmResets
	res.HMEvents = k.HMEntries()
	if ps, ok := k.PartitionStatus(eagleeye.FDIR); ok {
		res.PartState = ps.State
		res.PartDetail = ps.HaltDetail
	}
	res.SimCrashed, res.CrashReason = k.Machine().Crashed()
	return res
}

// RunPhantomCampaign executes the whole extension suite.
func RunPhantomCampaign(opts Options) []Result {
	opts = opts.withDefaults()
	suite := GeneratePhantom(opts.Header)
	out := make([]Result, len(suite))
	for i, pd := range suite {
		out[i] = RunPhantom(pd, opts)
	}
	return out
}
