// Package campaign executes robustness test campaigns: the Test Generation
// and Execution phase of the paper's methodology (§III.B).
//
// For every generated dataset the runner packs a fresh test partition —
// the FDIR system partition of the EagleEye testbed, hosting one fault
// placeholder — with the rest of the on-board software, runs the TSP
// system on the simulated LEON3 target for a selected number of cyclic
// schedules (the test call is invoked once per major frame), and logs the
// return codes together with partition and separation-kernel health
// specifics for the later log-analysis phase.
//
// Tests are mutually independent (each gets its own machine and kernel),
// so the runner fans them out over a worker pool.
package campaign

import (
	"fmt"
	"runtime"

	"xmrobust/internal/apispec"
	"xmrobust/internal/corpus"
	"xmrobust/internal/cover"
	"xmrobust/internal/dict"
	"xmrobust/internal/eagleeye"
	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// DefaultMAFs is the number of cyclic schedules each test runs for.
const DefaultMAFs = 2

// Options configures a campaign run.
type Options struct {
	// Faults selects the kernel version under test (default LegacyFaults,
	// the version the paper tested).
	Faults xm.FaultSet
	// MAFs is the number of major frames per test (default DefaultMAFs).
	MAFs int
	// Workers is the level of parallelism (default GOMAXPROCS).
	Workers int
	// Header is the API spec with the tested selection (default
	// apispec.Default()).
	Header *apispec.Header
	// Dict is the value dictionary (default dict.Builtin()).
	Dict *dict.Dictionary
	// Stress pre-loads the system before injection (paper §V: robustness
	// results differ under stressful states): one warm-up frame with
	// saturated IPC queues and trace buffers.
	Stress bool
	// Plan selects the test-generation strategy ("" or "exhaustive" for
	// the paper's full Eq. 1 product; "pairwise", "rand:N", "boundary"
	// for reduced plans — see testgen.NewPlan).
	Plan string
	// Seed feeds randomised plans (rand:N, feedback:N); deterministic
	// strategies ignore it.
	Seed int64
	// Coverage collects kernel edge coverage per test (Result.Cover).
	// Feedback plans force it on; for static plans it is the opt-in
	// behind coverage reporting (-cover-stats).
	Coverage bool
	// Corpus is the JSON Lines corpus file of the feedback plan:
	// previously admitted datasets load as mutation parents, and new
	// admissions append as they happen. Only valid with -plan feedback:N.
	Corpus string
	// Progress, when non-nil, receives (done, total) after every test.
	Progress func(done, total int)
}

func (o Options) withDefaults() Options {
	if o.MAFs <= 0 {
		o.MAFs = DefaultMAFs
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Header == nil {
		o.Header = apispec.Default()
	}
	if o.Dict == nil {
		o.Dict = dict.Builtin()
	}
	return o
}

// Result is the execution log of one test case — everything §III.C says
// must be monitored: return codes, health-monitor events, partition and
// kernel statuses, plus the simulator's own fate.
type Result struct {
	Dataset  testgen.Dataset
	Resolved []dict.Resolved

	// TestPartition is the id of the partition hosting the fault
	// placeholder (the FDIR system partition of the testbed).
	TestPartition int

	// Invocations counts fault-placeholder activations; Returns holds the
	// return codes of those that came back. A shortfall means control
	// never returned to the test partition.
	Invocations int
	Returns     []xm.RetCode

	// Kernel health.
	KernelState xm.KState
	KernelHalt  string
	ColdResets  uint32
	WarmResets  uint32
	HMEvents    []xm.HMLogEntry

	// Test partition health.
	PartState  xm.PState
	PartDetail string

	// Simulator fate.
	SimCrashed  bool
	CrashReason string

	// RunErr records an unexpected harness error ("" normally).
	RunErr string

	// Cover is the kernel edge coverage of the run (nil unless
	// Options.Coverage was on).
	Cover *cover.Map
}

// Returned reports whether every invocation returned to the guest.
func (r Result) Returned() bool {
	return r.Invocations > 0 && len(r.Returns) == r.Invocations
}

// LastReturn is the last observed return code (ok=false when none).
func (r Result) LastReturn() (xm.RetCode, bool) {
	if len(r.Returns) == 0 {
		return 0, false
	}
	return r.Returns[len(r.Returns)-1], true
}

// layoutFor builds the symbolic-value resolution layout of the EagleEye
// test partition.
func layoutFor(k *xm.Kernel) (dict.Layout, error) {
	data, ok := k.PartitionDataArea(eagleeye.FDIR)
	if !ok {
		return dict.Layout{}, fmt.Errorf("campaign: test partition has no data area")
	}
	other, ok := k.PartitionDataArea(eagleeye.Platform)
	if !ok {
		return dict.Layout{}, fmt.Errorf("campaign: no other-partition area")
	}
	mc := k.Machine().Config()
	return dict.Layout{
		DataArea:  data,
		OtherArea: other,
		Kernel:    mc.RAMBase, // the hypervisor image sits at the RAM base
		ROM:       mc.ROMBase + 0x100,
		IO:        mc.IOBase,
	}, nil
}

// testProg is the test partition program: one fault placeholder invoked
// once per scheduling slot (and hence at least once per major frame).
type testProg struct {
	nr   xm.Nr
	args []uint64

	invocations int
	returns     []xm.RetCode
}

func (p *testProg) Boot(env xm.Env) {}

func (p *testProg) Step(env xm.Env) bool {
	p.invocations++
	ret := env.Hypercall(p.nr, p.args...)
	p.returns = append(p.returns, ret)
	return false
}

// RunOne executes a single dataset against a fresh testbed and returns
// its execution log.
func RunOne(ds testgen.Dataset, opts Options) Result {
	return runOneOn(ds, opts.withDefaults(), nil)
}

// runOneOn executes one dataset, packing the testbed onto the supplied
// machine (nil: a fresh allocation). The machine must be in its power-on
// state; the streaming engine guarantees that through the reset-and-verify
// pool.
func runOneOn(ds testgen.Dataset, opts Options, m *sparc.Machine) Result {
	res := Result{Dataset: ds, TestPartition: eagleeye.FDIR}

	spec, ok := xm.LookupName(ds.Func.Name)
	if !ok {
		res.RunErr = fmt.Sprintf("campaign: hypercall %q not in kernel ABI", ds.Func.Name)
		return res
	}
	sysOpts := []xm.Option{xm.WithFaults(opts.Faults)}
	if m != nil {
		sysOpts = append(sysOpts, xm.WithMachine(m))
	}
	if opts.Coverage {
		res.Cover = &cover.Map{}
		sysOpts = append(sysOpts, xm.WithCoverage(res.Cover))
	}
	k, err := eagleeye.NewSystem(sysOpts...)
	if err != nil {
		res.RunErr = err.Error()
		return res
	}
	layout, err := layoutFor(k)
	if err != nil {
		res.RunErr = err.Error()
		return res
	}
	resolved := make([]dict.Resolved, 0, len(ds.Values))
	args := make([]uint64, 0, len(ds.Values))
	for _, v := range ds.Values {
		r, err := layout.Resolve(v)
		if err != nil {
			res.RunErr = err.Error()
			return res
		}
		resolved = append(resolved, r)
		args = append(args, r.Bits)
	}
	res.Resolved = resolved

	prog := &testProg{nr: spec.Nr, args: args}
	if err := k.AttachProgram(eagleeye.FDIR, prog); err != nil {
		res.RunErr = err.Error()
		return res
	}
	if opts.Stress {
		preloadStress(k)
	}

	var runErr error
	for i := 0; i < opts.MAFs; i++ {
		if runErr = k.RunMajorFrames(1); runErr != nil {
			break
		}
	}
	switch runErr {
	case nil, xm.ErrHalted:
		// Kernel halt is an observed outcome, not a harness error.
	default:
		if _, isCrash := runErr.(sparc.ErrCrashed); !isCrash {
			res.RunErr = runErr.Error()
		}
	}

	res.Invocations = prog.invocations
	res.Returns = prog.returns
	st := k.Status()
	res.KernelState = st.State
	res.KernelHalt = st.HaltDetail
	res.ColdResets = st.ColdResets
	res.WarmResets = st.WarmResets
	res.HMEvents = k.HMEntries()
	if ps, ok := k.PartitionStatus(eagleeye.FDIR); ok {
		res.PartState = ps.State
		res.PartDetail = ps.HaltDetail
	}
	res.SimCrashed, res.CrashReason = k.Machine().Crashed()
	return res
}

// preloadStress drives the testbed into a loaded state before the test
// call fires: several frames of OBSW traffic with nobody draining the
// downlink queue, leaving IPC buffers full.
func preloadStress(k *xm.Kernel) {
	// The FDIR slot already hosts the test program (which injects during
	// the warm-up too — its first invocations run under stress); what
	// matters is that the producers have saturated the channels.
	_ = k.RunMajorFrames(1)
}

// BuildPlan applies the option defaults and constructs the campaign's
// test plan — the shared generation front of the eager and streaming
// pipelines. A configured corpus file attaches to the feedback plan
// (and is rejected for any other strategy); the caller owns closing the
// plan when it is a Closer.
func BuildPlan(opts Options) (testgen.Plan, Options, error) {
	opts = opts.withDefaults()
	plan, err := testgen.NewPlan(opts.Plan, opts.Header, opts.Dict, opts.Seed)
	if err != nil {
		return nil, opts, err
	}
	if opts.Corpus != "" {
		fp, ok := plan.(*corpus.FeedbackPlan)
		if !ok {
			return nil, opts, fmt.Errorf("campaign: a corpus file requires the feedback plan, not %q", plan.Strategy())
		}
		if err := fp.UseCorpusFile(opts.Corpus); err != nil {
			return nil, opts, err
		}
	}
	return plan, opts, nil
}

// GenerateSuite applies the option defaults and materialises the
// campaign's dataset list — the eager wrapper over BuildPlan. Dynamic
// plans (feedback:N) breed datasets from execution results and cannot be
// materialised up front; they are refused here — run them through
// StreamPlan (or core.RunCampaign, which streams them internally).
func GenerateSuite(opts Options) ([]testgen.Dataset, Options, error) {
	plan, opts, err := BuildPlan(opts)
	if err != nil {
		return nil, opts, err
	}
	if testgen.IsDynamic(plan) {
		return nil, opts, fmt.Errorf(
			"campaign: plan %q schedules on execution feedback and cannot be materialised — use StreamPlan or core.RunCampaign", plan.Strategy())
	}
	return testgen.Materialize(plan), opts, nil
}

// Run generates the campaign's datasets and executes them all, returning
// results in generation order.
func Run(opts Options) ([]Result, error) {
	datasets, opts, err := GenerateSuite(opts)
	if err != nil {
		return nil, err
	}
	return RunDatasets(datasets, opts), nil
}

// RunDatasets executes a pre-generated dataset list and returns the
// results in dataset order. It is the eager compatibility wrapper over the
// streaming engine: machine pooling on, no shards, no checkpoint, every
// Result accumulated in memory.
func RunDatasets(datasets []testgen.Dataset, opts Options) []Result {
	results := make([]Result, len(datasets))
	// Without shard or checkpoint configuration Stream cannot fail.
	_, _ = Stream(datasets, EngineOptions{Options: opts}, func(pos int, r Result) {
		results[pos] = r
	})
	return results
}
