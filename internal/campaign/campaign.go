// Package campaign executes robustness test campaigns: the Test Generation
// and Execution phase of the paper's methodology (§III.B).
//
// The campaign layer owns scheduling — plans, worker pools, shards,
// checkpoints — while the execution of an individual test belongs to the
// pluggable backends of internal/target: the simulated LEON3 testbed
// (target "sim", the default), the analytical kernel model ("phantom"),
// or a divergence-recording composite ("diff:a,b"). Tests are mutually
// independent (each gets its own execution slot), so the engine fans them
// out over a worker pool.
package campaign

import (
	"fmt"
	"runtime"

	"xmrobust/internal/apispec"
	"xmrobust/internal/corpus"
	"xmrobust/internal/dict"
	"xmrobust/internal/inject"
	"xmrobust/internal/target"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// DefaultMAFs is the number of cyclic schedules each test runs for.
const DefaultMAFs = 2

// Result is the execution log of one test case. It is produced by the
// target layer; the campaign, analysis and report layers consume it
// unchanged regardless of the backend that executed the test.
type Result = target.Result

// Divergence is a diff-target disagreement between two backends.
type Divergence = target.Divergence

// Options configures a campaign run.
type Options struct {
	// Faults selects the kernel version under test (default LegacyFaults,
	// the version the paper tested).
	Faults xm.FaultSet
	// MAFs is the number of major frames per test (default DefaultMAFs).
	MAFs int
	// Workers is the level of parallelism (default GOMAXPROCS).
	Workers int
	// Header is the API spec with the tested selection (default
	// apispec.Default()).
	Header *apispec.Header
	// Dict is the value dictionary (default dict.Builtin()).
	Dict *dict.Dictionary
	// Stress pre-loads the system before injection (paper §V: robustness
	// results differ under stressful states): one warm-up frame with
	// saturated IPC queues and trace buffers.
	Stress bool
	// Plan selects the test-generation strategy ("" or "exhaustive" for
	// the paper's full Eq. 1 product; "pairwise", "rand:N", "boundary",
	// "feedback:N", "phantom" for other plans — see testgen.NewPlan).
	Plan string
	// Target selects the execution backend ("" or "sim" for the
	// simulated testbed; "phantom" for the analytical model;
	// "diff:a,b" for the divergence oracle — see target.New).
	Target string
	// Seed feeds randomised plans (rand:N, feedback:N); deterministic
	// strategies ignore it.
	Seed int64
	// Coverage collects kernel edge coverage per test (Result.Cover).
	// Feedback plans force it on; for static plans it is the opt-in
	// behind coverage reporting (-cover-stats).
	Coverage bool
	// Corpus is the JSON Lines corpus file of the feedback plan:
	// previously admitted datasets load as mutation parents, and new
	// admissions append as they happen. Only valid with -plan feedback:N.
	Corpus string
	// Inject parameterises the SEU schedule of inject:* targets (see
	// internal/inject): the fraction of tests injected and the enabled
	// flip sites. The zero value injects every test across every site.
	// The schedule is keyed by Seed, so one campaign seed reproduces
	// both the plan and the fault sequence.
	Inject inject.Params
	// Progress, when non-nil, receives (done, total) after every test.
	Progress func(done, total int)
}

func (o Options) withDefaults() Options {
	if o.MAFs <= 0 {
		o.MAFs = DefaultMAFs
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Header == nil {
		o.Header = apispec.Default()
	}
	if o.Dict == nil {
		o.Dict = dict.Builtin()
	}
	if o.Target == "" {
		o.Target = target.SimName
	}
	return o
}

// injectParams resolves the SEU schedule parameters, anchoring the
// schedule to the campaign seed.
func (o Options) injectParams() inject.Params {
	p := o.Inject
	p.Seed = o.Seed
	return p
}

// runSpec projects the campaign options onto the per-run execution
// parameters of the target layer.
func (o Options) runSpec() target.RunSpec {
	return target.RunSpec{
		Faults:   o.Faults,
		MAFs:     o.MAFs,
		Stress:   o.Stress,
		Header:   o.Header,
		Dict:     o.Dict,
		Coverage: o.Coverage,
	}
}

// RunOne executes a single dataset on the configured target (default sim,
// fresh testbed) and returns its execution log.
func RunOne(ds testgen.Dataset, opts Options) Result {
	opts = opts.withDefaults()
	tgt, err := target.New(opts.Target, target.Config{Inject: opts.injectParams()})
	if err != nil {
		return Result{Dataset: ds, RunErr: err.Error()}
	}
	if err := tgt.Provision(1); err != nil {
		return Result{Dataset: ds, RunErr: err.Error()}
	}
	slot := tgt.Acquire()
	defer tgt.Release(slot)
	return tgt.Execute(slot, ds, opts.runSpec())
}

// BuildPlan applies the option defaults and constructs the campaign's
// test plan — the shared generation front of the eager and streaming
// pipelines. The execution side is validated here too: a broken target
// spec (unknown backend, bad composite component, bad injection
// schedule) fails the campaign up front with the resolution error
// instead of surfacing as one harness error per test on the eager path.
// A configured corpus file attaches to the feedback plan (and is
// rejected for any other strategy); the caller owns closing the plan
// when it is a Closer.
func BuildPlan(opts Options) (testgen.Plan, Options, error) {
	opts = opts.withDefaults()
	if _, err := target.New(opts.Target, target.Config{Inject: opts.injectParams()}); err != nil {
		return nil, opts, err
	}
	plan, err := testgen.NewPlan(opts.Plan, opts.Header, opts.Dict, opts.Seed)
	if err != nil {
		return nil, opts, err
	}
	if opts.Corpus != "" {
		fp, ok := plan.(*corpus.FeedbackPlan)
		if !ok {
			return nil, opts, fmt.Errorf("campaign: a corpus file requires the feedback plan, not %q", plan.Strategy())
		}
		if err := fp.UseCorpusFile(opts.Corpus); err != nil {
			return nil, opts, err
		}
	}
	return plan, opts, nil
}

// GenerateSuite applies the option defaults and materialises the
// campaign's dataset list — the eager wrapper over BuildPlan. Dynamic
// plans (feedback:N) breed datasets from execution results and cannot be
// materialised up front; they are refused here — run them through
// StreamPlan (or core.RunCampaign, which streams them internally).
func GenerateSuite(opts Options) ([]testgen.Dataset, Options, error) {
	plan, opts, err := BuildPlan(opts)
	if err != nil {
		return nil, opts, err
	}
	if testgen.IsDynamic(plan) {
		return nil, opts, fmt.Errorf(
			"campaign: plan %q schedules on execution feedback and cannot be materialised — use StreamPlan or core.RunCampaign", plan.Strategy())
	}
	return testgen.Materialize(plan), opts, nil
}

// Run generates the campaign's datasets and executes them all, returning
// results in generation order.
func Run(opts Options) ([]Result, error) {
	datasets, opts, err := GenerateSuite(opts)
	if err != nil {
		return nil, err
	}
	return RunDatasets(datasets, opts), nil
}

// RunDatasets executes a pre-generated dataset list and returns the
// results in dataset order. It is the eager compatibility wrapper over the
// streaming engine: machine pooling on, no shards, no checkpoint, every
// Result accumulated in memory.
func RunDatasets(datasets []testgen.Dataset, opts Options) []Result {
	results := make([]Result, len(datasets))
	// Without shard or checkpoint configuration Stream fails only on a
	// broken target spec, before anything executes; the error then
	// surfaces in every result's RunErr.
	_, err := Stream(datasets, EngineOptions{Options: opts}, func(pos int, r Result) {
		results[pos] = r
	})
	if err != nil {
		for i := range results {
			results[i] = Result{Dataset: datasets[i], RunErr: err.Error()}
		}
	}
	return results
}
