package campaign

// This file is the plan-shard coordinator of distributed campaign
// execution: it partitions the campaign's position space [0, Len) into
// leases — contiguous runs of pending positions — and tracks each
// issued lease against a deadline. A lease whose holder disappears (a
// killed worker, a dropped connection) is re-issued when its deadline
// passes, so a lost worker's range always re-executes somewhere.
// Because every plan is deterministic and index-addressable, a
// re-executed position produces a byte-identical record, and the
// seq-dedup of CollectShards keeps the merged log byte-identical to a
// single-process run no matter how many times a lease bounced.

import (
	"sync"
	"time"

	"xmrobust/internal/obs"
)

// Lease is one issued work unit: a run of campaign positions to execute.
// ID identifies this issuance — a re-issued lease carries a fresh ID and
// a bumped Attempt, so a stale holder's Complete cannot be confused with
// the re-issue's.
type Lease struct {
	ID      uint64
	Pos     []int
	Attempt int
}

// issued tracks one outstanding lease.
type issued struct {
	lease    Lease
	deadline time.Time
}

// Coordinator hands out leases over the pending positions of a campaign
// and reclaims the ones whose holders went silent. It is safe for
// concurrent use; Next blocks until a lease is available or the campaign
// is fully complete.
type Coordinator struct {
	mu   sync.Mutex
	cond *sync.Cond

	total int
	done  map[int]bool
	batch int
	limit int // max fresh positions to issue (0: no limit)
	ttl   time.Duration
	now   func() time.Time

	cursor      int    // next unexamined position
	fresh       int    // fresh positions issued so far
	nextID      uint64 // next lease ID
	outstanding map[uint64]*issued
	reissue     []Lease // expired or handed-back leases awaiting re-issue
	timer       *time.Timer
	closed      bool

	// met and trace are the observability hooks (nil when obs is off —
	// every emission is one nil check).
	met   *obs.LeaseMetrics
	trace *obs.Tracer
}

// NewCoordinator builds a coordinator over positions [0, total), skipping
// the done set (positions a checkpoint already completed), carving leases
// of at most batch positions, and issuing at most limit fresh positions
// (0: all pending). A ttl of 0 disables deadline reclaim — leases then
// only re-issue on an explicit HandBack.
func NewCoordinator(total int, done map[int]bool, batch, limit int, ttl time.Duration) *Coordinator {
	if batch < 1 {
		batch = 1
	}
	c := &Coordinator{
		total:       total,
		done:        done,
		batch:       batch,
		limit:       limit,
		ttl:         ttl,
		now:         time.Now, //xmlint:allow determinism -- lease deadlines are wall-clock by design; results stay position-keyed, so reclaim timing never reaches the log
		nextID:      1,
		outstanding: map[uint64]*issued{},
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// setClock replaces the coordinator's clock (tests).
func (c *Coordinator) setClock(now func() time.Time) { c.now = now }

// Instrument attaches lease metrics and a trace stream; either may be
// nil. Call before the first Next — the hooks are read without the
// coordinator's lock held against writes.
func (c *Coordinator) Instrument(m *obs.LeaseMetrics, tr *obs.Tracer) {
	c.met = m
	c.trace = tr
}

// carve builds the next fresh lease under the lock, or returns false
// when the position space (or the issue limit) is exhausted.
func (c *Coordinator) carve() (Lease, bool) {
	if c.limit > 0 && c.fresh >= c.limit {
		return Lease{}, false
	}
	var pos []int
	for c.cursor < c.total && len(pos) < c.batch {
		if c.limit > 0 && c.fresh+len(pos) >= c.limit {
			break
		}
		if !c.done[c.cursor] {
			pos = append(pos, c.cursor)
		}
		c.cursor++
	}
	if len(pos) == 0 {
		return Lease{}, false
	}
	c.fresh += len(pos)
	return Lease{Pos: pos}, true
}

// reclaimExpired moves expired outstanding leases onto the re-issue
// queue. Caller holds the lock.
func (c *Coordinator) reclaimExpired() {
	if c.ttl <= 0 {
		return
	}
	now := c.now()
	for id, is := range c.outstanding {
		if !is.deadline.After(now) {
			delete(c.outstanding, id)
			c.reissue = append(c.reissue, is.lease)
			c.met.OnReclaim()
			c.trace.Emit(obs.Event{Kind: "lease.reclaim", Lease: id,
				Start: is.lease.Pos[0], N: len(is.lease.Pos), Attempt: is.lease.Attempt})
		}
	}
}

// armTimer schedules a cond broadcast at the earliest outstanding
// deadline so a Next blocked on reclaim wakes up. Caller holds the lock.
func (c *Coordinator) armTimer() {
	if c.ttl <= 0 || len(c.outstanding) == 0 {
		return
	}
	var earliest time.Time
	for _, is := range c.outstanding {
		if earliest.IsZero() || is.deadline.Before(earliest) {
			earliest = is.deadline
		}
	}
	d := earliest.Sub(c.now())
	if d < 0 {
		d = 0
	}
	if c.timer != nil {
		c.timer.Stop()
	}
	c.timer = time.AfterFunc(d, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
}

// register issues a lease: assigns its ID, arms its deadline and tracks
// it outstanding. Caller holds the lock.
func (c *Coordinator) register(l Lease) Lease {
	l.ID = c.nextID
	c.nextID++
	is := &issued{lease: l}
	if c.ttl > 0 {
		is.deadline = c.now().Add(c.ttl)
	}
	c.outstanding[l.ID] = is
	c.met.OnIssue()
	c.trace.Emit(obs.Event{Kind: "lease.issue", Lease: l.ID,
		Start: l.Pos[0], N: len(l.Pos), Attempt: l.Attempt})
	return l
}

// Next returns the next lease to execute, blocking while every pending
// position is out on an unexpired lease. It returns ok=false once every
// position has been completed (or the coordinator is closed) — the
// campaign is done.
func (c *Coordinator) Next() (Lease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return Lease{}, false
		}
		c.reclaimExpired()
		if n := len(c.reissue); n > 0 {
			l := c.reissue[n-1]
			c.reissue = c.reissue[:n-1]
			l.Attempt++
			return c.register(l), true
		}
		if l, ok := c.carve(); ok {
			return c.register(l), true
		}
		if len(c.outstanding) == 0 {
			// Nothing pending, nothing outstanding: complete.
			return Lease{}, false
		}
		c.armTimer()
		c.cond.Wait()
	}
}

// Complete marks a lease finished. Completing an already-reclaimed (or
// unknown) ID is a no-op: the re-issued copy owns the range now, and the
// duplicate execution's records dedupe by seq downstream.
func (c *Coordinator) Complete(id uint64) {
	c.mu.Lock()
	if is, ok := c.outstanding[id]; ok {
		delete(c.outstanding, id)
		c.met.OnComplete()
		c.trace.Emit(obs.Event{Kind: "lease.complete", Lease: id,
			Start: is.lease.Pos[0], N: len(is.lease.Pos), Attempt: is.lease.Attempt})
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// HandBack returns an uncompleted lease for immediate re-issue — the
// cooperative path a holder takes when it knows it cannot finish (a
// dropped connection, a refused backend).
func (c *Coordinator) HandBack(id uint64) {
	c.mu.Lock()
	if is, ok := c.outstanding[id]; ok {
		delete(c.outstanding, id)
		c.reissue = append(c.reissue, is.lease)
		c.met.OnHandBack()
		c.trace.Emit(obs.Event{Kind: "lease.handback", Lease: id,
			Start: is.lease.Pos[0], N: len(is.lease.Pos), Attempt: is.lease.Attempt})
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Extend refreshes a lease's deadline — the heartbeat of a holder that
// is alive but slow.
func (c *Coordinator) Extend(id uint64) {
	c.mu.Lock()
	if is, ok := c.outstanding[id]; ok && c.ttl > 0 {
		is.deadline = c.now().Add(c.ttl)
	}
	c.mu.Unlock()
}

// Close wakes every blocked Next with ok=false, abandoning the campaign.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	if c.timer != nil {
		c.timer.Stop()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Outstanding reports how many leases are currently issued and
// uncompleted.
func (c *Coordinator) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.outstanding)
}

// Issued reports how many fresh positions have been issued so far
// (re-issues of the same position count once).
func (c *Coordinator) Issued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fresh
}
