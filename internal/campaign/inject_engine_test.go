package campaign

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/inject"
	"xmrobust/internal/testgen"
)

// runInject streams one inject:sim campaign into dir.
func runInject(t *testing.T, opts Options, eo EngineOptions) EngineStats {
	t.Helper()
	plan, ropts, err := BuildPlan(opts)
	if err != nil {
		t.Fatal(err)
	}
	eo.Options = ropts
	stats, err := StreamPlan(plan, eo, nil)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestStreamInjectResumeExactReplay mirrors the feedback plan's
// exact-replay contract for the SEU subsystem: a fixed-seed inject:sim
// campaign interrupted at a checkpoint must resume to shard records
// byte-identical to an uninterrupted run's — the schedule being a pure
// function of (seed, dataset), no injector state survives or needs to.
func TestStreamInjectResumeExactReplay(t *testing.T) {
	const n = 40
	opts := Options{Plan: "rand:40", Seed: 5, Workers: 2, MAFs: 1, Target: "inject:sim"}

	refDir := t.TempDir()
	stats := runInject(t, opts, EngineOptions{
		ShardDir:       refDir,
		CheckpointPath: filepath.Join(refDir, "checkpoint.jsonl"),
	})
	if stats.Executed != n {
		t.Fatalf("reference executed %d, want %d", stats.Executed, n)
	}

	intDir := t.TempDir()
	eo := EngineOptions{
		ShardDir:       intDir,
		CheckpointPath: filepath.Join(intDir, "checkpoint.jsonl"),
	}
	eo.Limit = 25
	runInject(t, opts, eo)
	eo.Limit = 0
	eo.Resume = true
	stats = runInject(t, opts, eo)
	if stats.Skipped != 25 || stats.Executed != 15 {
		t.Fatalf("resume skipped %d executed %d, want 25 / 15", stats.Skipped, stats.Executed)
	}

	ref, err := CollectShards(refDir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectShards(intDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != n || len(got) != n {
		t.Fatalf("records: ref %d, interrupted %d, want %d", len(ref), len(got), n)
	}
	injected := 0
	for i := range ref {
		a, _ := json.Marshal(ref[i])
		b, _ := json.Marshal(got[i])
		if string(a) != string(b) {
			t.Fatalf("record %d diverges between uninterrupted and resumed runs:\n  %s\n  %s", i, a, b)
		}
		if ref[i].Injection != nil {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("a rate-1 inject campaign produced no injection records")
	}
}

// TestInjectResumeRefusesScheduleMismatch: the checkpoint records the
// schedule signature next to the plan fingerprint and target name, and a
// resume under any other schedule must be refused by name, not spliced.
func TestInjectResumeRefusesScheduleMismatch(t *testing.T) {
	opts := Options{Plan: "rand:10", Seed: 5, Workers: 2, MAFs: 1, Target: "inject:sim"}
	dir := t.TempDir()
	eo := EngineOptions{
		ShardDir:       dir,
		CheckpointPath: filepath.Join(dir, "checkpoint.jsonl"),
	}
	eo.Limit = 4
	runInject(t, opts, eo)

	resume := eo
	resume.Limit = 0
	resume.Resume = true
	bad := opts
	bad.Inject = inject.Params{Sites: []string{inject.SiteRAM}}
	plan, ropts, err := BuildPlan(bad)
	if err != nil {
		t.Fatal(err)
	}
	resume.Options = ropts
	_, err = StreamPlan(plan, resume, nil)
	if err == nil {
		t.Fatal("resume under a different injection schedule accepted")
	}
	if !strings.Contains(err.Error(), "injection schedule") || !strings.Contains(err.Error(), "sites=ram") {
		t.Fatalf("refusal does not name the schedules: %v", err)
	}

	// The matching schedule still resumes.
	stats := runInject(t, opts, resume)
	if stats.Skipped != 4 || stats.Executed != 6 {
		t.Fatalf("matching resume skipped %d executed %d, want 4 / 6", stats.Skipped, stats.Executed)
	}
}

// TestDiffWrappedInjectCheckpointsSchedule: diff:inject:sim,phantom is
// the documented composition order, and its checkpoint must carry the
// inject leg's schedule signature — the Diff composite forwards it — so
// a mismatched-schedule resume is refused there too.
func TestDiffWrappedInjectCheckpointsSchedule(t *testing.T) {
	opts := Options{Plan: "rand:8", Seed: 5, Workers: 2, MAFs: 1,
		Target: "diff:inject:sim,phantom", Inject: inject.Params{Rate: 0.9}}
	dir := t.TempDir()
	eo := EngineOptions{
		ShardDir:       dir,
		CheckpointPath: filepath.Join(dir, "checkpoint.jsonl"),
	}
	eo.Limit = 3
	runInject(t, opts, eo)

	resume := eo
	resume.Limit = 0
	resume.Resume = true
	bad := opts
	bad.Inject.Rate = 0.2
	plan, ropts, err := BuildPlan(bad)
	if err != nil {
		t.Fatal(err)
	}
	resume.Options = ropts
	if _, err := StreamPlan(plan, resume, nil); err == nil ||
		!strings.Contains(err.Error(), "rate=0.9") || !strings.Contains(err.Error(), "rate=0.2") {
		t.Fatalf("diff-wrapped inject resume under a changed schedule not refused by name: %v", err)
	}

	stats := runInject(t, opts, resume)
	if stats.Skipped != 3 || stats.Executed != 5 {
		t.Fatalf("matching resume skipped %d executed %d, want 3 / 5", stats.Skipped, stats.Executed)
	}
}

// TestInjectionRecordRoundTripsThroughLog: the injection record written
// to a shard must reconstruct into the identical in-memory record —
// site/bit/cycle/outcome are analysis inputs on the log-driven path.
func TestInjectionRecordRoundTrips(t *testing.T) {
	rec := &inject.Injection{
		Site: inject.SiteMMU, Phase: inject.PhaseMid, Bit: 17, Frame: 1,
		Addr: 0x40001000, Cycle: 250000, Applied: true,
		Outcome: inject.OutcomeDetected, Delta: "hm_events: 0 vs 2",
	}
	var r Result
	r.Dataset = testgen.Dataset{Func: apispec.Function{Name: "XM_get_time"}}
	r.Injection = rec
	out := ToRecord(3, r)
	if out.Injection != rec {
		t.Fatal("ToRecord did not thread the injection record")
	}
	blob, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var back JSONRecord
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	res, err := back.Result(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injection == nil || *res.Injection != *rec {
		t.Fatalf("round trip mangled the record: %+v", res.Injection)
	}
}
