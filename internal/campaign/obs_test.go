package campaign

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"xmrobust/internal/obs"
	"xmrobust/internal/store"
	"xmrobust/internal/target"
)

// obsRun streams a fixed-seed plan into an in-memory store and returns
// the merged log bytes — the byte-identity probe of the instrumented
// engine.
func obsRun(t testing.TB, o *obs.Obs) ([]byte, *store.Mem) {
	t.Helper()
	plan, ropts, err := BuildPlan(Options{Plan: "rand:60", Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewMem()
	eo := EngineOptions{Options: ropts, ShardDir: "shards", Store: st, Obs: o}
	if _, err := StreamPlan(plan, eo, nil); err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	if _, err := MergeShardsIn(st, "shards", &merged); err != nil {
		t.Fatal(err)
	}
	return merged.Bytes(), st
}

// TestStreamPlanObs wires a full observability handle through a
// checkpointed campaign and checks every layer reported: engine
// counters and progress, coordinator lease metrics, the trace-event
// stream in the shard directory — and that none of it changed a single
// byte of the campaign log.
func TestStreamPlanObs(t *testing.T) {
	plain, _ := obsRun(t, nil)

	o := obs.New()
	instrumented, st := obsRun(t, o)
	if !bytes.Equal(plain, instrumented) {
		t.Error("instrumented campaign log differs from the uninstrumented one")
	}

	em := obs.NewEngineMetrics(o.Registry())
	if got := em.Executed.Value(); got != 60 {
		t.Errorf("xm_engine_tests_executed_total = %d, want 60", got)
	}
	s := o.Prog().Snapshot()
	if s.Done != 60 || s.Total != 60 {
		t.Errorf("progress = %d/%d, want 60/60", s.Done, s.Total)
	}
	if len(s.Outcomes) == 0 {
		t.Error("progress snapshot has no outcome tallies")
	}

	var prom strings.Builder
	if err := o.Registry().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"xm_engine_tests_executed_total 60",
		"xm_engine_queue_depth",
		"xm_lease_issued_total",
		"xm_lease_completed_total",
		"xm_engine_encode_ns_count",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The trace stream lands next to the shards but outside the shard
	// pattern — merges must never read it.
	rc, err := st.OpenLog("shards/" + TraceName)
	if err != nil {
		t.Fatalf("trace stream missing: %v", err)
	}
	raw, _ := io.ReadAll(rc)
	rc.Close()
	kinds := map[string]int{}
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		kinds[ev.Kind]++
	}
	for _, k := range []string{"campaign.start", "campaign.end", "lease.issue", "lease.complete"} {
		if kinds[k] == 0 {
			t.Errorf("trace stream has no %q event (got %v)", k, kinds)
		}
	}
}

// BenchmarkObsOverhead pins the cost of the observability seam in its
// two states. The "off" case is the invariant the whole design hangs on:
// a nil Obs must cost the hot path roughly one nil check per event —
// compare the two sub-benchmark timings when touching the seam.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, o *obs.Obs) {
		plan, ropts, err := BuildPlan(Options{Plan: "rand:200", Seed: 1, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		eo := EngineOptions{
			Options:        ropts,
			ShardDir:       "shards",
			Store:          store.NewMem(),
			BatchSize:      16,
			Codec:          "raw",
			Obs:            o,
			TargetInstance: target.NewSim(target.Config{}),
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := StreamPlan(plan, eo, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, obs.New()) })
}
