package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"xmrobust/internal/corpus"
)

// runFeedback streams one feedback campaign and returns the executed
// datasets by position plus the plan's loop stats.
func runFeedback(t *testing.T, opts Options, eo EngineOptions) (map[int]string, corpus.Stats, EngineStats) {
	t.Helper()
	plan, ropts, err := BuildPlan(opts)
	if err != nil {
		t.Fatal(err)
	}
	fp, ok := plan.(*corpus.FeedbackPlan)
	if !ok {
		t.Fatalf("plan %q is not a feedback plan", plan.Strategy())
	}
	defer fp.Close()
	eo.Options = ropts
	var mu sync.Mutex
	got := map[int]string{}
	stats, err := StreamPlan(plan, eo, func(pos int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		got[pos] = r.Dataset.String()
		if r.Cover == nil {
			t.Errorf("test %d has no coverage map", pos)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, fp.Stats(), stats
}

func TestStreamFeedbackReproducible(t *testing.T) {
	opts := Options{Plan: "feedback:60", Seed: 11, Workers: 4}
	a, sa, _ := runFeedback(t, opts, EngineOptions{})
	b, sb, _ := runFeedback(t, opts, EngineOptions{})
	if len(a) != 60 || len(b) != 60 {
		t.Fatalf("executed %d / %d tests, want 60", len(a), len(b))
	}
	for pos := 0; pos < 60; pos++ {
		if a[pos] != b[pos] {
			t.Fatalf("position %d differs across identically seeded runs:\n  %s\n  %s", pos, a[pos], b[pos])
		}
	}
	if sa.Edges != sb.Edges || sa.Corpus != sb.Corpus {
		t.Fatalf("loop stats diverge: %+v vs %+v", sa, sb)
	}
	if sa.Edges == 0 || sa.Corpus == 0 || sa.Executed != 60 {
		t.Fatalf("degenerate loop stats: %+v", sa)
	}
}

func TestStreamFeedbackCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	eoBase := EngineOptions{
		ShardDir:       dir,
		CheckpointPath: filepath.Join(dir, "checkpoint.jsonl"),
	}
	opts := Options{Plan: "feedback:50", Seed: 3, Workers: 2}

	// Phase 1: budgeted run covering part of the campaign (the seed
	// region is 25 tests; a 20-test budget stops mid-seeds).
	eo := eoBase
	eo.Limit = 20
	_, _, stats := runFeedback(t, opts, eo)
	if stats.Executed != 20 {
		t.Fatalf("phase 1 executed %d, want 20", stats.Executed)
	}

	// Phase 2: resume to completion. A fresh plan instance rebuilds its
	// frontier from the shard records' coverage.
	eo = eoBase
	eo.Resume = true
	_, st, stats := runFeedback(t, opts, eo)
	if stats.Skipped != 20 || stats.Executed != 30 {
		t.Fatalf("phase 2 skipped %d executed %d, want 20 / 30", stats.Skipped, stats.Executed)
	}
	if st.Executed != 50 {
		t.Fatalf("loop folded %d results, want all 50 (replayed + live)", st.Executed)
	}
	if st.Edges == 0 {
		t.Fatal("resumed loop has an empty frontier despite replay")
	}
	records, err := CollectShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 50 {
		t.Fatalf("shards hold %d unique records, want 50", len(records))
	}
	for _, rec := range records {
		if len(rec.Cover) == 0 {
			t.Fatalf("record %d carries no coverage", rec.Seq)
		}
	}

	// A mismatched seed must refuse to resume (different fingerprint).
	bad := opts
	bad.Seed = 4
	plan, ropts, err := BuildPlan(bad)
	if err != nil {
		t.Fatal(err)
	}
	eo = eoBase
	eo.Resume = true
	eo.Options = ropts
	if _, err := StreamPlan(plan, eo, nil); err == nil {
		t.Fatal("resume under a different seed must fail")
	}
}

// TestStreamFeedbackResumeExactReplay interrupts a feedback campaign in
// the BRED region (past the seeds) and requires the resumed run to
// produce byte-identical shard records to an uninterrupted run — the
// rng state, emitted-set and corpus of the interrupted run are
// recomputed from the replayed coverage, corpus file included.
func TestStreamFeedbackResumeExactReplay(t *testing.T) {
	const n = 60 // 30 seeds + 30 bred
	opts := Options{Plan: "feedback:60", Seed: 3, Workers: 2}

	// Reference: one uninterrupted run.
	refDir := t.TempDir()
	refOpts := opts
	refOpts.Corpus = filepath.Join(refDir, "corpus.jsonl")
	_, _, stats := runFeedback(t, refOpts, EngineOptions{
		ShardDir:       refDir,
		CheckpointPath: filepath.Join(refDir, "checkpoint.jsonl"),
	})
	if stats.Executed != n {
		t.Fatalf("reference executed %d, want %d", stats.Executed, n)
	}

	// Interrupted at test 45 — 15 tests into the bred region — then
	// resumed to completion by a fresh plan instance.
	intDir := t.TempDir()
	intOpts := opts
	intOpts.Corpus = filepath.Join(intDir, "corpus.jsonl")
	eo := EngineOptions{
		ShardDir:       intDir,
		CheckpointPath: filepath.Join(intDir, "checkpoint.jsonl"),
	}
	eo.Limit = 45
	runFeedback(t, intOpts, eo)
	eo.Limit = 0
	eo.Resume = true
	_, _, stats = runFeedback(t, intOpts, eo)
	if stats.Skipped != 45 || stats.Executed != 15 {
		t.Fatalf("resume skipped %d executed %d, want 45 / 15", stats.Skipped, stats.Executed)
	}

	ref, err := CollectShards(refDir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectShards(intDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != n || len(got) != n {
		t.Fatalf("records: ref %d, interrupted %d, want %d", len(ref), len(got), n)
	}
	for i := range ref {
		a, _ := json.Marshal(ref[i])
		b, _ := json.Marshal(got[i])
		if string(a) != string(b) {
			t.Fatalf("record %d diverges between uninterrupted and resumed runs:\n  %s\n  %s", i, a, b)
		}
	}
	// The corpus files must agree on the admitted entries (the resumed
	// file has one extra run marker from the second attach).
	if a, b := corpusEntries(t, refOpts.Corpus), corpusEntries(t, intOpts.Corpus); a != b {
		t.Fatalf("corpus entries diverge:\n--- uninterrupted:\n%s--- resumed:\n%s", a, b)
	}
}

// corpusEntries returns the admitted-entry lines of a corpus file
// (run markers stripped).
func corpusEntries(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, `"func"`) {
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}

func TestGenerateSuiteRejectsDynamic(t *testing.T) {
	if _, _, err := GenerateSuite(Options{Plan: "feedback:10"}); err == nil {
		t.Fatal("GenerateSuite must refuse a dynamic plan instead of deadlocking in Materialize")
	}
}

func TestResumeRefusesCoverageMismatch(t *testing.T) {
	dir := t.TempDir()
	eo := EngineOptions{
		ShardDir:       dir,
		CheckpointPath: filepath.Join(dir, "checkpoint.jsonl"),
		Limit:          5,
	}
	plan, ropts, err := BuildPlan(Options{Plan: "rand:20", Seed: 1, Coverage: true})
	if err != nil {
		t.Fatal(err)
	}
	eo.Options = ropts
	if _, err := StreamPlan(plan, eo, nil); err != nil {
		t.Fatal(err)
	}
	// Resuming without coverage would append records lacking cover data
	// mid-campaign; the checkpoint signature must refuse.
	plan, ropts, err = BuildPlan(Options{Plan: "rand:20", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eo.Options = ropts
	eo.Resume = true
	eo.Limit = 0
	if _, err := StreamPlan(plan, eo, nil); err == nil {
		t.Fatal("resume with a different coverage setting must fail")
	}
}

func TestBuildPlanCorpusRequiresFeedback(t *testing.T) {
	if _, _, err := BuildPlan(Options{Plan: "pairwise", Corpus: filepath.Join(t.TempDir(), "c.jsonl")}); err == nil {
		t.Fatal("corpus file with a static plan must be rejected")
	}
	plan, _, err := BuildPlan(Options{Plan: "feedback:10", Corpus: filepath.Join(t.TempDir(), "c.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	plan.(*corpus.FeedbackPlan).Close()
}

func TestJSONRecordCoverRoundTrip(t *testing.T) {
	plan, ropts, err := BuildPlan(Options{Plan: "boundary", Coverage: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := plan.At(0)
	res := RunOne(ds, ropts)
	if res.Cover == nil || res.Cover.Empty() {
		t.Fatal("coverage-enabled run produced no edges")
	}
	rec := ToRecord(0, res)
	if len(rec.Cover) != res.Cover.Count() || rec.CoverSig == "" {
		t.Fatalf("record carries %d sites (sig %q), want %d", len(rec.Cover), rec.CoverSig, res.Cover.Count())
	}
	back, err := rec.Result(ropts.Header)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cover == nil || back.Cover.Signature() != res.Cover.Signature() {
		t.Fatal("coverage did not survive the record round trip")
	}
}
