package campaign

import (
	"bytes"
	"path/filepath"
	"testing"
)

// mergedCampaign runs a fixed-seed campaign through the streaming engine
// into shards and returns the merged log bytes.
func mergedCampaign(t *testing.T, eo EngineOptions) []byte {
	t.Helper()
	dir := t.TempDir()
	eo.ShardDir = filepath.Join(dir, "shards")
	eo.CheckpointPath = filepath.Join(dir, "ckpt")
	if _, err := StreamPlan(planSource(t, eo.Options.Plan, eo.Options), eo, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := MergeShards(eo.ShardDir, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// planSource builds the engine source for a campaign plan spec.
func planSource(t *testing.T, _ string, opts Options) Source {
	t.Helper()
	plan, _, err := BuildPlan(opts)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestBatchedExecutionIsByteIdentical is the acceptance property of the
// BatchExecutor capability: a fixed-seed campaign's merged log must be
// byte-identical whether tests execute one per slot acquisition or in
// multi-test leases rewound in-slot — across batch sizes that divide the
// campaign evenly and ones that leave a partial trailing lease, and
// across both codecs.
func TestBatchedExecutionIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full campaigns")
	}
	base := EngineOptions{Options: Options{Plan: "rand:30", Seed: 11, Workers: 2, MAFs: 2}}
	want := mergedCampaign(t, base)
	if len(want) == 0 {
		t.Fatal("empty campaign log")
	}
	for _, tc := range []struct {
		name string
		eo   EngineOptions
	}{
		{"batch3", EngineOptions{Options: base.Options, BatchSize: 3}},
		{"batch7-partial", EngineOptions{Options: base.Options, BatchSize: 7}},
		{"batch3-raw", EngineOptions{Options: base.Options, BatchSize: 3, Codec: "raw"}},
		{"unbatched-raw", EngineOptions{Options: base.Options, Codec: "raw"}},
		{"batch-legacy-pool-ignored", EngineOptions{Options: base.Options, BatchSize: 4, PoolStrict: true}},
	} {
		if got := mergedCampaign(t, tc.eo); !bytes.Equal(want, got) {
			t.Errorf("%s: merged log differs from unbatched json reference (%d vs %d bytes)",
				tc.name, len(got), len(want))
		}
	}
}

// TestBatchSizeOnIncapableTarget pins the graceful degradation: the
// phantom backend has no BatchExecutor, so a batched campaign on it must
// fall back to per-test execution and still match its unbatched log.
func TestBatchSizeOnIncapableTarget(t *testing.T) {
	opts := Options{Plan: "rand:12", Seed: 5, Target: "phantom", Workers: 1}
	want := mergedCampaign(t, EngineOptions{Options: opts})
	got := mergedCampaign(t, EngineOptions{Options: opts, BatchSize: 5})
	if !bytes.Equal(want, got) {
		t.Fatal("batched phantom campaign diverged from unbatched")
	}
}
