package campaign

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// TestCancelledCampaignResumesByteIdentical is the context-seam
// contract: cancelling a checkpointed campaign mid-run surfaces
// context.Canceled, leaves flushed shards and a durable checkpoint,
// and resuming replays the remainder to a merged log byte-identical
// to an uninterrupted run's.
func TestCancelledCampaignResumesByteIdentical(t *testing.T) {
	datasets := mixedSuite(t)
	opts := Options{Workers: 2}

	// The uninterrupted reference run.
	full := t.TempDir()
	if _, err := Stream(datasets, EngineOptions{
		Options: opts, ShardDir: full, CheckpointPath: filepath.Join(full, "ckpt.jsonl"),
	}, nil); err != nil {
		t.Fatal(err)
	}

	// The cancelled run: pull the plug from the sink a few tests in.
	split := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eo := EngineOptions{
		Options: opts, Ctx: ctx,
		ShardDir: split, CheckpointPath: filepath.Join(split, "ckpt.jsonl"),
	}
	seen := 0
	s1, err := Stream(datasets, eo, func(int, Result) {
		if seen++; seen == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	if s1.Executed >= len(datasets) {
		t.Fatalf("cancelled campaign executed all %d tests; cancellation did nothing", s1.Executed)
	}
	if s1.Executed < 5 {
		t.Fatalf("cancelled campaign executed %d tests, want at least the 5 the sink saw", s1.Executed)
	}

	// Resume without a context: the balance executes, and the merged
	// log matches the uninterrupted run byte for byte.
	eo.Ctx = nil
	eo.Resume = true
	s2, err := Stream(datasets, eo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Skipped != s1.Executed || s2.Executed != len(datasets)-s1.Executed {
		t.Fatalf("resume skipped %d / executed %d after a %d-test cancelled leg",
			s2.Skipped, s2.Executed, s1.Executed)
	}
	a, b := mergeDir(t, full), mergeDir(t, split)
	if !bytes.Equal(a, b) {
		t.Fatal("merged campaign logs differ between uninterrupted and cancelled-then-resumed runs")
	}
}

// TestPreCancelledContextRunsNothing: a context already done when the
// campaign starts must stop the feeder before any lease is issued.
func TestPreCancelledContextRunsNothing(t *testing.T) {
	datasets := mixedSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := Stream(datasets, EngineOptions{Options: Options{Workers: 2}, Ctx: ctx}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if stats.Executed != 0 {
		t.Fatalf("pre-cancelled campaign executed %d tests", stats.Executed)
	}
}

// TestNilContextUnchanged: the historical no-context path stays intact —
// a nil Ctx runs the campaign to completion with a nil error.
func TestNilContextUnchanged(t *testing.T) {
	datasets := mixedSuite(t)
	stats, err := Stream(datasets, EngineOptions{Options: Options{Workers: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != len(datasets) {
		t.Fatalf("executed %d of %d", stats.Executed, len(datasets))
	}
}
