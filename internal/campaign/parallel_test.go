package campaign

import (
	"bytes"
	"testing"
	"time"
)

// TestParallelInjectCampaignByteIdentical extends the determinism
// invariant to real parallelism: a fixed-seed inject:sim campaign at
// workers=8 (leases racing across eight goroutines, run under -race in
// CI) must merge to a log byte-identical to the workers=1 run. The SEU
// schedule keys on dataset content, not on dispatch order, so nothing a
// coordinator does to the lease interleaving may show in the log.
func TestParallelInjectCampaignByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full injection campaigns")
	}
	base := Options{Plan: "rand:64", Seed: 9, Target: "inject:sim", MAFs: 2}

	serial := base
	serial.Workers = 1
	want := mergedCampaign(t, EngineOptions{Options: serial, Codec: "raw"})
	if len(want) == 0 {
		t.Fatal("empty campaign log")
	}

	par := base
	par.Workers = 8
	for _, tc := range []struct {
		name string
		eo   EngineOptions
	}{
		{"workers8", EngineOptions{Options: par, Codec: "raw"}},
		{"workers8-batched", EngineOptions{Options: par, Codec: "raw", BatchSize: 5}},
		{"workers8-lease-ttl", EngineOptions{Options: par, Codec: "raw", BatchSize: 5, LeaseTTL: 25 * time.Millisecond}},
	} {
		if got := mergedCampaign(t, tc.eo); !bytes.Equal(want, got) {
			t.Errorf("%s: merged log differs from the workers=1 run (%d vs %d bytes)",
				tc.name, len(got), len(want))
		}
	}
}
