package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// FuzzJSONRecordRoundTrip drives arbitrary JSONL lines through the
// campaign-log pipeline: parse → reconstruct the in-memory Result →
// re-serialise → reconstruct again. Two properties must hold for any
// input, however hostile:
//
//  1. no panic anywhere on the path (the log readers face files edited,
//     truncated or produced by other tools), and
//  2. fixed-point stability: once a record has been normalised by one
//     reconstruct→serialise pass, further passes are byte-identical —
//     otherwise a log rewritten by tooling would drift on every rewrite.
//
// The seed corpus (testdata/fuzz-records.jsonl) is harvested from real
// campaigns: the diff-smoke divergence-oracle run and an inject:sim SEU
// run, so the divergence, injection, coverage and structured-HM fields
// are all present from the first iteration.
func FuzzJSONRecordRoundTrip(f *testing.F) {
	file, err := os.Open("testdata/fuzz-records.jsonl")
	if err != nil {
		f.Fatal(err)
	}
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f.Add(append([]byte(nil), sc.Bytes()...))
	}
	file.Close()
	if err := sc.Err(); err != nil {
		f.Fatal(err)
	}
	// Hand-built corner cases: empty record, unknown vocabulary, fields
	// with mismatched lengths, out-of-range coverage sites.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"func":"XM_bogus","seq":-3,"kernel_state":"EXPLODED","part_state":"","returns":[99],"return_names":[]}`))
	f.Add([]byte(`{"func":"XM_get_time","dataset":["1","2","3"],"descs":["only one"],"validity":["valid"]}`))
	f.Add([]byte(`{"func":"XM_get_time","cover":[4294967295,7,7,0],"cover_sig":"zzz"}`))
	f.Add([]byte(`{"func":"XM_get_time","hm":[{"seq":4,"t":-1,"ev":999,"act":-7,"part":-2,"detail":"x"}]}`))
	f.Add([]byte(`{"func":"XM_get_time","injection":{"site":"warp","phase":"never","bit":255,"applied":true,"outcome":"??"}}`))
	f.Add([]byte(`{"func":"XM_get_time","divergence":{"targets":["a","b"],"fields":["x"],"a":[],"b":["1","2"]}}`))

	rawC, err := NewCodec("raw")
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		// The raw codec must agree with encoding/json on every input,
		// however hostile: same accept/reject outcome, same record.
		var rec, viaRaw JSONRecord
		jsonErr := json.Unmarshal(line, &rec)
		rawErr := rawC.Decode(line, &viaRaw)
		if (jsonErr == nil) != (rawErr == nil) {
			t.Fatalf("codecs disagree on acceptance: json %v vs raw %v", jsonErr, rawErr)
		}
		if jsonErr != nil {
			t.Skip()
		}
		if a, _ := json.Marshal(rec); true {
			b, _ := json.Marshal(viaRaw)
			if !bytes.Equal(a, b) {
				t.Fatalf("codecs decode differently:\n  json: %s\n  raw:  %s", a, b)
			}
		}
		res, err := rec.Result(nil)
		if err != nil {
			// Rejected (e.g. an unknown validity word) — rejection is an
			// acceptable outcome, panicking is not.
			t.Skip()
		}
		norm := ToRecord(rec.Seq, res)
		first, err := json.Marshal(norm)
		if err != nil {
			t.Fatalf("normalised record does not marshal: %v", err)
		}
		// The raw encoder must reproduce the reference wire format byte
		// for byte on every record the pipeline can produce.
		raw, err := rawC.AppendEncode(nil, &norm)
		if err != nil {
			t.Fatalf("raw encode: %v", err)
		}
		if !bytes.Equal(first, raw) {
			t.Fatalf("raw encoding diverges from the wire format:\n  json: %s\n  raw:  %s", first, raw)
		}
		res2, err := norm.Result(nil)
		if err != nil {
			t.Fatalf("normalised record does not reconstruct: %v", err)
		}
		second, err := json.Marshal(ToRecord(norm.Seq, res2))
		if err != nil {
			t.Fatalf("second pass does not marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip is not a fixed point:\n  pass 1: %s\n  pass 2: %s", first, second)
		}
	})
}
