package campaign

import (
	"encoding/json"
	"fmt"
	"io"

	"xmrobust/internal/apispec"
	"xmrobust/internal/cover"
	"xmrobust/internal/dict"
	"xmrobust/internal/inject"
	"xmrobust/internal/target"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// JSONRecord is the serialised form of one test's execution log — the
// per-test record the paper's shell-script harness appended to the
// campaign log for the offline Log Analysis phase. It is self-contained:
// Result reconstructs the in-memory execution log from it, so a streamed
// campaign's analysis can run entirely off the shard files.
type JSONRecord struct {
	Func string `json:"func"`
	// Seq is the test's position in campaign order: the index into the
	// generated dataset list. Shard files interleave arbitrarily; sorting
	// records by Seq restores campaign order (see MergeShards).
	Seq int `json:"seq"`
	// Target names the execution backend that produced the log; State is
	// the phantom system state the test fired in (§V extension, empty
	// for the nominal data-type fault model).
	Target      string   `json:"target,omitempty"`
	State       string   `json:"state,omitempty"`
	TestPart    int      `json:"test_part,omitempty"`
	Dataset     []string `json:"dataset"`
	Descs       []string `json:"descs,omitempty"`
	Validity    []string `json:"validity,omitempty"`
	Invocations int      `json:"invocations"`
	Returns     []int32  `json:"returns"`
	ReturnNames []string `json:"return_names"`
	KernelState string   `json:"kernel_state"`
	KernelHalt  string   `json:"kernel_halt,omitempty"`
	ColdResets  uint32   `json:"cold_resets"`
	WarmResets  uint32   `json:"warm_resets"`
	// HMEvents is the human-readable health-monitor log; HMLog carries the
	// same entries structured, for reconstruction.
	HMEvents    []string      `json:"hm_events,omitempty"`
	HMLog       []JSONHMEvent `json:"hm,omitempty"`
	PartState   string        `json:"part_state"`
	PartDetail  string        `json:"part_detail,omitempty"`
	SimCrashed  bool          `json:"sim_crashed"`
	CrashReason string        `json:"crash_reason,omitempty"`
	RunErr      string        `json:"run_err,omitempty"`
	// Cover is the kernel edge coverage of the run in sparse form
	// (ascending site identifiers), present when coverage collection was
	// on; CoverSig is its stable signature, the cluster key of
	// behaviourally identical tests.
	Cover    []uint32 `json:"cover,omitempty"`
	CoverSig string   `json:"cover_sig,omitempty"`
	// Divergence is the diff target's disagreement record (nil outside
	// diff campaigns and on agreeing tests).
	Divergence *Divergence `json:"divergence,omitempty"`
	// Injection is the SEU record of an inject-target run: where the
	// schedule flipped a bit and how the injected run's observables
	// compared to the clean reference leg (nil outside inject campaigns
	// and on tests the schedule left clean).
	Injection *inject.Injection `json:"injection,omitempty"`
}

// JSONHMEvent is one structured health-monitor log entry.
type JSONHMEvent struct {
	Seq    uint32 `json:"seq"`
	Time   int64  `json:"t"`
	Event  int    `json:"ev"`
	Action int    `json:"act"`
	Sys    bool   `json:"sys,omitempty"`
	Part   int    `json:"part"`
	Detail string `json:"detail,omitempty"`
}

// JSONSummary is the legacy name of the decoded record view; external
// tooling reads campaign logs through it.
type JSONSummary = JSONRecord

// ToRecord serialises one execution log as the campaign-log record at
// position seq.
func ToRecord(seq int, r Result) JSONRecord {
	// A fresh scratch per call keeps the historical behaviour: every
	// slice in the returned record is caller-owned.
	var s recordScratch
	return s.toRecord(seq, r)
}

// recordScratch owns the slice capacity behind a shard writer's records:
// toRecord hands out records whose slices alias the scratch, so one
// encode-and-discard cycle per record stops allocating in steady state.
// The aliased record is only valid until the next toRecord call.
type recordScratch struct {
	dataset, descs, validity []string
	returns                  []int32
	returnNames              []string
	hmEvents                 []string
	hmLog                    []JSONHMEvent
}

// toRecord is ToRecord with scratch-backed slices. Field-absence
// semantics are identical: an empty field stays nil — never a non-nil
// empty slice — so the wire bytes match ToRecord exactly.
func (s *recordScratch) toRecord(seq int, r Result) JSONRecord {
	out := JSONRecord{
		Func:        r.Dataset.Func.Name,
		Seq:         seq,
		Target:      r.Target,
		State:       r.Dataset.State,
		TestPart:    r.TestPartition,
		Invocations: r.Invocations,
		KernelState: r.KernelState.String(),
		KernelHalt:  r.KernelHalt,
		ColdResets:  r.ColdResets,
		WarmResets:  r.WarmResets,
		PartState:   r.PartState.String(),
		PartDetail:  r.PartDetail,
		SimCrashed:  r.SimCrashed,
		CrashReason: r.CrashReason,
		RunErr:      r.RunErr,
	}
	if out.Target == target.SimName {
		// The default backend serialises as the field's absence: sim
		// campaign logs stay byte-identical to pre-target-layer logs,
		// and Result restores the default on read.
		out.Target = ""
	}
	if len(r.Resolved) > 0 {
		s.dataset, s.descs, s.validity = s.dataset[:0], s.descs[:0], s.validity[:0]
		for _, v := range r.Resolved {
			s.dataset = append(s.dataset, v.Raw)
			s.descs = append(s.descs, v.Desc)
			s.validity = append(s.validity, v.Validity.String())
		}
		out.Dataset, out.Descs, out.Validity = s.dataset, s.descs, s.validity
	}
	if len(r.Returns) > 0 {
		s.returns, s.returnNames = s.returns[:0], s.returnNames[:0]
		for _, rc := range r.Returns {
			s.returns = append(s.returns, int32(rc))
			s.returnNames = append(s.returnNames, rc.String())
		}
		out.Returns, out.ReturnNames = s.returns, s.returnNames
	}
	if len(r.HMEvents) > 0 {
		s.hmEvents, s.hmLog = s.hmEvents[:0], s.hmLog[:0]
		for _, e := range r.HMEvents {
			s.hmEvents = append(s.hmEvents, e.String())
			s.hmLog = append(s.hmLog, JSONHMEvent{
				Seq: e.Seq, Time: int64(e.Time), Event: int(e.Event), Action: int(e.Action),
				Sys: e.SystemScope, Part: e.PartitionID, Detail: e.Detail,
			})
		}
		out.HMEvents, out.HMLog = s.hmEvents, s.hmLog
	}
	if r.Cover != nil {
		out.Cover = r.Cover.Sites()
		out.CoverSig = fmt.Sprintf("%016x", r.Cover.Signature())
	}
	out.Divergence = r.Divergence
	out.Injection = r.Injection
	return out
}

// Result reconstructs the in-memory execution log from a record. The
// hypercall signature is resolved against h (default spec when nil);
// records of hypercalls absent from the spec keep a bare function so
// harness-error records still classify.
func (rec JSONRecord) Result(h *apispec.Header) (Result, error) {
	if h == nil {
		h = apispec.Default()
	}
	f, ok := h.Function(rec.Func)
	if !ok {
		f = apispec.Function{Name: rec.Func}
	}
	r := Result{
		Target:        rec.Target,
		TestPartition: rec.TestPart,
		Invocations:   rec.Invocations,
		KernelHalt:    rec.KernelHalt,
		ColdResets:    rec.ColdResets,
		WarmResets:    rec.WarmResets,
		PartDetail:    rec.PartDetail,
		SimCrashed:    rec.SimCrashed,
		CrashReason:   rec.CrashReason,
		RunErr:        rec.RunErr,
		Divergence:    rec.Divergence,
		Injection:     rec.Injection,
	}
	if r.Target == "" {
		// Records without a target field are the default backend's —
		// including every log written before the target layer existed.
		r.Target = target.SimName
	}
	// The state/return vocabularies parse through the generated inverse
	// maps xm shares with every campaign-log reader; unknown names keep
	// the zero value, the historic lenient behaviour.
	if ks, ok := xm.ParseKState(rec.KernelState); ok {
		r.KernelState = ks
	}
	if ps, ok := xm.ParsePState(rec.PartState); ok {
		r.PartState = ps
	}
	values := make([]dict.Value, len(rec.Dataset))
	for i, raw := range rec.Dataset {
		v := dict.Value{Raw: raw}
		if i < len(rec.Descs) {
			v.Desc = rec.Descs[i]
		}
		if i < len(rec.Validity) {
			val, err := dict.ParseValidity(rec.Validity[i])
			if err != nil {
				return Result{}, fmt.Errorf("campaign: record seq %d: %w", rec.Seq, err)
			}
			v.Validity = val
		}
		values[i] = v
		r.Resolved = append(r.Resolved, dict.Resolved{Value: v})
	}
	r.Dataset = testgen.Dataset{Func: f, Index: rec.Seq, Values: values, State: rec.State}
	for _, rc := range rec.Returns {
		r.Returns = append(r.Returns, xm.RetCode(rc))
	}
	for _, e := range rec.HMLog {
		r.HMEvents = append(r.HMEvents, xm.HMLogEntry{
			Seq: e.Seq, Time: xm.Time(e.Time), Event: xm.HMEvent(e.Event),
			Action: xm.HMAction(e.Action), SystemScope: e.Sys,
			PartitionID: e.Part, Detail: e.Detail,
		})
	}
	if len(rec.Cover) > 0 {
		r.Cover = cover.FromSites(rec.Cover)
	}
	return r, nil
}

// WriteJSON streams the campaign log as JSON Lines: one self-contained
// record per test, greppable and loadable without holding the whole
// campaign in memory.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	for i := range results {
		if err := enc.Encode(ToRecord(i, results[i])); err != nil {
			return fmt.Errorf("campaign: writing test %d: %w", i, err)
		}
	}
	return nil
}

// ReadJSON decodes a JSON Lines campaign log into summaries.
func ReadJSON(r io.Reader) ([]JSONSummary, error) {
	dec := json.NewDecoder(r)
	var out []JSONSummary
	for dec.More() {
		var s JSONSummary
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("campaign: reading record %d: %w", len(out), err)
		}
		out = append(out, s)
	}
	return out, nil
}

// VerifyRoundTrip sanity-checks the export path against the in-memory
// results (used by tests and by xmfuzz's self-check).
func VerifyRoundTrip(results []Result, summaries []JSONSummary) error {
	if len(results) != len(summaries) {
		return fmt.Errorf("campaign: %d results vs %d records", len(results), len(summaries))
	}
	for i, r := range results {
		s := summaries[i]
		if s.Func != r.Dataset.Func.Name {
			return fmt.Errorf("campaign: record %d func %q vs %q", i, s.Func, r.Dataset.Func.Name)
		}
		if len(s.Returns) != len(r.Returns) {
			return fmt.Errorf("campaign: record %d returns %d vs %d", i, len(s.Returns), len(r.Returns))
		}
		for j := range r.Returns {
			if xm.RetCode(s.Returns[j]) != r.Returns[j] {
				return fmt.Errorf("campaign: record %d return %d mismatch", i, j)
			}
		}
	}
	return nil
}
