package campaign

import (
	"encoding/json"
	"fmt"
	"io"

	"xmrobust/internal/xm"
)

// jsonResult is the serialised form of one test's execution log — the
// per-test record the paper's shell-script harness appended to the
// campaign log for the offline Log Analysis phase.
type jsonResult struct {
	Func        string   `json:"func"`
	Dataset     []string `json:"dataset"`
	Descs       []string `json:"descs,omitempty"`
	Validity    []string `json:"validity,omitempty"`
	Invocations int      `json:"invocations"`
	Returns     []int32  `json:"returns"`
	ReturnNames []string `json:"return_names"`
	KernelState string   `json:"kernel_state"`
	KernelHalt  string   `json:"kernel_halt,omitempty"`
	ColdResets  uint32   `json:"cold_resets"`
	WarmResets  uint32   `json:"warm_resets"`
	HMEvents    []string `json:"hm_events,omitempty"`
	PartState   string   `json:"part_state"`
	PartDetail  string   `json:"part_detail,omitempty"`
	SimCrashed  bool     `json:"sim_crashed"`
	CrashReason string   `json:"crash_reason,omitempty"`
	RunErr      string   `json:"run_err,omitempty"`
}

func toJSONResult(r Result) jsonResult {
	out := jsonResult{
		Func:        r.Dataset.Func.Name,
		Invocations: r.Invocations,
		KernelState: r.KernelState.String(),
		KernelHalt:  r.KernelHalt,
		ColdResets:  r.ColdResets,
		WarmResets:  r.WarmResets,
		PartState:   r.PartState.String(),
		PartDetail:  r.PartDetail,
		SimCrashed:  r.SimCrashed,
		CrashReason: r.CrashReason,
		RunErr:      r.RunErr,
	}
	for _, v := range r.Resolved {
		out.Dataset = append(out.Dataset, v.Raw)
		out.Descs = append(out.Descs, v.Desc)
		out.Validity = append(out.Validity, v.Validity.String())
	}
	for _, rc := range r.Returns {
		out.Returns = append(out.Returns, int32(rc))
		out.ReturnNames = append(out.ReturnNames, rc.String())
	}
	for _, e := range r.HMEvents {
		out.HMEvents = append(out.HMEvents, e.String())
	}
	return out
}

// WriteJSON streams the campaign log as JSON Lines: one self-contained
// record per test, greppable and loadable without holding the whole
// campaign in memory.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	for i := range results {
		if err := enc.Encode(toJSONResult(results[i])); err != nil {
			return fmt.Errorf("campaign: writing test %d: %w", i, err)
		}
	}
	return nil
}

// JSONSummary is the decoded view of one JSON Lines record, for external
// tooling and for the tests of the export itself.
type JSONSummary struct {
	Func        string   `json:"func"`
	Dataset     []string `json:"dataset"`
	Returns     []int32  `json:"returns"`
	ReturnNames []string `json:"return_names"`
	KernelState string   `json:"kernel_state"`
	ColdResets  uint32   `json:"cold_resets"`
	WarmResets  uint32   `json:"warm_resets"`
	HMEvents    []string `json:"hm_events"`
	PartState   string   `json:"part_state"`
	SimCrashed  bool     `json:"sim_crashed"`
}

// ReadJSON decodes a JSON Lines campaign log into summaries.
func ReadJSON(r io.Reader) ([]JSONSummary, error) {
	dec := json.NewDecoder(r)
	var out []JSONSummary
	for dec.More() {
		var s JSONSummary
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("campaign: reading record %d: %w", len(out), err)
		}
		out = append(out, s)
	}
	return out, nil
}

// VerifyRoundTrip sanity-checks the export path against the in-memory
// results (used by tests and by xmfuzz's self-check).
func VerifyRoundTrip(results []Result, summaries []JSONSummary) error {
	if len(results) != len(summaries) {
		return fmt.Errorf("campaign: %d results vs %d records", len(results), len(summaries))
	}
	for i, r := range results {
		s := summaries[i]
		if s.Func != r.Dataset.Func.Name {
			return fmt.Errorf("campaign: record %d func %q vs %q", i, s.Func, r.Dataset.Func.Name)
		}
		if len(s.Returns) != len(r.Returns) {
			return fmt.Errorf("campaign: record %d returns %d vs %d", i, len(s.Returns), len(r.Returns))
		}
		for j := range r.Returns {
			if xm.RetCode(s.Returns[j]) != r.Returns[j] {
				return fmt.Errorf("campaign: record %d return %d mismatch", i, j)
			}
		}
	}
	return nil
}
