package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
)

// mixedSuite builds a small suite covering the interesting outcome space:
// nominal returns, system resets, a hypervisor halt and a simulator crash
// — everything the pool's reset-and-verify cycle has to survive.
func mixedSuite(t *testing.T) []testgen.Dataset {
	t.Helper()
	h := apispec.Default()
	var out []testgen.Dataset
	for _, fn := range []string{"XM_get_system_status", "XM_reset_system", "XM_set_timer"} {
		f, ok := h.Function(fn)
		if !ok {
			t.Fatalf("unknown function %s", fn)
		}
		m, err := testgen.BuildMatrix(f, dict.Builtin())
		if err != nil {
			t.Fatal(err)
		}
		ds := m.Datasets()
		if len(ds) > 12 {
			ds = ds[:12]
		}
		out = append(out, ds...)
	}
	return out
}

// TestPooledMatchesFresh is the reset-isolation proof at the engine level:
// recycled machines must yield execution logs identical to fresh ones for
// every outcome class, with the pool's strict byte-scan verifying each
// recycle.
func TestPooledMatchesFresh(t *testing.T) {
	datasets := mixedSuite(t)
	opts := Options{Workers: 4}

	run := func(eo EngineOptions) []Result {
		results := make([]Result, len(datasets))
		stats, err := Stream(datasets, eo, func(pos int, r Result) { results[pos] = r })
		if err != nil {
			t.Fatal(err)
		}
		if stats.Executed != len(datasets) {
			t.Fatalf("executed %d of %d", stats.Executed, len(datasets))
		}
		return results
	}
	fresh := run(EngineOptions{Options: opts, FreshMachines: true})
	pooled := run(EngineOptions{Options: opts, PoolStrict: true})

	for i := range fresh {
		if !reflect.DeepEqual(fresh[i], pooled[i]) {
			t.Errorf("dataset %d (%s): pooled result differs from fresh\nfresh:  %+v\npooled: %+v",
				i, datasets[i], fresh[i], pooled[i])
		}
	}
}

// TestPoolOnlyDiscardsCrashes: in strict mode every recycle is a full
// byte-scan, so any state leak would surface as a verification discard.
// The only legitimate discards are crashed simulators.
func TestPoolOnlyDiscardsCrashes(t *testing.T) {
	datasets := mixedSuite(t)
	crashes := 0
	stats, err := Stream(datasets, EngineOptions{Options: Options{Workers: 2}, PoolStrict: true},
		func(pos int, r Result) {
			if r.SimCrashed {
				crashes++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if crashes == 0 {
		t.Fatal("suite raised no simulator crash; the discard assertion is vacuous")
	}
	if got := stats.Pool.Discarded; got != uint64(crashes) {
		t.Fatalf("pool discarded %d machines, want exactly the %d crashes (a reset leaked state)",
			got, crashes)
	}
	if stats.Pool.Reused == 0 {
		t.Fatal("pool never recycled a machine")
	}
}

// mergeDir renders the shard directory as one campaign-ordered log.
func mergeDir(t *testing.T, dir string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := MergeShards(dir, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	datasets := mixedSuite(t)
	opts := Options{Workers: 4}

	// The uninterrupted reference run.
	full := t.TempDir()
	if _, err := Stream(datasets, EngineOptions{
		Options: opts, ShardDir: full, CheckpointPath: filepath.Join(full, "ckpt.jsonl"),
	}, nil); err != nil {
		t.Fatal(err)
	}

	// The interrupted run: stop a third of the way in, then resume.
	split := t.TempDir()
	ckpt := filepath.Join(split, "ckpt.jsonl")
	eo := EngineOptions{Options: opts, ShardDir: split, CheckpointPath: ckpt}
	eo.Limit = len(datasets) / 3
	s1, err := Stream(datasets, eo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Executed != eo.Limit {
		t.Fatalf("first leg executed %d, want %d", s1.Executed, eo.Limit)
	}
	eo.Limit = 0
	eo.Resume = true
	s2, err := Stream(datasets, eo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Skipped != s1.Executed || s2.Executed != len(datasets)-s1.Executed {
		t.Fatalf("resume skipped %d / executed %d after a %d-test first leg",
			s2.Skipped, s2.Executed, s1.Executed)
	}

	a, b := mergeDir(t, full), mergeDir(t, split)
	if !bytes.Equal(a, b) {
		t.Fatalf("merged campaign logs differ between uninterrupted and resumed runs:\n--- full ---\n%s\n--- resumed ---\n%s", a, b)
	}
}

// TestFreshRunClearsStaleShards: restarting a campaign in a used
// directory without -resume must not let the previous run's records leak
// into the merged log.
func TestFreshRunClearsStaleShards(t *testing.T) {
	datasets := mixedSuite(t)
	dir := t.TempDir()
	eo := EngineOptions{Options: Options{Workers: 2}, ShardDir: dir,
		CheckpointPath: filepath.Join(dir, "ckpt.jsonl")}
	if _, err := Stream(datasets[:6], eo, nil); err != nil {
		t.Fatal(err)
	}
	// Same directory, different (smaller) campaign, no resume.
	if _, err := Stream(datasets[:3], eo, nil); err != nil {
		t.Fatal(err)
	}
	records, err := CollectShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("merged log holds %d records after a 3-test fresh run", len(records))
	}
}

// TestResumeTrimsTornShardTail: an interruption can leave half a record
// at a shard's tail; resuming must truncate it before appending, or the
// fragment merges with the next record and poisons the whole directory.
func TestResumeTrimsTornShardTail(t *testing.T) {
	datasets := mixedSuite(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	eo := EngineOptions{Options: Options{Workers: 1}, ShardDir: dir, CheckpointPath: ckpt, Limit: 4}
	if _, err := Stream(datasets, eo, nil); err != nil {
		t.Fatal(err)
	}
	// Simulate a SIGKILL mid-record: append a torn fragment with no
	// matching checkpoint mark.
	f, err := os.OpenFile(shardPath(dir, 0), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"func":"XM_torn","seq":4,"kernel_st`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	eo.Limit = 0
	eo.Resume = true
	if _, err := Stream(datasets, eo, nil); err != nil {
		t.Fatal(err)
	}
	records, err := CollectShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(datasets) {
		t.Fatalf("merged log holds %d records, want %d", len(records), len(datasets))
	}
	for i, rec := range records {
		if rec.Seq != i {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		if rec.Func == "XM_torn" {
			t.Fatal("torn fragment survived the resume")
		}
	}
}

func TestCheckpointRejectsForeignCampaign(t *testing.T) {
	datasets := mixedSuite(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	eo := EngineOptions{Options: Options{Workers: 2}, ShardDir: dir, CheckpointPath: ckpt}
	if _, err := Stream(datasets[:4], eo, nil); err != nil {
		t.Fatal(err)
	}
	eo.Resume = true
	if _, err := Stream(datasets[:5], eo, nil); err == nil {
		t.Fatal("checkpoint of a different campaign accepted")
	}
}

// TestResumeRequiresShards: a checkpoint mark promises a durable record;
// the engine refuses a resume that would silently drop the skipped tests.
func TestResumeRequiresShards(t *testing.T) {
	datasets := mixedSuite(t)
	eo := EngineOptions{Options: Options{Workers: 2},
		CheckpointPath: filepath.Join(t.TempDir(), "ckpt.jsonl"), Resume: true}
	if _, err := Stream(datasets, eo, nil); err == nil {
		t.Fatal("resume without a shard directory accepted")
	}
}

func TestCollectShardsDeduplicates(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 1 holds seq 1 and a duplicate of seq 0 (a record re-executed
	// around an interruption); shard 0 also ends in a torn line.
	write("shard-000.jsonl", `{"func":"XM_a","seq":0,"kernel_state":"RUNNING","part_state":"NORMAL"}`+"\n"+`{"func":"XM_tor`)
	write("shard-001.jsonl", `{"func":"XM_b","seq":1,"kernel_state":"RUNNING","part_state":"NORMAL"}`+"\n"+
		`{"func":"XM_a","seq":0,"kernel_state":"RUNNING","part_state":"NORMAL"}`+"\n")
	records, err := CollectShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[0].Seq != 0 || records[1].Seq != 1 {
		t.Fatalf("records = %+v", records)
	}
	if records[0].Func != "XM_a" || records[1].Func != "XM_b" {
		t.Fatalf("records = %+v", records)
	}
}

// TestRecordReconstruction: a record read back from the campaign log must
// reconstruct an execution log that the analysis phase cannot tell from
// the original.
func TestRecordReconstruction(t *testing.T) {
	datasets := mixedSuite(t)
	h := apispec.Default()
	for i, ds := range datasets {
		orig := RunOne(ds, Options{})
		rec := ToRecord(i, orig)
		back, err := rec.Result(h)
		if err != nil {
			t.Fatalf("dataset %d: %v", i, err)
		}
		// The resolved Bits are execution-time detail the log does not
		// carry; everything analysis reads must round-trip.
		for j := range back.Resolved {
			back.Resolved[j].Bits = orig.Resolved[j].Bits
		}
		back.Dataset.Index = orig.Dataset.Index
		if !reflect.DeepEqual(orig, back) {
			t.Fatalf("dataset %d (%s): reconstruction drifted\norig: %+v\nback: %+v",
				i, ds, orig, back)
		}
	}
}

func TestStreamBoundedQueue(t *testing.T) {
	datasets := mixedSuite(t)
	var seen int
	stats, err := Stream(datasets, EngineOptions{Options: Options{Workers: 2}, QueueDepth: 1},
		func(pos int, r Result) { seen++ })
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(datasets) || stats.Executed != len(datasets) {
		t.Fatalf("seen %d, executed %d, want %d", seen, stats.Executed, len(datasets))
	}
}

func TestStreamProgressCountsResumedTests(t *testing.T) {
	datasets := mixedSuite(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	eo := EngineOptions{Options: Options{Workers: 2}, ShardDir: dir, CheckpointPath: ckpt, Limit: 5}
	if _, err := Stream(datasets, eo, nil); err != nil {
		t.Fatal(err)
	}
	var first, last int
	eo.Limit = 0
	eo.Resume = true
	eo.Progress = func(done, total int) {
		if first == 0 {
			first = done
		}
		last = done
		if total != len(datasets) {
			t.Errorf("total = %d, want %d", total, len(datasets))
		}
	}
	if _, err := Stream(datasets, eo, nil); err != nil {
		t.Fatal(err)
	}
	if first != 6 || last != len(datasets) {
		t.Fatalf("progress ran %d..%d, want 6..%d", first, last, len(datasets))
	}
}

func TestPhantomPlanThroughEngine(t *testing.T) {
	// The §V extension is an ordinary plan now: its 50 stateful tests
	// stream through the same engine path as every other campaign.
	suite, opts, err := GenerateSuite(Options{Plan: "phantom", MAFs: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 50 {
		t.Fatalf("phantom tests = %d, want 50", len(suite))
	}
	res := RunDatasets(suite, opts)
	for i, r := range res {
		if r.RunErr != "" {
			t.Fatalf("phantom test %d (%s): %s", i, r.Dataset, r.RunErr)
		}
		if r.Target != "sim" {
			t.Fatalf("phantom test %d executed on %q, want sim", i, r.Target)
		}
	}
}
