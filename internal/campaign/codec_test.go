package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"testing"
)

// TestCodecRegistry pins the codec discovery surface: both built-in
// codecs resolve by name, the empty name defaults to json, and unknown
// names are refused with the inventory.
func TestCodecRegistry(t *testing.T) {
	names := CodecNames()
	if len(names) != 2 || names[0] != "json" || names[1] != "raw" {
		t.Fatalf("codec names = %v", names)
	}
	def, err := NewCodec("")
	if err != nil || def.Name() != "json" {
		t.Fatalf("default codec = %v, %v", def, err)
	}
	if _, err := NewCodec("msgpack"); err == nil {
		t.Fatal("unknown codec accepted")
	}
	for _, ci := range CodecInventory() {
		if ci.Desc == "" {
			t.Errorf("codec %q has no description", ci.Name)
		}
	}
}

// corpusLines loads the fuzz seed corpus — real campaign records with
// divergence, injection, coverage and structured-HM fields present.
func corpusLines(t *testing.T) [][]byte {
	t.Helper()
	f, err := os.Open("testdata/fuzz-records.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty corpus")
	}
	return lines
}

// TestCodecsGoldenCorpus is the golden test of the wire format: for
// every record of the fuzz corpus, the raw codec's encoding must be
// byte-identical to encoding/json's, and its strict decoder (no
// fallback) must reproduce exactly the record encoding/json parses.
func TestCodecsGoldenCorpus(t *testing.T) {
	jsonC, _ := NewCodec("json")
	rawC, _ := NewCodec("raw")
	for i, line := range corpusLines(t) {
		var rec JSONRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("corpus line %d does not parse: %v", i, err)
		}
		je, err := jsonC.AppendEncode(nil, &rec)
		if err != nil {
			t.Fatalf("line %d: json encode: %v", i, err)
		}
		re, err := rawC.AppendEncode(nil, &rec)
		if err != nil {
			t.Fatalf("line %d: raw encode: %v", i, err)
		}
		if !bytes.Equal(je, re) {
			t.Fatalf("line %d: codecs disagree:\n  json: %s\n  raw:  %s", i, je, re)
		}
		// The strict decoder must accept its own wire format without the
		// encoding/json fallback…
		var strict JSONRecord
		if err := rawDecodeRecord(je, &strict); err != nil {
			t.Fatalf("line %d: strict raw decode refused codec output: %v", i, err)
		}
		// …and land on the identical record.
		var viaJSON JSONRecord
		if err := jsonC.Decode(je, &viaJSON); err != nil {
			t.Fatalf("line %d: json decode: %v", i, err)
		}
		if !reflect.DeepEqual(strict, viaJSON) {
			t.Fatalf("line %d: decoders disagree:\n  raw:  %+v\n  json: %+v", i, strict, viaJSON)
		}
		// The original corpus line itself (arbitrary field order, already
		// normalised or not) must decode identically through both codecs.
		var rawRec JSONRecord
		if err := rawC.Decode(line, &rawRec); err != nil {
			t.Fatalf("line %d: raw decode: %v", i, err)
		}
		if !reflect.DeepEqual(rawRec, rec) {
			t.Fatalf("line %d: raw decode drifted:\n  raw:  %+v\n  json: %+v", i, rawRec, rec)
		}
	}
}

// TestRawStringEscaping sweeps the encoder's escaping corners — HTML
// metacharacters, every control byte, invalid UTF-8, U+2028/U+2029,
// multibyte runes — against encoding/json, and round-trips each through
// the strict decoder.
func TestRawStringEscaping(t *testing.T) {
	cases := []string{
		"",
		"plain ascii",
		`quotes " and \ backslash`,
		"<script>&amp;</script>",
		"tab\tnewline\ncr\rbell\abackspace\bformfeed\f",
		"\x00\x01\x1f\x7f",
		"line sep \u2028 para sep \u2029",
		"valid utf8: héllo wörld ✓ 日本語",
		"invalid utf8: \xff\xfe broken \xc3 tail",
		"mixed \xed\xa0\x80 surrogate bytes",
		"ends with continuation \xc3",
	}
	for i := 0; i < 256; i++ {
		cases = append(cases, "byte "+string(rune(i)))
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		got := rawAppendString(nil, s)
		if !bytes.Equal(want, got) {
			t.Errorf("encode %q:\n  json: %s\n  raw:  %s", s, want, got)
			continue
		}
		p := rawParser{b: got}
		back, err := p.str()
		if err != nil {
			t.Errorf("decode %s: %v", got, err)
			continue
		}
		var viaJSON string
		if err := json.Unmarshal(want, &viaJSON); err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if back != viaJSON {
			t.Errorf("round trip %q: raw %q vs json %q", s, back, viaJSON)
		}
	}
}

// TestRawDecoderFallback feeds the raw codec inputs outside its strict
// format — unknown keys, case-variant keys, floats in integer fields,
// overflow, trailing garbage, duplicate keys, unicode escapes — and
// requires exact agreement with encoding/json on both the outcome and
// the decoded record.
func TestRawDecoderFallback(t *testing.T) {
	rawC, _ := NewCodec("raw")
	jsonC, _ := NewCodec("json")
	cases := []string{
		`{}`,
		`{"unknown_key":1}`,
		`{"Func":"case-insensitive"}`,
		`{"func":"x","seq":1.5}`,
		`{"func":"x","seq":1e3}`,
		`{"func":"x","seq":9223372036854775808}`,
		`{"func":"x","seq":-9223372036854775808}`,
		`{"func":"x","cold_resets":-1}`,
		`{"func":"x","cover":[4294967296]}`,
		`{"func":"x"} trailing`,
		`{"func":"a","func":"b"}`,
		`{"func":"esc \u0041\u00e9\ud83d\ude00\ud800 end"}`,
		`{"func":"lone \ud800 surrogate"}`,
		`{"seq":01}`,
		`{"seq":-0}`,
		`{"dataset":null,"returns":[],"return_names":["a"]}`,
		`{"injection":{"site":"ram","bit":256}}`,
		`{"injection":{"site":"ram","addr":18446744073709551615}}`,
		`{"hm":[{"seq":1,"t":-9223372036854775808,"ev":2,"act":3,"part":4}]}`,
		`{"divergence":{"targets":["a"],"fields":null,"a":[],"b":["x"]}}`,
		`{"divergence":{"targets":["a","b","c"],"fields":[],"a":[],"b":[]}}`,
		`  {  "func" : "spaced"  ,  "seq" : 7 }  `,
		`[1,2,3]`,
		`"just a string"`,
		`{"func":`,
		``,
	}
	for _, line := range cases {
		var viaRaw, viaJSON JSONRecord
		rawErr := rawC.Decode([]byte(line), &viaRaw)
		jsonErr := jsonC.Decode([]byte(line), &viaJSON)
		if (rawErr == nil) != (jsonErr == nil) {
			t.Errorf("%s: raw err %v vs json err %v", line, rawErr, jsonErr)
			continue
		}
		if rawErr == nil && !reflect.DeepEqual(viaRaw, viaJSON) {
			t.Errorf("%s:\n  raw:  %+v\n  json: %+v", line, viaRaw, viaJSON)
		}
	}
}
