package campaign

import (
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// datasetFor builds the dataset of one hypercall whose values match the
// given raw strings.
func datasetFor(t *testing.T, fn string, raws ...string) testgen.Dataset {
	t.Helper()
	h := apispec.Default()
	f, ok := h.Function(fn)
	if !ok {
		t.Fatalf("unknown function %s", fn)
	}
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range m.Datasets() {
		if len(ds.Values) != len(raws) {
			continue
		}
		match := true
		for i, r := range raws {
			if ds.Values[i].Raw != r {
				match = false
				break
			}
		}
		if match {
			return ds
		}
	}
	t.Fatalf("no dataset %s%v", fn, raws)
	return testgen.Dataset{}
}

func TestRunOneNominalCall(t *testing.T) {
	ds := datasetFor(t, "XM_get_system_status", "VALID")
	res := RunOne(ds, Options{})
	if res.RunErr != "" {
		t.Fatal(res.RunErr)
	}
	if !res.Returned() || res.Invocations != DefaultMAFs {
		t.Fatalf("invocations=%d returns=%v", res.Invocations, res.Returns)
	}
	for _, rc := range res.Returns {
		if rc != xm.OK {
			t.Fatalf("returns = %v", res.Returns)
		}
	}
	if res.SimCrashed || res.KernelState != xm.KStateRunning {
		t.Fatal("nominal call damaged the system")
	}
	if res.ColdResets+res.WarmResets != 0 {
		t.Fatal("nominal call reset the system")
	}
}

func TestRunOneInvalidParamCall(t *testing.T) {
	ds := datasetFor(t, "XM_get_system_status", "NULL")
	res := RunOne(ds, Options{})
	rc, ok := res.LastReturn()
	if !ok || rc != xm.InvalidParam {
		t.Fatalf("return = %v %v, want XM_INVALID_PARAM", rc, ok)
	}
}

func TestRunOneResetSystemIssue(t *testing.T) {
	ds := datasetFor(t, "XM_reset_system", "2")
	res := RunOne(ds, Options{})
	if res.Returned() {
		t.Fatal("XM_reset_system(2) returned on the legacy kernel")
	}
	if res.ColdResets == 0 {
		t.Fatal("no cold reset observed")
	}
}

func TestRunOneTimerHalt(t *testing.T) {
	ds := datasetFor(t, "XM_set_timer", "0", "1", "1")
	res := RunOne(ds, Options{})
	if res.KernelState != xm.KStateHalted {
		t.Fatalf("kernel state = %v, want HALTED", res.KernelState)
	}
	if res.RunErr != "" {
		t.Fatalf("kernel halt is an outcome, not a harness error: %q", res.RunErr)
	}
}

func TestRunOneSimulatorCrash(t *testing.T) {
	ds := datasetFor(t, "XM_set_timer", "1", "1", "1")
	res := RunOne(ds, Options{})
	if !res.SimCrashed {
		t.Fatal("simulator survived XM_set_timer(1,1,1) on the legacy kernel")
	}
	if res.RunErr != "" {
		t.Fatalf("sim crash is an outcome, not a harness error: %q", res.RunErr)
	}
}

func TestRunOneMulticallOverrun(t *testing.T) {
	ds := datasetFor(t, "XM_multicall", "VALID", "VALID_MID")
	res := RunOne(ds, Options{})
	if res.PartState != xm.PStateSuspended {
		t.Fatalf("partition state = %v, want SUSPENDED (temporal violation)", res.PartState)
	}
	found := false
	for _, e := range res.HMEvents {
		if e.Event == xm.HMEvSchedOverrun {
			found = true
		}
	}
	if !found {
		t.Fatal("no overrun in the HM log")
	}
}

func TestRunOnePatchedKernelCleans(t *testing.T) {
	for _, raws := range [][]string{
		{"2"}, {"16"}, {"4294967295"},
	} {
		ds := datasetFor(t, "XM_reset_system", raws...)
		res := RunOne(ds, Options{Faults: xm.PatchedFaults()})
		rc, ok := res.LastReturn()
		if !ok || rc != xm.InvalidParam {
			t.Fatalf("patched XM_reset_system(%v) = %v %v", raws, rc, ok)
		}
		if res.ColdResets+res.WarmResets != 0 {
			t.Fatal("patched kernel reset")
		}
	}
}

func TestRunOneIsDeterministic(t *testing.T) {
	ds := datasetFor(t, "XM_memory_copy", "VALID", "VALID_MID", "4096")
	a := RunOne(ds, Options{})
	b := RunOne(ds, Options{})
	if len(a.Returns) != len(b.Returns) {
		t.Fatal("nondeterministic return count")
	}
	for i := range a.Returns {
		if a.Returns[i] != b.Returns[i] {
			t.Fatal("nondeterministic returns")
		}
	}
	if len(a.HMEvents) != len(b.HMEvents) {
		t.Fatal("nondeterministic HM log")
	}
}

func TestRunDatasetsParallelMatchesSerial(t *testing.T) {
	h := apispec.Default()
	f, _ := h.Function("XM_reset_system")
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	datasets := m.Datasets()
	serial := RunDatasets(datasets, Options{Workers: 1})
	parallel := RunDatasets(datasets, Options{Workers: 8})
	if len(serial) != len(parallel) {
		t.Fatal("length mismatch")
	}
	for i := range serial {
		if serial[i].ColdResets != parallel[i].ColdResets ||
			serial[i].WarmResets != parallel[i].WarmResets ||
			len(serial[i].Returns) != len(parallel[i].Returns) {
			t.Fatalf("case %d differs between serial and parallel runs", i)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	h := apispec.Default()
	f, _ := h.Function("XM_multicall")
	m, _ := testgen.BuildMatrix(f, dict.Builtin())
	var calls int
	var last int
	RunDatasets(m.Datasets(), Options{
		Workers: 4,
		Progress: func(done, total int) {
			calls++
			last = done
			if total != 9 {
				t.Errorf("total = %d, want 9", total)
			}
		},
	})
	if calls != 9 || last != 9 {
		t.Fatalf("progress calls = %d, last = %d", calls, last)
	}
}

func TestStressOptionStillFindsIssues(t *testing.T) {
	ds := datasetFor(t, "XM_reset_system", "16")
	res := RunOne(ds, Options{Stress: true})
	if res.ColdResets == 0 {
		t.Fatal("stress preload masked the reset issue")
	}
}

func TestRunOneUnknownFunction(t *testing.T) {
	ds := testgen.Dataset{Func: apispec.Function{Name: "XM_nonexistent"}}
	res := RunOne(ds, Options{})
	if res.RunErr == "" {
		t.Fatal("unknown hypercall accepted")
	}
}

func TestReturnedSemantics(t *testing.T) {
	r := Result{}
	if r.Returned() {
		t.Error("zero result reports returned")
	}
	r.Invocations = 2
	r.Returns = []xm.RetCode{xm.OK}
	if r.Returned() {
		t.Error("partial returns report returned")
	}
	r.Returns = append(r.Returns, xm.NoAction)
	if !r.Returned() {
		t.Error("full returns report not-returned")
	}
	rc, ok := r.LastReturn()
	if !ok || rc != xm.NoAction {
		t.Errorf("LastReturn = %v %v", rc, ok)
	}
}
