package campaign

import (
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/xm"
)

func TestPhantomStatesInventory(t *testing.T) {
	states := PhantomStates()
	if len(states) != 5 {
		t.Fatalf("phantom states = %d, want 5", len(states))
	}
	seen := map[string]bool{}
	for _, st := range states {
		if st.Name == "" || st.Desc == "" {
			t.Errorf("state %+v lacks name/description", st)
		}
		if seen[st.Name] {
			t.Errorf("duplicate state %q", st.Name)
		}
		seen[st.Name] = true
	}
	if !seen["nominal"] {
		t.Error("the nominal state must anchor the comparison")
	}
}

func TestGeneratePhantomCoversParameterlessCalls(t *testing.T) {
	suite := GeneratePhantom(apispec.Default())
	// 10 parameter-less hypercalls x 5 states.
	if len(suite) != 50 {
		t.Fatalf("suite = %d tests, want 50", len(suite))
	}
	fns := map[string]int{}
	for _, pd := range suite {
		if len(pd.Func.Params) != 0 {
			t.Errorf("%s has parameters", pd.Func.Name)
		}
		fns[pd.Func.Name]++
	}
	if len(fns) != 10 {
		t.Fatalf("functions = %d, want 10", len(fns))
	}
	for fn, n := range fns {
		if n != 5 {
			t.Errorf("%s tested under %d states, want 5", fn, n)
		}
	}
}

func phantomFor(t *testing.T, fn, state string) PhantomDataset {
	t.Helper()
	for _, pd := range GeneratePhantom(apispec.Default()) {
		if pd.Func.Name == fn && pd.State.Name == state {
			return pd
		}
	}
	t.Fatalf("no phantom test %s @ %s", fn, state)
	return PhantomDataset{}
}

func TestPhantomHaltSystem(t *testing.T) {
	for _, state := range []string{"nominal", "ipc-saturated", "survival-plan"} {
		pd := phantomFor(t, "XM_halt_system", state)
		res := RunPhantom(pd, Options{})
		if res.RunErr != "" {
			t.Fatalf("%s: %s", state, res.RunErr)
		}
		if res.KernelState != xm.KStateHalted {
			t.Errorf("%s: kernel %v, want HALTED", state, res.KernelState)
		}
		if res.Returned() {
			t.Errorf("%s: XM_halt_system returned", state)
		}
	}
}

func TestPhantomSuspendSelf(t *testing.T) {
	pd := phantomFor(t, "XM_suspend_self", "hm-backlog")
	res := RunPhantom(pd, Options{})
	if res.RunErr != "" {
		t.Fatal(res.RunErr)
	}
	if res.PartState != xm.PStateSuspended {
		t.Fatalf("partition %v, want SUSPENDED", res.PartState)
	}
	// The warm-up rogue's HM entry must be visible in the log.
	if len(res.HMEvents) == 0 {
		t.Fatal("hm-backlog state produced no HM entries")
	}
}

func TestPhantomStateChangesContext(t *testing.T) {
	// The ipc-saturated state must actually differ from nominal: under
	// saturation, the TMTC partition has dropped frames.
	nom := RunPhantom(phantomFor(t, "XM_hm_open", "nominal"), Options{})
	sat := RunPhantom(phantomFor(t, "XM_hm_open", "ipc-saturated"), Options{})
	if nom.RunErr != "" || sat.RunErr != "" {
		t.Fatal(nom.RunErr, sat.RunErr)
	}
	rcN, _ := nom.LastReturn()
	rcS, _ := sat.LastReturn()
	if rcN != xm.OK || rcS != xm.OK {
		t.Fatalf("hm_open = %v / %v", rcN, rcS)
	}
}

func TestPhantomSurvivalPlanApplies(t *testing.T) {
	pd := phantomFor(t, "XM_enable_irqs", "survival-plan")
	res := RunPhantom(pd, Options{})
	if res.RunErr != "" {
		t.Fatal(res.RunErr)
	}
	rc, ok := res.LastReturn()
	if !ok || rc != xm.OK {
		t.Fatalf("enable_irqs under survival plan = %v %v", rc, ok)
	}
}

func TestPhantomInvocationCadence(t *testing.T) {
	pd := phantomFor(t, "XM_sparc_get_psr", "nominal")
	res := RunPhantom(pd, Options{MAFs: 3})
	if res.Invocations != 3 || len(res.Returns) != 3 {
		t.Fatalf("invocations=%d returns=%d, want 3/3", res.Invocations, len(res.Returns))
	}
}
