package campaign

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// drain pulls every lease, completing each, and returns the issued
// positions in issue order.
func drain(t *testing.T, c *Coordinator) []int {
	t.Helper()
	var got []int
	for {
		l, ok := c.Next()
		if !ok {
			return got
		}
		got = append(got, l.Pos...)
		c.Complete(l.ID)
	}
}

func TestCoordinatorPartitionsEverything(t *testing.T) {
	c := NewCoordinator(10, nil, 3, 0, 0)
	got := drain(t, c)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("issued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("issued %v, want %v", got, want)
		}
	}
}

func TestCoordinatorSkipsDoneAndHonoursLimit(t *testing.T) {
	done := map[int]bool{1: true, 2: true, 7: true}
	c := NewCoordinator(10, done, 4, 3, 0)
	got := drain(t, c)
	// Pending order: 0,3,4,5,6,8,9 — the limit keeps the first three.
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("issued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("issued %v, want %v", got, want)
		}
	}
}

func TestCoordinatorHandBackReissues(t *testing.T) {
	c := NewCoordinator(4, nil, 2, 0, 0)
	l1, ok := c.Next()
	if !ok {
		t.Fatal("no first lease")
	}
	c.HandBack(l1.ID)
	l2, ok := c.Next()
	if !ok {
		t.Fatal("no re-issued lease")
	}
	if l2.Attempt != l1.Attempt+1 {
		t.Fatalf("re-issue attempt %d, want %d", l2.Attempt, l1.Attempt+1)
	}
	if len(l2.Pos) != len(l1.Pos) || l2.Pos[0] != l1.Pos[0] {
		t.Fatalf("re-issued positions %v, want %v", l2.Pos, l1.Pos)
	}
	if l2.ID == l1.ID {
		t.Fatal("re-issue must carry a fresh ID")
	}
}

func TestCoordinatorDeadlineReclaim(t *testing.T) {
	// A fake clock drives expiry deterministically.
	var (
		mu  sync.Mutex
		now = time.Unix(1000, 0)
	)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := NewCoordinator(2, nil, 2, 0, time.Second)
	c.setClock(clock)

	lost, ok := c.Next()
	if !ok {
		t.Fatal("no lease")
	}
	// The holder dies without completing. Before the deadline the lease
	// is still outstanding; after it, Next re-issues the same range.
	if n := c.Outstanding(); n != 1 {
		t.Fatalf("outstanding %d, want 1", n)
	}
	advance(2 * time.Second)
	re, ok := c.Next()
	if !ok {
		t.Fatal("expired lease was not re-issued")
	}
	if re.Attempt != lost.Attempt+1 || len(re.Pos) != len(lost.Pos) || re.Pos[0] != lost.Pos[0] {
		t.Fatalf("re-issue %+v does not cover lost lease %+v", re, lost)
	}
	// The lost holder's late Complete must not cancel the re-issue.
	c.Complete(lost.ID)
	if n := c.Outstanding(); n != 1 {
		t.Fatalf("outstanding after stale complete: %d, want 1", n)
	}
	c.Complete(re.ID)
	if _, ok := c.Next(); ok {
		t.Fatal("campaign should be complete")
	}
}

func TestCoordinatorExtendDefersReclaim(t *testing.T) {
	var (
		mu  sync.Mutex
		now = time.Unix(1000, 0)
	)
	c := NewCoordinator(1, nil, 1, 0, time.Second)
	c.setClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })

	l, _ := c.Next()
	mu.Lock()
	now = now.Add(900 * time.Millisecond)
	mu.Unlock()
	c.Extend(l.ID)
	mu.Lock()
	now = now.Add(900 * time.Millisecond)
	mu.Unlock()
	// 1.8s after issue but only 0.9s after the heartbeat: still live, so
	// the only way Next returns is the holder completing.
	completed := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		c.Complete(l.ID)
		close(completed)
	}()
	if _, ok := c.Next(); ok {
		t.Fatal("extended lease must not be re-issued before its refreshed deadline")
	}
	<-completed
}

func TestCoordinatorConcurrentWorkers(t *testing.T) {
	const total, workers = 500, 8
	c := NewCoordinator(total, nil, 7, 0, 0)
	var (
		mu   sync.Mutex
		seen []int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				l, ok := c.Next()
				if !ok {
					return
				}
				mu.Lock()
				seen = append(seen, l.Pos...)
				mu.Unlock()
				c.Complete(l.ID)
			}
		}()
	}
	wg.Wait()
	if len(seen) != total {
		t.Fatalf("executed %d positions, want %d", len(seen), total)
	}
	sort.Ints(seen)
	for i, p := range seen {
		if p != i {
			t.Fatalf("position %d missing or duplicated (saw %d)", i, p)
		}
	}
}
