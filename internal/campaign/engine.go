package campaign

// This file is the streaming pooled execution engine: a bounded work
// queue feeding a worker pool that executes on any registered target
// backend (the sim target recycles simulated machines through a
// reset-and-verify pool), streams every execution log over a channel into
// per-worker JSON Lines shards, and checkpoints completed tests so an
// interrupted campaign resumes from where it stopped. The eager API
// (Run/RunDatasets) is a thin wrapper that points the stream at an
// in-memory slice.

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"xmrobust/internal/cover"
	"xmrobust/internal/obs"
	"xmrobust/internal/sparc"
	"xmrobust/internal/store"
	"xmrobust/internal/target"
	"xmrobust/internal/testgen"
)

// EngineOptions configures the streaming engine on top of the campaign
// Options.
type EngineOptions struct {
	Options

	// Ctx, when non-nil, arms cooperative cancellation: once it is done
	// the feeder stops issuing leases, queued work is skipped (feedback
	// plans instead drain their short queue — see the worker loop),
	// in-flight tests finish, shards flush, and every completed test's
	// checkpoint mark is on disk, so the cancelled campaign resumes
	// exactly like an interrupted one. StreamPlan then returns Ctx's
	// error (errors.Is(err, context.Canceled) distinguishes a cancel
	// from a failure). Nil: the campaign runs to completion, the
	// historical behaviour.
	Ctx context.Context

	// QueueDepth bounds the work queue between the feeder and the worker
	// pool (default 2x Workers). The feeder blocks when the queue is
	// full, so memory never holds more than QueueDepth undispatched jobs.
	QueueDepth int

	// FreshMachines disables machine pooling: every test packs a freshly
	// allocated simulated target, the behaviour of the original runner.
	// The pooled default is substantially faster (see BenchmarkCampaign).
	FreshMachines bool

	// PoolStrict makes the machine pool scan every byte of every recycled
	// machine (sparc.MachinePool strict mode). Slow; for isolation tests.
	PoolStrict bool

	// LegacyPool selects the reset-and-verify MachinePool instead of the
	// default copy-on-write SnapshotPool on backends that pool — the A/B
	// switch behind the performance trajectory.
	LegacyPool bool

	// ShardDir, when set, streams every execution log into JSON Lines
	// shard files <ShardDir>/shard-NNN.jsonl. Shards are opened in append
	// mode so a resumed campaign extends them; MergeShards restores
	// campaign order.
	ShardDir string

	// Codec selects the record codec shard files are written with
	// ("json", the encoding/json reference and the default, or "raw",
	// the hand-rolled allocation-free encoder). Every codec produces the
	// same wire format byte for byte, so the choice never affects what a
	// campaign log contains — only what encoding it costs.
	Codec string

	// BatchSize leases contiguous runs of pending tests to each worker
	// when the target can execute them in one held slot (the
	// target.BatchExecutor capability), amortising the per-test
	// recycle-and-verify baseline across the lease. Results are
	// byte-identical to unbatched execution — the capability's contract.
	// 0 or 1, targets without the capability, and feedback-driven plans
	// (whose At blocks on earlier positions' coverage) execute one test
	// per slot acquisition as before.
	BatchSize int

	// TargetInstance, when non-nil, is the execution backend itself,
	// bypassing the Options.Target registry lookup. A caller that runs
	// several campaigns against one target (the bench harness, embedders
	// with a prepared backend) keeps its warm state — machine pool,
	// parked kernels — across StreamPlan calls instead of rebuilding it
	// each time; Provision is idempotent on the shared instance.
	TargetInstance target.Target

	// Shards is the number of shard writers (default Workers).
	Shards int

	// CheckpointPath, when set, appends one line per completed test to a
	// checkpoint file. With Resume, tests already recorded there are
	// skipped — the engine continues from the last completed dataset.
	CheckpointPath string

	// Resume loads CheckpointPath instead of truncating it.
	Resume bool

	// Store is the persistence seam checkpoint, shard and merge I/O flow
	// through (nil: the local filesystem, the historical behaviour).
	// Pointing it elsewhere is what lets a campaign's shards live off
	// the local disk — resume and merge never touch *os.File directly.
	Store store.Store

	// LeaseTTL arms deadline-based lease reclaim on the dispatch
	// coordinator: a lease not completed within the TTL is re-issued to
	// another worker, so a lost worker's range always re-executes.
	// Duplicated executions are byte-identical (plans are deterministic)
	// and dedupe by seq at merge time. 0 (the default) disables reclaim
	// — in-process workers do not vanish; the knob exists for embedders
	// driving remote or otherwise mortal executors through the engine.
	// Feedback plans force it off: their At() serialises on earlier
	// positions' coverage, which double-delivery would corrupt.
	LeaseTTL time.Duration

	// Limit stops dispatching after that many tests this call (0: run
	// everything). Combined with a checkpoint it gives budgeted runs the
	// same semantics as an interruption: the next Resume continues from
	// the last completed dataset.
	Limit int

	// Obs, when non-nil, threads the observability spine through the run:
	// engine/lease/pool/target metrics land in Obs.Reg, progress in
	// Obs.Progress, and campaign/lease trace events in Obs.Trace (when
	// Trace is nil and a ShardDir is set, the engine writes
	// <ShardDir>/trace.jsonl through the campaign's store). Nil — the
	// default — costs the hot path one nil check per event, pinned by
	// BenchmarkObsOverhead.
	Obs *obs.Obs
}

// EngineStats reports what one Stream call did.
type EngineStats struct {
	// Total is the campaign size; Executed ran this call; Skipped were
	// already completed per the checkpoint.
	Total    int
	Executed int
	Skipped  int
	// Pool holds the machine-pool counters (zero when FreshMachines).
	Pool sparc.PoolStats
}

// posResult pairs an execution log with its campaign position. logged
// reports whether the shard record reached disk — only then may the
// checkpoint mark the test completed, or a resume would skip a test whose
// record was lost.
type posResult struct {
	pos    int
	res    Result
	logged bool
}

// Source is the dataset stream the engine executes: a deterministic,
// index-addressable sequence. testgen.Plan satisfies it directly, so a
// campaign streams straight out of a lazy plan without materialising the
// suite; DatasetSlice adapts pre-built lists. At must be safe for
// concurrent use — the worker pool calls it from several goroutines.
type Source interface {
	Len() int
	At(i int) testgen.Dataset
	// Fingerprint identifies the stream's content; checkpoints record it
	// and refuse to resume a different one.
	Fingerprint() string
}

// FeedbackSource is a dataset source driven by execution results: the
// engine forwards every completed test's kernel coverage map back into
// it, closing the loop the coverage-guided feedback plan schedules on.
// The corpus.FeedbackPlan satisfies it; its At blocks until the
// coverage of all earlier positions has been delivered, so the mutation
// region of a feedback campaign executes serially by construction.
type FeedbackSource interface {
	Source
	// Feedback delivers the coverage of the test at pos (nil when the
	// run produced none, e.g. a harness error).
	Feedback(pos int, cov *cover.Map)
}

// DatasetSlice adapts a pre-built dataset list to the Source interface.
type DatasetSlice []testgen.Dataset

// Len returns the dataset count.
func (s DatasetSlice) Len() int { return len(s) }

// At returns dataset i.
func (s DatasetSlice) At(i int) testgen.Dataset { return s[i] }

// Fingerprint hashes the rendered datasets.
func (s DatasetSlice) Fingerprint() string {
	h := sha256.New()
	for _, ds := range s {
		io.WriteString(h, ds.String())
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("slice:%d/%s", len(s), hex.EncodeToString(h.Sum(nil))[:16])
}

// sourcePlan names the generation strategy behind a source ("slice" when
// the source is not a plan).
func sourcePlan(src Source) string {
	if p, ok := src.(interface{ Strategy() string }); ok {
		return p.Strategy()
	}
	return "slice"
}

// Stream executes a pre-built dataset list through the engine — the slice
// adapter over StreamPlan.
func Stream(datasets []testgen.Dataset, eo EngineOptions, sink func(pos int, r Result)) (EngineStats, error) {
	return StreamPlan(DatasetSlice(datasets), eo, sink)
}

// StreamPlan executes a dataset source through the engine. Each completed
// test is handed to sink (when non-nil) from a single goroutine, tagged
// with its position in the source; neither the suite nor the results are
// retained in memory, so a campaign's footprint no longer grows with its
// test count. Results arrive in completion order, not campaign order.
// Note that on a resumed run the sink only sees the tests executed by
// this call — the skipped tests' logs live in the shard files
// (ScanShards reads them back).
func StreamPlan(src Source, eo EngineOptions, sink func(pos int, r Result)) (EngineStats, error) {
	opts := eo.Options.withDefaults()
	fb, _ := src.(FeedbackSource)
	if fb != nil {
		// A feedback source schedules on coverage; collection is not
		// optional for it.
		opts.Coverage = true
	}
	total := src.Len()
	stats := EngineStats{Total: total}
	var err error
	tgt := eo.TargetInstance
	if tgt == nil {
		// Feedback sources never see the cancellation context: an aborted
		// in-flight lease would leave a position's coverage undelivered and
		// deadlock the plan's strictly-ordered At. Their cancel path is the
		// feeder stopping — the serialised queue drains in bounded time.
		tgtCtx := eo.Ctx
		if fb != nil {
			tgtCtx = nil
		}
		tgt, err = target.New(opts.Target, target.Config{
			FreshMachines: eo.FreshMachines,
			PoolStrict:    eo.PoolStrict,
			LegacyPool:    eo.LegacyPool,
			Inject:        opts.injectParams(),
			Obs:           eo.Obs,
			Ctx:           tgtCtx,
		})
		if err != nil {
			return stats, err
		}
	}
	if eo.Resume && eo.ShardDir == "" {
		// A checkpoint mark promises a durable record; without shards the
		// skipped tests' results would exist nowhere and the resumed run
		// would silently lose them.
		return stats, errors.New("campaign: resuming requires a shard directory")
	}
	if eo.QueueDepth <= 0 {
		eo.QueueDepth = 2 * opts.Workers
	}
	if eo.Shards <= 0 {
		eo.Shards = opts.Workers
	}
	st := eo.Store
	if st == nil {
		st = store.Local()
	}

	var (
		ckpt *checkpoint
		done map[int]bool
	)
	if eo.CheckpointPath != "" {
		hdr := ckptHeader{
			Campaign:    optionsSignature(total, opts),
			Target:      tgt.Name(),
			Plan:        sourcePlan(src),
			Fingerprint: src.Fingerprint(),
		}
		if is, ok := tgt.(interface{ InjectSignature() string }); ok {
			hdr.Inject = is.InjectSignature()
		}
		ckpt, done, err = openCheckpoint(st, eo.CheckpointPath, hdr, eo.Resume)
		if err != nil {
			return stats, err
		}
		defer ckpt.close()
	}
	for pos := range done {
		if pos >= 0 && pos < total {
			stats.Skipped++
		}
	}
	if fb != nil && eo.Resume && len(done) > 0 {
		// Replay the completed tests' coverage out of the shard records
		// so the feedback loop's frontier (and corpus admission state)
		// is restored before any pending test is bred. Without this the
		// plan's At would wait forever on feedback that already ran.
		if err := ScanShardsIn(st, eo.ShardDir, func(rec JSONRecord) error {
			if done[rec.Seq] {
				fb.Feedback(rec.Seq, cover.FromSites(rec.Cover))
			}
			return nil
		}); err != nil {
			return stats, err
		}
	}
	pendingCount := total - stats.Skipped
	if eo.Limit > 0 && pendingCount > eo.Limit {
		pendingCount = eo.Limit
	}

	// The observability spine. Every handle below is nil-safe, so with
	// eo.Obs unset the instrumented sites degrade to one nil check each.
	em := obs.NewEngineMetrics(eo.Obs.Registry())
	prog := eo.Obs.Prog()
	var trace *obs.Tracer
	if eo.Obs != nil {
		trace = eo.Obs.Trace
		if trace == nil && eo.ShardDir != "" {
			// No caller-owned tracer: persist campaign/lease events next to
			// the shards, through the same store seam. TraceName does not
			// match ShardPattern, so merges never see it. Advisory — a
			// trace that cannot open does not fail the campaign.
			if tr, terr := obs.NewTracer(st, filepath.Join(eo.ShardDir, TraceName)); terr == nil {
				trace = tr
				defer trace.Close()
			}
		}
		prog.Begin(total, stats.Skipped)
		trace.Emit(obs.Event{Kind: "campaign.start", Campaign: sourcePlan(src), N: total, Detail: tgt.Name()})
		defer func() {
			trace.Emit(obs.Event{Kind: "campaign.end", Campaign: sourcePlan(src), N: stats.Executed})
		}()
	}

	codec, err := NewCodec(eo.Codec)
	if err != nil {
		return stats, err
	}
	var writers []*shardWriter
	if eo.ShardDir != "" {
		if writers, err = openShards(st, eo.ShardDir, eo.Shards, eo.Resume, codec); err != nil {
			return stats, err
		}
		// Checkpoint marks promise their record is on disk, so shards
		// flush per record only while a checkpoint is being written.
		for _, w := range writers {
			w.flushEach = ckpt != nil
			w.encNs = em.EncodeNs
		}
	}
	if pendingCount == 0 {
		return stats, closeShards(writers)
	}

	workers := opts.Workers
	if workers > pendingCount {
		workers = pendingCount
	}
	if err := tgt.Provision(workers); err != nil {
		closeShards(writers)
		return stats, err
	}
	spec := opts.runSpec()

	results := make(chan posResult, workers)
	finished := make(chan posResult, workers)

	// A batch lease hands a worker several pending positions to execute
	// in one held slot. Only targets with the BatchExecutor capability
	// batch, and feedback sources never do: their At blocks until every
	// earlier position's coverage arrives, which a multi-test lease would
	// deadlock on (results only flow after the whole lease completes).
	batch := eo.BatchSize
	be, _ := tgt.(target.BatchExecutor)
	if batch < 1 || be == nil || fb != nil {
		batch = 1
	}
	em.BatchSize.Set(int64(batch))

	// The coordinator walks the source's index space lazily — no pending
	// list is materialised, so a billion-test plan costs the same as a
	// small one until its tests actually run. With a LeaseTTL it also
	// re-issues the range of any worker that goes silent; duplicated
	// executions are byte-identical and dedupe by seq at merge time.
	ttl := eo.LeaseTTL
	if fb != nil {
		// Feedback plans serialise on coverage delivery; a re-issued
		// lease would deliver a position's coverage twice.
		ttl = 0
	}
	coord := NewCoordinator(total, done, batch, pendingCount, ttl)
	coord.Instrument(obs.NewLeaseMetrics(eo.Obs.Registry()), trace)
	if ctx := eo.Ctx; ctx != nil {
		// Cancellation closes the coordinator: the feeder's Next returns
		// false, the jobs channel closes, and the pipeline drains — shards
		// flush and completed tests keep their checkpoint marks, so the
		// cancelled campaign is exactly as resumable as an interrupted one.
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-ctx.Done():
				coord.Close()
			case <-stopWatch:
			}
		}()
	}
	jobs := make(chan Lease, eo.QueueDepth)
	eo.Obs.Registry().GaugeFunc("xm_engine_queue_depth",
		"Leases buffered between the dispatch feeder and the worker pool.",
		func() float64 { return float64(len(jobs)) })
	go func() {
		defer close(jobs)
		for {
			lease, ok := coord.Next()
			if !ok {
				return
			}
			jobs <- lease
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dss := make([]testgen.Dataset, 0, batch)
			for lease := range jobs {
				if fb == nil && eo.Ctx != nil && eo.Ctx.Err() != nil {
					// Cancelled: skip queued leases instead of executing
					// them. (Feedback plans execute theirs — their At
					// serialises on delivered coverage, and skipping a
					// position would starve every later one.)
					coord.HandBack(lease.ID)
					continue
				}
				if be == nil || len(lease.Pos) == 1 {
					for _, pos := range lease.Pos {
						slot := tgt.Acquire()
						r := tgt.Execute(slot, src.At(pos), spec)
						tgt.Release(slot)
						results <- posResult{pos: pos, res: r}
					}
					coord.Complete(lease.ID)
					continue
				}
				dss = dss[:0]
				for _, pos := range lease.Pos {
					dss = append(dss, src.At(pos))
				}
				slot := tgt.Acquire()
				rs := be.ExecuteBatch(slot, dss, spec)
				tgt.Release(slot)
				coord.Complete(lease.ID)
				for i, pos := range lease.Pos {
					results <- posResult{pos: pos, res: rs[i]}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// The shard stage: writers drain the results channel into their own
	// shard file (or pass through when shards are off) and forward to the
	// collector. Write errors are latched, not fatal mid-flight — the
	// campaign completes and reports the first failure.
	var (
		errMu    sync.Mutex
		firstErr error
	)
	latch := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var sg sync.WaitGroup
	stage := len(writers)
	if stage == 0 {
		stage = 1
	}
	for s := 0; s < stage; s++ {
		sg.Add(1)
		go func(s int) {
			defer sg.Done()
			for pr := range results {
				if pr.res.Aborted {
					// A cancellation abandoned this execution mid-flight
					// (the remote client unblocking an in-flight lease).
					// The result describes nothing: drop it unlogged and
					// unmarked, so the position re-executes on resume.
					continue
				}
				pr.logged = true
				if len(writers) > 0 {
					if err := writers[s].write(pr.pos, pr.res); err != nil {
						latch(err)
						pr.logged = false
					}
				}
				finished <- pr
			}
		}(s)
	}
	go func() {
		sg.Wait()
		close(finished)
	}()

	completed := stats.Skipped
	for pr := range finished {
		if ckpt != nil && pr.logged {
			latch(ckpt.mark(pr.pos))
		}
		if fb != nil {
			// Close the loop: the plan buffers out-of-order arrivals
			// and applies them in position order.
			fb.Feedback(pr.pos, pr.res.Cover)
		}
		em.Executed.Inc()
		prog.Done(1)
		if prog != nil {
			prog.Outcome(outcomeClass(pr.res))
		}
		if sink != nil {
			sink(pr.pos, pr.res)
		}
		stats.Executed++
		completed++
		if opts.Progress != nil {
			opts.Progress(completed, total)
		}
	}
	latch(closeShards(writers))
	if ps, ok := tgt.(interface{ PoolStats() sparc.PoolStats }); ok {
		stats.Pool = ps.PoolStats()
	}
	if firstErr == nil && eo.Ctx != nil {
		// Surface the cancellation: shards are flushed and every completed
		// test is checkpointed, but the campaign did not finish — callers
		// distinguish the cancel with errors.Is(err, context.Canceled).
		firstErr = eo.Ctx.Err()
	}
	return stats, firstErr
}

// TraceName is the trace-event stream an instrumented campaign writes
// next to its shards. It deliberately does not match ShardPattern:
// merges glob shard-*.jsonl and never read it.
const TraceName = "trace.jsonl"

// outcomeClass buckets a result for the live progress tally: the
// classified injection outcome when the run carried a fault, coarse
// health classes otherwise. This is display-grade classification — the
// authoritative analysis stays in the report pipeline.
func outcomeClass(r Result) string {
	switch {
	case r.Injection != nil && r.Injection.Outcome != "":
		return r.Injection.Outcome
	case r.RunErr != "":
		return "harness-error"
	case r.SimCrashed:
		return "sim-crash"
	case r.Divergence != nil:
		return "divergence"
	default:
		return "ok"
	}
}

// optionsSignature fingerprints the execution side of a campaign — the
// knobs that change what a test's log looks like — so a checkpoint cannot
// silently resume under different execution conditions. Coverage is one
// of them: records written with collection off would punch holes in a
// resumed campaign's edge accounting. (The target is recorded separately
// in the header so a backend mismatch gets its own refusal by name.)
func optionsSignature(total int, opts Options) string {
	return fmt.Sprintf("tests=%d|mafs=%d|stress=%v|cover=%v|faults=%+v",
		total, opts.MAFs, opts.Stress, opts.Coverage, opts.Faults)
}

// --- checkpoint --------------------------------------------------------

// ckptHeader is the first line of a checkpoint file: the execution
// signature plus the identity of the plan whose cursor the marks encode
// and the backend the recorded logs were executed on.
type ckptHeader struct {
	Campaign string `json:"campaign"`
	// Target names the execution backend ("sim", "phantom",
	// "diff:sim,phantom"). A resume on any other backend is refused —
	// the shard records would mix two targets' logs into one campaign.
	Target string `json:"target,omitempty"`
	// Plan is the generation strategy ("exhaustive", "pairwise", …, or
	// "slice" for pre-built lists); Fingerprint is the source's full
	// content identity. A resume under any other plan is refused — its
	// positions would index a different stream and the shards would mix
	// two campaigns.
	Plan        string `json:"plan,omitempty"`
	Fingerprint string `json:"plan_fp,omitempty"`
	// Inject is the SEU schedule signature of inject:* targets (empty
	// elsewhere). A resume under a different schedule is refused — the
	// recorded logs would splice two distinct fault sequences into one
	// campaign.
	Inject string `json:"inject,omitempty"`
}

// ckptMark is one completed-test line.
type ckptMark struct {
	Seq int `json:"seq"`
}

// checkpoint appends completion marks durably enough for resume: each mark
// is one write, issued only after the test's shard record (if any) has
// been flushed. The writer comes from the campaign's store — unbuffered,
// so the FS store's marks are one syscall each, as before the seam.
type checkpoint struct {
	w io.WriteCloser
}

// openCheckpoint creates (or, with resume, loads) the checkpoint at path
// in st and returns the set of completed campaign positions.
func openCheckpoint(st store.CheckpointStore, path string, want ckptHeader, resume bool) (*checkpoint, map[int]bool, error) {
	done := map[int]bool{}
	if resume {
		data, err := st.ReadCheckpoint(path)
		switch {
		case errors.Is(err, store.ErrNotExist):
			// Resuming a campaign that never started is a fresh start.
		case err != nil:
			return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
		default:
			lines := strings.Split(string(data), "\n")
			if len(lines) == 0 || lines[0] == "" {
				return nil, nil, fmt.Errorf("campaign: checkpoint %s is empty", path)
			}
			var hdr ckptHeader
			if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Campaign == "" {
				return nil, nil, fmt.Errorf("campaign: checkpoint %s has no header", path)
			}
			if hdr.Plan == "" && hdr.Fingerprint == "" {
				return nil, nil, fmt.Errorf(
					"campaign: checkpoint %s predates plan recording and cannot be safely resumed — start fresh without resume", path)
			}
			if hdr.Target == "" {
				// Checkpoints written before target recording all ran on
				// the only backend that existed; their shard records
				// (which also omit the default target) resume cleanly.
				hdr.Target = target.SimName
			}
			if hdr.Target != want.Target {
				return nil, nil, fmt.Errorf(
					"campaign: checkpoint %s records target %q, but this run executes on %q — rerun with the checkpointed target, or start fresh without resume",
					path, hdr.Target, want.Target)
			}
			if hdr.Inject != want.Inject {
				return nil, nil, fmt.Errorf(
					"campaign: checkpoint %s records injection schedule %q, but this run injects %q — rerun with the checkpointed schedule, or start fresh without resume",
					path, hdr.Inject, want.Inject)
			}
			if hdr.Plan != want.Plan || hdr.Fingerprint != want.Fingerprint {
				return nil, nil, fmt.Errorf(
					"campaign: checkpoint %s records plan %s (fingerprint %s), but this run generates plan %s (fingerprint %s) — rerun with the checkpointed plan, or start fresh without resume",
					path, hdr.Plan, hdr.Fingerprint, want.Plan, want.Fingerprint)
			}
			if hdr.Campaign != want.Campaign {
				return nil, nil, fmt.Errorf("campaign: checkpoint %s belongs to a different campaign (%s, this run: %s)",
					path, hdr.Campaign, want.Campaign)
			}
			for _, line := range lines[1:] {
				if line == "" {
					continue
				}
				var m ckptMark
				if err := json.Unmarshal([]byte(line), &m); err != nil {
					// A torn trailing line from an interrupted run: that
					// test will simply re-execute.
					continue
				}
				done[m.Seq] = true
			}
			w, err := st.AppendCheckpoint(path)
			if err != nil {
				return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
			}
			return &checkpoint{w: w}, done, nil
		}
	}
	w, err := st.CreateCheckpoint(path)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	hdr, _ := json.Marshal(want)
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		w.Close()
		return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	return &checkpoint{w: w}, done, nil
}

func (c *checkpoint) mark(pos int) error {
	line, _ := json.Marshal(ckptMark{Seq: pos})
	if _, err := c.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	return nil
}

func (c *checkpoint) close() error { return c.w.Close() }

// --- shards ------------------------------------------------------------

// shardWriter owns one JSON Lines shard file. Records encode through the
// campaign's codec into a reused buffer. When a checkpoint is in play the
// writer flushes per record so a completion mark always refers to a
// record already on disk; without one the only reader is the post-run
// merge, so records ride the bufio buffer until close and the per-record
// write(2) disappears from the hot path. After a failed write the writer
// latches broken: a short write leaves a partial record at the tail, and
// appending anything after it would corrupt the shard mid-file, beyond
// what readers can skip.
type shardWriter struct {
	w         io.WriteCloser
	bw        *bufio.Writer
	codec     Codec
	flushEach bool
	buf       []byte
	scr       recordScratch
	broken    error
	// encNs, when non-nil, observes per-record encode latency
	// (xm_engine_encode_ns); uninstrumented runs pay one nil check.
	encNs *obs.Histogram
}

// ShardPattern matches the shard files of a campaign directory.
const ShardPattern = "shard-*.jsonl"

// shardPath names shard i of dir.
func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.jsonl", i))
}

func openShards(st store.LogStore, dir string, n int, resume bool, codec Codec) ([]*shardWriter, error) {
	if !resume {
		// A fresh campaign must not inherit records: stale shards from an
		// earlier run in the same directory would survive the seq-dedup
		// of CollectShards and contaminate the merged log.
		stale, err := st.ListLogs(filepath.Join(dir, ShardPattern))
		if err != nil {
			return nil, fmt.Errorf("campaign: shards: %w", err)
		}
		for _, p := range stale {
			if err := st.RemoveLog(p); err != nil {
				return nil, fmt.Errorf("campaign: shards: %w", err)
			}
		}
	}
	writers := make([]*shardWriter, 0, n)
	for i := 0; i < n; i++ {
		// On resume the store trims a torn trailing record first: records
		// never contain newlines, so "complete" means newline-terminated,
		// and appending after a fragment would corrupt the shard mid-file.
		w, err := st.AppendLog(shardPath(dir, i), resume)
		if err != nil {
			closeShards(writers)
			return nil, fmt.Errorf("campaign: shards: %w", err)
		}
		writers = append(writers, &shardWriter{w: w, bw: bufio.NewWriter(w), codec: codec})
	}
	return writers, nil
}

func (w *shardWriter) write(pos int, r Result) error {
	if w.broken != nil {
		return w.broken
	}
	var t0 time.Time
	if w.encNs != nil {
		t0 = time.Now() //xmlint:allow determinism -- encode-latency histogram; the reading feeds obs, never the record bytes
	}
	rec := w.scr.toRecord(pos, r)
	buf, err := w.codec.AppendEncode(w.buf[:0], &rec)
	if w.encNs != nil {
		//xmlint:allow determinism -- encode-latency histogram; the reading feeds obs, never the record bytes
		w.encNs.Observe(float64(time.Since(t0).Nanoseconds()))
	}
	if err == nil {
		w.buf = append(buf, '\n')
		_, err = w.bw.Write(w.buf)
	}
	if err != nil {
		w.broken = fmt.Errorf("campaign: shard record %d: %w", pos, err)
		return w.broken
	}
	if w.flushEach {
		if err := w.bw.Flush(); err != nil {
			w.broken = fmt.Errorf("campaign: shard record %d: %w", pos, err)
			return w.broken
		}
	}
	return nil
}

func closeShards(writers []*shardWriter) error {
	var firstErr error
	for _, w := range writers {
		// A broken writer's buffer may hold the tail of a half-written
		// record; flushing it would splice garbage mid-file.
		if w.broken == nil {
			if err := w.bw.Flush(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := w.w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ScanShards streams every record of a campaign directory through fn, one
// at a time, without holding the log in memory — the read side of the
// streaming engine for incremental consumers. Records arrive in file
// order, not campaign order, and a record may repeat across an
// interruption; callers needing uniqueness dedupe by Seq (duplicates are
// byte-identical, execution being deterministic). Torn trailing records
// from an interrupted run are skipped.
func ScanShards(dir string, fn func(JSONRecord) error) error {
	return ScanShardsIn(store.Local(), dir, fn)
}

// ScanShardsIn is ScanShards over an explicit log store — the read side
// of a campaign whose shards live off the local disk.
func ScanShardsIn(st store.LogStore, dir string, fn func(JSONRecord) error) error {
	paths, err := st.ListLogs(filepath.Join(dir, ShardPattern))
	if err != nil {
		return err
	}
	// Shards read back through the raw codec: the wire format is the same
	// whatever codec wrote them, and the hand-rolled decoder (with its
	// encoding/json fallback for anything irregular) reads it cheapest.
	codec, err := NewCodec("raw")
	if err != nil {
		return err
	}
	for _, p := range paths {
		f, err := st.OpenLog(p)
		if err != nil {
			return fmt.Errorf("campaign: shards: %w", err)
		}
		br := bufio.NewReaderSize(f, 1<<16)
		for {
			line, rerr := br.ReadBytes('\n')
			if len(bytes.TrimSpace(line)) > 0 {
				var rec JSONRecord
				if derr := codec.Decode(line, &rec); derr != nil {
					// A torn trailing record from an interrupted run —
					// "complete" means newline-terminated, see the store's
					// torn-tail trim — is expected; mid-file corruption is
					// worth reporting.
					if rerr != nil {
						break
					}
					f.Close()
					return fmt.Errorf("campaign: shard %s: %w", p, derr)
				}
				if err := fn(rec); err != nil {
					f.Close()
					return err
				}
			}
			if rerr != nil {
				break
			}
		}
		f.Close()
	}
	return nil
}

// CollectShards loads every shard record of a campaign directory, restores
// campaign order and drops duplicates (a record written twice around an
// interruption keeps its first copy). It holds the whole log in memory —
// merging wants random access; incremental consumers use ScanShards.
func CollectShards(dir string) ([]JSONRecord, error) {
	return CollectShardsIn(store.Local(), dir)
}

// CollectShardsIn is CollectShards over an explicit log store.
func CollectShardsIn(st store.LogStore, dir string) ([]JSONRecord, error) {
	var records []JSONRecord
	if err := ScanShardsIn(st, dir, func(rec JSONRecord) error {
		records = append(records, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	sort.SliceStable(records, func(a, b int) bool { return records[a].Seq < records[b].Seq })
	out := records[:0]
	for i, rec := range records {
		if i > 0 && rec.Seq == records[i-1].Seq {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// MergeShards writes the shard records of dir to w as one JSON Lines log
// in campaign order — the same byte stream WriteJSON produces for an
// uninterrupted eager campaign, whichever codec wrote the shards and
// however many workers (local or remote) executed them. It returns the
// record count.
func MergeShards(dir string, w io.Writer) (int, error) {
	return MergeShardsIn(store.Local(), dir, w)
}

// MergeShardsIn is MergeShards over an explicit log store.
func MergeShardsIn(st store.LogStore, dir string, w io.Writer) (int, error) {
	records, err := CollectShardsIn(st, dir)
	if err != nil {
		return 0, err
	}
	codec, err := NewCodec("raw")
	if err != nil {
		return 0, err
	}
	var buf []byte
	for i := range records {
		if buf, err = codec.AppendEncode(buf[:0], &records[i]); err != nil {
			return 0, err
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return 0, err
		}
	}
	return len(records), nil
}
