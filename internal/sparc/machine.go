package sparc

import (
	"encoding/binary"
	"fmt"
)

// Time is virtual time in microseconds since machine power-on. The whole
// testbed is driven by this clock; nothing consults the host clock.
type Time int64

// Default physical memory layout, mirroring a typical LEON3 board: PROM at
// 0x00000000, SDRAM at 0x40000000, APB I/O at 0x80000000.
const (
	DefaultROMBase Addr   = 0x00000000
	DefaultROMSize uint32 = 1 << 20 // 1 MiB
	DefaultRAMBase Addr   = 0x40000000
	DefaultRAMSize uint32 = 16 << 20 // 16 MiB
	DefaultIOBase  Addr   = 0x80000000
	DefaultIOSize  uint32 = 1 << 20
)

// NumTimerUnits is the number of GPTIMER subtimers exposed by the machine.
// XtratuM uses one for the hardware clock and one for the execution clock.
const NumTimerUnits = 2

// Config selects the physical memory layout of a Machine.
type Config struct {
	ROMBase Addr
	ROMSize uint32
	RAMBase Addr
	RAMSize uint32
	IOBase  Addr
	IOSize  uint32
}

// DefaultConfig returns the canonical LEON3 layout used by the testbed.
func DefaultConfig() Config {
	return Config{
		ROMBase: DefaultROMBase, ROMSize: DefaultROMSize,
		RAMBase: DefaultRAMBase, RAMSize: DefaultRAMSize,
		IOBase: DefaultIOBase, IOSize: DefaultIOSize,
	}
}

// Machine is the simulated LEON3 target: byte-addressable ROM/RAM/IO, a
// virtual clock, two timer units, an interrupt controller and a UART. It
// plays the role of TSIM in the paper's test setup, including TSIM's
// failure mode: Crash marks the simulator itself dead, distinct from any
// guest or kernel failure.
type Machine struct {
	cfg Config
	rom []byte
	ram []byte
	io  []byte

	now    Time
	timers [NumTimerUnits]TimerUnit
	irqc   IRQController
	uart   UART

	crashed     bool
	crashReason string

	// stats
	reads, writes, trapsRaised uint64
}

// NewMachine powers on a machine with the given layout. Memory is zeroed,
// the clock is at 0, timers are disarmed.
func NewMachine(cfg Config) *Machine {
	m := &Machine{
		cfg: cfg,
		rom: make([]byte, cfg.ROMSize),
		ram: make([]byte, cfg.RAMSize),
		io:  make([]byte, cfg.IOSize),
	}
	for i := range m.timers {
		m.timers[i].unit = i
	}
	return m
}

// NewDefaultMachine is NewMachine(DefaultConfig()).
func NewDefaultMachine() *Machine { return NewMachine(DefaultConfig()) }

// Config returns the memory layout the machine was built with.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the current virtual time.
func (m *Machine) Now() Time { return m.now }

// UART returns the console device.
func (m *Machine) UART() *UART { return &m.uart }

// IRQ returns the interrupt controller.
func (m *Machine) IRQ() *IRQController { return &m.irqc }

// Timer returns timer unit i (0 or 1).
func (m *Machine) Timer(i int) *TimerUnit { return &m.timers[i] }

// Crash marks the simulator itself as dead — the analogue of TSIM
// terminating, as the paper observed for XM_set_timer(1,1,1). After Crash,
// AdvanceTo and memory operations return ErrCrashed and the embedding
// harness must discard the machine.
func (m *Machine) Crash(reason string) {
	if !m.crashed {
		m.crashed = true
		m.crashReason = reason
	}
}

// Crashed reports whether the simulator has crashed, and why.
func (m *Machine) Crashed() (bool, string) { return m.crashed, m.crashReason }

// ErrCrashed is returned by time/memory operations after the simulator has
// crashed.
type ErrCrashed struct{ Reason string }

func (e ErrCrashed) Error() string { return "simulator crashed: " + e.Reason }

// AdvanceTo moves virtual time forward to t, firing due timers in expiry
// order. Timer callbacks run with the clock set to their expiry instant, so
// a callback that re-arms its timer in the past is observed immediately —
// this is the mechanism behind the paper's XM_set_timer stack-overflow
// finding. Advancing backwards is a no-op.
func (m *Machine) AdvanceTo(t Time) error {
	if m.crashed {
		return ErrCrashed{m.crashReason}
	}
	for {
		unit, expiry := m.nextDue(t)
		if unit < 0 {
			break
		}
		if expiry > m.now {
			m.now = expiry
		}
		m.timers[unit].fire(m)
		if m.crashed {
			return ErrCrashed{m.crashReason}
		}
	}
	if t > m.now {
		m.now = t
	}
	return nil
}

// Advance moves the clock forward by dt microseconds.
func (m *Machine) Advance(dt Time) error { return m.AdvanceTo(m.now + dt) }

// nextDue finds the armed timer with the earliest expiry not after limit.
// Ties resolve to the lower unit number for determinism.
func (m *Machine) nextDue(limit Time) (int, Time) {
	best, bestAt := -1, Time(0)
	for i := range m.timers {
		tu := &m.timers[i]
		if !tu.armed || tu.expiry > limit {
			continue
		}
		if best < 0 || tu.expiry < bestAt {
			best, bestAt = i, tu.expiry
		}
	}
	return best, bestAt
}

// backing resolves a physical address range to its backing store, or nil if
// the range is not backed (a bus error on real hardware).
func (m *Machine) backing(addr Addr, size uint32) []byte {
	type bank struct {
		base Addr
		mem  []byte
	}
	for _, b := range [...]bank{
		{m.cfg.ROMBase, m.rom},
		{m.cfg.RAMBase, m.ram},
		{m.cfg.IOBase, m.io},
	} {
		off := uint64(addr) - uint64(b.base)
		if uint64(addr) >= uint64(b.base) && off+uint64(size) <= uint64(len(b.mem)) {
			return b.mem[off : off+uint64(size)]
		}
	}
	return nil
}

// Read reads size bytes at addr into a fresh slice, returning a
// data_access_exception trap for unbacked addresses. This is the raw bus
// access; permission checks belong to Space.Check and are the caller's
// (the kernel's) responsibility.
func (m *Machine) Read(addr Addr, size uint32) ([]byte, *Trap) {
	m.reads++
	b := m.backing(addr, size)
	if b == nil {
		m.trapsRaised++
		return nil, DataAccessTrap(addr, PermRead, "bus error: unbacked address")
	}
	out := make([]byte, size)
	copy(out, b)
	return out, nil
}

// Write stores data at addr, trapping on unbacked addresses. Writes to ROM
// trap with a data_access_exception, as the PROM controller would.
func (m *Machine) Write(addr Addr, data []byte) *Trap {
	m.writes++
	if uint64(addr) >= uint64(m.cfg.ROMBase) &&
		uint64(addr)+uint64(len(data)) <= uint64(m.cfg.ROMBase)+uint64(m.cfg.ROMSize) {
		m.trapsRaised++
		return DataAccessTrap(addr, PermWrite, "write to PROM")
	}
	b := m.backing(addr, uint32(len(data)))
	if b == nil {
		m.trapsRaised++
		return DataAccessTrap(addr, PermWrite, "bus error: unbacked address")
	}
	copy(b, data)
	return nil
}

// Read32 loads a big-endian word (SPARC is big-endian).
func (m *Machine) Read32(addr Addr) (uint32, *Trap) {
	if uint32(addr)%4 != 0 {
		m.trapsRaised++
		return 0, AlignmentTrap(addr, PermRead)
	}
	b, tr := m.Read(addr, 4)
	if tr != nil {
		return 0, tr
	}
	return binary.BigEndian.Uint32(b), nil
}

// Write32 stores a big-endian word.
func (m *Machine) Write32(addr Addr, v uint32) *Trap {
	if uint32(addr)%4 != 0 {
		m.trapsRaised++
		return AlignmentTrap(addr, PermWrite)
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return m.Write(addr, b[:])
}

// Read64 loads a big-endian doubleword.
func (m *Machine) Read64(addr Addr) (uint64, *Trap) {
	if uint32(addr)%8 != 0 {
		m.trapsRaised++
		return 0, AlignmentTrap(addr, PermRead)
	}
	b, tr := m.Read(addr, 8)
	if tr != nil {
		return 0, tr
	}
	return binary.BigEndian.Uint64(b), nil
}

// Write64 stores a big-endian doubleword.
func (m *Machine) Write64(addr Addr, v uint64) *Trap {
	if uint32(addr)%8 != 0 {
		m.trapsRaised++
		return AlignmentTrap(addr, PermWrite)
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return m.Write(addr, b[:])
}

// Stats reports bus and trap counters, for the campaign's execution logs.
func (m *Machine) Stats() (reads, writes, traps uint64) {
	return m.reads, m.writes, m.trapsRaised
}

// RAMRegion returns a Region covering all of RAM (convenience for tests).
func (m *Machine) RAMRegion(perm Perm) Region {
	return Region{Name: "ram", Base: m.cfg.RAMBase, Size: m.cfg.RAMSize, Perm: perm}
}

func (m *Machine) String() string {
	return fmt.Sprintf("leon3{t=%dus rom=%dKiB ram=%dMiB crashed=%v}",
		m.now, m.cfg.ROMSize>>10, m.cfg.RAMSize>>20, m.crashed)
}
