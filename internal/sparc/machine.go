package sparc

import (
	"encoding/binary"
	"fmt"
)

// Time is virtual time in microseconds since machine power-on. The whole
// testbed is driven by this clock; nothing consults the host clock.
type Time int64

// Default physical memory layout, mirroring a typical LEON3 board: PROM at
// 0x00000000, SDRAM at 0x40000000, APB I/O at 0x80000000.
const (
	DefaultROMBase Addr   = 0x00000000
	DefaultROMSize uint32 = 1 << 20 // 1 MiB
	DefaultRAMBase Addr   = 0x40000000
	DefaultRAMSize uint32 = 16 << 20 // 16 MiB
	DefaultIOBase  Addr   = 0x80000000
	DefaultIOSize  uint32 = 1 << 20
)

// NumTimerUnits is the number of GPTIMER subtimers exposed by the machine.
// XtratuM uses one for the hardware clock and one for the execution clock.
const NumTimerUnits = 2

// Config selects the physical memory layout of a Machine.
type Config struct {
	ROMBase Addr
	ROMSize uint32
	RAMBase Addr
	RAMSize uint32
	IOBase  Addr
	IOSize  uint32
}

// DefaultConfig returns the canonical LEON3 layout used by the testbed.
func DefaultConfig() Config {
	return Config{
		ROMBase: DefaultROMBase, ROMSize: DefaultROMSize,
		RAMBase: DefaultRAMBase, RAMSize: DefaultRAMSize,
		IOBase: DefaultIOBase, IOSize: DefaultIOSize,
	}
}

// Machine is the simulated LEON3 target: byte-addressable ROM/RAM/IO, a
// virtual clock, two timer units, an interrupt controller and a UART. It
// plays the role of TSIM in the paper's test setup, including TSIM's
// failure mode: Crash marks the simulator itself dead, distinct from any
// guest or kernel failure.
type Machine struct {
	cfg Config
	rom []byte
	ram []byte
	io  []byte

	now    Time
	timers [NumTimerUnits]TimerUnit
	irqc   IRQController
	uart   UART

	crashed     bool
	crashReason string

	// dirtyRAM/dirtyIO track which pages of the writable banks have been
	// stored to since power-on (or the last Reset), so Reset scrubs only
	// what a run actually touched instead of the whole bank. ROM needs no
	// tracking: writes to it trap.
	dirtyRAM dirtySet
	dirtyIO  dirtySet

	// stats
	reads, writes, trapsRaised uint64
	resets                     uint64
}

// dirtyPageShift sets the dirty-tracking granularity: 4 KiB pages.
const dirtyPageShift = 12

// DirtyPageSize is the dirty-tracking granularity in bytes — the page
// size DirtyPages addresses are aligned to.
const DirtyPageSize = 1 << dirtyPageShift

// dirtySet is a page-granular dirty bitmap over one memory bank.
type dirtySet []uint64

func newDirtySet(bankSize uint32) dirtySet {
	pages := (uint64(bankSize) + (1 << dirtyPageShift) - 1) >> dirtyPageShift
	return make(dirtySet, (pages+63)/64)
}

// mark records that [off, off+size) was written.
func (d dirtySet) mark(off uint64, size uint32) {
	first := off >> dirtyPageShift
	last := (off + uint64(size) - 1) >> dirtyPageShift
	for p := first; p <= last; p++ {
		d[p/64] |= 1 << (p % 64)
	}
}

// empty reports whether no page is marked.
func (d dirtySet) empty() bool {
	for _, w := range d {
		if w != 0 {
			return false
		}
	}
	return true
}

// scrub zeroes every marked page of mem and clears the set.
func (d dirtySet) scrub(mem []byte) {
	for wi, w := range d {
		if w == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if w&(1<<b) == 0 {
				continue
			}
			start := (uint64(wi)*64 + uint64(b)) << dirtyPageShift
			end := start + (1 << dirtyPageShift)
			if end > uint64(len(mem)) {
				end = uint64(len(mem))
			}
			clear(mem[start:end])
		}
		d[wi] = 0
	}
}

// NewMachine powers on a machine with the given layout. Memory is zeroed,
// the clock is at 0, timers are disarmed.
func NewMachine(cfg Config) *Machine {
	m := &Machine{
		cfg: cfg,
		rom: make([]byte, cfg.ROMSize),
		ram: make([]byte, cfg.RAMSize),
		io:  make([]byte, cfg.IOSize),
	}
	for i := range m.timers {
		m.timers[i].unit = i
	}
	m.dirtyRAM = newDirtySet(cfg.RAMSize)
	m.dirtyIO = newDirtySet(cfg.IOSize)
	return m
}

// NewDefaultMachine is NewMachine(DefaultConfig()).
func NewDefaultMachine() *Machine { return NewMachine(DefaultConfig()) }

// Config returns the memory layout the machine was built with.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the current virtual time.
func (m *Machine) Now() Time { return m.now }

// UART returns the console device.
func (m *Machine) UART() *UART { return &m.uart }

// IRQ returns the interrupt controller.
func (m *Machine) IRQ() *IRQController { return &m.irqc }

// Timer returns timer unit i (0 or 1).
func (m *Machine) Timer(i int) *TimerUnit { return &m.timers[i] }

// Crash marks the simulator itself as dead — the analogue of TSIM
// terminating, as the paper observed for XM_set_timer(1,1,1). After Crash,
// AdvanceTo and memory operations return ErrCrashed and the embedding
// harness must discard the machine.
func (m *Machine) Crash(reason string) {
	if !m.crashed {
		m.crashed = true
		m.crashReason = reason
	}
}

// Crashed reports whether the simulator has crashed, and why.
func (m *Machine) Crashed() (bool, string) { return m.crashed, m.crashReason }

// ErrCrashed is returned by time/memory operations after the simulator has
// crashed.
type ErrCrashed struct{ Reason string }

func (e ErrCrashed) Error() string { return "simulator crashed: " + e.Reason }

// AdvanceTo moves virtual time forward to t, firing due timers in expiry
// order. Timer callbacks run with the clock set to their expiry instant, so
// a callback that re-arms its timer in the past is observed immediately —
// this is the mechanism behind the paper's XM_set_timer stack-overflow
// finding. Advancing backwards is a no-op.
func (m *Machine) AdvanceTo(t Time) error {
	if m.crashed {
		return ErrCrashed{m.crashReason}
	}
	for {
		unit, expiry := m.nextDue(t)
		if unit < 0 {
			break
		}
		if expiry > m.now {
			m.now = expiry
		}
		m.timers[unit].fire(m)
		if m.crashed {
			return ErrCrashed{m.crashReason}
		}
	}
	if t > m.now {
		m.now = t
	}
	return nil
}

// Advance moves the clock forward by dt microseconds.
func (m *Machine) Advance(dt Time) error { return m.AdvanceTo(m.now + dt) }

// nextDue finds the armed timer with the earliest expiry not after limit.
// Ties resolve to the lower unit number for determinism.
func (m *Machine) nextDue(limit Time) (int, Time) {
	best, bestAt := -1, Time(0)
	for i := range m.timers {
		tu := &m.timers[i]
		if !tu.armed || tu.expiry > limit {
			continue
		}
		if best < 0 || tu.expiry < bestAt {
			best, bestAt = i, tu.expiry
		}
	}
	return best, bestAt
}

// backing resolves a physical address range to its backing store, or nil if
// the range is not backed (a bus error on real hardware). Straight-line
// bank checks: this sits under every memory access of the simulator.
func (m *Machine) backing(addr Addr, size uint32) []byte {
	if off, ok := bankOffset(addr, size, m.cfg.RAMBase, m.ram); ok {
		return m.ram[off : off+uint64(size)]
	}
	if off, ok := bankOffset(addr, size, m.cfg.ROMBase, m.rom); ok {
		return m.rom[off : off+uint64(size)]
	}
	if off, ok := bankOffset(addr, size, m.cfg.IOBase, m.io); ok {
		return m.io[off : off+uint64(size)]
	}
	return nil
}

// Read reads size bytes at addr into a fresh slice, returning a
// data_access_exception trap for unbacked addresses. This is the raw bus
// access; permission checks belong to Space.Check and are the caller's
// (the kernel's) responsibility. Hot paths that can provide their own
// buffer use ReadInto and skip the allocation.
func (m *Machine) Read(addr Addr, size uint32) ([]byte, *Trap) {
	m.reads++
	b := m.backing(addr, size)
	if b == nil {
		m.trapsRaised++
		return nil, DataAccessTrap(addr, PermRead, "bus error: unbacked address")
	}
	out := make([]byte, size)
	copy(out, b)
	return out, nil
}

// ReadInto reads len(buf) bytes at addr into buf — the allocation-free
// form of Read, for the kernel's bulk-copy and string-walk paths. The
// bus and trap accounting is identical to Read's.
func (m *Machine) ReadInto(addr Addr, buf []byte) *Trap {
	m.reads++
	b := m.backing(addr, uint32(len(buf)))
	if b == nil {
		m.trapsRaised++
		return DataAccessTrap(addr, PermRead, "bus error: unbacked address")
	}
	copy(buf, b)
	return nil
}

// bankOffset resolves addr against one bank, returning the in-bank offset.
func bankOffset(addr Addr, size uint32, base Addr, mem []byte) (uint64, bool) {
	off := uint64(addr) - uint64(base)
	return off, uint64(addr) >= uint64(base) && off+uint64(size) <= uint64(len(mem))
}

// Write stores data at addr, trapping on unbacked addresses. Writes to ROM
// trap with a data_access_exception, as the PROM controller would. This is
// the simulator's hottest path, so the target bank is resolved exactly
// once, marking the dirty set with the offset already in hand.
func (m *Machine) Write(addr Addr, data []byte) *Trap {
	m.writes++
	size := uint32(len(data))
	if uint64(addr) >= uint64(m.cfg.ROMBase) &&
		uint64(addr)+uint64(size) <= uint64(m.cfg.ROMBase)+uint64(m.cfg.ROMSize) {
		m.trapsRaised++
		return DataAccessTrap(addr, PermWrite, "write to PROM")
	}
	if off, ok := bankOffset(addr, size, m.cfg.RAMBase, m.ram); ok {
		copy(m.ram[off:off+uint64(size)], data)
		if size > 0 {
			m.dirtyRAM.mark(off, size)
		}
		return nil
	}
	if off, ok := bankOffset(addr, size, m.cfg.IOBase, m.io); ok {
		copy(m.io[off:off+uint64(size)], data)
		if size > 0 {
			m.dirtyIO.mark(off, size)
		}
		return nil
	}
	m.trapsRaised++
	return DataAccessTrap(addr, PermWrite, "bus error: unbacked address")
}

// Read32 loads a big-endian word (SPARC is big-endian). It decodes
// straight out of the backing store — no per-word allocation.
func (m *Machine) Read32(addr Addr) (uint32, *Trap) {
	if uint32(addr)%4 != 0 {
		m.trapsRaised++
		return 0, AlignmentTrap(addr, PermRead)
	}
	m.reads++
	b := m.backing(addr, 4)
	if b == nil {
		m.trapsRaised++
		return 0, DataAccessTrap(addr, PermRead, "bus error: unbacked address")
	}
	return binary.BigEndian.Uint32(b), nil
}

// Write32 stores a big-endian word.
func (m *Machine) Write32(addr Addr, v uint32) *Trap {
	if uint32(addr)%4 != 0 {
		m.trapsRaised++
		return AlignmentTrap(addr, PermWrite)
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return m.Write(addr, b[:])
}

// Read64 loads a big-endian doubleword, straight out of the backing
// store like Read32.
func (m *Machine) Read64(addr Addr) (uint64, *Trap) {
	if uint32(addr)%8 != 0 {
		m.trapsRaised++
		return 0, AlignmentTrap(addr, PermRead)
	}
	m.reads++
	b := m.backing(addr, 8)
	if b == nil {
		m.trapsRaised++
		return 0, DataAccessTrap(addr, PermRead, "bus error: unbacked address")
	}
	return binary.BigEndian.Uint64(b), nil
}

// Write64 stores a big-endian doubleword.
func (m *Machine) Write64(addr Addr, v uint64) *Trap {
	if uint32(addr)%8 != 0 {
		m.trapsRaised++
		return AlignmentTrap(addr, PermWrite)
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return m.Write(addr, b[:])
}

// DirtyPages returns the base addresses of the writable pages stored to
// since power-on (or the last Reset), ascending, RAM bank before I/O.
// This is the SEU injector's target list: a bit flipped in a page no run
// has touched cannot influence a deterministic execution, so live pages
// are where upsets matter. The walk reuses the dirty bitmaps Reset
// scrubs from, so the list is exact, not heuristic.
func (m *Machine) DirtyPages() []Addr {
	var out []Addr
	collect := func(d dirtySet, base Addr, size uint32) {
		for wi, w := range d {
			if w == 0 {
				continue
			}
			for b := 0; b < 64; b++ {
				if w&(1<<b) == 0 {
					continue
				}
				off := (uint64(wi)*64 + uint64(b)) << dirtyPageShift
				if off < uint64(size) {
					out = append(out, base+Addr(off))
				}
			}
		}
	}
	collect(m.dirtyRAM, m.cfg.RAMBase, m.cfg.RAMSize)
	collect(m.dirtyIO, m.cfg.IOBase, m.cfg.IOSize)
	return out
}

// FlipBit inverts one bit of backed writable memory — the single-event-
// upset primitive. The touched page is marked dirty, so Reset scrubs an
// injected machine exactly like any other and it recycles through the
// pool without residue. Unlike Write, a flip models radiation, not a bus
// transaction: it bypasses the access counters and cannot trap; flips
// aimed at ROM or unbacked addresses report false and change nothing
// (PROM cells are not writable by an upset in this model). The bit index
// is taken modulo 8. Crashed machines refuse flips.
func (m *Machine) FlipBit(addr Addr, bit uint8) bool {
	if m.crashed {
		return false
	}
	if off, ok := bankOffset(addr, 1, m.cfg.RAMBase, m.ram); ok {
		m.ram[off] ^= 1 << (bit % 8)
		m.dirtyRAM.mark(off, 1)
		return true
	}
	if off, ok := bankOffset(addr, 1, m.cfg.IOBase, m.io); ok {
		m.io[off] ^= 1 << (bit % 8)
		m.dirtyIO.mark(off, 1)
		return true
	}
	return false
}

// FlipClockBit inverts one low bit of the virtual clock — an upset in
// the timebase. The bit index is taken modulo 28 (≈134 s of skew) so a
// flipped timestamp stays within the timer arithmetic's horizon: the
// point is a surviving system observing skewed time, not an overflowed
// simulation. It returns the new clock value.
func (m *Machine) FlipClockBit(bit uint8) Time {
	m.now ^= 1 << (bit % 28)
	return m.now
}

// Stats reports bus and trap counters, for the campaign's execution logs.
func (m *Machine) Stats() (reads, writes, traps uint64) {
	return m.reads, m.writes, m.trapsRaised
}

// Resets returns how many times the machine has been Reset since power-on.
func (m *Machine) Resets() uint64 { return m.resets }

// Reset returns the machine to its power-on state in place: memory zeroed,
// clock at 0, timers disarmed, devices cleared, crash flag dropped. Only
// the pages written since the last reset are scrubbed, so the cost is
// proportional to what the previous run touched, not to the bank sizes —
// the property the campaign's machine pool depends on.
func (m *Machine) Reset() {
	m.dirtyRAM.scrub(m.ram)
	m.dirtyIO.scrub(m.io)
	m.now = 0
	for i := range m.timers {
		m.timers[i] = TimerUnit{unit: i}
	}
	m.irqc = IRQController{}
	m.uart = UART{}
	m.crashed, m.crashReason = false, ""
	m.reads, m.writes, m.trapsRaised = 0, 0, 0
	m.resets++
}

// VerifyReset checks the cheap power-on invariants a freshly Reset machine
// must satisfy: clock at zero, no crash, timers disarmed, console empty,
// interrupt controller clear, dirty sets drained. It is fast enough to run
// on every pool recycle; VerifyClean adds the exhaustive memory scan.
func (m *Machine) VerifyReset() error {
	switch {
	case m.crashed:
		return fmt.Errorf("sparc: reset machine still crashed: %s", m.crashReason)
	case m.now != 0:
		return fmt.Errorf("sparc: reset machine clock at %dus", m.now)
	case m.uart.Written() != 0:
		return fmt.Errorf("sparc: reset machine console holds %d bytes", m.uart.Written())
	case m.irqc.Pending() != 0:
		return fmt.Errorf("sparc: reset machine has pending IRQs %#x", m.irqc.Pending())
	case !m.dirtyRAM.empty() || !m.dirtyIO.empty():
		return fmt.Errorf("sparc: reset machine has undrained dirty pages")
	}
	for i := range m.timers {
		if armed, at := m.timers[i].Armed(); armed {
			return fmt.Errorf("sparc: reset machine timer %d armed for t=%d", i, at)
		}
	}
	return nil
}

// AuditPages scans n pages of the writable banks for residue, starting at
// a window that rotates with the reset count so successive audits sweep
// the whole bank over time. It is the cheap middle ground between
// VerifyReset (invariants only — it cannot see a page the dirty tracker
// missed) and VerifyClean (full scan): a dirty-tracking bug surfaces as an
// audit failure within a bounded number of recycles instead of leaking
// silently.
func (m *Machine) AuditPages(n int) error {
	banks := [...][]byte{m.ram, m.io}
	var total uint64
	pagesOf := func(mem []byte) uint64 {
		return (uint64(len(mem)) + (1 << dirtyPageShift) - 1) >> dirtyPageShift
	}
	for _, b := range banks {
		total += pagesOf(b)
	}
	if total == 0 {
		return nil
	}
	start := (m.resets * uint64(n)) % total
	for i := 0; i < n; i++ {
		page := (start + uint64(i)) % total
		mem, name := m.ram, "ram"
		if ramPages := pagesOf(m.ram); page >= ramPages {
			mem, name = m.io, "io"
			page -= ramPages
		}
		lo := page << dirtyPageShift
		hi := lo + (1 << dirtyPageShift)
		if hi > uint64(len(mem)) {
			hi = uint64(len(mem))
		}
		// Word-wise scan; on a hit, pin down the exact byte for the
		// error message. Pages are power-of-two sized so only the last
		// page of a bank can leave a sub-word tail.
		off := lo
		for ; off+8 <= hi; off += 8 {
			if binary.BigEndian.Uint64(mem[off:off+8]) != 0 {
				break
			}
		}
		for ; off < hi; off++ {
			if mem[off] != 0 {
				return fmt.Errorf("sparc: %s residue at page %d offset %#x (untracked write?)",
					name, page, off)
			}
		}
	}
	return nil
}

// VerifyClean is the exhaustive form of VerifyReset: it additionally scans
// every byte of ROM, RAM and I/O space for residue of a previous run. It
// is the ground truth the reset-isolation tests (and the pool's strict
// mode) check the dirty-page bookkeeping against.
func (m *Machine) VerifyClean() error {
	if err := m.VerifyReset(); err != nil {
		return err
	}
	for _, bank := range []struct {
		name string
		base Addr
		mem  []byte
	}{
		{"rom", m.cfg.ROMBase, m.rom},
		{"ram", m.cfg.RAMBase, m.ram},
		{"io", m.cfg.IOBase, m.io},
	} {
		for i, b := range bank.mem {
			if b != 0 {
				return fmt.Errorf("sparc: %s residue: byte %#x at %#x",
					bank.name, b, uint64(bank.base)+uint64(i))
			}
		}
	}
	return nil
}

// RAMRegion returns a Region covering all of RAM (convenience for tests).
func (m *Machine) RAMRegion(perm Perm) Region {
	return Region{Name: "ram", Base: m.cfg.RAMBase, Size: m.cfg.RAMSize, Perm: perm}
}

func (m *Machine) String() string {
	return fmt.Sprintf("leon3{t=%dus rom=%dKiB ram=%dMiB crashed=%v}",
		m.now, m.cfg.ROMSize>>10, m.cfg.RAMSize>>20, m.crashed)
}
