package sparc

import "fmt"

// Snapshot is a copy-on-write image of a Machine's architectural state:
// the contents of every page dirtied at capture time, the clock, device
// and counter state, and the dirty bitmaps themselves. Capture and
// restore both cost O(dirty pages), never O(bank size) — the dirty-page
// tracker that makes Reset cheap makes the image cheap too. A snapshot
// is immutable once captured and may be restored into any machine with
// the same layout, any number of times, from any goroutine holding that
// machine.
//
// Timer handlers are captured by reference: restoring a snapshot with
// armed timers revives closures over whatever kernel owned them at
// capture time. The pool and the execution harness only snapshot
// machines between runs (timers disarmed), where this cannot bite.
type Snapshot struct {
	cfg Config

	now    Time
	timers [NumTimerUnits]TimerUnit
	irqc   IRQController

	console     []byte
	uartWritten uint64
	uartDropped uint64

	crashed     bool
	crashReason string

	reads, writes, trapsRaised uint64

	ram bankSnap
	io  bankSnap
}

// bankSnap captures one writable bank: the dirty bitmap plus the
// contents of each dirty page, concatenated in ascending page order.
type bankSnap struct {
	dirty dirtySet
	offs  []uint64 // in-bank byte offset of each captured page
	data  []byte   // page contents, DirtyPageSize bytes per entry (last may be short)
}

// captureBank copies the dirty pages of one bank.
func captureBank(mem []byte, d dirtySet) bankSnap {
	s := bankSnap{dirty: append(dirtySet(nil), d...)}
	for wi, w := range d {
		if w == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if w&(1<<b) == 0 {
				continue
			}
			off := (uint64(wi)*64 + uint64(b)) << dirtyPageShift
			if off >= uint64(len(mem)) {
				continue
			}
			end := off + DirtyPageSize
			if end > uint64(len(mem)) {
				end = uint64(len(mem))
			}
			s.offs = append(s.offs, off)
			s.data = append(s.data, mem[off:end]...)
		}
	}
	return s
}

// restore rewrites mem so its content equals the captured image: pages
// dirty now but absent from the snapshot are zeroed, captured pages are
// copied back, and the live bitmap becomes a copy of the captured one.
// Pages dirty in neither are untouched — they are zero on both sides.
func (s *bankSnap) restore(mem []byte, d dirtySet) {
	for wi, w := range d {
		stale := w &^ s.dirty[wi]
		if stale == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if stale&(1<<b) == 0 {
				continue
			}
			start := (uint64(wi)*64 + uint64(b)) << dirtyPageShift
			if start >= uint64(len(mem)) {
				continue
			}
			end := start + DirtyPageSize
			if end > uint64(len(mem)) {
				end = uint64(len(mem))
			}
			clear(mem[start:end])
		}
	}
	pos := 0
	for _, off := range s.offs {
		end := off + DirtyPageSize
		if end > uint64(len(mem)) {
			end = uint64(len(mem))
		}
		n := int(end - off)
		copy(mem[off:end], s.data[pos:pos+n])
		pos += n
	}
	copy(d, s.dirty)
}

// Pages returns how many dirty pages the snapshot holds.
func (s *Snapshot) Pages() int { return len(s.ram.offs) + len(s.io.offs) }

// Config returns the memory layout the snapshot was captured under.
func (s *Snapshot) Config() Config { return s.cfg }

// PowerOnSnapshot builds the snapshot a NewMachine(cfg) would capture —
// the power-on image, with zero pages — without allocating the banks.
// It is the baseline a SnapshotPool rewinds recycled machines to.
func PowerOnSnapshot(cfg Config) *Snapshot {
	s := &Snapshot{cfg: cfg}
	for i := range s.timers {
		s.timers[i].unit = i
	}
	s.ram.dirty = newDirtySet(cfg.RAMSize)
	s.io.dirty = newDirtySet(cfg.IOSize)
	return s
}

// Snapshot captures the machine's current state. Crashed machines
// snapshot like any other — the crash flag is part of the image.
func (m *Machine) Snapshot() *Snapshot {
	return &Snapshot{
		cfg:         m.cfg,
		now:         m.now,
		timers:      m.timers,
		irqc:        m.irqc,
		console:     append([]byte(nil), m.uart.buf.Bytes()...),
		uartWritten: m.uart.written,
		uartDropped: m.uart.dropped,
		crashed:     m.crashed,
		crashReason: m.crashReason,
		reads:       m.reads,
		writes:      m.writes,
		trapsRaised: m.trapsRaised,
		ram:         captureBank(m.ram, m.dirtyRAM),
		io:          captureBank(m.io, m.dirtyIO),
	}
}

// RestoreSnapshot rewinds the machine to the snapshot: memory, clock,
// timers, devices, crash flag and access counters all return to their
// captured values, in O(pages dirtied since the capture + pages in the
// image). Crashed machines restore like any other — rewinding past the
// crash is the point (the inject composite recycles its slot this way
// between a crashed leg and the next). Only the reset counter survives,
// incremented like a Reset so the page-audit window keeps rotating
// across recycles. Restoring a snapshot of a different memory layout is
// refused.
func (m *Machine) RestoreSnapshot(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("sparc: restore of a nil snapshot")
	}
	if m.cfg != s.cfg {
		return fmt.Errorf("sparc: snapshot layout %+v does not match machine layout %+v", s.cfg, m.cfg)
	}
	s.ram.restore(m.ram, m.dirtyRAM)
	s.io.restore(m.io, m.dirtyIO)
	m.now = s.now
	m.timers = s.timers
	m.irqc = s.irqc
	m.uart.buf.Reset()
	m.uart.buf.Write(s.console)
	m.uart.written = s.uartWritten
	m.uart.dropped = s.uartDropped
	m.crashed, m.crashReason = s.crashed, s.crashReason
	m.reads, m.writes, m.trapsRaised = s.reads, s.writes, s.trapsRaised
	m.resets++
	return nil
}

// SnapshotPool recycles Machines by rewinding them to the power-on
// snapshot — the copy-on-write successor of MachinePool's
// reset-and-verify cycle. Restore copies known content back instead of
// merely zeroing and re-checking, so the residue audit that dominated
// the recycle cost amortises to one rotating-window scan every
// snapshotAuditStride recycles; the cheap power-on invariants
// (VerifyReset) still run on every Get, and strict mode still scans
// every byte every time. A machine that fails verification — or comes
// back crashed — is discarded and replaced, exactly like MachinePool.
type SnapshotPool struct {
	cfg      Config
	strict   bool
	baseline *Snapshot
	free     *machineShards
	stats    poolCounters
}

// snapshotAuditStride is how many recycles separate two rotating page
// audits of a snapshot pool. The audit exists to surface dirty-tracking
// bugs; the restore path rides the same bitmaps as Reset, so the same
// audit coverage is maintained — just spread over more recycles now
// that the restore itself is trusted content, not merely zeroed.
const snapshotAuditStride = 8

// NewSnapshotPool builds a pool recycling machines with the given
// layout through the power-on snapshot. max bounds how many idle
// machines are retained (<= 0: unbounded, callers are a fixed worker
// set).
func NewSnapshotPool(cfg Config, max int) *SnapshotPool {
	return newSnapshotPoolStripes(cfg, max, 0)
}

// newSnapshotPoolStripes is NewSnapshotPool with an explicit free-list
// stripe count (0: size from max) — the contention benchmark's A/B knob.
func newSnapshotPoolStripes(cfg Config, max, stripes int) *SnapshotPool {
	free := newMachineShards(max)
	if stripes > 0 {
		free = newMachineShardsN(max, stripes)
	}
	return &SnapshotPool{cfg: cfg, baseline: PowerOnSnapshot(cfg), free: free}
}

// Baseline returns the power-on snapshot recycled machines rewind to.
func (p *SnapshotPool) Baseline() *Snapshot { return p.baseline }

// SetStrict selects exhaustive VerifyClean scans on every recycle, as
// in MachinePool's strict mode.
func (p *SnapshotPool) SetStrict(v bool) { p.strict = v }

// Get returns a machine in its power-on state: a rewound one when the
// restore-and-verify cycle succeeds, a fresh allocation otherwise.
func (p *SnapshotPool) Get() *Machine {
	if m := p.free.get(); m != nil {
		err := m.RestoreSnapshot(p.baseline)
		if err == nil {
			err = m.VerifyReset()
		}
		if err == nil {
			if p.strict {
				err = m.VerifyClean()
			} else if m.Resets()%snapshotAuditStride == 0 {
				err = m.AuditPages(auditPagesPerGet)
			}
		}
		if err == nil {
			p.stats.reused.Add(1)
			return m
		}
		p.stats.discarded.Add(1)
	}
	p.stats.allocated.Add(1)
	return NewMachine(p.cfg)
}

// Put hands a machine back for recycling. Crashed simulators are
// discarded — the contract of Crash is that the embedding harness must
// not trust them again — as is anything built with a different layout.
func (p *SnapshotPool) Put(m *Machine) {
	if m == nil {
		return
	}
	if crashed, _ := m.Crashed(); crashed || m.Config() != p.cfg {
		p.stats.discarded.Add(1)
		return
	}
	p.free.put(m)
}

// Stats snapshots the pool counters.
func (p *SnapshotPool) Stats() PoolStats {
	st := p.stats.snapshot()
	st.Steals = p.free.steals.Load()
	return st
}
