package sparc

// TimerHandler is invoked when a timer unit expires. It runs with the
// machine clock set to the expiry instant and may re-arm the timer — even
// in the past, in which case the machine observes the new expiry
// immediately on the same AdvanceTo call.
type TimerHandler func(m *Machine, unit int, at Time)

// TimerUnit models one GPTIMER subtimer programmed in one-shot mode with an
// absolute expiry. The separation kernel multiplexes its per-partition
// software timers on top of these units.
type TimerUnit struct {
	unit    int
	armed   bool
	expiry  Time
	handler TimerHandler
	fired   uint64
}

// Arm programs the unit to expire at the absolute instant at, replacing any
// previous programming. A nil handler disarms the unit.
func (t *TimerUnit) Arm(at Time, h TimerHandler) {
	if h == nil {
		t.Disarm()
		return
	}
	t.armed = true
	t.expiry = at
	t.handler = h
}

// Disarm cancels any pending expiry.
func (t *TimerUnit) Disarm() {
	t.armed = false
	t.handler = nil
}

// Armed reports whether the unit is programmed, and for when.
func (t *TimerUnit) Armed() (bool, Time) { return t.armed, t.expiry }

// Fired returns the number of expiries delivered since power-on.
func (t *TimerUnit) Fired() uint64 { return t.fired }

// FlipExpiryBit inverts one low bit of an armed unit's expiry — the SEU
// model of an upset in the GPTIMER compare register. The bit index is
// taken modulo 28 so the skewed expiry stays within the timer
// arithmetic's horizon. Unarmed units report false: there is no compare
// value to upset. It returns the new expiry.
func (t *TimerUnit) FlipExpiryBit(bit uint8) (Time, bool) {
	if !t.armed {
		return 0, false
	}
	t.expiry ^= 1 << (bit % 28)
	return t.expiry, true
}

// fire delivers one expiry. The unit is disarmed before the handler runs so
// the handler can re-arm it.
func (t *TimerUnit) fire(m *Machine) {
	h := t.handler
	at := t.expiry
	t.armed = false
	t.handler = nil
	t.fired++
	if h != nil {
		h(m, t.unit, at)
	}
}
