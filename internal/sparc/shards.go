package sparc

import (
	"sync"
	"sync/atomic"
)

// maxStripes caps the free-list striping of a pool. Eight stripes cover
// the worker counts campaigns actually run with; beyond that the stripes
// only dilute reuse.
const maxStripes = 8

// machineShards is the striped free list behind both pools. A single
// mutex-guarded slice serialises every Get and Put of an 8-worker
// campaign on one cache line; striping spreads the traffic so workers
// mostly lock disjoint stripes (see BenchmarkPoolContention). Round-robin
// cursors give each operation a home stripe and fall through to the
// others, so no machine strands in a stripe nobody polls: Get steals
// from any stripe once its own is empty, Put overflows to any stripe
// with room.
type machineShards struct {
	stripes []machineStripe
	getC    atomic.Uint64
	putC    atomic.Uint64
	// steals counts Gets served from a stripe other than the caller's
	// round-robin home — the cross-stripe traffic the striping exists to
	// keep rare (observable as xm_pool_steals_total).
	steals atomic.Uint64
}

// machineStripe is one free-list stripe, padded so neighbouring stripes
// do not share a cache line (the point of striping is to stop the
// workers' lock traffic colliding).
type machineStripe struct {
	mu   sync.Mutex
	free []*Machine
	max  int // idle machines retained in this stripe (<= 0: unbounded)
	_    [4]uint64
}

// newMachineShards builds a striped free list retaining about max idle
// machines in total (<= 0: unbounded), striped for max-many concurrent
// callers. The retained total may exceed max by up to stripes-1 — the
// per-stripe caps round up — which only means a recycled machine is
// kept where it would have been discarded.
func newMachineShards(max int) *machineShards {
	n := max
	if n <= 0 || n > maxStripes {
		n = maxStripes
	}
	return newMachineShardsN(max, n)
}

// newMachineShardsN is newMachineShards with an explicit stripe count —
// the benchmark's A/B knob (n=1 is the historical single-mutex list).
func newMachineShardsN(max, n int) *machineShards {
	if n < 1 {
		n = 1
	}
	s := &machineShards{stripes: make([]machineStripe, n)}
	if max > 0 {
		per := (max + n - 1) / n
		for i := range s.stripes {
			s.stripes[i].max = per
		}
	}
	return s
}

// get pops a machine, starting at the caller's round-robin home stripe
// and stealing from the rest, or returns nil when every stripe is empty.
func (s *machineShards) get() *Machine {
	n := len(s.stripes)
	start := int(s.getC.Add(1)) % n
	for k := 0; k < n; k++ {
		st := &s.stripes[(start+k)%n]
		st.mu.Lock()
		if l := len(st.free); l > 0 {
			m := st.free[l-1]
			st.free[l-1] = nil
			st.free = st.free[:l-1]
			st.mu.Unlock()
			if k > 0 {
				s.steals.Add(1)
			}
			return m
		}
		st.mu.Unlock()
	}
	return nil
}

// put hands a machine back, overflowing past full stripes; it reports
// whether any stripe had room.
func (s *machineShards) put(m *Machine) bool {
	n := len(s.stripes)
	start := int(s.putC.Add(1)) % n
	for k := 0; k < n; k++ {
		st := &s.stripes[(start+k)%n]
		st.mu.Lock()
		if st.max <= 0 || len(st.free) < st.max {
			st.free = append(st.free, m)
			st.mu.Unlock()
			return true
		}
		st.mu.Unlock()
	}
	return false
}

// poolCounters is the lock-free pool bookkeeping: the stats were the one
// piece of state every Get and Put still serialised on after the free
// list was striped.
type poolCounters struct {
	allocated atomic.Uint64
	reused    atomic.Uint64
	discarded atomic.Uint64
}

// snapshot reads the counters into the exported stats shape.
func (c *poolCounters) snapshot() PoolStats {
	return PoolStats{
		Allocated: c.allocated.Load(),
		Reused:    c.reused.Load(),
		Discarded: c.discarded.Load(),
	}
}
