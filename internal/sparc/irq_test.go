package sparc

import (
	"testing"
	"testing/quick"
)

func TestIRQRaiseAndDeliver(t *testing.T) {
	var c IRQController
	c.Raise(5)
	if c.Deliverable() != 0 {
		t.Fatal("masked interrupt delivered")
	}
	c.SetMask(1 << 5)
	if c.Deliverable() != 1<<5 {
		t.Fatalf("Deliverable = %04x, want line 5", c.Deliverable())
	}
	if c.Highest() != 5 {
		t.Fatalf("Highest = %d, want 5", c.Highest())
	}
}

func TestIRQPriorityHigherLineWins(t *testing.T) {
	var c IRQController
	c.SetMask(0xFFFF)
	c.Raise(3)
	c.Raise(12)
	if c.Highest() != 12 {
		t.Fatalf("Highest = %d, want 12 (LEON3 priority order)", c.Highest())
	}
	c.Ack(12)
	if c.Highest() != 3 {
		t.Fatalf("Highest after ack = %d, want 3", c.Highest())
	}
}

func TestIRQForceVisibleAndAcked(t *testing.T) {
	var c IRQController
	c.SetMask(0xFFFF)
	c.Force(7)
	if c.Pending()&(1<<7) == 0 {
		t.Fatal("forced line not pending")
	}
	c.Ack(7)
	if c.Pending() != 0 {
		t.Fatal("ack did not clear force bit")
	}
}

func TestIRQInvalidLinesIgnored(t *testing.T) {
	var c IRQController
	c.Raise(0)
	c.Raise(16)
	c.Raise(-1)
	if c.Pending() != 0 {
		t.Fatalf("invalid lines set pending bits: %04x", c.Pending())
	}
	if c.Raised(0) != 0 || c.Raised(99) != 0 {
		t.Fatal("invalid lines counted")
	}
}

func TestIRQRaisedCounter(t *testing.T) {
	var c IRQController
	c.Raise(4)
	c.Raise(4)
	c.Ack(4)
	c.Raise(4)
	if c.Raised(4) != 3 {
		t.Fatalf("Raised(4) = %d, want 3", c.Raised(4))
	}
}

// Property: after Ack(n), line n is no longer pending regardless of the
// prior Raise/Force history.
func TestPropertyAckClearsLine(t *testing.T) {
	f := func(ops []uint8) bool {
		var c IRQController
		for _, op := range ops {
			line := int(op&0x0F) | 1
			switch (op >> 4) % 3 {
			case 0:
				c.Raise(line)
			case 1:
				c.Force(line)
			case 2:
				c.Ack(line)
			}
		}
		c.Ack(9)
		return c.Pending()&(1<<9) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
