package sparc

import (
	"testing"
	"testing/quick"
)

func TestIRQRaiseAndDeliver(t *testing.T) {
	var c IRQController
	c.Raise(5)
	if c.Deliverable() != 0 {
		t.Fatal("masked interrupt delivered")
	}
	c.SetMask(1 << 5)
	if c.Deliverable() != 1<<5 {
		t.Fatalf("Deliverable = %04x, want line 5", c.Deliverable())
	}
	if c.Highest() != 5 {
		t.Fatalf("Highest = %d, want 5", c.Highest())
	}
}

func TestIRQPriorityHigherLineWins(t *testing.T) {
	var c IRQController
	c.SetMask(0xFFFF)
	c.Raise(3)
	c.Raise(12)
	if c.Highest() != 12 {
		t.Fatalf("Highest = %d, want 12 (LEON3 priority order)", c.Highest())
	}
	c.Ack(12)
	if c.Highest() != 3 {
		t.Fatalf("Highest after ack = %d, want 3", c.Highest())
	}
}

func TestIRQForceVisibleAndAcked(t *testing.T) {
	var c IRQController
	c.SetMask(0xFFFF)
	c.Force(7)
	if c.Pending()&(1<<7) == 0 {
		t.Fatal("forced line not pending")
	}
	c.Ack(7)
	if c.Pending() != 0 {
		t.Fatal("ack did not clear force bit")
	}
}

func TestIRQInvalidLinesIgnored(t *testing.T) {
	var c IRQController
	c.Raise(0)
	c.Raise(16)
	c.Raise(-1)
	if c.Pending() != 0 {
		t.Fatalf("invalid lines set pending bits: %04x", c.Pending())
	}
	if c.Raised(0) != 0 || c.Raised(99) != 0 {
		t.Fatal("invalid lines counted")
	}
}

func TestIRQRaisedCounter(t *testing.T) {
	var c IRQController
	c.Raise(4)
	c.Raise(4)
	c.Ack(4)
	c.Raise(4)
	if c.Raised(4) != 3 {
		t.Fatalf("Raised(4) = %d, want 3", c.Raised(4))
	}
}

// Property: after Ack(n), line n is no longer pending regardless of the
// prior Raise/Force history.
func TestPropertyAckClearsLine(t *testing.T) {
	f := func(ops []uint8) bool {
		var c IRQController
		for _, op := range ops {
			line := int(op&0x0F) | 1
			switch (op >> 4) % 3 {
			case 0:
				c.Raise(line)
			case 1:
				c.Force(line)
			case 2:
				c.Ack(line)
			}
		}
		c.Ack(9)
		return c.Pending()&(1<<9) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUARTRoundTrip(t *testing.T) {
	var u UART
	u.WriteString("hello\nworld\n")
	if u.String() != "hello\nworld\n" {
		t.Fatalf("String = %q", u.String())
	}
	lines := u.Lines()
	if len(lines) != 2 || lines[0] != "hello" || lines[1] != "world" {
		t.Fatalf("Lines = %v", lines)
	}
	if u.Written() != 12 {
		t.Fatalf("Written = %d, want 12", u.Written())
	}
}

func TestUARTWriterInterface(t *testing.T) {
	var u UART
	n, err := u.Write([]byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
}

func TestUARTBoundedBuffer(t *testing.T) {
	var u UART
	chunk := make([]byte, 64<<10)
	for i := range chunk {
		chunk[i] = 'x'
	}
	for i := 0; i < 40; i++ { // 2.5 MiB total, cap is 1 MiB
		u.Write(chunk)
	}
	if got := len(u.Bytes()); got > uartCap+len(chunk) {
		t.Fatalf("buffer grew to %d bytes, cap is %d", got, uartCap)
	}
	if u.Written() != uint64(40*len(chunk)) {
		t.Fatalf("Written = %d, want %d", u.Written(), 40*len(chunk))
	}
}

func TestUARTReset(t *testing.T) {
	var u UART
	u.WriteString("x")
	u.Reset()
	if u.String() != "" {
		t.Fatal("Reset did not clear buffer")
	}
	if u.Written() != 1 {
		t.Fatal("Reset cleared the written counter")
	}
}
