package sparc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMachinePowerOnState(t *testing.T) {
	m := NewDefaultMachine()
	if m.Now() != 0 {
		t.Fatalf("clock at power-on = %d, want 0", m.Now())
	}
	if crashed, _ := m.Crashed(); crashed {
		t.Fatal("machine crashed at power-on")
	}
	for i := 0; i < NumTimerUnits; i++ {
		if armed, _ := m.Timer(i).Armed(); armed {
			t.Fatalf("timer %d armed at power-on", i)
		}
	}
}

func TestMachineRAMReadWriteRoundTrip(t *testing.T) {
	m := NewDefaultMachine()
	addr := DefaultRAMBase + 0x100
	if tr := m.Write32(addr, 0xDEADBEEF); tr != nil {
		t.Fatalf("Write32: %v", tr)
	}
	v, tr := m.Read32(addr)
	if tr != nil {
		t.Fatalf("Read32: %v", tr)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("Read32 = %#x, want 0xDEADBEEF", v)
	}
}

func TestMachineBigEndianLayout(t *testing.T) {
	m := NewDefaultMachine()
	addr := DefaultRAMBase
	if tr := m.Write32(addr, 0x11223344); tr != nil {
		t.Fatalf("Write32: %v", tr)
	}
	b, tr := m.Read(addr, 4)
	if tr != nil {
		t.Fatalf("Read: %v", tr)
	}
	want := []byte{0x11, 0x22, 0x33, 0x44}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x (SPARC is big-endian)", i, b[i], want[i])
		}
	}
}

func TestMachineRead64RoundTrip(t *testing.T) {
	m := NewDefaultMachine()
	addr := DefaultRAMBase + 0x200
	const v = uint64(0x0102030405060708)
	if tr := m.Write64(addr, v); tr != nil {
		t.Fatalf("Write64: %v", tr)
	}
	got, tr := m.Read64(addr)
	if tr != nil {
		t.Fatalf("Read64: %v", tr)
	}
	if got != v {
		t.Fatalf("Read64 = %#x, want %#x", got, v)
	}
}

func TestMachineUnbackedAddressTraps(t *testing.T) {
	m := NewDefaultMachine()
	// Far above the I/O bank.
	_, tr := m.Read32(0xF0000000)
	if tr == nil {
		t.Fatal("read of unbacked address did not trap")
	}
	if tr.Type != TrapDataAccessException {
		t.Fatalf("trap type = %v, want data_access_exception", tr.Type)
	}
}

func TestMachineROMIsReadOnly(t *testing.T) {
	m := NewDefaultMachine()
	if tr := m.Write32(DefaultROMBase+0x10, 1); tr == nil {
		t.Fatal("write to PROM did not trap")
	}
	if _, tr := m.Read32(DefaultROMBase + 0x10); tr != nil {
		t.Fatalf("read from PROM trapped: %v", tr)
	}
}

func TestMachineMisalignedAccessTraps(t *testing.T) {
	m := NewDefaultMachine()
	for _, tc := range []struct {
		addr Addr
		ok   bool
	}{
		{DefaultRAMBase + 1, false},
		{DefaultRAMBase + 2, false},
		{DefaultRAMBase + 3, false},
		{DefaultRAMBase + 4, true},
	} {
		_, tr := m.Read32(tc.addr)
		if (tr == nil) != tc.ok {
			t.Errorf("Read32(0x%08X) trap=%v, want ok=%v", uint32(tc.addr), tr, tc.ok)
		}
		if tr != nil && tr.Type != TrapMemAddressNotAligned {
			t.Errorf("Read32(0x%08X) trap type = %v, want mem_address_not_aligned", uint32(tc.addr), tr.Type)
		}
	}
	if _, tr := m.Read64(DefaultRAMBase + 4); tr == nil || tr.Type != TrapMemAddressNotAligned {
		t.Errorf("Read64 at 4-byte alignment: trap = %v, want alignment trap", tr)
	}
}

func TestMachineAdvanceMonotonic(t *testing.T) {
	m := NewDefaultMachine()
	if err := m.AdvanceTo(1000); err != nil {
		t.Fatal(err)
	}
	if m.Now() != 1000 {
		t.Fatalf("Now = %d, want 1000", m.Now())
	}
	// Backwards is a no-op, not a rewind.
	if err := m.AdvanceTo(500); err != nil {
		t.Fatal(err)
	}
	if m.Now() != 1000 {
		t.Fatalf("Now after backwards AdvanceTo = %d, want 1000", m.Now())
	}
}

func TestTimerFiresAtExpiry(t *testing.T) {
	m := NewDefaultMachine()
	var firedAt Time = -1
	m.Timer(0).Arm(250, func(m *Machine, unit int, at Time) {
		firedAt = m.Now()
		if unit != 0 {
			t.Errorf("handler unit = %d, want 0", unit)
		}
	})
	if err := m.AdvanceTo(200); err != nil {
		t.Fatal(err)
	}
	if firedAt != -1 {
		t.Fatal("timer fired before expiry")
	}
	if err := m.AdvanceTo(300); err != nil {
		t.Fatal(err)
	}
	if firedAt != 250 {
		t.Fatalf("timer fired at %d, want 250 (clock must be at expiry inside handler)", firedAt)
	}
}

func TestTimerReArmInHandlerRunsSameAdvance(t *testing.T) {
	m := NewDefaultMachine()
	var fires []Time
	var h TimerHandler
	h = func(m *Machine, unit int, at Time) {
		fires = append(fires, m.Now())
		if len(fires) < 3 {
			m.Timer(0).Arm(at+10, h)
		}
	}
	m.Timer(0).Arm(100, h)
	if err := m.AdvanceTo(1000); err != nil {
		t.Fatal(err)
	}
	want := []Time{100, 110, 120}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTimerReArmInPastFiresImmediately(t *testing.T) {
	// The mechanism behind the paper's XM_set_timer(0,1,1) finding: a
	// handler re-arming in the past must be called again within the same
	// AdvanceTo, so a kernel with no minimum interval recurses.
	m := NewDefaultMachine()
	n := 0
	var h TimerHandler
	h = func(m *Machine, unit int, at Time) {
		n++
		if n < 100 {
			m.Timer(0).Arm(at, h) // always already due
		}
	}
	m.Timer(0).Arm(1, h)
	if err := m.AdvanceTo(2); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("handler ran %d times, want 100 (stuck-in-the-past expiry must storm)", n)
	}
	if m.Now() != 2 {
		t.Fatalf("Now = %d, want 2", m.Now())
	}
}

func TestTwoTimersFireInExpiryOrder(t *testing.T) {
	m := NewDefaultMachine()
	var order []int
	m.Timer(1).Arm(50, func(m *Machine, unit int, at Time) { order = append(order, 1) })
	m.Timer(0).Arm(70, func(m *Machine, unit int, at Time) { order = append(order, 0) })
	if err := m.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("fire order = %v, want [1 0]", order)
	}
}

func TestTimerTieBreaksByUnitNumber(t *testing.T) {
	m := NewDefaultMachine()
	var order []int
	m.Timer(1).Arm(50, func(m *Machine, unit int, at Time) { order = append(order, 1) })
	m.Timer(0).Arm(50, func(m *Machine, unit int, at Time) { order = append(order, 0) })
	if err := m.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("fire order = %v, want [0 1]", order)
	}
}

func TestCrashStopsMachine(t *testing.T) {
	m := NewDefaultMachine()
	m.Timer(0).Arm(10, func(m *Machine, unit int, at Time) {
		m.Crash("timer trap escaped to simulator")
	})
	err := m.AdvanceTo(100)
	if err == nil {
		t.Fatal("AdvanceTo after crash returned nil error")
	}
	if _, ok := err.(ErrCrashed); !ok {
		t.Fatalf("error type = %T, want ErrCrashed", err)
	}
	crashed, reason := m.Crashed()
	if !crashed || !strings.Contains(reason, "timer trap") {
		t.Fatalf("Crashed() = %v %q", crashed, reason)
	}
	// Time must not run past the crash.
	if m.Now() != 10 {
		t.Fatalf("Now = %d, want 10 (crash instant)", m.Now())
	}
}

func TestCrashIsSticky(t *testing.T) {
	m := NewDefaultMachine()
	m.Crash("first")
	m.Crash("second")
	_, reason := m.Crashed()
	if reason != "first" {
		t.Fatalf("crash reason = %q, want the first one to stick", reason)
	}
}

// Property: for any word value and any aligned in-RAM offset, a write
// followed by a read returns the same value and never traps.
func TestPropertyRAMWordRoundTrip(t *testing.T) {
	m := NewDefaultMachine()
	f := func(off uint32, v uint32) bool {
		addr := DefaultRAMBase + Addr(off%(DefaultRAMSize-4)&^3)
		if tr := m.Write32(addr, v); tr != nil {
			return false
		}
		got, tr := m.Read32(addr)
		return tr == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: reads never mutate memory — two consecutive reads agree.
func TestPropertyReadIsPure(t *testing.T) {
	m := NewDefaultMachine()
	f := func(off uint32) bool {
		addr := DefaultRAMBase + Addr(off%(DefaultRAMSize-8))
		a, tr1 := m.Read(addr, 8)
		b, tr2 := m.Read(addr, 8)
		if (tr1 == nil) != (tr2 == nil) {
			return false
		}
		if tr1 != nil {
			return true
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCount(t *testing.T) {
	m := NewDefaultMachine()
	m.Write32(DefaultRAMBase, 1)
	m.Read32(DefaultRAMBase)
	m.Read32(0xF0000000) // traps
	r, w, traps := m.Stats()
	if r != 2 || w != 1 || traps != 1 {
		t.Fatalf("stats = (%d,%d,%d), want (2,1,1)", r, w, traps)
	}
}
