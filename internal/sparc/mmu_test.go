package sparc

import (
	"strings"
	"testing"
	"testing/quick"
)

func testSpace() *Space {
	return NewSpace("P0",
		Region{Name: "code", Base: 0x40010000, Size: 0x10000, Perm: PermRX},
		Region{Name: "data", Base: 0x40020000, Size: 0x10000, Perm: PermRW},
	)
}

func TestSpaceCheckInsideRegion(t *testing.T) {
	s := testSpace()
	if tr := s.Check(0x40020000, 4, PermRead); tr != nil {
		t.Fatalf("read inside data region trapped: %v", tr)
	}
	if tr := s.Check(0x4002FFFF, 1, PermWrite); tr != nil {
		t.Fatalf("write of last byte trapped: %v", tr)
	}
}

func TestSpaceCheckPermissionDenied(t *testing.T) {
	s := testSpace()
	tr := s.Check(0x40010000, 4, PermWrite)
	if tr == nil {
		t.Fatal("write to rx region did not trap")
	}
	if tr.Type != TrapDataAccessException {
		t.Fatalf("trap type = %v, want data_access_exception", tr.Type)
	}
	if !strings.Contains(tr.Detail, "lacks") {
		t.Fatalf("trap detail %q should name the missing permission", tr.Detail)
	}
}

func TestSpaceCheckNoMapping(t *testing.T) {
	s := testSpace()
	if tr := s.Check(0x50000000, 4, PermRead); tr == nil {
		t.Fatal("access outside all regions did not trap")
	}
	// NULL pointer dereference is the canonical invalid input of the
	// paper's pointer dictionary.
	if tr := s.Check(0, 4, PermRead); tr == nil {
		t.Fatal("NULL access did not trap")
	}
}

func TestSpaceCheckStraddleTraps(t *testing.T) {
	s := testSpace()
	// The two regions are contiguous but map through distinct descriptors;
	// an access straddling the boundary must trap.
	if tr := s.Check(0x4001FFFE, 4, PermRead); tr == nil {
		t.Fatal("straddling access did not trap")
	}
}

func TestSpaceCheckEndOfAddressSpaceWrap(t *testing.T) {
	s := NewSpace("top", Region{Name: "top", Base: 0xFFFFFFF0, Size: 16, Perm: PermRW})
	if tr := s.Check(0xFFFFFFF0, 16, PermRead); tr != nil {
		t.Fatalf("access of topmost region trapped: %v", tr)
	}
	if tr := s.Check(0xFFFFFFFC, 8, PermRead); tr == nil {
		t.Fatal("wrap past 2^32 did not trap")
	}
}

func TestSpaceCheckZeroSizeProbesOneByte(t *testing.T) {
	s := testSpace()
	if tr := s.Check(0x40020000, 0, PermRead); tr != nil {
		t.Fatalf("zero-size probe trapped: %v", tr)
	}
	if tr := s.Check(0x40030000, 0, PermRead); tr == nil {
		t.Fatal("zero-size probe past the region did not trap")
	}
}

func TestSpaceCheckAligned(t *testing.T) {
	s := testSpace()
	if tr := s.CheckAligned(0x40020002, 4, PermRead); tr == nil || tr.Type != TrapMemAddressNotAligned {
		t.Fatalf("misaligned word access: trap = %v, want alignment trap", tr)
	}
	if tr := s.CheckAligned(0x40020004, 4, PermRead); tr != nil {
		t.Fatalf("aligned access trapped: %v", tr)
	}
	// Byte accesses have no alignment requirement.
	if tr := s.CheckAligned(0x40020003, 1, PermRead); tr != nil {
		t.Fatalf("byte access trapped: %v", tr)
	}
}

func TestRegionOverlaps(t *testing.T) {
	a := Region{Base: 0x1000, Size: 0x100}
	for _, tc := range []struct {
		b    Region
		want bool
	}{
		{Region{Base: 0x1000, Size: 0x100}, true},
		{Region{Base: 0x10FF, Size: 1}, true},
		{Region{Base: 0x1100, Size: 1}, false},
		{Region{Base: 0x0FFF, Size: 1}, false},
		{Region{Base: 0x0FFF, Size: 2}, true},
		{Region{Base: 0x0F00, Size: 0x400}, true},
	} {
		if got := a.Overlaps(tc.b); got != tc.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", a, tc.b, got, tc.want)
		}
	}
}

func TestRegionContainsBoundaries(t *testing.T) {
	r := Region{Base: 0x1000, Size: 0x100}
	if !r.Contains(0x1000, 0x100) {
		t.Error("region should contain itself")
	}
	if r.Contains(0x1000, 0x101) {
		t.Error("region should not contain one byte past its end")
	}
	if r.Contains(0x0FFF, 1) {
		t.Error("region should not contain the byte before its base")
	}
}

func TestSpaceAddRegion(t *testing.T) {
	s := testSpace()
	if tr := s.Check(0x80000000, 4, PermRead); tr == nil {
		t.Fatal("I/O access allowed before grant")
	}
	s.AddRegion(Region{Name: "io", Base: 0x80000000, Size: 0x1000, Perm: PermRW})
	if tr := s.Check(0x80000000, 4, PermRead); tr != nil {
		t.Fatalf("I/O access denied after grant: %v", tr)
	}
}

// Property: Check(addr,size) succeeds iff every byte of the range succeeds
// individually with the same permission (no straddling in this generator:
// single-region space).
func TestPropertyCheckMatchesPerByte(t *testing.T) {
	s := NewSpace("p", Region{Name: "r", Base: 0x2000, Size: 0x1000, Perm: PermRW})
	f := func(addr16 uint16, size8 uint8) bool {
		addr := Addr(0x1800 + uint32(addr16)%0x2000)
		size := uint32(size8%64) + 1
		whole := s.Check(addr, size, PermRead) == nil
		all := true
		for i := uint32(0); i < size; i++ {
			if s.Check(addr+Addr(i), 1, PermRead) != nil {
				all = false
				break
			}
		}
		return whole == all
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPermString(t *testing.T) {
	for _, tc := range []struct {
		p    Perm
		want string
	}{
		{PermRead, "r--"},
		{PermRW, "rw-"},
		{PermRWX, "rwx"},
		{PermRX, "r-x"},
		{0, "---"},
	} {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("Perm(%d).String() = %q, want %q", tc.p, got, tc.want)
		}
	}
}

func TestTrapString(t *testing.T) {
	tr := DataAccessTrap(0x1234, PermWrite, "no mapping")
	s := tr.String()
	for _, want := range []string{"data_access_exception", "0x00001234", "-w-", "no mapping"} {
		if !strings.Contains(s, want) {
			t.Errorf("trap string %q missing %q", s, want)
		}
	}
}
