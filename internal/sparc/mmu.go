package sparc

import (
	"fmt"
	"sort"
	"strings"
)

// Addr is a 32-bit physical address on the LEON3 bus.
type Addr uint32

// Perm is a bitmask of access rights on a memory region.
type Perm uint8

// Access rights. PermExec is tracked so instruction-fetch style accesses
// (e.g. the multicall batch walker) can be distinguished in logs.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec

	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

// String renders the permission mask as "rwx" flags.
func (p Perm) String() string {
	var b strings.Builder
	for _, f := range [...]struct {
		bit Perm
		c   byte
	}{{PermRead, 'r'}, {PermWrite, 'w'}, {PermExec, 'x'}} {
		if p&f.bit != 0 {
			b.WriteByte(f.c)
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Region is a contiguous range of physical addresses with uniform access
// rights, as configured by the separation kernel for one address-space view
// (a partition, or the kernel itself).
type Region struct {
	Name string
	Base Addr
	Size uint32
	Perm Perm
}

// End returns the first address past the region. The arithmetic is done in
// 64 bits so a region touching the top of the address space does not wrap.
func (r Region) End() uint64 { return uint64(r.Base) + uint64(r.Size) }

// Contains reports whether [addr, addr+size) lies entirely inside the
// region. size==0 is treated as a 1-byte probe.
func (r Region) Contains(addr Addr, size uint32) bool {
	if size == 0 {
		size = 1
	}
	return uint64(addr) >= uint64(r.Base) && uint64(addr)+uint64(size) <= r.End()
}

// Overlaps reports whether two regions share at least one byte.
func (r Region) Overlaps(o Region) bool {
	return uint64(r.Base) < o.End() && uint64(o.Base) < r.End()
}

func (r Region) String() string {
	return fmt.Sprintf("%s [0x%08X..0x%08X) %s", r.Name, uint32(r.Base), uint32(r.End()), r.Perm)
}

// Space is one MMU view: the set of regions an execution context (partition
// or kernel) may touch, with per-region rights. It is the spatial-separation
// primitive the kernel builds partitions from.
type Space struct {
	name    string
	regions []Region
}

// NewSpace builds an address-space view from the given regions. Regions are
// kept sorted by base address for deterministic lookup and display.
func NewSpace(name string, regions ...Region) *Space {
	s := &Space{name: name, regions: append([]Region(nil), regions...)}
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
	return s
}

// Name returns the label the space was created with.
func (s *Space) Name() string { return s.name }

// Rebuild resets the view to exactly the given regions, reusing the
// backing array — the in-place twin of NewSpace for recycled kernels,
// undoing any run-time AddRegion grants or FlipRegionBit upsets. The
// insertion sort (spaces hold a handful of regions) keeps the hot
// recycle path free of sort.Slice's closure allocations.
func (s *Space) Rebuild(regions ...Region) {
	s.regions = append(s.regions[:0], regions...)
	for i := 1; i < len(s.regions); i++ {
		for j := i; j > 0 && s.regions[j].Base < s.regions[j-1].Base; j-- {
			s.regions[j], s.regions[j-1] = s.regions[j-1], s.regions[j]
		}
	}
}

// Regions returns a copy of the regions in the space.
func (s *Space) Regions() []Region { return append([]Region(nil), s.regions...) }

// AddRegion extends the view with one more region (used when the kernel
// grants a partition access to a shared or I/O area at run time).
func (s *Space) AddRegion(r Region) {
	s.regions = append(s.regions, r)
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
}

// FlipRegionBit inverts one bit of region i's base address — the SEU
// model of an upset in the MMU context that maps this space: every
// subsequent access through the displaced region resolves against the
// wrong physical window, which is exactly the spatial-separation hazard
// the health monitor exists to catch. The bit index is taken modulo 32;
// the region list is re-sorted to preserve the lookup invariant. Spaces
// without a region i report false. It returns the new base.
func (s *Space) FlipRegionBit(i int, bit uint8) (Addr, bool) {
	if i < 0 || i >= len(s.regions) {
		return 0, false
	}
	s.regions[i].Base ^= 1 << (bit % 32)
	base := s.regions[i].Base
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
	return base, true
}

// Check validates an access of size bytes at addr with rights p. It returns
// nil when some region fully covers the access with sufficient rights, and
// a data_access_exception trap otherwise. Accesses that straddle two
// regions trap even if both halves would individually be allowed: the model
// mirrors an MMU that resolves one page descriptor per access.
func (s *Space) Check(addr Addr, size uint32, p Perm) *Trap {
	if size == 0 {
		size = 1
	}
	if uint64(addr)+uint64(size) > 1<<32 {
		return DataAccessTrap(addr, p, fmt.Sprintf("%s: access wraps the address space", s.name))
	}
	for _, r := range s.regions {
		if !r.Contains(addr, size) {
			continue
		}
		if r.Perm&p != p {
			return DataAccessTrap(addr, p,
				fmt.Sprintf("%s: region %s lacks %s", s.name, r.Name, p))
		}
		return nil
	}
	return DataAccessTrap(addr, p, fmt.Sprintf("%s: no mapping", s.name))
}

// CheckAligned is Check plus natural-alignment validation, which LEON3
// enforces in hardware for halfword and larger accesses.
func (s *Space) CheckAligned(addr Addr, size uint32, p Perm) *Trap {
	switch size {
	case 2, 4, 8:
		if uint32(addr)%size != 0 {
			return AlignmentTrap(addr, p)
		}
	}
	return s.Check(addr, size, p)
}

func (s *Space) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "space %s:", s.name)
	for _, r := range s.regions {
		fmt.Fprintf(&b, "\n  %s", r)
	}
	return b.String()
}
