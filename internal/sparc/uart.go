package sparc

import (
	"bytes"
	"strings"
)

// uartCap bounds the console buffer so a partition spinning on console
// writes cannot exhaust host memory. The oldest bytes are dropped, like a
// scrollback buffer.
const uartCap = 1 << 20

// UART models the APBUART console device: a byte sink whose content the
// test harness reads back as the "serial log" of a campaign run.
type UART struct {
	buf     bytes.Buffer
	written uint64
	dropped uint64
}

// writeByte appends one byte to the console stream.
func (u *UART) writeByte(b byte) {
	u.written++
	if u.buf.Len() >= uartCap {
		u.trim()
	}
	u.buf.WriteByte(b)
}

// trim drops the oldest half of the buffer to amortise the trimming
// cost, like a scrollback buffer.
func (u *UART) trim() {
	half := u.buf.Bytes()[uartCap/2:]
	rest := make([]byte, len(half))
	copy(rest, half)
	u.dropped += uint64(u.buf.Len() - len(rest))
	u.buf.Reset()
	u.buf.Write(rest)
}

// Write appends a byte slice to the console stream. Bytes land in
// capacity-bounded chunks — the content and drop accounting are exactly
// those of a byte-at-a-time append, without the per-byte bounds check.
func (u *UART) Write(p []byte) (int, error) {
	for done := 0; done < len(p); {
		if u.buf.Len() >= uartCap {
			u.trim()
		}
		n := uartCap - u.buf.Len()
		if rest := len(p) - done; n > rest {
			n = rest
		}
		u.buf.Write(p[done : done+n])
		u.written += uint64(n)
		done += n
	}
	return len(p), nil
}

// WriteString appends a string to the console stream.
func (u *UART) WriteString(s string) {
	for done := 0; done < len(s); {
		if u.buf.Len() >= uartCap {
			u.trim()
		}
		n := uartCap - u.buf.Len()
		if rest := len(s) - done; n > rest {
			n = rest
		}
		u.buf.WriteString(s[done : done+n])
		u.written += uint64(n)
		done += n
	}
}

// Bytes returns the current console contents.
func (u *UART) Bytes() []byte { return append([]byte(nil), u.buf.Bytes()...) }

// String returns the current console contents as a string.
func (u *UART) String() string { return u.buf.String() }

// Lines splits the console contents into lines, dropping a trailing empty
// line.
func (u *UART) Lines() []string {
	s := u.buf.String()
	if s == "" {
		return nil
	}
	lines := strings.Split(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// Written returns the total number of bytes ever written, including any
// that were dropped from the buffer.
func (u *UART) Written() uint64 { return u.written }

// Reset clears the console buffer (counters are preserved).
func (u *UART) Reset() { u.buf.Reset() }
