package sparc

import (
	"bytes"
	"strings"
)

// uartCap bounds the console buffer so a partition spinning on console
// writes cannot exhaust host memory. The oldest bytes are dropped, like a
// scrollback buffer.
const uartCap = 1 << 20

// UART models the APBUART console device: a byte sink whose content the
// test harness reads back as the "serial log" of a campaign run.
type UART struct {
	buf     bytes.Buffer
	written uint64
	dropped uint64
}

// writeByte appends one byte to the console stream.
func (u *UART) writeByte(b byte) {
	u.written++
	if u.buf.Len() >= uartCap {
		// Drop the oldest half to amortise the trimming cost.
		half := u.buf.Bytes()[uartCap/2:]
		rest := make([]byte, len(half))
		copy(rest, half)
		u.dropped += uint64(u.buf.Len() - len(rest))
		u.buf.Reset()
		u.buf.Write(rest)
	}
	u.buf.WriteByte(b)
}

// Write appends a byte slice to the console stream.
func (u *UART) Write(p []byte) (int, error) {
	for _, b := range p {
		u.writeByte(b)
	}
	return len(p), nil
}

// WriteString appends a string to the console stream.
func (u *UART) WriteString(s string) {
	for i := 0; i < len(s); i++ {
		u.writeByte(s[i])
	}
}

// Bytes returns the current console contents.
func (u *UART) Bytes() []byte { return append([]byte(nil), u.buf.Bytes()...) }

// String returns the current console contents as a string.
func (u *UART) String() string { return u.buf.String() }

// Lines splits the console contents into lines, dropping a trailing empty
// line.
func (u *UART) Lines() []string {
	s := u.buf.String()
	if s == "" {
		return nil
	}
	lines := strings.Split(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// Written returns the total number of bytes ever written, including any
// that were dropped from the buffer.
func (u *UART) Written() uint64 { return u.written }

// Reset clears the console buffer (counters are preserved).
func (u *UART) Reset() { u.buf.Reset() }
