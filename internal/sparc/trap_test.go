package sparc

import (
	"strings"
	"testing"
)

func TestTrapTypeNames(t *testing.T) {
	cases := map[TrapType]string{
		TrapReset:                 "reset",
		TrapDataAccessException:   "data_access_exception",
		TrapMemAddressNotAligned:  "mem_address_not_aligned",
		TrapDivisionByZero:        "division_by_zero",
		TrapPrivilegedInstruction: "privileged_instruction",
	}
	for tt, want := range cases {
		if got := tt.String(); got != want {
			t.Errorf("%#x.String() = %q, want %q", uint8(tt), got, want)
		}
	}
	// Unknown trap numbers render their raw value instead of panicking.
	if got := TrapType(0x7F).String(); got != "trap_0x7f" {
		t.Errorf("unknown trap = %q", got)
	}
}

func TestTrapBuildersAndString(t *testing.T) {
	tr := DataAccessTrap(0x40001000, PermWrite, "outside partition areas")
	if tr.Type != TrapDataAccessException || tr.Addr != 0x40001000 || tr.Access != PermWrite {
		t.Fatalf("DataAccessTrap = %+v", tr)
	}
	s := tr.String()
	for _, want := range []string{"data_access_exception", "0x40001000", "outside partition areas"} {
		if !strings.Contains(s, want) {
			t.Errorf("trap string %q missing %q", s, want)
		}
	}
	if tr.Error() != s {
		t.Error("Error() and String() diverge")
	}

	al := AlignmentTrap(0x40000001, PermRead)
	if al.Type != TrapMemAddressNotAligned || al.Addr != 0x40000001 {
		t.Fatalf("AlignmentTrap = %+v", al)
	}
	if (*Trap)(nil).String() != "<no trap>" {
		t.Error("nil trap must render <no trap>")
	}
}

// TestTrapEntryState covers the machine's trap entry: a faulting access
// returns a trap carrying the faulting address, the attempted access and
// the region detail — the state a LEON3 trap handler reads on entry —
// and bumps the machine's trap counter without mutating memory.
func TestTrapEntryState(t *testing.T) {
	m := NewDefaultMachine()
	cfg := m.Config()
	hole := Addr(0x10000000) // between ROM and RAM: unmapped

	_, tr := m.Read(hole, 4)
	if tr == nil {
		t.Fatal("read from unmapped memory did not trap")
	}
	if tr.Type != TrapDataAccessException || tr.Addr != hole || tr.Access != PermRead {
		t.Fatalf("read trap = %+v", tr)
	}

	if tr := m.Write(hole, []byte{1, 2, 3, 4}); tr == nil || tr.Access != PermWrite {
		t.Fatalf("write trap = %+v", tr)
	}

	// ROM is mapped read-only: writes trap, reads do not.
	if tr := m.Write32(cfg.ROMBase, 7); tr == nil {
		t.Fatal("ROM write did not trap")
	}
	if _, tr := m.Read32(cfg.ROMBase); tr != nil {
		t.Fatalf("ROM read trapped: %v", tr)
	}

	_, _, traps := m.Stats()
	if traps < 3 {
		t.Fatalf("trap counter = %d, want >= 3", traps)
	}
}
