package sparc

// Pool is the machine-recycling contract shared by MachinePool (the
// legacy reset-and-verify recycler) and SnapshotPool (the copy-on-write
// snapshot recycler): Get returns a verified power-on machine, Put hands
// one back.
type Pool interface {
	Get() *Machine
	Put(*Machine)
	Stats() PoolStats
	SetStrict(bool)
}

// PoolStats counts what a MachinePool did over its lifetime.
type PoolStats struct {
	// Allocated is the number of machines built from scratch.
	Allocated uint64
	// Reused is the number of Gets served by recycling a pooled machine.
	Reused uint64
	// Discarded counts machines the pool refused to recycle: crashed
	// simulators handed back via Put, and machines that failed the
	// post-reset verification.
	Discarded uint64
	// Steals counts Gets served from a free-list stripe other than the
	// caller's round-robin home — cross-stripe traffic that measures how
	// well the striping spreads the workers.
	Steals uint64
}

// MachinePool recycles Machines across independent runs. A campaign that
// boots one simulated target per test spends most of its allocation budget
// on the memory banks; the pool keeps them alive and relies on
// Machine.Reset's dirty-page scrubbing to restore the power-on state at a
// cost proportional to what the previous run touched.
//
// Every recycled machine is reset *and verified*: Get replays the cheap
// power-on invariants (VerifyReset) plus a rotating page audit
// (AuditPages) that sweeps the banks across successive recycles, and in
// strict mode the exhaustive VerifyClean memory scan. A machine that fails
// verification — or that comes back crashed — is discarded and replaced
// with a fresh allocation. The invariant check alone cannot see a page the
// dirty tracker missed; the rotating audit bounds how long such a
// bookkeeping bug could leak before surfacing as a discard, and strict
// mode (plus the reset-isolation tests) rules it out deterministically.
//
// The free list is striped and the counters are atomic, so concurrent
// workers contend on disjoint stripes instead of one mutex (see
// machineShards and BenchmarkPoolContention).
type MachinePool struct {
	cfg    Config
	strict bool
	free   *machineShards
	stats  poolCounters
}

// auditPagesPerGet is the rotating-audit window of a non-strict recycle:
// 8 pages (32 KiB) per Get keeps the audit in the noise of a single test's
// cost while sweeping a default RAM bank about every 512 recycles.
const auditPagesPerGet = 8

// NewMachinePool builds a pool producing machines with the given layout.
// max bounds how many idle machines are retained (<= 0: one per caller is
// kept, i.e. unbounded — callers are expected to be a fixed worker set).
func NewMachinePool(cfg Config, max int) *MachinePool {
	return &MachinePool{cfg: cfg, free: newMachineShards(max)}
}

// SetStrict selects exhaustive VerifyClean scans on every recycle. This is
// orders of magnitude slower than the default invariant check; it exists
// for isolation tests and paranoid runs.
func (p *MachinePool) SetStrict(v bool) { p.strict = v }

// Get returns a machine in its power-on state: a recycled one when the
// reset-and-verify cycle succeeds, a fresh allocation otherwise.
func (p *MachinePool) Get() *Machine {
	if m := p.free.get(); m != nil {
		m.Reset()
		err := m.VerifyReset()
		if err == nil {
			if p.strict {
				err = m.VerifyClean()
			} else {
				err = m.AuditPages(auditPagesPerGet)
			}
		}
		if err == nil {
			p.stats.reused.Add(1)
			return m
		}
		p.stats.discarded.Add(1)
	}
	p.stats.allocated.Add(1)
	return NewMachine(p.cfg)
}

// Put hands a machine back for recycling. Crashed simulators are
// discarded — the contract of Crash is that the embedding harness must not
// trust them again — as is anything built with a different layout.
func (p *MachinePool) Put(m *Machine) {
	if m == nil {
		return
	}
	if crashed, _ := m.Crashed(); crashed || m.Config() != p.cfg {
		p.stats.discarded.Add(1)
		return
	}
	p.free.put(m)
}

// Stats snapshots the pool counters.
func (p *MachinePool) Stats() PoolStats {
	st := p.stats.snapshot()
	st.Steals = p.free.steals.Load()
	return st
}
