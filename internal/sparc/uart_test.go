package sparc

import (
	"strings"
	"testing"
)

func TestUARTCapture(t *testing.T) {
	var u UART
	n, err := u.Write([]byte("hello "))
	if n != 6 || err != nil {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	u.WriteString("world\n")
	if got := u.String(); got != "hello world\n" {
		t.Fatalf("String = %q", got)
	}
	if got := string(u.Bytes()); got != "hello world\n" {
		t.Fatalf("Bytes = %q", got)
	}
	if u.Written() != 12 {
		t.Fatalf("Written = %d, want 12", u.Written())
	}
	// Bytes returns a copy, not the live buffer.
	b := u.Bytes()
	b[0] = 'X'
	if u.String() != "hello world\n" {
		t.Fatal("Bytes aliases the internal buffer")
	}
}

func TestUARTLines(t *testing.T) {
	var u UART
	if u.Lines() != nil {
		t.Fatal("empty console has lines")
	}
	u.WriteString("one\ntwo\nthree")
	if got := u.Lines(); len(got) != 3 || got[0] != "one" || got[2] != "three" {
		t.Fatalf("Lines = %q", got)
	}
	// A trailing newline does not create a phantom empty line.
	u.WriteString("\n")
	if got := u.Lines(); len(got) != 3 {
		t.Fatalf("Lines with trailing newline = %q", got)
	}
}

func TestUARTOverflowDropsOldest(t *testing.T) {
	var u UART
	// Fill beyond capacity; the oldest half is dropped, the newest bytes
	// survive, and the written counter keeps the true total.
	marker := "END-MARKER"
	filler := strings.Repeat("x", uartCap)
	u.WriteString(filler)
	u.WriteString(marker)
	if u.buf.Len() > uartCap {
		t.Fatalf("buffer holds %d bytes, cap %d", u.buf.Len(), uartCap)
	}
	if !strings.HasSuffix(u.String(), marker) {
		t.Fatal("newest bytes were dropped")
	}
	if u.Written() != uint64(len(filler)+len(marker)) {
		t.Fatalf("Written = %d, want %d", u.Written(), len(filler)+len(marker))
	}
	if u.dropped == 0 {
		t.Fatal("overflow recorded no drops")
	}
}

func TestUARTReset(t *testing.T) {
	var u UART
	u.WriteString("before")
	u.Reset()
	if u.String() != "" {
		t.Fatalf("Reset left %q", u.String())
	}
	if u.Written() != 6 {
		t.Fatalf("Reset cleared the written counter: %d", u.Written())
	}
}

// TestMachineUARTEndToEnd drives the console through the machine, the
// path XM_write_console takes.
func TestMachineUARTEndToEnd(t *testing.T) {
	m := NewDefaultMachine()
	m.UART().WriteString("[P0] boot\n")
	if lines := m.UART().Lines(); len(lines) != 1 || lines[0] != "[P0] boot" {
		t.Fatalf("Lines = %q", lines)
	}
	m.Reset()
	if m.UART().Written() != 0 {
		t.Fatal("machine reset must restore the power-on console")
	}
}
