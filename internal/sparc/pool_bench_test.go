package sparc

import (
	"sync"
	"testing"
)

// benchPoolContention drives a pre-warmed snapshot pool from `workers`
// goroutines doing nothing but Get → dirty a page → Put — the pool's
// lock traffic with the execution cost stripped out, so what the
// benchmark measures is the free-list serialisation itself.
func benchPoolContention(b *testing.B, stripes, workers int) {
	cfg := DefaultConfig()
	p := newSnapshotPoolStripes(cfg, workers, stripes)
	// Pre-warm: one machine per worker, so the steady state recycles
	// instead of allocating.
	warm := make([]*Machine, workers)
	for i := range warm {
		warm[i] = p.Get()
	}
	for _, m := range warm {
		p.Put(m)
	}
	b.ResetTimer()

	var wg sync.WaitGroup
	per := b.N / workers
	if per == 0 {
		per = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m := p.Get()
				m.Write32(m.Config().RAMBase, 0xDEADBEEF)
				p.Put(m)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkPoolContention compares the historical single-mutex free
// list (stripes=1) against the striped default at campaign parallelism.
// On a single-core host the lock is never contended, so the two legs
// converge there; the striped win shows up with real parallelism.
func BenchmarkPoolContention(b *testing.B) {
	const workers = 8
	b.Run("single", func(b *testing.B) { benchPoolContention(b, 1, workers) })
	b.Run("striped", func(b *testing.B) { benchPoolContention(b, 0, workers) })
}
