// Package sparc implements a deterministic, simulation-grade model of a
// SPARC V8 LEON3 target as seen by a separation kernel: physical memory,
// permission-checked address spaces, a trap model, two hardware timer units,
// an IRQMP-style interrupt controller, a UART console, and a virtual
// microsecond clock.
//
// The model plays the role TSIM (the Aeroflex Gaisler LEON simulator) plays
// in the paper's testbed: it is the substrate on which the XtratuM-like
// kernel in package xm runs, and it is the component whose "crash" models
// the paper's observation that XM_set_timer(1,1,1) crashed the TSIM
// simulator itself. Everything is single-threaded and deterministic; no
// wall-clock time is consulted anywhere.
package sparc

import "fmt"

// TrapType enumerates the SPARC V8 trap numbers the kernel model cares
// about. The numeric values follow The SPARC Architecture Manual V8,
// table 7-1, so logs read like real LEON3 trap dumps.
type TrapType uint8

// SPARC V8 trap numbers (precise traps used by the model).
const (
	TrapReset                 TrapType = 0x00
	TrapInstructionAccess     TrapType = 0x01
	TrapIllegalInstruction    TrapType = 0x02
	TrapPrivilegedInstruction TrapType = 0x03
	TrapWindowOverflow        TrapType = 0x05
	TrapWindowUnderflow       TrapType = 0x06
	TrapMemAddressNotAligned  TrapType = 0x07
	TrapFPException           TrapType = 0x08
	TrapDataAccessException   TrapType = 0x09
	TrapTagOverflow           TrapType = 0x0A
	TrapDivisionByZero        TrapType = 0x2A
)

// trapNames maps trap types to the mnemonic used by the SPARC V8 manual.
var trapNames = map[TrapType]string{
	TrapReset:                 "reset",
	TrapInstructionAccess:     "instruction_access_exception",
	TrapIllegalInstruction:    "illegal_instruction",
	TrapPrivilegedInstruction: "privileged_instruction",
	TrapWindowOverflow:        "window_overflow",
	TrapWindowUnderflow:       "window_underflow",
	TrapMemAddressNotAligned:  "mem_address_not_aligned",
	TrapFPException:           "fp_exception",
	TrapDataAccessException:   "data_access_exception",
	TrapTagOverflow:           "tag_overflow",
	TrapDivisionByZero:        "division_by_zero",
}

// String returns the SPARC V8 mnemonic for the trap type.
func (t TrapType) String() string {
	if n, ok := trapNames[t]; ok {
		return n
	}
	return fmt.Sprintf("trap_0x%02x", uint8(t))
}

// Trap describes a synchronous processor trap raised by a memory access or
// instruction. A nil *Trap means the operation completed without trapping.
type Trap struct {
	Type TrapType
	// Addr is the faulting address for memory traps.
	Addr Addr
	// Access describes the attempted access (read/write/exec) for memory
	// traps; zero otherwise.
	Access Perm
	// Detail is a human-readable elaboration (region name, reason).
	Detail string
}

// Error implements the error interface so traps can flow through error
// plumbing where convenient. Traps are still normally handled by type.
func (t *Trap) Error() string { return t.String() }

// String renders the trap in a LEON3-log-like form.
func (t *Trap) String() string {
	if t == nil {
		return "<no trap>"
	}
	s := fmt.Sprintf("%s at 0x%08X", t.Type, uint32(t.Addr))
	if t.Access != 0 {
		s += " (" + t.Access.String() + ")"
	}
	if t.Detail != "" {
		s += ": " + t.Detail
	}
	return s
}

// DataAccessTrap builds the common data_access_exception trap.
func DataAccessTrap(addr Addr, access Perm, detail string) *Trap {
	return &Trap{Type: TrapDataAccessException, Addr: addr, Access: access, Detail: detail}
}

// AlignmentTrap builds a mem_address_not_aligned trap.
func AlignmentTrap(addr Addr, access Perm) *Trap {
	return &Trap{Type: TrapMemAddressNotAligned, Addr: addr, Access: access}
}
