package sparc

import (
	"bytes"
	"testing"
)

// TestSnapshotRestoreRoundTrip captures a dirty machine, dirties it
// further, and checks the restore rewinds every observable back to the
// captured state — the snapshot/restore leg of the
// TestResetScrubsEverything family.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := dirtyMachine(t)
	snap := m.Snapshot()
	if snap.Pages() == 0 {
		t.Fatal("snapshot of a dirty machine holds no pages")
	}

	// Mutate well past the captured state: new pages, a flipped bit in a
	// captured page, device and clock churn, then a crash.
	if tr := m.Write(m.Config().RAMBase+0x200000, []byte{1, 2, 3}); tr != nil {
		t.Fatal(tr)
	}
	m.FlipBit(m.Config().RAMBase+0x1234, 3)
	m.UART().WriteString("post-snapshot noise\n")
	m.IRQ().Raise(9)
	if err := m.AdvanceTo(4000); err != nil {
		t.Fatal(err)
	}
	m.Crash("post-snapshot crash")

	if err := m.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if crashed, _ := m.Crashed(); crashed {
		t.Fatal("restore did not rewind the crash flag")
	}
	if m.Now() != 100 {
		t.Fatalf("restored clock at %dus, want 100", m.Now())
	}
	if got := m.UART().String(); got != "residue\n" {
		t.Fatalf("restored console = %q", got)
	}
	if m.IRQ().Pending() != 1<<4 {
		t.Fatalf("restored pending IRQs = %#x", m.IRQ().Pending())
	}
	if armed, at := m.Timer(0).Armed(); !armed || at != 500 {
		t.Fatalf("restored timer armed=%v at=%d", armed, at)
	}
	b, tr := m.Read(m.Config().RAMBase+0x1234, 4)
	if tr != nil {
		t.Fatal(tr)
	}
	if !bytes.Equal(b, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Fatalf("restored RAM = %x", b)
	}
	b, tr = m.Read(m.Config().RAMBase+0x200000, 3)
	if tr != nil {
		t.Fatal(tr)
	}
	if !bytes.Equal(b, []byte{0, 0, 0}) {
		t.Fatalf("page dirtied after the snapshot not rewound to zero: %x", b)
	}
}

// TestSnapshotRestoreToPowerOn checks that restoring the power-on
// baseline is exactly a scrub: a machine dirtied, crashed and
// bit-flipped rewinds to a state VerifyClean accepts.
func TestSnapshotRestoreToPowerOn(t *testing.T) {
	base := PowerOnSnapshot(DefaultConfig())
	m := dirtyMachine(t)
	// Compose with the inject primitives: peek-poke flips mark pages
	// dirty exactly like stores, so the restore must scrub them too.
	if !m.FlipBit(m.Config().RAMBase+0x500000, 5) {
		t.Fatal("flip refused")
	}
	m.FlipClockBit(7)
	m.Crash("leg crashed")
	if err := m.RestoreSnapshot(base); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyClean(); err != nil {
		t.Fatalf("restored machine not at power-on: %v", err)
	}
}

// TestSnapshotAfterReset covers the defensive corner: a Reset between
// capture and restore clears the live dirty bitmaps, so the restore
// must copy captured pages back even though they are no longer marked.
func TestSnapshotAfterReset(t *testing.T) {
	m := dirtyMachine(t)
	snap := m.Snapshot()
	m.Reset()
	if err := m.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	b, tr := m.Read(m.Config().RAMBase+0x1234, 4)
	if tr != nil {
		t.Fatal(tr)
	}
	if !bytes.Equal(b, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Fatalf("captured page lost across Reset: %x", b)
	}
}

func TestSnapshotLayoutMismatchRefused(t *testing.T) {
	small := DefaultConfig()
	small.RAMSize = 1 << 20
	m := NewDefaultMachine()
	if err := m.RestoreSnapshot(NewMachine(small).Snapshot()); err == nil {
		t.Fatal("restore accepted a snapshot of a different layout")
	}
	if err := m.RestoreSnapshot(nil); err == nil {
		t.Fatal("restore accepted a nil snapshot")
	}
}

func TestSnapshotPoolRecyclesThroughRestore(t *testing.T) {
	p := NewSnapshotPool(DefaultConfig(), 4)
	m := p.Get()
	if tr := m.Write(m.Config().RAMBase, []byte{9, 9, 9}); tr != nil {
		t.Fatal(tr)
	}
	p.Put(m)
	m2 := p.Get()
	if m2 != m {
		t.Fatal("pool did not recycle the machine")
	}
	if err := m2.VerifyClean(); err != nil {
		t.Fatalf("recycled machine dirty: %v", err)
	}
	st := p.Stats()
	if st.Allocated != 1 || st.Reused != 1 || st.Discarded != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotPoolDiscardsCrashedMachines(t *testing.T) {
	p := NewSnapshotPool(DefaultConfig(), 4)
	m := p.Get()
	m.Crash("simulator died")
	p.Put(m)
	m2 := p.Get()
	if m2 == m {
		t.Fatal("pool recycled a crashed machine")
	}
	if st := p.Stats(); st.Discarded != 1 || st.Allocated != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotPoolStrictModeScans(t *testing.T) {
	p := NewSnapshotPool(DefaultConfig(), 4)
	p.SetStrict(true)
	m := p.Get()
	p.Put(m)
	// Mutate behind the tracker's back: the restore rides the dirty
	// bitmaps and cannot see this, so strict verification must refuse
	// the recycle and fall back to a fresh machine.
	m.ram[7] = 0xff
	m2 := p.Get()
	if m2 == m {
		t.Fatal("strict snapshot pool recycled a machine with untracked residue")
	}
	if st := p.Stats(); st.Discarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSnapshotPoolResidueSweep hammers the recycle loop with dirty,
// flipped and crashed machines under strict mode: every Get must come
// back byte-clean. This is the snapshot analogue of the legacy pool's
// reset-isolation guarantee.
func TestSnapshotPoolResidueSweep(t *testing.T) {
	p := NewSnapshotPool(DefaultConfig(), 2)
	p.SetStrict(true)
	for i := 0; i < 12; i++ {
		m := p.Get()
		if err := m.VerifyClean(); err != nil {
			t.Fatalf("recycle %d: %v", i, err)
		}
		addr := m.Config().RAMBase + Addr(i)<<dirtyPageShift
		if tr := m.Write(addr, []byte{byte(i + 1)}); tr != nil {
			t.Fatal(tr)
		}
		m.FlipBit(addr+DirtyPageSize, uint8(i))
		if i%3 == 0 {
			m.Crash("sweep crash")
		}
		p.Put(m)
	}
}

func TestReadIntoMatchesRead(t *testing.T) {
	m := NewDefaultMachine()
	if tr := m.Write(m.Config().RAMBase+8, []byte{1, 2, 3, 4, 5}); tr != nil {
		t.Fatal(tr)
	}
	want, tr := m.Read(m.Config().RAMBase+8, 5)
	if tr != nil {
		t.Fatal(tr)
	}
	got := make([]byte, 5)
	if tr := m.ReadInto(m.Config().RAMBase+8, got); tr != nil {
		t.Fatal(tr)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ReadInto = %x, Read = %x", got, want)
	}
	if tr := m.ReadInto(0xdeadbeef, got); tr == nil {
		t.Fatal("ReadInto of an unbacked address did not trap")
	}
}
