package sparc

import "testing"

// dirtyMachine powers on a machine and leaves realistic residue: memory
// stores across banks, an armed timer, console output, a raised interrupt
// and an advanced clock.
func dirtyMachine(t *testing.T) *Machine {
	t.Helper()
	m := NewDefaultMachine()
	if tr := m.Write(m.cfg.RAMBase+0x1234, []byte{0xde, 0xad, 0xbe, 0xef}); tr != nil {
		t.Fatal(tr)
	}
	if tr := m.Write32(m.cfg.IOBase+0x40, 0xcafe); tr != nil {
		t.Fatal(tr)
	}
	// A write spanning a page boundary must dirty both pages.
	if tr := m.Write(m.cfg.RAMBase+Addr(1<<dirtyPageShift)-2, []byte{1, 2, 3, 4}); tr != nil {
		t.Fatal(tr)
	}
	m.Timer(0).Arm(500, func(m *Machine, unit int, at Time) {})
	m.UART().WriteString("residue\n")
	m.IRQ().Raise(4)
	if err := m.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestResetScrubsEverything(t *testing.T) {
	m := dirtyMachine(t)
	if err := m.VerifyClean(); err == nil {
		t.Fatal("dirty machine passed VerifyClean")
	}
	m.Reset()
	if err := m.VerifyClean(); err != nil {
		t.Fatalf("reset machine not clean: %v", err)
	}
	if m.Resets() != 1 {
		t.Fatalf("resets = %d", m.Resets())
	}
}

func TestResetClearsCrash(t *testing.T) {
	m := NewDefaultMachine()
	m.Crash("test")
	m.Reset()
	if crashed, _ := m.Crashed(); crashed {
		t.Fatal("reset machine still crashed")
	}
	if err := m.AdvanceTo(10); err != nil {
		t.Fatalf("reset machine refuses to run: %v", err)
	}
}

func TestVerifyCleanFindsRawResidue(t *testing.T) {
	m := NewDefaultMachine()
	// Simulate a bookkeeping escape: memory mutated behind the dirty
	// tracker's back.
	m.ram[42] = 1
	if err := m.VerifyClean(); err == nil {
		t.Fatal("raw residue not detected")
	}
}

func TestPoolRecyclesCleanMachines(t *testing.T) {
	p := NewMachinePool(DefaultConfig(), 4)
	m := p.Get()
	if tr := m.Write(m.Config().RAMBase, []byte{9, 9, 9}); tr != nil {
		t.Fatal(tr)
	}
	p.Put(m)
	m2 := p.Get()
	if m2 != m {
		t.Fatal("pool did not recycle the machine")
	}
	if err := m2.VerifyClean(); err != nil {
		t.Fatalf("recycled machine dirty: %v", err)
	}
	st := p.Stats()
	if st.Allocated != 1 || st.Reused != 1 || st.Discarded != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolDiscardsCrashedMachines(t *testing.T) {
	p := NewMachinePool(DefaultConfig(), 4)
	m := p.Get()
	m.Crash("simulator died")
	p.Put(m)
	m2 := p.Get()
	if m2 == m {
		t.Fatal("pool recycled a crashed machine")
	}
	st := p.Stats()
	if st.Discarded != 1 || st.Allocated != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAuditPagesSweepsWholeBank(t *testing.T) {
	m := NewDefaultMachine()
	// Residue the dirty tracker knows nothing about, far into RAM.
	m.ram[len(m.ram)-100] = 0xaa
	found := false
	for i := 0; i < len(m.ram)/(8<<dirtyPageShift)+len(m.io)/(8<<dirtyPageShift)+2; i++ {
		if err := m.AuditPages(8); err != nil {
			found = true
			break
		}
		m.resets++ // advance the rotating window as a pool recycle would
	}
	if !found {
		t.Fatal("a full sweep of rotating audits missed the residue")
	}
}

func TestPoolStrictModeScans(t *testing.T) {
	p := NewMachinePool(DefaultConfig(), 4)
	p.SetStrict(true)
	m := p.Get()
	p.Put(m)
	// Mutate behind the tracker's back: strict verification must refuse
	// to recycle and fall back to a fresh machine.
	m.ram[7] = 0xff
	m2 := p.Get()
	if m2 == m {
		t.Fatal("strict pool recycled a machine with untracked residue")
	}
	if st := p.Stats(); st.Discarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolCapsRetention(t *testing.T) {
	p := NewMachinePool(DefaultConfig(), 1)
	a, b := p.Get(), p.Get()
	p.Put(a)
	p.Put(b) // over capacity: silently dropped
	if got := p.Get(); got != a {
		t.Fatal("expected the one retained machine")
	}
	if got := p.free.get(); got != nil {
		t.Fatalf("free list still holds %p", got)
	}
}

// TestShardsRetainAcrossStripes: a machine put while one stripe is full
// overflows to another instead of being dropped, and get steals from
// whatever stripe holds one.
func TestShardsRetainAcrossStripes(t *testing.T) {
	s := newMachineShardsN(4, 4)
	cfg := DefaultConfig()
	machines := make(map[*Machine]bool)
	for i := 0; i < 4; i++ {
		m := NewMachine(cfg)
		machines[m] = true
		if !s.put(m) {
			t.Fatalf("put %d refused with capacity for 4", i)
		}
	}
	for i := 0; i < 4; i++ {
		m := s.get()
		if m == nil {
			t.Fatalf("get %d found nothing with 4 machines pooled", i)
		}
		if !machines[m] {
			t.Fatalf("get %d returned a machine never put", i)
		}
		delete(machines, m)
	}
	if s.get() != nil {
		t.Fatal("empty shards returned a machine")
	}
}
