package sparc

import "fmt"

// NumIRQLines is the number of interrupt lines of the IRQMP controller
// model. Line 0 is unused on LEON3 (lines 1..15 are real interrupts), which
// the model preserves.
const NumIRQLines = 16

// IRQController models the LEON3 IRQMP multiprocessor interrupt controller
// (single-CPU view): pending, mask and force registers plus an acknowledge
// operation. The separation kernel virtualises these lines for partitions.
type IRQController struct {
	pending uint16
	mask    uint16
	force   uint16
	// raised counts deliveries per line for diagnostics.
	raised [NumIRQLines]uint64
}

// validLine reports whether n addresses a real interrupt line.
func validLine(n int) bool { return n >= 1 && n < NumIRQLines }

// Raise marks line n pending. Out-of-range lines are ignored (a hardware
// model cannot trap; the kernel validates hypercall arguments above this).
func (c *IRQController) Raise(n int) {
	if !validLine(n) {
		return
	}
	c.pending |= 1 << uint(n)
	c.raised[n]++
}

// Force sets the force register bit for line n, which makes the line
// visible regardless of external sources.
func (c *IRQController) Force(n int) {
	if !validLine(n) {
		return
	}
	c.force |= 1 << uint(n)
}

// Ack clears the pending and force bits of line n.
func (c *IRQController) Ack(n int) {
	if !validLine(n) {
		return
	}
	bit := uint16(1) << uint(n)
	c.pending &^= bit
	c.force &^= bit
}

// SetMask replaces the interrupt mask register. Bit n enables line n.
func (c *IRQController) SetMask(mask uint16) { c.mask = mask }

// Mask returns the interrupt mask register.
func (c *IRQController) Mask() uint16 { return c.mask }

// Pending returns the pending|force set, before masking.
func (c *IRQController) Pending() uint16 { return c.pending | c.force }

// Deliverable returns the set of lines that are pending and enabled.
func (c *IRQController) Deliverable() uint16 { return (c.pending | c.force) & c.mask }

// Highest returns the highest-priority deliverable line (LEON3: higher line
// number = higher priority), or 0 if none.
func (c *IRQController) Highest() int {
	d := c.Deliverable()
	for n := NumIRQLines - 1; n >= 1; n-- {
		if d&(1<<uint(n)) != 0 {
			return n
		}
	}
	return 0
}

// Raised returns the number of times line n has been raised.
func (c *IRQController) Raised(n int) uint64 {
	if !validLine(n) {
		return 0
	}
	return c.raised[n]
}

func (c *IRQController) String() string {
	return fmt.Sprintf("irqmp{pend=%04x mask=%04x force=%04x}", c.pending, c.mask, c.force)
}
