package corpus

import (
	"path/filepath"
	"testing"
	"time"

	"xmrobust/internal/apispec"
	"xmrobust/internal/cover"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
)

// fakeCoverage derives a deterministic coverage map from a dataset, as a
// stand-in kernel: each (function, parameter, value-index) lights one
// site, so datasets with unseen value choices find new edges.
func fakeCoverage(fn int, tuple []int) *cover.Map {
	m := &cover.Map{}
	m.Hit(uint32(fn))
	for p, v := range tuple {
		m.Hit(uint32(1000 + fn*97 + p*31 + v))
	}
	return m
}

// runLoop drives a feedback plan the way the engine does, sequentially,
// returning the emitted dataset strings.
func runLoop(t *testing.T, p *FeedbackPlan) []string {
	t.Helper()
	out := make([]string, p.Len())
	for i := 0; i < p.Len(); i++ {
		ds := p.At(i)
		out[i] = ds.String()
		p.Feedback(i, fakeCoverage(p.fns[i], p.tuples[i]))
	}
	return out
}

func TestFeedbackPlanReproducible(t *testing.T) {
	suite := testSuite(t)
	const n = 120
	a, err := NewFeedbackPlan(suite, n, 7, "hash")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFeedbackPlan(suite, n, 7, "hash")
	if err != nil {
		t.Fatal(err)
	}
	da, db := runLoop(t, a), runLoop(t, b)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("position %d: %q vs %q — seeded runs must be byte-identical", i, da[i], db[i])
		}
	}
	c, err := NewFeedbackPlan(suite, n, 8, "hash")
	if err != nil {
		t.Fatal(err)
	}
	dc := runLoop(t, c)
	same := true
	for i := range da {
		if da[i] != dc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds share a fingerprint")
	}
	st := a.Stats()
	if st.Executed != n || len(st.History) != n {
		t.Fatalf("stats executed %d / history %d, want %d", st.Executed, len(st.History), n)
	}
	if st.Edges == 0 || st.Corpus == 0 {
		t.Fatalf("loop admitted nothing: %+v", st)
	}
	// The frontier curve is monotone non-decreasing.
	for i := 1; i < len(st.History); i++ {
		if st.History[i] < st.History[i-1] {
			t.Fatalf("edge history decreased at %d: %v", i, st.History[i-1:i+1])
		}
	}
}

func TestFeedbackPlanViaRegistry(t *testing.T) {
	h, d := apispec.Default(), dict.Builtin()
	p, err := testgen.NewPlan("feedback:50", h, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !testgen.IsDynamic(p) {
		t.Fatal("feedback plan not flagged dynamic")
	}
	if p.Len() != 50 || p.Strategy() != "feedback:50" {
		t.Fatalf("Len %d Strategy %q", p.Len(), p.Strategy())
	}
	st := testgen.Measure(p)
	if !st.Dynamic || st.Tests != 50 || st.Exhaustive == 0 {
		t.Fatalf("Measure = %+v", st)
	}
	if _, err := testgen.NewPlan("feedback", h, d, 0); err == nil {
		t.Fatal("feedback without a count must be rejected")
	}
	if _, err := testgen.NewPlan("feedback:-3", h, d, 0); err == nil {
		t.Fatal("negative count must be rejected")
	}
}

func TestFeedbackPlanBlocksUntilFed(t *testing.T) {
	suite := testSuite(t)
	p, err := NewFeedbackPlan(suite, 40, 1, "hash")
	if err != nil {
		t.Fatal(err)
	}
	nSeeds := len(p.seeds)
	if nSeeds == 0 || nSeeds >= 40 {
		t.Fatalf("seed schedule of %d leaves no mutation region", nSeeds)
	}
	// Seed positions are available without any feedback.
	for i := 0; i < nSeeds; i++ {
		p.At(i)
	}
	got := make(chan string, 1)
	go func() {
		ds := p.At(nSeeds) // first bred position: must block
		got <- ds.String()
	}()
	select {
	case s := <-got:
		t.Fatalf("At(%d) returned %q before any feedback", nSeeds, s)
	case <-time.After(20 * time.Millisecond):
	}
	// Deliver feedback out of order: the plan buffers the gap.
	for i := nSeeds - 1; i >= 0; i-- {
		p.Feedback(i, fakeCoverage(p.fns[i], p.tuples[i]))
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatalf("At(%d) still blocked after all feedback arrived", nSeeds)
	}
	// Duplicate and out-of-range feedback are ignored.
	p.Feedback(0, mapOf(1))
	p.Feedback(10_000, mapOf(1))
}

func TestFeedbackPlanCorpusFileRoundTrip(t *testing.T) {
	suite := testSuite(t)
	path := filepath.Join(t.TempDir(), "corpus.jsonl")

	a, err := NewFeedbackPlan(suite, 80, 5, "hash")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UseCorpusFile(path); err != nil {
		t.Fatal(err)
	}
	runLoop(t, a)
	admitted := a.Stats().Corpus
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}

	// The same campaign re-attaching (a resume) re-derives its own
	// admissions instead of loading them as parents — loading them
	// would change the breeding schedule and break exact replay.
	sameFP, err := NewFeedbackPlan(suite, 80, 5, "hash")
	if err != nil {
		t.Fatal(err)
	}
	if err := sameFP.UseCorpusFile(path); err != nil {
		t.Fatal(err)
	}
	if got := sameFP.Stats(); got.Loaded != 0 {
		t.Fatalf("same-fingerprint attach loaded %d parents, want 0 (own admissions re-derive)", got.Loaded)
	}
	sameFP.Close()

	// A different campaign (different seed → different fingerprint)
	// loads every admission as a mutation parent.
	b, err := NewFeedbackPlan(suite, 80, 6, "hash")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UseCorpusFile(path); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.Stats(); got.Loaded != admitted {
		t.Fatalf("second campaign loaded %d parents, want %d", got.Loaded, admitted)
	}
	runLoop(t, b)
}
