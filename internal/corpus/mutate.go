package corpus

// Dictionary-aware mutators. Unlike byte-level fuzzers, the mutation
// space here is the test_value_matrix: every parameter only ever takes
// values from its type's dictionary row, so mutants stay inside the data
// type fault model — they are datasets the exhaustive Eq. 1 campaign
// could have generated, reached in a coverage-directed order instead of
// enumeration order.

import (
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
)

// mutator identifiers, drawn by the scheduler.
const (
	mutSwap   = 0 // value swap within type: one parameter takes another dictionary value
	mutSplice = 1 // cross-parameter splice: crossover of two same-function parents
	mutNudge  = 2 // boundary nudge: step to a neighbouring or invalid dictionary value
	numMut    = 3
)

// mutateTuple derives a child tuple from parent (never mutated in
// place). Parameter-less functions have nothing to mutate and return
// nil, steering the scheduler to exploration.
func mutateTuple(rng *testgen.SplitMix64, m testgen.Matrix, parent []int, mate []int) []int {
	if len(parent) == 0 {
		return nil
	}
	child := append([]int(nil), parent...)
	switch rng.Intn(numMut) {
	case mutSwap:
		p := rng.Intn(len(child))
		row := m.Rows[p]
		if len(row) > 1 {
			// Draw among the other values so the swap always changes
			// something.
			v := rng.Intn(len(row) - 1)
			if v >= child[p] {
				v++
			}
			child[p] = v
		}
	case mutSplice:
		if mate != nil && len(mate) == len(child) {
			cut := 1 + rng.Intn(len(child))
			copy(child[cut:], mate[cut:])
		} else {
			// No second parent available: degrade to a swap.
			p := rng.Intn(len(child))
			if row := m.Rows[p]; len(row) > 1 {
				child[p] = rng.Intn(len(row))
			}
		}
	case mutNudge:
		p := rng.Intn(len(child))
		row := m.Rows[p]
		if inv := invalidIndices(row); len(inv) > 0 && rng.Next()&1 == 0 {
			// Jump straight to a definitely-invalid dictionary value —
			// the boundary-dense direction the fault model is built on.
			child[p] = inv[rng.Intn(len(inv))]
		} else {
			// Step to the neighbouring dictionary value (rows order
			// boundary values adjacently: MIN, MIN+1, …, MAX-1, MAX).
			step := 1
			if rng.Next()&1 == 0 {
				step = -1
			}
			v := child[p] + step
			if v < 0 {
				v = len(row) - 1
			}
			if v >= len(row) {
				v = 0
			}
			child[p] = v
		}
	}
	return child
}

// invalidIndices returns the row positions holding definitely-invalid
// dictionary values.
func invalidIndices(row []dict.Value) []int {
	var out []int
	for i, v := range row {
		if v.Validity == dict.Invalid {
			out = append(out, i)
		}
	}
	return out
}
