package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/cover"
	"xmrobust/internal/dict"
	"xmrobust/internal/store"
	"xmrobust/internal/testgen"
)

// testSuite builds the default spec's value matrices.
func testSuite(t *testing.T) []testgen.Matrix {
	t.Helper()
	var suite []testgen.Matrix
	for _, f := range apispec.Default().Tested() {
		m, err := testgen.BuildMatrix(f, dict.Builtin())
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, m)
	}
	return suite
}

// mapOf builds a coverage map over the given sites.
func mapOf(sites ...uint32) *cover.Map {
	m := &cover.Map{}
	for _, s := range sites {
		m.Hit(s)
	}
	return m
}

func TestStoreAdmission(t *testing.T) {
	suite := testSuite(t)
	s := NewStore(suite)
	tuple := make([]int, len(suite[0].Rows))

	newEdges, admitted := s.Admit(0, tuple, mapOf(1, 2, 3))
	if newEdges != 3 || !admitted {
		t.Fatalf("first Admit = (%d, %v), want (3, true)", newEdges, admitted)
	}
	// Same coverage, different dataset: nothing new, not admitted.
	tuple2 := append([]int(nil), tuple...)
	tuple2[len(tuple2)-1] = 1
	if n, ok := s.Admit(0, tuple2, mapOf(1, 2)); n != 0 || ok {
		t.Fatalf("redundant Admit = (%d, %v), want (0, false)", n, ok)
	}
	// New edge on an already-admitted dataset: frontier grows, no dup.
	if n, ok := s.Admit(0, tuple, mapOf(9)); n != 1 || ok {
		t.Fatalf("dup-dataset Admit = (%d, %v), want (1, false)", n, ok)
	}
	if s.Len() != 1 || s.Edges() != 4 {
		t.Fatalf("store has %d entries / %d edges, want 1 / 4", s.Len(), s.Edges())
	}
	if n, ok := s.Admit(0, tuple2, nil); n != 0 || ok {
		t.Fatalf("nil-coverage Admit = (%d, %v), want (0, false)", n, ok)
	}
}

func TestStorePersistence(t *testing.T) {
	suite := testSuite(t)
	path := filepath.Join(t.TempDir(), "corpus.jsonl")

	s := NewStore(suite)
	if err := s.AttachFile(path, "campaign-A"); err != nil {
		t.Fatal(err)
	}
	tupleA := make([]int, len(suite[0].Rows))
	tupleB := make([]int, len(suite[1].Rows))
	if v := len(suite[1].Rows[0]); v > 1 {
		tupleB[0] = 1
	}
	s.Admit(0, tupleA, mapOf(1, 2))
	s.Admit(1, tupleB, mapOf(3))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A different campaign loads both members as parents, without
	// coverage.
	s2 := NewStore(suite)
	if err := s2.AttachFile(path, "campaign-B"); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 || s2.Loaded() != 2 {
		t.Fatalf("reloaded corpus has %d entries (%d loaded), want 2 (2)", s2.Len(), s2.Loaded())
	}
	if s2.Edges() != 0 {
		t.Fatalf("reloaded corpus claims %d edges; coverage must be re-earned", s2.Edges())
	}
	got := s2.Entries()[0]
	if got.Fn != 0 || got.NewEdges != 2 {
		t.Fatalf("entry 0 = %+v, want Fn 0 NewEdges 2", got)
	}
	// Re-admitting a loaded member must not duplicate it in the file.
	s2.Admit(0, tupleA, mapOf(1, 2))
	if s2.Len() != 2 {
		t.Fatalf("re-admission duplicated a loaded entry")
	}
}

func TestStoreResumeSkipsOwnAdmissions(t *testing.T) {
	suite := testSuite(t)
	path := filepath.Join(t.TempDir(), "corpus.jsonl")

	s := NewStore(suite)
	if err := s.AttachFile(path, "campaign-A"); err != nil {
		t.Fatal(err)
	}
	tuple := make([]int, len(suite[0].Rows))
	s.Admit(0, tuple, mapOf(1, 2))
	s.Close()

	// The same campaign re-attaching (a checkpoint resume) must NOT see
	// its own earlier admissions as parents — it re-derives them — but
	// must remember they are already on disk.
	s2 := NewStore(suite)
	if err := s2.AttachFile(path, "campaign-A"); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 || s2.Loaded() != 0 {
		t.Fatalf("resume loaded %d entries (%d loaded), want 0", s2.Len(), s2.Loaded())
	}
	if _, admitted := s2.Admit(0, tuple, mapOf(1, 2)); !admitted {
		t.Fatal("re-derived admission rejected")
	}
	s2.Close()

	// The file must hold the entry exactly once despite two admissions.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fnName := suite[0].Func.Name
	if got := strings.Count(string(data), fnName); got != 1 {
		t.Fatalf("corpus file holds %d copies of the %s entry, want 1:\n%s", got, fnName, data)
	}
	// A different campaign still sees it as one parent.
	s3 := NewStore(suite)
	if err := s3.AttachFile(path, "campaign-B"); err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 1 {
		t.Fatalf("third campaign loaded %d parents, want 1", s3.Len())
	}
}

func TestStoreLoadSkipsTornAndStale(t *testing.T) {
	suite := testSuite(t)
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	content := `{"func":"NO_SUCH_HYPERCALL","tuple":[0]}
{"func":"` + suite[0].Func.Name + `","tuple":[0,0,0,0,0,0,0,0,0,0]}
{"func":"` + suite[0].Func.Name + `","tuple":` + tupleJSON(len(suite[0].Rows)) + `,"new_edges":5,"sig":"00000000000000aa"}
{"func":"` + suite[0].Func.Name + `","tu`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(suite)
	if err := s.AttachFile(path, "campaign-A"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("loaded %d entries, want 1 (unknown func, bad tuple and torn tail skipped)", s.Len())
	}
	if e := s.Entries()[0]; e.NewEdges != 5 || e.Sig != 0xaa {
		t.Fatalf("entry = %+v, want NewEdges 5 Sig 0xaa", e)
	}
}

// tupleJSON renders a zero tuple of length n.
func tupleJSON(n int) string {
	out := "["
	for i := 0; i < n; i++ {
		if i > 0 {
			out += ","
		}
		out += "0"
	}
	return out + "]"
}

func TestMutateTupleStaysInDictionary(t *testing.T) {
	suite := testSuite(t)
	rng := testgen.NewSplitMix64(42)
	for _, m := range suite {
		if len(m.Rows) == 0 {
			continue
		}
		parent := make([]int, len(m.Rows))
		mate := make([]int, len(m.Rows))
		for i, row := range m.Rows {
			mate[i] = len(row) - 1
		}
		for i := 0; i < 200; i++ {
			child := mutateTuple(&rng, m, parent, mate)
			if len(child) != len(m.Rows) {
				t.Fatalf("%s: child has %d params, want %d", m.Func.Name, len(child), len(m.Rows))
			}
			for p, v := range child {
				if v < 0 || v >= len(m.Rows[p]) {
					t.Fatalf("%s: child[%d] = %d outside row of %d", m.Func.Name, p, v, len(m.Rows[p]))
				}
			}
		}
	}
	// Parameter-less functions cannot be mutated.
	if got := mutateTuple(&rng, testgen.Matrix{}, nil, nil); got != nil {
		t.Fatalf("mutateTuple on no params = %v, want nil", got)
	}
}

func TestMutateTupleDeterministic(t *testing.T) {
	suite := testSuite(t)
	m := suite[0]
	parent := make([]int, len(m.Rows))
	a := testgen.NewSplitMix64(7)
	b := testgen.NewSplitMix64(7)
	for i := 0; i < 100; i++ {
		ca := mutateTuple(&a, m, parent, nil)
		cb := mutateTuple(&b, m, parent, nil)
		for p := range ca {
			if ca[p] != cb[p] {
				t.Fatalf("iteration %d: %v vs %v", i, ca, cb)
			}
		}
	}
}

// TestMergeFilesDeterministic: merging per-shard corpora dedupes by
// dataset, keeps first occurrence in src order, drops run markers, and
// yields byte-identical output regardless of how often it runs.
func TestMergeFilesDeterministic(t *testing.T) {
	suite := testSuite(t)
	dir := t.TempDir()
	shardA := filepath.Join(dir, "corpus.0.jsonl")
	shardB := filepath.Join(dir, "corpus.1.jsonl")
	dst := filepath.Join(dir, "corpus.jsonl")

	tupleA := make([]int, len(suite[0].Rows))
	tupleB := make([]int, len(suite[1].Rows))
	tupleC := append([]int(nil), tupleA...)
	tupleC[len(tupleC)-1] = 1

	sa := NewStore(suite)
	if err := sa.AttachFile(shardA, "shard-0"); err != nil {
		t.Fatal(err)
	}
	sa.Admit(0, tupleA, mapOf(1, 2))
	sa.Admit(1, tupleB, mapOf(3))
	sa.Close()

	sb := NewStore(suite)
	if err := sb.AttachFile(shardB, "shard-1"); err != nil {
		t.Fatal(err)
	}
	sb.Admit(0, tupleA, mapOf(1, 2)) // duplicate of shard 0's first member
	sb.Admit(0, tupleC, mapOf(4))
	sb.Close()

	cs := store.Local()
	n, err := MergeFiles(cs, dst, shardA, shardB)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("merged %d entries, want 3 (duplicate dropped)", n)
	}
	first, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(first), `"run"`) {
		t.Fatal("merged corpus still carries run markers")
	}

	// The merged file loads as plain parents for a new campaign.
	s := NewStore(suite)
	if err := s.AttachFile(dst, "campaign-merged"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if s.Loaded() != 3 {
		t.Fatalf("merged corpus loaded %d parents, want 3", s.Loaded())
	}

	// Re-merging produces the identical file: the merge is a rebuild,
	// not an append, and first-occurrence order is stable. (The load
	// above appended a run marker; the rebuild must discard it.)
	if _, err := MergeFiles(cs, dst, shardA, shardB); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(again) {
		t.Fatalf("re-merge changed the file:\n--- first\n%s--- again\n%s", first, again)
	}

	// A missing shard is an empty shard, not an error.
	if n, err := MergeFiles(cs, dst, shardA, filepath.Join(dir, "corpus.9.jsonl")); err != nil || n != 2 {
		t.Fatalf("merge with missing shard = (%d, %v), want (2, nil)", n, err)
	}
}
