package corpus

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"xmrobust/internal/cover"
	"xmrobust/internal/testgen"
)

// Stagnation is how many consecutive no-new-coverage results switch the
// scheduler from corpus mutation to uniform exploration of the Eq. 1
// space. The counter resets the moment any result finds a new edge, so a
// campaign alternates between exploiting productive parents and probing
// fresh territory.
const Stagnation = 32

// StrategyFeedback is the plan-spec name ("feedback:N").
const StrategyFeedback = "feedback"

func init() {
	testgen.RegisterPlanFactory(StrategyFeedback,
		func(suite []testgen.Matrix, arg string, seed int64, suiteHash string) (testgen.Plan, error) {
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("corpus: plan %q needs a positive test count, e.g. %q (got %q)",
					StrategyFeedback, StrategyFeedback+":300", arg)
			}
			return NewFeedbackPlan(suite, n, seed, suiteHash)
		})
	testgen.DescribePlan(StrategyFeedback,
		"feedback:N — coverage-guided loop: boundary seeds, then corpus-bred mutants")
}

// FeedbackPlan is the coverage-guided dynamic plan: dataset i beyond the
// seed schedule is bred from the corpus state after the coverage of all
// datasets < i has been folded in. At blocks until that feedback arrives
// (the campaign engine forwards it through the FeedbackSource interface),
// which serialises the mutation region — the price of a deterministic,
// byte-reproducible closed loop.
//
// The seed schedule is the boundary strategy's invalid-dense selection,
// capped at half the budget so at least half the campaign mutates.
// Checkpointed feedback campaigns resume through the engine replaying
// completed tests' coverage from the shard records; the corpus file (see
// UseCorpusFile) additionally carries admitted datasets across campaigns
// as mutation parents.
type FeedbackPlan struct {
	mu   sync.Mutex
	cond *sync.Cond

	suite  []testgen.Matrix
	starts []int64 // starts[i] = global exhaustive rank of suite[i]'s first dataset
	total  int64

	n        int
	strategy string
	fp       string

	seeds []testgen.Pick

	store *Store
	rng   testgen.SplitMix64

	// Emission state: what each generated position holds.
	gen     map[int]testgen.Dataset
	tuples  map[int][]int
	fns     map[int]int
	emitted map[entryKey]bool

	// Feedback state: coverage is applied strictly in position order so
	// the corpus evolution (and hence every bred dataset) is a pure
	// function of the seed and the executed datasets.
	pending  map[int]*cover.Map
	applied  int
	stagnant int
	history  []int // frontier size after each applied test
}

// NewFeedbackPlan builds a feedback plan of n tests over the suite.
func NewFeedbackPlan(suite []testgen.Matrix, n int, seed int64, suiteHash string) (*FeedbackPlan, error) {
	p := &FeedbackPlan{
		suite:    suite,
		n:        n,
		strategy: fmt.Sprintf("%s:%d", StrategyFeedback, n),
		fp:       fmt.Sprintf("%s:%d@%d/%s", StrategyFeedback, n, seed, suiteHash),
		store:    NewStore(suite),
		rng:      testgen.NewSplitMix64(seed),
		gen:      map[int]testgen.Dataset{},
		tuples:   map[int][]int{},
		fns:      map[int]int{},
		emitted:  map[entryKey]bool{},
		pending:  map[int]*cover.Map{},
	}
	p.cond = sync.NewCond(&p.mu)
	for _, m := range suite {
		p.starts = append(p.starts, p.total)
		p.total += m.Combinations64()
	}
	if p.total <= 0 {
		return nil, fmt.Errorf("corpus: plan %q needs a non-empty suite", StrategyFeedback)
	}
	// Interleave the boundary picks round-robin across functions before
	// capping: a truncated in-order schedule would spend the whole seed
	// budget on the first few hypercalls and leave the rest of the ABI
	// to stagnation-driven exploration.
	p.seeds = interleaveByFn(testgen.BoundaryPicks(suite), len(suite))
	if limit := (n + 1) / 2; len(p.seeds) > limit {
		p.seeds = p.seeds[:limit]
	}
	return p, nil
}

// UseCorpusFile attaches a JSON Lines corpus file: datasets admitted by
// other campaigns load as mutation parents and new admissions append as
// they happen, so the corpus survives interruptions and compounds
// across campaigns. The file is partitioned by run markers carrying the
// plan fingerprint, so a checkpoint resume recognises (and re-derives,
// rather than re-loads) its own earlier admissions — see Feedback.
func (p *FeedbackPlan) UseCorpusFile(path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.AttachFile(path, p.fp)
}

// Close releases the corpus file (no-op without one).
func (p *FeedbackPlan) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.Close()
}

// Strategy returns the canonical plan spec ("feedback:N").
func (p *FeedbackPlan) Strategy() string { return p.strategy }

// Len returns the campaign budget N.
func (p *FeedbackPlan) Len() int { return p.n }

// Suite returns the per-function value matrices.
func (p *FeedbackPlan) Suite() []testgen.Matrix { return p.suite }

// Fingerprint identifies the plan: strategy, seed and suite content.
// Unlike static plans the emitted datasets are not a function of the
// fingerprint alone — they also depend on execution coverage — but for a
// deterministic kernel that coverage is itself determined by the same
// identity, which is what makes checkpoint resume sound.
func (p *FeedbackPlan) Fingerprint() string { return p.fp }

// Dynamic marks the plan as execution-driven (see testgen.IsDynamic).
func (p *FeedbackPlan) Dynamic() bool { return true }

// At returns dataset i. Seed positions are available immediately; bred
// positions block until the coverage of every earlier dataset has been
// fed back.
func (p *FeedbackPlan) At(i int) testgen.Dataset {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ds, ok := p.gen[i]; ok {
		return ds
	}
	if i < len(p.seeds) {
		pk := p.seeds[i]
		return p.emit(i, pk.Fn, p.suite[pk.Fn].TupleAt(pk.Rank))
	}
	for p.applied < i {
		p.cond.Wait()
	}
	fn, tuple := p.breed()
	return p.emit(i, fn, tuple)
}

// emit records position i's dataset (caller holds the lock).
func (p *FeedbackPlan) emit(i, fn int, tuple []int) testgen.Dataset {
	m := p.suite[fn]
	rank := m.RankOf(tuple)
	ds := m.DatasetAt(rank)
	p.gen[i] = ds
	p.tuples[i] = tuple
	p.fns[i] = fn
	p.emitted[entryKey{fn: fn, rank: rank}] = true
	return ds
}

// interleaveByFn reorders picks round-robin by function, preserving each
// function's internal order.
func interleaveByFn(picks []testgen.Pick, numFn int) []testgen.Pick {
	byFn := make([][]testgen.Pick, numFn)
	for _, pk := range picks {
		byFn[pk.Fn] = append(byFn[pk.Fn], pk)
	}
	out := make([]testgen.Pick, 0, len(picks))
	for round := 0; len(out) < len(picks); round++ {
		for _, fps := range byFn {
			if round < len(fps) {
				out = append(out, fps[round])
			}
		}
	}
	return out
}

// explore draws one dataset uniformly from the exhaustive space (caller
// holds the lock).
func (p *FeedbackPlan) explore() (int, []int) {
	rank := p.rng.Int63n(p.total)
	fn := sort.Search(len(p.starts), func(i int) bool { return p.starts[i] > rank }) - 1
	return fn, p.suite[fn].TupleAt(rank - p.starts[fn])
}

// breed derives the next dataset from the corpus state (caller holds the
// lock): an ε-greedy schedule that mostly mutates a corpus parent but
// spends every fourth draw exploring the exhaustive space uniformly, so
// regions no seed reached still get probed. When the corpus is empty or
// Stagnation consecutive results found nothing new, every draw explores.
// Repeated datasets are skipped for a bounded number of attempts —
// re-running a dataset cannot light new edges on a deterministic kernel.
func (p *FeedbackPlan) breed() (int, []int) {
	entries := p.store.Entries()
	for attempt := 0; attempt < 8; attempt++ {
		var fn int
		var tuple []int
		switch {
		case len(entries) == 0 || p.stagnant >= Stagnation || p.rng.Intn(4) == 0:
			fn, tuple = p.explore()
		default:
			parent := entries[p.rng.Intn(len(entries))]
			fn = parent.Fn
			tuple = mutateTuple(&p.rng, p.suite[fn], parent.Tuple, p.mateFor(entries, fn))
			if tuple == nil { // parameter-less parent: nothing to mutate
				fn, tuple = p.explore()
			}
		}
		if !p.emitted[entryKey{fn: fn, rank: p.suite[fn].RankOf(tuple)}] {
			return fn, tuple
		}
	}
	return p.explore()
}

// mateFor picks a second parent of the same function for the splice
// mutator, scanning from a random offset so mates vary (one rng draw,
// deterministic). Returns nil when the corpus has no other candidate.
func (p *FeedbackPlan) mateFor(entries []Entry, fn int) []int {
	if len(entries) < 2 {
		return nil
	}
	off := p.rng.Intn(len(entries))
	for k := 0; k < len(entries); k++ {
		if e := entries[(off+k)%len(entries)]; e.Fn == fn {
			return e.Tuple
		}
	}
	return nil
}

// Feedback folds one executed test's coverage into the loop. Arrival
// order is free — the campaign engine delivers in completion order — but
// application happens strictly in position order, buffering gaps, so the
// corpus evolution is reproducible. A nil map (a test that produced no
// coverage, e.g. a harness error) counts as an unproductive round.
// Feedback satisfies the campaign engine's FeedbackSource interface.
//
// On checkpoint resume the engine replays the completed tests' coverage
// from the shard records before dispatching anything. Positions this
// plan instance never emitted are regenerated on the spot as their
// feedback is applied: breeding is a pure function of the seed and the
// feedback prefix, so the regeneration consumes the rng exactly as the
// interrupted run did and the plan state (rng position, emitted set,
// corpus) lands where the original left off — the rng-state checkpoint
// is recomputed rather than persisted.
func (p *FeedbackPlan) Feedback(pos int, cov *cover.Map) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pos < p.applied || pos >= p.n {
		return
	}
	if _, dup := p.pending[pos]; dup {
		return
	}
	if cov == nil {
		cov = &cover.Map{}
	}
	p.pending[pos] = cov
	for {
		c, ok := p.pending[p.applied]
		if !ok {
			break
		}
		delete(p.pending, p.applied)
		i := p.applied
		if _, emitted := p.gen[i]; !emitted {
			// Replay of a completed test from an earlier run: re-derive
			// its dataset through the same deterministic schedule.
			if i < len(p.seeds) {
				pk := p.seeds[i]
				p.emit(i, pk.Fn, p.suite[pk.Fn].TupleAt(pk.Rank))
			} else {
				fn, tuple := p.breed()
				p.emit(i, fn, tuple)
			}
		}
		p.apply(i, c)
		p.applied++
	}
	p.cond.Broadcast()
}

// apply admits one result in position order (caller holds the lock).
func (p *FeedbackPlan) apply(pos int, cov *cover.Map) {
	newEdges, _ := p.store.Admit(p.fns[pos], p.tuples[pos], cov)
	if newEdges > 0 {
		p.stagnant = 0
	} else {
		p.stagnant++
	}
	p.history = append(p.history, p.store.Edges())
}

// Stats is the feedback loop's own accounting, rendered by the report
// layer's coverage section.
type Stats struct {
	// Edges is the coverage frontier size; Signature its stable hash.
	Edges     int
	Signature uint64
	// Corpus members (Loaded of them from the corpus file), the seed
	// schedule length, and how many results have been folded in.
	Corpus   int
	Loaded   int
	Seeds    int
	Executed int
	// History is the frontier size after each applied test — the
	// edges-discovered-over-time curve.
	History []int
}

// Stats snapshots the loop.
func (p *FeedbackPlan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Edges:     p.store.Edges(),
		Signature: p.store.Coverage().Signature(),
		Corpus:    p.store.Len(),
		Loaded:    p.store.Loaded(),
		Seeds:     len(p.seeds),
		Executed:  p.applied,
		History:   append([]int(nil), p.history...),
	}
}
