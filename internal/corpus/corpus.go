// Package corpus implements the coverage-deduplicated corpus store and
// the coverage-guided feedback plan — the closed loop the static test
// plans lack. Datasets whose execution lights up kernel edges no earlier
// dataset did are admitted to the corpus; dictionary-aware mutators breed
// new datasets from admitted parents under a deterministic
// splitmix64-seeded schedule, so a seeded feedback campaign is
// byte-reproducible. The corpus persists to a JSON Lines file: a later
// campaign loads it and starts mutating from the previously productive
// datasets instead of from scratch.
//
// The feedback plan registers itself in the testgen strategy registry as
// "feedback:N"; the campaign engine recognises it through the
// FeedbackSource interface and forwards every result's coverage map back
// into the loop.
package corpus

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"xmrobust/internal/cover"
	"xmrobust/internal/store"
	"xmrobust/internal/testgen"
)

// Entry is one admitted corpus member: a dataset identified by its value
// tuple, with the coverage evidence that earned its admission.
type Entry struct {
	// Fn is the function's index in the plan suite; Tuple holds one
	// value index per parameter (the mutators' substrate).
	Fn    int
	Tuple []int
	// NewEdges is how many kernel edges were first seen on this entry's
	// run; Sig is that run's full coverage signature.
	NewEdges int
	Sig      uint64
}

// entryKey dedupes entries by dataset identity.
type entryKey struct {
	fn   int
	rank int64
}

// Store is the coverage-deduplicated corpus: the global coverage
// frontier plus every dataset that extended it. With a file attached,
// admissions append to the JSON Lines corpus file as they happen, so an
// interrupted campaign's corpus survives.
type Store struct {
	suite   []testgen.Matrix
	global  cover.Map
	entries []Entry
	seen    map[entryKey]bool
	// persisted keys are already on disk; re-admissions (a resumed run
	// deterministically re-deriving its own earlier admissions) must
	// not duplicate them in the file.
	persisted map[entryKey]bool
	loaded    int

	file io.WriteCloser
	bw   *bufio.Writer
}

// NewStore returns an empty corpus over the suite.
func NewStore(suite []testgen.Matrix) *Store {
	return &Store{suite: suite, seen: map[entryKey]bool{}, persisted: map[entryKey]bool{}}
}

// Admit merges a run's coverage into the frontier. If the run found new
// edges and the dataset is not already a member, it joins the corpus
// (and the corpus file, when attached). Admit tolerates a nil map — a
// run that produced no coverage cannot be productive.
func (s *Store) Admit(fn int, tuple []int, cov *cover.Map) (newEdges int, admitted bool) {
	if cov == nil {
		return 0, false
	}
	newEdges = s.global.Merge(cov)
	if newEdges == 0 {
		return 0, false
	}
	key := entryKey{fn: fn, rank: s.suite[fn].RankOf(tuple)}
	if s.seen[key] {
		return newEdges, false
	}
	s.seen[key] = true
	e := Entry{Fn: fn, Tuple: append([]int(nil), tuple...), NewEdges: newEdges, Sig: cov.Signature()}
	s.entries = append(s.entries, e)
	s.persist(e, key)
	return newEdges, true
}

// Entries returns the corpus members in admission order (loaded entries
// first). The slice is shared; callers must not mutate it.
func (s *Store) Entries() []Entry { return s.entries }

// Len returns the corpus size.
func (s *Store) Len() int { return len(s.entries) }

// Loaded returns how many members came from the corpus file.
func (s *Store) Loaded() int { return s.loaded }

// Edges returns the size of the coverage frontier.
func (s *Store) Edges() int { return s.global.Count() }

// Coverage returns the global coverage frontier (shared, do not mutate).
func (s *Store) Coverage() *cover.Map { return &s.global }

// fileEntry is the JSON Lines form of one corpus line: either an
// admitted member, or a run marker (Run set, everything else empty)
// separating campaigns. The function travels by name so a corpus file
// survives spec reordering; tuples are validated against the current
// dictionary on load.
type fileEntry struct {
	// Run marks the start of the named campaign's admissions. On load,
	// entries following a marker that matches the attaching campaign's
	// own id are NOT used as mutation parents: they are that campaign's
	// own earlier admissions, which a checkpoint resume re-derives
	// deterministically — pre-loading them would change the breeding
	// schedule and break exact replay.
	Run      string `json:"run,omitempty"`
	Func     string `json:"func,omitempty"`
	Tuple    []int  `json:"tuple,omitempty"`
	NewEdges int    `json:"new_edges,omitempty"`
	Sig      string `json:"sig,omitempty"`
}

// AttachFile loads the corpus file at path (if it exists) and opens it
// for appending admissions under the given campaign id (the plan
// fingerprint). Members admitted by other campaigns join the corpus as
// mutation parents; members this campaign admitted in an interrupted
// earlier attempt are only remembered as already-persisted, so the
// resumed run re-derives them without duplicating file lines. Entries
// whose function or tuple no longer fits the current suite are skipped
// (the file may predate a dictionary change). The global frontier is
// NOT rebuilt from the file — coverage is a property of execution, and
// the loop re-earns it by running mutations of the loaded parents.
func (s *Store) AttachFile(path, runID string) error {
	return s.AttachStore(store.Local(), path, runID)
}

// AttachStore is AttachFile over an explicit corpus store — the seam a
// campaign whose corpus lives off the local disk attaches through.
func (s *Store) AttachStore(cs store.CorpusStore, path, runID string) error {
	fnOf := map[string]int{}
	for i, m := range s.suite {
		fnOf[m.Func.Name] = i
	}
	data, err := cs.ReadCorpus(path)
	switch {
	case errors.Is(err, store.ErrNotExist):
		// A fresh corpus.
	case err != nil:
		return fmt.Errorf("corpus: %w", err)
	default:
		ownRun := false
		dec := json.NewDecoder(bytes.NewReader(data))
		for dec.More() {
			var fe fileEntry
			if err := dec.Decode(&fe); err != nil {
				// A torn trailing line from an interrupted run: the
				// remaining entries are unrecoverable but the corpus is
				// still usable.
				break
			}
			if fe.Run != "" {
				ownRun = fe.Run == runID
				continue
			}
			fn, ok := fnOf[fe.Func]
			if !ok || !tupleFits(s.suite[fn], fe.Tuple) {
				continue
			}
			key := entryKey{fn: fn, rank: s.suite[fn].RankOf(fe.Tuple)}
			if s.persisted[key] {
				continue
			}
			s.persisted[key] = true
			if ownRun {
				continue
			}
			s.seen[key] = true
			var sig uint64
			fmt.Sscanf(fe.Sig, "%016x", &sig)
			s.entries = append(s.entries, Entry{Fn: fn, Tuple: fe.Tuple, NewEdges: fe.NewEdges, Sig: sig})
			s.loaded++
		}
	}
	f, err := cs.AppendCorpus(path)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	s.file = f
	s.bw = bufio.NewWriter(f)
	line, _ := json.Marshal(fileEntry{Run: runID})
	s.bw.Write(append(line, '\n'))
	return s.bw.Flush()
}

// persist appends one admission to the corpus file, flushed per entry so
// an interruption loses at most the line being written (which the loader
// skips as a torn tail). Admissions already on disk — a resumed run
// re-deriving its earlier attempt's corpus — are not duplicated.
func (s *Store) persist(e Entry, key entryKey) {
	if s.file == nil || s.persisted[key] {
		return
	}
	s.persisted[key] = true
	line, _ := json.Marshal(fileEntry{
		Func:     s.suite[e.Fn].Func.Name,
		Tuple:    e.Tuple,
		NewEdges: e.NewEdges,
		Sig:      fmt.Sprintf("%016x", e.Sig),
	})
	s.bw.Write(append(line, '\n'))
	s.bw.Flush()
}

// Close releases the corpus file handle (no-op without one).
func (s *Store) Close() error {
	if s.file == nil {
		return nil
	}
	s.bw.Flush()
	err := s.file.Close()
	s.file, s.bw = nil, nil
	return err
}

// MergeFiles merges per-shard corpus files into one, deduplicating by
// dataset identity (function name + value tuple) and keeping each
// dataset's first occurrence in src-list order — so the merge is a pure
// function of the source list, and a fleet of workers that each grew a
// private corpus (the graceful degradation of feedback campaigns over
// targets that cannot share one file) combine into the same merged
// corpus on every machine that runs the merge. Run markers are dropped:
// the merged file is a pool of mutation parents, not a resume journal.
// Torn trailing lines of a source are skipped, like on attach. The
// destination is truncated, not appended — merging is a rebuild.
func MergeFiles(cs store.CorpusStore, dst string, srcs ...string) (int, error) {
	type key struct {
		fn    string
		tuple string
	}
	seen := map[key]bool{}
	var out bytes.Buffer
	n := 0
	for _, src := range srcs {
		data, err := cs.ReadCorpus(src)
		if errors.Is(err, store.ErrNotExist) {
			continue
		}
		if err != nil {
			return 0, fmt.Errorf("corpus: merge %s: %w", src, err)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		for dec.More() {
			var fe fileEntry
			if err := dec.Decode(&fe); err != nil {
				break // torn trailing line
			}
			if fe.Run != "" {
				continue
			}
			k := key{fn: fe.Func, tuple: fmt.Sprint(fe.Tuple)}
			if seen[k] {
				continue
			}
			seen[k] = true
			line, _ := json.Marshal(fe)
			out.Write(append(line, '\n'))
			n++
		}
	}
	// Rebuild via the checkpoint surface: CreateCheckpoint is the store's
	// truncate-and-write primitive, and a corpus rebuild wants exactly
	// that, not an append.
	w, err := createCorpus(cs, dst)
	if err != nil {
		return 0, fmt.Errorf("corpus: merge: %w", err)
	}
	if _, err := w.Write(out.Bytes()); err != nil {
		w.Close()
		return 0, fmt.Errorf("corpus: merge: %w", err)
	}
	return n, w.Close()
}

// createCorpus truncates dst. Stores expose truncation on the
// checkpoint surface; plain CorpusStores fall back to remove-and-append
// when they also serve logs, and append-only stores merge additively.
func createCorpus(cs store.CorpusStore, dst string) (io.WriteCloser, error) {
	if c, ok := cs.(store.CheckpointStore); ok {
		return c.CreateCheckpoint(dst)
	}
	if l, ok := cs.(store.LogStore); ok {
		if err := l.RemoveLog(dst); err != nil {
			return nil, err
		}
	}
	return cs.AppendCorpus(dst)
}

// tupleFits validates a tuple against a matrix's shape.
func tupleFits(m testgen.Matrix, tuple []int) bool {
	if len(tuple) != len(m.Rows) {
		return false
	}
	for i, v := range tuple {
		if v < 0 || v >= len(m.Rows[i]) {
			return false
		}
	}
	return true
}
