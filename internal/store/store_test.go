package store

import (
	"errors"
	"io"
	"path/filepath"
	"testing"
)

// stores builds one instance of every implementation, rooted so FS names
// stay inside the test's temp directory.
func stores(t *testing.T) map[string]struct {
	s    Store
	name func(string) string
} {
	t.Helper()
	dir := t.TempDir()
	return map[string]struct {
		s    Store
		name func(string) string
	}{
		"fs":  {Local(), func(n string) string { return filepath.Join(dir, n) }},
		"mem": {NewMem(), func(n string) string { return n }},
	}
}

func writeAll(t *testing.T, w io.WriteCloser, data string) {
	t.Helper()
	if _, err := w.Write([]byte(data)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for impl, st := range stores(t) {
		t.Run(impl, func(t *testing.T) {
			name := st.name("ckpt/checkpoint.jsonl")
			if _, err := st.s.ReadCheckpoint(name); !errors.Is(err, ErrNotExist) {
				t.Fatalf("missing checkpoint: got %v, want ErrNotExist", err)
			}
			w, err := st.s.CreateCheckpoint(name)
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			writeAll(t, w, "header\n")
			w, err = st.s.AppendCheckpoint(name)
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			writeAll(t, w, "mark1\nmark2\n")
			data, err := st.s.ReadCheckpoint(name)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if got, want := string(data), "header\nmark1\nmark2\n"; got != want {
				t.Fatalf("contents %q, want %q", got, want)
			}
			// Create truncates: a fresh campaign must not inherit marks.
			w, err = st.s.CreateCheckpoint(name)
			if err != nil {
				t.Fatalf("re-create: %v", err)
			}
			writeAll(t, w, "header2\n")
			data, _ = st.s.ReadCheckpoint(name)
			if got, want := string(data), "header2\n"; got != want {
				t.Fatalf("after re-create %q, want %q", got, want)
			}
		})
	}
}

func TestLogAppendListRemove(t *testing.T) {
	for impl, st := range stores(t) {
		t.Run(impl, func(t *testing.T) {
			for _, n := range []string{"d/shard-000.jsonl", "d/shard-001.jsonl"} {
				w, err := st.s.AppendLog(st.name(n), false)
				if err != nil {
					t.Fatalf("append %s: %v", n, err)
				}
				writeAll(t, w, "{}\n")
			}
			names, err := st.s.ListLogs(st.name("d/shard-*.jsonl"))
			if err != nil {
				t.Fatalf("list: %v", err)
			}
			if len(names) != 2 {
				t.Fatalf("list: got %v, want 2 shards", names)
			}
			if err := st.s.RemoveLog(names[0]); err != nil {
				t.Fatalf("remove: %v", err)
			}
			if err := st.s.RemoveLog(names[0]); err != nil {
				t.Fatalf("remove absent: %v", err)
			}
			names, _ = st.s.ListLogs(st.name("d/shard-*.jsonl"))
			if len(names) != 1 {
				t.Fatalf("after remove: got %v, want 1 shard", names)
			}
		})
	}
}

func TestLogTrimTornTail(t *testing.T) {
	for impl, st := range stores(t) {
		t.Run(impl, func(t *testing.T) {
			name := st.name("shard-000.jsonl")
			w, err := st.s.AppendLog(name, false)
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			writeAll(t, w, "{\"seq\":0}\n{\"seq\":1}\n{\"se") // torn tail
			w, err = st.s.AppendLog(name, true)
			if err != nil {
				t.Fatalf("append with trim: %v", err)
			}
			writeAll(t, w, "{\"seq\":2}\n")
			r, err := st.s.OpenLog(name)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			data, _ := io.ReadAll(r)
			r.Close()
			if got, want := string(data), "{\"seq\":0}\n{\"seq\":1}\n{\"seq\":2}\n"; got != want {
				t.Fatalf("contents %q, want %q", got, want)
			}
		})
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	for impl, st := range stores(t) {
		t.Run(impl, func(t *testing.T) {
			name := st.name("corpus/corpus.jsonl")
			if _, err := st.s.ReadCorpus(name); !errors.Is(err, ErrNotExist) {
				t.Fatalf("missing corpus: got %v, want ErrNotExist", err)
			}
			w, err := st.s.AppendCorpus(name)
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			writeAll(t, w, "{\"run\":\"a\"}\n")
			w, _ = st.s.AppendCorpus(name)
			writeAll(t, w, "{\"func\":\"f\"}\n")
			data, err := st.s.ReadCorpus(name)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if got, want := string(data), "{\"run\":\"a\"}\n{\"func\":\"f\"}\n"; got != want {
				t.Fatalf("contents %q, want %q", got, want)
			}
		})
	}
}
