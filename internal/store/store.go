// Package store is the persistence seam of the campaign stack: every
// byte a campaign durably writes — checkpoint marks, log shards, corpus
// admissions — flows through one of three narrow interfaces instead of
// direct file I/O. The local filesystem implementation (FS) reproduces
// exactly what the engine did before the seam existed; the in-memory
// implementation (Mem) backs tests and embedders that want no disk at
// all. The seam is what lets shards live on different machines: a
// distributed campaign points the engine at a store whose names resolve
// somewhere else, and resume, merge and feedback keep working because
// none of them ever knew about *os.File.
//
// All three interfaces speak names, not paths: a name is an opaque
// string the store resolves (the FS store treats it as a filesystem
// path). Append-oriented writes return an io.WriteCloser; durability
// per write is the implementation's contract (FS hands out unbuffered
// *os.File appends, so each Write is one syscall, exactly what the
// checkpoint's mark-after-record protocol needs).
package store

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotExist is returned (possibly wrapped) when a named object is
// absent. It aliases fs.ErrNotExist so errors.Is works across FS and
// Mem uniformly.
var ErrNotExist = fs.ErrNotExist

// CheckpointStore persists campaign checkpoints: a header line followed
// by completion marks, append-only within one run.
type CheckpointStore interface {
	// ReadCheckpoint returns the full checkpoint contents, or an error
	// wrapping ErrNotExist when none was ever written.
	ReadCheckpoint(name string) ([]byte, error)
	// CreateCheckpoint truncates (or creates) the checkpoint and returns
	// a writer positioned at its start.
	CreateCheckpoint(name string) (io.WriteCloser, error)
	// AppendCheckpoint opens an existing checkpoint for appending marks.
	AppendCheckpoint(name string) (io.WriteCloser, error)
}

// LogStore persists campaign log shards: append-only JSON Lines files,
// listed by pattern for the merge and scan paths.
type LogStore interface {
	// ListLogs returns the names matching pattern (path.Match syntax on
	// the last name element), sorted.
	ListLogs(pattern string) ([]string, error)
	// OpenLog opens a shard for reading (ErrNotExist when absent).
	OpenLog(name string) (io.ReadCloser, error)
	// AppendLog opens (creating if necessary) a shard for appending.
	// With trimTorn, the shard is first truncated back to its last
	// newline-terminated record: an interrupted run can leave a partial
	// record at the tail, and appending after the fragment would corrupt
	// the shard mid-file, where readers cannot skip it.
	AppendLog(name string, trimTorn bool) (io.WriteCloser, error)
	// RemoveLog deletes a shard (nil when already absent).
	RemoveLog(name string) error
}

// CorpusStore persists the feedback corpus: a JSON Lines file of
// admitted datasets, read whole on attach and appended per admission.
type CorpusStore interface {
	// ReadCorpus returns the full corpus contents, or an error wrapping
	// ErrNotExist when none was ever written.
	ReadCorpus(name string) ([]byte, error)
	// AppendCorpus opens (creating if necessary) the corpus for
	// appending admissions.
	AppendCorpus(name string) (io.WriteCloser, error)
}

// Store is the full persistence surface a campaign needs.
type Store interface {
	CheckpointStore
	LogStore
	CorpusStore
}

// --- local filesystem ---------------------------------------------------

// FS is the local-filesystem store: names are ordinary paths, and every
// operation is the direct file I/O the engine performed before the seam
// existed — byte-for-byte the same files in the same places.
type FS struct{}

// Local returns the local-filesystem store.
func Local() FS { return FS{} }

// ReadCheckpoint reads the checkpoint file whole.
func (FS) ReadCheckpoint(name string) ([]byte, error) { return os.ReadFile(name) }

// CreateCheckpoint truncates or creates the checkpoint file, making
// parent directories as needed.
func (FS) CreateCheckpoint(name string) (io.WriteCloser, error) {
	if dir := filepath.Dir(name); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.Create(name)
}

// AppendCheckpoint opens the checkpoint file for appending marks.
func (FS) AppendCheckpoint(name string) (io.WriteCloser, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}

// ListLogs globs the pattern against the filesystem.
func (FS) ListLogs(pattern string) ([]string, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// OpenLog opens a shard file for reading.
func (FS) OpenLog(name string) (io.ReadCloser, error) { return os.Open(name) }

// AppendLog opens a shard file for appending, creating parent
// directories as needed and, with trimTorn, truncating a partial
// trailing record first.
func (FS) AppendLog(name string, trimTorn bool) (io.WriteCloser, error) {
	if dir := filepath.Dir(name); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	if trimTorn {
		if err := trimTornTail(name); err != nil {
			return nil, err
		}
	}
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// RemoveLog deletes a shard file (nil when already absent).
func (FS) RemoveLog(name string) error {
	err := os.Remove(name)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// ReadCorpus reads the corpus file whole.
func (FS) ReadCorpus(name string) ([]byte, error) { return os.ReadFile(name) }

// AppendCorpus opens the corpus file for appending admissions, creating
// parent directories as needed.
func (FS) AppendCorpus(name string) (io.WriteCloser, error) {
	if dir := filepath.Dir(name); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// trimTornTail truncates a file back to its last complete
// (newline-terminated) record before new records are appended.
func trimTornTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return err
	}
	// Walk back from the end to the last newline.
	const chunk = 4096
	end := st.Size()
	last := []byte{0}
	if _, err := f.ReadAt(last, end-1); err != nil {
		return err
	}
	if last[0] == '\n' {
		return nil
	}
	keep := int64(0)
	for off := end; off > 0; {
		n := int64(chunk)
		if n > off {
			n = off
		}
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, off-n); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			keep = off - n + int64(i) + 1
			break
		}
		off -= n
	}
	return f.Truncate(keep)
}

// --- in-memory ----------------------------------------------------------

// Mem is the in-memory store: every object is a byte buffer behind one
// mutex. It backs tests, and campaigns that want the streaming engine's
// semantics (sharded logs, checkpoint resume) without a filesystem.
type Mem struct {
	mu      sync.Mutex
	objects map[string]*memObject
}

type memObject struct {
	mu   sync.Mutex
	data []byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{objects: map[string]*memObject{}} }

func (m *Mem) get(name string) *memObject {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.objects[name]
}

func (m *Mem) ensure(name string) *memObject {
	m.mu.Lock()
	defer m.mu.Unlock()
	o := m.objects[name]
	if o == nil {
		o = &memObject{}
		m.objects[name] = o
	}
	return o
}

func (m *Mem) read(name string) ([]byte, error) {
	o := m.get(name)
	if o == nil {
		return nil, fmt.Errorf("store: %s: %w", name, ErrNotExist)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]byte(nil), o.data...), nil
}

// memWriter appends to its object under the object lock per Write — the
// in-memory analogue of an O_APPEND file descriptor.
type memWriter struct{ o *memObject }

func (w memWriter) Write(p []byte) (int, error) {
	w.o.mu.Lock()
	w.o.data = append(w.o.data, p...)
	w.o.mu.Unlock()
	return len(p), nil
}

func (w memWriter) Close() error { return nil }

// ReadCheckpoint returns a copy of the checkpoint buffer.
func (m *Mem) ReadCheckpoint(name string) ([]byte, error) { return m.read(name) }

// CreateCheckpoint truncates or creates the checkpoint buffer.
func (m *Mem) CreateCheckpoint(name string) (io.WriteCloser, error) {
	o := m.ensure(name)
	o.mu.Lock()
	o.data = o.data[:0]
	o.mu.Unlock()
	return memWriter{o}, nil
}

// AppendCheckpoint opens the checkpoint buffer for appending.
func (m *Mem) AppendCheckpoint(name string) (io.WriteCloser, error) {
	o := m.get(name)
	if o == nil {
		return nil, fmt.Errorf("store: %s: %w", name, ErrNotExist)
	}
	return memWriter{o}, nil
}

// ListLogs matches the pattern against the stored names (the same
// filepath.Match semantics the FS store gets from Glob).
func (m *Mem) ListLogs(pattern string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name := range m.objects {
		ok, err := filepath.Match(pattern, name)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// OpenLog opens a shard buffer for reading.
func (m *Mem) OpenLog(name string) (io.ReadCloser, error) {
	data, err := m.read(name)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// AppendLog opens (creating if necessary) a shard buffer for appending,
// trimming a torn trailing record first when asked.
func (m *Mem) AppendLog(name string, trimTorn bool) (io.WriteCloser, error) {
	o := m.ensure(name)
	if trimTorn {
		o.mu.Lock()
		if i := bytes.LastIndexByte(o.data, '\n'); i >= 0 {
			o.data = o.data[:i+1]
		} else {
			o.data = o.data[:0]
		}
		o.mu.Unlock()
	}
	return memWriter{o}, nil
}

// RemoveLog deletes a shard buffer (nil when already absent).
func (m *Mem) RemoveLog(name string) error {
	m.mu.Lock()
	delete(m.objects, name)
	m.mu.Unlock()
	return nil
}

// ReadCorpus returns a copy of the corpus buffer.
func (m *Mem) ReadCorpus(name string) ([]byte, error) { return m.read(name) }

// AppendCorpus opens (creating if necessary) the corpus buffer for
// appending.
func (m *Mem) AppendCorpus(name string) (io.WriteCloser, error) {
	return memWriter{m.ensure(name)}, nil
}

// Names returns every stored object name, sorted — a test and debugging
// surface.
func (m *Mem) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.objects))
	for n := range m.objects {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// statically assert both implementations satisfy the full surface.
var (
	_ Store = FS{}
	_ Store = (*Mem)(nil)
)

// Join builds a store name from components with the path separator the
// FS store expects; other stores treat the result as an opaque name.
func Join(elem ...string) string { return filepath.Join(elem...) }

// Base returns the last element of a store name.
func Base(name string) string {
	if i := strings.LastIndexByte(name, filepath.Separator); i >= 0 {
		return name[i+1:]
	}
	return name
}
