// Package testgen implements the test-generation pipeline of paper
// Fig. 4/Fig. 5: from a hypercall signature (apispec) and the data-type
// dictionaries (dict), it builds the test_value_matrix, enumerates every
// dataset combination (Eq. 1: combinations = Π n_i over the parameters),
// and renders each dataset as a mutant source — the single-hypercall fault
// placeholder compiled into the test partition.
package testgen

import (
	"fmt"
	"strings"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
)

// Matrix is the test_value_matrix of paper Fig. 5: one row of candidate
// values per parameter of the hypercall under test.
type Matrix struct {
	Func apispec.Function
	Rows [][]dict.Value
}

// BuildMatrix resolves each parameter of the function to its value row:
// the named override set when the spec requests one, the parameter type's
// dictionary set otherwise.
func BuildMatrix(f apispec.Function, d *dict.Dictionary) (Matrix, error) {
	m := Matrix{Func: f}
	for _, p := range f.Params {
		var vals []dict.Value
		if p.ValueSet != "" {
			ns, ok := d.Named(p.ValueSet)
			if !ok {
				return Matrix{}, fmt.Errorf("testgen: %s/%s: unknown value set %q", f.Name, p.Name, p.ValueSet)
			}
			vals = ns.Values
		} else {
			ts, ok := d.Type(p.Type)
			if !ok {
				return Matrix{}, fmt.Errorf("testgen: %s/%s: no dictionary for type %q", f.Name, p.Name, p.Type)
			}
			vals = ts.Values
		}
		if len(vals) == 0 {
			return Matrix{}, fmt.Errorf("testgen: %s/%s: empty value row", f.Name, p.Name)
		}
		m.Rows = append(m.Rows, vals)
	}
	return m, nil
}

// Combinations returns Eq. 1 of the paper: the product of the row sizes.
// A parameter-less hypercall has exactly one (empty) dataset.
func (m Matrix) Combinations() int {
	n := 1
	for _, row := range m.Rows {
		n *= len(row)
	}
	return n
}

// Dataset is one generated test dataset: one value per parameter.
type Dataset struct {
	Func   apispec.Function
	Index  int // position in generation order
	Values []dict.Value
}

// String renders the dataset as the call it encodes.
func (ds Dataset) String() string {
	args := make([]string, 0, len(ds.Values))
	for _, v := range ds.Values {
		args = append(args, v.String())
	}
	return ds.Func.Name + "(" + strings.Join(args, ", ") + ")"
}

// InvalidParams returns the names of parameters carrying a
// definitely-invalid dictionary value, in parameter order — the input to
// the blame analysis of the log-analysis phase.
func (ds Dataset) InvalidParams() []string {
	var out []string
	for i, v := range ds.Values {
		if v.Validity == dict.Invalid && i < len(ds.Func.Params) {
			out = append(out, ds.Func.Params[i].Name)
		}
	}
	return out
}

// Datasets enumerates every combination of the matrix in deterministic
// order: the last parameter varies fastest, exactly like the nested loops
// of the paper's generator.
func (m Matrix) Datasets() []Dataset {
	total := m.Combinations()
	out := make([]Dataset, 0, total)
	idx := make([]int, len(m.Rows))
	for n := 0; n < total; n++ {
		vals := make([]dict.Value, len(m.Rows))
		for i, row := range m.Rows {
			vals[i] = row[idx[i]]
		}
		out = append(out, Dataset{Func: m.Func, Index: n, Values: vals})
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(m.Rows[i]) {
				break
			}
			idx[i] = 0
		}
	}
	return out
}

// Generate builds the full test suite for every tested function of the
// header, in document order.
func Generate(h *apispec.Header, d *dict.Dictionary) ([]Dataset, error) {
	var out []Dataset
	for _, f := range h.Tested() {
		m, err := BuildMatrix(f, d)
		if err != nil {
			return nil, err
		}
		out = append(out, m.Datasets()...)
	}
	return out, nil
}

// CountByFunction returns Eq. 1 per tested function without materialising
// the datasets.
func CountByFunction(h *apispec.Header, d *dict.Dictionary) (map[string]int, error) {
	out := make(map[string]int)
	for _, f := range h.Tested() {
		m, err := BuildMatrix(f, d)
		if err != nil {
			return nil, err
		}
		out[f.Name] = m.Combinations()
	}
	return out, nil
}

// RenderMutantC renders the dataset as the C mutant source of paper
// Fig. 5: a test partition main that invokes the fault placeholder once
// per major frame and reports the return code. The rendering is a faithful
// artefact of the original toolchain; the Go campaign executes the same
// dataset directly.
func RenderMutantC(ds Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* mutant %04d: %s */\n", ds.Index, ds.String())
	b.WriteString("#include <xm.h>\n#include <stdio.h>\n\n")
	b.WriteString("void PartitionMain(void)\n{\n")
	b.WriteString("    xm_s32_t ret;\n\n")
	b.WriteString("    for (;;) {\n")
	args := make([]string, 0, len(ds.Values))
	for i, v := range ds.Values {
		p := ds.Func.Params[i]
		arg := v.Raw
		switch v.Raw {
		case dict.SymNull:
			arg = "(void *)0"
		case dict.SymValid:
			arg = "(void *)test_buffer"
		case dict.SymValidMid:
			arg = "(void *)(test_buffer + sizeof(test_buffer) / 2)"
		case dict.SymValidLast:
			arg = "(void *)(test_buffer + sizeof(test_buffer) - 4)"
		case dict.SymValidEnd:
			arg = "(void *)(test_buffer + sizeof(test_buffer))"
		case dict.SymUnaligned:
			arg = "(void *)(test_buffer + 1)"
		case dict.SymOtherPart:
			arg = "(void *)OTHER_PARTITION_BASE"
		case dict.SymKernel:
			arg = "(void *)XM_IMAGE_BASE"
		case dict.SymROM:
			arg = "(void *)PROM_BASE"
		case dict.SymIO:
			arg = "(void *)APB_IO_BASE"
		default:
			if p.Pointer() {
				arg = "(void *)" + v.Raw
			} else if strings.HasPrefix(v.Raw, "-") {
				arg = "(" + p.Type + ")(" + v.Raw + "LL)"
			}
		}
		args = append(args, arg)
	}
	fmt.Fprintf(&b, "        ret = %s(%s);\n", ds.Func.Name, strings.Join(args, ", "))
	b.WriteString("        printf(\"[test] ret=%d\\n\", ret);\n")
	b.WriteString("        XM_idle_self(); /* one invocation per major frame */\n")
	b.WriteString("    }\n}\n")
	return b.String()
}
