// Package testgen implements the test-generation pipeline of paper
// Fig. 4/Fig. 5: from a hypercall signature (apispec) and the data-type
// dictionaries (dict), it builds the test_value_matrix, enumerates every
// dataset combination (Eq. 1: combinations = Π n_i over the parameters),
// and renders each dataset as a mutant source — the single-hypercall fault
// placeholder compiled into the test partition.
package testgen

import (
	"fmt"
	"math"
	"strings"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
)

// Matrix is the test_value_matrix of paper Fig. 5: one row of candidate
// values per parameter of the hypercall under test.
type Matrix struct {
	Func apispec.Function
	Rows [][]dict.Value
}

// BuildMatrix resolves each parameter of the function to its value row:
// the named override set when the spec requests one, the parameter type's
// dictionary set otherwise.
func BuildMatrix(f apispec.Function, d *dict.Dictionary) (Matrix, error) {
	m := Matrix{Func: f}
	for _, p := range f.Params {
		var vals []dict.Value
		if p.ValueSet != "" {
			ns, ok := d.Named(p.ValueSet)
			if !ok {
				return Matrix{}, fmt.Errorf("testgen: %s/%s: unknown value set %q", f.Name, p.Name, p.ValueSet)
			}
			vals = ns.Values
		} else {
			ts, ok := d.Type(p.Type)
			if !ok {
				return Matrix{}, fmt.Errorf("testgen: %s/%s: no dictionary for type %q", f.Name, p.Name, p.Type)
			}
			vals = ts.Values
		}
		if len(vals) == 0 {
			return Matrix{}, fmt.Errorf("testgen: %s/%s: empty value row", f.Name, p.Name)
		}
		m.Rows = append(m.Rows, vals)
	}
	return m, nil
}

// Combinations returns Eq. 1 of the paper: the product of the row sizes.
// A parameter-less hypercall has exactly one (empty) dataset. The product
// saturates at the platform's MaxInt instead of wrapping, so a huge
// dictionary cannot silently corrupt the campaign total that progress
// reporting and checkpointing are keyed on.
func (m Matrix) Combinations() int {
	n := m.Combinations64()
	if n > math.MaxInt {
		return math.MaxInt
	}
	return int(n)
}

// Combinations64 computes Eq. 1 in 64 bits, saturating at MaxInt64 on
// overflow.
func (m Matrix) Combinations64() int64 {
	n := int64(1)
	for _, row := range m.Rows {
		k := int64(len(row))
		if k == 0 {
			return 0
		}
		if n > math.MaxInt64/k {
			return math.MaxInt64
		}
		n *= k
	}
	return n
}

// Dataset is one generated test dataset: one value per parameter.
type Dataset struct {
	Func   apispec.Function
	Index  int // position in generation order
	Values []dict.Value
	// State names the phantom system state the test fires in ("" for the
	// nominal data-type fault model). The §V extension varies the kernel
	// state instead of the (non-existent) arguments of parameter-less
	// hypercalls; execution targets that honour states drive the system
	// into the named state before arming the test call.
	State string
}

// String renders the dataset as the call it encodes.
func (ds Dataset) String() string {
	args := make([]string, 0, len(ds.Values))
	for _, v := range ds.Values {
		args = append(args, v.String())
	}
	call := ds.Func.Name + "(" + strings.Join(args, ", ") + ")"
	if ds.State != "" {
		call += " @ " + ds.State
	}
	return call
}

// InvalidParams returns the names of parameters carrying a
// definitely-invalid dictionary value, in parameter order — the input to
// the blame analysis of the log-analysis phase.
func (ds Dataset) InvalidParams() []string {
	var out []string
	for i, v := range ds.Values {
		if v.Validity == dict.Invalid && i < len(ds.Func.Params) {
			out = append(out, ds.Func.Params[i].Name)
		}
	}
	return out
}

// datasetAt decodes the dataset at the given rank of the matrix's
// deterministic enumeration — the mixed-radix decomposition of the
// paper's nested generator loops, with the last parameter varying
// fastest. It is the single definition of dataset order every plan
// strategy addresses into.
func (m Matrix) datasetAt(rank int64) Dataset {
	tuple := m.TupleAt(rank)
	vals := make([]dict.Value, len(tuple))
	for i, v := range tuple {
		vals[i] = m.Rows[i][v]
	}
	return Dataset{Func: m.Func, Index: int(rank), Values: vals}
}

// TupleAt decodes a rank into its value-index tuple (one index per
// parameter) — the inverse of RankOf.
func (m Matrix) TupleAt(rank int64) []int {
	tuple := make([]int, len(m.Rows))
	r := rank
	for i := len(m.Rows) - 1; i >= 0; i-- {
		n := int64(len(m.Rows[i]))
		tuple[i] = int(r % n)
		r /= n
	}
	return tuple
}

// rankOf is the inverse of datasetAt over value-index tuples.
func (m Matrix) rankOf(tuple []int) int64 {
	r := int64(0)
	for i, v := range tuple {
		r = r*int64(len(m.Rows[i])) + int64(v)
	}
	return r
}

// DatasetAt decodes the dataset at the given rank of the matrix's
// deterministic enumeration — the exported address-decoding entry point
// plan strategies and the corpus mutators build on.
func (m Matrix) DatasetAt(rank int64) Dataset { return m.datasetAt(rank) }

// RankOf is the inverse of DatasetAt over value-index tuples (one value
// index per parameter, in parameter order).
func (m Matrix) RankOf(tuple []int) int64 { return m.rankOf(tuple) }

// Datasets enumerates every combination of the matrix in deterministic
// order: the last parameter varies fastest, exactly like the nested loops
// of the paper's generator.
func (m Matrix) Datasets() []Dataset {
	total := m.Combinations()
	out := make([]Dataset, 0, total)
	for n := 0; n < total; n++ {
		out = append(out, m.datasetAt(int64(n)))
	}
	return out
}

// Generate builds the full test suite for every tested function of the
// header, in document order — the eager wrapper over the exhaustive plan.
func Generate(h *apispec.Header, d *dict.Dictionary) ([]Dataset, error) {
	p, err := NewPlan(StrategyExhaustive, h, d, 0)
	if err != nil {
		return nil, err
	}
	return Materialize(p), nil
}

// CountByFunction returns Eq. 1 per tested function without materialising
// the datasets.
func CountByFunction(h *apispec.Header, d *dict.Dictionary) (map[string]int, error) {
	out := make(map[string]int)
	for _, f := range h.Tested() {
		m, err := BuildMatrix(f, d)
		if err != nil {
			return nil, err
		}
		out[f.Name] = m.Combinations()
	}
	return out, nil
}

// RenderMutantC renders the dataset as the C mutant source of paper
// Fig. 5: a test partition main that invokes the fault placeholder once
// per major frame and reports the return code. The rendering is a faithful
// artefact of the original toolchain; the Go campaign executes the same
// dataset directly.
func RenderMutantC(ds Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* mutant %04d: %s */\n", ds.Index, ds.String())
	b.WriteString("#include <xm.h>\n#include <stdio.h>\n\n")
	b.WriteString("void PartitionMain(void)\n{\n")
	b.WriteString("    xm_s32_t ret;\n\n")
	b.WriteString("    for (;;) {\n")
	args := make([]string, 0, len(ds.Values))
	for i, v := range ds.Values {
		p := ds.Func.Params[i]
		arg := v.Raw
		switch v.Raw {
		case dict.SymNull:
			arg = "(void *)0"
		case dict.SymValid:
			arg = "(void *)test_buffer"
		case dict.SymValidMid:
			arg = "(void *)(test_buffer + sizeof(test_buffer) / 2)"
		case dict.SymValidLast:
			arg = "(void *)(test_buffer + sizeof(test_buffer) - 4)"
		case dict.SymValidEnd:
			arg = "(void *)(test_buffer + sizeof(test_buffer))"
		case dict.SymUnaligned:
			arg = "(void *)(test_buffer + 1)"
		case dict.SymOtherPart:
			arg = "(void *)OTHER_PARTITION_BASE"
		case dict.SymKernel:
			arg = "(void *)XM_IMAGE_BASE"
		case dict.SymROM:
			arg = "(void *)PROM_BASE"
		case dict.SymIO:
			arg = "(void *)APB_IO_BASE"
		default:
			if p.Pointer() {
				arg = "(void *)" + v.Raw
			} else if strings.HasPrefix(v.Raw, "-") {
				arg = "(" + p.Type + ")(" + v.Raw + "LL)"
			}
		}
		args = append(args, arg)
	}
	fmt.Fprintf(&b, "        ret = %s(%s);\n", ds.Func.Name, strings.Join(args, ", "))
	b.WriteString("        printf(\"[test] ret=%d\\n\", ret);\n")
	b.WriteString("        XM_idle_self(); /* one invocation per major frame */\n")
	b.WriteString("    }\n}\n")
	return b.String()
}
