package testgen

// This file is the lazy test-plan layer over the Fig. 4/Fig. 5 generator:
// instead of materialising the full Eq. 1 cartesian product, a Plan is a
// deterministic, index-addressable dataset stream behind a pluggable
// strategy. Four strategies ship built in:
//
//   - exhaustive:  the complete Eq. 1 product, byte-identical to the
//     eager generator's order (last parameter varies fastest, functions
//     in document order), addressed lazily — nothing is materialised.
//   - pairwise:    a greedy 2-way covering array per hypercall — every
//     pair of dictionary values across every parameter pair appears in
//     at least one dataset, at a fraction of the Eq. 1 test count.
//   - rand:N:      N datasets sampled uniformly without replacement from
//     the exhaustive stream, deterministically from a seed.
//   - boundary:    the invalid/boundary-value-dense subset: a nominal
//     base dataset per hypercall, the all-invalid dataset, and every
//     non-valid dictionary value injected one parameter at a time.
//
// Plans fingerprint their full identity (strategy, seed where it matters,
// and the spec/dictionary content) so campaign checkpoints can refuse to
// resume a different plan.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"iter"
	"math"
	"sort"
	"strconv"
	"strings"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
)

// Built-in strategy names.
const (
	StrategyExhaustive = "exhaustive"
	StrategyPairwise   = "pairwise"
	StrategyRand       = "rand"
	StrategyBoundary   = "boundary"
)

// Plan is a lazy, deterministic test-dataset stream: every dataset of the
// campaign is addressable by its position, so execution engines can
// checkpoint a cursor and resume without regenerating or retaining the
// suite. At must be safe for concurrent use — the campaign worker pool
// calls it from several goroutines.
type Plan interface {
	// Strategy returns the canonical plan spec ("exhaustive", "pairwise",
	// "rand:100", "boundary").
	Strategy() string
	// Len returns the number of datasets the plan emits.
	Len() int
	// At returns dataset i, 0 <= i < Len(), in plan order. The returned
	// Dataset's Index is its rank in the function's exhaustive
	// enumeration, so a dataset keeps its identity across plans.
	At(i int) Dataset
	// Fingerprint identifies the plan: strategy, seed (for randomised
	// strategies) and the spec/dictionary content it draws from.
	Fingerprint() string
	// Suite returns the per-function value matrices the plan draws from,
	// in document order.
	Suite() []Matrix
}

// All iterates a plan in order.
func All(p Plan) iter.Seq2[int, Dataset] {
	return func(yield func(int, Dataset) bool) {
		for i := 0; i < p.Len(); i++ {
			if !yield(i, p.At(i)) {
				return
			}
		}
	}
}

// Materialize renders a plan as the eager dataset slice the pre-plan APIs
// traffic in.
func Materialize(p Plan) []Dataset {
	out := make([]Dataset, p.Len())
	for i := range out {
		out[i] = p.At(i)
	}
	return out
}

// Pick addresses one selected dataset: the function's position in the
// suite and the dataset's rank within that function's exhaustive
// enumeration. Strategies emit picks; the plan resolves them lazily.
type Pick struct {
	Fn   int
	Rank int64
}

// Strategy selects the datasets of a plan from the suite matrices,
// returning picks in emission order. arg is the text after ":" in the
// plan spec ("" when absent); seed feeds randomised strategies and is
// ignored by deterministic ones.
type Strategy func(suite []Matrix, arg string, seed int64) ([]Pick, error)

// strategyInfo is one registry entry.
type strategyInfo struct {
	sel Strategy
	// seeded marks strategies whose output depends on the seed, so the
	// seed joins the plan fingerprint only when it matters.
	seeded bool
}

// strategies is the plan-strategy registry. The exhaustive strategy is
// special-cased by NewPlan to stay lazy (its picks are the identity).
var strategies = map[string]strategyInfo{
	StrategyPairwise: {sel: pairwiseStrategy},
	StrategyRand:     {sel: randStrategy, seeded: true},
	StrategyBoundary: {sel: boundaryStrategy},
}

// RegisterStrategy adds (or replaces) a plan strategy under the given
// name. seeded marks strategies whose selection depends on the seed; it
// folds the seed into the plan fingerprint so checkpoints distinguish
// runs with different seeds.
func RegisterStrategy(name string, sel Strategy, seeded bool) {
	strategies[name] = strategyInfo{sel: sel, seeded: seeded}
}

// PlanFactory builds a plan that schedules its own datasets rather than
// emitting a pick list up front — the registration point for dynamic
// strategies such as the coverage-guided feedback plan, whose selection
// depends on execution results that do not exist at construction time.
// suiteHash is the spec/dictionary content hash every static plan folds
// into its fingerprint; factories must do the same.
type PlanFactory func(suite []Matrix, arg string, seed int64, suiteHash string) (Plan, error)

// planFactories is the dynamic-strategy registry.
var planFactories = map[string]PlanFactory{}

// RegisterPlanFactory adds (or replaces) a dynamic plan strategy. It
// takes precedence over a Strategy registered under the same name.
func RegisterPlanFactory(name string, f PlanFactory) {
	planFactories[name] = f
}

// HeaderPlanFactory builds a plan from the full API header rather than
// the tested-function matrices — the registration point for strategies
// whose selection is not a subset of the Eq. 1 product, such as the §V
// phantom-parameter extension, which covers exactly the parameter-less
// hypercalls the data-type fault model leaves untested.
type HeaderPlanFactory func(h *apispec.Header, d *dict.Dictionary, arg string, seed int64) (Plan, error)

// headerPlans is the header-level strategy registry. It takes precedence
// over both Strategy and PlanFactory registrations of the same name.
var headerPlans = map[string]HeaderPlanFactory{}

// RegisterHeaderPlan adds (or replaces) a header-level plan strategy.
func RegisterHeaderPlan(name string, f HeaderPlanFactory) {
	headerPlans[name] = f
}

// PlanInfo describes one registered plan strategy for discovery surfaces
// (xmfuzz -list, the pkg/xmrobust facade).
type PlanInfo struct {
	Name string
	Desc string
}

// planDescs holds the one-line descriptions PlanInventory reports.
// Built-ins are seeded here; packages registering strategies add theirs
// through DescribePlan.
var planDescs = map[string]string{
	StrategyExhaustive: "the complete Eq. 1 cartesian product (the paper's campaign)",
	StrategyPairwise:   "greedy 2-way covering array: every value pair at a fraction of Eq. 1",
	StrategyRand:       "rand:N — N datasets sampled without replacement, seed-reproducible",
	StrategyBoundary:   "nominal base + all-invalid + one-factor invalid/boundary sweep",
}

// DescribePlan records the one-line description of a registered strategy.
func DescribePlan(name, desc string) { planDescs[name] = desc }

// PlanInventory returns every registered plan strategy, sorted by name —
// the discovery surface behind xmfuzz -list.
func PlanInventory() []PlanInfo {
	names := map[string]bool{StrategyExhaustive: true}
	for n := range strategies {
		names[n] = true
	}
	for n := range planFactories {
		names[n] = true
	}
	for n := range headerPlans {
		names[n] = true
	}
	out := make([]PlanInfo, 0, len(names))
	for n := range names {
		out = append(out, PlanInfo{Name: n, Desc: planDescs[n]})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// IsDynamic reports whether a plan schedules its datasets on line (its
// At may block awaiting execution feedback). Dynamic plans cannot be
// walked outside an executing campaign: Measure skips them and
// Materialize must not be called on them.
func IsDynamic(p Plan) bool {
	d, ok := p.(interface{ Dynamic() bool })
	return ok && d.Dynamic()
}

// NewPlan builds the plan named by spec over the tested functions of the
// header. spec is "strategy" or "strategy:arg" ("" defaults to
// exhaustive); seed feeds randomised strategies.
func NewPlan(spec string, h *apispec.Header, d *dict.Dictionary, seed int64) (Plan, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	if name == "" {
		name = StrategyExhaustive
	}
	if f, ok := headerPlans[name]; ok {
		return f(h, d, arg, seed)
	}
	s, err := buildSuite(h, d)
	if err != nil {
		return nil, err
	}
	if name == StrategyExhaustive {
		if arg != "" {
			return nil, fmt.Errorf("testgen: plan %q takes no argument", name)
		}
		if s.total >= math.MaxInt64 || s.total > int64(math.MaxInt) {
			return nil, fmt.Errorf("testgen: exhaustive plan has %d+ datasets, beyond addressable range — use pairwise, boundary or rand:N", math.MaxInt)
		}
		return exhaustivePlan{s: s}, nil
	}
	if f, ok := planFactories[name]; ok {
		return f(s.matrices, arg, seed, s.hash)
	}
	info, ok := strategies[name]
	if !ok {
		known := make([]string, 0, 8)
		for _, pi := range PlanInventory() {
			known = append(known, pi.Name)
		}
		return nil, fmt.Errorf("testgen: unknown plan strategy %q (have %s)", name, strings.Join(known, ", "))
	}
	picks, err := info.sel(s.matrices, arg, seed)
	if err != nil {
		return nil, err
	}
	for _, pk := range picks {
		if pk.Fn < 0 || pk.Fn >= len(s.matrices) {
			return nil, fmt.Errorf("testgen: plan %q picked function %d of %d", name, pk.Fn, len(s.matrices))
		}
		if pk.Rank < 0 || pk.Rank >= s.matrices[pk.Fn].Combinations64() {
			return nil, fmt.Errorf("testgen: plan %q picked rank %d of %s (Eq. 1: %d)",
				name, pk.Rank, s.matrices[pk.Fn].Func.Name, s.matrices[pk.Fn].Combinations64())
		}
	}
	strat := name
	if arg != "" {
		strat += ":" + arg
	}
	fpSeed := int64(0)
	if info.seeded {
		fpSeed = seed
	}
	return pickPlan{s: s, strategy: strat, seeded: info.seeded, seed: fpSeed, picks: picks}, nil
}

// --- suite -------------------------------------------------------------

// planSuite is the shared substance of every plan: the per-function value
// matrices, prefix sums of their Eq. 1 sizes for rank addressing, and the
// content hash that anchors plan fingerprints.
type planSuite struct {
	matrices []Matrix
	starts   []int64 // starts[i] = global exhaustive rank of matrices[i]'s first dataset
	total    int64   // Eq. 1 over the whole suite, saturating at MaxInt64
	hash     string
}

func buildSuite(h *apispec.Header, d *dict.Dictionary) (planSuite, error) {
	var s planSuite
	hsh := sha256.New()
	for _, f := range h.Tested() {
		m, err := BuildMatrix(f, d)
		if err != nil {
			return planSuite{}, err
		}
		s.starts = append(s.starts, s.total)
		s.matrices = append(s.matrices, m)
		n := m.Combinations64()
		if s.total > math.MaxInt64-n {
			s.total = math.MaxInt64
		} else {
			s.total += n
		}
		fmt.Fprintf(hsh, "%s(", f.Name)
		for pi, p := range f.Params {
			fmt.Fprintf(hsh, "%s %s;", p.Type, p.Name)
			for _, v := range m.Rows[pi] {
				fmt.Fprintf(hsh, "%s|%s|%s,", v.Raw, v.Desc, v.Validity)
			}
		}
		fmt.Fprint(hsh, ")\n")
	}
	s.hash = hex.EncodeToString(hsh.Sum(nil))[:16]
	return s, nil
}

// locate maps a global exhaustive rank to (function, local rank).
func (s planSuite) locate(rank int64) (int, int64) {
	i := sort.Search(len(s.starts), func(i int) bool { return s.starts[i] > rank }) - 1
	return i, rank - s.starts[i]
}

// fingerprint composes the plan identity string.
func (s planSuite) fingerprint(strategy string, seeded bool, seed int64) string {
	if seeded {
		return fmt.Sprintf("%s@%d/%s", strategy, seed, s.hash)
	}
	return strategy + "/" + s.hash
}

// --- exhaustive --------------------------------------------------------

// exhaustivePlan is the identity plan: dataset i of the plan is dataset i
// of the Eq. 1 enumeration. Nothing is materialised; At decodes the rank
// in mixed radix.
type exhaustivePlan struct{ s planSuite }

func (p exhaustivePlan) Strategy() string { return StrategyExhaustive }
func (p exhaustivePlan) Len() int         { return int(p.s.total) }
func (p exhaustivePlan) Suite() []Matrix  { return p.s.matrices }
func (p exhaustivePlan) Fingerprint() string {
	return p.s.fingerprint(StrategyExhaustive, false, 0)
}

func (p exhaustivePlan) At(i int) Dataset {
	fn, rank := p.s.locate(int64(i))
	return p.s.matrices[fn].datasetAt(rank)
}

// --- pick-backed plans (pairwise, rand, boundary, registered) ----------

// pickPlan resolves an explicit pick list lazily against the suite. The
// picks themselves are two words per dataset; the datasets are decoded on
// demand.
type pickPlan struct {
	s        planSuite
	strategy string
	seeded   bool
	seed     int64
	picks    []Pick
}

func (p pickPlan) Strategy() string { return p.strategy }
func (p pickPlan) Len() int         { return len(p.picks) }
func (p pickPlan) Suite() []Matrix  { return p.s.matrices }
func (p pickPlan) Fingerprint() string {
	return p.s.fingerprint(p.strategy, p.seeded, p.seed)
}

func (p pickPlan) At(i int) Dataset {
	pk := p.picks[i]
	return p.s.matrices[pk.Fn].datasetAt(pk.Rank)
}

// --- pairwise ----------------------------------------------------------

// pairwiseStrategy builds a greedy 2-way covering array per hypercall:
// every pair of values across every pair of parameters appears in at
// least one dataset. Hypercalls with one (or no) parameter degrade to
// each-value-once coverage. The greedy construction is deterministic:
// seeds are the first uncovered pair in (parameter pair, value pair)
// order, free parameters take the value covering the most still-uncovered
// pairs, ties to the lowest value index.
func pairwiseStrategy(suite []Matrix, arg string, _ int64) ([]Pick, error) {
	if arg != "" {
		return nil, fmt.Errorf("testgen: plan %q takes no argument", StrategyPairwise)
	}
	var picks []Pick
	for fn, m := range suite {
		for _, tuple := range pairwiseTuples(m) {
			picks = append(picks, Pick{Fn: fn, Rank: m.rankOf(tuple)})
		}
	}
	return picks, nil
}

// pairwiseTuples returns the covering array of one matrix as value-index
// tuples, in generation order.
func pairwiseTuples(m Matrix) [][]int {
	k := len(m.Rows)
	switch k {
	case 0:
		return [][]int{{}}
	case 1:
		out := make([][]int, len(m.Rows[0]))
		for v := range out {
			out[v] = []int{v}
		}
		return out
	}

	// uncovered[pairIdx(i,j)][vi*nj+vj] tracks the pairs still to cover.
	type pairSet struct {
		i, j      int
		open      []bool
		remaining int
	}
	var sets []*pairSet
	remaining := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			n := len(m.Rows[i]) * len(m.Rows[j])
			ps := &pairSet{i: i, j: j, open: make([]bool, n), remaining: n}
			for x := range ps.open {
				ps.open[x] = true
			}
			sets = append(sets, ps)
			remaining += n
		}
	}
	at := func(ps *pairSet, vi, vj int) int { return vi*len(m.Rows[ps.j]) + vj }

	// gain counts the uncovered pairs a candidate value for parameter p
	// would close against the already-assigned parameters.
	gain := func(assign []int, p, v int) int {
		g := 0
		for _, ps := range sets {
			switch {
			case ps.i == p && assign[ps.j] >= 0:
				if ps.open[at(ps, v, assign[ps.j])] {
					g++
				}
			case ps.j == p && assign[ps.i] >= 0:
				if ps.open[at(ps, assign[ps.i], v)] {
					g++
				}
			}
		}
		return g
	}

	var out [][]int
	for remaining > 0 {
		// Seed with the first uncovered pair in deterministic order.
		assign := make([]int, k)
		for p := range assign {
			assign[p] = -1
		}
		seeded := false
		for _, ps := range sets {
			if ps.remaining == 0 {
				continue
			}
			for x, open := range ps.open {
				if open {
					assign[ps.i], assign[ps.j] = x/len(m.Rows[ps.j]), x%len(m.Rows[ps.j])
					seeded = true
					break
				}
			}
			if seeded {
				break
			}
		}
		// Fill the free parameters greedily.
		for p := 0; p < k; p++ {
			if assign[p] >= 0 {
				continue
			}
			best, bestGain := 0, -1
			for v := 0; v < len(m.Rows[p]); v++ {
				if g := gain(assign, p, v); g > bestGain {
					best, bestGain = v, g
				}
			}
			assign[p] = best
		}
		// Mark every pair of the finished tuple covered.
		for _, ps := range sets {
			x := at(ps, assign[ps.i], assign[ps.j])
			if ps.open[x] {
				ps.open[x] = false
				ps.remaining--
				remaining--
			}
		}
		out = append(out, assign)
	}
	return out
}

// --- rand:N ------------------------------------------------------------

// randStrategy samples N datasets uniformly without replacement from the
// exhaustive stream, using Floyd's algorithm over a splitmix64 generator
// so a fixed seed reproduces the identical plan on any platform. The
// sample is emitted in exhaustive order. N greater than the campaign
// clamps to the whole campaign.
func randStrategy(suite []Matrix, arg string, seed int64) ([]Pick, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("testgen: plan %q needs a positive count, e.g. %q (got %q)",
			StrategyRand, StrategyRand+":100", arg)
	}
	starts := make([]int64, len(suite))
	total := int64(0)
	for i, m := range suite {
		starts[i] = total
		c := m.Combinations64()
		if total > math.MaxInt64-c {
			return nil, fmt.Errorf("testgen: plan %q: campaign size overflows int64", StrategyRand)
		}
		total += c
	}
	if int64(n) >= total {
		n = int(total)
	}
	// Floyd's sampling: for j in [total-n, total), draw t uniform on
	// [0, j]; take t unless already taken, then take j.
	rng := NewSplitMix64(seed)
	chosen := make(map[int64]struct{}, n)
	for j := total - int64(n); j < total; j++ {
		t := rng.Int63n(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
	}
	ranks := make([]int64, 0, n)
	for r := range chosen {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(a, b int) bool { return ranks[a] < ranks[b] })
	picks := make([]Pick, len(ranks))
	for i, r := range ranks {
		fn := sort.Search(len(starts), func(i int) bool { return starts[i] > r }) - 1
		picks[i] = Pick{Fn: fn, Rank: r - starts[fn]}
	}
	return picks, nil
}

// SplitMix64 is a tiny, platform-stable PRNG (Steele et al.); seeded
// plans — rand:N and the corpus package's feedback loop — must reproduce
// byte-identically forever, which the stdlib generators do not promise
// across versions. The zero value is the seed-0 generator.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns the generator for a plan seed.
func NewSplitMix64(seed int64) SplitMix64 { return SplitMix64{state: uint64(seed)} }

// Next returns the next 64-bit draw.
func (r *SplitMix64) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n draws uniformly from [0, n) by rejection, bias-free.
func (r *SplitMix64) Int63n(n int64) int64 {
	bound := uint64(n)
	limit := uint64(1)<<63 - (uint64(1)<<63)%bound
	for {
		v := r.Next() >> 1
		if v < limit {
			return int64(v % bound)
		}
	}
}

// Intn draws uniformly from [0, n) for int-sized ranges.
func (r *SplitMix64) Intn(n int) int { return int(r.Int63n(int64(n))) }

// --- boundary ----------------------------------------------------------

// boundaryStrategy emits the invalid/boundary-value-dense subset of each
// hypercall: a nominal base dataset (every parameter at its first
// definitely-valid value, falling back to the first value), the
// all-invalid dataset (every parameter at its first definitely-invalid
// value, where one exists), then every non-valid dictionary value
// injected one parameter at a time over the base — the classic
// one-factor boundary sweep, sized linearly in the dictionary instead of
// multiplicatively.
func boundaryStrategy(suite []Matrix, arg string, _ int64) ([]Pick, error) {
	if arg != "" {
		return nil, fmt.Errorf("testgen: plan %q takes no argument", StrategyBoundary)
	}
	return BoundaryPicks(suite), nil
}

// BoundaryPicks returns the boundary strategy's selection over the suite
// — also the seed schedule of the coverage-guided feedback plan, whose
// corpus starts from the invalid-dense subset before mutating.
func BoundaryPicks(suite []Matrix) []Pick {
	var picks []Pick
	for fn, m := range suite {
		seen := map[int64]bool{}
		emit := func(tuple []int) {
			r := m.rankOf(tuple)
			if !seen[r] {
				seen[r] = true
				picks = append(picks, Pick{Fn: fn, Rank: r})
			}
		}
		base := make([]int, len(m.Rows))
		for p, row := range m.Rows {
			for v, val := range row {
				if val.Validity == dict.Valid {
					base[p] = v
					break
				}
			}
		}
		emit(base)
		allInvalid, complete := make([]int, len(m.Rows)), len(m.Rows) > 0
		copy(allInvalid, base)
		for p, row := range m.Rows {
			found := false
			for v, val := range row {
				if val.Validity == dict.Invalid {
					allInvalid[p], found = v, true
					break
				}
			}
			complete = complete && found
		}
		if complete {
			emit(allInvalid)
		}
		for p, row := range m.Rows {
			for v, val := range row {
				if val.Validity == dict.Valid {
					continue
				}
				tuple := make([]int, len(base))
				copy(tuple, base)
				tuple[p] = v
				emit(tuple)
			}
		}
	}
	return picks
}

// --- coverage metrics --------------------------------------------------

// PlanStats quantifies a plan against the exhaustive Eq. 1 campaign: test
// count, value-pair coverage (every pair of dictionary values across
// every parameter pair of every hypercall) and the reduction factor.
type PlanStats struct {
	Strategy string
	// Tests is the plan's dataset count; Exhaustive is Eq. 1 over the
	// whole suite (saturating at MaxInt64).
	Tests      int
	Exhaustive int64
	// PairsCovered / PairsTotal is the 2-way value coverage.
	PairsCovered int
	PairsTotal   int
	// Dynamic marks a plan whose selection is decided during execution
	// (e.g. feedback): its value coverage cannot be measured up front,
	// so the pair counters stay zero.
	Dynamic bool
}

// PairCoverage returns the covered fraction of value pairs (1 when the
// suite has no parameter pairs).
func (st PlanStats) PairCoverage() float64 {
	if st.PairsTotal == 0 {
		return 1
	}
	return float64(st.PairsCovered) / float64(st.PairsTotal)
}

// Reduction returns how many times smaller the plan is than Eq. 1.
func (st PlanStats) Reduction() float64 {
	if st.Tests == 0 {
		return 0
	}
	return float64(st.Exhaustive) / float64(st.Tests)
}

func (st PlanStats) String() string {
	scale := fmt.Sprintf("%.1fx fewer than the %d of Eq. 1", st.Reduction(), st.Exhaustive)
	if int64(st.Tests) > st.Exhaustive {
		// Extension plans (phantom states × parameter-less calls) grow
		// beyond the Eq. 1 product instead of reducing it.
		scale = fmt.Sprintf("extension beyond the %d of Eq. 1", st.Exhaustive)
	}
	if st.Dynamic {
		return fmt.Sprintf("plan %s: %d tests (%s), selection driven by execution feedback",
			st.Strategy, st.Tests, scale)
	}
	if st.PairsTotal == 0 {
		// No parameter pairs to cover (parameter-less or one-parameter
		// suites): a pair-coverage clause would be noise.
		return fmt.Sprintf("plan %s: %d tests (%s)", st.Strategy, st.Tests, scale)
	}
	return fmt.Sprintf("plan %s: %d tests (%s), value-pair coverage %.1f%% (%d/%d)",
		st.Strategy, st.Tests, scale,
		100*st.PairCoverage(), st.PairsCovered, st.PairsTotal)
}

// Measure reports a plan's coverage statistics. An exhaustive plan is
// measured analytically (it covers every pair by construction, so no walk
// is needed and a huge plan stays lazy); any other plan is walked once,
// at cost proportional to its length — reduced plans by design.
func Measure(p Plan) PlanStats {
	suite := p.Suite()
	st := PlanStats{Strategy: p.Strategy(), Tests: p.Len()}
	if IsDynamic(p) {
		// A dynamic plan's At blocks on execution feedback; walking it
		// here would deadlock. Report the analytic numbers only.
		st.Dynamic = true
		for _, m := range suite {
			c := m.Combinations64()
			if st.Exhaustive > math.MaxInt64-c {
				st.Exhaustive = math.MaxInt64
			} else {
				st.Exhaustive += c
			}
		}
		return st
	}
	if st.Strategy == StrategyExhaustive {
		for _, m := range suite {
			c := m.Combinations64()
			if st.Exhaustive > math.MaxInt64-c {
				st.Exhaustive = math.MaxInt64
			} else {
				st.Exhaustive += c
			}
			for i, row := range m.Rows {
				for j := i + 1; j < len(m.Rows); j++ {
					st.PairsTotal += len(row) * len(m.Rows[j])
				}
			}
		}
		st.PairsCovered = st.PairsTotal
		return st
	}
	// Value-index lookup per row, and the uncovered-pair ledger.
	index := make([]map[string]int, 0)
	rowOf := map[string]int{} // func name -> first row-index slot
	covered := make([]map[[4]int]bool, len(suite))
	for fi, m := range suite {
		c := m.Combinations64()
		if st.Exhaustive > math.MaxInt64-c {
			st.Exhaustive = math.MaxInt64
		} else {
			st.Exhaustive += c
		}
		rowOf[m.Func.Name] = len(index)
		for i, row := range m.Rows {
			lookup := make(map[string]int, len(row))
			for v, val := range row {
				lookup[val.Raw+"\x00"+val.Desc] = v
			}
			index = append(index, lookup)
			for j := i + 1; j < len(m.Rows); j++ {
				st.PairsTotal += len(row) * len(m.Rows[j])
			}
		}
		covered[fi] = map[[4]int]bool{}
	}
	fnOf := map[string]int{}
	for fi, m := range suite {
		fnOf[m.Func.Name] = fi
	}
	for _, ds := range All(p) {
		fi, ok := fnOf[ds.Func.Name]
		if !ok {
			continue
		}
		base := rowOf[ds.Func.Name]
		vidx := make([]int, len(ds.Values))
		for i, v := range ds.Values {
			vidx[i] = index[base+i][v.Raw+"\x00"+v.Desc]
		}
		for i := 0; i < len(vidx); i++ {
			for j := i + 1; j < len(vidx); j++ {
				key := [4]int{i, j, vidx[i], vidx[j]}
				if !covered[fi][key] {
					covered[fi][key] = true
					st.PairsCovered++
				}
			}
		}
	}
	return st
}
