package testgen

import (
	"strings"
	"testing"
	"testing/quick"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
)

func defaultInputs() (*apispec.Header, *dict.Dictionary) {
	return apispec.Default(), dict.Builtin()
}

func TestEq1CombinationCounts(t *testing.T) {
	h, d := defaultInputs()
	counts, err := CountByFunction(h, d)
	if err != nil {
		t.Fatal(err)
	}
	// Spot checks: Eq. 1 = product of the per-parameter set sizes.
	want := map[string]int{
		"XM_reset_system":          5,       // u32
		"XM_get_system_status":     3,       // ptr
		"XM_reset_partition":       8 * 25,  // s32 × u32 × u32
		"XM_set_timer":             5 * 4,   // u32 × time² (2 values each)
		"XM_switch_sched_plan":     2,       // override sets 2 × 1
		"XM_memory_copy":           14 * 70, // addr × addr × size = 14·14·5
		"XM_multicall":             9,       // ptr × ptr
		"XM_route_irq":             4 * 25,  // override 4 × u32 × u32
		"XM_trace_seek":            320,     // s32 × s32 × u32
		"XM_read_sampling_message": 120,     // s32 × ptr × u32
	}
	for fn, n := range want {
		if counts[fn] != n {
			t.Errorf("%s: %d combinations, want %d", fn, counts[fn], n)
		}
	}
}

func TestCampaignTotalMatchesDesign(t *testing.T) {
	h, d := defaultInputs()
	counts, err := CountByFunction(h, d)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	// The design target of DESIGN.md §4: 2661 tests (paper: 2662).
	if total != 2661 {
		t.Fatalf("campaign total = %d, want 2661", total)
	}
	if len(counts) != 39 {
		t.Fatalf("tested functions = %d, want 39", len(counts))
	}
}

func TestDatasetsExactCartesianProduct(t *testing.T) {
	h, d := defaultInputs()
	f, _ := h.Function("XM_set_timer")
	m, err := BuildMatrix(f, d)
	if err != nil {
		t.Fatal(err)
	}
	datasets := m.Datasets()
	if len(datasets) != m.Combinations() {
		t.Fatalf("datasets = %d, combinations = %d", len(datasets), m.Combinations())
	}
	// All distinct.
	seen := map[string]bool{}
	for _, ds := range datasets {
		s := ds.String()
		if seen[s] {
			t.Fatalf("duplicate dataset %s", s)
		}
		seen[s] = true
	}
	// Deterministic order: last parameter varies fastest.
	if datasets[0].Values[2].Raw != "1" || datasets[1].Values[2].Raw == "1" {
		t.Fatalf("ordering wrong: %s then %s", datasets[0], datasets[1])
	}
	// Indexes are positional.
	for i, ds := range datasets {
		if ds.Index != i {
			t.Fatalf("dataset %d has index %d", i, ds.Index)
		}
	}
}

func TestParameterlessFunctionOneEmptyDataset(t *testing.T) {
	f := apispec.Function{Name: "XM_halt_system", ReturnType: "xm_s32_t"}
	m, err := BuildMatrix(f, dict.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	if m.Combinations() != 1 {
		t.Fatalf("combinations = %d, want 1", m.Combinations())
	}
	ds := m.Datasets()
	if len(ds) != 1 || len(ds[0].Values) != 0 {
		t.Fatalf("datasets = %+v", ds)
	}
}

func TestBuildMatrixErrors(t *testing.T) {
	d := dict.Builtin()
	if _, err := BuildMatrix(apispec.Function{
		Name:   "F",
		Params: []apispec.Parameter{{Name: "x", Type: "mystery_t"}},
	}, d); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := BuildMatrix(apispec.Function{
		Name:   "F",
		Params: []apispec.Parameter{{Name: "x", Type: "xm_u32_t", ValueSet: "nope"}},
	}, d); err == nil {
		t.Error("unknown value set accepted")
	}
}

func TestGenerateOrderFollowsHeader(t *testing.T) {
	h, d := defaultInputs()
	all, err := Generate(h, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2661 {
		t.Fatalf("generated %d datasets", len(all))
	}
	// Function blocks appear in header order.
	var order []string
	for _, ds := range all {
		if len(order) == 0 || order[len(order)-1] != ds.Func.Name {
			order = append(order, ds.Func.Name)
		}
	}
	if len(order) != 39 {
		t.Fatalf("function blocks = %d (datasets of one function must be contiguous)", len(order))
	}
	if order[0] != "XM_reset_system" {
		t.Fatalf("first block = %s", order[0])
	}
}

func TestInvalidParams(t *testing.T) {
	h, d := defaultInputs()
	f, _ := h.Function("XM_multicall")
	m, _ := BuildMatrix(f, d)
	for _, ds := range m.Datasets() {
		inv := ds.InvalidParams()
		wantStart := ds.Values[0].Raw == dict.SymNull
		wantEnd := ds.Values[1].Raw == dict.SymNull
		got := strings.Join(inv, ",")
		want := ""
		switch {
		case wantStart && wantEnd:
			want = "startAddr,endAddr"
		case wantStart:
			want = "startAddr"
		case wantEnd:
			want = "endAddr"
		}
		if got != want {
			t.Errorf("%s: invalid params %q, want %q", ds, got, want)
		}
	}
}

func TestDatasetString(t *testing.T) {
	h, d := defaultInputs()
	f, _ := h.Function("XM_reset_system")
	m, _ := BuildMatrix(f, d)
	ds := m.Datasets()
	if s := ds[0].String(); s != "XM_reset_system(0(ZERO))" {
		t.Errorf("String = %q", s)
	}
	if s := ds[4].String(); s != "XM_reset_system(4294967295(MAX_U32))" {
		t.Errorf("String = %q", s)
	}
}

func TestRenderMutantC(t *testing.T) {
	h, d := defaultInputs()
	f, _ := h.Function("XM_multicall")
	m, _ := BuildMatrix(f, d)
	var nullValid Dataset
	found := false
	for _, ds := range m.Datasets() {
		if ds.Values[0].Raw == dict.SymNull && ds.Values[1].Raw == dict.SymValid {
			nullValid, found = ds, true
		}
	}
	if !found {
		t.Fatal("no (NULL, VALID) dataset")
	}
	src := RenderMutantC(nullValid)
	for _, want := range []string{
		"XM_multicall((void *)0, (void *)test_buffer)",
		"xm_s32_t ret;",
		"XM_idle_self()",
		"#include <xm.h>",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("mutant source lacks %q:\n%s", want, src)
		}
	}
}

func TestRenderMutantCNegativeLiteral(t *testing.T) {
	h, d := defaultInputs()
	f, _ := h.Function("XM_set_timer")
	m, _ := BuildMatrix(f, d)
	var ds Dataset
	for _, cand := range m.Datasets() {
		if cand.Values[2].Desc == "MIN_S64" {
			ds = cand
			break
		}
	}
	src := RenderMutantC(ds)
	if !strings.Contains(src, "(xmTime_t)(-9223372036854775808LL)") {
		t.Errorf("negative 64-bit literal rendered wrong:\n%s", src)
	}
}

// Property: Eq. 1 holds for arbitrary matrices — the dataset count equals
// the product of row sizes, and every dataset is unique.
func TestPropertyEq1(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 4 {
			sizes = sizes[:4]
		}
		m := Matrix{Func: apispec.Function{Name: "F"}}
		prod := 1
		for i, s := range sizes {
			n := int(s%4) + 1
			prod *= n
			row := make([]dict.Value, n)
			for j := range row {
				row[j] = dict.Value{Raw: fmtIdx(i, j)}
			}
			m.Rows = append(m.Rows, row)
		}
		ds := m.Datasets()
		if len(ds) != prod || m.Combinations() != prod {
			return false
		}
		seen := map[string]bool{}
		for _, d := range ds {
			s := d.String()
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func fmtIdx(i, j int) string {
	return string(rune('a'+i)) + string(rune('0'+j))
}
