package testgen

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
)

func mustPlan(t *testing.T, spec string, seed int64) Plan {
	t.Helper()
	h, d := defaultInputs()
	p, err := NewPlan(spec, h, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestExhaustivePlanGolden: the exhaustive plan must emit the exact
// datasets, order and indexes of the seed's eager generator — the lazy
// stream is a pure re-addressing of the same enumeration.
func TestExhaustivePlanGolden(t *testing.T) {
	h, d := defaultInputs()
	eager, err := Generate(h, d)
	if err != nil {
		t.Fatal(err)
	}
	p := mustPlan(t, StrategyExhaustive, 0)
	if p.Len() != len(eager) {
		t.Fatalf("plan emits %d datasets, generator %d", p.Len(), len(eager))
	}
	for i, ds := range All(p) {
		if !reflect.DeepEqual(ds, eager[i]) {
			t.Fatalf("dataset %d diverged:\nplan:      %+v\ngenerator: %+v", i, ds, eager[i])
		}
	}
	// Random access agrees with sequential order.
	for _, i := range []int{0, 1, 17, 980, p.Len() - 1} {
		if got := p.At(i).String(); got != eager[i].String() {
			t.Fatalf("At(%d) = %s, want %s", i, got, eager[i])
		}
	}
	// The analytic exhaustive measurement must match reality: full pair
	// coverage over the default spec's 1472 value pairs, no reduction.
	st := Measure(p)
	if st.Tests != 2661 || st.Exhaustive != 2661 || st.Reduction() != 1 {
		t.Fatalf("exhaustive stats = %+v", st)
	}
	if st.PairsTotal != 1472 || st.PairsCovered != st.PairsTotal {
		t.Fatalf("exhaustive pair coverage = %d/%d, want 1472/1472", st.PairsCovered, st.PairsTotal)
	}
}

// TestPairwiseCoversEveryPair is the plan's defining property: every pair
// of dictionary values across every parameter pair of every tested
// hypercall appears in at least one emitted dataset.
func TestPairwiseCoversEveryPair(t *testing.T) {
	p := mustPlan(t, StrategyPairwise, 0)
	type pairKey struct {
		fn             string
		pi, pj, vi, vj int
	}
	uncovered := map[pairKey]bool{}
	for _, m := range p.Suite() {
		for i := 0; i < len(m.Rows); i++ {
			for j := i + 1; j < len(m.Rows); j++ {
				for vi := range m.Rows[i] {
					for vj := range m.Rows[j] {
						uncovered[pairKey{m.Func.Name, i, j, vi, vj}] = true
					}
				}
			}
		}
	}
	total := len(uncovered)
	// Map each dataset's values back to row indexes and strike the pairs.
	rows := map[string][][]dict.Value{}
	for _, m := range p.Suite() {
		rows[m.Func.Name] = m.Rows
	}
	for _, ds := range All(p) {
		r := rows[ds.Func.Name]
		vidx := make([]int, len(ds.Values))
		for i, v := range ds.Values {
			vidx[i] = -1
			for x, rv := range r[i] {
				if rv == v {
					vidx[i] = x
					break
				}
			}
			if vidx[i] < 0 {
				t.Fatalf("%s: value %s not in row %d", ds, v, i)
			}
		}
		for i := 0; i < len(vidx); i++ {
			for j := i + 1; j < len(vidx); j++ {
				delete(uncovered, pairKey{ds.Func.Name, i, j, vidx[i], vidx[j]})
			}
		}
	}
	if len(uncovered) != 0 {
		t.Fatalf("%d of %d value pairs uncovered, e.g. %+v", len(uncovered), total, firstKey(uncovered))
	}
}

func firstKey[K comparable](m map[K]bool) K {
	for k := range m {
		return k
	}
	var zero K
	return zero
}

// TestPairwiseReduction pins the plan's size and coverage on the default
// spec. Note the reduction ceiling: covering every value pair of a
// two-parameter hypercall requires its full cartesian product, and the
// default spec's per-function two-largest-row products sum to 1006 tests
// — so 2.65x is the best ANY 100%-pair-coverage plan can do against the
// 2661 of Eq. 1, and the greedy array must land within ~15% of that
// optimum. (The multiplicative blowup pairwise exists to tame shows up
// on >=3-parameter hypercalls: XM_memory_copy alone drops ~4.5x.)
func TestPairwiseReduction(t *testing.T) {
	p := mustPlan(t, StrategyPairwise, 0)
	st := Measure(p)
	if st.PairCoverage() != 1 {
		t.Fatalf("pair coverage = %v (%d/%d), want 100%%", st.PairCoverage(), st.PairsCovered, st.PairsTotal)
	}
	if st.Exhaustive != 2661 {
		t.Fatalf("Eq. 1 total = %d, want 2661", st.Exhaustive)
	}
	const optimum = 1006 // sum of two-largest-row products per function
	if st.Tests < optimum {
		t.Fatalf("pairwise plan has %d tests — below the %d lower bound, coverage must be broken", st.Tests, optimum)
	}
	if st.Tests > optimum*115/100 {
		t.Fatalf("pairwise plan has %d tests, more than 15%% above the %d-test optimum", st.Tests, optimum)
	}
	if st.Reduction() < 2.3 {
		t.Fatalf("reduction = %.2fx, want >= 2.3x", st.Reduction())
	}
	// Where reduction is possible it must be substantial: the >=3-param
	// hypercalls compress >= 3x together.
	eq1, tests := int64(0), 0
	big := map[string]bool{}
	for _, m := range p.Suite() {
		if len(m.Rows) >= 3 {
			big[m.Func.Name] = true
			eq1 += m.Combinations64()
		}
	}
	for _, ds := range All(p) {
		if big[ds.Func.Name] {
			tests++
		}
	}
	if float64(eq1)/float64(tests) < 3 {
		t.Fatalf(">=3-param hypercalls: %d tests for Eq. 1 = %d, want >= 3x reduction", tests, eq1)
	}
}

// TestRandPlanDeterministic: a fixed seed must reproduce the byte-identical
// plan across constructions, and different seeds must differ.
func TestRandPlanDeterministic(t *testing.T) {
	render := func(p Plan) string {
		var b strings.Builder
		for _, ds := range All(p) {
			b.WriteString(ds.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	a := mustPlan(t, "rand:200", 42)
	b := mustPlan(t, "rand:200", 42)
	if a.Len() != 200 {
		t.Fatalf("rand:200 emitted %d datasets", a.Len())
	}
	if ra, rb := render(a), render(b); ra != rb {
		t.Fatal("same seed produced different plans")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same seed produced different fingerprints")
	}
	c := mustPlan(t, "rand:200", 43)
	if render(a) == render(c) {
		t.Fatal("different seeds produced the same sample")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatalf("fingerprint ignores the seed: %s", a.Fingerprint())
	}
	// Without replacement: no duplicates, and every dataset is a member
	// of its function's exhaustive enumeration.
	seen := map[string]bool{}
	for _, ds := range All(a) {
		s := ds.String()
		if seen[s] {
			t.Fatalf("duplicate sample %s", s)
		}
		seen[s] = true
	}
	// Clamped when N exceeds the campaign.
	full := mustPlan(t, "rand:999999", 1)
	if full.Len() != 2661 {
		t.Fatalf("oversized sample emitted %d datasets, want the full 2661", full.Len())
	}
}

// TestBoundaryPlan: the boundary plan is a small, invalid-dense subset —
// every non-valid dictionary value of every parameter appears, and every
// dataset is either the nominal base, the all-invalid dataset, or a
// one-parameter deviation from the base.
func TestBoundaryPlan(t *testing.T) {
	p := mustPlan(t, StrategyBoundary, 0)
	if p.Len() >= 2661/2 {
		t.Fatalf("boundary plan has %d tests — not a reduced subset", p.Len())
	}
	// Every non-valid value of every row must be exercised.
	type want struct {
		fn   string
		p    int
		raw  string
		desc string
	}
	missing := map[want]bool{}
	for _, m := range p.Suite() {
		for pi, row := range m.Rows {
			for _, v := range row {
				if v.Validity != dict.Valid {
					missing[want{m.Func.Name, pi, v.Raw, v.Desc}] = true
				}
			}
		}
	}
	for _, ds := range All(p) {
		for pi, v := range ds.Values {
			delete(missing, want{ds.Func.Name, pi, v.Raw, v.Desc})
		}
	}
	if len(missing) != 0 {
		t.Fatalf("%d non-valid values never injected, e.g. %+v", len(missing), firstKey(missing))
	}
	st := Measure(p)
	if st.Reduction() < 4 {
		t.Fatalf("boundary reduction = %.2fx, want >= 4x", st.Reduction())
	}
}

// TestCombinationsSaturates: a dictionary big enough to overflow Eq. 1
// must saturate, not wrap — a wrapped (possibly negative or tiny) total
// would corrupt progress accounting and checkpoint signatures.
func TestCombinationsSaturates(t *testing.T) {
	row := make([]dict.Value, 3)
	for i := range row {
		row[i] = dict.Value{Raw: string(rune('0' + i))}
	}
	m := Matrix{Func: apispec.Function{Name: "F"}}
	for i := 0; i < 64; i++ { // 3^64 >> MaxInt64
		m.Rows = append(m.Rows, row)
	}
	if got := m.Combinations64(); got != math.MaxInt64 {
		t.Fatalf("Combinations64 = %d, want saturation at MaxInt64", got)
	}
	if got := m.Combinations(); got != math.MaxInt {
		t.Fatalf("Combinations = %d, want saturation at MaxInt", got)
	}
	if m.Combinations() < 0 {
		t.Fatal("Eq. 1 went negative")
	}
}

// TestExhaustivePlanRefusesOverflow: the lazy plan cannot address a
// saturated campaign and must say so instead of misbehaving.
func TestExhaustivePlanRefusesOverflow(t *testing.T) {
	d := dict.NewDictionary()
	vals := make([]dict.Value, 256)
	for i := range vals {
		vals[i] = dict.Value{Raw: "0x" + strings.Repeat("f", 1+i%8)}
	}
	d.AddType(dict.TypeSet{Name: "xm_u32_t", Values: vals})
	h := &apispec.Header{}
	f := apispec.Function{Name: "F", Tested: "YES"}
	for i := 0; i < 9; i++ { // 256^9 > MaxInt64
		f.Params = append(f.Params, apispec.Parameter{Name: "p", Type: "xm_u32_t"})
	}
	h.Functions = append(h.Functions, f)
	if _, err := NewPlan(StrategyExhaustive, h, d, 0); err == nil {
		t.Fatal("oversized exhaustive plan accepted")
	}
}

// TestPlanSpecParsing covers the spec grammar and its error paths.
func TestPlanSpecParsing(t *testing.T) {
	h, d := defaultInputs()
	for _, spec := range []string{"", "exhaustive"} {
		p, err := NewPlan(spec, h, d, 0)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if p.Strategy() != StrategyExhaustive || p.Len() != 2661 {
			t.Fatalf("%q -> %s with %d tests", spec, p.Strategy(), p.Len())
		}
	}
	for _, spec := range []string{"nope", "rand", "rand:", "rand:x", "rand:-3", "rand:0", "pairwise:5", "boundary:x", "exhaustive:3"} {
		if _, err := NewPlan(spec, h, d, 0); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	p, err := NewPlan("rand:10", h, d, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy() != "rand:10" {
		t.Fatalf("canonical spec = %q", p.Strategy())
	}
}

// TestPlanFingerprints: identity must shift with the strategy and with the
// suite content, and stay put across constructions.
func TestPlanFingerprints(t *testing.T) {
	h, d := defaultInputs()
	fps := map[string]string{}
	for _, spec := range []string{"exhaustive", "pairwise", "rand:50", "boundary"} {
		p, err := NewPlan(spec, h, d, 3)
		if err != nil {
			t.Fatal(err)
		}
		fp := p.Fingerprint()
		for other, ofp := range fps {
			if ofp == fp {
				t.Fatalf("%s and %s share fingerprint %s", spec, other, fp)
			}
		}
		fps[spec] = fp
		again, _ := NewPlan(spec, h, d, 3)
		if again.Fingerprint() != fp {
			t.Fatalf("%s fingerprint unstable", spec)
		}
	}
	// A different dictionary is a different plan.
	stripped := dict.WithoutValid(d)
	p, err := NewPlan(StrategyExhaustive, h, stripped, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint() == fps["exhaustive"] {
		t.Fatal("fingerprint ignores the dictionary")
	}
}

// TestRegisterStrategy exercises the pluggable registry with a toy
// first-dataset-only strategy.
func TestRegisterStrategy(t *testing.T) {
	RegisterStrategy("first", func(suite []Matrix, arg string, seed int64) ([]Pick, error) {
		picks := make([]Pick, len(suite))
		for i := range suite {
			picks[i] = Pick{Fn: i}
		}
		return picks, nil
	}, false)
	defer delete(strategies, "first")
	p := mustPlan(t, "first", 0)
	if p.Len() != 39 {
		t.Fatalf("first-only plan has %d datasets, want one per tested hypercall (39)", p.Len())
	}
	if got := p.At(0).String(); got != "XM_reset_system(0(ZERO))" {
		t.Fatalf("At(0) = %s", got)
	}
}

// TestPlanStatsString keeps the human rendering stable enough for reports.
func TestPlanStatsString(t *testing.T) {
	st := PlanStats{Strategy: "pairwise", Tests: 10, Exhaustive: 100, PairsCovered: 5, PairsTotal: 5}
	s := st.String()
	for _, want := range []string{"pairwise", "10 tests", "10.0x", "100.0%", "(5/5)"} {
		if !strings.Contains(s, want) {
			t.Errorf("PlanStats.String() = %q lacks %q", s, want)
		}
	}
}
