package analysis

import (
	"fmt"
	"sort"
	"strings"

	"xmrobust/internal/campaign"
	"xmrobust/internal/inject"
)

// InjectionStudy is the streaming accumulator of an SEU campaign's
// outcome classes (internal/inject): per-site tallies of how injected
// runs compared to their clean reference legs — masked, wrong-result,
// hm-detected, crash, hang. Like Classifier it folds results in one at a
// time and retains only the aggregates, so injected campaigns analyse at
// constant memory.
type InjectionStudy struct {
	// Tests counts every result folded in; Armed those whose schedule
	// decided to inject; Applied those whose flip actually landed (a
	// timer upset needs an armed timer, a crashed simulator takes none).
	Tests   int
	Armed   int
	Applied int
	// Sites tallies per injection site.
	Sites map[string]*InjectionSite
}

// InjectionSite is one site's tally.
type InjectionSite struct {
	Site    string
	Armed   int
	Applied int
	// Outcomes counts applied flips per outcome class (the inject
	// package's Outcome* vocabulary).
	Outcomes map[string]int
}

// MaskingRate returns the fraction of the site's applied flips the
// architecture fully masked (0 when none applied).
func (s *InjectionSite) MaskingRate() float64 {
	if s.Applied == 0 {
		return 0
	}
	return float64(s.Outcomes[inject.OutcomeMasked]) / float64(s.Applied)
}

// NewInjectionStudy returns an empty accumulator.
func NewInjectionStudy() *InjectionStudy {
	return &InjectionStudy{Sites: map[string]*InjectionSite{}}
}

// Add folds one execution log into the tallies. Results without an
// injection record (uninjected tests, non-inject targets) only count
// toward Tests.
func (s *InjectionStudy) Add(r campaign.Result) {
	s.Tests++
	rec := r.Injection
	if rec == nil {
		return
	}
	s.Armed++
	site, ok := s.Sites[rec.Site]
	if !ok {
		site = &InjectionSite{Site: rec.Site, Outcomes: map[string]int{}}
		s.Sites[rec.Site] = site
	}
	site.Armed++
	if !rec.Applied {
		return
	}
	s.Applied++
	site.Applied++
	site.Outcomes[rec.Outcome]++
}

// Empty reports whether the campaign injected nothing — the signal to
// omit the report section entirely.
func (s *InjectionStudy) Empty() bool { return s == nil || s.Armed == 0 }

// Outcome returns the campaign-wide count of one outcome class.
func (s *InjectionStudy) Outcome(class string) int {
	n := 0
	for _, site := range s.Sites {
		n += site.Outcomes[class]
	}
	return n
}

// SiteList returns the per-site tallies sorted by site name.
func (s *InjectionStudy) SiteList() []*InjectionSite {
	out := make([]*InjectionSite, 0, len(s.Sites))
	for _, site := range s.Sites {
		out = append(out, site)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Site < out[b].Site })
	return out
}

// outcomeColumns is the rendering order of the outcome classes, by
// decreasing severity, with the table column widths.
var outcomeColumns = [...]struct {
	class string
	width int
}{
	{inject.OutcomeCrash, 6}, {inject.OutcomeHang, 6}, {inject.OutcomeDetected, 9},
	{inject.OutcomeWrong, 7}, {inject.OutcomeMasked, 7},
}

// InjectionSummary renders the SEU study: the campaign-wide tally line
// (the determinism anchor of make inject-smoke) and the per-site
// masking-rate table.
func InjectionSummary(s *InjectionStudy) string {
	var b strings.Builder
	b.WriteString("SEU FAULT INJECTION (per-site masking rates)\n\n")
	fmt.Fprintf(&b,
		"injection: %d of %d tests armed, %d flips applied — masked %d, wrong-result %d, hm-detected %d, crash %d, hang %d\n\n",
		s.Armed, s.Tests, s.Applied,
		s.Outcome(inject.OutcomeMasked), s.Outcome(inject.OutcomeWrong),
		s.Outcome(inject.OutcomeDetected), s.Outcome(inject.OutcomeCrash),
		s.Outcome(inject.OutcomeHang))
	fmt.Fprintf(&b, "%-8s %6s %8s %6s %6s %9s %7s %7s %8s\n",
		"site", "armed", "applied", "crash", "hang", "detected", "wrong", "masked", "mask%")
	for _, site := range s.SiteList() {
		fmt.Fprintf(&b, "%-8s %6d %8d", site.Site, site.Armed, site.Applied)
		for _, col := range outcomeColumns {
			fmt.Fprintf(&b, " %*d", col.width, site.Outcomes[col.class])
		}
		if site.Applied == 0 {
			// No flip landed (e.g. no armed timer to upset): a masking
			// rate would be 0/0, not zero.
			b.WriteString("        -\n")
			continue
		}
		fmt.Fprintf(&b, " %7.1f%%\n", 100*site.MaskingRate())
	}
	b.WriteString("\nmask% = applied flips with no observable difference from the clean reference leg\n")
	return b.String()
}
