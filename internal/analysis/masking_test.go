package analysis

import (
	"strings"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

func classifyMatrix(t *testing.T, fn string, faults xm.FaultSet) []Classified {
	t.Helper()
	var classified []Classified
	o := NewOracle(faults)
	// Synthesise a multicall-style failure pattern without running the
	// kernel: pointer NULLs fail, valid pairs overrun.
	h := func(raws ...string) campaign.Result {
		ds := mkDataset(t, fn, raws...)
		return mkResult(t, ds)
	}
	// (NULL, VALID): partition halted on the start pointer.
	r := h("NULL", "VALID")
	r.PartState = xm.PStateHalted
	r.HMEvents = []xm.HMLogEntry{{Event: xm.HMEvMemProtection, PartitionID: 4}}
	classified = append(classified, Classify(r, o))
	// (VALID, NULL): overrun blamed on the end pointer.
	r = h("VALID", "NULL")
	r.PartState = xm.PStateSuspended
	r.HMEvents = []xm.HMLogEntry{{Event: xm.HMEvSchedOverrun, PartitionID: 4}}
	classified = append(classified, Classify(r, o))
	// (NULL, NULL): both invalid, masked probe, returns the right error.
	classified = append(classified, Classify(
		returned(h("NULL", "NULL"), xm.NoAction, xm.NoAction), o))
	// (VALID, VALID_MID): clean pass.
	classified = append(classified, Classify(
		returned(h("VALID", "VALID_MID"), xm.OK, xm.OK), o))
	return classified
}

func TestMaskingStudyCounts(t *testing.T) {
	classified := classifyMatrix(t, "XM_multicall", xm.LegacyFaults())
	reports := MaskingStudy(classified)
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	r := reports[0]
	if r.Func != "XM_multicall" || r.Datasets != 4 {
		t.Fatalf("%+v", r)
	}
	if r.MaskedCandidates != 1 { // (NULL, NULL)
		t.Errorf("masked = %d, want 1", r.MaskedCandidates)
	}
	if r.UnmaskedProbes != 2 { // (NULL,VALID), (VALID,NULL)
		t.Errorf("unmasked = %d, want 2", r.UnmaskedProbes)
	}
	if r.FailuresUnmasked != 1 { // the endAddr-blamed overrun
		t.Errorf("exposed = %d, want 1", r.FailuresUnmasked)
	}
}

func TestMaskingStudySkipsSingleParamCalls(t *testing.T) {
	res := returned(mkResult(t, mkDataset(t, "XM_reset_system", "2")), xm.InvalidParam)
	reports := MaskingStudy([]Classified{Classify(res, NewOracle(xm.PatchedFaults()))})
	if len(reports) != 0 {
		t.Fatalf("single-parameter call produced masking rows: %+v", reports)
	}
}

func TestMaskingSummaryRenders(t *testing.T) {
	s := MaskingSummary(MaskingStudy(classifyMatrix(t, "XM_multicall", xm.LegacyFaults())))
	for _, want := range []string{"FAULT-MASKING STUDY", "XM_multicall", "masked", "exposed"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary lacks %q:\n%s", want, s)
		}
	}
}

func TestWithoutValidStripsValues(t *testing.T) {
	full := dict.Builtin()
	stripped := dict.WithoutValid(full)
	ptr, ok := stripped.Type("void*")
	if !ok {
		t.Fatal("void* lost")
	}
	if len(ptr.Values) != 1 || ptr.Values[0].Raw != dict.SymNull {
		t.Fatalf("boundary-only void* = %+v, want only NULL", ptr.Values)
	}
	// Types keep at least one value even if all were valid.
	for _, ts := range stripped.Types() {
		if len(ts.Values) == 0 {
			t.Errorf("%s went empty", ts.Name)
		}
		for _, v := range ts.Values {
			if v.Validity == dict.Valid && len(ts.Values) > 1 {
				t.Errorf("%s kept valid value %s", ts.Name, v)
			}
		}
	}
	// The original is untouched.
	orig, _ := full.Type("void*")
	if len(orig.Values) != 3 {
		t.Fatal("WithoutValid mutated its input")
	}
}

func TestWithoutValidShrinksMulticallMatrix(t *testing.T) {
	stripped := dict.WithoutValid(dict.Builtin())
	ds := mkMatrixSize(t, stripped, "XM_multicall")
	if ds != 1 {
		t.Fatalf("boundary-only multicall matrix = %d datasets, want 1 (NULL,NULL)", ds)
	}
}

func mkMatrixSize(t *testing.T, d *dict.Dictionary, fn string) int {
	t.Helper()
	f, ok := apispec.Default().Function(fn)
	if !ok {
		t.Fatalf("unknown function %q", fn)
	}
	m, err := testgen.BuildMatrix(f, d)
	if err != nil {
		t.Fatal(err)
	}
	return m.Combinations()
}
