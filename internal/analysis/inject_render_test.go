package analysis

import (
	"strings"
	"testing"

	"xmrobust/internal/inject"
)

// TestInjectionSummaryZeroFlipSites pins the zero-flip guard of the
// per-site masking-rate table: a site whose schedule armed it but whose
// flips never landed (no armed timer to upset, a crashed simulator)
// renders a "-" cell, never the NaN of 0/0 — the tiny-campaign case
// where a site appears with Applied == 0.
func TestInjectionSummaryZeroFlipSites(t *testing.T) {
	s := NewInjectionStudy()
	s.Tests, s.Armed, s.Applied = 10, 4, 2
	s.Sites = map[string]*InjectionSite{
		"ram": {Site: "ram", Armed: 2, Applied: 2,
			Outcomes: map[string]int{inject.OutcomeMasked: 1, inject.OutcomeCrash: 1}},
		"timer": {Site: "timer", Armed: 2, Applied: 0, Outcomes: map[string]int{}},
	}
	out := InjectionSummary(s)
	if strings.Contains(out, "NaN") {
		t.Fatalf("summary leaks NaN:\n%s", out)
	}
	var timerRow string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "timer") {
			timerRow = line
		}
	}
	if timerRow == "" {
		t.Fatalf("no timer row in:\n%s", out)
	}
	if !strings.HasSuffix(timerRow, "-") {
		t.Fatalf("zero-flip site should render '-', got %q", timerRow)
	}

	if rate := s.Sites["timer"].MaskingRate(); rate != 0 {
		t.Fatalf("MaskingRate with zero applied flips = %v, want 0", rate)
	}
}

// TestInjectionSummaryColumnAlignment pins the per-site table layout:
// every row ends at the same column as the header, so the mask% values
// (and the zero-flip "-" cells) line up under their heading.
func TestInjectionSummaryColumnAlignment(t *testing.T) {
	s := NewInjectionStudy()
	s.Tests, s.Armed, s.Applied = 400, 300, 250
	s.Sites = map[string]*InjectionSite{}
	for _, site := range []string{"clock", "iu", "mmu", "ram", "timer"} {
		applied := 50
		if site == "clock" {
			applied = 0 // the "-" cell must align too
		}
		s.Sites[site] = &InjectionSite{Site: site, Armed: 60, Applied: applied,
			Outcomes: map[string]int{inject.OutcomeMasked: applied}}
	}
	var header string
	var width int
	for _, line := range strings.Split(InjectionSummary(s), "\n") {
		switch {
		case strings.HasPrefix(line, "site "):
			header = line
			width = len(line)
		case header != "" && width > 0 && line != "" && !strings.HasPrefix(line, "mask%"):
			if len(line) != width {
				t.Errorf("row width %d != header width %d: %q", len(line), width, line)
			}
		}
	}
	if header == "" {
		t.Fatal("no header row found")
	}
}
