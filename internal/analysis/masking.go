package analysis

import (
	"fmt"
	"sort"
	"strings"

	"xmrobust/internal/campaign"
	"xmrobust/internal/dict"
)

// MaskingReport quantifies the fault-masking effect of paper Fig. 7 for
// one hypercall: a left-to-right parameter check means a dataset whose
// first parameters are invalid never exercises the checks (or bugs) behind
// the later parameters.
type MaskingReport struct {
	Func string
	// Datasets is the hypercall's total test count.
	Datasets int
	// MaskedCandidates counts datasets where an earlier parameter was
	// definitely invalid while a later one was also definitely invalid —
	// the later value's handling is unobservable in that test.
	MaskedCandidates int
	// UnmaskedProbes counts datasets where exactly one parameter was
	// definitely invalid: the dataset that unambiguously probes it.
	UnmaskedProbes int
	// FailuresUnmasked counts failing datasets whose blamed parameter was
	// *not* the first one — failures that a boundary-only dictionary
	// (without valid values) would have masked.
	FailuresUnmasked int
}

// MaskingStudy computes the masking statistics per hypercall over a
// classified campaign. Hypercalls with fewer than two parameters cannot
// mask and are skipped.
func MaskingStudy(classified []Classified) []MaskingReport {
	byFn := map[string]*MaskingReport{}
	for _, c := range classified {
		r := c.Result
		if len(r.Dataset.Func.Params) < 2 {
			continue
		}
		rep, ok := byFn[r.Dataset.Func.Name]
		if !ok {
			rep = &MaskingReport{Func: r.Dataset.Func.Name}
			byFn[r.Dataset.Func.Name] = rep
		}
		rep.Datasets++
		invalid := invalidPositions(r)
		switch {
		case len(invalid) >= 2:
			rep.MaskedCandidates++
		case len(invalid) == 1:
			rep.UnmaskedProbes++
		}
		if c.Verdict.Failure() && c.Blamed != "" &&
			len(r.Dataset.Func.Params) > 0 && c.Blamed != r.Dataset.Func.Params[0].Name {
			rep.FailuresUnmasked++
		}
	}
	out := make([]MaskingReport, 0, len(byFn))
	for _, rep := range byFn {
		out = append(out, *rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out
}

// invalidPositions returns the indices of definitely-invalid values.
func invalidPositions(r campaign.Result) []int {
	var out []int
	for i, v := range r.Resolved {
		if v.Validity == dict.Invalid {
			out = append(out, i)
		}
	}
	return out
}

// MaskingSummary renders the study.
func MaskingSummary(reports []MaskingReport) string {
	var b strings.Builder
	b.WriteString("FAULT-MASKING STUDY (paper Fig. 7)\n\n")
	fmt.Fprintf(&b, "%-32s %8s %8s %9s %9s\n", "hypercall", "datasets", "masked", "unmasked", "exposed")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-32s %8d %8d %9d %9d\n",
			r.Func, r.Datasets, r.MaskedCandidates, r.UnmaskedProbes, r.FailuresUnmasked)
	}
	b.WriteString("\nmasked   = datasets where an earlier invalid value hides a later one\n")
	b.WriteString("unmasked = datasets isolating exactly one invalid value\n")
	b.WriteString("exposed  = failures blamed on a non-first parameter (need valid values to surface)\n")
	return b.String()
}
