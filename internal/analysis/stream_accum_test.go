package analysis

import (
	"reflect"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// accumSuite runs a small real campaign with a mix of passes and several
// distinct failures — raw material for the accumulator tests.
func accumSuite(t *testing.T) []campaign.Result {
	t.Helper()
	h := apispec.Default()
	var results []campaign.Result
	for _, fn := range []string{"XM_reset_system", "XM_set_timer", "XM_multicall"} {
		f, ok := h.Function(fn)
		if !ok {
			t.Fatalf("unknown function %q", fn)
		}
		m, err := testgen.BuildMatrix(f, dict.Builtin())
		if err != nil {
			t.Fatal(err)
		}
		ds := m.Datasets()
		if len(ds) > 10 {
			ds = ds[:10]
		}
		results = append(results, campaign.RunDatasets(ds, campaign.Options{Workers: 2})...)
	}
	return results
}

// TestClustererOrderIndependent: the streaming Clusterer must render the
// identical issue list no matter the order results arrive in — worker
// completion order is nondeterministic.
func TestClustererOrderIndependent(t *testing.T) {
	results := accumSuite(t)
	oracle := NewOracle(xm.LegacyFaults())
	classified := ClassifyAll(results, oracle)
	eager := Cluster(classified)
	if len(eager) == 0 {
		t.Fatal("suite raised no issues; the comparison is vacuous")
	}

	reversed := NewClusterer()
	for i := len(classified) - 1; i >= 0; i-- {
		reversed.Add(i, classified[i])
	}
	shuffled := NewClusterer()
	for i := 0; i < len(classified); i += 2 {
		shuffled.Add(i, classified[i])
	}
	for i := 1; i < len(classified); i += 2 {
		shuffled.Add(i, classified[i])
	}
	for name, cl := range map[string]*Clusterer{"reversed": reversed, "interleaved": shuffled} {
		if got := cl.Issues(); !reflect.DeepEqual(got, eager) {
			t.Errorf("%s arrival order diverged from the eager clustering:\ngot:  %+v\nwant: %+v", name, got, eager)
		}
	}
	// The accumulator must stay usable after a snapshot.
	if got := reversed.Issues(); !reflect.DeepEqual(got, eager) {
		t.Error("second Issues() snapshot diverged")
	}
}

// TestClassifierTallies: the streaming Classifier's aggregates must equal
// what eager classification would count.
func TestClassifierTallies(t *testing.T) {
	results := accumSuite(t)
	oracle := NewOracle(xm.LegacyFaults())
	cls := NewClassifier(oracle)
	for _, r := range results {
		cls.Add(r)
	}
	if cls.Tests != len(results) {
		t.Fatalf("Tests = %d, want %d", cls.Tests, len(results))
	}
	wantVerdicts := map[Verdict]int{}
	wantFuncs := map[string]int{}
	for _, c := range ClassifyAll(results, oracle) {
		wantVerdicts[c.Verdict]++
		wantFuncs[c.Result.Dataset.Func.Name]++
	}
	if !reflect.DeepEqual(cls.Verdicts, wantVerdicts) {
		t.Fatalf("Verdicts = %+v, want %+v", cls.Verdicts, wantVerdicts)
	}
	if !reflect.DeepEqual(cls.TestsByFunc, wantFuncs) {
		t.Fatalf("TestsByFunc = %+v, want %+v", cls.TestsByFunc, wantFuncs)
	}
	if cls.HarnessErrors != 0 {
		t.Fatalf("HarnessErrors = %d on a clean suite", cls.HarnessErrors)
	}
}

// TestClustererFailureCount: Failures counts only failing tests.
func TestClustererFailureCount(t *testing.T) {
	results := accumSuite(t)
	oracle := NewOracle(xm.LegacyFaults())
	clu := NewClusterer()
	want := 0
	for i, r := range results {
		c := Classify(r, oracle)
		if c.Verdict.Failure() {
			want++
		}
		clu.Add(i, c)
	}
	if clu.Failures() != want {
		t.Fatalf("Failures = %d, want %d", clu.Failures(), want)
	}
	cases := 0
	for _, iss := range clu.Issues() {
		cases += len(iss.Cases)
	}
	if cases != want {
		t.Fatalf("issue cases sum to %d, want %d", cases, want)
	}
}
