package analysis

import (
	"math"

	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// ExpectKind is what the oracle predicts for a dataset.
type ExpectKind int

// Prediction kinds.
const (
	// NoPrediction: the oracle does not encode this hypercall's manual
	// semantics; only observed events can fail the test. This is the
	// paper's default position ("the creation of an oracle ... is usually
	// considered impractical").
	NoPrediction ExpectKind = iota
	// ExpectReturn: the call must return one of Codes.
	ExpectReturn
	// ExpectReset: the call legitimately resets the system (cold/warm).
	ExpectReset
	// ExpectStop: control legitimately does not return to the guest — the
	// call stops the caller (XM_idle_self, XM_suspend_self) or, with
	// KernelHalt set, the whole hypervisor (XM_halt_system).
	ExpectStop
)

// Prediction is the oracle's expected behaviour for one dataset.
type Prediction struct {
	Kind       ExpectKind
	Codes      []xm.RetCode // for ExpectReturn
	Cold       bool         // for ExpectReset
	KernelHalt bool         // for ExpectStop: the hypervisor itself stops
}

// Allows reports whether a returned code satisfies the prediction.
func (p Prediction) Allows(ret xm.RetCode) bool {
	if p.Kind != ExpectReturn {
		return true
	}
	for _, c := range p.Codes {
		if ret == c {
			return true
		}
	}
	// Any non-negative code satisfies an expected-success prediction
	// carrying XM_OK (port services return descriptors/counts >= 0).
	for _, c := range p.Codes {
		if c == xm.OK && ret > 0 {
			return true
		}
	}
	return false
}

// Oracle predicts expected behaviour from the kernel reference manual. It
// encodes the manual rules for the hypercall categories whose semantics
// the paper's findings concern (System, Time, Miscellaneous); all other
// calls yield NoPrediction, mirroring the paper's manual-crosscheck scope.
//
// Revision selects which edition of the manual the oracle reads: the
// legacy manual documents XM_multicall as an available service, the
// patched manual documents it as removed.
type Oracle struct {
	// Patched selects the post-fault-removal manual edition.
	Patched bool
}

// NewOracle builds the oracle for the manual edition matching a fault set.
func NewOracle(f xm.FaultSet) *Oracle { return &Oracle{Patched: f.Patched()} }

// value extracts the dataset's i-th 64-bit value image. Symbolic values
// are classified by token, so the oracle never needs the resolved layout.
func value(ds testgen.Dataset, i int) (dict.Value, bool) {
	if i < 0 || i >= len(ds.Values) {
		return dict.Value{}, false
	}
	return ds.Values[i], true
}

func literal(ds testgen.Dataset, i int) (int64, bool) {
	v, ok := value(ds, i)
	if !ok || v.IsSymbol() {
		return 0, false
	}
	// Re-parse through the dictionary's own literal rules.
	r, err := dict.Layout{}.Resolve(v)
	if err != nil {
		return 0, false
	}
	return int64(r.Bits), true
}

// Predict returns the expected behaviour of one dataset.
func (o *Oracle) Predict(ds testgen.Dataset) Prediction {
	switch ds.Func.Name {
	case "XM_halt_system":
		return Prediction{Kind: ExpectStop, KernelHalt: true}

	case "XM_idle_self", "XM_suspend_self":
		return Prediction{Kind: ExpectStop}

	case "XM_hm_open", "XM_hm_reset", "XM_enable_irqs",
		"XM_sparc_flush_regwin", "XM_sparc_enable_traps", "XM_sparc_disable_traps",
		"XM_sparc_get_psr":
		// Parameter-less services with a documented plain success.
		return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.OK}}

	case "XM_reset_system":
		mode, ok := literal(ds, 0)
		if !ok {
			return Prediction{}
		}
		switch uint32(mode) {
		case xm.ColdReset:
			return Prediction{Kind: ExpectReset, Cold: true}
		case xm.WarmReset:
			return Prediction{Kind: ExpectReset, Cold: false}
		default:
			// "XM_reset_system ... should have returned the invalid
			// parameter return code XM_INVALID_PARAM."
			return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.InvalidParam}}
		}

	case "XM_get_system_status":
		v, ok := value(ds, 0)
		if !ok {
			return Prediction{}
		}
		if v.Raw == dict.SymValid || v.Raw == dict.SymValidMid {
			return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.OK}}
		}
		return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.InvalidParam}}

	case "XM_set_timer":
		clock, ok := literal(ds, 0)
		if !ok {
			return Prediction{}
		}
		if uint32(clock) != xm.HwClock && uint32(clock) != xm.ExecClock {
			return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.InvalidParam}}
		}
		absTime, ok1 := literal(ds, 1)
		interval, ok2 := literal(ds, 2)
		if !ok1 || !ok2 {
			return Prediction{}
		}
		// The revised manual: XM_INVALID_PARAM for negative instants and
		// for intervals below 50us.
		if absTime < 0 || interval < 0 ||
			(interval > 0 && interval < int64(xm.MinTimerInterval)) {
			return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.InvalidParam}}
		}
		return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.OK}}

	case "XM_multicall":
		if o.Patched {
			// "This service has been temporarily removed."
			return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.OpNotAllowed}}
		}
		start, ok1 := value(ds, 0)
		end, ok2 := value(ds, 1)
		if !ok1 || !ok2 {
			return Prediction{}
		}
		if start.Raw == end.Raw {
			// An empty batch performs no work.
			return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.NoAction}}
		}
		if start.Validity == dict.Invalid || end.Validity == dict.Invalid {
			return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.InvalidParam}}
		}
		// A well-formed batch returns the number of executed entries.
		return Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.OK}}
	}
	return Prediction{}
}

// MaxNegativeInterval is the LLONG_MIN literal of the paper's Time
// Management findings, exposed for tests and documentation.
const MaxNegativeInterval = int64(math.MinInt64)
