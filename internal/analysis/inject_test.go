package analysis

import (
	"strings"
	"testing"

	"xmrobust/internal/campaign"
	"xmrobust/internal/inject"
)

// injectedResult builds one result carrying an injection record.
func injectedResult(site, outcome string, applied bool) campaign.Result {
	var r campaign.Result
	r.Injection = &inject.Injection{Site: site, Phase: inject.PhaseMid, Applied: applied, Outcome: outcome}
	return r
}

func TestInjectionStudyTallies(t *testing.T) {
	s := NewInjectionStudy()
	s.Add(campaign.Result{}) // clean test: counted, not armed
	s.Add(injectedResult(inject.SiteRAM, inject.OutcomeMasked, true))
	s.Add(injectedResult(inject.SiteRAM, inject.OutcomeCrash, true))
	s.Add(injectedResult(inject.SiteRAM, "", false)) // armed, nowhere to land
	s.Add(injectedResult(inject.SiteMMU, inject.OutcomeDetected, true))

	if s.Tests != 5 || s.Armed != 4 || s.Applied != 3 {
		t.Fatalf("tests/armed/applied = %d/%d/%d", s.Tests, s.Armed, s.Applied)
	}
	ram := s.Sites[inject.SiteRAM]
	if ram == nil || ram.Armed != 3 || ram.Applied != 2 {
		t.Fatalf("ram site = %+v", ram)
	}
	if got := ram.MaskingRate(); got != 0.5 {
		t.Fatalf("ram masking rate = %v", got)
	}
	if s.Outcome(inject.OutcomeCrash) != 1 || s.Outcome(inject.OutcomeDetected) != 1 {
		t.Fatal("campaign-wide outcome counts wrong")
	}
	if s.Empty() {
		t.Fatal("study with armed tests reports empty")
	}
	if !NewInjectionStudy().Empty() || !(*InjectionStudy)(nil).Empty() {
		t.Fatal("empty/nil study must report empty")
	}
	sites := s.SiteList()
	if len(sites) != 2 || sites[0].Site != inject.SiteMMU || sites[1].Site != inject.SiteRAM {
		t.Fatalf("site list order: %+v", sites)
	}
}

func TestInjectionSummaryRendersSitesAndRates(t *testing.T) {
	s := NewInjectionStudy()
	for i := 0; i < 3; i++ {
		s.Add(injectedResult(inject.SiteIU, inject.OutcomeMasked, true))
	}
	s.Add(injectedResult(inject.SiteIU, inject.OutcomeCrash, true))
	s.Add(injectedResult(inject.SiteTimer, "", false))
	out := InjectionSummary(s)
	for _, want := range []string{
		"SEU FAULT INJECTION",
		"injection: 5 of 5 tests armed, 4 flips applied — masked 3, wrong-result 0, hm-detected 0, crash 1, hang 0",
		"iu",
		"75.0%",
		"timer",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary lacks %q:\n%s", want, out)
		}
	}
	// A site with nothing applied renders a dash, not a bogus 0% rate.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "timer") && !strings.HasSuffix(line, "-") {
			t.Fatalf("timer row should end with '-': %q", line)
		}
	}
}
