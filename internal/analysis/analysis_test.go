package analysis

import (
	"strings"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
	"xmrobust/internal/dict"
	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

var testLayout = dict.Layout{
	DataArea:  sparc.Region{Base: 0x40500000, Size: 0x10000},
	OtherArea: sparc.Region{Base: 0x40100000, Size: 0x10000},
	Kernel:    0x40000000,
	ROM:       0x100,
	IO:        0x80000000,
}

// mkDataset builds a dataset from raw value strings, pulling dictionary
// metadata from the builtin sets so validity hints are realistic.
func mkDataset(t *testing.T, fn string, raws ...string) testgen.Dataset {
	t.Helper()
	h := apispec.Default()
	f, ok := h.Function(fn)
	if !ok {
		t.Fatalf("unknown function %q", fn)
	}
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range m.Datasets() {
		if len(ds.Values) != len(raws) {
			continue
		}
		match := true
		for i := range raws {
			if ds.Values[i].Raw != raws[i] {
				match = false
				break
			}
		}
		if match {
			return ds
		}
	}
	t.Fatalf("no dataset %s%v in the builtin matrix", fn, raws)
	return testgen.Dataset{}
}

// mkResult builds a synthetic campaign result around a dataset.
func mkResult(t *testing.T, ds testgen.Dataset) campaign.Result {
	t.Helper()
	res := campaign.Result{
		Dataset:       ds,
		TestPartition: 4, // the FDIR analogue the synthetic HM events name
		KernelState:   xm.KStateRunning,
		PartState:     xm.PStateNormal,
	}
	for _, v := range ds.Values {
		r, err := testLayout.Resolve(v)
		if err != nil {
			t.Fatal(err)
		}
		res.Resolved = append(res.Resolved, r)
	}
	return res
}

func returned(res campaign.Result, codes ...xm.RetCode) campaign.Result {
	res.Invocations = len(codes)
	res.Returns = codes
	return res
}

func legacyOracle() *Oracle  { return NewOracle(xm.LegacyFaults()) }
func patchedOracle() *Oracle { return NewOracle(xm.PatchedFaults()) }

// --- Oracle -----------------------------------------------------------------

func TestOracleResetSystem(t *testing.T) {
	o := legacyOracle()
	if p := o.Predict(mkDataset(t, "XM_reset_system", "0")); p.Kind != ExpectReset || !p.Cold {
		t.Errorf("mode 0: %+v", p)
	}
	if p := o.Predict(mkDataset(t, "XM_reset_system", "1")); p.Kind != ExpectReset || p.Cold {
		t.Errorf("mode 1: %+v", p)
	}
	for _, raw := range []string{"2", "16", "4294967295"} {
		p := o.Predict(mkDataset(t, "XM_reset_system", raw))
		if p.Kind != ExpectReturn || !p.Allows(xm.InvalidParam) || p.Allows(xm.OK) {
			t.Errorf("mode %s: %+v", raw, p)
		}
	}
}

func TestOracleSetTimer(t *testing.T) {
	o := legacyOracle()
	// Every builtin set_timer dataset is invalid per the revised manual.
	ds := mkDataset(t, "XM_set_timer", "0", "1", "1")
	if p := o.Predict(ds); p.Kind != ExpectReturn || p.Allows(xm.OK) {
		t.Errorf("interval 1us: %+v", p)
	}
	ds = mkDataset(t, "XM_set_timer", "1", "1", "-9223372036854775808")
	if p := o.Predict(ds); p.Kind != ExpectReturn || p.Allows(xm.OK) {
		t.Errorf("negative interval: %+v", p)
	}
	ds = mkDataset(t, "XM_set_timer", "16", "1", "1")
	if p := o.Predict(ds); !p.Allows(xm.InvalidParam) {
		t.Errorf("invalid clock: %+v", p)
	}
}

func TestOracleMulticall(t *testing.T) {
	o := legacyOracle()
	if p := o.Predict(mkDataset(t, "XM_multicall", "NULL", "NULL")); !p.Allows(xm.NoAction) {
		t.Errorf("empty batch: %+v", p)
	}
	if p := o.Predict(mkDataset(t, "XM_multicall", "NULL", "VALID")); !p.Allows(xm.InvalidParam) {
		t.Errorf("null start: %+v", p)
	}
	if p := o.Predict(mkDataset(t, "XM_multicall", "VALID", "VALID_MID")); !p.Allows(xm.OK) || !p.Allows(xm.RetCode(2048)) {
		t.Errorf("valid batch: %+v", p)
	}
	po := patchedOracle()
	if p := po.Predict(mkDataset(t, "XM_multicall", "NULL", "VALID")); !p.Allows(xm.OpNotAllowed) || p.Allows(xm.InvalidParam) {
		t.Errorf("patched manual: %+v", p)
	}
}

func TestOracleNoPredictionForUnmodelledCalls(t *testing.T) {
	o := legacyOracle()
	ds := mkDataset(t, "XM_memory_copy", "NULL", "VALID", "0")
	if p := o.Predict(ds); p.Kind != NoPrediction {
		t.Errorf("memory_copy: %+v, want NoPrediction", p)
	}
}

func TestPredictionAllowsPositiveDescriptors(t *testing.T) {
	p := Prediction{Kind: ExpectReturn, Codes: []xm.RetCode{xm.OK}}
	if !p.Allows(xm.RetCode(7)) {
		t.Error("positive descriptor rejected under an XM_OK prediction")
	}
	if p.Allows(xm.InvalidParam) {
		t.Error("error code allowed under an XM_OK prediction")
	}
}

// --- Classification ------------------------------------------------------------

func TestClassifySimCrashIsCatastrophic(t *testing.T) {
	res := mkResult(t, mkDataset(t, "XM_set_timer", "1", "1", "1"))
	res.SimCrashed = true
	res.CrashReason = "timer trap"
	c := Classify(res, legacyOracle())
	if c.Verdict != Catastrophic || c.Reaction != ReactSimCrash {
		t.Fatalf("%+v", c)
	}
}

func TestClassifyKernelHaltIsCatastrophic(t *testing.T) {
	res := mkResult(t, mkDataset(t, "XM_set_timer", "0", "1", "1"))
	res.KernelState = xm.KStateHalted
	res.KernelHalt = "stack overflow"
	c := Classify(res, legacyOracle())
	if c.Verdict != Catastrophic || c.Reaction != ReactKernelHalt {
		t.Fatalf("%+v", c)
	}
}

func TestClassifyExpectedResetPasses(t *testing.T) {
	res := mkResult(t, mkDataset(t, "XM_reset_system", "0"))
	res.ColdResets = 2
	c := Classify(res, legacyOracle())
	if c.Verdict != Pass {
		t.Fatalf("valid cold reset classified %v", c.Verdict)
	}
	res = mkResult(t, mkDataset(t, "XM_reset_system", "1"))
	res.WarmResets = 2
	if c := Classify(res, legacyOracle()); c.Verdict != Pass {
		t.Fatalf("valid warm reset classified %v", c.Verdict)
	}
}

func TestClassifyUnexpectedResetSplitsByDataset(t *testing.T) {
	res2 := mkResult(t, mkDataset(t, "XM_reset_system", "2"))
	res2.ColdResets = 2
	res16 := mkResult(t, mkDataset(t, "XM_reset_system", "16"))
	res16.ColdResets = 2
	c2 := Classify(res2, legacyOracle())
	c16 := Classify(res16, legacyOracle())
	if c2.Verdict != Catastrophic || c2.Reaction != ReactColdReset {
		t.Fatalf("%+v", c2)
	}
	if c2.Blamed == c16.Blamed {
		t.Fatal("unexpected-reset datasets must cluster separately")
	}
	resMax := mkResult(t, mkDataset(t, "XM_reset_system", "4294967295"))
	resMax.WarmResets = 2
	if c := Classify(resMax, legacyOracle()); c.Reaction != ReactWarmReset {
		t.Fatalf("%+v", c)
	}
}

func TestClassifyPartitionHaltIsAbort(t *testing.T) {
	res := mkResult(t, mkDataset(t, "XM_multicall", "NULL", "VALID"))
	res.PartState = xm.PStateHalted
	res.HMEvents = []xm.HMLogEntry{{Event: xm.HMEvMemProtection, PartitionID: 4,
		Detail: "unhandled data access exception"}}
	c := Classify(res, legacyOracle())
	if c.Verdict != Abort || c.Reaction != ReactKernelTrap || c.Blamed != "startAddr" {
		t.Fatalf("%+v", c)
	}
}

func TestClassifySuspensionIsRestart(t *testing.T) {
	res := mkResult(t, mkDataset(t, "XM_multicall", "VALID", "NULL"))
	res.PartState = xm.PStateSuspended
	res.HMEvents = []xm.HMLogEntry{{Event: xm.HMEvSchedOverrun, PartitionID: 4, Detail: "overrun"}}
	c := Classify(res, legacyOracle())
	if c.Verdict != Restart || c.Reaction != ReactOverrun || c.Blamed != "endAddr" {
		t.Fatalf("%+v", c)
	}
	// Both-valid overrun: the temporal-isolation case with no blamed
	// parameter.
	res = mkResult(t, mkDataset(t, "XM_multicall", "VALID", "VALID_MID"))
	res.PartState = xm.PStateSuspended
	res.HMEvents = []xm.HMLogEntry{{Event: xm.HMEvSchedOverrun, PartitionID: 4, Detail: "overrun"}}
	if c := Classify(res, legacyOracle()); c.Blamed != "" {
		t.Fatalf("valid-batch overrun blamed %q", c.Blamed)
	}
}

func TestClassifySilentAndHindering(t *testing.T) {
	// Silent: success where the manual demands an error.
	res := returned(mkResult(t, mkDataset(t, "XM_set_timer", "0", "1", "-9223372036854775808")), xm.OK, xm.OK)
	c := Classify(res, legacyOracle())
	if c.Verdict != Silent || c.Reaction != ReactSilentOK {
		t.Fatalf("%+v", c)
	}
	// Hindering: the wrong error code.
	res = returned(mkResult(t, mkDataset(t, "XM_set_timer", "0", "1", "-9223372036854775808")), xm.PermError)
	if c := Classify(res, legacyOracle()); c.Verdict != Hindering || c.Reaction != ReactWrongError {
		t.Fatalf("%+v", c)
	}
}

func TestClassifyCorrectErrorPasses(t *testing.T) {
	res := returned(mkResult(t, mkDataset(t, "XM_reset_system", "2")), xm.InvalidParam, xm.InvalidParam)
	if c := Classify(res, patchedOracle()); c.Verdict != Pass {
		t.Fatalf("%+v", c)
	}
}

func TestClassifyNoPredictionNeverSilent(t *testing.T) {
	// Without a manual model, a plain return cannot fail the test — the
	// paper's central point about oracle-less analysis.
	res := returned(mkResult(t, mkDataset(t, "XM_memory_copy", "NULL", "NULL", "0")), xm.OK, xm.OK)
	if c := Classify(res, legacyOracle()); c.Verdict != Pass {
		t.Fatalf("%+v", c)
	}
}

func TestClassifyNoReturnIsRestart(t *testing.T) {
	res := mkResult(t, mkDataset(t, "XM_memory_copy", "NULL", "NULL", "0"))
	res.Invocations = 2
	res.Returns = nil
	if c := Classify(res, legacyOracle()); c.Verdict != Restart || c.Reaction != ReactNoReturn {
		t.Fatalf("%+v", c)
	}
}

func TestClassifyHarnessError(t *testing.T) {
	res := mkResult(t, mkDataset(t, "XM_memory_copy", "NULL", "NULL", "0"))
	res.RunErr = "boom"
	if c := Classify(res, legacyOracle()); c.Verdict != Catastrophic || c.Reaction != ReactHarnessFail {
		t.Fatalf("%+v", c)
	}
}

// --- Clustering -------------------------------------------------------------

func TestClusterGroupsBySignature(t *testing.T) {
	var classified []Classified
	// Two halts of set_timer -> one issue.
	for _, raws := range [][]string{{"0", "1", "1"}, {"0", "-9223372036854775808", "1"}} {
		res := mkResult(t, mkDataset(t, "XM_set_timer", raws...))
		res.KernelState = xm.KStateHalted
		classified = append(classified, Classify(res, legacyOracle()))
	}
	// Three reset datasets -> three issues.
	for _, raw := range []string{"2", "16", "4294967295"} {
		res := mkResult(t, mkDataset(t, "XM_reset_system", raw))
		if raw == "4294967295" {
			res.WarmResets = 1
		} else {
			res.ColdResets = 1
		}
		classified = append(classified, Classify(res, legacyOracle()))
	}
	// Passing tests never cluster.
	classified = append(classified, Classify(
		returned(mkResult(t, mkDataset(t, "XM_memory_copy", "NULL", "NULL", "0")), xm.OK, xm.OK),
		legacyOracle()))

	issues := Cluster(classified)
	if len(issues) != 4 {
		t.Fatalf("issues = %d, want 4:\n%s", len(issues), Summary(issues))
	}
	// Deterministic order: reset_system (nr 2) before set_timer (nr 15).
	if issues[0].Func != "XM_reset_system" || issues[3].Func != "XM_set_timer" {
		t.Fatalf("order: %v", issues)
	}
	if len(issues[3].Cases) != 2 {
		t.Fatalf("set_timer issue has %d cases, want 2", len(issues[3].Cases))
	}
	if issues[3].Category != xm.CatTime {
		t.Fatalf("set_timer category = %s", issues[3].Category)
	}
}

func TestIssuesByCategory(t *testing.T) {
	res := mkResult(t, mkDataset(t, "XM_reset_system", "2"))
	res.ColdResets = 1
	issues := Cluster([]Classified{Classify(res, legacyOracle())})
	counts := IssuesByCategory(issues)
	if counts[xm.CatSystem] != 1 || len(counts) != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSummaryReadable(t *testing.T) {
	res := mkResult(t, mkDataset(t, "XM_reset_system", "2"))
	res.ColdResets = 1
	issues := Cluster([]Classified{Classify(res, legacyOracle())})
	s := Summary(issues)
	for _, want := range []string{"1 distinct robustness issues", "XM_reset_system", "unexpected cold reset", "case: XM_reset_system(2)"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary lacks %q:\n%s", want, s)
		}
	}
}

func TestOracleExpectStopCalls(t *testing.T) {
	o := legacyOracle()
	h := apispec.Default()
	mk := func(fn string) testgen.Dataset {
		f, ok := h.Function(fn)
		if !ok {
			t.Fatalf("unknown %s", fn)
		}
		return testgen.Dataset{Func: f}
	}
	if p := o.Predict(mk("XM_halt_system")); p.Kind != ExpectStop || !p.KernelHalt {
		t.Errorf("halt_system: %+v", p)
	}
	for _, fn := range []string{"XM_idle_self", "XM_suspend_self"} {
		if p := o.Predict(mk(fn)); p.Kind != ExpectStop || p.KernelHalt {
			t.Errorf("%s: %+v", fn, p)
		}
	}
	for _, fn := range []string{"XM_hm_open", "XM_hm_reset", "XM_enable_irqs", "XM_sparc_get_psr"} {
		if p := o.Predict(mk(fn)); p.Kind != ExpectReturn || !p.Allows(xm.OK) {
			t.Errorf("%s: %+v", fn, p)
		}
	}
}

func TestClassifyExpectedStopsPass(t *testing.T) {
	o := legacyOracle()
	h := apispec.Default()
	mkRes := func(fn string) campaign.Result {
		f, _ := h.Function(fn)
		return campaign.Result{
			Dataset:       testgen.Dataset{Func: f},
			TestPartition: 4,
			KernelState:   xm.KStateRunning,
			PartState:     xm.PStateNormal,
			Invocations:   1,
		}
	}
	// XM_halt_system: the kernel halting is the documented behaviour.
	res := mkRes("XM_halt_system")
	res.KernelState = xm.KStateHalted
	if c := Classify(res, o); c.Verdict != Pass {
		t.Errorf("halt_system halt classified %v", c.Verdict)
	}
	// XM_suspend_self: the partition suspending is documented.
	res = mkRes("XM_suspend_self")
	res.PartState = xm.PStateSuspended
	if c := Classify(res, o); c.Verdict != Pass {
		t.Errorf("suspend_self suspension classified %v", c.Verdict)
	}
	// XM_idle_self: no return is documented.
	res = mkRes("XM_idle_self")
	if c := Classify(res, o); c.Verdict != Pass {
		t.Errorf("idle_self no-return classified %v", c.Verdict)
	}
	// But an unexpected halt on a plain service still fails.
	res = mkRes("XM_hm_open")
	res.KernelState = xm.KStateHalted
	if c := Classify(res, o); c.Verdict != Catastrophic {
		t.Errorf("hm_open halt classified %v", c.Verdict)
	}
}
