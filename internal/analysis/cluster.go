package analysis

import (
	"fmt"
	"sort"
	"strings"

	"xmrobust/internal/xm"
)

// Issue is one distinct robustness vulnerability: the unit the paper's
// Table III "Raised Issues" column counts. Failing tests cluster into an
// issue when they hit the same hypercall with the same kernel reaction and
// the same blamed parameter; unexpected-reset reactions additionally
// split per injected dataset, since each is an independently documented
// reproducer (the paper lists XM_reset_system(2), (16) and (4294967295)
// as three issues).
type Issue struct {
	Func     string
	Category xm.Category
	Verdict  Verdict
	Reaction string
	Blamed   string
	// Cases are the failing datasets, rendered as calls.
	Cases []string
	// Detail is representative evidence from the first case.
	Detail string
}

// ID returns a stable, human-readable issue identifier.
func (i Issue) ID() string {
	key := i.Func + "|" + i.Reaction
	if i.Blamed != "" {
		key += "|" + i.Blamed
	}
	return key
}

func (i Issue) String() string {
	return fmt.Sprintf("%s [%s] %s (%d failing tests)", i.Func, i.Verdict, i.Reaction, len(i.Cases))
}

// clusterKey is the identity of an issue.
type clusterKey struct {
	fn       string
	verdict  Verdict
	reaction string
	blamed   string
}

// caseRef is one failing test of an issue, tagged with its campaign
// position so snapshots order cases deterministically no matter the
// arrival order.
type caseRef struct {
	seq  int
	call string
}

// issueAcc accumulates one issue's evidence.
type issueAcc struct {
	key       clusterKey
	category  xm.Category
	detail    string
	detailSeq int
	cases     []caseRef
}

// Clusterer is the streaming form of the issue-clustering stage: failing
// tests are folded in one at a time, in any order, and Issues renders the
// deterministic issue list at any point. Only the cluster evidence is
// retained (one rendered call per failing test) — never the execution
// logs, so memory stays proportional to the failure count.
type Clusterer struct {
	byKey    map[clusterKey]*issueAcc
	failures int
}

// NewClusterer returns an empty accumulator.
func NewClusterer() *Clusterer {
	return &Clusterer{byKey: map[clusterKey]*issueAcc{}}
}

// Add folds one classified test in; seq is its campaign position, which
// orders an issue's case list and selects its representative evidence.
// Passing tests are ignored.
func (cl *Clusterer) Add(seq int, c Classified) {
	if !c.Verdict.Failure() {
		return
	}
	cl.failures++
	key := clusterKey{
		fn:       c.Result.Dataset.Func.Name,
		verdict:  c.Verdict,
		reaction: c.Reaction,
		blamed:   c.Blamed,
	}
	acc, ok := cl.byKey[key]
	if !ok {
		cat := xm.Category(c.Result.Dataset.Func.Category)
		if spec, found := xm.LookupName(key.fn); found {
			cat = spec.Category
		}
		acc = &issueAcc{key: key, category: cat, detail: c.Detail, detailSeq: seq}
		cl.byKey[key] = acc
	} else if seq < acc.detailSeq {
		// The representative evidence is the campaign's earliest case,
		// regardless of completion order.
		acc.detail, acc.detailSeq = c.Detail, seq
	}
	acc.cases = append(acc.cases, caseRef{seq: seq, call: c.Result.Dataset.String()})
}

// Failures returns how many failing tests have been folded in.
func (cl *Clusterer) Failures() int { return cl.failures }

// Issues renders the issue list: ordered by hypercall number, then
// reaction, blamed parameter and verdict, with each issue's cases in
// campaign order. The accumulator stays usable afterwards.
func (cl *Clusterer) Issues() []Issue {
	order := make([]clusterKey, 0, len(cl.byKey))
	for k := range cl.byKey {
		order = append(order, k)
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := order[a], order[b]
		na, _ := xm.LookupName(ka.fn)
		nb, _ := xm.LookupName(kb.fn)
		if na.Nr != nb.Nr {
			return na.Nr < nb.Nr
		}
		if ka.reaction != kb.reaction {
			return ka.reaction < kb.reaction
		}
		if ka.blamed != kb.blamed {
			return ka.blamed < kb.blamed
		}
		return ka.verdict < kb.verdict
	})
	out := make([]Issue, 0, len(order))
	for _, k := range order {
		acc := cl.byKey[k]
		cases := append([]caseRef(nil), acc.cases...)
		sort.Slice(cases, func(a, b int) bool { return cases[a].seq < cases[b].seq })
		iss := Issue{
			Func: k.fn, Category: acc.category, Verdict: k.verdict,
			Reaction: k.reaction, Blamed: k.blamed, Detail: acc.detail,
			Cases: make([]string, len(cases)),
		}
		for i, c := range cases {
			iss.Cases[i] = c.call
		}
		out = append(out, iss)
	}
	return out
}

// Cluster groups the failing tests of a classified campaign into issues —
// the eager wrapper over the streaming Clusterer.
func Cluster(classified []Classified) []Issue {
	cl := NewClusterer()
	for i, c := range classified {
		cl.Add(i, c)
	}
	return cl.Issues()
}

// IssuesByCategory counts issues per hypercall category (the Table III
// "Raised Issues" column).
func IssuesByCategory(issues []Issue) map[xm.Category]int {
	out := map[xm.Category]int{}
	for _, iss := range issues {
		out[iss.Category]++
	}
	return out
}

// Summary renders the issue list as the campaign report's findings
// section.
func Summary(issues []Issue) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d distinct robustness issues\n", len(issues))
	for n, iss := range issues {
		fmt.Fprintf(&b, "\n[%d] %s — %s (%s)\n", n+1, iss.Func, iss.Reaction, iss.Verdict)
		if iss.Blamed != "" {
			fmt.Fprintf(&b, "    blamed: %s\n", iss.Blamed)
		}
		if iss.Detail != "" {
			fmt.Fprintf(&b, "    evidence: %s\n", iss.Detail)
		}
		max := len(iss.Cases)
		if max > 4 {
			max = 4
		}
		for _, c := range iss.Cases[:max] {
			fmt.Fprintf(&b, "    case: %s\n", c)
		}
		if len(iss.Cases) > max {
			fmt.Fprintf(&b, "    ... and %d more\n", len(iss.Cases)-max)
		}
	}
	return b.String()
}
