package analysis

import (
	"fmt"
	"sort"
	"strings"

	"xmrobust/internal/xm"
)

// Issue is one distinct robustness vulnerability: the unit the paper's
// Table III "Raised Issues" column counts. Failing tests cluster into an
// issue when they hit the same hypercall with the same kernel reaction and
// the same blamed parameter; unexpected-reset reactions additionally
// split per injected dataset, since each is an independently documented
// reproducer (the paper lists XM_reset_system(2), (16) and (4294967295)
// as three issues).
type Issue struct {
	Func     string
	Category xm.Category
	Verdict  Verdict
	Reaction string
	Blamed   string
	// Cases are the failing datasets, rendered as calls.
	Cases []string
	// Detail is representative evidence from the first case.
	Detail string
}

// ID returns a stable, human-readable issue identifier.
func (i Issue) ID() string {
	key := i.Func + "|" + i.Reaction
	if i.Blamed != "" {
		key += "|" + i.Blamed
	}
	return key
}

func (i Issue) String() string {
	return fmt.Sprintf("%s [%s] %s (%d failing tests)", i.Func, i.Verdict, i.Reaction, len(i.Cases))
}

// clusterKey is the identity of an issue.
type clusterKey struct {
	fn       string
	verdict  Verdict
	reaction string
	blamed   string
}

// Cluster groups the failing tests of a classified campaign into issues.
// Issues are ordered by hypercall number, then reaction.
func Cluster(classified []Classified) []Issue {
	byKey := map[clusterKey]*Issue{}
	var order []clusterKey
	for _, c := range classified {
		if !c.Verdict.Failure() {
			continue
		}
		key := clusterKey{
			fn:       c.Result.Dataset.Func.Name,
			verdict:  c.Verdict,
			reaction: c.Reaction,
			blamed:   c.Blamed,
		}
		iss, ok := byKey[key]
		if !ok {
			cat := xm.Category(c.Result.Dataset.Func.Category)
			if spec, found := xm.LookupName(key.fn); found {
				cat = spec.Category
			}
			iss = &Issue{
				Func: key.fn, Category: cat, Verdict: c.Verdict,
				Reaction: c.Reaction, Blamed: c.Blamed, Detail: c.Detail,
			}
			byKey[key] = iss
			order = append(order, key)
		}
		iss.Cases = append(iss.Cases, c.Result.Dataset.String())
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := order[a], order[b]
		na, _ := xm.LookupName(ka.fn)
		nb, _ := xm.LookupName(kb.fn)
		if na.Nr != nb.Nr {
			return na.Nr < nb.Nr
		}
		if ka.reaction != kb.reaction {
			return ka.reaction < kb.reaction
		}
		return ka.blamed < kb.blamed
	})
	out := make([]Issue, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// IssuesByCategory counts issues per hypercall category (the Table III
// "Raised Issues" column).
func IssuesByCategory(issues []Issue) map[xm.Category]int {
	out := map[xm.Category]int{}
	for _, iss := range issues {
		out[iss.Category]++
	}
	return out
}

// Summary renders the issue list as the campaign report's findings
// section.
func Summary(issues []Issue) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d distinct robustness issues\n", len(issues))
	for n, iss := range issues {
		fmt.Fprintf(&b, "\n[%d] %s — %s (%s)\n", n+1, iss.Func, iss.Reaction, iss.Verdict)
		if iss.Blamed != "" {
			fmt.Fprintf(&b, "    blamed: %s\n", iss.Blamed)
		}
		if iss.Detail != "" {
			fmt.Fprintf(&b, "    evidence: %s\n", iss.Detail)
		}
		max := len(iss.Cases)
		if max > 4 {
			max = 4
		}
		for _, c := range iss.Cases[:max] {
			fmt.Fprintf(&b, "    case: %s\n", c)
		}
		if len(iss.Cases) > max {
			fmt.Fprintf(&b, "    ... and %d more\n", len(iss.Cases)-max)
		}
	}
	return b.String()
}
