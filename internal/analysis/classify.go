// Package analysis implements the Log Analysis phase of the methodology
// (paper §III.C): classifying every test execution on the Ballista CRASH
// severity scale, predicting expected behaviour with a reference-manual
// oracle (the paper's proposed future work, implemented here for the
// hypercalls whose manual semantics the oracle encodes), and clustering
// failures into the distinct robustness issues of Table III.
package analysis

import (
	"fmt"
	"strings"

	"xmrobust/internal/campaign"
	"xmrobust/internal/dict"
	"xmrobust/internal/xm"
)

// Verdict is the CRASH severity scale of the Ballista project, plus Pass.
type Verdict int

// CRASH verdicts, ordered by decreasing severity.
const (
	Catastrophic Verdict = iota // the test crashed or reset the system
	Restart                     // the test hung / was preempted; a restart is needed
	Abort                       // the testing task terminated abnormally
	Silent                      // an exceptional situation was not reported
	Hindering                   // an incorrect error code was reported
	Pass
)

var verdictNames = [...]string{
	Catastrophic: "Catastrophic",
	Restart:      "Restart",
	Abort:        "Abort",
	Silent:       "Silent",
	Hindering:    "Hindering",
	Pass:         "Pass",
}

func (v Verdict) String() string {
	if v >= 0 && int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Failure reports whether the verdict is a robustness failure.
func (v Verdict) Failure() bool { return v != Pass }

// Classified is one test execution with its verdict and the evidence the
// verdict rests on.
type Classified struct {
	Result  campaign.Result
	Verdict Verdict
	// Reaction is the canonical description of what the kernel/system did
	// (one of the reaction constants below).
	Reaction string
	// Blamed is the parameter the blame analysis pins the failure on
	// ("" when every parameter carried nominally valid values — the
	// temporal-isolation case).
	Blamed string
	// Detail elaborates for the human reader.
	Detail string
}

// Canonical reaction strings (cluster-key components).
const (
	ReactSimCrash    = "simulator crash"
	ReactKernelHalt  = "hypervisor halt"
	ReactColdReset   = "unexpected cold reset"
	ReactWarmReset   = "unexpected warm reset"
	ReactKernelTrap  = "kernel data access exception"
	ReactOverrun     = "scheduling slot overrun"
	ReactSilentOK    = "unexpected success code"
	ReactWrongError  = "incorrect error code"
	ReactNoReturn    = "test call did not return"
	ReactHarnessFail = "harness error"
)

// firstInvalid returns the name of the first parameter carrying a
// definitely-invalid dictionary value ("" when none): the minimal
// responsible parameter of the blame analysis.
func firstInvalid(r campaign.Result) string {
	for i, v := range r.Resolved {
		if v.Validity == dict.Invalid && i < len(r.Dataset.Func.Params) {
			return r.Dataset.Func.Params[i].Name
		}
	}
	return ""
}

// datasetTuple renders the injected values compactly ("mode=2").
func datasetTuple(r campaign.Result) string {
	parts := make([]string, 0, len(r.Resolved))
	for i, v := range r.Resolved {
		name := fmt.Sprintf("arg%d", i)
		if i < len(r.Dataset.Func.Params) {
			name = r.Dataset.Func.Params[i].Name
		}
		parts = append(parts, name+"="+v.Raw)
	}
	return strings.Join(parts, ",")
}

// hmReaction inspects the HM log for the event that stopped the test
// partition and maps it to a canonical reaction. Only events attributed to
// the test partition count: warm-up traffic from other partitions (e.g.
// phantom-state setters) is background.
func hmReaction(r campaign.Result) (string, string) {
	for _, e := range r.HMEvents {
		if e.SystemScope || e.PartitionID != r.TestPartition {
			continue
		}
		switch e.Event {
		case xm.HMEvMemProtection:
			return ReactKernelTrap, e.Detail
		case xm.HMEvSchedOverrun:
			return ReactOverrun, e.Detail
		}
	}
	return "", ""
}

// Classify assigns the CRASH verdict to one test execution. The oracle
// supplies expected behaviour where the reference manual is encoded;
// without a prediction, only observed events (crashes, halts, resets,
// health-monitor escalations) can fail a test — exactly the paper's
// position that Silent and Hindering failures need the manual.
func Classify(r campaign.Result, o *Oracle) Classified {
	c := Classified{Result: r, Verdict: Pass}
	pred := o.Predict(r.Dataset)

	switch {
	case r.RunErr != "":
		c.Verdict, c.Reaction, c.Detail = Catastrophic, ReactHarnessFail, r.RunErr

	case r.SimCrashed:
		// Paper TMR-2: "a timer trap which crashes the TSIM simulator".
		c.Verdict, c.Reaction, c.Detail = Catastrophic, ReactSimCrash, r.CrashReason

	case r.KernelState == xm.KStateHalted:
		if pred.Kind == ExpectStop && pred.KernelHalt {
			break // XM_halt_system doing exactly what the manual says
		}
		// Paper TMR-1: "a system fatal error leading to an XM halt".
		c.Verdict, c.Reaction, c.Detail = Catastrophic, ReactKernelHalt, r.KernelHalt

	case r.ColdResets > 0 || r.WarmResets > 0:
		if pred.Kind == ExpectReset &&
			((pred.Cold && r.WarmResets == 0) || (!pred.Cold && r.ColdResets == 0)) {
			c.Verdict = Pass // a reset service doing exactly what the manual says
			break
		}
		if r.ColdResets > 0 {
			c.Verdict, c.Reaction = Catastrophic, ReactColdReset
		} else {
			c.Verdict, c.Reaction = Catastrophic, ReactWarmReset
		}
		// Each unexpected-reset dataset is its own reproducer (the paper
		// reports XM_reset_system(2), (16) and (4294967295) separately).
		c.Blamed = datasetTuple(r)
		c.Detail = fmt.Sprintf("%d cold / %d warm resets observed", r.ColdResets, r.WarmResets)

	case r.PartState == xm.PStateHalted:
		if pred.Kind == ExpectStop {
			break // a self-stopping service behaving as documented
		}
		// The testing task terminated abnormally: Abort.
		c.Verdict = Abort
		c.Reaction, c.Detail = hmReaction(r)
		if c.Reaction == "" {
			c.Reaction, c.Detail = ReactNoReturn, r.PartDetail
		}
		c.Blamed = firstInvalid(r)

	case r.PartState == xm.PStateSuspended:
		if pred.Kind == ExpectStop {
			break // XM_suspend_self behaving as documented
		}
		// The testing task stopped responding and needs a restart.
		c.Verdict = Restart
		c.Reaction, c.Detail = hmReaction(r)
		if c.Reaction == "" {
			c.Reaction, c.Detail = ReactNoReturn, r.PartDetail
		}
		c.Blamed = firstInvalid(r)

	case !r.Returned():
		if pred.Kind == ExpectStop {
			break // control legitimately stays with the kernel
		}
		c.Verdict, c.Reaction, c.Detail = Restart, ReactNoReturn,
			fmt.Sprintf("%d invocations, %d returns", r.Invocations, len(r.Returns))
		c.Blamed = firstInvalid(r)

	default:
		ret, _ := r.LastReturn()
		if pred.Kind == ExpectReturn && !pred.Allows(ret) {
			if ret >= 0 {
				// "A test should always report exceptional situations."
				c.Verdict, c.Reaction = Silent, ReactSilentOK
			} else {
				// "A test should never report incorrect error codes."
				c.Verdict, c.Reaction = Hindering, ReactWrongError
			}
			c.Detail = fmt.Sprintf("returned %v, manual specifies %v", ret, pred.Codes)
		}
	}
	return c
}

// Classifier is the streaming form of the classification stage: results
// are classified and tallied one at a time, retaining only the aggregate
// counters — never the execution logs — so campaign-scale analysis runs
// at constant memory.
type Classifier struct {
	oracle *Oracle
	// Tests counts classified results; TestsByFunc splits them per
	// hypercall; Verdicts tallies the CRASH scale; HarnessErrors counts
	// tests that failed in the harness rather than the kernel.
	Tests         int
	TestsByFunc   map[string]int
	Verdicts      map[Verdict]int
	HarnessErrors int
}

// NewClassifier returns an empty accumulator classifying against the
// oracle.
func NewClassifier(o *Oracle) *Classifier {
	return &Classifier{
		oracle:      o,
		TestsByFunc: map[string]int{},
		Verdicts:    map[Verdict]int{},
	}
}

// Add classifies one execution log, folds it into the tallies and returns
// the classification for downstream consumers (clustering, failure
// reporting).
func (c *Classifier) Add(r campaign.Result) Classified {
	cl := Classify(r, c.oracle)
	c.Tests++
	c.TestsByFunc[r.Dataset.Func.Name]++
	c.Verdicts[cl.Verdict]++
	if r.RunErr != "" {
		c.HarnessErrors++
	}
	return cl
}

// ClassifyAll classifies a whole campaign — the eager wrapper over the
// streaming Classifier.
func ClassifyAll(results []campaign.Result, o *Oracle) []Classified {
	c := NewClassifier(o)
	out := make([]Classified, 0, len(results))
	for _, r := range results {
		out = append(out, c.Add(r))
	}
	return out
}
