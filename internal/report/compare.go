package report

import (
	"fmt"
	"strings"

	"xmrobust/internal/core"
	"xmrobust/internal/xm"
)

// PaperRow holds the published Table III numbers for one category.
type PaperRow struct {
	Total  int
	Tested int
	Tests  int
	Issues int
}

// PaperTableIII returns the published Table III of the paper, keyed by
// category (the ground truth this reproduction is compared against).
func PaperTableIII() map[xm.Category]PaperRow {
	return map[xm.Category]PaperRow{
		xm.CatSystem:    {3, 2, 8, 3},
		xm.CatPartition: {10, 6, 236, 0},
		xm.CatTime:      {2, 2, 34, 3},
		xm.CatPlan:      {2, 1, 2, 0},
		xm.CatIPC:       {10, 8, 598, 0},
		xm.CatMemory:    {2, 1, 991, 0},
		xm.CatHM:        {5, 3, 64, 0},
		xm.CatTrace:     {5, 4, 428, 0},
		xm.CatInterrupt: {5, 4, 172, 0},
		xm.CatMisc:      {5, 3, 41, 3},
		xm.CatSparc:     {12, 5, 88, 0},
	}
}

// PaperTotals returns the published campaign totals.
func PaperTotals() PaperRow { return PaperRow{61, 39, 2662, 9} }

// CompareTableIII renders the measured campaign side by side with the
// published Table III: the paper-vs-measured record of EXPERIMENTS.md.
func CompareTableIII(rep *core.CampaignReport) string {
	paper := PaperTableIII()
	var b strings.Builder
	b.WriteString("TABLE III — PAPER vs MEASURED\n\n")
	t := &table{header: []string{
		"Hypercall Category",
		"Tot(p)", "Tot(m)",
		"Tst(p)", "Tst(m)",
		"Tests(p)", "Tests(m)",
		"Iss(p)", "Iss(m)",
		"ok",
	}}
	okAll := true
	for _, row := range rep.TableIII() {
		var p PaperRow
		if row.Category == "Total" {
			p = PaperTotals()
		} else {
			p = paper[row.Category]
		}
		// Shape agreement: inventory, selection and issues exact; test
		// counts within 10% (the paper's dictionaries are not published
		// in full, so only the magnitudes are reconstructible).
		ok := row.TotalHypercalls == p.Total && row.Tested == p.Tested &&
			row.Issues == p.Issues && within10pct(row.Tests, p.Tests)
		if !ok {
			okAll = false
		}
		t.add(string(row.Category),
			fmt.Sprintf("%d", p.Total), fmt.Sprintf("%d", row.TotalHypercalls),
			fmt.Sprintf("%d", p.Tested), fmt.Sprintf("%d", row.Tested),
			fmt.Sprintf("%d", p.Tests), fmt.Sprintf("%d", row.Tests),
			fmt.Sprintf("%d", p.Issues), fmt.Sprintf("%d", row.Issues),
			map[bool]string{true: "yes", false: "NO"}[ok])
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nshape reproduced: %v (inventory, tested selection and issues exact; test counts within 10%%)\n", okAll)
	return b.String()
}

// ShapeReproduced reports whether the campaign reproduces the paper's
// Table III shape: exact inventory, tested selection and issue counts,
// test counts within 10% per category.
func ShapeReproduced(rep *core.CampaignReport) bool {
	paper := PaperTableIII()
	for _, row := range rep.TableIII() {
		var p PaperRow
		if row.Category == "Total" {
			p = PaperTotals()
		} else {
			p = paper[row.Category]
		}
		if row.TotalHypercalls != p.Total || row.Tested != p.Tested ||
			row.Issues != p.Issues || !within10pct(row.Tests, p.Tests) {
			return false
		}
	}
	return true
}

func within10pct(measured, paper int) bool {
	if paper == 0 {
		return measured == 0
	}
	diff := measured - paper
	if diff < 0 {
		diff = -diff
	}
	return diff*10 <= paper
}
