package report

import (
	"strings"
	"sync"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
	"xmrobust/internal/core"
	"xmrobust/internal/dict"
)

// smallCampaign runs a reduced campaign (System + Time + Misc) once: it
// contains all nine issues but runs in well under a second.
var (
	once sync.Once
	rep  *core.CampaignReport
	err  error
)

func smallCampaign(t *testing.T) *core.CampaignReport {
	t.Helper()
	once.Do(func() {
		header := apispec.Default()
		keep := map[string]bool{
			"XM_reset_system": true, "XM_get_system_status": true,
			"XM_get_time": true, "XM_set_timer": true,
			"XM_multicall": true, "XM_write_console": true, "XM_get_gid_by_name": true,
		}
		for i := range header.Functions {
			if !keep[header.Functions[i].Name] {
				header.Functions[i].Tested = "NO"
			}
		}
		rep, err = core.RunCampaign(campaign.Options{Header: header})
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestTableIContainsAllTypes(t *testing.T) {
	s := TableI()
	for _, want := range []string{
		"TABLE I", "xm_u8_t", "xm_s64_t", "xmTime_t", "xmAddress_t",
		"unsigned long long", "signed int",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I lacks %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "void*") {
		t.Error("Table I lists the pointer pseudo-type")
	}
}

func TestTableIIShowsTableIIValues(t *testing.T) {
	s := TableII(dict.Builtin(), "xm_s32_t")
	for _, want := range []string{
		"TABLE II", "xm_s32_t", "-2147483648", "MIN_S32", "2147483647", "MAX_S32", "ZERO",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II lacks %q:\n%s", want, s)
		}
	}
	if !strings.Contains(TableII(dict.Builtin(), "nosuch_t"), "no dictionary") {
		t.Error("unknown type not reported")
	}
}

func TestTableIIIRendering(t *testing.T) {
	s := TableIII(smallCampaign(t))
	for _, want := range []string{
		"TABLE III", "Hypercall Category", "System Management", "Raised Issues", "Total",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table III lacks %q:\n%s", want, s)
		}
	}
}

func TestTableIIICSV(t *testing.T) {
	s := TableIIICSV(smallCampaign(t))
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 1+11+1 { // header + 11 categories + total
		t.Fatalf("CSV lines = %d:\n%s", len(lines), s)
	}
	if lines[0] != "category,total_hypercalls,hypercalls_tested,tests,raised_issues" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[len(lines)-1], `"Total",61,`) {
		t.Fatalf("CSV total = %q", lines[len(lines)-1])
	}
}

func TestDistributionFig8(t *testing.T) {
	r := smallCampaign(t)
	d := ComputeDistribution(r)
	if d.Total() != 61 {
		t.Fatalf("total = %d", d.Total())
	}
	if d.Tested != 7 {
		t.Fatalf("tested = %d, want 7 (reduced campaign)", d.Tested)
	}
	if d.UntestedNoParam != 10 {
		t.Fatalf("untested no-param = %d, want 10", d.UntestedNoParam)
	}
	s := Fig8(r)
	if !strings.Contains(s, "FIG. 8") || !strings.Contains(s, "%") {
		t.Fatalf("Fig8 output:\n%s", s)
	}
}

func TestIssuesAndVerdictsRender(t *testing.T) {
	r := smallCampaign(t)
	s := Issues(r)
	if !strings.Contains(s, "9 distinct robustness issues") {
		t.Fatalf("reduced campaign should still surface all 9 issues:\n%s", s)
	}
	v := Verdicts(r)
	for _, want := range []string{"Catastrophic", "Silent", "Pass"} {
		if !strings.Contains(v, want) {
			t.Errorf("verdict table lacks %q", want)
		}
	}
}

func TestFullReportComposes(t *testing.T) {
	s := Full(smallCampaign(t))
	for _, want := range []string{"TABLE III", "CRASH SEVERITY", "FIG. 8", "robustness issues"} {
		if !strings.Contains(s, want) {
			t.Errorf("full report lacks %q", want)
		}
	}
}

func TestPaperTableIIIGroundTruth(t *testing.T) {
	paper := PaperTableIII()
	total := PaperRow{}
	for _, r := range paper {
		total.Total += r.Total
		total.Tested += r.Tested
		total.Tests += r.Tests
		total.Issues += r.Issues
	}
	want := PaperTotals()
	if total != want {
		t.Fatalf("paper rows sum to %+v, published totals are %+v", total, want)
	}
}

func TestCompareTableIIIOnReducedCampaign(t *testing.T) {
	// The reduced campaign deliberately skips most categories, so the
	// comparison must flag the shape as NOT reproduced — proving the
	// check has teeth.
	r := smallCampaign(t)
	if ShapeReproduced(r) {
		t.Fatal("a 7-hypercall campaign cannot reproduce the full Table III shape")
	}
	s := CompareTableIII(r)
	for _, want := range []string{"PAPER vs MEASURED", "Tests(p)", "2662", "NO"} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison lacks %q:\n%s", want, s)
		}
	}
}
