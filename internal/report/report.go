// Package report renders the paper's tables and figures from campaign
// outcomes: Table I (XM data types), Table II (a data-type test-value
// set), Table III (the test campaign), Fig. 8 (the campaign distribution),
// and the issue list of §IV.C. Each renderer produces aligned text for the
// terminal; TableIIICSV produces machine-readable output for plots.
package report

import (
	"fmt"
	"strings"

	"xmrobust/internal/analysis"
	"xmrobust/internal/core"
	"xmrobust/internal/cover"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// table is a minimal aligned-text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// TableI renders the paper's Table I: the XM interface data types.
func TableI() string {
	t := &table{header: []string{"XM Basic Type", "XM Extended Types", "Size (bits)", "ANSI C Type"}}
	for _, dt := range xm.DataTypes() {
		if dt.Pointer {
			continue // Table I lists the value types
		}
		t.add(dt.Name, dt.Extended, fmt.Sprintf("%d", dt.Bits), dt.C)
	}
	return "TABLE I. XTRATUM DATA TYPES\n\n" + t.String()
}

// TableII renders the paper's Table II: the test-value set of one data
// type from the dictionary (the paper shows xm_s32_t).
func TableII(d *dict.Dictionary, typeName string) string {
	ts, ok := d.Type(typeName)
	if !ok {
		return fmt.Sprintf("no dictionary for %s\n", typeName)
	}
	t := &table{header: []string{"Test Data", "Description", "Validity"}}
	for _, v := range ts.Values {
		t.add(v.Raw, v.Desc, v.Validity.String())
	}
	return fmt.Sprintf("TABLE II. DATA TYPE TEST-VALUE-SET (%s, range of %s)\n\n%s",
		ts.Name, ts.BasicType, t.String())
}

// TableIII renders the paper's Table III: the campaign per category.
func TableIII(rep *core.CampaignReport) string {
	return renderTableIII(rep.TableIII())
}

// renderTableIII renders Table III rows from either report flavour.
func renderTableIII(rows []core.CategoryStats) string {
	t := &table{header: []string{
		"Hypercall Category", "Total Hypercalls", "Hypercalls tested", "No. of Tests", "Raised Issues",
	}}
	for _, row := range rows {
		t.add(string(row.Category),
			fmt.Sprintf("%d", row.TotalHypercalls),
			fmt.Sprintf("%d", row.Tested),
			fmt.Sprintf("%d", row.Tests),
			fmt.Sprintf("%d", row.Issues))
	}
	return "TABLE III. XTRATUM TEST CAMPAIGN\n\n" + t.String()
}

// TableIIICSV renders Table III as CSV.
func TableIIICSV(rep *core.CampaignReport) string {
	return renderTableIIICSV(rep.TableIII())
}

// StreamTableIII renders a streamed campaign's Table III.
func StreamTableIII(rep *core.StreamReport) string {
	return renderTableIII(rep.TableIII())
}

// StreamTableIIICSV renders a streamed campaign's Table III as CSV.
func StreamTableIIICSV(rep *core.StreamReport) string {
	return renderTableIIICSV(rep.TableIII())
}

func renderTableIIICSV(rows []core.CategoryStats) string {
	var b strings.Builder
	b.WriteString("category,total_hypercalls,hypercalls_tested,tests,raised_issues\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%q,%d,%d,%d,%d\n",
			row.Category, row.TotalHypercalls, row.Tested, row.Tests, row.Issues)
	}
	return b.String()
}

// Distribution is the data behind the paper's Fig. 8: how the hypercall
// inventory splits into tested, untested-with-parameters and untested
// parameter-less calls.
type Distribution struct {
	Tested            int
	UntestedWithParam int
	UntestedNoParam   int
}

// Total returns the hypercall count.
func (d Distribution) Total() int { return d.Tested + d.UntestedWithParam + d.UntestedNoParam }

// Pct returns n as a percentage of the total.
func (d Distribution) Pct(n int) float64 {
	if d.Total() == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d.Total())
}

// ComputeDistribution derives the Fig. 8 shares from a campaign report.
func ComputeDistribution(rep *core.CampaignReport) Distribution {
	tested := map[string]bool{}
	for _, r := range rep.Results {
		tested[r.Dataset.Func.Name] = true
	}
	var d Distribution
	for _, spec := range xm.Hypercalls() {
		switch {
		case tested[spec.Name]:
			d.Tested++
		case spec.NumParams() == 0:
			d.UntestedNoParam++
		default:
			d.UntestedWithParam++
		}
	}
	return d
}

// Fig8 renders the campaign distribution as a text bar chart.
func Fig8(rep *core.CampaignReport) string {
	d := ComputeDistribution(rep)
	var b strings.Builder
	b.WriteString("FIG. 8. XTRATUM TEST CAMPAIGN DISTRIBUTION\n\n")
	bar := func(label string, n int) {
		pct := d.Pct(n)
		fmt.Fprintf(&b, "%-32s %2d (%5.1f%%) %s\n", label, n, pct,
			strings.Repeat("#", int(pct/2)))
	}
	bar("Hypercalls tested", d.Tested)
	bar("Untested (with parameters)", d.UntestedWithParam)
	bar("Untested (no parameters)", d.UntestedNoParam)
	untested := d.UntestedWithParam + d.UntestedNoParam
	if untested > 0 {
		fmt.Fprintf(&b, "\n%.0f%% of untested calls take no parameters\n",
			100*float64(d.UntestedNoParam)/float64(untested))
	}
	return b.String()
}

// Issues renders the §IV.C findings section.
func Issues(rep *core.CampaignReport) string {
	return analysis.Summary(rep.Issues)
}

// Verdicts renders the CRASH-scale tally.
func Verdicts(rep *core.CampaignReport) string {
	return renderVerdicts(rep.VerdictCounts())
}

func renderVerdicts(counts map[analysis.Verdict]int) string {
	t := &table{header: []string{"CRASH verdict", "Tests"}}
	for _, v := range []analysis.Verdict{
		analysis.Catastrophic, analysis.Restart, analysis.Abort,
		analysis.Silent, analysis.Hindering, analysis.Pass,
	} {
		t.add(v.String(), fmt.Sprintf("%d", counts[v]))
	}
	return "CRASH SEVERITY TALLY\n\n" + t.String()
}

// PlanLine renders a plan's coverage statistics as the one-line header of
// a campaign report. For an exhaustive plan (no reduction) it stays
// minimal.
func PlanLine(st testgen.PlanStats) string {
	if st.Strategy == testgen.StrategyExhaustive || st.Strategy == "" {
		return fmt.Sprintf("plan exhaustive: all %d datasets of Eq. 1\n", st.Tests)
	}
	return st.String() + "\n"
}

// CoverageSection renders the kernel-edge-coverage section of a report:
// the frontier size and signature, the feedback loop's corpus accounting
// and the edges-discovered-over-time curve. Empty when collection was
// off.
func CoverageSection(cs core.CoverageStats) string {
	if !cs.Enabled {
		return ""
	}
	var b strings.Builder
	b.WriteString("KERNEL EDGE COVERAGE\n\n")
	fmt.Fprintf(&b, "kernel edges discovered: %d (%.2f%% of the %d-site map), signature %016x\n",
		cs.Edges, 100*float64(cs.Edges)/float64(cover.NumSites), cover.NumSites, cs.Signature)
	if lp := cs.Loop; lp != nil {
		fmt.Fprintf(&b, "corpus: %d members (%d loaded from file), %d seed tests, %d results folded into the loop\n",
			lp.Corpus, lp.Loaded, lp.Seeds, lp.Executed)
		if curve := historyQuartiles(lp.History); curve != "" {
			fmt.Fprintf(&b, "edges over time: %s\n", curve)
		}
	}
	return b.String()
}

// historyQuartiles compresses the per-test frontier curve to its
// quartile checkpoints.
func historyQuartiles(h []int) string {
	if len(h) == 0 {
		return ""
	}
	var parts []string
	for _, q := range []int{25, 50, 75, 100} {
		i := len(h)*q/100 - 1
		if i < 0 {
			i = 0
		}
		parts = append(parts, fmt.Sprintf("%d%%: %d", q, h[i]))
	}
	return strings.Join(parts, "  ")
}

// InjectionSection renders the SEU fault-injection section of a report:
// the campaign-wide outcome tally and the per-site masking-rate table.
// Empty when the campaign injected nothing.
func InjectionSection(st *analysis.InjectionStudy) string {
	if st.Empty() {
		return ""
	}
	return analysis.InjectionSummary(st)
}

// maxDivergenceLines caps the per-test listing of the divergence
// section; the full list lives in the campaign log records.
const maxDivergenceLines = 25

// DivergenceSection renders the divergence-oracle section of a report:
// every test where the two backends of a diff target disagreed on an
// observable. Empty when the campaign ran on a single backend; a diff
// campaign with full agreement renders the (reportable) zero line.
func DivergenceSection(targetName string, total int, divs []core.DivergenceFinding) string {
	if len(divs) == 0 && !strings.HasPrefix(targetName, "diff:") {
		return ""
	}
	var b strings.Builder
	b.WriteString("DIVERGENCES (backend disagreement oracle)\n\n")
	fmt.Fprintf(&b, "target %s: %d of %d tests diverged\n", targetName, len(divs), total)
	for i, d := range divs {
		if i == maxDivergenceLines {
			fmt.Fprintf(&b, "  … and %d more (see the campaign log records)\n", len(divs)-i)
			break
		}
		fmt.Fprintf(&b, "  #%d %s\n", d.Seq, d.Dataset)
		fmt.Fprintf(&b, "      %s | %s\n", d.Divergence.Targets[0]+" vs "+d.Divergence.Targets[1], d.Divergence.String())
	}
	return b.String()
}

// StreamSummary renders the complete report of a streamed campaign: the
// plan coverage line, Table III, the CRASH tally, the issue list, the
// kernel-edge-coverage section (when collected) and the engine's own
// accounting (pool efficiency, resume skips).
func StreamSummary(rep *core.StreamReport) string {
	var b strings.Builder
	b.WriteString(PlanLine(rep.Plan))
	b.WriteByte('\n')
	b.WriteString(renderTableIII(rep.TableIII()))
	b.WriteByte('\n')
	b.WriteString(renderVerdicts(rep.Verdicts))
	b.WriteByte('\n')
	b.WriteString(analysis.Summary(rep.Issues))
	b.WriteByte('\n')
	if cov := CoverageSection(rep.Coverage); cov != "" {
		b.WriteByte('\n')
		b.WriteString(cov)
	}
	if div := DivergenceSection(rep.Target, rep.Total, rep.Divergences); div != "" {
		b.WriteByte('\n')
		b.WriteString(div)
	}
	if inj := InjectionSection(rep.Injection); inj != "" {
		b.WriteByte('\n')
		b.WriteString(inj)
	}
	fmt.Fprintf(&b, "\nengine: %d tests (%d executed, %d resumed from checkpoint)\n",
		rep.Total, rep.Executed, rep.Skipped)
	p := rep.Engine.Pool
	if p.Allocated+p.Reused > 0 {
		fmt.Fprintf(&b, "machine pool: %d allocated, %d recycled, %d discarded\n",
			p.Allocated, p.Reused, p.Discarded)
	}
	if rep.HarnessErrors > 0 {
		fmt.Fprintf(&b, "harness errors: %d\n", rep.HarnessErrors)
	}
	return b.String()
}

// Full renders the complete campaign report.
func Full(rep *core.CampaignReport) string {
	var b strings.Builder
	b.WriteString(PlanLine(rep.Plan))
	b.WriteByte('\n')
	b.WriteString(TableIII(rep))
	b.WriteByte('\n')
	b.WriteString(Verdicts(rep))
	b.WriteByte('\n')
	b.WriteString(Fig8(rep))
	b.WriteByte('\n')
	b.WriteString(Issues(rep))
	if cov := CoverageSection(rep.Coverage); cov != "" {
		b.WriteByte('\n')
		b.WriteString(cov)
	}
	if div := DivergenceSection(rep.Options.Target, len(rep.Results), rep.Divergences); div != "" {
		b.WriteByte('\n')
		b.WriteString(div)
	}
	if inj := InjectionSection(rep.Injection); inj != "" {
		b.WriteByte('\n')
		b.WriteString(inj)
	}
	return b.String()
}
