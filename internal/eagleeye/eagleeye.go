// Package eagleeye provides the testbed of the paper's case study: a
// synthetic stand-in for ESA's EagleEye TSP reference spacecraft — "an ESA
// reference spacecraft mission representative of a typical earth
// observation satellite" — hosted on the XtratuM-like kernel of package xm.
//
// The real EagleEye OBSW is ESA-proprietary; this package reproduces its
// *structure* as the paper describes it: a LEON3 central node running XM
// with the on-board software split into five partitions over a 250 ms
// cyclic major frame, the FDIR partition being the only system partition
// (and therefore the natural host for the fault-injection test partition).
//
// The synthetic on-board software exercises the same kernel services a
// real OBSW would: the GNC partition publishes attitude state on a
// sampling channel, PLATFORM consumes it and emits housekeeping telemetry,
// PAYLOAD produces science frames, TMTC drains telemetry into a queuing
// downlink, and FDIR polls partition health and the HM log.
package eagleeye

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"xmrobust/internal/sparc"
	"xmrobust/internal/xal"
	"xmrobust/internal/xm"
)

// Partition ids of the EagleEye TSP configuration.
const (
	Platform = 0
	Payload  = 1
	GNC      = 2
	TMTC     = 3
	FDIR     = 4 // the only system partition

	NumPartitions = 5
)

// MajorFrame is the cyclic major frame of the case study: 250 ms.
const MajorFrame xm.Time = 250000

// Channel names of the synthetic OBSW.
const (
	ChanAttitude = "gnc-attitude"  // GNC -> PLATFORM, sampling
	ChanHKTM     = "platform-hktm" // PLATFORM -> TMTC, sampling
	ChanScience  = "payload-sci"   // PAYLOAD -> TMTC, sampling
	ChanDownlink = "tmtc-downlink" // TMTC -> FDIR, queuing (frame accounting)
)

// areaBase returns the RAM base of partition id's data area. Each
// partition owns 64 KiB, spaced 1 MiB apart above the kernel image.
func areaBase(id int) sparc.Addr {
	return sparc.DefaultRAMBase + sparc.Addr(0x100000*(id+1))
}

// AreaSize is the size of each partition's data area.
const AreaSize uint32 = 0x10000

// DataArea returns the RAM base and size of partition id's data area —
// the same layout a booted kernel reports through PartitionDataArea,
// computable without booting one (the phantom model target resolves
// symbolic dictionary values against it).
func DataArea(id int) (sparc.Addr, uint32) { return areaBase(id), AreaSize }

// Config returns the EagleEye TSP system definition: five partitions over
// a 250 ms major frame, FDIR as the sole system partition, and the OBSW
// channel set.
func Config() xm.Config {
	names := [NumPartitions]string{"PLATFORM", "PAYLOAD", "GNC", "TMTC", "FDIR"}
	cfg := xm.Config{Name: "eagleeye-tsp"}
	for id := 0; id < NumPartitions; id++ {
		pc := xm.PartitionConfig{
			ID:   id,
			Name: names[id],
			MemoryAreas: []sparc.Region{{
				Name: "data", Base: areaBase(id), Size: AreaSize, Perm: sparc.PermRW,
			}},
			HwIrqLines: []int{3 + id},
		}
		if id == FDIR {
			pc.System = true
			pc.IOPorts = true
		}
		cfg.Partitions = append(cfg.Partitions, pc)
	}
	cfg.Plans = []xm.PlanConfig{
		{
			ID: 0, MajorFrame: MajorFrame,
			Slots: []xm.SlotConfig{
				{PartitionID: Platform, Start: 0, Duration: 60000},
				{PartitionID: Payload, Start: 60000, Duration: 40000},
				{PartitionID: GNC, Start: 100000, Duration: 50000},
				{PartitionID: TMTC, Start: 150000, Duration: 40000},
				{PartitionID: FDIR, Start: 190000, Duration: 50000},
			},
		},
		{
			// Survival plan: only PLATFORM and FDIR execute.
			ID: 1, MajorFrame: MajorFrame,
			Slots: []xm.SlotConfig{
				{PartitionID: Platform, Start: 0, Duration: 100000},
				{PartitionID: FDIR, Start: 150000, Duration: 80000},
			},
		},
	}
	cfg.Channels = []xm.ChannelConfig{
		{Name: ChanAttitude, Type: xm.SamplingChannel, MaxMsgSize: 32, Source: GNC, Destination: Platform},
		{Name: ChanHKTM, Type: xm.SamplingChannel, MaxMsgSize: 64, Source: Platform, Destination: TMTC},
		{Name: ChanScience, Type: xm.SamplingChannel, MaxMsgSize: 64, Source: Payload, Destination: TMTC},
		{Name: ChanDownlink, Type: xm.QueuingChannel, MaxMsgSize: 16, MaxNoMsgs: 16, Source: TMTC, Destination: FDIR},
	}
	return cfg
}

// NewSystem boots a kernel with the EagleEye configuration and the
// synthetic OBSW attached to all five partitions.
func NewSystem(opts ...xm.Option) (*xm.Kernel, error) {
	k, err := xm.New(Config(), opts...)
	if err != nil {
		return nil, err
	}
	if err := AttachOBSW(k); err != nil {
		return nil, err
	}
	return k, nil
}

// AttachOBSW hosts the synthetic on-board software in every partition of
// an EagleEye-configured kernel.
func AttachOBSW(k *xm.Kernel) error {
	// One allocation carries all five program states; each incarnation
	// still starts from zero values, exactly like five fresh literals.
	ps := new(struct {
		platform platformProg
		payload  payloadProg
		gnc      gncProg
		tmtc     tmtcProg
		fdir     fdirProg
	})
	for _, a := range [...]struct {
		id   int
		prog xm.Program
	}{
		{Platform, &ps.platform},
		{Payload, &ps.payload},
		{GNC, &ps.gnc},
		{TMTC, &ps.tmtc},
		{FDIR, &ps.fdir},
	} {
		if err := k.AttachProgram(a.id, a.prog); err != nil {
			return err
		}
	}
	return nil
}

// dataRegion builds the region descriptor for partition id (for xal.New).
func dataRegion(id int) sparc.Region {
	return sparc.Region{Name: "data", Base: areaBase(id), Size: AreaSize, Perm: sparc.PermRW}
}

// --- GNC: publishes attitude quaternions -----------------------------------

type gncProg struct {
	ctx  *xal.Ctx
	port *xal.Port
	seq  uint32
	// msg is the reused attitude message image. Bytes the step below
	// does not write stay zero, exactly as in a freshly made buffer.
	msg [32]byte
}

func (g *gncProg) Boot(env xm.Env) {
	g.ctx = xal.New(env, dataRegion(GNC))
	g.port, _ = g.ctx.CreateSamplingPort(ChanAttitude, 32, xm.SourcePort)
	g.seq = 0
}

func (g *gncProg) Step(env xm.Env) bool {
	g.ctx.ResetHeap()
	env.Compute(2000) // attitude determination & control iteration
	if g.port == nil {
		return false
	}
	g.seq++
	msg := g.msg[:]
	binary.BigEndian.PutUint32(msg[0:4], g.seq)
	binary.BigEndian.PutUint64(msg[8:16], uint64(env.Now()))
	// A synthetic quaternion derived from the sequence number.
	binary.BigEndian.PutUint32(msg[16:20], g.seq%3600)
	g.port.WriteSampling(msg)
	return false // one control iteration per slot
}

// --- PLATFORM: consumes attitude, emits housekeeping telemetry -------------

type platformProg struct {
	ctx      *xal.Ctx
	attitude *xal.Port
	hktm     *xal.Port
	cycles   uint32
	lastAtt  uint32
	rbuf     [32]byte
	tm       [64]byte
}

func (p *platformProg) Boot(env xm.Env) {
	p.ctx = xal.New(env, dataRegion(Platform))
	p.attitude, _ = p.ctx.CreateSamplingPort(ChanAttitude, 32, xm.DestinationPort)
	p.hktm, _ = p.ctx.CreateSamplingPort(ChanHKTM, 64, xm.SourcePort)
}

func (p *platformProg) Step(env xm.Env) bool {
	p.ctx.ResetHeap()
	env.Compute(3000) // thermal, power and mode management
	p.cycles++
	if p.attitude != nil {
		if n, rc := p.attitude.ReadSamplingInto(p.rbuf[:]); rc == xm.OK && n >= 4 {
			p.lastAtt = binary.BigEndian.Uint32(p.rbuf[0:4])
		}
	}
	if p.hktm != nil {
		tm := p.tm[:]
		binary.BigEndian.PutUint32(tm[0:4], p.cycles)
		binary.BigEndian.PutUint32(tm[4:8], p.lastAtt)
		binary.BigEndian.PutUint64(tm[8:16], uint64(env.Now()))
		p.hktm.WriteSampling(tm)
	}
	return false
}

// --- PAYLOAD: produces science frames ---------------------------------------

type payloadProg struct {
	ctx    *xal.Ctx
	sci    *xal.Port
	frames uint32
	frame  [64]byte
}

func (p *payloadProg) Boot(env xm.Env) {
	p.ctx = xal.New(env, dataRegion(Payload))
	p.sci, _ = p.ctx.CreateSamplingPort(ChanScience, 64, xm.SourcePort)
}

func (p *payloadProg) Step(env xm.Env) bool {
	p.ctx.ResetHeap()
	env.Compute(8000) // instrument readout and compression
	if p.sci != nil {
		p.frames++
		frame := p.frame[:]
		binary.BigEndian.PutUint32(frame[0:4], p.frames)
		for i := 8; i < 64; i++ {
			frame[i] = byte(p.frames + uint32(i)) // deterministic pseudo-payload
		}
		p.sci.WriteSampling(frame)
	}
	return false
}

// --- TMTC: drains telemetry into the downlink queue -------------------------

type tmtcProg struct {
	ctx      *xal.Ctx
	hktm     *xal.Port
	sci      *xal.Port
	downlink *xal.Port
	sent     uint32
	overflow uint32
	rbuf     [64]byte
	frame    [16]byte
}

func (t *tmtcProg) Boot(env xm.Env) {
	t.ctx = xal.New(env, dataRegion(TMTC))
	t.hktm, _ = t.ctx.CreateSamplingPort(ChanHKTM, 64, xm.DestinationPort)
	t.sci, _ = t.ctx.CreateSamplingPort(ChanScience, 64, xm.DestinationPort)
	t.downlink, _ = t.ctx.CreateQueuingPort(ChanDownlink, 16, 16, xm.SourcePort)
}

func (t *tmtcProg) Step(env xm.Env) bool {
	t.ctx.ResetHeap()
	env.Compute(2500)
	t.drain(t.hktm)
	t.drain(t.sci)
	return false
}

// drain forwards one telemetry source into the downlink queue.
func (t *tmtcProg) drain(src *xal.Port) {
	if src == nil || t.downlink == nil {
		return
	}
	n, rc := src.ReadSamplingInto(t.rbuf[:])
	if rc != xm.OK || n < 4 {
		return
	}
	// A fresh read buffer is zero past the message; the reused one must
	// be scrubbed there so short messages frame identically.
	for i := n; i < len(t.frame); i++ {
		t.rbuf[i] = 0
	}
	copy(t.frame[:], t.rbuf[:16])
	switch t.downlink.Send(t.frame[:]) {
	case xm.OK:
		t.sent++
	case xm.NotAvailable:
		t.overflow++ // downlink queue full; frame dropped
	}
}

// --- FDIR: fault detection, isolation and recovery (system partition) -------

// FDIRReport summarises what the FDIR partition observed; the host test
// harness reads it back through Report().
type FDIRReport struct {
	Cycles        uint32
	HMEntriesSeen int
	KernelEvents  int
	PartitionsUp  int
	Recovered     int // partitions FDIR warm-reset after finding them halted
	FramesDrained int
}

type fdirProg struct {
	ctx      *xal.Ctx
	downlink *xal.Port
	report   FDIRReport
	dbuf     [16]byte
	line     []byte
}

func (f *fdirProg) Boot(env xm.Env) {
	f.ctx = xal.New(env, dataRegion(FDIR))
	f.downlink, _ = f.ctx.CreateQueuingPort(ChanDownlink, 16, 16, xm.DestinationPort)
}

func (f *fdirProg) Step(env xm.Env) bool {
	f.ctx.ResetHeap()
	env.Compute(1500)
	f.report.Cycles++
	// Drain the HM log.
	if entries, rc := f.ctx.ReadHM(8); rc == xm.OK {
		f.report.HMEntriesSeen += len(entries)
		for _, e := range entries {
			if e.Partition < 0 {
				f.report.KernelEvents++
			}
		}
	}
	// Poll partition health; warm-reset halted partitions (recovery).
	up := 0
	for id := int32(0); id < NumPartitions; id++ {
		st, rc := f.ctx.GetPartitionStatus(id)
		if rc != xm.OK {
			continue
		}
		switch st.State {
		case xm.PStateHalted:
			if f.ctx.ResetPartition(id, xm.WarmReset) == xm.OK {
				f.report.Recovered++
			}
		case xm.PStateNormal, xm.PStateBoot:
			up++
		}
	}
	f.report.PartitionsUp = up
	// Account downlink frames.
	if f.downlink != nil {
		for {
			_, rc := f.downlink.ReceiveInto(f.dbuf[:])
			if rc < 0 || rc == xm.NoAction {
				break
			}
			f.report.FramesDrained++
		}
	}
	// Hand-rolled Printf("[FDIR] cycle=%d up=%d hm=%d\n", ...): the
	// cycle report runs every FDIR slot, so it formats into a reused
	// line buffer — the bytes on the console are identical.
	f.line = append(f.line[:0], "[FDIR] cycle="...)
	f.line = strconv.AppendUint(f.line, uint64(f.report.Cycles), 10)
	f.line = append(f.line, " up="...)
	f.line = strconv.AppendInt(f.line, int64(f.report.PartitionsUp), 10)
	f.line = append(f.line, " hm="...)
	f.line = strconv.AppendInt(f.line, int64(f.report.HMEntriesSeen), 10)
	f.line = append(f.line, '\n')
	f.ctx.PrintBytes(f.line)
	return false
}

// Report extracts the FDIR partition's accumulated observations from a
// kernel built with NewSystem/AttachOBSW.
func Report(k *xm.Kernel) (FDIRReport, error) {
	f, ok := k.ProgramOf(FDIR).(*fdirProg)
	if !ok {
		return FDIRReport{}, fmt.Errorf("eagleeye: FDIR does not host the OBSW FDIR program")
	}
	return f.report, nil
}

// TMTCStats reports the telemetry partition's frame counters.
func TMTCStats(k *xm.Kernel) (sent, overflow uint32, err error) {
	t, ok := k.ProgramOf(TMTC).(*tmtcProg)
	if !ok {
		return 0, 0, fmt.Errorf("eagleeye: TMTC does not host the OBSW TMTC program")
	}
	return t.sent, t.overflow, nil
}
