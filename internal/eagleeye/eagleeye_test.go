package eagleeye

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"xmrobust/internal/xm"
	"xmrobust/internal/xmcfg"
)

func TestConfigMatchesPaperTestbed(t *testing.T) {
	cfg := Config()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// "defining the OBSW into five partitions over a cyclic major frame
	// of 250ms" with the FDIR as the only system partition.
	if len(cfg.Partitions) != 5 {
		t.Fatalf("partitions = %d, want 5", len(cfg.Partitions))
	}
	if cfg.Plans[0].MajorFrame != 250000 {
		t.Fatalf("major frame = %dus, want 250000", cfg.Plans[0].MajorFrame)
	}
	systems := 0
	for _, p := range cfg.Partitions {
		if p.System {
			systems++
			if p.ID != FDIR || p.Name != "FDIR" {
				t.Errorf("system partition is %q (id %d), want FDIR", p.Name, p.ID)
			}
		}
	}
	if systems != 1 {
		t.Fatalf("system partitions = %d, want exactly 1 (FDIR)", systems)
	}
	// Every partition gets a slot in the nominal plan.
	seen := map[int]bool{}
	for _, s := range cfg.Plans[0].Slots {
		seen[s.PartitionID] = true
	}
	if len(seen) != 5 {
		t.Fatalf("nominal plan schedules %d partitions, want 5", len(seen))
	}
}

func TestConfigSurvivesXMLRoundTrip(t *testing.T) {
	cfg := Config()
	out, err := xmcfg.Emit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := xmcfg.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, cfg2) {
		t.Fatal("EagleEye config does not survive the XM_CF XML round trip")
	}
}

func TestOBSWRunsNominalMission(t *testing.T) {
	k, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(8); err != nil {
		t.Fatal(err)
	}
	// No faults: the health monitor log must be clean.
	if entries := k.HMEntries(); len(entries) != 0 {
		t.Fatalf("nominal mission produced HM events: %v", entries)
	}
	rep, err := Report(k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 8 {
		t.Errorf("FDIR cycles = %d, want 8", rep.Cycles)
	}
	if rep.PartitionsUp != 5 {
		t.Errorf("partitions up = %d, want 5", rep.PartitionsUp)
	}
	if rep.Recovered != 0 {
		t.Errorf("recovered = %d, want 0 in a nominal run", rep.Recovered)
	}
	sent, overflow, err := TMTCStats(k)
	if err != nil {
		t.Fatal(err)
	}
	if sent == 0 {
		t.Error("TMTC sent no downlink frames")
	}
	if rep.FramesDrained == 0 {
		t.Error("FDIR drained no downlink frames")
	}
	_ = overflow // overflow is legal under burst conditions
	if !strings.Contains(k.Machine().UART().String(), "[FDIR] cycle=") {
		t.Error("FDIR console heartbeat missing from UART")
	}
}

func TestTelemetryFlowsAcrossPartitions(t *testing.T) {
	k, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(4); err != nil {
		t.Fatal(err)
	}
	sent, _, err := TMTCStats(k)
	if err != nil {
		t.Fatal(err)
	}
	// Two sampling sources drained once per frame after warm-up.
	if sent < 4 {
		t.Fatalf("downlink frames = %d, want >= 4", sent)
	}
}

func TestFDIRRecoversHaltedPartition(t *testing.T) {
	k, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	// Replace PAYLOAD with a faulty program that violates spatial
	// separation on its third cycle.
	steps := 0
	faulty := faultyProg{step: func(env xm.Env) bool {
		steps++
		if steps == 3 {
			env.Write(0x40000000, []byte{1}) // outside its area: halted by HM
		}
		env.Compute(1000)
		return false
	}}
	if err := k.AttachProgram(Payload, &faulty); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(6); err != nil {
		t.Fatal(err)
	}
	rep, err := Report(k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered == 0 {
		t.Fatal("FDIR did not recover the halted PAYLOAD partition")
	}
	if rep.HMEntriesSeen == 0 {
		t.Fatal("FDIR read no HM entries despite the spatial violation")
	}
	st, _ := k.PartitionStatus(Payload)
	if st.BootCount < 2 {
		t.Fatalf("PAYLOAD boot count = %d, want >= 2 after FDIR recovery", st.BootCount)
	}
}

// faultyProg is a minimal Program for fault-injection into the testbed.
type faultyProg struct {
	step func(env xm.Env) bool
}

func (f *faultyProg) Boot(env xm.Env)      {}
func (f *faultyProg) Step(env xm.Env) bool { return f.step(env) }

func TestSurvivalPlanSwitch(t *testing.T) {
	k, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	// Ask FDIR's kernel to switch to the survival plan via a scripted
	// FDIR replacement.
	switched := false
	prog := &faultyProg{step: func(env xm.Env) bool {
		if !switched {
			switched = true
			ptr := areaBase(FDIR)
			if rc := env.Hypercall(xm.NrSwitchSchedPlan, 1, uint64(ptr)); rc != xm.OK {
				t.Errorf("switch_sched_plan: %v", rc)
			}
		}
		return false
	}}
	if err := k.AttachProgram(FDIR, prog); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(2); err != nil {
		t.Fatal(err)
	}
	if k.Status().CurrentPlan != 1 {
		t.Fatalf("plan = %d, want survival plan 1", k.Status().CurrentPlan)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (FDIRReport, uint64) {
		k, err := NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		if err := k.RunMajorFrames(5); err != nil {
			t.Fatal(err)
		}
		rep, _ := Report(k)
		return rep, k.HypercallCount()
	}
	r1, h1 := run()
	r2, h2 := run()
	if r1 != r2 || h1 != h2 {
		t.Fatalf("EagleEye runs are not deterministic: %+v/%d vs %+v/%d", r1, h1, r2, h2)
	}
}

func TestShippedXMLMatchesConfig(t *testing.T) {
	data, err := os.ReadFile("../../configs/eagleeye.xml")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := xmcfg.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, Config()) {
		t.Fatal("configs/eagleeye.xml has drifted from eagleeye.Config()")
	}
}
