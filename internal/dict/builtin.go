package dict

// Builtin returns the dictionary of the XtratuM case study: the value sets
// of paper Fig. 3 (xm_u32_t) and Table II (xm_s32_t), the pointer and
// address sets built from boundary and "magic" addresses, and the named
// override sets the campaign uses for context-narrowed parameters.
//
// Following paper §IV.B, each set mixes definitely-invalid boundary values
// with values that are valid for at least some hypercalls, so that an
// early parameter check cannot mask a later parameter's vulnerability
// (Fig. 7).
func Builtin() *Dictionary {
	d := NewDictionary()

	// Paper Fig. 3, verbatim: the xm_u32_t set.
	d.AddType(TypeSet{
		Name: "xm_u32_t", BasicType: "unsigned int",
		Values: []Value{
			{Raw: "0", Desc: "ZERO"},
			{Raw: "1"},
			{Raw: "2"},
			{Raw: "16"},
			{Raw: "4294967295", Desc: "MAX_U32", Validity: Invalid},
		},
	})

	// Paper Table II, verbatim: the xm_s32_t set.
	d.AddType(TypeSet{
		Name: "xm_s32_t", BasicType: "signed int",
		Values: []Value{
			{Raw: "-2147483648", Desc: "MIN_S32", Validity: Invalid},
			{Raw: "-16", Validity: Invalid},
			{Raw: "-1", Validity: Invalid},
			{Raw: "0", Desc: "ZERO"},
			{Raw: "1"},
			{Raw: "2"},
			{Raw: "16"},
			{Raw: "2147483647", Desc: "MAX_S32", Validity: Invalid},
		},
	})

	// xmTime_t (xm_s64_t): the interval/instant values of the paper's
	// Time Management tests — a small positive instant and LLONG_MIN.
	d.AddType(TypeSet{
		Name: "xm_s64_t", BasicType: "signed long long",
		Values: []Value{
			{Raw: "1"},
			{Raw: "-9223372036854775808", Desc: "MIN_S64", Validity: Invalid},
		},
	})

	// void*: the canonical invalid pointer plus two valid pointers into
	// the test partition's data area (masking avoidance).
	d.AddType(TypeSet{
		Name: "void*", BasicType: "void *",
		Values: []Value{
			{Raw: SymNull, Desc: "null pointer", Validity: Invalid},
			{Raw: SymValid, Desc: "data area base", Validity: Valid},
			{Raw: SymValidMid, Desc: "data area middle", Validity: Valid},
		},
	})

	// xmAddress_t: the rich address set the Memory Management sweep uses —
	// boundary addresses of the partition's own area, other partitions'
	// areas, kernel / PROM / I-O space, and unaligned and magic values.
	d.AddType(TypeSet{
		Name: "xmAddress_t", BasicType: "unsigned int",
		Values: []Value{
			{Raw: SymNull, Desc: "null", Validity: Invalid},
			{Raw: "1", Desc: "unaligned low", Validity: Invalid},
			{Raw: "3", Desc: "unaligned low", Validity: Invalid},
			{Raw: "16", Desc: "inside PROM", Validity: Invalid},
			{Raw: SymValid, Desc: "own area base", Validity: Valid},
			{Raw: SymValidMid, Desc: "own area middle", Validity: Valid},
			{Raw: SymValidLast, Desc: "own area last word"},
			{Raw: SymValidEnd, Desc: "one past own area"},
			{Raw: SymUnaligned, Desc: "own area base + 1"},
			{Raw: SymOtherPart, Desc: "another partition's area", Validity: Invalid},
			{Raw: SymKernel, Desc: "hypervisor image", Validity: Invalid},
			{Raw: SymIO, Desc: "I/O bank", Validity: Invalid},
			{Raw: "2147483647", Desc: "MAX_S32", Validity: Invalid},
			{Raw: "4294967295", Desc: "MAX_U32", Validity: Invalid},
		},
	})

	// xmSize_t: transfer sizes from empty to the full address space.
	d.AddType(TypeSet{
		Name: "xmSize_t", BasicType: "unsigned int",
		Values: []Value{
			{Raw: "0", Desc: "ZERO"},
			{Raw: "1"},
			{Raw: "16"},
			{Raw: "4096", Desc: "one page"},
			{Raw: "4294967295", Desc: "MAX_U32", Validity: Invalid},
		},
	})

	// Named override sets for context-narrowed parameters (paper §V
	// discusses hypercall-specific datasets as the refinement of the pure
	// type-bound selection).
	d.AddNamed(NamedSet{
		Name: "plan_ids",
		Values: []Value{
			{Raw: "1", Desc: "configured plan", Validity: Valid},
			{Raw: "4294967295", Desc: "MAX_U32", Validity: Invalid},
		},
	})
	d.AddNamed(NamedSet{
		Name:   "null_only",
		Values: []Value{{Raw: SymNull, Desc: "null pointer", Validity: Invalid}},
	})
	d.AddNamed(NamedSet{
		Name: "trace_bitmasks",
		Values: []Value{
			{Raw: "0", Desc: "no class selected"},
			{Raw: "1"}, {Raw: "2"}, {Raw: "4"}, {Raw: "8"},
			{Raw: "16"}, {Raw: "32"}, {Raw: "64"}, {Raw: "128"},
			{Raw: "256"}, {Raw: "1024"}, {Raw: "65536"},
			{Raw: "3", Desc: "adjacent bits"},
			{Raw: "5", Desc: "split bits"},
			{Raw: "15"},
			{Raw: "255"},
			{Raw: "65535"},
			{Raw: "2147483648", Desc: "sign bit"},
			{Raw: "2147483647", Desc: "MAX_S32"},
			{Raw: "4294967295", Desc: "all classes"},
		},
	})
	d.AddNamed(NamedSet{
		Name: "irq_types",
		Values: []Value{
			{Raw: "0", Desc: "hw irq", Validity: Valid},
			{Raw: "1", Desc: "extended irq", Validity: Valid},
			{Raw: "2", Validity: Invalid},
			{Raw: "16", Validity: Invalid},
		},
	})
	return d
}

// WithoutValid returns a copy of the dictionary with every
// definitely-valid value removed — the boundary-only selection the paper
// warns against in §IV.B: without valid values, an early parameter check
// masks every later parameter's handling (Fig. 7). Types whose values are
// all valid keep their first value so no row goes empty.
func WithoutValid(src *Dictionary) *Dictionary {
	strip := func(vals []Value) []Value {
		var out []Value
		for _, v := range vals {
			if v.Validity != Valid {
				out = append(out, v)
			}
		}
		if len(out) == 0 {
			out = vals[:1]
		}
		return out
	}
	d := NewDictionary()
	for _, ts := range src.Types() {
		d.AddType(TypeSet{Name: ts.Name, BasicType: ts.BasicType, Values: strip(ts.Values)})
	}
	for _, ns := range src.NamedSets() {
		d.AddNamed(NamedSet{Name: ns.Name, Values: strip(ns.Values)})
	}
	return d
}
