// Package dict implements the data-type dictionaries of the data type
// fault model: for every XM interface type, a set of test values "likely
// to contain exceptional values for functions" (paper §III.A), plus named
// value sets used as per-parameter overrides.
//
// Dictionaries serialise to and from the Data Type XML of paper Fig. 3:
//
//	<DataType Name="xm_u32_t">
//	  <BasicType>unsigned int</BasicType>
//	  <TestValues>
//	    <Value>0</Value>
//	    ...
//	  </TestValues>
//	</DataType>
//
// Values are either numeric literals or symbolic tokens (NULL, VALID,
// VALID_MID, …) resolved against the test partition's memory layout at
// campaign time — the equivalent of the linker fixing up the mutant
// source's buffer addresses.
package dict

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
)

// Validity is the dictionary's a-priori hint about a value: definitely
// valid for its type's typical use, definitely invalid, or dependent on
// the hypercall ("valid / invalid input depending on hypercall", the
// asterisk of paper Table II). The hint drives fault-masking avoidance and
// the blame analysis of the log-analysis phase; it is never shown to the
// kernel.
type Validity int

// Validity hints.
const (
	Depends Validity = iota
	Valid
	Invalid
)

func (v Validity) String() string {
	switch v {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return "depends"
	}
}

// ParseValidity is the inverse of Validity.String (empty means Depends).
// Campaign-log readers use it to reconstruct dictionary metadata.
func ParseValidity(s string) (Validity, error) { return parseValidity(s) }

// parseValidity is the inverse of Validity.String (empty means Depends).
func parseValidity(s string) (Validity, error) {
	switch s {
	case "", "depends":
		return Depends, nil
	case "valid":
		return Valid, nil
	case "invalid":
		return Invalid, nil
	default:
		return Depends, fmt.Errorf("dict: unknown validity %q", s)
	}
}

// Value is one dictionary entry: a literal number or a symbolic token,
// with an optional description (the paper's "MIN_S32", "ZERO", …) and a
// validity hint.
type Value struct {
	Raw      string
	Desc     string
	Validity Validity
}

// Symbolic tokens resolved against the test partition's layout.
const (
	SymNull      = "NULL"       // address 0
	SymValid     = "VALID"      // base of the test partition's data area
	SymValidMid  = "VALID_MID"  // middle of the data area
	SymValidLast = "VALID_LAST" // last naturally aligned word of the area
	SymValidEnd  = "VALID_END"  // one past the end of the area
	SymUnaligned = "UNALIGNED"  // data area base + 1
	SymOtherPart = "OTHER_PART" // another partition's data area
	SymKernel    = "KERNEL"     // inside the hypervisor image
	SymROM       = "ROM"        // inside the boot PROM
	SymIO        = "IO"         // inside the I/O bank
)

// IsSymbol reports whether the value is a symbolic token (vs a literal).
func (v Value) IsSymbol() bool {
	_, err := parseLiteral(v.Raw)
	return err != nil
}

// parseLiteral parses a decimal/hex literal into its 64-bit ABI image.
// Negative literals are sign-extended two's complement.
func parseLiteral(s string) (uint64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("dict: empty value")
	}
	if strings.HasPrefix(t, "-") {
		v, err := strconv.ParseInt(t, 0, 64)
		if err != nil {
			return 0, err
		}
		return uint64(v), nil
	}
	return strconv.ParseUint(t, 0, 64)
}

// String renders the value with its description, as campaign logs show it.
func (v Value) String() string {
	if v.Desc != "" {
		return v.Raw + "(" + v.Desc + ")"
	}
	return v.Raw
}

// TypeSet is the test-value set of one data type (one <DataType> element).
type TypeSet struct {
	Name      string
	BasicType string
	Values    []Value
}

// NamedSet is a reusable per-parameter override set (<ValueSet> element).
type NamedSet struct {
	Name   string
	Values []Value
}

// Dictionary holds all type sets and named override sets of a campaign.
type Dictionary struct {
	types    map[string]*TypeSet
	named    map[string]*NamedSet
	typeOrd  []string
	namedOrd []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{
		types: make(map[string]*TypeSet),
		named: make(map[string]*NamedSet),
	}
}

// AddType registers (or replaces) a type set.
func (d *Dictionary) AddType(ts TypeSet) {
	if _, ok := d.types[ts.Name]; !ok {
		d.typeOrd = append(d.typeOrd, ts.Name)
	}
	cp := ts
	cp.Values = append([]Value(nil), ts.Values...)
	d.types[ts.Name] = &cp
}

// AddNamed registers (or replaces) a named override set.
func (d *Dictionary) AddNamed(ns NamedSet) {
	if _, ok := d.named[ns.Name]; !ok {
		d.namedOrd = append(d.namedOrd, ns.Name)
	}
	cp := ns
	cp.Values = append([]Value(nil), ns.Values...)
	d.named[ns.Name] = &cp
}

// Type returns the value set of a data type, resolving the Table I
// extended aliases (xmAddress_t, xmSize_t, xmTime_t, …) to their own sets
// when present and to their basic type otherwise.
func (d *Dictionary) Type(name string) (*TypeSet, bool) {
	if ts, ok := d.types[name]; ok {
		return ts, true
	}
	if alias, ok := typeAliases[name]; ok {
		if ts, ok := d.types[alias]; ok {
			return ts, true
		}
	}
	return nil, false
}

// Named returns a named override set.
func (d *Dictionary) Named(name string) (*NamedSet, bool) {
	ns, ok := d.named[name]
	return ns, ok
}

// Types lists the type sets in registration order.
func (d *Dictionary) Types() []TypeSet {
	out := make([]TypeSet, 0, len(d.typeOrd))
	for _, n := range d.typeOrd {
		out = append(out, *d.types[n])
	}
	return out
}

// NamedSets lists the override sets in registration order.
func (d *Dictionary) NamedSets() []NamedSet {
	out := make([]NamedSet, 0, len(d.namedOrd))
	for _, n := range d.namedOrd {
		out = append(out, *d.named[n])
	}
	return out
}

// typeAliases maps Table I extended types to the basic type whose
// dictionary they fall back to.
var typeAliases = map[string]string{
	"xmWord_t":      "xm_u32_t",
	"xmAddress_t":   "xm_u32_t",
	"xmIoAddress_t": "xm_u32_t",
	"xmSize_t":      "xm_u32_t",
	"xmId_t":        "xm_u32_t",
	"xmSSize_t":     "xm_s32_t",
	"xmTime_t":      "xm_s64_t",
}

// --- XML form (paper Fig. 3) -------------------------------------------------

type xmlDoc struct {
	XMLName xml.Name      `xml:"DataTypes"`
	Types   []xmlDataType `xml:"DataType"`
	Sets    []xmlValueSet `xml:"ValueSet"`
}

type xmlDataType struct {
	Name      string     `xml:"Name,attr"`
	BasicType string     `xml:"BasicType"`
	Values    []xmlValue `xml:"TestValues>Value"`
}

type xmlValueSet struct {
	Name   string     `xml:"Name,attr"`
	Values []xmlValue `xml:"Value"`
}

type xmlValue struct {
	Desc     string `xml:"Desc,attr,omitempty"`
	Validity string `xml:"Validity,attr,omitempty"`
	Raw      string `xml:",chardata"`
}

func fromXMLValues(in []xmlValue) ([]Value, error) {
	out := make([]Value, 0, len(in))
	for _, xv := range in {
		val, err := parseValidity(xv.Validity)
		if err != nil {
			return nil, err
		}
		raw := strings.TrimSpace(xv.Raw)
		if raw == "" {
			return nil, fmt.Errorf("dict: empty <Value>")
		}
		out = append(out, Value{Raw: raw, Desc: xv.Desc, Validity: val})
	}
	return out, nil
}

func toXMLValues(in []Value) []xmlValue {
	out := make([]xmlValue, 0, len(in))
	for _, v := range in {
		xv := xmlValue{Raw: v.Raw, Desc: v.Desc}
		if v.Validity != Depends {
			xv.Validity = v.Validity.String()
		}
		out = append(out, xv)
	}
	return out
}

// Parse reads a Data Type XML document (paper Fig. 3).
func Parse(data []byte) (*Dictionary, error) {
	var doc xmlDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("dict: %w", err)
	}
	d := NewDictionary()
	for _, t := range doc.Types {
		if t.Name == "" {
			return nil, fmt.Errorf("dict: <DataType> without Name")
		}
		vals, err := fromXMLValues(t.Values)
		if err != nil {
			return nil, err
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("dict: type %q has no test values", t.Name)
		}
		d.AddType(TypeSet{Name: t.Name, BasicType: strings.TrimSpace(t.BasicType), Values: vals})
	}
	for _, s := range doc.Sets {
		if s.Name == "" {
			return nil, fmt.Errorf("dict: <ValueSet> without Name")
		}
		vals, err := fromXMLValues(s.Values)
		if err != nil {
			return nil, err
		}
		d.AddNamed(NamedSet{Name: s.Name, Values: vals})
	}
	return d, nil
}

// Emit writes the dictionary as a Data Type XML document.
func (d *Dictionary) Emit() ([]byte, error) {
	doc := xmlDoc{}
	for _, ts := range d.Types() {
		doc.Types = append(doc.Types, xmlDataType{
			Name: ts.Name, BasicType: ts.BasicType, Values: toXMLValues(ts.Values),
		})
	}
	for _, ns := range d.NamedSets() {
		doc.Sets = append(doc.Sets, xmlValueSet{Name: ns.Name, Values: toXMLValues(ns.Values)})
	}
	out, err := xml.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dict: %w", err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}
