package dict

import (
	"strings"
	"testing"
	"testing/quick"

	"xmrobust/internal/sparc"
)

func TestBuiltinTableIIValueSet(t *testing.T) {
	d := Builtin()
	ts, ok := d.Type("xm_s32_t")
	if !ok {
		t.Fatal("no xm_s32_t set")
	}
	// Paper Table II, in order.
	want := []string{"-2147483648", "-16", "-1", "0", "1", "2", "16", "2147483647"}
	if len(ts.Values) != len(want) {
		t.Fatalf("xm_s32_t has %d values, want %d (Table II)", len(ts.Values), len(want))
	}
	for i, w := range want {
		if ts.Values[i].Raw != w {
			t.Errorf("value %d = %q, want %q", i, ts.Values[i].Raw, w)
		}
	}
	if ts.Values[0].Desc != "MIN_S32" || ts.Values[7].Desc != "MAX_S32" || ts.Values[3].Desc != "ZERO" {
		t.Error("Table II descriptions missing")
	}
	if ts.BasicType != "signed int" {
		t.Errorf("basic type = %q", ts.BasicType)
	}
}

func TestBuiltinFig3ValueSet(t *testing.T) {
	d := Builtin()
	ts, ok := d.Type("xm_u32_t")
	if !ok {
		t.Fatal("no xm_u32_t set")
	}
	// Paper Fig. 3, verbatim: 0, 1, 2, 16, 4294967295.
	want := []string{"0", "1", "2", "16", "4294967295"}
	if len(ts.Values) != len(want) {
		t.Fatalf("xm_u32_t has %d values, want %d (Fig. 3)", len(ts.Values), len(want))
	}
	for i, w := range want {
		if ts.Values[i].Raw != w {
			t.Errorf("value %d = %q, want %q", i, ts.Values[i].Raw, w)
		}
	}
	if ts.BasicType != "unsigned int" {
		t.Errorf("basic type = %q", ts.BasicType)
	}
}

func TestBuiltinMixesValidAndInvalid(t *testing.T) {
	// Paper §IV.B: sets must include values that can be valid, to avoid
	// fault masking (Fig. 7).
	for _, ts := range Builtin().Types() {
		hasInvalid, hasNonInvalid := false, false
		for _, v := range ts.Values {
			if v.Validity == Invalid {
				hasInvalid = true
			} else {
				hasNonInvalid = true
			}
		}
		if !hasInvalid || !hasNonInvalid {
			t.Errorf("%s: needs both invalid and potentially-valid values (masking avoidance)", ts.Name)
		}
	}
}

func TestBuiltinSizes(t *testing.T) {
	d := Builtin()
	for name, want := range map[string]int{
		"xm_u32_t":    5,
		"xm_s32_t":    8,
		"xm_s64_t":    2,
		"void*":       3,
		"xmAddress_t": 14,
		"xmSize_t":    5,
	} {
		ts, ok := d.Type(name)
		if !ok {
			t.Errorf("%s: missing", name)
			continue
		}
		if len(ts.Values) != want {
			t.Errorf("%s: %d values, want %d", name, len(ts.Values), want)
		}
	}
}

func TestTypeAliasesResolve(t *testing.T) {
	d := Builtin()
	// xmTime_t falls back to xm_s64_t; xmId_t to xm_u32_t; xmAddress_t
	// and xmSize_t have their own sets.
	if ts, ok := d.Type("xmTime_t"); !ok || ts.Name != "xm_s64_t" {
		t.Errorf("xmTime_t resolves to %+v %v", ts, ok)
	}
	if ts, ok := d.Type("xmId_t"); !ok || ts.Name != "xm_u32_t" {
		t.Errorf("xmId_t resolves to %+v %v", ts, ok)
	}
	if ts, ok := d.Type("xmAddress_t"); !ok || ts.Name != "xmAddress_t" {
		t.Errorf("xmAddress_t resolves to %+v %v", ts, ok)
	}
	if _, ok := d.Type("nonsense_t"); ok {
		t.Error("nonsense_t resolved")
	}
}

func TestNamedSets(t *testing.T) {
	d := Builtin()
	for name, want := range map[string]int{"plan_ids": 2, "null_only": 1, "irq_types": 4} {
		ns, ok := d.Named(name)
		if !ok {
			t.Errorf("named set %q missing", name)
			continue
		}
		if len(ns.Values) != want {
			t.Errorf("%s: %d values, want %d", name, len(ns.Values), want)
		}
	}
	if _, ok := d.Named("nope"); ok {
		t.Error("named set nope found")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	d := Builtin()
	out, err := d.Emit()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if len(d2.Types()) != len(d.Types()) || len(d2.NamedSets()) != len(d.NamedSets()) {
		t.Fatal("round trip lost sets")
	}
	for i, ts := range d.Types() {
		ts2 := d2.Types()[i]
		if ts2.Name != ts.Name || ts2.BasicType != ts.BasicType || len(ts2.Values) != len(ts.Values) {
			t.Fatalf("type %s changed: %+v vs %+v", ts.Name, ts, ts2)
		}
		for j := range ts.Values {
			if ts.Values[j] != ts2.Values[j] {
				t.Fatalf("%s value %d changed: %+v vs %+v", ts.Name, j, ts.Values[j], ts2.Values[j])
			}
		}
	}
}

func TestEmitMatchesFig3Shape(t *testing.T) {
	out, err := Builtin().Emit()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`<DataType Name="xm_u32_t">`,
		"<BasicType>unsigned int</BasicType>",
		"<TestValues>",
		"<Value>1</Value>",
		"<Value>16</Value>",
		`<Value Desc="MAX_U32" Validity="invalid">4294967295</Value>`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("emitted XML lacks %q (Fig. 3 shape)", want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"garbage", "not xml"},
		{"unnamed type", `<DataTypes><DataType><BasicType>int</BasicType><TestValues><Value>1</Value></TestValues></DataType></DataTypes>`},
		{"empty values", `<DataTypes><DataType Name="t"><BasicType>int</BasicType><TestValues></TestValues></DataType></DataTypes>`},
		{"empty value", `<DataTypes><DataType Name="t"><BasicType>int</BasicType><TestValues><Value> </Value></TestValues></DataType></DataTypes>`},
		{"bad validity", `<DataTypes><DataType Name="t"><BasicType>int</BasicType><TestValues><Value Validity="maybe">1</Value></TestValues></DataType></DataTypes>`},
		{"unnamed set", `<DataTypes><ValueSet><Value>1</Value></ValueSet></DataTypes>`},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func testLayout() Layout {
	return Layout{
		DataArea:  sparc.Region{Base: 0x40500000, Size: 0x10000},
		OtherArea: sparc.Region{Base: 0x40100000, Size: 0x10000},
		Kernel:    0x40000000,
		ROM:       0x100,
		IO:        0x80000000,
	}
}

func TestResolveSymbols(t *testing.T) {
	l := testLayout()
	cases := map[string]uint64{
		SymNull:      0,
		SymValid:     0x40500000,
		SymValidMid:  0x40508000,
		SymValidLast: 0x4050FFFC,
		SymValidEnd:  0x40510000,
		SymUnaligned: 0x40500001,
		SymOtherPart: 0x40100000,
		SymKernel:    0x40000000,
		SymROM:       0x100,
		SymIO:        0x80000000,
	}
	for sym, want := range cases {
		r, err := l.Resolve(Value{Raw: sym})
		if err != nil {
			t.Errorf("%s: %v", sym, err)
			continue
		}
		if r.Bits != want {
			t.Errorf("%s = %#x, want %#x", sym, r.Bits, want)
		}
	}
	if _, err := l.Resolve(Value{Raw: "WHAT"}); err == nil {
		t.Error("unknown symbol resolved")
	}
}

func TestResolveLiterals(t *testing.T) {
	l := testLayout()
	cases := map[string]uint64{
		"0":                    0,
		"1":                    1,
		"4294967295":           0xFFFFFFFF,
		"-1":                   0xFFFFFFFFFFFFFFFF,
		"-2147483648":          0xFFFFFFFF80000000,
		"-9223372036854775808": 0x8000000000000000,
		"0x40":                 0x40,
	}
	for raw, want := range cases {
		r, err := l.Resolve(Value{Raw: raw})
		if err != nil {
			t.Errorf("%s: %v", raw, err)
			continue
		}
		if r.Bits != want {
			t.Errorf("%s = %#x, want %#x", raw, r.Bits, want)
		}
	}
}

func TestResolveAllBuiltin(t *testing.T) {
	l := testLayout()
	for _, ts := range Builtin().Types() {
		if _, err := l.ResolveAll(ts.Values); err != nil {
			t.Errorf("%s: %v", ts.Name, err)
		}
	}
	for _, ns := range Builtin().NamedSets() {
		if _, err := l.ResolveAll(ns.Values); err != nil {
			t.Errorf("%s: %v", ns.Name, err)
		}
	}
}

func TestValueString(t *testing.T) {
	if s := (Value{Raw: "-16"}).String(); s != "-16" {
		t.Errorf("String = %q", s)
	}
	if s := (Value{Raw: "0", Desc: "ZERO"}).String(); s != "0(ZERO)" {
		t.Errorf("String = %q", s)
	}
}

func TestIsSymbol(t *testing.T) {
	if (Value{Raw: "42"}).IsSymbol() {
		t.Error("42 is a symbol")
	}
	if !(Value{Raw: SymValid}).IsSymbol() {
		t.Error("VALID is not a symbol")
	}
}

// Property: literal values always survive Resolve with their two's
// complement image.
func TestPropertyLiteralResolution(t *testing.T) {
	l := testLayout()
	f := func(v int64) bool {
		raw := Value{Raw: itoa(v)}
		r, err := l.Resolve(raw)
		return err == nil && r.Bits == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int64) string {
	// strconv is fine in tests; keep it explicit for negative handling.
	return fmtInt(v)
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-v) // MinInt64 wraps to itself, handled below
	}
	if v == -9223372036854775808 {
		return "-9223372036854775808"
	}
	var b [20]byte
	i := len(b)
	for u > 0 {
		i--
		b[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
