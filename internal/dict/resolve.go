package dict

import (
	"fmt"

	"xmrobust/internal/sparc"
)

// Layout describes the memory landscape symbolic values resolve against:
// the test partition's data area plus the landmark addresses of the
// machine (another partition's area, the hypervisor image, PROM, I/O).
type Layout struct {
	DataArea  sparc.Region
	OtherArea sparc.Region
	Kernel    sparc.Addr
	ROM       sparc.Addr
	IO        sparc.Addr
}

// Resolved is a dictionary value fixed to its 64-bit ABI image, carrying
// the dictionary metadata the log-analysis phase needs.
type Resolved struct {
	Value
	Bits uint64
}

// Resolve fixes a value against the layout. Literals pass through;
// symbolic tokens become the corresponding address.
func (l Layout) Resolve(v Value) (Resolved, error) {
	if bits, err := parseLiteral(v.Raw); err == nil {
		return Resolved{Value: v, Bits: bits}, nil
	}
	var addr sparc.Addr
	switch v.Raw {
	case SymNull:
		addr = 0
	case SymValid:
		addr = l.DataArea.Base
	case SymValidMid:
		addr = l.DataArea.Base + sparc.Addr(l.DataArea.Size/2)
	case SymValidLast:
		addr = l.DataArea.Base + sparc.Addr(l.DataArea.Size-4)
	case SymValidEnd:
		addr = l.DataArea.Base + sparc.Addr(l.DataArea.Size)
	case SymUnaligned:
		addr = l.DataArea.Base + 1
	case SymOtherPart:
		addr = l.OtherArea.Base
	case SymKernel:
		addr = l.Kernel
	case SymROM:
		addr = l.ROM
	case SymIO:
		addr = l.IO
	default:
		return Resolved{}, fmt.Errorf("dict: unknown symbolic value %q", v.Raw)
	}
	return Resolved{Value: v, Bits: uint64(uint32(addr))}, nil
}

// ResolveAll fixes a whole value list.
func (l Layout) ResolveAll(vs []Value) ([]Resolved, error) {
	out := make([]Resolved, 0, len(vs))
	for _, v := range vs {
		r, err := l.Resolve(v)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
