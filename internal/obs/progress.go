package obs

import (
	"sync"
	"time"
)

// Campaign tracks live campaign progress: totals, completion, and
// per-outcome tallies, cheap enough to update per test. All methods
// are nil-safe, so an uninstrumented run carries a nil tracker at one
// nil check per call site.
type Campaign struct {
	mu       sync.Mutex
	total    int64
	done     int64
	base     int64 // completed before this process started (resume skip)
	start    time.Time
	outcomes map[string]int64
	now      func() time.Time
}

// NewCampaign builds an idle progress tracker.
func NewCampaign() *Campaign {
	return &Campaign{outcomes: map[string]int64{}, now: time.Now}
}

// Begin marks the campaign start: total positions overall, of which
// skipped were already completed by a resumed checkpoint (they count as
// done but not toward the rate).
func (p *Campaign) Begin(total, skipped int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total = int64(total)
	p.done = int64(skipped)
	p.base = int64(skipped)
	p.start = p.now()
	p.outcomes = map[string]int64{}
	p.mu.Unlock()
}

// Done records n more completed tests.
func (p *Campaign) Done(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done += int64(n)
	p.mu.Unlock()
}

// Outcome tallies one test outcome by name (injection outcome classes,
// "sim-crash", "harness-error", "ok").
func (p *Campaign) Outcome(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.outcomes[name]++
	p.mu.Unlock()
}

// Snapshot is the JSON shape /progress serves and -progress renders:
// completion, rate, and ETA of the running campaign.
type Snapshot struct {
	Done        int64            `json:"done"`
	Total       int64            `json:"total"`
	ElapsedSec  float64          `json:"elapsed_sec"`
	TestsPerSec float64          `json:"tests_per_sec"`
	ETASec      float64          `json:"eta_sec"`
	Outcomes    map[string]int64 `json:"outcomes,omitempty"`
}

// Snapshot reads the current progress. The rate counts only tests this
// process executed (resume-skipped positions are excluded), so the ETA
// stays honest across resumes. Nil tracker: zero snapshot.
func (p *Campaign) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Snapshot{Done: p.done, Total: p.total}
	if len(p.outcomes) > 0 {
		s.Outcomes = make(map[string]int64, len(p.outcomes))
		for k, v := range p.outcomes {
			s.Outcomes[k] = v
		}
	}
	if p.start.IsZero() {
		return s
	}
	s.ElapsedSec = p.now().Sub(p.start).Seconds()
	if ran := p.done - p.base; ran > 0 && s.ElapsedSec > 0 {
		s.TestsPerSec = float64(ran) / s.ElapsedSec
		if left := p.total - p.done; left > 0 {
			s.ETASec = float64(left) / s.TestsPerSec
		}
	}
	return s
}
