package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders every registered family in Prometheus text
// exposition format (version 0.0.4). Output is deterministic: families
// sort by name, series sort by label values, histogram buckets render
// cumulatively in bound order — pinned by the golden test. Nil
// registry: writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			writeSeries(&b, f, f.series[k])
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSeries renders one series of f, including a histogram's full
// bucket/sum/count block.
func writeSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labelKeys, s.labelVals, "", ""),
			formatFloat(s.fn()))
	case f.kind == kindCounter:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labelKeys, s.labelVals, "", ""),
			s.c.Value())
	case f.kind == kindGauge:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labelKeys, s.labelVals, "", ""),
			s.g.Value())
	case f.kind == kindHistogram:
		h := s.h
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labelKeys, s.labelVals, "le", formatFloat(bound)), cum)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
			labelString(f.labelKeys, s.labelVals, "le", "+Inf"), h.Count())
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
			labelString(f.labelKeys, s.labelVals, "", ""), formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name,
			labelString(f.labelKeys, s.labelVals, "", ""), h.Count())
	}
}

// labelString renders the {k="v",...} label block, with an optional
// extra pair (the histogram le label), or "" when there are no labels.
func labelString(keys, vals []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(vals[i]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
