package obs

import (
	"strings"
	"testing"
	"time"
)

// TestNilRegistryIsInert pins the off-switch contract: a nil registry
// hands out nil handles, and every operation on them — and on a nil
// tracer and campaign — is a no-op. Instrumented code never branches on
// whether observability is on.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", 1, 2)
	v := r.CounterVec("v", "", "site")
	r.CounterFunc("cf", "", func() float64 { return 1 })
	r.GaugeFunc("gf", "", func() float64 { return 1 })

	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Errorf("nil counter Value = %d", c.Value())
	}
	g.Set(7)
	g.Add(-2)
	if g.Value() != 0 {
		t.Errorf("nil gauge Value = %d", g.Value())
	}
	h.Observe(1.5)
	v.With("ram").Inc()

	var tr *Tracer
	tr.Emit(Event{Kind: "x"})
	tr.Close()

	var p *Campaign
	p.Begin(10, 0)
	p.Done(1)
	p.Outcome("ok")
	if s := p.Snapshot(); s.Total != 0 {
		t.Errorf("nil campaign Snapshot = %+v", s)
	}

	var o *Obs
	if o.Registry() != nil || o.Prog() != nil {
		t.Error("nil Obs accessors must return nil")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}

	g := r.Gauge("g", "help")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}

	// Bounds are sorted on registration; observations land in the first
	// bucket whose bound is >= v (Prometheus le semantics).
	h := r.Histogram("h", "help", 100, 10, 1)
	for _, v := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="10"} 4`,
		`h_bucket{le="100"} 5`,
		`h_bucket{le="+Inf"} 6`,
		`h_count 6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	if r.Counter("dup", "h") != r.Counter("dup", "h") {
		t.Error("same name must return the same counter")
	}
	v := r.CounterVec("vec", "h", "site", "outcome")
	if v.With("ram", "masked") != v.With("ram", "masked") {
		t.Error("same labels must return the same series")
	}
	if v.With("ram", "masked") == v.With("ram", "crash") {
		t.Error("different labels must return different series")
	}
}

func TestCampaignSnapshot(t *testing.T) {
	p := NewCampaign()
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }
	p.Begin(100, 20)
	now = now.Add(10 * time.Second)
	p.Done(40)
	p.Outcome("ok")
	p.Outcome("crash")
	p.Outcome("ok")

	s := p.Snapshot()
	if s.Done != 60 || s.Total != 100 { // Begin counts the 20 skipped as done
		t.Errorf("done/total = %d/%d, want 60/100", s.Done, s.Total)
	}
	// Rate covers only this session's work: 40 tests in 10s.
	if s.TestsPerSec < 3.9 || s.TestsPerSec > 4.1 {
		t.Errorf("tests/sec = %v, want ~4", s.TestsPerSec)
	}
	if s.ETASec < 9.9 || s.ETASec > 10.1 { // 40 left at 4/s
		t.Errorf("eta = %v, want ~10", s.ETASec)
	}
	if s.Outcomes["ok"] != 2 || s.Outcomes["crash"] != 1 {
		t.Errorf("outcomes = %v", s.Outcomes)
	}
}
