// Package obs is the observability spine of the execution stack: a
// zero-dependency metrics registry (counters, gauges, histograms with
// atomic hot paths and Prometheus text exposition), a span-style
// trace-event stream persisted as JSON Lines through the internal/store
// seam, a campaign progress tracker, and an opt-in ops HTTP server
// serving /metrics, /healthz, /progress and net/http/pprof.
//
// Every handle is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Tracer or *Campaign are no-ops, so instrumented code
// pays the stack's established one-nil-check-when-off cost and needs
// no conditional wiring. A nil *Registry returns nil handles from every
// constructor, which makes "obs off" the zero value all the way down.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil Counter ignores updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil Gauge ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into cumulative buckets with explicit
// upper bounds, Prometheus-style. A nil Histogram ignores observations.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; counts has one extra +Inf slot
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// newHistogram builds a histogram over the given bucket upper bounds
// (sorted ascending by the caller-facing Registry constructor).
func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count reads the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metricKind tags a family for TYPE lines and mismatch checks.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled time series inside a family. Exactly one of
// the value fields is set, matching the family kind (fn may stand in
// for a counter or gauge — a lazy collector read at scrape time).
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
	fn        func() float64
}

// family is one named metric: a kind, a help string, a label schema,
// and the series carrying values.
type family struct {
	name      string
	help      string
	kind      metricKind
	labelKeys []string
	bounds    []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
}

// seriesKey joins label values into a map key. NUL never appears in
// label values the stack emits, so the join is unambiguous.
func seriesKey(vals []string) string { return strings.Join(vals, "\x00") }

// get returns the series for the given label values, creating it on
// first use.
func (f *family) get(vals []string) *series {
	key := seriesKey(vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: vals}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Constructors are idempotent: asking twice for the
// same name returns the same handle, and a kind or label-schema
// mismatch panics (a programming error, like prometheus.MustRegister).
// A nil Registry returns nil handles, making it the "obs off" value.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// lookup returns the family, creating it on first use and checking the
// schema on every later use.
func (r *Registry) lookup(name, help string, kind metricKind, labelKeys []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name:      name,
			help:      help,
			kind:      kind,
			labelKeys: labelKeys,
			bounds:    bounds,
			series:    map[string]*series{},
		}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	if len(f.labelKeys) != len(labelKeys) {
		panic(fmt.Sprintf("obs: metric %q re-registered with %d labels, had %d",
			name, len(labelKeys), len(f.labelKeys)))
	}
	for i := range labelKeys {
		if f.labelKeys[i] != labelKeys[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with label %q, had %q",
				name, labelKeys[i], f.labelKeys[i]))
		}
	}
	return f
}

// Counter returns the named counter, creating it on first use. Nil
// registry: nil handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, nil).get(nil).c
}

// Gauge returns the named gauge, creating it on first use. Nil
// registry: nil handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, nil).get(nil).g
}

// Histogram returns the named histogram over the given bucket upper
// bounds (sorted internally; a +Inf bucket is implicit). Nil registry:
// nil handle.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return r.lookup(name, help, kindHistogram, nil, bs).get(nil).h
}

// CounterFunc registers a lazy counter collected at scrape time — the
// pattern for counters another subsystem already maintains (pool
// stats), costing the hot path nothing. Later registrations replace
// the function. Nil registry: no-op.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindCounter, nil, nil)
	f.mu.Lock()
	f.series[seriesKey(nil)] = &series{fn: fn}
	f.mu.Unlock()
}

// GaugeFunc registers a lazy gauge collected at scrape time (queue
// depths, pool occupancy). Later registrations replace the function.
// Nil registry: no-op.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.series[seriesKey(nil)] = &series{fn: fn}
	f.mu.Unlock()
}

// CounterVec is a counter family with a label schema; With resolves one
// labelled series. A nil CounterVec returns nil counters.
type CounterVec struct {
	fam *family
}

// CounterVec returns the named labelled counter family. Nil registry:
// nil handle.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	keys := append([]string(nil), labelKeys...)
	return &CounterVec{fam: r.lookup(name, help, kindCounter, keys, nil)}
}

// With returns the counter for the given label values (one per label
// key, in schema order), creating the series on first use.
func (v *CounterVec) With(labelVals ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(labelVals) != len(v.fam.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			v.fam.name, len(v.fam.labelKeys), len(labelVals)))
	}
	return v.fam.get(append([]string(nil), labelVals...)).c
}
