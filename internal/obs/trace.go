package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"xmrobust/internal/store"
)

// Event is one span-style trace record: a campaign, lease, or test
// lifecycle moment. Events serialise as JSON Lines through the
// internal/store seam, so remote workers and local runs persist traces
// the same way shards and checkpoints already travel.
type Event struct {
	// T is the wall-clock emission time (stamped by Emit when zero).
	T time.Time `json:"t"`
	// Kind names the moment: campaign.start, campaign.end, lease.issue,
	// lease.complete, lease.reclaim, lease.handback.
	Kind string `json:"kind"`
	// Campaign identifies the run (the plan spec).
	Campaign string `json:"campaign,omitempty"`
	// Lease is the lease ID for lease.* events.
	Lease uint64 `json:"lease,omitempty"`
	// Start is the first plan position of the lease's range.
	Start int `json:"start,omitempty"`
	// N is the position count (lease events) or total tests (campaign
	// events).
	N int `json:"n,omitempty"`
	// Attempt is the lease re-issue generation (0: first issue).
	Attempt int `json:"attempt,omitempty"`
	// Detail carries kind-specific context (error strings, target names).
	Detail string `json:"detail,omitempty"`
}

// Tracer appends events to a JSONL stream. Emit is safe for concurrent
// use and never fails the caller — tracing is advisory, campaigns do
// not abort on a full disk for it. A nil Tracer drops every event.
type Tracer struct {
	mu  sync.Mutex
	w   io.WriteCloser
	now func() time.Time
}

// NewTracer opens (appending) the named trace stream in st.
func NewTracer(st store.LogStore, name string) (*Tracer, error) {
	w, err := st.AppendLog(name, true)
	if err != nil {
		return nil, err
	}
	return &Tracer{w: w, now: time.Now}, nil
}

// Emit appends one event, stamping T when unset.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if ev.T.IsZero() {
		ev.T = t.now()
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	line = append(line, '\n')
	t.mu.Lock()
	t.w.Write(line)
	t.mu.Unlock()
}

// Close closes the underlying stream.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Close()
}
