package obs

import (
	"strings"
	"testing"
)

// TestWritePromGolden pins the exposition format byte for byte: family
// ordering (sorted by name), series ordering (sorted by label values),
// label escaping, float formatting, and the histogram's cumulative
// bucket/sum/count block. Scrapers parse this surface — changes here
// are wire-format changes.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_simple_total", "Plain counter.").Add(3)

	v := r.CounterVec("aa_outcomes_total", "Outcomes by site.", "site", "outcome")
	v.With("ram", "masked").Add(2)
	v.With("weird\"site\\\n", "crash").Inc()

	r.Gauge("mm_depth", "Queue depth.").Set(-4)

	h := r.Histogram("hh_latency", "Latency.\nSecond line.", 2.5, 1)
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(9)

	r.GaugeFunc("ff_func", "Lazy gauge.", func() float64 { return 1.5 })

	const want = `# HELP aa_outcomes_total Outcomes by site.
# TYPE aa_outcomes_total counter
aa_outcomes_total{site="ram",outcome="masked"} 2
aa_outcomes_total{site="weird\"site\\\n",outcome="crash"} 1
# HELP ff_func Lazy gauge.
# TYPE ff_func gauge
ff_func 1.5
# HELP hh_latency Latency.\nSecond line.
# TYPE hh_latency histogram
hh_latency_bucket{le="1"} 1
hh_latency_bucket{le="2.5"} 2
hh_latency_bucket{le="+Inf"} 3
hh_latency_sum 11.5
hh_latency_count 3
# HELP mm_depth Queue depth.
# TYPE mm_depth gauge
mm_depth -4
# HELP zz_simple_total Plain counter.
# TYPE zz_simple_total counter
zz_simple_total 3
`

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition drifted from the golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePromNilRegistry: a nil registry writes nothing — the ops
// server can always call WriteProm.
func TestWritePromNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry: err=%v out=%q", err, b.String())
	}
}
