package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Conservative connection timeouts for every HTTP surface the toolset
// serves (the ops endpoints here and the xmrobustd API). The
// read-header timeout caps how long one slow client's header trickle
// can pin a connection goroutine; the idle timeout reaps keep-alive
// connections nobody is using. Neither bounds response writes, so
// long-lived streams (SSE, pprof profiles) are unaffected.
const (
	ReadHeaderTimeout = 10 * time.Second
	IdleTimeout       = 2 * time.Minute
)

// OpsServer is the opt-in operations endpoint every CLI mounts behind
// -ops <addr>: Prometheus metrics, a health probe, a live campaign
// progress snapshot, and the stdlib pprof handlers — the exact surface
// the xmrobustd daemon serves on its own mux via Mount.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Mount registers the ops surface — /metrics, /healthz, /progress and
// the /debug/pprof handlers — on mux, serving o's registry and
// progress tracker. ListenAndServe uses it for the standalone -ops
// server; xmrobustd mounts the same surface on its API mux.
func Mount(mux *http.ServeMux, o *Obs) {
	start := time.Now()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry().WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":     "ok",
			"uptime_sec": time.Since(start).Seconds(),
		})
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(o.Prog().Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ListenAndServe starts the ops server on addr (":9090",
// "127.0.0.1:0") serving o's registry and progress tracker, and
// returns once the listener is bound. Serving runs in a background
// goroutine until Close or Shutdown.
func ListenAndServe(addr string, o *Obs) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	Mount(mux, o)
	s := &OpsServer{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: ReadHeaderTimeout,
		IdleTimeout:       IdleTimeout,
	}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *OpsServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down immediately, closing the listener and
// any open connections mid-response. Signal paths that can afford a
// bounded wait should prefer Shutdown.
func (s *OpsServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops accepting connections and drains in-flight requests,
// returning when they finish or ctx expires (then open connections are
// cut, as Close would) — the same stop-accepting-then-drain semantics
// remote.Server.Shutdown gives workers. A scrape caught mid-response
// by a signal completes instead of seeing a reset connection.
func (s *OpsServer) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
