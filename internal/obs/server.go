package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// OpsServer is the opt-in operations endpoint every CLI mounts behind
// -ops <addr>: Prometheus metrics, a health probe, a live campaign
// progress snapshot, and the stdlib pprof handlers — the exact surface
// the xmrobustd daemon will serve.
type OpsServer struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// ListenAndServe starts the ops server on addr (":9090",
// "127.0.0.1:0") serving o's registry and progress tracker, and
// returns once the listener is bound. Serving runs in a background
// goroutine until Close.
func ListenAndServe(addr string, o *Obs) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &OpsServer{ln: ln, start: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry().WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":     "ok",
			"uptime_sec": time.Since(s.start).Seconds(),
		})
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(o.Prog().Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *OpsServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down, closing the listener and any open
// connections.
func (s *OpsServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
