package obs

// Obs bundles the observability surfaces a campaign threads through the
// stack: the metrics registry, an optional trace-event stream, and the
// live progress tracker. A nil *Obs means "off" — every consumer
// derives nil-safe handles from it and pays one nil check per event.
type Obs struct {
	// Reg collects metrics for /metrics. Never nil on a New()-built Obs.
	Reg *Registry
	// Trace receives campaign/lease events. Nil: the engine creates one
	// next to the checkpoint shards when a shard dir is configured,
	// otherwise tracing is off.
	Trace *Tracer
	// Progress tracks done/total/outcomes for /progress and -progress.
	// Never nil on a New()-built Obs.
	Progress *Campaign
}

// New builds an Obs with a fresh registry and progress tracker (no
// tracer — see Obs.Trace).
func New() *Obs {
	return &Obs{Reg: NewRegistry(), Progress: NewCampaign()}
}

// Registry returns the metrics registry, nil when o is nil — the
// nil-safe accessor instrumented code uses so "obs off" needs no
// conditionals.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Prog returns the progress tracker, nil when o is nil.
func (o *Obs) Prog() *Campaign {
	if o == nil {
		return nil
	}
	return o.Progress
}

// EngineMetrics is the streaming engine's metric set. Built over a nil
// registry it carries nil handles, so every update degrades to one nil
// check.
type EngineMetrics struct {
	// Executed counts finished tests (xm_engine_tests_executed_total).
	Executed *Counter
	// BatchSize reports the resolved lease batch size
	// (xm_engine_batch_size).
	BatchSize *Gauge
	// EncodeNs observes per-record codec encode latency in nanoseconds
	// (xm_engine_encode_ns).
	EncodeNs *Histogram
}

// NewEngineMetrics registers the engine series.
func NewEngineMetrics(r *Registry) *EngineMetrics {
	return &EngineMetrics{
		Executed: r.Counter("xm_engine_tests_executed_total",
			"Tests the campaign engine has completed."),
		BatchSize: r.Gauge("xm_engine_batch_size",
			"Resolved lease batch size of the running campaign."),
		EncodeNs: r.Histogram("xm_engine_encode_ns",
			"Per-record codec encode latency in nanoseconds.",
			250, 500, 1000, 2500, 5000, 10000, 25000, 100000),
	}
}

// LeaseMetrics is the coordinator's metric set; the On* event methods
// are nil-safe so the coordinator holds a nil *LeaseMetrics when obs is
// off.
type LeaseMetrics struct {
	Issued      *Counter
	Completed   *Counter
	Reclaimed   *Counter
	HandedBack  *Counter
	Outstanding *Gauge
}

// NewLeaseMetrics registers the lease series; nil registry gives nil
// (every On* then short-circuits).
func NewLeaseMetrics(r *Registry) *LeaseMetrics {
	if r == nil {
		return nil
	}
	return &LeaseMetrics{
		Issued: r.Counter("xm_lease_issued_total",
			"Leases the coordinator has issued (re-issues included)."),
		Completed: r.Counter("xm_lease_completed_total",
			"Leases completed by their holder."),
		Reclaimed: r.Counter("xm_lease_reclaimed_total",
			"Leases reclaimed after their deadline expired."),
		HandedBack: r.Counter("xm_lease_handed_back_total",
			"Leases cooperatively handed back for re-issue."),
		Outstanding: r.Gauge("xm_lease_outstanding",
			"Leases currently issued and uncompleted."),
	}
}

// OnIssue records a lease issuance.
func (m *LeaseMetrics) OnIssue() {
	if m == nil {
		return
	}
	m.Issued.Inc()
	m.Outstanding.Add(1)
}

// OnComplete records a lease completion.
func (m *LeaseMetrics) OnComplete() {
	if m == nil {
		return
	}
	m.Completed.Inc()
	m.Outstanding.Add(-1)
}

// OnReclaim records a deadline reclaim.
func (m *LeaseMetrics) OnReclaim() {
	if m == nil {
		return
	}
	m.Reclaimed.Inc()
	m.Outstanding.Add(-1)
}

// OnHandBack records a cooperative hand-back.
func (m *LeaseMetrics) OnHandBack() {
	if m == nil {
		return
	}
	m.HandedBack.Inc()
	m.Outstanding.Add(-1)
}

// RemoteMetrics is the remote client's metric set (the coordinating
// side of a remote: target).
type RemoteMetrics struct {
	Dials      *Counter
	DialErrors *Counter
	Retries    *Counter
	Inflight   *Gauge
	WireTx     *Counter
	WireRx     *Counter
}

// NewRemoteMetrics registers the remote-client series. Unlike the
// lease bundle it always returns a non-nil struct (with nil handles on
// a nil registry) because the client updates fields directly.
func NewRemoteMetrics(r *Registry) *RemoteMetrics {
	return &RemoteMetrics{
		Dials: r.CounterVec("xm_remote_dials_total",
			"Worker dial attempts by result.", "result").With("ok"),
		DialErrors: r.CounterVec("xm_remote_dials_total",
			"Worker dial attempts by result.", "result").With("error"),
		Retries: r.Counter("xm_remote_retries_total",
			"Exec attempts retried after a connection failure."),
		Inflight: r.Gauge("xm_remote_inflight",
			"Exec requests currently in flight across worker connections."),
		WireTx: r.CounterVec("xm_remote_wire_bytes_total",
			"Wire bytes moved by the remote client, by direction.", "dir").With("tx"),
		WireRx: r.CounterVec("xm_remote_wire_bytes_total",
			"Wire bytes moved by the remote client, by direction.", "dir").With("rx"),
	}
}

// WorkerMetrics is the worker server's metric set (the serving side of
// the wire protocol).
type WorkerMetrics struct {
	Executed    *Counter
	Connections *Gauge
	WireTx      *Counter
	WireRx      *Counter
}

// NewWorkerMetrics registers the worker-server series (non-nil struct,
// nil handles on a nil registry).
func NewWorkerMetrics(r *Registry) *WorkerMetrics {
	return &WorkerMetrics{
		Executed: r.Counter("xm_worker_tests_executed_total",
			"Tests this worker has executed for remote clients."),
		Connections: r.Gauge("xm_worker_connections",
			"Client connections currently open."),
		WireTx: r.CounterVec("xm_worker_wire_bytes_total",
			"Wire bytes moved by the worker, by direction.", "dir").With("tx"),
		WireRx: r.CounterVec("xm_worker_wire_bytes_total",
			"Wire bytes moved by the worker, by direction.", "dir").With("rx"),
	}
}

// InjectMetrics tallies fault-injection outcomes per site.
type InjectMetrics struct {
	outcomes *CounterVec
}

// NewInjectMetrics registers the injection series; nil registry gives
// nil (OnOutcome then short-circuits).
func NewInjectMetrics(r *Registry) *InjectMetrics {
	if r == nil {
		return nil
	}
	return &InjectMetrics{
		outcomes: r.CounterVec("xm_inject_outcomes_total",
			"Classified fault-injection outcomes by flip site.", "site", "outcome"),
	}
}

// OnOutcome tallies one classified injection.
func (m *InjectMetrics) OnOutcome(site, outcome string) {
	if m == nil {
		return
	}
	m.outcomes.With(site, outcome).Inc()
}
