package target

import (
	"fmt"
	"strings"

	"xmrobust/internal/inject"
	"xmrobust/internal/obs"
	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

func init() {
	Register(InjectName,
		"inject:<base> — SEU bit-flip campaigns: clean + injected legs, outcomes masked/wrong-result/hm-detected/crash/hang",
		func(arg string, cfg Config) (Target, error) {
			return NewInject(arg, cfg)
		})
}

// Inject is the SEU fault-injection composite: every dataset executes
// twice on the wrapped backend — once clean, once with the schedule's bit
// flip armed — and the injected leg's log, tagged with the Injection
// record and its outcome class, is what the campaign records. The
// schedule is a pure function of (seed, dataset), so injected campaigns
// keep the engine's exact-resume and byte-reproducibility invariants.
type Inject struct {
	name  string
	base  Target
	sched inject.Schedule
	// met tallies per-site outcomes (xm_inject_outcomes_total); nil when
	// obs is off.
	met *obs.InjectMetrics
}

// injectSlot is a mutable holder for the composite's current base slot:
// Execute recycles the slot through the base backend between the clean
// and injected legs (each leg must start from power-on state), so the
// holder tracks which slot the engine's Release must hand back.
type injectSlot struct{ s Slot }

// NewInject builds the composite from its base-target spec ("sim",
// "diff:sim,phantom" composes the other way: diff:inject:sim,phantom).
func NewInject(arg string, cfg Config) (*Inject, error) {
	if arg == "" {
		return nil, fmt.Errorf("target: %q wraps a base backend, e.g. %q", InjectName, InjectName+":sim")
	}
	baseName := arg
	if i := strings.IndexByte(arg, ':'); i >= 0 {
		baseName = arg[:i]
	}
	switch baseName {
	case InjectName:
		return nil, fmt.Errorf("target: %q cannot nest another inject target", InjectName)
	case DiffName:
		return nil, fmt.Errorf(
			"target: %q cannot wrap %q — compose the other way round (%s:%s:sim,phantom injects the sim leg of a diff)",
			InjectName, DiffName, DiffName, InjectName)
	}
	base, err := New(arg, cfg)
	if err != nil {
		return nil, componentErr(InjectName+":"+arg, arg, err)
	}
	sched, err := inject.NewSchedule(cfg.Inject)
	if err != nil {
		return nil, err
	}
	return &Inject{
		name:  InjectName + ":" + base.Name(),
		base:  base,
		sched: sched,
		met:   obs.NewInjectMetrics(cfg.Obs.Registry()),
	}, nil
}

// Name returns the canonical composite spec ("inject:sim").
func (t *Inject) Name() string { return t.name }

// InjectSignature returns the schedule's identity; campaign checkpoints
// record it and refuse to resume under a different one.
func (t *Inject) InjectSignature() string { return t.sched.Signature() }

// Provision provisions the wrapped backend.
func (t *Inject) Provision(workers int) error { return t.base.Provision(workers) }

// Acquire reserves one base slot (a second is never held: the two legs
// of an injected test recycle the one slot through the base pool).
func (t *Inject) Acquire() Slot { return &injectSlot{s: t.base.Acquire()} }

// Release returns the currently held base slot.
func (t *Inject) Release(s Slot) {
	if is, _ := s.(*injectSlot); is != nil {
		t.base.Release(is.s)
	}
}

// PoolStats forwards the wrapped backend's machine-pool counters.
func (t *Inject) PoolStats() sparc.PoolStats {
	if ps, ok := t.base.(interface{ PoolStats() sparc.PoolStats }); ok {
		return ps.PoolStats()
	}
	return sparc.PoolStats{}
}

// Execute runs the dataset clean, then under the scheduled flip, and
// returns the injected leg's log carrying the Injection record. Tests
// the schedule leaves clean run once and pass through. Between the two
// legs the slot is recycled through the base backend — the injected leg
// must start from power-on state, and the base pool's reset-and-verify
// cycle is the established way to get there.
func (t *Inject) Execute(slot Slot, ds testgen.Dataset, spec RunSpec) Result {
	is, _ := slot.(*injectSlot)
	plan := t.sched.Plan(ds)
	if plan == nil {
		res := t.base.Execute(is.s, ds, spec)
		res.Target = t.name
		return res
	}
	ref := t.base.Execute(is.s, ds, spec)
	// The injected leg must start from power-on state. Slots with the
	// snapshot capability rewind in place — the copy-on-write analogue
	// of the pool round-trip, producing exactly the same power-on state;
	// anything else (or a slot that refuses the rewind) recycles through
	// the base backend as before.
	if ss, ok := is.s.(SnapshotSlot); !ok || ss.Restore() != nil {
		t.base.Release(is.s)
		is.s = t.base.Acquire()
	}
	ispec := spec
	ispec.Inject = plan
	res := t.base.Execute(is.s, ds, ispec)
	res.Target = t.name
	rec := plan.Injection
	if rec.Applied {
		rec.Outcome, rec.Delta = injectionOutcome(ref, res)
		t.met.OnOutcome(rec.Site, rec.Outcome)
	}
	res.Injection = &rec
	return res
}

// injectionOutcome classifies an applied flip by comparing the injected
// leg's observables to the clean reference leg's. Severity wins:
// anything that killed the system is a crash even if the health monitor
// also logged on the way down, an HM report outranks a hang (the
// monitor halting the faulty partition is FDIR doing its job), and any
// remaining disagreement without an error report is the silent
// wrong-result class. No disagreement at all means the architecture
// masked the upset.
func injectionOutcome(ref, inj Result) (string, string) {
	d := Compare(ref, inj)
	delta := ""
	if d != nil {
		delta = d.String()
	}
	switch {
	case inj.SimCrashed && !ref.SimCrashed,
		inj.KernelState == xm.KStateHalted && ref.KernelState != xm.KStateHalted,
		inj.ColdResets+inj.WarmResets > ref.ColdResets+ref.WarmResets,
		inj.RunErr != ref.RunErr:
		return inject.OutcomeCrash, delta
	case len(inj.HMEvents) > len(ref.HMEvents):
		return inject.OutcomeDetected, delta
	case ref.Returned() && !inj.Returned():
		return inject.OutcomeHang, delta
	case d != nil:
		return inject.OutcomeWrong, delta
	default:
		return inject.OutcomeMasked, delta
	}
}
