// Package target is the backend-agnostic execution layer of the toolset:
// the paper's methodology (generate → execute on a target → classify the
// logs) is target-shaped, and this package owns the "execute on a target"
// step behind one pluggable interface.
//
// A Target turns one generated dataset into one execution log (Result).
// Four backends ship built in:
//
//   - sim:     the simulated LEON3 machine running the XtratuM-like
//     kernel on the EagleEye testbed — the paper's execution environment
//     and the campaign default. Machines are recycled through a
//     reset-and-verify pool sized by Provision.
//   - phantom: a fast analytical model of the kernel as its reference
//     manual documents it — no simulator is booted; outcomes are
//     predicted from the dictionary's validity annotations and the ABI's
//     documented state semantics.
//   - diff:a,b — a composite that executes every dataset on two backends
//     and records their disagreement (return codes, HM events, final
//     states) in Result.Divergence. diff:sim,phantom is the
//     model-vs-simulation oracle: a divergence is behaviour the manual
//     does not predict, a finding class the paper could not observe.
//   - inject:<base> — a composite that runs every dataset twice on the
//     wrapped backend, once clean and once under a scheduled SEU bit
//     flip (internal/inject), and classifies the upset's outcome against
//     the clean leg (masked / wrong-result / hm-detected / crash /
//     hang) in Result.Injection.
//
// The registry mirrors testgen's strategy registry: Register adds a
// backend, New resolves a "name" or "name:arg" spec, and Inventory is the
// discovery surface behind xmfuzz -list.
package target

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/inject"
	"xmrobust/internal/obs"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// Built-in target names.
const (
	SimName     = "sim"
	PhantomName = "phantom"
	DiffName    = "diff"
	InjectName  = "inject"
)

// Slot is one execution slot of a provisioned target: whatever state the
// backend reserves per concurrent execution (the sim target hands out
// pooled machines; the phantom model needs nothing). Slots move between
// Acquire, Execute and Release opaquely.
type Slot any

// RunSpec carries the per-run execution parameters — the knobs that shape
// what one test's log looks like, shared by every backend.
type RunSpec struct {
	// Faults selects the kernel version under test.
	Faults xm.FaultSet
	// MAFs is the number of major frames each test runs for.
	MAFs int
	// Stress pre-loads the system before injection (paper §V): one
	// warm-up frame with saturated IPC queues.
	Stress bool
	// Header and Dict are the campaign's spec and value dictionary.
	Header *apispec.Header
	Dict   *dict.Dictionary
	// Coverage collects kernel edge coverage per test on backends that
	// support it (Result.Cover stays nil elsewhere).
	Coverage bool
	// Inject is the armed SEU plan of one injected execution, set by the
	// inject:* composite for its injected leg (nil everywhere else — the
	// only cost of the no-injection path is that nil check, see
	// BenchmarkInjectOverhead). Machine-backed targets apply it at their
	// phase anchors; analytical backends have no machine state to upset
	// and ignore it.
	Inject *inject.Plan
}

// SnapshotSlot is an optional capability of slots whose backing state
// can be checkpointed: Snapshot captures the slot's current state as
// its restore point, and Restore rewinds the slot to the last captured
// point — the power-on baseline when none was captured. Composites use
// Restore to recycle a slot between execution legs without a
// Release/Acquire round-trip through the backend's pool; the restored
// state is exactly what a round-trip would have produced.
type SnapshotSlot interface {
	Snapshot() error
	Restore() error
}

// BatchExecutor is an optional capability of targets that can execute a
// contiguous lease of tests while holding one slot, amortising the
// per-test recycle-and-verify baseline across the lease. Each dataset
// executes with exactly Execute's semantics: the results are
// byte-identical to a loop of Execute calls with pool round-trips in
// between — only the verification and allocation overhead amortises,
// never what a test observes.
type BatchExecutor interface {
	ExecuteBatch(slot Slot, batch []testgen.Dataset, spec RunSpec) []Result
}

// Target is one execution backend. Execute must be safe for concurrent
// use across distinct slots — the campaign worker pool calls it from
// several goroutines, each holding its own acquired slot.
type Target interface {
	// Name returns the canonical target spec ("sim", "phantom",
	// "diff:sim,phantom").
	Name() string
	// Provision prepares the backend for a campaign executing with the
	// given worker parallelism (the sim target sizes its machine pool
	// here). It is called once, before the first Acquire.
	Provision(workers int) error
	// Acquire reserves one execution slot; Release returns it.
	Acquire() Slot
	Release(Slot)
	// Execute runs one dataset in the given slot and returns its
	// execution log.
	Execute(slot Slot, ds testgen.Dataset, spec RunSpec) Result
}

// Config carries backend construction options that are not per-run
// (RunSpec) and not per-campaign sizing (Provision).
type Config struct {
	// FreshMachines disables machine pooling on backends that pool:
	// every test executes on a freshly allocated simulated target.
	FreshMachines bool
	// PoolStrict makes the machine pool scan every byte of every
	// recycled machine. Slow; for isolation tests.
	PoolStrict bool
	// LegacyPool selects the reset-and-verify MachinePool instead of the
	// default copy-on-write SnapshotPool on backends that pool — the A/B
	// switch behind the performance trajectory (and a fallback should
	// the snapshot recycler ever be in doubt).
	LegacyPool bool
	// Inject parameterises the SEU schedule of inject:* targets (rate,
	// sites, seed); other backends ignore it.
	Inject inject.Params
	// Obs, when non-nil, lets a backend register its metrics (pool
	// counters, injection outcomes, divergences, remote wire traffic)
	// with the campaign's observability spine. Nil — the default — costs
	// instrumented backends one nil check per event.
	Obs *obs.Obs
	// Ctx, when non-nil, is the campaign's cancellation context. Local
	// backends finish the test in hand regardless (a single test is
	// short); the remote client uses it to abandon in-flight leases
	// instead of waiting out a slow worker, returning Aborted results the
	// engine discards. Nil: executions never abort.
	Ctx context.Context
}

// Factory builds a target from the text after ":" in its spec ("" when
// absent).
type Factory func(arg string, cfg Config) (Target, error)

// Info describes one registered backend for discovery surfaces.
type Info struct {
	Name string
	Desc string
}

type entry struct {
	desc    string
	factory Factory
}

// registry is the backend registry, mirroring testgen's strategy
// registry.
var registry = map[string]entry{}

// Register adds (or replaces) an execution backend under the given name,
// with a one-line description for the discovery surfaces.
func Register(name, desc string, f Factory) {
	registry[name] = entry{desc: desc, factory: f}
}

// New resolves a target spec ("name" or "name:arg", "" defaulting to
// sim) against the registry.
func New(spec string, cfg Config) (Target, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	if name == "" {
		name = SimName
	}
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("target: unknown target %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return e.factory(arg, cfg)
}

// componentErr decorates a sub-target resolution failure of a composite
// spec ("diff:sim,bogus", "inject:bogus") with the component that failed
// and the composite it sat in — the wrapped unknown-target error already
// lists the registry inventory, so the user sees the bad name, the full
// menu, and where the bad name appeared.
func componentErr(composite, component string, err error) error {
	return fmt.Errorf("%w (resolving component %q of %q)", err, component, composite)
}

// Names returns the registered backend names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Inventory returns every registered backend with its description,
// sorted by name — the discovery surface behind xmfuzz -list.
func Inventory() []Info {
	out := make([]Info, 0, len(registry))
	for n, e := range registry {
		out = append(out, Info{Name: n, Desc: e.desc})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}
