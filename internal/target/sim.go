package target

import (
	"fmt"
	"sync"

	"xmrobust/internal/cover"
	"xmrobust/internal/dict"
	"xmrobust/internal/eagleeye"
	"xmrobust/internal/obs"
	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

func init() {
	Register(SimName,
		"simulated LEON3 + XtratuM-like kernel on the EagleEye testbed (pooled, the default)",
		func(arg string, cfg Config) (Target, error) {
			if arg != "" {
				return nil, fmt.Errorf("target: %q takes no argument", SimName)
			}
			return NewSim(cfg), nil
		})
}

// Sim is the simulation backend: every test packs a fresh testbed onto a
// simulated LEON3 machine (recycled through a pool unless
// Config.FreshMachines — the copy-on-write SnapshotPool by default, the
// reset-and-verify MachinePool under Config.LegacyPool) and runs the TSP
// system for the selected number of cyclic schedules — the paper's
// execution environment.
type Sim struct {
	cfg      Config
	pool     sparc.Pool
	baseline *sparc.Snapshot

	// mRestores counts in-slot snapshot restores (batch rewinds and
	// composite-leg recycles); nil when obs is off.
	mRestores *obs.Counter

	// kernels parks each pooled machine's recycled testbed kernel between
	// batch leases, so system construction amortises across a campaign
	// rather than per lease. A parked kernel is always dirty — ExecuteBatch
	// recycles it before first use, the same in-place reset it applies
	// between the lease's own tests.
	mu      sync.Mutex
	kernels map[*sparc.Machine]*xm.Kernel
}

// NewSim builds the simulation backend.
func NewSim(cfg Config) *Sim {
	s := &Sim{cfg: cfg, baseline: sparc.PowerOnSnapshot(sparc.DefaultConfig())}
	s.mRestores = cfg.Obs.Registry().Counter("xm_sim_slot_restores_total",
		"In-slot snapshot restores (batch rewinds and composite-leg recycles).")
	return s
}

// Name returns "sim".
func (s *Sim) Name() string { return SimName }

// Provision sizes the machine pool to the campaign's worker parallelism.
// It is idempotent: a target shared across engine runs keeps its warm
// pool (and parked kernels) instead of dropping them on every campaign.
func (s *Sim) Provision(workers int) error {
	if s.cfg.FreshMachines {
		return nil
	}
	if s.pool != nil {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if s.cfg.LegacyPool {
		s.pool = sparc.NewMachinePool(sparc.DefaultConfig(), workers)
	} else {
		s.pool = sparc.NewSnapshotPool(sparc.DefaultConfig(), workers)
	}
	s.pool.SetStrict(s.cfg.PoolStrict)
	// Lazy collectors over the pool's own atomic counters: the pool
	// hot path pays nothing, the values materialise at scrape time.
	// Registry methods nil-guard themselves, so no check here.
	r := s.cfg.Obs.Registry()
	pool := s.pool
	r.CounterFunc("xm_pool_allocated_total",
		"Machines the pool built from scratch.",
		func() float64 { return float64(pool.Stats().Allocated) })
	r.CounterFunc("xm_pool_reused_total",
		"Acquires served by recycling a pooled machine (snapshot restores on the CoW pool).",
		func() float64 { return float64(pool.Stats().Reused) })
	r.CounterFunc("xm_pool_discarded_total",
		"Machines the pool refused to recycle (crashes, failed verification).",
		func() float64 { return float64(pool.Stats().Discarded) })
	r.CounterFunc("xm_pool_steals_total",
		"Acquires served from a free-list stripe other than the caller's home.",
		func() float64 { return float64(pool.Stats().Steals) })
	return nil
}

// simSlot is the sim backend's execution slot: the leased machine (nil
// when pooling is off — Execute then allocates fresh per test) and the
// restore point backing the SnapshotSlot capability.
type simSlot struct {
	owner *Sim
	m     *sparc.Machine
	snap  *sparc.Snapshot
}

// Machine exposes the slot's leased machine (nil when pooling is off).
func (sl *simSlot) Machine() *sparc.Machine { return sl.m }

// Snapshot captures the slot's current machine state as its restore
// point.
func (sl *simSlot) Snapshot() error {
	if sl.m == nil {
		return fmt.Errorf("target: slot holds no machine to snapshot")
	}
	sl.snap = sl.m.Snapshot()
	return nil
}

// Restore rewinds the slot's machine to the last captured restore point
// — the power-on baseline when none was captured. A crashed machine
// rewinds like any other. Power-on restores additionally pass the reset
// invariant check, so the restored state is exactly what a pool
// round-trip would have certified; a captured mid-run state is restored
// verbatim (its clock, console and devices are part of the capture, so
// the power-on invariants deliberately do not apply).
func (sl *simSlot) Restore() error {
	if sl.m == nil {
		return fmt.Errorf("target: slot holds no machine to restore")
	}
	sl.owner.mRestores.Inc()
	if sl.snap != nil {
		return sl.m.RestoreSnapshot(sl.snap)
	}
	if err := sl.m.RestoreSnapshot(sl.owner.baseline); err != nil {
		return err
	}
	return sl.m.VerifyReset()
}

// Acquire reserves an execution slot (its machine is nil when pooling
// is off — Execute then allocates a fresh one per test).
func (s *Sim) Acquire() Slot {
	sl := &simSlot{owner: s}
	if s.pool != nil {
		sl.m = s.pool.Get()
	}
	return sl
}

// Release returns a slot's machine to the pool.
func (s *Sim) Release(slot Slot) {
	if sl, _ := slot.(*simSlot); sl != nil && sl.m != nil && s.pool != nil {
		s.pool.Put(sl.m)
		sl.m = nil
	}
}

// takeKernel claims the kernel parked for m, removing it from the cache.
// It returns nil when no kernel is parked (a fresh or replaced machine).
func (s *Sim) takeKernel(m *sparc.Machine) *xm.Kernel {
	if m == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.kernels[m]
	if k != nil {
		delete(s.kernels, m)
	}
	return k
}

// parkKernel caches m's kernel for the machine's next lease. Machines the
// pool has discarded leave dead entries behind; the cap bounds that drift
// by restarting the cache, which only costs the next few leases a rebuild.
func (s *Sim) parkKernel(m *sparc.Machine, k *xm.Kernel) {
	if m == nil || k == nil {
		return
	}
	s.mu.Lock()
	if len(s.kernels) >= 32 {
		s.kernels = nil
	}
	if s.kernels == nil {
		s.kernels = make(map[*sparc.Machine]*xm.Kernel)
	}
	s.kernels[m] = k
	s.mu.Unlock()
}

// PoolStats reports the machine-pool counters (zero when pooling is off).
func (s *Sim) PoolStats() sparc.PoolStats {
	if s.pool == nil {
		return sparc.PoolStats{}
	}
	return s.pool.Stats()
}

// machineOf extracts the leased machine from a slot: the sim backend's
// own slot struct, or a bare machine handed in directly by embedders.
func machineOf(slot Slot) *sparc.Machine {
	switch v := slot.(type) {
	case *simSlot:
		return v.m
	case *sparc.Machine:
		return v
	}
	return nil
}

// ExecuteBatch runs a contiguous lease of datasets while holding one
// slot. Between tests the machine rewinds to the power-on baseline
// in-slot — the copy-on-write analogue of the pool's Put/Get round-trip
// — and the testbed kernel is recycled in place rather than rebuilt, so
// both the per-test verification baseline and the system construction
// cost amortise across the lease. Every test still boots a fresh
// incarnation from power-on state: results are byte-identical to a loop
// of Execute calls. A machine the in-slot rewind cannot certify is
// replaced through the pool, exactly as a round-trip would have
// replaced it, and the recycled kernel is re-pointed at the
// replacement.
func (s *Sim) ExecuteBatch(slot Slot, batch []testgen.Dataset, spec RunSpec) []Result {
	out := make([]Result, len(batch))
	sl, _ := slot.(*simSlot)
	if sl == nil || sl.m == nil || s.pool == nil {
		// No leased machine to rewind (pooling off, or a foreign slot):
		// fall back to the single-test path per dataset.
		for i, ds := range batch {
			out[i] = s.Execute(slot, ds, spec)
		}
		return out
	}
	k := s.takeKernel(sl.m) // parked dirty: recycled below before use
	var opts []xm.Option    // rebuilt only when the machine or sink changes
	for i, ds := range batch {
		if i > 0 {
			sl.snap = nil
			if sl.Restore() != nil {
				// Rewind refused (layout drift, invariant failure):
				// replace the machine through the pool's discard path.
				s.pool.Put(sl.m)
				sl.m = s.pool.Get()
				opts = nil
				if k == nil {
					k = s.takeKernel(sl.m)
				}
			}
		}
		var cov *cover.Map
		if spec.Coverage {
			cov = &cover.Map{}
			opts = nil // the sink is per test
		}
		if opts == nil {
			opts = s.sysOptions(sl.m, spec, cov)
		}
		if k == nil {
			var err error
			if k, err = eagleeye.NewSystem(opts...); err != nil {
				out[i] = Result{Dataset: ds, TestPartition: eagleeye.FDIR, Target: SimName, RunErr: err.Error()}
				continue
			}
		} else {
			k.Recycle(opts...)
			if err := eagleeye.AttachOBSW(k); err != nil {
				out[i] = Result{Dataset: ds, TestPartition: eagleeye.FDIR, Target: SimName, RunErr: err.Error()}
				k = nil
				continue
			}
		}
		out[i] = s.runOn(k, cov, ds, spec)
	}
	s.parkKernel(sl.m, k)
	return out
}

// sysOptions assembles the construction (or recycle) options for one
// test: the campaign's fault set, the slot's machine, and the per-test
// coverage sink when coverage is on.
func (s *Sim) sysOptions(m *sparc.Machine, spec RunSpec, cov *cover.Map) []xm.Option {
	opts := make([]xm.Option, 0, 3)
	opts = append(opts, xm.WithFaults(spec.Faults))
	if m != nil {
		opts = append(opts, xm.WithMachine(m))
	}
	if cov != nil {
		opts = append(opts, xm.WithCoverage(cov))
	}
	return opts
}

// layoutFor builds the symbolic-value resolution layout of the EagleEye
// test partition.
func layoutFor(k *xm.Kernel) (dict.Layout, error) {
	data, ok := k.PartitionDataArea(eagleeye.FDIR)
	if !ok {
		return dict.Layout{}, fmt.Errorf("target: test partition has no data area")
	}
	other, ok := k.PartitionDataArea(eagleeye.Platform)
	if !ok {
		return dict.Layout{}, fmt.Errorf("target: no other-partition area")
	}
	mc := k.Machine().Config()
	return dict.Layout{
		DataArea:  data,
		OtherArea: other,
		Kernel:    mc.RAMBase, // the hypervisor image sits at the RAM base
		ROM:       mc.ROMBase + 0x100,
		IO:        mc.IOBase,
	}, nil
}

// testProg is the test partition program: one fault placeholder invoked
// once per scheduling slot (and hence at least once per major frame).
type testProg struct {
	nr   xm.Nr
	args []uint64

	invocations int
	returns     []xm.RetCode
}

func (p *testProg) Boot(env xm.Env) {}

func (p *testProg) Step(env xm.Env) bool {
	p.invocations++
	ret := env.Hypercall(p.nr, p.args...)
	p.returns = append(p.returns, ret)
	return false
}

// Execute runs one dataset against the testbed: boot, drive the system
// into the dataset's phantom state (when it names one — §V extension),
// arm the fault placeholder in the FDIR partition, run the observation
// frames and harvest the log. The machine in the slot must be in its
// power-on state; the reset-and-verify pool guarantees that.
func (s *Sim) Execute(slot Slot, ds testgen.Dataset, spec RunSpec) Result {
	var cov *cover.Map
	if spec.Coverage {
		cov = &cover.Map{}
	}
	k, err := eagleeye.NewSystem(s.sysOptions(machineOf(slot), spec, cov)...)
	if err != nil {
		return Result{Dataset: ds, TestPartition: eagleeye.FDIR, Target: SimName, RunErr: err.Error()}
	}
	return s.runOn(k, cov, ds, spec)
}

// runOn drives one dataset on an already-constructed (or recycled)
// testbed system: the kernel must be freshly built — no frames run, the
// machine at power-on — with the OBSW attached and the right fault set
// and coverage sink already wired in.
func (s *Sim) runOn(k *xm.Kernel, cov *cover.Map, ds testgen.Dataset, spec RunSpec) Result {
	res := Result{Dataset: ds, TestPartition: eagleeye.FDIR, Target: SimName, Cover: cov}

	hc, ok := xm.LookupName(ds.Func.Name)
	if !ok {
		res.RunErr = fmt.Sprintf("target: hypercall %q not in kernel ABI", ds.Func.Name)
		return res
	}
	st, err := stateFor(ds)
	if err != nil {
		res.RunErr = err.Error()
		return res
	}
	layout, err := layoutFor(k)
	if err != nil {
		res.RunErr = err.Error()
		return res
	}
	resolved := make([]dict.Resolved, 0, len(ds.Values))
	args := make([]uint64, 0, len(ds.Values))
	for _, v := range ds.Values {
		r, err := layout.Resolve(v)
		if err != nil {
			res.RunErr = err.Error()
			return res
		}
		resolved = append(resolved, r)
		args = append(args, r.Bits)
	}
	res.Resolved = resolved

	if st != nil {
		if st.setup != nil {
			if err := st.setup(k); err != nil {
				res.RunErr = err.Error()
				return res
			}
		}
		if st.warmupFrames > 0 {
			if err := k.RunMajorFrames(st.warmupFrames); err != nil {
				res.RunErr = fmt.Sprintf("target: phantom-state warm-up: %v", err)
				return res
			}
		}
	}
	if spec.Inject != nil {
		spec.Inject.PreArm(k, eagleeye.FDIR)
	}

	prog := &testProg{nr: hc.Nr, args: args}
	if err := k.AttachProgram(eagleeye.FDIR, prog); err != nil {
		res.RunErr = err.Error()
		return res
	}
	if spec.Stress {
		preloadStress(k)
	}

	var runErr error
	for i := 0; i < spec.MAFs; i++ {
		if spec.Inject != nil {
			spec.Inject.BeforeFrame(i, spec.MAFs, k, eagleeye.FDIR)
		}
		if runErr = k.RunMajorFrames(1); runErr != nil {
			break
		}
	}
	if spec.Inject != nil {
		spec.Inject.PostRun(k, eagleeye.FDIR, spec.MAFs)
	}
	switch runErr {
	case nil, xm.ErrHalted:
		// Kernel halt is an observed outcome, not a harness error.
	default:
		if _, isCrash := runErr.(sparc.ErrCrashed); !isCrash {
			res.RunErr = runErr.Error()
		}
	}

	res.Invocations = prog.invocations
	res.Returns = prog.returns
	kst := k.Status()
	res.KernelState = kst.State
	res.KernelHalt = kst.HaltDetail
	res.ColdResets = kst.ColdResets
	res.WarmResets = kst.WarmResets
	res.HMEvents = k.HMEntries()
	if ps, ok := k.PartitionStatus(eagleeye.FDIR); ok {
		res.PartState = ps.State
		res.PartDetail = ps.HaltDetail
	}
	res.SimCrashed, res.CrashReason = k.Machine().Crashed()
	return res
}

// stateFor resolves a dataset's named phantom state ("" means nominal —
// no state phase).
func stateFor(ds testgen.Dataset) (*PhantomState, error) {
	if ds.State == "" || ds.State == "nominal" {
		return nil, nil
	}
	for _, st := range PhantomStates() {
		if st.Name == ds.State {
			return &st, nil
		}
	}
	return nil, fmt.Errorf("target: unknown phantom state %q", ds.State)
}

// preloadStress drives the testbed into a loaded state before the test
// call fires: several frames of OBSW traffic with nobody draining the
// downlink queue, leaving IPC buffers full.
func preloadStress(k *xm.Kernel) {
	// The FDIR slot already hosts the test program (which injects during
	// the warm-up too — its first invocations run under stress); what
	// matters is that the producers have saturated the channels.
	_ = k.RunMajorFrames(1)
}
