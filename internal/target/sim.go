package target

import (
	"fmt"

	"xmrobust/internal/cover"
	"xmrobust/internal/dict"
	"xmrobust/internal/eagleeye"
	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

func init() {
	Register(SimName,
		"simulated LEON3 + XtratuM-like kernel on the EagleEye testbed (pooled, the default)",
		func(arg string, cfg Config) (Target, error) {
			if arg != "" {
				return nil, fmt.Errorf("target: %q takes no argument", SimName)
			}
			return NewSim(cfg), nil
		})
}

// Sim is the simulation backend: every test packs a fresh testbed onto a
// simulated LEON3 machine (recycled through a reset-and-verify pool
// unless Config.FreshMachines) and runs the TSP system for the selected
// number of cyclic schedules — the paper's execution environment.
type Sim struct {
	cfg  Config
	pool *sparc.MachinePool
}

// NewSim builds the simulation backend.
func NewSim(cfg Config) *Sim { return &Sim{cfg: cfg} }

// Name returns "sim".
func (s *Sim) Name() string { return SimName }

// Provision sizes the machine pool to the campaign's worker parallelism.
func (s *Sim) Provision(workers int) error {
	if s.cfg.FreshMachines {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	s.pool = sparc.NewMachinePool(sparc.DefaultConfig(), workers)
	s.pool.SetStrict(s.cfg.PoolStrict)
	return nil
}

// Acquire reserves a pooled machine (nil when pooling is off — Execute
// then allocates a fresh one).
func (s *Sim) Acquire() Slot {
	if s.pool == nil {
		return (*sparc.Machine)(nil)
	}
	return s.pool.Get()
}

// Release returns a pooled machine.
func (s *Sim) Release(slot Slot) {
	if m, _ := slot.(*sparc.Machine); m != nil && s.pool != nil {
		s.pool.Put(m)
	}
}

// PoolStats reports the machine-pool counters (zero when pooling is off).
func (s *Sim) PoolStats() sparc.PoolStats {
	if s.pool == nil {
		return sparc.PoolStats{}
	}
	return s.pool.Stats()
}

// layoutFor builds the symbolic-value resolution layout of the EagleEye
// test partition.
func layoutFor(k *xm.Kernel) (dict.Layout, error) {
	data, ok := k.PartitionDataArea(eagleeye.FDIR)
	if !ok {
		return dict.Layout{}, fmt.Errorf("target: test partition has no data area")
	}
	other, ok := k.PartitionDataArea(eagleeye.Platform)
	if !ok {
		return dict.Layout{}, fmt.Errorf("target: no other-partition area")
	}
	mc := k.Machine().Config()
	return dict.Layout{
		DataArea:  data,
		OtherArea: other,
		Kernel:    mc.RAMBase, // the hypervisor image sits at the RAM base
		ROM:       mc.ROMBase + 0x100,
		IO:        mc.IOBase,
	}, nil
}

// testProg is the test partition program: one fault placeholder invoked
// once per scheduling slot (and hence at least once per major frame).
type testProg struct {
	nr   xm.Nr
	args []uint64

	invocations int
	returns     []xm.RetCode
}

func (p *testProg) Boot(env xm.Env) {}

func (p *testProg) Step(env xm.Env) bool {
	p.invocations++
	ret := env.Hypercall(p.nr, p.args...)
	p.returns = append(p.returns, ret)
	return false
}

// Execute runs one dataset against the testbed: boot, drive the system
// into the dataset's phantom state (when it names one — §V extension),
// arm the fault placeholder in the FDIR partition, run the observation
// frames and harvest the log. The machine in the slot must be in its
// power-on state; the reset-and-verify pool guarantees that.
func (s *Sim) Execute(slot Slot, ds testgen.Dataset, spec RunSpec) Result {
	res := Result{Dataset: ds, TestPartition: eagleeye.FDIR, Target: SimName}

	hc, ok := xm.LookupName(ds.Func.Name)
	if !ok {
		res.RunErr = fmt.Sprintf("target: hypercall %q not in kernel ABI", ds.Func.Name)
		return res
	}
	st, err := stateFor(ds)
	if err != nil {
		res.RunErr = err.Error()
		return res
	}
	sysOpts := []xm.Option{xm.WithFaults(spec.Faults)}
	if m, _ := slot.(*sparc.Machine); m != nil {
		sysOpts = append(sysOpts, xm.WithMachine(m))
	}
	if spec.Coverage {
		res.Cover = &cover.Map{}
		sysOpts = append(sysOpts, xm.WithCoverage(res.Cover))
	}
	k, err := eagleeye.NewSystem(sysOpts...)
	if err != nil {
		res.RunErr = err.Error()
		return res
	}
	layout, err := layoutFor(k)
	if err != nil {
		res.RunErr = err.Error()
		return res
	}
	resolved := make([]dict.Resolved, 0, len(ds.Values))
	args := make([]uint64, 0, len(ds.Values))
	for _, v := range ds.Values {
		r, err := layout.Resolve(v)
		if err != nil {
			res.RunErr = err.Error()
			return res
		}
		resolved = append(resolved, r)
		args = append(args, r.Bits)
	}
	res.Resolved = resolved

	if st != nil {
		if st.setup != nil {
			if err := st.setup(k); err != nil {
				res.RunErr = err.Error()
				return res
			}
		}
		if st.warmupFrames > 0 {
			if err := k.RunMajorFrames(st.warmupFrames); err != nil {
				res.RunErr = fmt.Sprintf("target: phantom-state warm-up: %v", err)
				return res
			}
		}
	}
	if spec.Inject != nil {
		spec.Inject.PreArm(k, eagleeye.FDIR)
	}

	prog := &testProg{nr: hc.Nr, args: args}
	if err := k.AttachProgram(eagleeye.FDIR, prog); err != nil {
		res.RunErr = err.Error()
		return res
	}
	if spec.Stress {
		preloadStress(k)
	}

	var runErr error
	for i := 0; i < spec.MAFs; i++ {
		if spec.Inject != nil {
			spec.Inject.BeforeFrame(i, spec.MAFs, k, eagleeye.FDIR)
		}
		if runErr = k.RunMajorFrames(1); runErr != nil {
			break
		}
	}
	if spec.Inject != nil {
		spec.Inject.PostRun(k, eagleeye.FDIR, spec.MAFs)
	}
	switch runErr {
	case nil, xm.ErrHalted:
		// Kernel halt is an observed outcome, not a harness error.
	default:
		if _, isCrash := runErr.(sparc.ErrCrashed); !isCrash {
			res.RunErr = runErr.Error()
		}
	}

	res.Invocations = prog.invocations
	res.Returns = prog.returns
	kst := k.Status()
	res.KernelState = kst.State
	res.KernelHalt = kst.HaltDetail
	res.ColdResets = kst.ColdResets
	res.WarmResets = kst.WarmResets
	res.HMEvents = k.HMEntries()
	if ps, ok := k.PartitionStatus(eagleeye.FDIR); ok {
		res.PartState = ps.State
		res.PartDetail = ps.HaltDetail
	}
	res.SimCrashed, res.CrashReason = k.Machine().Crashed()
	return res
}

// stateFor resolves a dataset's named phantom state ("" means nominal —
// no state phase).
func stateFor(ds testgen.Dataset) (*PhantomState, error) {
	if ds.State == "" || ds.State == "nominal" {
		return nil, nil
	}
	for _, st := range PhantomStates() {
		if st.Name == ds.State {
			return &st, nil
		}
	}
	return nil, fmt.Errorf("target: unknown phantom state %q", ds.State)
}

// preloadStress drives the testbed into a loaded state before the test
// call fires: several frames of OBSW traffic with nobody draining the
// downlink queue, leaving IPC buffers full.
func preloadStress(k *xm.Kernel) {
	// The FDIR slot already hosts the test program (which injects during
	// the warm-up too — its first invocations run under stress); what
	// matters is that the producers have saturated the channels.
	_ = k.RunMajorFrames(1)
}
