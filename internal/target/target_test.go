package target

import (
	"strings"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// spec returns the default run parameters at one major frame.
func spec1() RunSpec {
	return RunSpec{MAFs: 1, Header: apispec.Default(), Dict: dict.Builtin()}
}

// execute provisions a one-worker target and runs one dataset.
func execute(t *testing.T, tgt Target, ds testgen.Dataset, rs RunSpec) Result {
	t.Helper()
	if err := tgt.Provision(1); err != nil {
		t.Fatal(err)
	}
	slot := tgt.Acquire()
	defer tgt.Release(slot)
	return tgt.Execute(slot, ds, rs)
}

// dataset builds one dataset for fn out of the default matrices.
func dataset(t *testing.T, fn string, rank int64) testgen.Dataset {
	t.Helper()
	h := apispec.Default()
	f, ok := h.Function(fn)
	if !ok {
		t.Fatalf("no hypercall %q", fn)
	}
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	return m.Datasets()[rank]
}

func TestRegistryResolvesBuiltins(t *testing.T) {
	for _, spec := range []string{"", "sim", "phantom", "diff:sim,phantom"} {
		tgt, err := New(spec, Config{})
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		want := spec
		if spec == "" {
			want = SimName
		}
		if tgt.Name() != want {
			t.Errorf("New(%q).Name() = %q, want %q", spec, tgt.Name(), want)
		}
	}
}

func TestRegistryRejectsUnknownAndMalformed(t *testing.T) {
	cases := []string{"tsim", "diff:", "diff:sim", "diff:sim,phantom,sim", "diff:sim,diff:sim,phantom", "sim:x", "phantom:x"}
	for _, spec := range cases {
		if _, err := New(spec, Config{}); err == nil {
			t.Errorf("New(%q) accepted", spec)
		}
	}
}

func TestInventoryListsBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{SimName, PhantomName, DiffName} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("registry lacks %q (have %v)", want, names)
		}
	}
	for _, info := range Inventory() {
		if info.Desc == "" {
			t.Errorf("target %q has no description", info.Name)
		}
	}
}

func TestSimExecutesOrdinaryDataset(t *testing.T) {
	res := execute(t, NewSim(Config{}), dataset(t, "XM_get_time", 0), spec1())
	if res.RunErr != "" {
		t.Fatal(res.RunErr)
	}
	if res.Target != SimName {
		t.Fatalf("target = %q, want sim", res.Target)
	}
	if res.Invocations == 0 {
		t.Fatal("test program never ran")
	}
}

func TestPhantomModelIsDeterministicAndFast(t *testing.T) {
	ds := dataset(t, "XM_set_timer", 3)
	tgt := &Phantom{}
	a := execute(t, tgt, ds, spec1())
	b := execute(t, tgt, ds, spec1())
	if a.RunErr != "" {
		t.Fatal(a.RunErr)
	}
	if Compare(a, b) != nil {
		t.Fatalf("model disagreed with itself: %s", Compare(a, b))
	}
	if len(a.Resolved) != len(ds.Values) {
		t.Fatalf("model resolved %d of %d values", len(a.Resolved), len(ds.Values))
	}
}

func TestPhantomModelPredictsValidityRule(t *testing.T) {
	h := apispec.Default()
	f, _ := h.Function("XM_set_timer")
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	tgt := &Phantom{}
	for _, ds := range m.Datasets() {
		res := execute(t, tgt, ds, spec1())
		if res.RunErr != "" {
			t.Fatal(res.RunErr)
		}
		anyInvalid := false
		for _, v := range ds.Values {
			anyInvalid = anyInvalid || v.Validity == dict.Invalid
		}
		rc, ok := res.LastReturn()
		if !ok {
			t.Fatalf("%s: model predicted no return", ds)
		}
		if anyInvalid && rc != xm.InvalidParam {
			t.Errorf("%s: invalid dataset predicted %v", ds, rc)
		}
		if !anyInvalid && rc != xm.OK {
			t.Errorf("%s: clean dataset predicted %v", ds, rc)
		}
	}
}

func TestPhantomModelTerminalCalls(t *testing.T) {
	h := apispec.Default()
	halt, _ := h.Function("XM_halt_system")
	res := execute(t, &Phantom{}, testgen.Dataset{Func: halt}, spec1())
	if res.KernelState != xm.KStateHalted {
		t.Fatalf("halt_system predicted kernel %v", res.KernelState)
	}
	if res.Invocations != 1 || len(res.Returns) != 0 {
		t.Fatalf("halt_system predicted %d invocations, %d returns", res.Invocations, len(res.Returns))
	}
	susp, _ := h.Function("XM_suspend_self")
	res = execute(t, &Phantom{}, testgen.Dataset{Func: susp}, spec1())
	if res.PartState != xm.PStateSuspended {
		t.Fatalf("suspend_self predicted partition %v", res.PartState)
	}
}

func TestDiffRecordsDivergenceAndAgreement(t *testing.T) {
	tgt, err := NewDiff("sim,phantom", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.Provision(1); err != nil {
		t.Fatal(err)
	}
	// XM_get_time(valid clock, valid pointer): the legacy kernel and the
	// manual agree.
	agree := execute(t, tgt, dataset(t, "XM_get_time", 1), spec1())
	if agree.RunErr != "" {
		t.Fatal(agree.RunErr)
	}
	if agree.Target != "diff:sim,phantom" {
		t.Fatalf("diff result tagged %q", agree.Target)
	}
	// The primary log must be the first backend's (sim), so analysis
	// classifies real behaviour, not predictions.
	if agree.Invocations == 0 {
		t.Fatal("diff did not carry the sim execution log")
	}

	// The paper's TMR findings live where sim and manual disagree: sweep
	// one hypercall's matrix and require at least one divergence, each
	// carrying aligned field/value triples.
	h := apispec.Default()
	f, _ := h.Function("XM_set_timer")
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	diverged := 0
	for _, ds := range m.Datasets() {
		slot := tgt.Acquire()
		res := tgt.Execute(slot, ds, spec1())
		tgt.Release(slot)
		if d := res.Divergence; d != nil {
			diverged++
			if d.Targets != [2]string{SimName, PhantomName} {
				t.Fatalf("divergence targets %v", d.Targets)
			}
			if len(d.Fields) == 0 || len(d.Fields) != len(d.A) || len(d.A) != len(d.B) {
				t.Fatalf("misaligned divergence %+v", d)
			}
			if d.String() == "" {
				t.Fatal("empty divergence rendering")
			}
		}
	}
	if diverged == 0 {
		t.Fatal("XM_set_timer sweep produced no model-vs-sim divergence")
	}
}

func TestCompareSymmetricObservables(t *testing.T) {
	a := Result{Target: "a", Invocations: 2, Returns: []xm.RetCode{xm.OK, xm.OK}}
	b := a
	b.Target = "b"
	if d := Compare(a, b); d != nil {
		t.Fatalf("identical observables diverged: %s", d)
	}
	b.Returns = []xm.RetCode{xm.OK, xm.InvalidParam}
	d := Compare(a, b)
	if d == nil || len(d.Fields) != 1 || d.Fields[0] != "returns" {
		t.Fatalf("divergence = %+v, want returns only", d)
	}
}

func TestSimHonoursUnknownStateAsHarnessError(t *testing.T) {
	ds := dataset(t, "XM_get_time", 0)
	ds.State = "no-such-state"
	res := execute(t, NewSim(Config{}), ds, spec1())
	if !strings.Contains(res.RunErr, "unknown phantom state") {
		t.Fatalf("RunErr = %q", res.RunErr)
	}
}
