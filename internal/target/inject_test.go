package target

import (
	"strings"
	"testing"

	"xmrobust/internal/inject"
	"xmrobust/internal/xm"
)

func TestInjectPassThroughWhenScheduleSkips(t *testing.T) {
	// At a tiny rate the schedule leaves (essentially) every test clean:
	// the composite must run one leg only and carry no injection record.
	tgt, err := New("inject:sim", Config{Inject: inject.Params{Rate: 1e-12}})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset(t, "XM_get_time", 0)
	res := execute(t, tgt, ds, spec1())
	if res.Injection != nil {
		t.Fatalf("uninjected test carries a record: %+v", res.Injection)
	}
	if res.Target != "inject:sim" {
		t.Fatalf("target = %q", res.Target)
	}
	if res.RunErr != "" {
		t.Fatal(res.RunErr)
	}
}

func TestInjectRecordsAppliedFlip(t *testing.T) {
	tgt, err := New("inject:sim", Config{Inject: inject.Params{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.Provision(1); err != nil {
		t.Fatal(err)
	}
	// Sweep a handful of datasets; every one must carry a record (rate
	// 1) and applied flips must carry an outcome class.
	applied := 0
	for rank := int64(0); rank < 6; rank++ {
		ds := dataset(t, "XM_read_sampling_message", rank)
		slot := tgt.Acquire()
		res := tgt.Execute(slot, ds, spec1())
		tgt.Release(slot)
		if res.Injection == nil {
			t.Fatalf("rank %d: rate-1 schedule left the test clean", rank)
		}
		rec := res.Injection
		if rec.Site == "" || rec.Phase == "" {
			t.Fatalf("rank %d: incomplete record %+v", rank, rec)
		}
		if rec.Applied {
			applied++
			switch rec.Outcome {
			case inject.OutcomeMasked, inject.OutcomeWrong, inject.OutcomeDetected,
				inject.OutcomeCrash, inject.OutcomeHang:
			default:
				t.Fatalf("rank %d: applied flip with outcome %q", rank, rec.Outcome)
			}
		} else if rec.Outcome != "" {
			t.Fatalf("rank %d: unapplied flip classified as %q", rank, rec.Outcome)
		}
	}
	if applied == 0 {
		t.Fatal("no flip applied across six datasets")
	}
}

func TestInjectExecuteIsDeterministic(t *testing.T) {
	ds := dataset(t, "XM_write_sampling_message", 2)
	render := func() string {
		tgt, err := New("inject:sim", Config{Inject: inject.Params{Seed: 4}})
		if err != nil {
			t.Fatal(err)
		}
		res := execute(t, tgt, ds, spec1())
		if res.Injection == nil {
			t.Fatal("no record")
		}
		return res.Injection.Site + "|" + res.Injection.Phase + "|" + res.Injection.Outcome +
			"|" + res.Injection.Delta
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("two identical executions diverged:\n%s\n%s", a, b)
	}
}

func TestInjectSignatureSurfaces(t *testing.T) {
	tgt, err := New("inject:sim", Config{Inject: inject.Params{Rate: 0.5, Sites: []string{"ram"}, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	is, ok := tgt.(interface{ InjectSignature() string })
	if !ok {
		t.Fatal("inject target does not expose its schedule signature")
	}
	if got := is.InjectSignature(); got != "rate=0.5|sites=ram|seed=3" {
		t.Fatalf("signature = %q", got)
	}
}

func TestInjectRefusesCompositesAndBadSchedules(t *testing.T) {
	for _, spec := range []string{"inject", "inject:", "inject:inject:sim", "inject:diff:sim,phantom"} {
		if _, err := New(spec, Config{}); err == nil {
			t.Errorf("New(%q) accepted", spec)
		}
	}
	if _, err := New("inject:sim", Config{Inject: inject.Params{Rate: 2}}); err == nil {
		t.Error("rate 2 accepted")
	}
	if _, err := New("inject:sim", Config{Inject: inject.Params{Sites: []string{"alu"}}}); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestDiffComposesOverInject(t *testing.T) {
	tgt, err := New("diff:inject:sim,phantom", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Name() != "diff:inject:sim,phantom" {
		t.Fatalf("name = %q", tgt.Name())
	}
	is, ok := tgt.(interface{ InjectSignature() string })
	if !ok || is.InjectSignature() == "" {
		t.Fatal("diff-wrapped inject does not surface the schedule signature")
	}
}

// TestDiffForwardsSecondLegInjection: with the injecting backend as the
// diff's second leg (diff:phantom,inject:sim) the composite's primary
// log is the phantom's, but the injection record — like the coverage
// map — must ride along, or the SEU study sees an empty campaign.
func TestDiffForwardsSecondLegInjection(t *testing.T) {
	tgt, err := New("diff:phantom,inject:sim", Config{Inject: inject.Params{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset(t, "XM_get_time", 0)
	res := execute(t, tgt, ds, spec1())
	if res.Injection == nil {
		t.Fatal("second-leg injection record dropped by the diff composite")
	}
}

// TestNewNamesBadComponentAndInventory is the table test of the
// resolution-error contract: a bad backend name anywhere in a composite
// spec must surface the bad component, the full registry inventory, and
// the composite it sat in.
func TestNewNamesBadComponentAndInventory(t *testing.T) {
	inventory := Names()
	cases := []struct {
		spec string
		want []string
	}{
		{"bogus", []string{`"bogus"`}},
		{"inject:bogus", []string{`"bogus"`, `"inject:bogus"`}},
		{"diff:sim,bogus", []string{`"bogus"`, `"diff:sim,bogus"`}},
		{"diff:bogus,sim", []string{`"bogus"`, `"diff:bogus,sim"`}},
		{"inject:phantom:x", []string{`"phantom:x"`, `"inject:phantom:x"`}},
	}
	for _, tc := range cases {
		_, err := New(tc.spec, Config{})
		if err == nil {
			t.Errorf("New(%q) accepted", tc.spec)
			continue
		}
		msg := err.Error()
		for _, want := range tc.want {
			if !strings.Contains(msg, want) {
				t.Errorf("New(%q) error %q lacks %s", tc.spec, msg, want)
			}
		}
		if tc.spec != "inject:phantom:x" {
			// Unknown-name failures must carry the full inventory; the
			// phantom:x case fails on the argument instead.
			for _, name := range inventory {
				if !strings.Contains(msg, name) {
					t.Errorf("New(%q) error %q lacks inventory entry %q", tc.spec, msg, name)
				}
			}
		}
	}
}

// TestInjectedCampaignLeavesPoolClean is the pooled half of the
// no-residue property (the machine-level half lives in internal/inject):
// a strict-mode pool scans every byte of every recycled machine, so a
// flip that escaped Reset's bookkeeping would surface as a discarded
// machine. Only simulator crashes may discard.
func TestInjectedCampaignLeavesPoolClean(t *testing.T) {
	tgt, err := New("inject:sim", Config{PoolStrict: true, Inject: inject.Params{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.Provision(1); err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for _, fn := range []string{"XM_read_sampling_message", "XM_set_timer", "XM_reset_partition"} {
		for rank := int64(0); rank < 4; rank++ {
			ds := dataset(t, fn, rank)
			slot := tgt.Acquire()
			res := tgt.Execute(slot, ds, spec1())
			tgt.Release(slot)
			if res.SimCrashed {
				crashes++
			}
		}
	}
	st := tgt.(*Inject).PoolStats()
	if st.Discarded > uint64(2*crashes) {
		// Each test runs two legs; at worst both crash. Anything beyond
		// that is a verification failure — injection residue.
		t.Fatalf("pool discarded %d machines for %d crashed tests: %+v", st.Discarded, crashes, st)
	}
}

// TestInjectedMachineVerifiesCleanAfterReset drives the sim backend
// directly with forced per-site plans — including datasets whose runs
// crash the simulator mid-flight — and requires every machine to come
// back from Reset in a state the exhaustive VerifyClean scan accepts.
// It extends sparc's TestResetScrubsEverything across the whole injected
// execution path.
func TestInjectedMachineVerifiesCleanAfterReset(t *testing.T) {
	sim := NewSim(Config{})
	if err := sim.Provision(1); err != nil {
		t.Fatal(err)
	}
	sched, err := inject.NewSchedule(inject.Params{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	crashed := 0
	for _, fn := range []string{"XM_set_timer", "XM_read_sampling_message", "XM_resume_partition"} {
		for rank := int64(0); rank < 5; rank++ {
			ds := dataset(t, fn, rank)
			plan := sched.Plan(ds)
			rs := spec1()
			rs.MAFs = 2
			rs.Inject = plan
			slot := sim.Acquire()
			m := machineOf(slot)
			if m == nil {
				t.Fatal("pooled sim handed out a nil machine")
			}
			res := sim.Execute(slot, ds, rs)
			if res.SimCrashed {
				crashed++
			}
			m.Reset()
			if err := m.VerifyClean(); err != nil {
				t.Fatalf("%s rank %d (inject %+v): residue after reset: %v", fn, rank, plan, err)
			}
			sim.Release(slot)
		}
	}
	if crashed == 0 {
		t.Log("no simulator crash in the sweep; the crash path rode along untested")
	}
}

func TestInjectionOutcomeClasses(t *testing.T) {
	base := Result{Invocations: 1, Returns: []xm.RetCode{xm.OK}}
	hm := base
	hm.HMEvents = []xm.HMLogEntry{{}}
	crash := base
	crash.SimCrashed = true
	halt := base
	halt.KernelState = xm.KStateHalted
	reset := base
	reset.WarmResets = 1
	hang := base
	hang.Returns = nil
	wrong := base
	wrong.Returns = []xm.RetCode{xm.InvalidParam}
	cases := []struct {
		name     string
		ref, inj Result
		want     string
	}{
		{"masked", base, base, inject.OutcomeMasked},
		{"crash-sim", base, crash, inject.OutcomeCrash},
		{"crash-halt", base, halt, inject.OutcomeCrash},
		{"crash-reset", base, reset, inject.OutcomeCrash},
		{"detected", base, hm, inject.OutcomeDetected},
		{"detected-beats-hang", base, func() Result {
			r := hm
			r.Returns = nil
			return r
		}(), inject.OutcomeDetected},
		{"hang", base, hang, inject.OutcomeHang},
		{"wrong", base, wrong, inject.OutcomeWrong},
		{"crash-beats-detected", base, func() Result {
			r := hm
			r.SimCrashed = true
			return r
		}(), inject.OutcomeCrash},
	}
	for _, tc := range cases {
		got, delta := injectionOutcome(tc.ref, tc.inj)
		if got != tc.want {
			t.Errorf("%s: outcome %q, want %q", tc.name, got, tc.want)
		}
		if (delta == "") != (got == inject.OutcomeMasked) {
			t.Errorf("%s: delta %q inconsistent with outcome %q", tc.name, delta, got)
		}
	}
}
