package target

import (
	"fmt"
	"strings"

	"xmrobust/internal/cover"
	"xmrobust/internal/dict"
	"xmrobust/internal/inject"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// Result is the execution log of one test case — everything §III.C says
// must be monitored: return codes, health-monitor events, partition and
// kernel statuses, plus the simulator's own fate. Every backend produces
// the same Result shape, so the analysis and report pipelines are
// target-agnostic.
type Result struct {
	Dataset  testgen.Dataset
	Resolved []dict.Resolved

	// Target names the backend that produced this log.
	Target string

	// TestPartition is the id of the partition hosting the fault
	// placeholder (the FDIR system partition of the testbed).
	TestPartition int

	// Invocations counts fault-placeholder activations; Returns holds the
	// return codes of those that came back. A shortfall means control
	// never returned to the test partition.
	Invocations int
	Returns     []xm.RetCode

	// Kernel health.
	KernelState xm.KState
	KernelHalt  string
	ColdResets  uint32
	WarmResets  uint32
	HMEvents    []xm.HMLogEntry

	// Test partition health.
	PartState  xm.PState
	PartDetail string

	// Simulator fate.
	SimCrashed  bool
	CrashReason string

	// RunErr records an unexpected harness error ("" normally).
	RunErr string

	// Aborted marks a result whose execution was abandoned mid-flight by
	// context cancellation (the remote client unblocking an in-flight
	// lease). Aborted results never describe kernel behaviour: the engine
	// discards them instead of logging or checkpointing, so the position
	// re-executes on resume. The field is never serialised.
	Aborted bool

	// Cover is the kernel edge coverage of the run (nil unless
	// RunSpec.Coverage was on and the backend collects it).
	Cover *cover.Map

	// Divergence records a diff-target disagreement between the two
	// composed backends (nil outside diff targets, and on diff tests
	// whose backends agreed).
	Divergence *Divergence

	// Injection records the scheduled SEU of an inject-target run — the
	// flip's site/bit/cycle and its outcome against the clean reference
	// leg (nil outside inject targets and on tests the schedule left
	// clean).
	Injection *inject.Injection
}

// Returned reports whether every invocation returned to the guest.
func (r Result) Returned() bool {
	return r.Invocations > 0 && len(r.Returns) == r.Invocations
}

// LastReturn is the last observed return code (ok=false when none).
func (r Result) LastReturn() (xm.RetCode, bool) {
	if len(r.Returns) == 0 {
		return 0, false
	}
	return r.Returns[len(r.Returns)-1], true
}

// Divergence is the diff target's finding: two backends executed the same
// dataset and disagreed on at least one compared observable. Fields, A
// and B are aligned: Fields[i] disagreed, with A[i] on the first backend
// and B[i] on the second.
type Divergence struct {
	Targets [2]string `json:"targets"`
	Fields  []string  `json:"fields"`
	A       []string  `json:"a"`
	B       []string  `json:"b"`
}

// String renders the disagreement compactly.
func (d *Divergence) String() string {
	parts := make([]string, len(d.Fields))
	for i, f := range d.Fields {
		parts[i] = fmt.Sprintf("%s: %s vs %s", f, d.A[i], d.B[i])
	}
	return strings.Join(parts, "; ")
}

// renderReturns joins a return-code sequence symbolically.
func renderReturns(rcs []xm.RetCode) string {
	if len(rcs) == 0 {
		return "(none)"
	}
	parts := make([]string, len(rcs))
	for i, rc := range rcs {
		parts[i] = rc.String()
	}
	return strings.Join(parts, ",")
}

// Compare diffs the compared observables of two executions of the same
// dataset and returns nil when they agree. Detail strings (halt reasons,
// HM entry text) are deliberately excluded: backends word their
// diagnostics differently, and the oracle is about observable behaviour —
// return codes, final states, reset and HM event counts, simulator fate.
func Compare(a, b Result) *Divergence {
	d := &Divergence{Targets: [2]string{a.Target, b.Target}}
	add := func(field, av, bv string) {
		if av != bv {
			d.Fields = append(d.Fields, field)
			d.A = append(d.A, av)
			d.B = append(d.B, bv)
		}
	}
	add("invocations", fmt.Sprintf("%d", a.Invocations), fmt.Sprintf("%d", b.Invocations))
	add("returns", renderReturns(a.Returns), renderReturns(b.Returns))
	add("kernel_state", a.KernelState.String(), b.KernelState.String())
	add("resets", fmt.Sprintf("cold=%d,warm=%d", a.ColdResets, a.WarmResets),
		fmt.Sprintf("cold=%d,warm=%d", b.ColdResets, b.WarmResets))
	add("part_state", a.PartState.String(), b.PartState.String())
	add("hm_events", fmt.Sprintf("%d", len(a.HMEvents)), fmt.Sprintf("%d", len(b.HMEvents)))
	add("sim_crashed", fmt.Sprintf("%v", a.SimCrashed), fmt.Sprintf("%v", b.SimCrashed))
	add("harness", a.RunErr, b.RunErr)
	if len(d.Fields) == 0 {
		return nil
	}
	return d
}
