package target

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/eagleeye"
	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// PhantomState is one value of the "phantom parameter" of paper §V: the
// Ballista technique that extends the data type fault model to
// parameter-less hypercalls by varying the *system state* the call fires
// in instead of its (non-existent) arguments. "Phantom parameters could be
// used in this case to set the separation kernel into a particular
// stressful state before invoking the test calls."
type PhantomState struct {
	Name string
	Desc string
	// warmupFrames is how many major frames the setter runs before the
	// test partition is armed.
	warmupFrames int
	// setup mutates the freshly booted system (attaching setter programs,
	// arming timers) before the warm-up frames run.
	setup func(k *xm.Kernel) error
}

// PhantomStates returns the phantom-parameter value set of the extension
// campaign: the nominal state plus four loaded/degraded states.
func PhantomStates() []PhantomState {
	return []PhantomState{
		{
			Name: "nominal",
			Desc: "freshly booted system",
		},
		{
			Name:         "ipc-saturated",
			Desc:         "queuing channels full, sampling messages pending",
			warmupFrames: 3,
			setup: func(k *xm.Kernel) error {
				// With the FDIR consumer replaced by the (idle) setter,
				// three frames of OBSW traffic saturate the downlink
				// queue and leave fresh sampling messages everywhere.
				return k.AttachProgram(eagleeye.FDIR, idleProgram{})
			},
		},
		{
			Name:         "hm-backlog",
			Desc:         "health-monitor log loaded, one partition halted",
			warmupFrames: 2,
			setup: func(k *xm.Kernel) error {
				if err := k.AttachProgram(eagleeye.Payload, &rogueProgram{}); err != nil {
					return err
				}
				return k.AttachProgram(eagleeye.FDIR, idleProgram{})
			},
		},
		{
			Name:         "timer-armed",
			Desc:         "periodic 10ms virtual timer live on the hardware clock",
			warmupFrames: 1,
			setup: func(k *xm.Kernel) error {
				return k.AttachProgram(eagleeye.FDIR, armTimerProgram{})
			},
		},
		{
			Name:         "survival-plan",
			Desc:         "system switched to the degraded scheduling plan",
			warmupFrames: 1,
			setup: func(k *xm.Kernel) error {
				return k.AttachProgram(eagleeye.FDIR, switchPlanProgram{})
			},
		},
	}
}

// idleProgram occupies a partition without doing anything.
type idleProgram struct{}

func (idleProgram) Boot(env xm.Env)      {}
func (idleProgram) Step(env xm.Env) bool { env.Compute(100); return false }

// rogueProgram violates spatial separation once, loading the HM log.
type rogueProgram struct{ fired bool }

func (r *rogueProgram) Boot(env xm.Env) {}

func (r *rogueProgram) Step(env xm.Env) bool {
	if !r.fired {
		r.fired = true
		env.Write(sparc.DefaultRAMBase, []byte{1}) // hypervisor image: trap
	}
	return false
}

// armTimerProgram arms a sane periodic timer from the FDIR slot.
type armTimerProgram struct{}

func (armTimerProgram) Boot(env xm.Env) {}

func (armTimerProgram) Step(env xm.Env) bool {
	env.Hypercall(xm.NrSetTimer, uint64(xm.HwClock), uint64(env.Now()+5000), 10000)
	return false
}

// switchPlanProgram requests the survival plan (plan 1).
type switchPlanProgram struct{}

func (switchPlanProgram) Boot(env xm.Env) {}

func (switchPlanProgram) Step(env xm.Env) bool {
	area := sparc.DefaultRAMBase + sparc.Addr(0x100000*(eagleeye.FDIR+1))
	env.Hypercall(xm.NrSwitchSchedPlan, 1, uint64(area))
	return false
}

// --- the phantom plan ---------------------------------------------------

// StrategyPhantom is the plan-spec name of the §V extension suite.
const StrategyPhantom = "phantom"

func init() {
	testgen.RegisterHeaderPlan(StrategyPhantom,
		func(h *apispec.Header, d *dict.Dictionary, arg string, seed int64) (testgen.Plan, error) {
			if arg != "" {
				return nil, fmt.Errorf("target: plan %q takes no argument", StrategyPhantom)
			}
			return NewPhantomPlan(h, d)
		})
	testgen.DescribePlan(StrategyPhantom,
		"§V extension: every parameter-less hypercall under every phantom system state")
}

// phantomPlan is the §V extension suite as an ordinary test plan: every
// parameter-less hypercall of the header crossed with every phantom
// state, addressed lazily like any other plan so the streaming engine,
// checkpoints and reports apply unchanged.
type phantomPlan struct {
	funcs  []apispec.Function
	states []PhantomState
	suite  []testgen.Matrix
	fp     string
}

// NewPhantomPlan builds the extension plan over the header's
// parameter-less hypercalls.
func NewPhantomPlan(h *apispec.Header, d *dict.Dictionary) (testgen.Plan, error) {
	p := &phantomPlan{states: PhantomStates()}
	hsh := sha256.New()
	for _, f := range h.Functions {
		if len(f.Params) != 0 {
			continue
		}
		p.funcs = append(p.funcs, f)
		p.suite = append(p.suite, testgen.Matrix{Func: f})
		fmt.Fprintf(hsh, "%s\n", f.Name)
	}
	if len(p.funcs) == 0 {
		return nil, fmt.Errorf("target: plan %q: header has no parameter-less hypercalls", StrategyPhantom)
	}
	for _, st := range p.states {
		fmt.Fprintf(hsh, "@%s\n", st.Name)
	}
	p.fp = StrategyPhantom + "/" + hex.EncodeToString(hsh.Sum(nil))[:16]
	return p, nil
}

func (p *phantomPlan) Strategy() string        { return StrategyPhantom }
func (p *phantomPlan) Len() int                { return len(p.funcs) * len(p.states) }
func (p *phantomPlan) Fingerprint() string     { return p.fp }
func (p *phantomPlan) Suite() []testgen.Matrix { return p.suite }

func (p *phantomPlan) At(i int) testgen.Dataset {
	return testgen.Dataset{
		Func:  p.funcs[i/len(p.states)],
		Index: i,
		State: p.states[i%len(p.states)].Name,
	}
}
