package target

import (
	"fmt"
	"strings"

	"xmrobust/internal/obs"
	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
)

func init() {
	Register(DiffName,
		"diff:a,b — execute on two backends, record disagreements (the divergence oracle)",
		func(arg string, cfg Config) (Target, error) {
			return NewDiff(arg, cfg)
		})
}

// Diff is the composite backend of the divergence oracle: every dataset
// executes on two sub-targets, the first being the authoritative log the
// analysis pipeline classifies, and any disagreement on the compared
// observables lands in Result.Divergence. diff:sim,phantom turns
// model-vs-simulation disagreement into a finding class the paper could
// not observe.
type Diff struct {
	name string
	a, b Target
	// mDiv counts recorded divergences (xm_diff_divergences_total); nil
	// when obs is off.
	mDiv *obs.Counter
}

// diffSlot pairs one slot of each sub-target.
type diffSlot struct{ a, b Slot }

// NewDiff builds the composite from an "a,b" spec.
func NewDiff(arg string, cfg Config) (*Diff, error) {
	parts := strings.Split(arg, ",")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return nil, fmt.Errorf("target: %q needs two comma-separated backends, e.g. %q (got %q)",
			DiffName, DiffName+":sim,phantom", arg)
	}
	for _, p := range parts {
		if strings.HasPrefix(p, DiffName) {
			return nil, fmt.Errorf("target: %q cannot nest another diff target", DiffName)
		}
	}
	a, err := New(parts[0], cfg)
	if err != nil {
		return nil, componentErr(DiffName+":"+arg, parts[0], err)
	}
	b, err := New(parts[1], cfg)
	if err != nil {
		return nil, componentErr(DiffName+":"+arg, parts[1], err)
	}
	return &Diff{
		name: fmt.Sprintf("%s:%s,%s", DiffName, a.Name(), b.Name()),
		a:    a,
		b:    b,
		mDiv: cfg.Obs.Registry().Counter("xm_diff_divergences_total",
			"Diff-target executions whose backends disagreed."),
	}, nil
}

// Name returns the canonical composite spec ("diff:sim,phantom").
func (d *Diff) Name() string { return d.name }

// Provision provisions both sub-targets.
func (d *Diff) Provision(workers int) error {
	if err := d.a.Provision(workers); err != nil {
		return err
	}
	return d.b.Provision(workers)
}

// Acquire reserves one slot on each sub-target.
func (d *Diff) Acquire() Slot { return diffSlot{a: d.a.Acquire(), b: d.b.Acquire()} }

// Release returns both slots.
func (d *Diff) Release(s Slot) {
	ds, _ := s.(diffSlot)
	d.a.Release(ds.a)
	d.b.Release(ds.b)
}

// InjectSignature forwards the SEU schedule signature of an injecting
// sub-target ("" when neither leg injects), so a checkpointed
// diff:inject:... campaign refuses a mismatched-schedule resume exactly
// like a bare inject campaign.
func (d *Diff) InjectSignature() string {
	for _, t := range []Target{d.a, d.b} {
		if is, ok := t.(interface{ InjectSignature() string }); ok {
			if sig := is.InjectSignature(); sig != "" {
				return sig
			}
		}
	}
	return ""
}

// PoolStats aggregates the machine-pool counters of pooling sub-targets.
func (d *Diff) PoolStats() sparc.PoolStats {
	var out sparc.PoolStats
	for _, t := range []Target{d.a, d.b} {
		if ps, ok := t.(interface{ PoolStats() sparc.PoolStats }); ok {
			st := ps.PoolStats()
			out.Allocated += st.Allocated
			out.Reused += st.Reused
			out.Discarded += st.Discarded
			out.Steals += st.Steals
		}
	}
	return out
}

// Execute runs the dataset on both backends and returns the first
// backend's log, tagged with the composite name and carrying the
// divergence (nil when the backends agree).
func (d *Diff) Execute(slot Slot, ds testgen.Dataset, spec RunSpec) Result {
	s, _ := slot.(diffSlot)
	ra := d.a.Execute(s.a, ds, spec)
	rb := d.b.Execute(s.b, ds, spec)
	res := ra
	res.Target = d.name
	res.Divergence = Compare(ra, rb)
	if res.Divergence != nil {
		d.mDiv.Inc()
	}
	if res.Cover == nil {
		// A model-first composite (diff:phantom,sim) must not drop the
		// simulating leg's edge coverage — the feedback loop and the
		// coverage report read it off the composite's Result.
		res.Cover = rb.Cover
	}
	if res.Injection == nil {
		// Likewise an injecting second leg (diff:phantom,inject:sim):
		// the SEU study reads the record off the composite's Result.
		res.Injection = rb.Injection
	}
	return res
}
