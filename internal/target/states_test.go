package target

import (
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

func TestPhantomStatesInventory(t *testing.T) {
	states := PhantomStates()
	if len(states) != 5 {
		t.Fatalf("phantom states = %d, want 5", len(states))
	}
	seen := map[string]bool{}
	for _, st := range states {
		if st.Name == "" || st.Desc == "" {
			t.Errorf("state %+v lacks name/description", st)
		}
		if seen[st.Name] {
			t.Errorf("duplicate state %q", st.Name)
		}
		seen[st.Name] = true
	}
	if !seen["nominal"] {
		t.Error("the nominal state must anchor the comparison")
	}
}

func TestPhantomPlanCoversParameterlessCalls(t *testing.T) {
	plan, err := testgen.NewPlan("phantom", apispec.Default(), dict.Builtin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 10 parameter-less hypercalls x 5 states.
	if plan.Len() != 50 {
		t.Fatalf("suite = %d tests, want 50", plan.Len())
	}
	if plan.Strategy() != StrategyPhantom {
		t.Fatalf("strategy = %q", plan.Strategy())
	}
	if plan.Fingerprint() == "" {
		t.Fatal("no fingerprint")
	}
	fns := map[string]int{}
	states := map[string]bool{}
	for i := 0; i < plan.Len(); i++ {
		ds := plan.At(i)
		if ds.Index != i {
			t.Errorf("dataset %d carries index %d", i, ds.Index)
		}
		if len(ds.Func.Params) != 0 {
			t.Errorf("%s has parameters", ds.Func.Name)
		}
		fns[ds.Func.Name]++
		states[ds.State] = true
	}
	if len(fns) != 10 {
		t.Fatalf("functions = %d, want 10", len(fns))
	}
	for fn, n := range fns {
		if n != 5 {
			t.Errorf("%s tested under %d states, want 5", fn, n)
		}
	}
	if len(states) != 5 {
		t.Fatalf("states covered = %d, want 5", len(states))
	}
}

// phantomFor finds the plan dataset for (fn, state).
func phantomFor(t *testing.T, fn, state string) testgen.Dataset {
	t.Helper()
	plan, err := testgen.NewPlan("phantom", apispec.Default(), dict.Builtin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plan.Len(); i++ {
		if ds := plan.At(i); ds.Func.Name == fn && ds.State == state {
			return ds
		}
	}
	t.Fatalf("no phantom test %s @ %s", fn, state)
	return testgen.Dataset{}
}

// runPhantomOnSim executes one §V test on the sim backend.
func runPhantomOnSim(t *testing.T, ds testgen.Dataset, mafs int) Result {
	t.Helper()
	rs := spec1()
	rs.MAFs = mafs
	return execute(t, NewSim(Config{}), ds, rs)
}

func TestPhantomHaltSystem(t *testing.T) {
	for _, state := range []string{"nominal", "ipc-saturated", "survival-plan"} {
		res := runPhantomOnSim(t, phantomFor(t, "XM_halt_system", state), 2)
		if res.RunErr != "" {
			t.Fatalf("%s: %s", state, res.RunErr)
		}
		if res.KernelState != xm.KStateHalted {
			t.Errorf("%s: kernel %v, want HALTED", state, res.KernelState)
		}
		if res.Returned() {
			t.Errorf("%s: XM_halt_system returned", state)
		}
	}
}

func TestPhantomSuspendSelf(t *testing.T) {
	res := runPhantomOnSim(t, phantomFor(t, "XM_suspend_self", "hm-backlog"), 2)
	if res.RunErr != "" {
		t.Fatal(res.RunErr)
	}
	if res.PartState != xm.PStateSuspended {
		t.Fatalf("partition %v, want SUSPENDED", res.PartState)
	}
	// The warm-up rogue's HM entry must be visible in the log.
	if len(res.HMEvents) == 0 {
		t.Fatal("hm-backlog state produced no HM entries")
	}
}

func TestPhantomStateChangesContext(t *testing.T) {
	// The ipc-saturated state must actually differ from nominal: under
	// saturation, the TMTC partition has dropped frames.
	nom := runPhantomOnSim(t, phantomFor(t, "XM_hm_open", "nominal"), 2)
	sat := runPhantomOnSim(t, phantomFor(t, "XM_hm_open", "ipc-saturated"), 2)
	if nom.RunErr != "" || sat.RunErr != "" {
		t.Fatal(nom.RunErr, sat.RunErr)
	}
	rcN, _ := nom.LastReturn()
	rcS, _ := sat.LastReturn()
	if rcN != xm.OK || rcS != xm.OK {
		t.Fatalf("hm_open = %v / %v", rcN, rcS)
	}
}

func TestPhantomSurvivalPlanApplies(t *testing.T) {
	res := runPhantomOnSim(t, phantomFor(t, "XM_enable_irqs", "survival-plan"), 2)
	if res.RunErr != "" {
		t.Fatal(res.RunErr)
	}
	rc, ok := res.LastReturn()
	if !ok || rc != xm.OK {
		t.Fatalf("enable_irqs under survival plan = %v %v", rc, ok)
	}
}

func TestPhantomInvocationCadence(t *testing.T) {
	res := runPhantomOnSim(t, phantomFor(t, "XM_sparc_get_psr", "nominal"), 3)
	if res.Invocations != 3 || len(res.Returns) != 3 {
		t.Fatalf("invocations=%d returns=%d, want 3/3", res.Invocations, len(res.Returns))
	}
}

func TestDatasetStateRendersInString(t *testing.T) {
	ds := phantomFor(t, "XM_hm_open", "timer-armed")
	if got, want := ds.String(), "XM_hm_open() @ timer-armed"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
