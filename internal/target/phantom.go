package target

import (
	"fmt"

	"xmrobust/internal/dict"
	"xmrobust/internal/eagleeye"
	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

func init() {
	Register(PhantomName,
		"analytical kernel-state model: predicts outcomes from the reference manual, no simulator",
		func(arg string, cfg Config) (Target, error) {
			if arg != "" {
				return nil, fmt.Errorf("target: %q takes no argument", PhantomName)
			}
			return &Phantom{}, nil
		})
}

// Phantom is the model backend: a fast, simulator-free predictor of what
// the kernel's reference manual says each test should do. Predictions are
// pure functions of the dataset — the dictionary's validity annotations
// decide the expected return code, and a small state model encodes the
// documented fate of the system-class hypercalls (halt, reset, suspend).
//
// The model is deliberately naive about everything the manual does not
// document: it predicts no health-monitor events, no fault masking and no
// state sensitivity. That is its value as the second leg of the
// diff:sim,phantom oracle — every divergence from the simulated kernel is
// behaviour the documentation does not predict, which is exactly where
// the paper's robustness findings live.
type Phantom struct{}

// Name returns "phantom".
func (p *Phantom) Name() string { return PhantomName }

// Provision is a no-op: the model holds no per-campaign state.
func (p *Phantom) Provision(workers int) error { return nil }

// Acquire returns the empty slot; the model is stateless.
func (p *Phantom) Acquire() Slot  { return nil }
func (p *Phantom) Release(s Slot) {}

// staticLayout is the EagleEye memory landscape computed without booting
// a kernel — identical to what the sim backend derives from a booted
// system, so both backends resolve symbolic dictionary values to the same
// ABI bits and the diff oracle compares like with like.
func staticLayout() dict.Layout {
	data, size := eagleeye.DataArea(eagleeye.FDIR)
	other, osize := eagleeye.DataArea(eagleeye.Platform)
	mc := sparc.DefaultConfig()
	return dict.Layout{
		DataArea:  sparc.Region{Base: data, Size: size},
		OtherArea: sparc.Region{Base: other, Size: osize},
		Kernel:    mc.RAMBase,
		ROM:       mc.ROMBase + 0x100,
		IO:        mc.IOBase,
	}
}

// Execute predicts one dataset's execution log.
func (p *Phantom) Execute(_ Slot, ds testgen.Dataset, spec RunSpec) Result {
	res := Result{Dataset: ds, TestPartition: eagleeye.FDIR, Target: PhantomName}

	hc, ok := xm.LookupName(ds.Func.Name)
	if !ok {
		res.RunErr = fmt.Sprintf("target: hypercall %q not in kernel ABI", ds.Func.Name)
		return res
	}
	if _, err := stateFor(ds); err != nil {
		res.RunErr = err.Error()
		return res
	}
	resolved, err := staticLayout().ResolveAll(ds.Values)
	if err != nil {
		res.RunErr = err.Error()
		return res
	}
	res.Resolved = resolved

	// The invocation cadence of the testbed: the fault placeholder fires
	// once per major frame, plus once during the stress warm-up frame.
	invocations := spec.MAFs
	if spec.Stress {
		invocations++
	}

	anyInvalid := false
	for _, v := range resolved {
		if v.Validity == dict.Invalid {
			anyInvalid = true
			break
		}
	}
	ret := xm.OK
	if anyInvalid {
		ret = xm.InvalidParam
	}

	res.KernelState = xm.KStateRunning
	res.PartState = xm.PStateNormal
	res.Invocations = invocations

	arg := func(i int) (uint64, bool) {
		if i < len(resolved) {
			return resolved[i].Bits, true
		}
		return 0, false
	}
	repeat := func(rc xm.RetCode) {
		for i := 0; i < invocations; i++ {
			res.Returns = append(res.Returns, rc)
		}
	}
	// terminal records a call the manual says never returns to the
	// caller: one invocation, no observed return code.
	terminal := func() { res.Invocations = 1; res.Returns = nil }

	switch hc.Name {
	case "XM_halt_system":
		terminal()
		res.KernelState = xm.KStateHalted
	case "XM_suspend_self":
		terminal()
		res.PartState = xm.PStateSuspended
	case "XM_halt_partition":
		if anyInvalid {
			repeat(ret)
			break
		}
		if id, ok := arg(0); ok && int(int32(id)) == eagleeye.FDIR {
			terminal()
			res.PartState = xm.PStateHalted
		} else if id, ok := arg(0); ok && id < eagleeye.NumPartitions {
			repeat(xm.OK)
		} else {
			repeat(xm.InvalidParam)
		}
	case "XM_suspend_partition":
		if anyInvalid {
			repeat(ret)
			break
		}
		if id, ok := arg(0); ok && int(int32(id)) == eagleeye.FDIR {
			terminal()
			res.PartState = xm.PStateSuspended
		} else if id, ok := arg(0); ok && id < eagleeye.NumPartitions {
			repeat(xm.OK)
		} else {
			repeat(xm.InvalidParam)
		}
	case "XM_shutdown_partition":
		if anyInvalid {
			repeat(ret)
			break
		}
		if id, ok := arg(0); ok && int(int32(id)) == eagleeye.FDIR {
			terminal()
			res.PartState = xm.PStateShutdown
		} else if id, ok := arg(0); ok && id < eagleeye.NumPartitions {
			repeat(xm.OK)
		} else {
			repeat(xm.InvalidParam)
		}
	case "XM_reset_system":
		mode, _ := arg(0)
		switch {
		case anyInvalid:
			repeat(ret)
		case mode == uint64(xm.ColdReset):
			// Every invocation reboots the system; the call itself never
			// returns into the (re-initialised) partition context.
			terminal()
			res.Invocations = invocations
			res.ColdResets = uint32(invocations)
		case mode == uint64(xm.WarmReset):
			terminal()
			res.Invocations = invocations
			res.WarmResets = uint32(invocations)
		default:
			repeat(xm.InvalidParam)
		}
	case "XM_reset_partition":
		id, _ := arg(0)
		switch {
		case anyInvalid:
			repeat(ret)
		case id >= eagleeye.NumPartitions:
			repeat(xm.InvalidParam)
		case int(int32(id)) == eagleeye.FDIR:
			// Resetting the calling partition re-enters its boot context.
			terminal()
			res.Invocations = invocations
		default:
			repeat(xm.OK)
		}
	default:
		repeat(ret)
	}
	return res
}
