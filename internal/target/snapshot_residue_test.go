package target

import (
	"bytes"
	"testing"

	"xmrobust/internal/inject"
	"xmrobust/internal/sparc"
)

// The snapshot/restore sweep of the TestResetScrubsEverything family at
// the target layer: whatever an execution leg does to the leased machine
// — ordinary runs, crashed simulators, inject peek-poke flips — a slot
// Restore must rewind it to a state the exhaustive VerifyClean scan
// accepts, under the strict pool that re-scans every recycle.

// TestSlotRestoreScrubsInjectedAndCrashedLegs drives the pooled sim
// backend through forced injection plans (some legs crash the simulator
// mid-flight), rewinds each leg in-slot instead of round-tripping the
// pool, and requires the restored machine to pass the full-image scan.
func TestSlotRestoreScrubsInjectedAndCrashedLegs(t *testing.T) {
	sim := NewSim(Config{PoolStrict: true})
	if err := sim.Provision(1); err != nil {
		t.Fatal(err)
	}
	sched, err := inject.NewSchedule(inject.Params{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	crashed := 0
	for _, fn := range []string{"XM_set_timer", "XM_read_sampling_message", "XM_resume_partition"} {
		for rank := int64(0); rank < 4; rank++ {
			ds := dataset(t, fn, rank)
			rs := spec1()
			rs.MAFs = 2
			rs.Inject = sched.Plan(ds)
			slot := sim.Acquire()
			sl, ok := slot.(*simSlot)
			if !ok || sl.m == nil {
				t.Fatal("pooled sim handed out no machine")
			}
			res := sim.Execute(slot, ds, rs)
			if res.SimCrashed {
				crashed++
			}
			// Rewind the leg in-slot: no captured restore point, so the
			// power-on baseline — the batched engine's between-test path.
			sl.snap = nil
			if err := sl.Restore(); err != nil {
				t.Fatalf("%s rank %d: restore after leg: %v", fn, rank, err)
			}
			if err := sl.m.VerifyClean(); err != nil {
				t.Fatalf("%s rank %d (inject %+v): residue after restore: %v",
					fn, rank, rs.Inject, err)
			}
			sim.Release(slot)
		}
	}
	if crashed == 0 {
		t.Log("no simulator crash in the sweep; the crash path rode along untested")
	}
}

// TestSlotSnapshotOfDirtyMachineRestores captures a restore point on a
// machine mid-campaign (dirty from a completed leg), diverges it with a
// further leg, and checks Restore rewinds the observables — clock,
// console, RAM — to exactly the captured point.
func TestSlotSnapshotOfDirtyMachineRestores(t *testing.T) {
	sim := NewSim(Config{PoolStrict: true})
	if err := sim.Provision(1); err != nil {
		t.Fatal(err)
	}
	slot := sim.Acquire()
	defer sim.Release(slot)
	sl := slot.(*simSlot)

	// Leg one dirties the machine; its end state is the restore point.
	if res := sim.Execute(slot, dataset(t, "XM_set_timer", 1), spec1()); res.RunErr != "" {
		t.Fatalf("leg one: %v", res.RunErr)
	}
	if err := sl.Snapshot(); err != nil {
		t.Fatal(err)
	}
	window := sl.m.Config().RAMBase + 0x1000
	ref, tr := sl.m.Read(window, 256)
	if tr != nil {
		t.Fatal(tr)
	}
	ref = append([]byte(nil), ref...)
	refNow := sl.m.Now()
	refConsole := sl.m.UART().String()

	// Leg two diverges well past the capture, then crashes the machine.
	if res := sim.Execute(slot, dataset(t, "XM_resume_partition", 2), spec1()); res.RunErr != "" {
		t.Fatalf("leg two: %v", res.RunErr)
	}
	sl.m.Crash("post-snapshot crash")

	if err := sl.Restore(); err != nil {
		t.Fatal(err)
	}
	if crashed, _ := sl.m.Crashed(); crashed {
		t.Fatal("restore did not rewind the crash flag")
	}
	if now := sl.m.Now(); now != refNow {
		t.Fatalf("restored clock at %dus, want %d", now, refNow)
	}
	if got := sl.m.UART().String(); got != refConsole {
		t.Fatalf("restored console diverges:\n got %q\nwant %q", got, refConsole)
	}
	got, tr := sl.m.Read(window, 256)
	if tr != nil {
		t.Fatal(tr)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("restored RAM window diverges from the captured state")
	}
}

// TestSlotRestoreComposesWithInjectPokes pins the Restore/FlipBit
// composition directly: peek-poke upsets landed between capture and
// restore (the inject target's primitives) vanish without trace.
func TestSlotRestoreComposesWithInjectPokes(t *testing.T) {
	sim := NewSim(Config{PoolStrict: true})
	if err := sim.Provision(1); err != nil {
		t.Fatal(err)
	}
	slot := sim.Acquire()
	defer sim.Release(slot)
	sl := slot.(*simSlot)
	m := sl.m

	base := m.Config().RAMBase
	for i := 0; i < 6; i++ {
		m.FlipBit(base+sparc.Addr(i)<<12, uint8(i))
	}
	sl.snap = nil
	if err := sl.Restore(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyClean(); err != nil {
		t.Fatalf("poke residue survived restore: %v", err)
	}
}
