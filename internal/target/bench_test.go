package target

import (
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/inject"
	"xmrobust/internal/testgen"
)

// BenchmarkTargetDispatch guards the cost of the execution API redesign:
// executing through the Target interface must add no measurable overhead
// over calling the concrete sim backend directly (the pre-redesign
// runOneOn shape). One dynamic dispatch per test is noise against a
// full testbed boot-and-run; if these two numbers ever drift apart,
// something other than the interface is to blame.
func BenchmarkTargetDispatch(b *testing.B) {
	h := apispec.Default()
	f, _ := h.Function("XM_get_time")
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		b.Fatal(err)
	}
	ds := m.Datasets()[0]
	rs := RunSpec{MAFs: 1, Header: h, Dict: dict.Builtin()}

	b.Run("direct", func(b *testing.B) {
		sim := NewSim(Config{})
		if err := sim.Provision(1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot := sim.Acquire()
			r := sim.Execute(slot, ds, rs)
			sim.Release(slot)
			if r.RunErr != "" {
				b.Fatal(r.RunErr)
			}
		}
	})
	b.Run("interface", func(b *testing.B) {
		var tgt Target = NewSim(Config{})
		if err := tgt.Provision(1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot := tgt.Acquire()
			r := tgt.Execute(slot, ds, rs)
			tgt.Release(slot)
			if r.RunErr != "" {
				b.Fatal(r.RunErr)
			}
		}
	})
	// The phantom model is the fast path of the diff oracle: its
	// per-test cost bounds the overhead diff adds on top of sim.
	b.Run("phantom-model", func(b *testing.B) {
		var tgt Target = &Phantom{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := tgt.Execute(nil, ds, rs)
			if r.RunErr != "" {
				b.Fatal(r.RunErr)
			}
		}
	})
}

// BenchmarkInjectOverhead guards the SEU subsystem's hot-path claim: a
// run that carries no injection pays exactly the RunSpec.Inject nil
// checks in sim.Execute — nothing else. "bare-sim" executes without the
// inject layer at all; "inject-skipped" executes through an inject:sim
// composite whose schedule deterministically leaves the benchmark's
// dataset clean, so both time the identical single-leg execution and any
// gap between them is the wrapper's bookkeeping. (An injected test runs
// two legs by design — that path is priced by construction, not guarded
// here.)
func BenchmarkInjectOverhead(b *testing.B) {
	h := apispec.Default()
	f, _ := h.Function("XM_get_time")
	m, err := testgen.BuildMatrix(f, dict.Builtin())
	if err != nil {
		b.Fatal(err)
	}
	ds := m.Datasets()[0]
	rs := RunSpec{MAFs: 1, Header: h, Dict: dict.Builtin()}

	run := func(b *testing.B, tgt Target) {
		if err := tgt.Provision(1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot := tgt.Acquire()
			r := tgt.Execute(slot, ds, rs)
			tgt.Release(slot)
			if r.RunErr != "" {
				b.Fatal(r.RunErr)
			}
		}
	}

	b.Run("bare-sim", func(b *testing.B) {
		run(b, NewSim(Config{}))
	})
	b.Run("inject-skipped", func(b *testing.B) {
		// Search the seed space for a schedule that skips this dataset
		// at a fair coin — deterministic, and by construction the same
		// execution path minus nothing but the wrapper.
		for seed := int64(0); ; seed++ {
			sched, err := inject.NewSchedule(inject.Params{Rate: 0.5, Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			if sched.Plan(ds) != nil {
				continue
			}
			tgt, err := New("inject:sim", Config{Inject: inject.Params{Rate: 0.5, Seed: seed}})
			if err != nil {
				b.Fatal(err)
			}
			run(b, tgt)
			return
		}
	})
}
