package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the go command's (unpublished but stable) vet
// tool protocol, the same contract golang.org/x/tools'
// unitchecker speaks — reimplemented on the standard library so the
// module stays dependency-free. The go command drives the tool three
// ways:
//
//	xmlint -flags          print supported flags as JSON (always probed)
//	xmlint -V=full         print an identity line for the build cache
//	xmlint <pkg>.cfg       analyze one package described by a JSON config
//
// For the .cfg form, the config carries the package's file set, its
// import map, and the export-data file of every dependency — so the
// tool type-checks each package exactly once, from the same export data
// the build produced, with no network and no duplicated loading.

// unitConfig mirrors the go command's vetConfig (cmd/go/internal/work).
// Field names are the wire contract; unused fields are omitted.
type unitConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/xmlint: a vet tool running the given
// analyzers. It never returns.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// The go command probes `xmlint -flags` before every vet run to
	// learn which flags the tool accepts; we keep none beyond the
	// protocol's own.
	for _, arg := range args {
		switch {
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			os.Exit(0)
		case arg == "-V=full" || arg == "--V=full":
			printVersion(progname)
			os.Exit(0)
		}
	}

	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: this is a go vet tool; run it via\n\tgo vet -vettool=$(command -v %s) ./...\n", progname, progname)
		os.Exit(1)
	}
	os.Exit(runUnit(progname, args[0], analyzers))
}

// printVersion emits the identity line the go command's build cache
// keys vet results on: content-hash of this executable, in the exact
// shape cmd/go parses for a -vettool.
func printVersion(progname string) {
	exe, err := os.Executable()
	if err != nil {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	defer f.Close()
	h := sha256.New()
	io.Copy(h, f)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

// runUnit analyzes the one package described by cfgFile and returns the
// process exit code (0 clean, 1 broken invocation, 2 diagnostics).
func runUnit(progname, cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: parsing %s: %v\n", progname, cfgFile, err)
		return 1
	}

	// The go command schedules a facts-only (VetxOnly) run over every
	// dependency. This suite keeps no cross-package facts, so those
	// runs only need to produce their (empty) facts file.
	if cfg.VetxOnly {
		writeVetx(&cfg)
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(&cfg)
				return 0
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies type-check from the export data the build already
	// produced: cfg.PackageFile maps resolved package paths to export
	// files, cfg.ImportMap resolves source-level import strings.
	compImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(&cfg)
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: typechecking %s: %v\n", progname, cfg.ImportPath, err)
		return 1
	}

	diags, err := RunPackage(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %s: %v\n", progname, cfg.ImportPath, err)
		return 1
	}
	writeVetx(&cfg)
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 2
}

// writeVetx writes the (empty) facts file the go command caches for
// dependency runs. Best-effort: a missing file only costs cache reuse.
func writeVetx(cfg *unitConfig) {
	if cfg.VetxOutput != "" {
		os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
