// Package campaign is a determinism-fixture stand-in for the real
// deterministic engine package: internal/campaign is on the fixed-seed
// reproducibility path, so ambient nondeterminism must be flagged here.
package campaign

import (
	"bytes"
	"math/rand"
	"os"
	"sort"
	"time"
)

// Stamp reads the wall clock from a deterministic package.
func Stamp() time.Time {
	return time.Now() // want `determinism: time\.Now reads the wall clock`
}

// Age captures a forbidden function as a value, without calling it.
var Age = time.Since // want `determinism: time\.Since reads the wall clock`

// Env reads the process environment.
func Env() string {
	return os.Getenv("SEED") // want `determinism: os\.Getenv reads the process environment`
}

// Roll draws from the unseeded global source.
func Roll() int {
	return rand.Int() // want `determinism: math/rand\.Int draws from the unseeded global source`
}

// Seeded builds a seeded generator, which replays: allowed.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Deadline is wall-clock by design and carries an allowance in place.
func Deadline() time.Time {
	return time.Now() //xmlint:allow determinism -- fixture: deadlines are wall-clock by design
}

// Render feeds map iteration straight into an order-sensitive sink.
func Render(m map[string]int) string {
	var buf bytes.Buffer
	for k := range m { // want `determinism: map iteration feeds the order-sensitive sink WriteString`
		buf.WriteString(k)
	}
	return buf.String()
}

// RenderSorted collects and sorts the keys first: allowed.
func RenderSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		buf.WriteString(k)
	}
	return buf.String()
}

//xmlint:allow determinism -- fixture: nothing on this line trips the analyzer // want `allowlist: unused allowlist annotation`

//xmlint:allow determinism // want `allowlist: allowlist annotation needs a reason`
