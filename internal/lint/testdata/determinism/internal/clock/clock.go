// Package clock is outside the deterministic set: wall-clock reads and
// environment lookups are its whole job, and none of them may be
// flagged.
package clock

import (
	"os"
	"time"
)

// Now reads the wall clock from a non-deterministic package: allowed.
func Now() time.Time {
	return time.Now()
}

// TZ reads the environment from a non-deterministic package: allowed.
func TZ() string {
	return os.Getenv("TZ")
}
