// Package campaign is a seqfield-fixture stand-in for the real record
// codec: JSONRecord has deliberately outgrown the hand-written raw
// codec so the analyzer must notice the drift.
package campaign

import "strconv"

// JSONRecord is the json-codec record shape.
type JSONRecord struct {
	Func  string        `json:"func"`
	Seq   uint64        `json:"seq"`
	State string        `json:"state"`
	Cover int           `json:"cover"` // want `seqfield: field JSONRecord\.Cover \(json "cover"\) is not referenced by the raw encoder rawAppendRecord` `seqfield: json key "cover" \(field JSONRecord\.Cover\) has no case in the raw decoder rawDecodeRecord`
	HM    []JSONHMEvent `json:"hm"`    // want `seqfield: json key "hm" \(field JSONRecord\.HM\) has no case in the raw decoder rawDecodeRecord`
	Note  string        `json:"note"`  //xmlint:allow seqfield -- fixture: json-only diagnostic field, the raw path omits it deliberately

	scratch int `json:"scratch"` // unexported: not serialised, exempt
	Skipped int `json:"-"`       // explicitly unserialised, exempt
}

// JSONHMEvent is fully covered by both raw paths: no diagnostics.
type JSONHMEvent struct {
	Kind string `json:"kind"`
	Seq  uint64 `json:"seq"`
}

type pair struct {
	key, val string
}

// rawAppendRecord is the hand-written encoder; it references HM but
// misses Cover and Note.
func rawAppendRecord(dst []byte, r *JSONRecord) []byte {
	dst = appendKV(dst, "func", r.Func)
	dst = appendKV(dst, "seq", strconv.FormatUint(r.Seq, 10))
	dst = appendKV(dst, "state", r.State)
	for i := range r.HM {
		dst = rawAppendHMEvent(dst, &r.HM[i])
	}
	return dst
}

// rawDecodeRecord is the hand-written decoder; it misses the "cover",
// "hm", and "note" keys.
func rawDecodeRecord(kvs []pair, r *JSONRecord) {
	for _, kv := range kvs {
		switch kv.key {
		case "func":
			r.Func = kv.val
		case "seq":
			r.Seq = parseU64(kv.val)
		case "state":
			r.State = kv.val
		}
	}
}

// rawAppendHMEvent covers every JSONHMEvent field.
func rawAppendHMEvent(dst []byte, ev *JSONHMEvent) []byte {
	dst = appendKV(dst, "kind", ev.Kind)
	dst = appendKV(dst, "seq", strconv.FormatUint(ev.Seq, 10))
	return dst
}

// hmEvent decodes every JSONHMEvent key.
func hmEvent(kv pair, ev *JSONHMEvent) {
	switch kv.key {
	case "kind":
		ev.Kind = kv.val
	case "seq":
		ev.Seq = parseU64(kv.val)
	}
}

func appendKV(dst []byte, key, val string) []byte {
	dst = append(dst, key...)
	dst = append(dst, '=')
	dst = append(dst, val...)
	return dst
}

func parseU64(s string) uint64 {
	v, _ := strconv.ParseUint(s, 10, 64)
	return v
}

var (
	_ = rawAppendRecord
	_ = rawDecodeRecord
	_ = hmEvent
)
