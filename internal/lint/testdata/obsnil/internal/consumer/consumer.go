// Package consumer exercises the caller side of the obsnil contract:
// obs handle methods guard their own receiver, so callers must not
// pre-check handles for nil — unless the check is doing real work.
package consumer

import (
	"time"

	"fixture/internal/obs"
)

// Config carries optional handles, nil when observability is off.
type Config struct {
	Hits *obs.Counter
	Lat  *obs.Histo
}

// Bad pre-checks a handle whose methods already guard nil.
func (c *Config) Bad() {
	if c.Hits != nil { // want `obsnil: redundant nil pre-check before calling methods on c\.Hits`
		c.Hits.Inc()
	}
}

// ArgWork skips the wall-clock read when obs is off: here the guard IS
// the invariant's one nil check, not a redundancy.
func (c *Config) ArgWork(t0 time.Time) {
	if c.Lat != nil {
		c.Lat.Observe(float64(time.Since(t0).Nanoseconds()))
	}
}

// Wire reads a field of the handle, which a nil handle cannot serve:
// the check is legitimate.
func Wire(s *obs.Set) *obs.Counter {
	if s != nil {
		return s.Hits
	}
	return nil
}

// PassOn forwards the handle, so the check is not a pure pre-check.
func PassOn(c *obs.Counter) {
	if c != nil {
		record(c)
		c.Inc()
	}
}

func record(*obs.Counter) {}

// Forced keeps the pre-check anyway, with the reason on record.
func (c *Config) Forced() {
	//xmlint:allow obsnil -- fixture: benchmarked, the call overhead shows up on this path
	if c.Hits != nil {
		c.Hits.Inc()
	}
}

// logger is not an obs handle: pre-checks on other packages' types are
// none of this analyzer's business.
type logger struct{}

func (l *logger) log() {}

func flush(l *logger) {
	if l != nil {
		l.log()
	}
}

var _ = flush // silence staticcheck-style unused warnings in editors
