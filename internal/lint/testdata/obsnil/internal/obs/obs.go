// Package obs is an obsnil-fixture stand-in for the real observability
// handles: every exported method on an exported pointer-receiver type
// must begin with a nil-receiver guard or delegate to one that does.
package obs

// Counter is a nil-is-off handle.
type Counter struct {
	n int64
}

// Add is properly guarded.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Inc delegates to a guarded sibling: the guard lives in Add.
func (c *Counter) Inc() {
	c.Add(1)
}

// Get guards through an || chain whose leftmost operand is the check.
func (c *Counter) Get() int64 {
	if c == nil || c.n < 0 {
		return 0
	}
	return c.n
}

// Bare is missing its guard.
func (c *Counter) Bare() { // want `obsnil: exported method \(\*Counter\)\.Bare does not begin with a nil-receiver guard`
	c.n++
}

// Histo is a second handle, used by the consumer fixture.
type Histo struct {
	sum float64
}

// Observe is properly guarded.
func (h *Histo) Observe(v float64) {
	if h == nil {
		return
	}
	h.sum += v
}

// Set groups handles; consumers read its fields, so a nil check before
// field access is legitimate on their side.
type Set struct {
	Hits *Counter
}

// Counter hands out a grouped handle, guarded.
func (s *Set) Counter() *Counter {
	if s == nil {
		return nil
	}
	return s.Hits
}

// Snapshot has value receivers: a value cannot be nil, no guard needed.
type Snapshot struct {
	N int64
}

// Total needs no guard on a value receiver.
func (s Snapshot) Total() int64 {
	return s.N
}

// gauge is unexported plumbing: the contract covers the public surface.
type gauge struct {
	v float64
}

// Set needs no guard on an unexported type.
func (g *gauge) Set(v float64) {
	g.v = v
}
