// Package consumer exercises cross-package registration: the same
// rules apply when Register is reached through an import.
package consumer

import "fixture/internal/target"

func init() {
	target.Register("consumer", nil) // init at program start: fine
}

var _ = target.Register("consumer-decl", nil)

// AddLater registers from runtime code in another package: flagged.
func AddLater() {
	target.Register("later", nil) // want `registry: target\.Register called outside init`
}
