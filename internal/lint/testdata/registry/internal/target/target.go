// Package target is a registry-fixture stand-in for the real target
// registry: Register must only run from init functions or package-level
// declarations, so the inventory is complete when main starts.
package target

var registry = map[string]func() error{}

// Register records a constructor and reports whether it replaced an
// earlier one.
func Register(name string, f func() error) bool {
	_, dup := registry[name]
	registry[name] = f
	return dup
}

// Package-level declarations run before main: fine.
var _ = Register("decl", nil)

func init() {
	Register("init", nil) // init runs at program start: fine
}

// Late registers from ordinary runtime code: flagged.
func Late() {
	Register("late", nil) // want `registry: target\.Register called outside init`
}

func init() {
	// A closure may run any time, even one built inside init.
	go func() {
		Register("closure", nil) // want `registry: target\.Register called outside init`
	}()
}

// Reload re-registers behind an operator action, with the reason on
// record.
func Reload() {
	//xmlint:allow registry -- fixture: operator-driven reload replaces a target deliberately
	Register("reload", nil)
}
