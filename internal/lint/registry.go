package lint

import (
	"go/ast"
	"go/types"
)

// RegistryAnalyzer enforces inventory completeness: the plug-in
// registries (execution targets, plan strategies, record codecs) must
// be fully populated by the time main starts, because discovery
// surfaces (xmfuzz -list, NewCodec/New error messages) and checkpoint
// validation all treat the registry as the complete universe. That
// holds exactly when every Register* call runs from an init function or
// a package-level variable initialiser — never from arbitrary runtime
// code, where a registration could race a lookup or depend on call
// order.
var RegistryAnalyzer = &Analyzer{
	Name: "registry",
	Doc:  "target/plan/codec registration must happen in init or package-level declarations",
	Run:  runRegistry,
}

// registrars maps the internal/<name> package to its registration
// functions.
var registrars = map[string]map[string]bool{
	"target": {"Register": true},
	"testgen": {
		"RegisterStrategy":    true,
		"RegisterPlanFactory": true,
		"RegisterHeaderPlan":  true,
	},
	"campaign": {"RegisterCodec": true},
}

func runRegistry(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				// Package-level var initialisers run before init: fine.
				continue
			case *ast.FuncDecl:
				atStart := d.Recv == nil && d.Name.Name == "init"
				if d.Body == nil {
					continue
				}
				ast.Inspect(d.Body, func(n ast.Node) bool {
					if _, isLit := n.(*ast.FuncLit); isLit {
						// A closure may run any time, even one built inside
						// init — registrations inside it escape program start.
						pass.flagRegistrations(n)
						return false
					}
					if call, ok := n.(*ast.CallExpr); ok {
						pass.checkRegistration(call, atStart)
					}
					return true
				})
			}
		}
	}
	return nil
}

// flagRegistrations walks a subtree in which no registration can be
// valid (function literals) and reports every registrar call.
func (p *Pass) flagRegistrations(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			p.checkRegistration(call, false)
		}
		return true
	})
}

// checkRegistration reports the call if it resolves to a registrar and
// the context is not program start.
func (p *Pass) checkRegistration(call *ast.CallExpr, atStart bool) {
	if atStart {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Same-package calls (RegisterCodec inside campaign) arrive as
		// plain idents.
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg() != p.Pkg {
			return
		}
		if registrars[internalPackageName(fn.Pkg().Path())][fn.Name()] {
			p.reportRegistration(call, fn)
		}
		return
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if registrars[internalPackageName(fn.Pkg().Path())][fn.Name()] {
		p.reportRegistration(call, fn)
	}
}

func (p *Pass) reportRegistration(call *ast.CallExpr, fn *types.Func) {
	p.Reportf(call.Pos(), "%s.%s called outside init or a package-level declaration — registries must be complete at program start so inventories, checkpoints, and discovery surfaces agree on the full set",
		fn.Pkg().Name(), fn.Name())
}
