package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolEndToEnd exercises the whole delivery path, not just the
// analyzers: build cmd/xmlint, then let the real go command drive it
// through `go vet -vettool` over a scratch module — once with a seeded
// violation (a time.Now call in an internal/testgen package), which
// must fail naming the determinism invariant, and once clean, which
// must pass.
func TestVetToolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds cmd/xmlint and shells out to go vet")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "xmlint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/xmlint")
	build.Dir = repoRoot
	build.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building xmlint: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	vet := func() (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
		cmd.Dir = mod
		cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	write("go.mod", "module scratch\n\ngo 1.24\n")
	write("internal/testgen/gen.go", `package testgen

import "time"

// Stamp is the seeded violation: a wall-clock read inside a
// deterministic package.
func Stamp() int64 { return time.Now().UnixNano() }
`)
	out, err := vet()
	if err == nil {
		t.Fatalf("go vet passed over a time.Now call in internal/testgen; want a determinism failure\n%s", out)
	}
	if !strings.Contains(out, "determinism") || !strings.Contains(out, "time.Now") {
		t.Fatalf("go vet failed, but not with a diagnostic naming the determinism invariant:\n%s", out)
	}

	write("internal/testgen/gen.go", `package testgen

// Stamp is deterministic now.
func Stamp() int64 { return 42 }
`)
	if out, err := vet(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}
