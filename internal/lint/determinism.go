package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces the repository's first invariant:
// fixed-seed campaigns are byte-reproducible end to end. Inside the
// deterministic packages — everything between plan generation and the
// merged campaign log — it forbids the ambient-nondeterminism entry
// points (wall-clock reads, the process environment, the unseeded
// global math/rand source) and flags map iteration that feeds an
// order-sensitive sink (encoder, writer, hash) without an intervening
// sort. Legitimate wall-clock code in these packages (lease deadlines,
// latency histograms) carries an //xmlint:allow determinism annotation.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, environment, unseeded math/rand, and map-order-dependent serialisation in the deterministic packages",
	Run:  runDeterminism,
}

// deterministicPackages are the internal/<name> packages on the
// fixed-seed reproducibility path: every byte they produce must be a
// pure function of (plan, seed, target).
var deterministicPackages = map[string]bool{
	"testgen":  true,
	"campaign": true,
	"corpus":   true,
	"inject":   true,
	"cover":    true,
	"target":   true,
	"analysis": true,
	"report":   true,
	"store":    true,
}

// forbiddenFuncs maps package path -> function name -> short reason.
// Any reference (call or value) resolves through the type checker, so
// aliasing the import does not hide a use.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
	},
}

// randConstructors are the math/rand functions that build a seeded
// source instead of touching the package-global one; everything else at
// package level draws from the unseeded global and is forbidden.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// orderSensitiveSinks are method names whose call inside a map-range
// body makes the iteration order observable: stream writers, encoders,
// and hashes. Plain append-then-sort loops call none of these.
var orderSensitiveSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "AppendEncode": true, "Marshal": true,
	"Sum": true, "Sum32": true, "Sum64": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runDeterminism(pass *Pass) error {
	if !deterministicPackages[internalPackageName(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pass.checkForbiddenRef(n)
			case *ast.RangeStmt:
				pass.checkMapRange(n)
			}
			return true
		})
	}
	return nil
}

// checkForbiddenRef flags references to the forbidden functions and to
// the unseeded math/rand globals.
func (p *Pass) checkForbiddenRef(sel *ast.SelectorExpr) {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if why, ok := forbiddenFuncs[path][name]; ok {
		p.Reportf(sel.Pos(), "%s.%s %s — fixed-seed campaigns must be byte-reproducible; derive the value from (plan, seed, target) or annotate %s determinism -- <reason>",
			path, name, why, allowPrefix)
		return
	}
	if path == "math/rand" || path == "math/rand/v2" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[name] {
			p.Reportf(sel.Pos(), "%s.%s draws from the unseeded global source — build a seeded generator (rand.New(rand.NewSource(seed)) or testgen.SplitMix64) so runs replay",
				path, name)
		}
	}
}

// checkMapRange flags a range over a map whose body calls an
// order-sensitive sink: whatever those calls produce depends on Go's
// randomised map iteration order, which no fixed seed controls.
func (p *Pass) checkMapRange(rng *ast.RangeStmt) {
	if _, ok := p.Info.TypeOf(rng.X).Underlying().(*types.Map); !ok {
		return
	}
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !orderSensitiveSinks[sel.Sel.Name] {
			return true
		}
		reported = true
		p.Reportf(rng.Pos(), "map iteration feeds the order-sensitive sink %s on line %d — map order is randomised per run; collect and sort the keys first",
			sel.Sel.Name, p.Fset.Position(call.Pos()).Line)
		return false
	})
}
