package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsNilAnalyzer enforces the observability off-path contract from two
// sides. Inside internal/obs: every exported method on an exported
// handle type with a pointer receiver must begin with a nil-receiver
// guard (or delegate to a guarded sibling), so a nil handle is a no-op
// by construction. Outside obs: call sites must not re-check handles
// for nil before calling methods on them — the contract IS the receiver
// guard, and a second check at every site would creep conditional
// wiring back into the hot path the one-nil-check invariant keeps flat.
var ObsNilAnalyzer = &Analyzer{
	Name: "obsnil",
	Doc:  "obs handle methods must nil-guard their receiver; callers must not pre-check handles for nil",
	Run:  runObsNil,
}

// obsPackage is the internal/<name> package holding the observability
// handles.
const obsPackage = "obs"

func runObsNil(pass *Pass) error {
	if internalPackageName(pass.Pkg.Path()) == obsPackage {
		pass.checkObsGuards()
		return nil
	}
	pass.checkObsPreChecks()
	return nil
}

// --- inside obs: receiver guards ----------------------------------------

func (p *Pass) checkObsGuards() {
	for _, f := range p.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recvName, typeName, isPtr := receiverInfo(fd)
			if !isPtr || typeName == "" || !token.IsExported(typeName) {
				continue // value receivers cannot be nil; unexported types are internal plumbing
			}
			if recvName == "" || recvName == "_" {
				continue // receiver unused: trivially nil-safe
			}
			if beginsWithNilGuard(fd.Body, recvName) || delegatesToReceiver(fd.Body, recvName) {
				continue
			}
			p.Reportf(fd.Name.Pos(), "exported method (*%s).%s does not begin with a nil-receiver guard — obs handles promise \"nil is off\", so every exported method must start with `if %s == nil` (or delegate to a guarded method on %s)",
				typeName, fd.Name.Name, recvName, recvName)
		}
	}
}

// receiverInfo extracts the receiver's name, base type name, and
// pointer-ness from a method declaration.
func receiverInfo(fd *ast.FuncDecl) (recvName, typeName string, isPtr bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		isPtr = true
		t = star.X
	}
	// Generic receivers (T[P]) do not occur in obs; plain ident only.
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName, isPtr
}

// beginsWithNilGuard reports whether the body's first statement is
// `if recv == nil { ...; return }` — possibly `recv == nil || more` —
// with the guard body ending in a return.
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if !condChecksNil(ifs.Cond, recv) {
		return false
	}
	n := len(ifs.Body.List)
	if n == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[n-1].(*ast.ReturnStmt)
	return isReturn
}

// condChecksNil reports whether cond is `recv == nil`, or an || chain
// whose leftmost operand is.
func condChecksNil(cond ast.Expr, recv string) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op == token.LOR {
		return condChecksNil(be.X, recv)
	}
	if be.Op != token.EQL {
		return false
	}
	return (isIdentNamed(be.X, recv) && isNil(be.Y)) || (isIdentNamed(be.Y, recv) && isNil(be.X))
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// delegatesToReceiver reports whether the body is a single statement
// calling another method on the same receiver (Counter.Inc -> c.Add(1)):
// the guard then lives in the callee, and requiring a second one here
// would only duplicate it.
func delegatesToReceiver(body *ast.BlockStmt, recv string) bool {
	if len(body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := body.List[0].(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			call, _ = s.Results[0].(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && isIdentNamed(sel.X, recv)
}

// --- outside obs: redundant pre-checks ----------------------------------

// checkObsPreChecks flags `if h != nil { h.M(); ... }` where h is an
// obs handle used only as a method-call receiver inside the body. Field
// access (eo.Obs.Trace) or passing the handle on keeps the check
// legitimate, and so does an argument that itself does work — in
// `if h != nil { h.Observe(float64(time.Since(t0))) }` the guard is the
// invariant's own one nil check, skipping the wall-clock read when obs
// is off. Only the pure pre-check pattern trips: every use a method
// call, every argument free of calls (closure literals passed as
// arguments do not run at call time and do not count).
func (p *Pass) checkObsPreChecks() {
	for _, f := range p.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || ifs.Else != nil {
				return true
			}
			handle := p.obsNilCheckOperand(ifs.Cond)
			if handle == nil {
				return true
			}
			if !p.usedOnlyAsCallReceiver(ifs.Body, handle) {
				return true
			}
			p.Reportf(ifs.Pos(), "redundant nil pre-check before calling methods on %s (%s): obs handle methods nil-guard their own receiver — call unconditionally, the nil case is a no-op",
				types.ExprString(handle), p.Info.TypeOf(handle))
			return true
		})
	}
}

// obsNilCheckOperand returns the expression x when cond is exactly
// `x != nil` (either order) and x's type is a pointer to a named type
// declared in internal/obs; nil otherwise.
func (p *Pass) obsNilCheckOperand(cond ast.Expr) ast.Expr {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return nil
	}
	var x ast.Expr
	switch {
	case isNil(be.Y):
		x = be.X
	case isNil(be.X):
		x = be.Y
	default:
		return nil
	}
	ptr, ok := p.Info.TypeOf(x).(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if internalPackageName(named.Obj().Pkg().Path()) != obsPackage {
		return nil
	}
	return x
}

// usedOnlyAsCallReceiver reports whether every occurrence of handle
// inside body is the receiver of a method call (h.M(...)), with at
// least one such occurrence. The comparison is textual over the
// canonical expression string, which identifies both plain idents and
// stable selector chains like s.cfg.Obs.
func (p *Pass) usedOnlyAsCallReceiver(body *ast.BlockStmt, handle ast.Expr) bool {
	want := types.ExprString(handle)
	uses, calls := 0, 0
	ast.Inspect(body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || types.ExprString(e) != want {
			return true
		}
		uses++
		return false // occurrences nested inside an occurrence are the same expression
	})
	argWork := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && types.ExprString(sel.X) == want {
			if _, isMethod := p.Info.Selections[sel]; isMethod {
				calls++
				if p.argsDoWork(call) {
					argWork = true
				}
			}
		}
		return true
	})
	return uses > 0 && uses == calls && !argWork
}

// argsDoWork reports whether any argument of call contains a real
// function call of its own — then the pre-check is doing cost work
// (skipping a wall-clock read, a classification) and stands as the
// invariant's one nil check. Type conversions and the len/cap builtins
// are free and do not count; neither do calls inside closure literals,
// which do not run at call time.
func (p *Pass) argsDoWork(call *ast.CallExpr) bool {
	work := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			switch c := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if p.freeCall(c) {
					return true // recurse: a conversion may wrap a real call
				}
				work = true
				return false
			}
			return !work
		})
	}
	return work
}

// freeCall reports whether call is a type conversion or a len/cap
// builtin — forms that cost nothing at run time.
func (p *Pass) freeCall(call *ast.CallExpr) bool {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			return b.Name() == "len" || b.Name() == "cap"
		}
	}
	return false
}
