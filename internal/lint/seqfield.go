package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// SeqFieldAnalyzer cross-checks the two record codec paths. The json
// codec renders campaign.JSONRecord by reflection over struct tags; the
// raw codec reproduces those bytes with hand-written encode/decode
// functions. A field added to the struct but not to the hand-written
// path would silently fork the wire format — the byte-identical
// guarantee the codec registry promises (and the merge/resume machinery
// relies on) would drift without a test failing until the exact field
// was populated. The analyzer therefore requires every eligible field
// of the record structs to be (a) referenced by the raw encoder and
// (b) named by a key case in the raw decoder.
var SeqFieldAnalyzer = &Analyzer{
	Name: "seqfield",
	Doc:  "every JSONRecord (and nested codec struct) field must be handled by both the json and raw codec paths",
	Run:  runSeqField,
}

// codecStructChecks describes one struct/codec-path pairing: where the
// struct comes from, and which functions must cover its fields.
type codecStructCheck struct {
	// structName resolves in the campaign package scope ("" when the
	// struct is reached through fieldOf instead).
	structName string
	// fieldOf/field: resolve the struct as the pointee of this
	// JSONRecord field (for nested structs owned by other packages,
	// like inject.Injection).
	fieldOf string
	// encodeFn must reference every field as a selector.
	encodeFn string
	// decodeFn must name every field's json key in a case clause.
	decodeFn string
}

var codecStructChecks = []codecStructCheck{
	{structName: "JSONRecord", encodeFn: "rawAppendRecord", decodeFn: "rawDecodeRecord"},
	{structName: "JSONHMEvent", encodeFn: "rawAppendHMEvent", decodeFn: "hmEvent"},
	{fieldOf: "Divergence", encodeFn: "rawAppendRecord", decodeFn: "divergenceVal"},
	{fieldOf: "Injection", encodeFn: "rawAppendRecord", decodeFn: "injectionVal"},
}

func runSeqField(pass *Pass) error {
	if internalPackageName(pass.Pkg.Path()) != "campaign" {
		return nil
	}
	scope := pass.Pkg.Scope()
	recObj := scope.Lookup("JSONRecord")
	if recObj == nil {
		return nil // not the codec-bearing campaign package (partial fixture)
	}
	recStruct, ok := recObj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}

	for _, chk := range codecStructChecks {
		var st *types.Struct
		var typeName string
		switch {
		case chk.structName != "":
			obj := scope.Lookup(chk.structName)
			if obj == nil {
				continue
			}
			st, _ = obj.Type().Underlying().(*types.Struct)
			typeName = chk.structName
		default:
			st, typeName = pointeeStruct(recStruct, chk.fieldOf)
		}
		if st == nil {
			continue
		}
		encFn := findFuncDecl(pass, chk.encodeFn)
		decFn := findFuncDecl(pass, chk.decodeFn)
		if encFn == nil || decFn == nil {
			continue // the raw codec seam moved; the golden tests will say so
		}
		pass.checkCodecStruct(typeName, st, encFn, decFn, chk)
	}
	return nil
}

// pointeeStruct resolves rec's named field as *T and returns T's
// underlying struct and name.
func pointeeStruct(rec *types.Struct, field string) (*types.Struct, string) {
	for i := 0; i < rec.NumFields(); i++ {
		if rec.Field(i).Name() != field {
			continue
		}
		ptr, ok := rec.Field(i).Type().(*types.Pointer)
		if !ok {
			return nil, ""
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			return nil, ""
		}
		st, _ := named.Underlying().(*types.Struct)
		return st, named.Obj().Name()
	}
	return nil, ""
}

// findFuncDecl finds a package-level function or method by name in the
// package's non-test files.
func findFuncDecl(pass *Pass, name string) *ast.FuncDecl {
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// checkCodecStruct verifies each eligible field of st against the
// encode and decode functions.
func (p *Pass) checkCodecStruct(typeName string, st *types.Struct, encFn, decFn *ast.FuncDecl, chk codecStructCheck) {
	caseKeys := decodeCaseKeys(decFn)
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() {
			continue
		}
		jsonName := jsonTagName(st.Tag(i), field.Name())
		if jsonName == "-" {
			continue
		}
		if !encoderReferences(p, encFn, field) {
			p.Reportf(fieldPos(encFn, field), "field %s.%s (json %q) is not referenced by the raw encoder %s — the raw codec must emit byte-identical wire bytes to encoding/json, so every field needs a hand-written encode arm",
				typeName, field.Name(), jsonName, chk.encodeFn)
		}
		if !caseKeys[jsonName] {
			p.Reportf(fieldPos(decFn, field), "json key %q (field %s.%s) has no case in the raw decoder %s — unknown keys fall back to encoding/json per line, silently costing the allocation-free path",
				jsonName, typeName, field.Name(), chk.decodeFn)
		}
	}
}

// fieldPos anchors a diagnostic at the field's declaration when the
// type checker knows it (same package, or export data carrying
// positions), else at the codec function that misses it.
func fieldPos(fallback *ast.FuncDecl, field *types.Var) token.Pos {
	if pos := field.Pos(); pos.IsValid() {
		return pos
	}
	return fallback.Pos()
}

// encoderReferences reports whether fn's body selects the given struct
// field anywhere (rec.Field, inj.Field, ...), resolved through the type
// checker's selections so renamed locals still count.
func encoderReferences(p *Pass, fn *ast.FuncDecl, field *types.Var) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if selObj, ok := p.Info.Selections[sel]; ok && selObj.Obj() == field {
			found = true
			return false
		}
		// Uses covers qualified and non-selection paths.
		if obj, ok := p.Info.Uses[sel.Sel]; ok && obj == field {
			found = true
			return false
		}
		return true
	})
	return found
}

// decodeCaseKeys collects the string literals of every case clause in
// fn's body — the decoder's key dispatch.
func decodeCaseKeys(fn *ast.FuncDecl) map[string]bool {
	keys := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if lit, ok := e.(*ast.BasicLit); ok {
				if s, err := strconv.Unquote(lit.Value); err == nil {
					keys[s] = true
				}
			}
		}
		return true
	})
	return keys
}

// jsonTagName extracts the json key for a field (tag name, or the field
// name when untagged, mirroring encoding/json).
func jsonTagName(tag, fieldName string) string {
	j := reflect.StructTag(tag).Get("json")
	name, _, _ := strings.Cut(j, ",")
	if name == "" {
		return fieldName
	}
	return name
}
