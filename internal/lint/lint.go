// Package lint is the repository's invariant lint suite: custom static
// analyzers that machine-check the cross-cutting contracts every PR has
// so far preserved by hand — fixed-seed campaigns are byte-reproducible
// (determinism), disabled observability costs one nil check on the hot
// path (obsnil), feature inventories are complete at program start
// (registry), and the raw codec cannot drift from the json wire format
// (seqfield).
//
// The suite runs as a go vet tool: cmd/xmlint speaks the go command's
// vet config protocol (see unit.go), so `go vet -vettool=$(xmlint) ./...`
// type-checks every package once, with export data the build cache
// already holds, and feeds it through Analyzers().
//
// golang.org/x/tools/go/analysis is deliberately not used: the module
// ships with zero dependencies, tools included, so the framework here is
// a minimal stdlib-only equivalent (an Analyzer runs over one
// type-checked package and reports position-anchored diagnostics).
//
// # Allowlist annotations
//
// A legitimate exception — wall-clock reads feeding lease deadlines or
// latency histograms, say — is suppressed in place, where reviewers see
// it, never in a central file that rots:
//
//	now: time.Now, //xmlint:allow determinism -- lease deadlines are wall-clock by design
//
// The annotation names the analyzers it silences and must carry a
// reason after " -- ". It covers diagnostics on its own line and on the
// line below (so it can sit above a long statement). Malformed and
// unused annotations are themselves diagnostics: the allowlist can only
// shrink or be argued for, never silently accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant check. Run inspects a single type-checked
// package through the Pass and reports violations; it returns an error
// only for internal failures (a nil error with zero reports means the
// package honours the invariant).
type Analyzer struct {
	// Name is the invariant's name, as printed in diagnostics and named
	// in //xmlint:allow annotations.
	Name string
	// Doc is the one-line contract statement shown by xmlint -flags
	// consumers and the README table.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is every parsed file of the package, test files included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos token.Pos
	// Analyzer names the invariant (or "allowlist" for annotation
	// hygiene findings from the driver itself).
	Analyzer string
	Message  string
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SourceFiles returns the package's non-test files. The invariants
// govern shipped code: tests legitimately read the clock, register
// fakes, and poke nil handles, so every analyzer works off this view.
func (p *Pass) SourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// Analyzers returns the full invariant suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DeterminismAnalyzer, ObsNilAnalyzer, RegistryAnalyzer, SeqFieldAnalyzer}
}

// internalPackageName extracts <name> from an import path of the form
// ".../internal/<name>" (or "internal/<name>"), the layout both the
// repository and the lint fixtures use. Any other shape returns "".
func internalPackageName(path string) string {
	i := strings.LastIndex(path, "/")
	if i < 0 {
		return ""
	}
	base := path[i+1:]
	parent := path[:i]
	if parent == "internal" || strings.HasSuffix(parent, "/internal") {
		return base
	}
	return ""
}

// --- allowlist annotations ----------------------------------------------

// allowPrefix starts every in-source allowlist annotation.
const allowPrefix = "//xmlint:allow"

// allowance is one parsed //xmlint:allow annotation.
type allowance struct {
	pos       token.Pos
	file      string
	line      int
	analyzers map[string]bool
	used      bool
}

// parseAllowances collects the //xmlint:allow annotations of the given
// files, reporting malformed ones (and names of unknown analyzers) as
// "allowlist" diagnostics. known is the set of valid analyzer names.
func parseAllowances(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*allowance, []Diagnostic) {
	var allows []*allowance
	var diags []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: pos, Analyzer: "allowlist", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //xmlint:allowed — not ours
				}
				names, reason, ok := strings.Cut(rest, " -- ")
				if !ok || strings.TrimSpace(reason) == "" {
					bad(c.Pos(), `allowlist annotation needs a reason: "%s <analyzer> -- <why this exception is legitimate>"`, allowPrefix)
					continue
				}
				a := &allowance{
					pos:       c.Pos(),
					file:      fset.Position(c.Pos()).Filename,
					line:      fset.Position(c.Pos()).Line,
					analyzers: map[string]bool{},
				}
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					if !known[n] {
						bad(c.Pos(), "allowlist annotation names unknown analyzer %q (have %s)", n, strings.Join(sortedKeys(known), ", "))
						continue
					}
					a.analyzers[n] = true
				}
				if len(a.analyzers) == 0 {
					bad(c.Pos(), "allowlist annotation names no analyzer: %q", c.Text)
					continue
				}
				allows = append(allows, a)
			}
		}
	}
	return allows, diags
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// covers reports whether the allowance suppresses a diagnostic from the
// named analyzer at file:line. An annotation covers its own line and
// the line below it.
func (a *allowance) covers(analyzer, file string, line int) bool {
	return a.analyzers[analyzer] && a.file == file && (a.line == line || a.line == line-1)
}

// RunPackage runs the analyzers over one type-checked package, applies
// the allowlist annotations of its non-test files, and returns the
// surviving diagnostics sorted by position. Annotation hygiene findings
// (malformed or unused allowances) ride along under the "allowlist"
// name.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}

	// Allowances live in shipped code only: a test file has no
	// diagnostics to suppress (analyzers skip it), so an annotation
	// there would be dead weight.
	srcFiles := (&Pass{Fset: fset, Files: files}).SourceFiles()
	allows, allowDiags := parseAllowances(fset, srcFiles, known)

	kept := diags[:0]
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		suppressed := false
		for _, a := range allows {
			if a.covers(d.Analyzer, posn.Filename, posn.Line) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	diags = append(kept, allowDiags...)
	for _, a := range allows {
		if !a.used {
			diags = append(diags, Diagnostic{Pos: a.pos, Analyzer: "allowlist",
				Message: "unused allowlist annotation: nothing on this or the next line trips the named analyzer — delete it"})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}
