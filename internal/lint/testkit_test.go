package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// This file is the suite's stdlib-only equivalent of
// golang.org/x/tools/go/analysis/analysistest. Each analyzer owns a
// fixture module under testdata/<analyzer>/ whose sources carry
// want comments — `// want` followed by backquoted regexps — naming the
// diagnostics the marked line must produce; patterns match against
// "analyzer: message". A
// diagnostic with no matching want, or a want with no diagnostic, fails
// the test — so the fixtures pin positives, negatives, and allowlist
// suppression in one place.

func TestDeterminismFixture(t *testing.T) { runFixture(t, DeterminismAnalyzer) }
func TestObsNilFixture(t *testing.T)      { runFixture(t, ObsNilAnalyzer) }
func TestRegistryFixture(t *testing.T)    { runFixture(t, RegistryAnalyzer) }
func TestSeqFieldFixture(t *testing.T)    { runFixture(t, SeqFieldAnalyzer) }

func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", a.Name))
	if err != nil {
		t.Fatal(err)
	}
	fset, pkgs := loadFixture(t, dir)
	for _, lp := range pkgs {
		diags, err := RunPackage(fset, lp.files, lp.pkg, lp.info, []*Analyzer{a})
		if err != nil {
			t.Fatalf("%s: RunPackage: %v", lp.pkg.Path(), err)
		}
		matchWants(t, fset, lp.files, diags)
	}
}

// --- want-comment matching ----------------------------------------------

type wantKey struct {
	file string
	line int
}

// matchWants compares the diagnostics of one package against the
// `// want` comments of its files, line by line.
func matchWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []Diagnostic) {
	t.Helper()
	type pending struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[wantKey][]*pending{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, posn, rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pat, err)
					}
					k := wantKey{posn.Filename, posn.Line}
					wants[k] = append(wants[k], &pending{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		text := d.Analyzer + ": " + d.Message
		found := false
		for _, p := range wants[wantKey{posn.Filename, posn.Line}] {
			if !p.matched && p.re.MatchString(text) {
				p.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", posn, text)
		}
	}
	for k, ps := range wants {
		for _, p := range ps {
			if !p.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, p.re)
			}
		}
	}
}

// splitPatterns parses the backquoted regexps after a `// want` marker.
func splitPatterns(t *testing.T, posn token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '`' {
			t.Fatalf("%s: want patterns must be backquoted: %q", posn, s)
		}
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern: %q", posn, s)
		}
		pats = append(pats, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	return pats
}

// --- fixture loading ----------------------------------------------------

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
}

type loadedPackage struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loadFixture loads the fixture module rooted at dir the same way the
// vet tool sees real packages: `go list -export -deps` compiles every
// dependency to export data (offline — the build cache holds the
// stdlib), then each fixture package is parsed and type-checked from
// source with its dependencies imported from that export data.
func loadFixture(t *testing.T, dir string) (*token.FileSet, []loadedPackage) {
	t.Helper()
	cmd := exec.Command("go", "list", "-export", "-deps", "-json", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list %s: %v\n%s", dir, err, stderr.String())
	}

	exports := map[string]string{}
	var fixture []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			fixture = append(fixture, p)
		}
	}

	fset := token.NewFileSet()
	compImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []loadedPackage
	for _, p := range fixture {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing fixture: %v", err)
			}
			files = append(files, f)
		}
		importMap := p.ImportMap
		tc := &types.Config{
			Importer: importerFunc(func(importPath string) (*types.Package, error) {
				path, ok := importMap[importPath]
				if !ok {
					path = importPath
				}
				if path == "unsafe" {
					return types.Unsafe, nil
				}
				return compImporter.Import(path)
			}),
			Sizes: types.SizesFor("gc", build.Default.GOARCH),
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		pkg, err := tc.Check(p.ImportPath, fset, files, info)
		if err != nil {
			t.Fatalf("typechecking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, loadedPackage{files: files, pkg: pkg, info: info})
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s lists no packages", dir)
	}
	return fset, pkgs
}
