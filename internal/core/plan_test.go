package core

import (
	"path/filepath"
	"strings"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/campaign"
)

// reducedOpts restricts the campaign to a few fast hypercalls.
func reducedOpts(plan string, seed int64) campaign.Options {
	keep := map[string]bool{
		"XM_reset_system": true, "XM_set_timer": true,
		"XM_get_time": true, "XM_multicall": true,
	}
	h := apispec.Default()
	for i := range h.Functions {
		if !keep[h.Functions[i].Name] {
			h.Functions[i].Tested = "NO"
		}
	}
	return campaign.Options{Header: h, Plan: plan, Seed: seed, Workers: 2}
}

// TestStreamedPairwisePlanReportsCoverage: a pairwise campaign must report
// full value-pair coverage and a reduced test count, and the analysis
// must cover exactly the plan's tests.
func TestStreamedPairwisePlanReportsCoverage(t *testing.T) {
	rep, err := RunCampaignStream(reducedOpts("pairwise", 0), campaign.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan.Strategy != "pairwise" {
		t.Fatalf("plan = %q", rep.Plan.Strategy)
	}
	if rep.Plan.PairCoverage() != 1 {
		t.Fatalf("pair coverage = %v", rep.Plan.PairCoverage())
	}
	// Eq. 1 for the reduced spec: 5 + 20 + 15 + 9.
	if rep.Plan.Exhaustive != 49 {
		t.Fatalf("Eq. 1 = %d, want 49", rep.Plan.Exhaustive)
	}
	if rep.Plan.Tests >= 49 || rep.Plan.Tests != rep.Total {
		t.Fatalf("pairwise ran %d of %d tests (report total %d)", rep.Plan.Tests, rep.Plan.Exhaustive, rep.Total)
	}
	tests := 0
	for _, n := range rep.TestsByFunc {
		tests += n
	}
	if tests != rep.Total {
		t.Fatalf("analysis covered %d tests, plan has %d", tests, rep.Total)
	}
	// XM_reset_system's unexpected resets surface under any plan that
	// injects its boundary values — pairwise keeps every 1-param value.
	found := false
	for _, iss := range rep.Issues {
		if iss.Func == "XM_reset_system" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pairwise campaign lost the XM_reset_system issues: %+v", rep.Issues)
	}
}

// TestStreamedPlanResumeMismatchSurfaces: the engine's plan-fingerprint
// refusal must reach RunCampaignStream callers verbatim.
func TestStreamedPlanResumeMismatchSurfaces(t *testing.T) {
	dir := t.TempDir()
	eo := campaign.EngineOptions{
		ShardDir:       dir,
		CheckpointPath: filepath.Join(dir, "checkpoint.jsonl"),
		Limit:          3,
	}
	if _, err := RunCampaignStream(reducedOpts("boundary", 0), eo); err != nil {
		t.Fatal(err)
	}
	eo.Limit = 0
	eo.Resume = true
	_, err := RunCampaignStream(reducedOpts("rand:5", 1), eo)
	if err == nil {
		t.Fatal("resume under a different plan accepted")
	}
	for _, want := range []string{"boundary", "rand:5", "fingerprint"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
	// Matching plan resumes and reports over the whole campaign.
	rep, err := RunCampaignStream(reducedOpts("boundary", 0), eo)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 3 || rep.Executed != rep.Total-3 {
		t.Fatalf("resume skipped %d / executed %d of %d", rep.Skipped, rep.Executed, rep.Total)
	}
}

// TestEagerCampaignHonoursPlan: the eager pipeline generates through the
// same plan layer.
func TestEagerCampaignHonoursPlan(t *testing.T) {
	rep, err := RunCampaign(reducedOpts("rand:12", 99))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 12 || rep.Plan.Tests != 12 {
		t.Fatalf("rand:12 executed %d tests (plan says %d)", len(rep.Results), rep.Plan.Tests)
	}
	if rep.Plan.Strategy != "rand:12" {
		t.Fatalf("plan = %q", rep.Plan.Strategy)
	}
	if _, err := RunCampaign(reducedOpts("nope", 0)); err == nil {
		t.Fatal("unknown plan accepted")
	}
}
