package core

import (
	"sync"
	"testing"

	"xmrobust/internal/analysis"
	"xmrobust/internal/campaign"
	"xmrobust/internal/xm"
)

// The full campaign takes a few seconds; share one legacy and one patched
// run across the whole test package.
var (
	legacyOnce sync.Once
	legacyRep  *CampaignReport
	legacyErr  error

	patchedOnce sync.Once
	patchedRep  *CampaignReport
	patchedErr  error
)

func legacyCampaign(t *testing.T) *CampaignReport {
	t.Helper()
	legacyOnce.Do(func() {
		legacyRep, legacyErr = RunCampaign(campaign.Options{})
	})
	if legacyErr != nil {
		t.Fatal(legacyErr)
	}
	return legacyRep
}

func patchedCampaign(t *testing.T) *CampaignReport {
	t.Helper()
	patchedOnce.Do(func() {
		patchedRep, patchedErr = RunCampaign(campaign.Options{Faults: xm.PatchedFaults()})
	})
	if patchedErr != nil {
		t.Fatal(patchedErr)
	}
	return patchedRep
}

// TestTableIIIReproduction is the headline result: the campaign reproduces
// the structure of the paper's Table III — same hypercall inventory, same
// tested selection, test counts within a few percent (exact per the
// DESIGN.md §4 targets), and the same issue distribution: 9 issues, three
// each in System Management, Time Management and Miscellaneous.
func TestTableIIIReproduction(t *testing.T) {
	rep := legacyCampaign(t)
	rows := rep.TableIII()

	type row struct{ total, tested, tests, issues int }
	want := map[xm.Category]row{
		xm.CatSystem:    {3, 2, 8, 3},
		xm.CatPartition: {10, 6, 256, 0},
		xm.CatTime:      {2, 2, 35, 3},
		xm.CatPlan:      {2, 1, 2, 0},
		xm.CatIPC:       {10, 8, 595, 0},
		xm.CatMemory:    {2, 1, 980, 0},
		xm.CatHM:        {5, 3, 58, 0},
		xm.CatTrace:     {5, 4, 428, 0},
		xm.CatInterrupt: {5, 4, 175, 0},
		xm.CatMisc:      {5, 3, 39, 3},
		xm.CatSparc:     {12, 5, 85, 0},
	}
	for _, r := range rows {
		if r.Category == "Total" {
			if r.TotalHypercalls != 61 || r.Tested != 39 || r.Tests != 2661 || r.Issues != 9 {
				t.Fatalf("totals = %+v, want 61/39/2661/9", r)
			}
			continue
		}
		w, ok := want[r.Category]
		if !ok {
			t.Errorf("unexpected category %q", r.Category)
			continue
		}
		if r.TotalHypercalls != w.total || r.Tested != w.tested ||
			r.Tests != w.tests || r.Issues != w.issues {
			t.Errorf("%s: got %d/%d/%d/%d, want %d/%d/%d/%d", r.Category,
				r.TotalHypercalls, r.Tested, r.Tests, r.Issues,
				w.total, w.tested, w.tests, w.issues)
		}
	}
}

// TestNineIssuesIdentity pins the nine §IV.C findings one by one.
func TestNineIssuesIdentity(t *testing.T) {
	rep := legacyCampaign(t)
	if len(rep.Issues) != 9 {
		t.Fatalf("issues = %d, want 9:\n%s", len(rep.Issues), analysis.Summary(rep.Issues))
	}
	type key struct {
		fn, reaction, blamed string
	}
	got := map[key]bool{}
	for _, iss := range rep.Issues {
		got[key{iss.Func, iss.Reaction, iss.Blamed}] = true
	}
	want := []key{
		{"XM_reset_system", analysis.ReactColdReset, "mode=2"},
		{"XM_reset_system", analysis.ReactColdReset, "mode=16"},
		{"XM_reset_system", analysis.ReactWarmReset, "mode=4294967295"},
		{"XM_set_timer", analysis.ReactKernelHalt, ""},
		{"XM_set_timer", analysis.ReactSimCrash, ""},
		{"XM_set_timer", analysis.ReactSilentOK, ""},
		{"XM_multicall", analysis.ReactKernelTrap, "startAddr"},
		{"XM_multicall", analysis.ReactOverrun, "endAddr"},
		{"XM_multicall", analysis.ReactOverrun, ""},
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing issue %+v\nfound:\n%s", w, analysis.Summary(rep.Issues))
		}
	}
}

// TestCRASHScaleTally pins the severity distribution of the failures.
func TestCRASHScaleTally(t *testing.T) {
	rep := legacyCampaign(t)
	counts := rep.VerdictCounts()
	if counts[analysis.Catastrophic] != 7 {
		t.Errorf("Catastrophic = %d, want 7 (3 resets + 2 halts + 2 sim crashes)", counts[analysis.Catastrophic])
	}
	if counts[analysis.Restart] != 4 {
		t.Errorf("Restart = %d, want 4 (multicall overruns)", counts[analysis.Restart])
	}
	if counts[analysis.Abort] != 2 {
		t.Errorf("Abort = %d, want 2 (multicall exceptions)", counts[analysis.Abort])
	}
	if counts[analysis.Silent] != 4 {
		t.Errorf("Silent = %d, want 4 (negative-interval successes)", counts[analysis.Silent])
	}
	if counts[analysis.Hindering] != 0 {
		t.Errorf("Hindering = %d, want 0", counts[analysis.Hindering])
	}
	if counts[analysis.Pass] != 2661-17 {
		t.Errorf("Pass = %d, want %d", counts[analysis.Pass], 2661-17)
	}
}

// TestPatchedKernelAblation: after the XM team's fixes the same campaign
// raises zero issues — the fault-removal outcome the paper reports per
// finding ("this service has now been revised…").
func TestPatchedKernelAblation(t *testing.T) {
	rep := patchedCampaign(t)
	if len(rep.Issues) != 0 {
		t.Fatalf("patched kernel raised %d issues:\n%s",
			len(rep.Issues), analysis.Summary(rep.Issues))
	}
	rows := rep.TableIII()
	last := rows[len(rows)-1]
	if last.Tests != 2661 || last.Issues != 0 {
		t.Fatalf("patched totals = %+v", last)
	}
	counts := rep.VerdictCounts()
	if counts[analysis.Pass] != 2661 {
		t.Fatalf("patched verdicts = %v, want all Pass", counts)
	}
}

// TestFailuresAccessor cross-checks Failures against the issue clusters.
func TestFailuresAccessor(t *testing.T) {
	rep := legacyCampaign(t)
	failures := rep.Failures()
	if len(failures) != 17 {
		t.Fatalf("failing tests = %d, want 17", len(failures))
	}
	caseCount := 0
	for _, iss := range rep.Issues {
		caseCount += len(iss.Cases)
	}
	if caseCount != len(failures) {
		t.Fatalf("issue cases = %d, failures = %d", caseCount, len(failures))
	}
}

// TestDatasetsRecorded verifies the report carries the generated suite.
func TestDatasetsRecorded(t *testing.T) {
	rep := legacyCampaign(t)
	if len(rep.Datasets) != 2661 || len(rep.Results) != 2661 || len(rep.Classified) != 2661 {
		t.Fatalf("sizes = %d/%d/%d", len(rep.Datasets), len(rep.Results), len(rep.Classified))
	}
}
