package core

import (
	"testing"

	"xmrobust/internal/campaign"
)

// TestFeedbackBeatsRand is the acceptance gate of the coverage-guided
// loop: at the same seed and budget, feedback:300 must discover strictly
// more kernel edges than rand:300 — otherwise the loop adds machinery
// without adding coverage. `make feedback-smoke` asserts the same
// property through the xmfuzz binary.
func TestFeedbackBeatsRand(t *testing.T) {
	if testing.Short() {
		t.Skip("two 300-test campaigns")
	}
	fb, err := RunCampaignStream(campaign.Options{Plan: "feedback:300", Seed: 1}, campaign.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := RunCampaignStream(campaign.Options{Plan: "rand:300", Seed: 1, Coverage: true}, campaign.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !fb.Coverage.Enabled || !rd.Coverage.Enabled {
		t.Fatalf("coverage not collected: feedback %v, rand %v", fb.Coverage.Enabled, rd.Coverage.Enabled)
	}
	if fb.Coverage.Edges <= rd.Coverage.Edges {
		t.Fatalf("feedback:300 found %d edges, rand:300 found %d — the loop must win strictly",
			fb.Coverage.Edges, rd.Coverage.Edges)
	}
	if fb.Coverage.Loop == nil || fb.Coverage.Loop.Corpus == 0 {
		t.Fatalf("feedback loop stats missing: %+v", fb.Coverage)
	}
	if rd.Coverage.Loop != nil {
		t.Fatal("rand campaign reports feedback-loop stats")
	}
}

// TestRunCampaignDynamicPlan exercises the eager facade over a feedback
// plan: the suite cannot be materialised up front, so RunCampaign streams
// it internally while keeping the eager report shape.
func TestRunCampaignDynamicPlan(t *testing.T) {
	rep, err := RunCampaign(campaign.Options{Plan: "feedback:40", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 40 || len(rep.Datasets) != 40 {
		t.Fatalf("results %d datasets %d, want 40", len(rep.Results), len(rep.Datasets))
	}
	for i, ds := range rep.Datasets {
		if ds.Func.Name == "" {
			t.Fatalf("dataset %d has no function", i)
		}
	}
	if !rep.Plan.Dynamic {
		t.Fatal("plan stats not flagged dynamic")
	}
	if !rep.Coverage.Enabled || rep.Coverage.Edges == 0 {
		t.Fatalf("coverage = %+v, want enabled with edges", rep.Coverage)
	}
	if len(rep.Classified) != 40 {
		t.Fatalf("classified %d results, want 40", len(rep.Classified))
	}
}

// TestCoverageOffByDefault pins the uninstrumented default: without
// Coverage (or a feedback plan) no result carries a map and the report's
// coverage section stays empty.
func TestCoverageOffByDefault(t *testing.T) {
	rep, err := RunCampaign(campaign.Options{Plan: "boundary"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage.Enabled {
		t.Fatal("coverage enabled without opting in")
	}
	for i, r := range rep.Results {
		if r.Cover != nil {
			t.Fatalf("result %d carries a coverage map", i)
		}
	}
}
