package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"xmrobust/internal/campaign"
)

// TestStreamReportMatchesEager runs the full streamed campaign — shards,
// checkpoint, an interruption a third of the way in and a resume — and
// requires the analysis to be indistinguishable from the eager pipeline's.
func TestStreamReportMatchesEager(t *testing.T) {
	eager := legacyCampaign(t)

	dir := t.TempDir()
	eo := campaign.EngineOptions{
		ShardDir:       dir,
		CheckpointPath: filepath.Join(dir, "checkpoint.jsonl"),
		Limit:          900,
	}
	if _, err := RunCampaignStream(campaign.Options{}, eo); err != nil {
		t.Fatal(err)
	}
	eo.Limit = 0
	eo.Resume = true
	rep, err := RunCampaignStream(campaign.Options{}, eo)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Total != len(eager.Results) || rep.Skipped != 900 {
		t.Fatalf("stream total=%d skipped=%d vs eager %d tests", rep.Total, rep.Skipped, len(eager.Results))
	}
	if !reflect.DeepEqual(rep.TableIII(), eager.TableIII()) {
		t.Fatalf("Table III diverged:\nstream: %+v\neager:  %+v", rep.TableIII(), eager.TableIII())
	}
	if !reflect.DeepEqual(rep.Verdicts, eager.VerdictCounts()) {
		t.Fatalf("verdict tally diverged:\nstream: %+v\neager:  %+v", rep.Verdicts, eager.VerdictCounts())
	}
	if len(rep.Issues) != len(eager.Issues) {
		t.Fatalf("issues: stream %d vs eager %d", len(rep.Issues), len(eager.Issues))
	}
	for i := range rep.Issues {
		a, b := rep.Issues[i], eager.Issues[i]
		if a.ID() != b.ID() || a.Verdict != b.Verdict || len(a.Cases) != len(b.Cases) {
			t.Fatalf("issue %d diverged:\nstream: %+v\neager:  %+v", i, a, b)
		}
	}
	if rep.HarnessErrors != 0 {
		t.Fatalf("harness errors = %d", rep.HarnessErrors)
	}
}

// TestStreamInMemoryMode: without shards the classification happens
// in-flight; the issue list must still match the eager pipeline.
func TestStreamInMemoryMode(t *testing.T) {
	eager := legacyCampaign(t)
	rep, err := RunCampaignStream(campaign.Options{}, campaign.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != len(eager.Issues) {
		t.Fatalf("issues: stream %d vs eager %d", len(rep.Issues), len(eager.Issues))
	}
	for i := range rep.Issues {
		if rep.Issues[i].ID() != eager.Issues[i].ID() {
			t.Fatalf("issue %d: %s vs %s", i, rep.Issues[i].ID(), eager.Issues[i].ID())
		}
	}
	if rep.Engine.Pool.Reused == 0 {
		t.Fatal("streamed campaign never recycled a machine")
	}
}
