package core

import (
	"errors"
	"sort"

	"xmrobust/internal/analysis"
	"xmrobust/internal/campaign"
)

// StreamReport is the outcome of a streamed campaign: the same analysis a
// CampaignReport carries, aggregated incrementally so nothing grows with
// the test count except the failure list. The raw execution logs live in
// the shard files, not in memory.
type StreamReport struct {
	// Total is the campaign size; Executed ran in this call; Skipped were
	// restored from a previous run's checkpoint.
	Total    int
	Executed int
	Skipped  int
	// HarnessErrors counts tests that failed in the harness rather than
	// the kernel (Result.RunErr set) — the campaign-error signal command
	// line tools gate their exit status on.
	HarnessErrors int
	// TestsByFunc counts executed tests per hypercall.
	TestsByFunc map[string]int
	// Verdicts tallies the CRASH scale over the whole campaign.
	Verdicts map[analysis.Verdict]int
	// Issues is the clustered issue list (paper Table III).
	Issues []analysis.Issue
	// Engine reports what the execution engine did.
	Engine campaign.EngineStats
}

// TableIII aggregates the streamed campaign into the paper's Table III
// rows.
func (r *StreamReport) TableIII() []CategoryStats {
	return tableIIIRows(r.TestsByFunc, r.Issues)
}

// tally folds one classified test into the aggregates.
func (r *StreamReport) tally(c analysis.Classified) {
	r.TestsByFunc[c.Result.Dataset.Func.Name]++
	r.Verdicts[c.Verdict]++
	if c.Result.RunErr != "" {
		r.HarnessErrors++
	}
}

// liteFailure strips the execution-log fields clustering no longer reads,
// so retained failures stay small.
func liteFailure(c analysis.Classified) analysis.Classified {
	c.Result.HMEvents = nil
	c.Result.Returns = nil
	c.Result.Resolved = nil
	return c
}

// RunCampaignStream executes the full pipeline through the streaming
// pooled engine. With a shard directory configured the analysis runs off
// the shard records after execution, so a resumed campaign reports over
// every test — the skipped ones included — and an interrupted-then-resumed
// campaign yields the same report as an uninterrupted one. Without shards
// the classification happens in-flight and only failures are retained.
func RunCampaignStream(opts campaign.Options, eo campaign.EngineOptions) (*StreamReport, error) {
	if eo.Resume && eo.ShardDir == "" {
		// Without shards the skipped tests' logs are unrecoverable and
		// the report would silently cover a fraction of the campaign.
		return nil, errors.New("core: resuming a campaign requires a shard directory")
	}
	datasets, ropts, err := campaign.GenerateSuite(opts)
	if err != nil {
		return nil, err
	}
	eo.Options = ropts
	rep := &StreamReport{
		Total:       len(datasets),
		TestsByFunc: map[string]int{},
		Verdicts:    map[analysis.Verdict]int{},
	}
	oracle := analysis.NewOracle(ropts.Faults)

	if eo.ShardDir == "" {
		type posFail struct {
			pos int
			c   analysis.Classified
		}
		var failures []posFail
		stats, err := campaign.Stream(datasets, eo, func(pos int, res campaign.Result) {
			c := analysis.Classify(res, oracle)
			rep.tally(c)
			if c.Verdict.Failure() {
				failures = append(failures, posFail{pos, liteFailure(c)})
			}
		})
		if err != nil {
			return nil, err
		}
		rep.Engine, rep.Executed, rep.Skipped = stats, stats.Executed, stats.Skipped
		// Cluster in campaign order so issue case lists and evidence stay
		// deterministic regardless of worker interleaving.
		sort.Slice(failures, func(a, b int) bool { return failures[a].pos < failures[b].pos })
		ordered := make([]analysis.Classified, len(failures))
		for i, f := range failures {
			ordered[i] = f.c
		}
		rep.Issues = analysis.Cluster(ordered)
		return rep, nil
	}

	stats, err := campaign.Stream(datasets, eo, nil)
	if err != nil {
		return nil, err
	}
	rep.Engine, rep.Executed, rep.Skipped = stats, stats.Executed, stats.Skipped
	// Analyse incrementally off the shard records so peak memory stays
	// proportional to the failure count, not the campaign size. Records
	// arrive in file order; the seen set drops interruption duplicates
	// (byte-identical copies), and failures are re-ordered by campaign
	// position before clustering for a deterministic issue list.
	type posFail struct {
		seq int
		c   analysis.Classified
	}
	var failures []posFail
	seen := make(map[int]bool, rep.Total)
	err = campaign.ScanShards(eo.ShardDir, func(rec campaign.JSONRecord) error {
		if seen[rec.Seq] {
			return nil
		}
		seen[rec.Seq] = true
		res, err := rec.Result(ropts.Header)
		if err != nil {
			return err
		}
		c := analysis.Classify(res, oracle)
		rep.tally(c)
		if c.Verdict.Failure() {
			failures = append(failures, posFail{rec.Seq, liteFailure(c)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(failures, func(a, b int) bool { return failures[a].seq < failures[b].seq })
	ordered := make([]analysis.Classified, len(failures))
	for i, f := range failures {
		ordered[i] = f.c
	}
	rep.Issues = analysis.Cluster(ordered)
	return rep, nil
}
