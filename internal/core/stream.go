package core

import (
	"errors"
	"sort"

	"xmrobust/internal/analysis"
	"xmrobust/internal/campaign"
	"xmrobust/internal/cover"
	"xmrobust/internal/testgen"
)

// StreamReport is the outcome of a streamed campaign: the same analysis a
// CampaignReport carries, aggregated incrementally so nothing grows with
// the test count except the clustered issue evidence. The raw execution
// logs live in the shard files, not in memory.
type StreamReport struct {
	// Plan quantifies the generation strategy: test count, Eq. 1 size,
	// value-pair coverage and the reduction factor.
	Plan testgen.PlanStats
	// Target names the execution backend the campaign ran on.
	Target string
	// Total is the campaign size; Executed ran in this call; Skipped were
	// restored from a previous run's checkpoint.
	Total    int
	Executed int
	Skipped  int
	// HarnessErrors counts tests that failed in the harness rather than
	// the kernel (Result.RunErr set) — the campaign-error signal command
	// line tools gate their exit status on.
	HarnessErrors int
	// TestsByFunc counts executed tests per hypercall.
	TestsByFunc map[string]int
	// Verdicts tallies the CRASH scale over the whole campaign.
	Verdicts map[analysis.Verdict]int
	// Issues is the clustered issue list (paper Table III).
	Issues []analysis.Issue
	// Divergences lists the diff-target disagreements (empty outside
	// diff campaigns).
	Divergences []DivergenceFinding
	// Coverage summarises the campaign's kernel edge coverage (zero
	// value when collection was off).
	Coverage CoverageStats
	// Injection is the SEU study of an inject-target campaign (nil when
	// nothing was injected).
	Injection *analysis.InjectionStudy
	// Engine reports what the execution engine did.
	Engine campaign.EngineStats
}

// TableIII aggregates the streamed campaign into the paper's Table III
// rows.
func (r *StreamReport) TableIII() []CategoryStats {
	return tableIIIRows(r.TestsByFunc, r.Issues)
}

// adopt copies the classifier's aggregates into the report and restores
// campaign order on the divergence list (results arrive in completion or
// file order).
func (r *StreamReport) adopt(cls *analysis.Classifier, clu *analysis.Clusterer) {
	r.TestsByFunc = cls.TestsByFunc
	r.Verdicts = cls.Verdicts
	r.HarnessErrors = cls.HarnessErrors
	r.Issues = clu.Issues()
	sort.Slice(r.Divergences, func(a, b int) bool { return r.Divergences[a].Seq < r.Divergences[b].Seq })
}

// RunCampaignStream executes the full pipeline through the streaming
// pooled engine: the plan generates datasets lazily, the engine streams
// them through the worker pool, and the analysis accumulators fold every
// result in as it lands — no layer retains the suite or the logs. With a
// shard directory configured the analysis runs off the shard records
// after execution, so a resumed campaign reports over every test — the
// skipped ones included — and an interrupted-then-resumed campaign yields
// the same report as an uninterrupted one. Without shards the
// classification happens in-flight and only the cluster evidence is
// retained.
func RunCampaignStream(opts campaign.Options, eo campaign.EngineOptions) (*StreamReport, error) {
	if eo.Resume && eo.ShardDir == "" {
		// Without shards the skipped tests' logs are unrecoverable and
		// the report would silently cover a fraction of the campaign.
		return nil, errors.New("core: resuming a campaign requires a shard directory")
	}
	plan, ropts, err := campaign.BuildPlan(opts)
	if err != nil {
		return nil, err
	}
	defer closePlan(plan)
	eo.Options = ropts
	rep := &StreamReport{Plan: testgen.Measure(plan), Target: ropts.Target, Total: plan.Len()}
	cls := analysis.NewClassifier(analysis.NewOracle(ropts.Faults))
	clu := analysis.NewClusterer()
	study := analysis.NewInjectionStudy()
	var agg cover.Map
	diverged := func(pos int, res campaign.Result) {
		if res.Divergence != nil {
			rep.Divergences = append(rep.Divergences, DivergenceFinding{
				Seq: pos, Dataset: res.Dataset.String(), Divergence: *res.Divergence,
			})
		}
	}

	if eo.ShardDir == "" {
		// In-flight analysis: the engine's collector goroutine feeds each
		// result straight into the accumulators and drops it.
		stats, err := campaign.StreamPlan(plan, eo, func(pos int, res campaign.Result) {
			if res.Cover != nil {
				agg.Merge(res.Cover)
			}
			diverged(pos, res)
			study.Add(res)
			clu.Add(pos, cls.Add(res))
		})
		if err != nil {
			return nil, err
		}
		rep.Engine, rep.Executed, rep.Skipped = stats, stats.Executed, stats.Skipped
		rep.adopt(cls, clu)
		rep.Coverage = coverageStats(plan, &agg)
		if !study.Empty() {
			rep.Injection = study
		}
		return rep, nil
	}

	stats, err := campaign.StreamPlan(plan, eo, nil)
	if err != nil {
		return nil, err
	}
	rep.Engine, rep.Executed, rep.Skipped = stats, stats.Executed, stats.Skipped
	// Analyse incrementally off the shard records so the report covers
	// resumed tests too. Records arrive in file order; the seen set drops
	// interruption duplicates (byte-identical copies), and the
	// accumulators keep memory proportional to the failure count, not the
	// campaign size.
	seen := make(map[int]bool, rep.Total)
	err = campaign.ScanShards(eo.ShardDir, func(rec campaign.JSONRecord) error {
		if seen[rec.Seq] {
			return nil
		}
		seen[rec.Seq] = true
		res, err := rec.Result(ropts.Header)
		if err != nil {
			return err
		}
		if res.Cover != nil {
			agg.Merge(res.Cover)
		}
		diverged(rec.Seq, res)
		study.Add(res)
		clu.Add(rec.Seq, cls.Add(res))
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.adopt(cls, clu)
	rep.Coverage = coverageStats(plan, &agg)
	if !study.Empty() {
		rep.Injection = study
	}
	return rep, nil
}
