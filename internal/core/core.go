// Package core is the toolset facade: it ties the API spec, the data-type
// dictionaries, the test generator, the campaign runner and the log
// analysis into the one-call workflow of paper Fig. 1 — Preparation, Test
// Generation and Execution, Log Analysis.
package core

import (
	"io"

	"xmrobust/internal/analysis"
	"xmrobust/internal/campaign"
	"xmrobust/internal/corpus"
	"xmrobust/internal/cover"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// CoverageStats summarises a campaign's kernel edge coverage. Enabled is
// false when collection was off (the zero value renders as nothing).
type CoverageStats struct {
	Enabled bool
	// Edges is the number of distinct kernel edges the whole campaign
	// exercised; Signature is the stable hash of that edge set.
	Edges     int
	Signature uint64
	// Loop carries the feedback plan's own accounting (corpus size,
	// seed schedule, edges-over-time curve); nil for static plans.
	Loop *corpus.Stats
}

// DivergenceFinding is one diff-target disagreement, located in the
// campaign: the new oracle class of the divergence-recording composite
// targets (model-vs-simulation disagreement).
type DivergenceFinding struct {
	Seq        int
	Dataset    string
	Divergence campaign.Divergence
}

// CampaignReport is the complete outcome of one robustness campaign.
type CampaignReport struct {
	Options     campaign.Options
	Plan        testgen.PlanStats
	Coverage    CoverageStats
	Datasets    []testgen.Dataset
	Results     []campaign.Result
	Classified  []analysis.Classified
	Issues      []analysis.Issue
	Divergences []DivergenceFinding
	// Injection is the SEU study of an inject-target campaign (nil when
	// nothing was injected).
	Injection *analysis.InjectionStudy
}

// RunCampaign executes the full pipeline with the given options (zero
// value: the paper's campaign — legacy kernel, default spec and
// dictionaries, exhaustive plan, two major frames per test), retaining
// every execution log in memory. Optional engine options tune the
// execution machinery (batch size, pool selection) without changing
// results. Large or reduced campaigns stream instead: RunCampaignStream.
func RunCampaign(opts campaign.Options, engine ...campaign.EngineOptions) (*CampaignReport, error) {
	var eo campaign.EngineOptions
	if len(engine) > 0 {
		eo = engine[0]
	}
	rep := &CampaignReport{Options: opts}
	plan, ropts, err := campaign.BuildPlan(opts)
	if err != nil {
		return nil, err
	}
	rep.Options = ropts
	eo.Options = ropts
	defer closePlan(plan)
	rep.Plan = testgen.Measure(plan)
	if testgen.IsDynamic(plan) {
		// A dynamic plan breeds datasets from execution feedback, so it
		// cannot be materialised up front: stream it through the engine
		// with an in-memory sink to keep the eager report shape.
		results := make([]campaign.Result, plan.Len())
		if _, err := campaign.StreamPlan(plan, eo,
			func(pos int, r campaign.Result) { results[pos] = r }); err != nil {
			return nil, err
		}
		rep.Results = results
		rep.Datasets = make([]testgen.Dataset, len(results))
		for i, r := range results {
			rep.Datasets[i] = r.Dataset
		}
	} else {
		rep.Datasets = testgen.Materialize(plan)
		results := make([]campaign.Result, len(rep.Datasets))
		// Without shard or checkpoint configuration Stream fails only on
		// a broken target spec, before anything executes; the error then
		// surfaces in every result's RunErr (RunDatasets' behaviour).
		// Cancellation is the exception: it arrives with real results
		// already collected, so it propagates as an error instead of
		// overwriting them.
		if _, err := campaign.Stream(rep.Datasets, eo, func(pos int, r campaign.Result) {
			results[pos] = r
		}); err != nil {
			if eo.Ctx != nil && eo.Ctx.Err() != nil {
				return nil, err
			}
			for i := range results {
				results[i] = campaign.Result{Dataset: rep.Datasets[i], RunErr: err.Error()}
			}
		}
		rep.Results = results
	}
	var agg cover.Map
	study := analysis.NewInjectionStudy()
	for _, r := range rep.Results {
		if r.Cover != nil {
			agg.Merge(r.Cover)
		}
		study.Add(r)
	}
	rep.Coverage = coverageStats(plan, &agg)
	if !study.Empty() {
		rep.Injection = study
	}
	for i, r := range rep.Results {
		if r.Divergence != nil {
			rep.Divergences = append(rep.Divergences, DivergenceFinding{
				Seq: i, Dataset: r.Dataset.String(), Divergence: *r.Divergence,
			})
		}
	}
	oracle := analysis.NewOracle(ropts.Faults)
	rep.Classified = analysis.ClassifyAll(rep.Results, oracle)
	rep.Issues = analysis.Cluster(rep.Classified)
	return rep, nil
}

// coverageStats folds the aggregated coverage map and (for feedback
// plans) the loop's own accounting into the report form.
func coverageStats(plan testgen.Plan, agg *cover.Map) CoverageStats {
	cs := CoverageStats{}
	if fp, ok := plan.(*corpus.FeedbackPlan); ok {
		st := fp.Stats()
		cs.Loop = &st
	}
	if agg.Empty() && cs.Loop == nil {
		return cs
	}
	cs.Enabled = true
	cs.Edges = agg.Count()
	cs.Signature = agg.Signature()
	return cs
}

// closePlan releases plan-held resources (the feedback plan's corpus
// file); static plans hold none.
func closePlan(plan testgen.Plan) {
	if c, ok := plan.(io.Closer); ok {
		c.Close()
	}
}

// CategoryStats is one row of the paper's Table III.
type CategoryStats struct {
	Category        xm.Category
	TotalHypercalls int
	Tested          int
	Tests           int
	Issues          int
}

// TableIII aggregates the campaign into the paper's Table III rows, in
// the paper's row order, with a trailing totals row.
func (r *CampaignReport) TableIII() []CategoryStats {
	counts := map[string]int{}
	for _, res := range r.Results {
		counts[res.Dataset.Func.Name]++
	}
	return tableIIIRows(counts, r.Issues)
}

// tableIIIRows computes the Table III rows from per-hypercall test counts
// — the aggregation shared by the eager and streaming reports.
func tableIIIRows(testsByFunc map[string]int, issues []analysis.Issue) []CategoryStats {
	byCat := map[xm.Category]*CategoryStats{}
	var rows []*CategoryStats
	for _, cat := range xm.Categories() {
		cs := &CategoryStats{Category: cat, TotalHypercalls: len(xm.ByCategory(cat))}
		byCat[cat] = cs
		rows = append(rows, cs)
	}
	for name, tests := range testsByFunc {
		spec, ok := xm.LookupName(name)
		if !ok {
			continue
		}
		cs := byCat[spec.Category]
		cs.Tests += tests
		cs.Tested++
	}
	for _, iss := range issues {
		if cs, ok := byCat[iss.Category]; ok {
			cs.Issues++
		}
	}
	total := CategoryStats{Category: "Total"}
	out := make([]CategoryStats, 0, len(rows)+1)
	for _, cs := range rows {
		out = append(out, *cs)
		total.TotalHypercalls += cs.TotalHypercalls
		total.Tested += cs.Tested
		total.Tests += cs.Tests
		total.Issues += cs.Issues
	}
	return append(out, total)
}

// Failures returns the classified results with failing verdicts.
func (r *CampaignReport) Failures() []analysis.Classified {
	var out []analysis.Classified
	for _, c := range r.Classified {
		if c.Verdict.Failure() {
			out = append(out, c)
		}
	}
	return out
}

// VerdictCounts tallies the CRASH scale over the whole campaign.
func (r *CampaignReport) VerdictCounts() map[analysis.Verdict]int {
	out := map[analysis.Verdict]int{}
	for _, c := range r.Classified {
		out[c.Verdict]++
	}
	return out
}
