package xmcfg

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"xmrobust/internal/sparc"
	"xmrobust/internal/xm"
)

const sampleXML = `<?xml version="1.0"?>
<SystemDescription name="demo" version="1.0">
  <PartitionTable>
    <Partition id="0" name="APP">
      <PhysicalMemoryAreas>
        <Area name="data" start="0x40100000" size="64KB" flags="rw"/>
      </PhysicalMemoryAreas>
      <HwResources interrupts="3,4"/>
    </Partition>
    <Partition id="1" name="FDIR" flags="system">
      <PhysicalMemoryAreas>
        <Area name="data" start="0x40200000" size="64KB" flags="rw"/>
        <Area name="rom" start="0x00010000" size="4KB" flags="r"/>
      </PhysicalMemoryAreas>
      <HwResources interrupts="5" ioports="true"/>
    </Partition>
  </PartitionTable>
  <CyclicPlanTable>
    <Plan id="0" majorFrame="250ms">
      <Slot id="0" partitionId="0" start="0ms" duration="100ms"/>
      <Slot id="1" partitionId="1" start="150ms" duration="50ms"/>
    </Plan>
  </CyclicPlanTable>
  <Channels>
    <SamplingChannel name="tm" maxMessageLength="64B">
      <Source partitionId="0"/>
      <Destination partitionId="1"/>
    </SamplingChannel>
    <QueuingChannel name="tc" maxMessageLength="32B" maxNoMessages="8">
      <Source partitionId="1"/>
      <Destination partitionId="0"/>
    </QueuingChannel>
  </Channels>
  <HealthMonitor>
    <Event name="XM_HM_EV_SCHED_OVERRUN" action="XM_HM_AC_HALT"/>
  </HealthMonitor>
</SystemDescription>
`

func TestParseSampleXML(t *testing.T) {
	cfg, err := Parse([]byte(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "demo" {
		t.Errorf("name = %q", cfg.Name)
	}
	if len(cfg.Partitions) != 2 {
		t.Fatalf("partitions = %d", len(cfg.Partitions))
	}
	p0, p1 := cfg.Partitions[0], cfg.Partitions[1]
	if p0.System || !p1.System {
		t.Error("system flags wrong")
	}
	if !p1.IOPorts || p0.IOPorts {
		t.Error("ioports flags wrong")
	}
	if !reflect.DeepEqual(p0.HwIrqLines, []int{3, 4}) {
		t.Errorf("p0 irq lines = %v", p0.HwIrqLines)
	}
	if len(p1.MemoryAreas) != 2 {
		t.Fatalf("p1 areas = %d", len(p1.MemoryAreas))
	}
	if p1.MemoryAreas[1].Perm != sparc.PermRead {
		t.Errorf("rom area perm = %v", p1.MemoryAreas[1].Perm)
	}
	if cfg.Plans[0].MajorFrame != 250000 {
		t.Errorf("major frame = %d", cfg.Plans[0].MajorFrame)
	}
	if cfg.Plans[0].Slots[1].Start != 150000 || cfg.Plans[0].Slots[1].Duration != 50000 {
		t.Errorf("slot 1 = %+v", cfg.Plans[0].Slots[1])
	}
	if len(cfg.Channels) != 2 {
		t.Fatalf("channels = %d", len(cfg.Channels))
	}
	if cfg.Channels[0].Type != xm.SamplingChannel || cfg.Channels[0].MaxMsgSize != 64 {
		t.Errorf("sampling channel = %+v", cfg.Channels[0])
	}
	if cfg.Channels[1].Type != xm.QueuingChannel || cfg.Channels[1].MaxNoMsgs != 8 {
		t.Errorf("queuing channel = %+v", cfg.Channels[1])
	}
	if cfg.HMActions[xm.HMEvSchedOverrun] != xm.HMActHaltPartition {
		t.Errorf("HM override = %v", cfg.HMActions[xm.HMEvSchedOverrun])
	}
}

func TestParsedConfigBootsAKernel(t *testing.T) {
	cfg, err := Parse([]byte(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	k, err := xm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
}

func TestEmitParseRoundTrip(t *testing.T) {
	cfg, err := Parse([]byte(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Emit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse of emitted XML: %v\n%s", err, out)
	}
	if !reflect.DeepEqual(cfg, cfg2) {
		t.Fatalf("round trip changed the config:\n%+v\nvs\n%+v", cfg, cfg2)
	}
}

func TestEmitIsReadableXML(t *testing.T) {
	cfg, _ := Parse([]byte(sampleXML))
	out, err := Emit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		"<SystemDescription", "<PartitionTable>", "<CyclicPlanTable>",
		`majorFrame="250ms"`, `size="64KB"`, `flags="system"`,
		"<SamplingChannel", "<QueuingChannel", "<HealthMonitor>",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("emitted XML lacks %q:\n%s", want, s)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
		ok   bool
	}{
		{"4096", 4096, true},
		{"64KB", 64 << 10, true},
		{"16MB", 16 << 20, true},
		{"1B", 1, true},
		{" 8KB ", 8 << 10, true},
		{"0x1000", 0x1000, true},
		{"64kb", 64 << 10, true},
		{"", 0, false},
		{"KB", 0, false},
		{"-1", 0, false},
		{"5GB", 0, false},
		{"4294967296", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseSize(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want xm.Time
		ok   bool
	}{
		{"250ms", 250000, true},
		{"50us", 50, true},
		{"1s", 1000000, true},
		{"0ms", 0, true},
		{"123", 123, true},
		{"", 0, false},
		{"ms", 0, false},
		{"1h", 0, false},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseTime(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseTime(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParsePerm(t *testing.T) {
	if p, err := ParsePerm("rw"); err != nil || p != sparc.PermRW {
		t.Errorf("rw = %v %v", p, err)
	}
	if p, err := ParsePerm("rwx"); err != nil || p != sparc.PermRWX {
		t.Errorf("rwx = %v %v", p, err)
	}
	if _, err := ParsePerm("rz"); err == nil {
		t.Error("rz accepted")
	}
	if _, err := ParsePerm(""); err == nil {
		t.Error("empty accepted")
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	cases := []struct{ name, xmlText string }{
		{"not xml", "hello"},
		{"bad size", strings.Replace(sampleXML, `size="64KB"`, `size="64XB"`, 1)},
		{"bad addr", strings.Replace(sampleXML, `start="0x40100000"`, `start="zz"`, 1)},
		{"bad flags", strings.Replace(sampleXML, `flags="rw"`, `flags="qq"`, 1)},
		{"bad time", strings.Replace(sampleXML, `majorFrame="250ms"`, `majorFrame="x"`, 1)},
		{"bad hm event", strings.Replace(sampleXML, "XM_HM_EV_SCHED_OVERRUN", "XM_HM_EV_NOPE", 1)},
		{"bad hm action", strings.Replace(sampleXML, "XM_HM_AC_HALT", "XM_HM_AC_NOPE", 1)},
		{"bad irq line", strings.Replace(sampleXML, `interrupts="3,4"`, `interrupts="3,x"`, 1)},
		// Structural errors caught by xm.Config.Validate:
		{"slot overlap", strings.Replace(sampleXML, `start="150ms"`, `start="50ms"`, 1)},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.xmlText)); err == nil {
			t.Errorf("%s: Parse accepted a broken document", c.name)
		}
	}
}

// Property: formatSize/ParseSize round-trip for arbitrary sizes.
func TestPropertySizeRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		got, err := ParseSize(formatSize(n))
		return err == nil && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: formatTime/ParseTime round-trip for non-negative times.
func TestPropertyTimeRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		in := xm.Time(n)
		got, err := ParseTime(formatTime(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
