// Package xmcfg reads and writes the system-description XML that plays the
// role of XtratuM's XM_CF configuration file: partitions with their memory
// areas and hardware resources, cyclic scheduling plans, IPC channels and
// the health-monitor action table.
//
// The XML vocabulary follows the XM_CF schema of the XtratuM user manual
// closely enough that a reader familiar with the real file format can read
// and edit these configurations. Sizes accept B/KB/MB suffixes and times
// accept us/ms/s suffixes, as in the original schema.
package xmcfg

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xmrobust/internal/sparc"
	"xmrobust/internal/xm"
)

// SystemDescription is the XML document root.
type SystemDescription struct {
	XMLName       xml.Name        `xml:"SystemDescription"`
	Name          string          `xml:"name,attr"`
	Version       string          `xml:"version,attr,omitempty"`
	Partitions    []Partition     `xml:"PartitionTable>Partition"`
	Plans         []Plan          `xml:"CyclicPlanTable>Plan"`
	Sampling      []SamplingChan  `xml:"Channels>SamplingChannel"`
	Queuing       []QueuingChan   `xml:"Channels>QueuingChannel"`
	HealthMonitor []HMEventAction `xml:"HealthMonitor>Event"`
}

// Partition is one <Partition> element.
type Partition struct {
	ID    int         `xml:"id,attr"`
	Name  string      `xml:"name,attr"`
	Flags string      `xml:"flags,attr,omitempty"` // "system" marks a system partition
	Areas []Area      `xml:"PhysicalMemoryAreas>Area"`
	Hw    HwResources `xml:"HwResources"`
}

// HwResources lists the hardware assets granted to a partition.
type HwResources struct {
	// Interrupts is a comma-separated list of IRQMP lines, e.g. "3,4".
	Interrupts string `xml:"interrupts,attr,omitempty"`
	// IoPorts grants access to the simulated I/O register bank.
	IoPorts bool `xml:"ioports,attr,omitempty"`
}

// Area is one physical memory area.
type Area struct {
	Name  string `xml:"name,attr,omitempty"`
	Start string `xml:"start,attr"` // hex address, e.g. "0x40100000"
	Size  string `xml:"size,attr"`  // e.g. "64KB"
	Flags string `xml:"flags,attr"` // subset of "rwx"
}

// Plan is one cyclic scheduling plan.
type Plan struct {
	ID         int    `xml:"id,attr"`
	MajorFrame string `xml:"majorFrame,attr"` // e.g. "250ms"
	Slots      []Slot `xml:"Slot"`
}

// Slot is one execution window.
type Slot struct {
	ID          int    `xml:"id,attr"`
	PartitionID int    `xml:"partitionId,attr"`
	Start       string `xml:"start,attr"`    // e.g. "0ms"
	Duration    string `xml:"duration,attr"` // e.g. "50ms"
}

// SamplingChan is one <SamplingChannel>.
type SamplingChan struct {
	Name       string  `xml:"name,attr"`
	MaxMsgSize string  `xml:"maxMessageLength,attr"`
	Source     ChanEnd `xml:"Source"`
	Dest       ChanEnd `xml:"Destination"`
}

// QueuingChan is one <QueuingChannel>.
type QueuingChan struct {
	Name       string  `xml:"name,attr"`
	MaxMsgSize string  `xml:"maxMessageLength,attr"`
	MaxNoMsgs  uint32  `xml:"maxNoMessages,attr"`
	Source     ChanEnd `xml:"Source"`
	Dest       ChanEnd `xml:"Destination"`
}

// ChanEnd names a channel endpoint.
type ChanEnd struct {
	PartitionID int `xml:"partitionId,attr"`
}

// HMEventAction configures one health-monitor table row.
type HMEventAction struct {
	Name   string `xml:"name,attr"`   // e.g. "XM_HM_EV_SCHED_OVERRUN"
	Action string `xml:"action,attr"` // e.g. "XM_HM_AC_SUSPEND"
}

// ParseSize parses "4096", "64KB", "16MB", "1B".
func ParseSize(s string) (uint32, error) {
	t := strings.TrimSpace(s)
	mult := uint64(1)
	upper := strings.ToUpper(t)
	switch {
	case strings.HasSuffix(upper, "MB"):
		mult, t = 1<<20, t[:len(t)-2]
	case strings.HasSuffix(upper, "KB"):
		mult, t = 1<<10, t[:len(t)-2]
	case strings.HasSuffix(upper, "B"):
		t = t[:len(t)-1]
	}
	v, err := strconv.ParseUint(strings.TrimSpace(t), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("xmcfg: bad size %q: %w", s, err)
	}
	v *= mult
	if v > 1<<32-1 {
		return 0, fmt.Errorf("xmcfg: size %q exceeds 32 bits", s)
	}
	return uint32(v), nil
}

// ParseTime parses "250ms", "50us", "1s" (and bare microseconds).
func ParseTime(s string) (xm.Time, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "us"):
		t = t[:len(t)-2]
	case strings.HasSuffix(t, "ms"):
		mult, t = 1000, t[:len(t)-2]
	case strings.HasSuffix(t, "s"):
		mult, t = 1000000, t[:len(t)-1]
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("xmcfg: bad time %q: %w", s, err)
	}
	return xm.Time(v * mult), nil
}

// ParseAddr parses a hex or decimal address attribute.
func ParseAddr(s string) (sparc.Addr, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 32)
	if err != nil {
		return 0, fmt.Errorf("xmcfg: bad address %q: %w", s, err)
	}
	return sparc.Addr(v), nil
}

// ParsePerm parses a subset of "rwx".
func ParsePerm(s string) (sparc.Perm, error) {
	var p sparc.Perm
	for _, c := range strings.TrimSpace(s) {
		switch c {
		case 'r':
			p |= sparc.PermRead
		case 'w':
			p |= sparc.PermWrite
		case 'x':
			p |= sparc.PermExec
		default:
			return 0, fmt.Errorf("xmcfg: bad permission flag %q in %q", c, s)
		}
	}
	if p == 0 {
		return 0, fmt.Errorf("xmcfg: empty permission set %q", s)
	}
	return p, nil
}

// hmEventByName maps XM_HM_EV_* names to events.
var hmEventByName = map[string]xm.HMEvent{
	"XM_HM_EV_MEM_PROTECTION":  xm.HMEvMemProtection,
	"XM_HM_EV_SCHED_OVERRUN":   xm.HMEvSchedOverrun,
	"XM_HM_EV_PARTITION_ERROR": xm.HMEvPartitionError,
	"XM_HM_EV_FATAL_ERROR":     xm.HMEvFatalError,
	"XM_HM_EV_INTERNAL_ERROR":  xm.HMEvInternalError,
	"XM_HM_EV_WATCHDOG":        xm.HMEvWatchdog,
}

// hmActionByName maps XM_HM_AC_* names to actions.
var hmActionByName = map[string]xm.HMAction{
	"XM_HM_AC_IGNORE":                xm.HMActIgnore,
	"XM_HM_AC_LOG":                   xm.HMActLog,
	"XM_HM_AC_SUSPEND":               xm.HMActSuspendPartition,
	"XM_HM_AC_HALT":                  xm.HMActHaltPartition,
	"XM_HM_AC_PARTITION_COLD_RESET":  xm.HMActColdResetPartition,
	"XM_HM_AC_PARTITION_WARM_RESET":  xm.HMActWarmResetPartition,
	"XM_HM_AC_HYPERVISOR_HALT":       xm.HMActHaltHypervisor,
	"XM_HM_AC_HYPERVISOR_COLD_RESET": xm.HMActColdResetHypervisor,
	"XM_HM_AC_HYPERVISOR_WARM_RESET": xm.HMActWarmResetHypervisor,
	"XM_HM_AC_PROPAGATE":             xm.HMActPropagate,
}

// Parse unmarshals a system-description XML document and converts it into
// a validated kernel configuration.
func Parse(data []byte) (xm.Config, error) {
	var doc SystemDescription
	if err := xml.Unmarshal(data, &doc); err != nil {
		return xm.Config{}, fmt.Errorf("xmcfg: %w", err)
	}
	return doc.Config()
}

// Config converts the XML document into a validated xm.Config.
func (d *SystemDescription) Config() (xm.Config, error) {
	cfg := xm.Config{Name: d.Name}
	for _, p := range d.Partitions {
		pc := xm.PartitionConfig{
			ID: p.ID, Name: p.Name,
			System:  strings.Contains(p.Flags, "system"),
			IOPorts: p.Hw.IoPorts,
		}
		for _, a := range p.Areas {
			base, err := ParseAddr(a.Start)
			if err != nil {
				return cfg, err
			}
			size, err := ParseSize(a.Size)
			if err != nil {
				return cfg, err
			}
			perm, err := ParsePerm(a.Flags)
			if err != nil {
				return cfg, err
			}
			name := a.Name
			if name == "" {
				name = fmt.Sprintf("area%d", len(pc.MemoryAreas))
			}
			pc.MemoryAreas = append(pc.MemoryAreas, sparc.Region{
				Name: name, Base: base, Size: size, Perm: perm,
			})
		}
		if strings.TrimSpace(p.Hw.Interrupts) != "" {
			for _, f := range strings.Split(p.Hw.Interrupts, ",") {
				line, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return cfg, fmt.Errorf("xmcfg: partition %q: bad interrupt line %q", p.Name, f)
				}
				pc.HwIrqLines = append(pc.HwIrqLines, line)
			}
		}
		cfg.Partitions = append(cfg.Partitions, pc)
	}
	for _, pl := range d.Plans {
		maf, err := ParseTime(pl.MajorFrame)
		if err != nil {
			return cfg, err
		}
		plan := xm.PlanConfig{ID: pl.ID, MajorFrame: maf}
		for _, sl := range pl.Slots {
			start, err := ParseTime(sl.Start)
			if err != nil {
				return cfg, err
			}
			dur, err := ParseTime(sl.Duration)
			if err != nil {
				return cfg, err
			}
			plan.Slots = append(plan.Slots, xm.SlotConfig{
				PartitionID: sl.PartitionID, Start: start, Duration: dur,
			})
		}
		cfg.Plans = append(cfg.Plans, plan)
	}
	for _, ch := range d.Sampling {
		size, err := ParseSize(ch.MaxMsgSize)
		if err != nil {
			return cfg, err
		}
		cfg.Channels = append(cfg.Channels, xm.ChannelConfig{
			Name: ch.Name, Type: xm.SamplingChannel, MaxMsgSize: size,
			Source: ch.Source.PartitionID, Destination: ch.Dest.PartitionID,
		})
	}
	for _, ch := range d.Queuing {
		size, err := ParseSize(ch.MaxMsgSize)
		if err != nil {
			return cfg, err
		}
		cfg.Channels = append(cfg.Channels, xm.ChannelConfig{
			Name: ch.Name, Type: xm.QueuingChannel, MaxMsgSize: size,
			MaxNoMsgs: ch.MaxNoMsgs,
			Source:    ch.Source.PartitionID, Destination: ch.Dest.PartitionID,
		})
	}
	if len(d.HealthMonitor) > 0 {
		cfg.HMActions = make(map[xm.HMEvent]xm.HMAction, len(d.HealthMonitor))
		for _, ea := range d.HealthMonitor {
			ev, ok := hmEventByName[ea.Name]
			if !ok {
				return cfg, fmt.Errorf("xmcfg: unknown HM event %q", ea.Name)
			}
			ac, ok := hmActionByName[ea.Action]
			if !ok {
				return cfg, fmt.Errorf("xmcfg: unknown HM action %q", ea.Action)
			}
			cfg.HMActions[ev] = ac
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Document converts a kernel configuration back into its XML document
// form, the inverse of Config.
func Document(cfg xm.Config) SystemDescription {
	doc := SystemDescription{Name: cfg.Name, Version: "1.0"}
	for _, p := range cfg.Partitions {
		px := Partition{ID: p.ID, Name: p.Name, Hw: HwResources{IoPorts: p.IOPorts}}
		if p.System {
			px.Flags = "system"
		}
		for _, a := range p.MemoryAreas {
			px.Areas = append(px.Areas, Area{
				Name:  a.Name,
				Start: fmt.Sprintf("0x%08X", uint32(a.Base)),
				Size:  formatSize(a.Size),
				Flags: permString(a.Perm),
			})
		}
		if len(p.HwIrqLines) > 0 {
			var parts []string
			for _, l := range p.HwIrqLines {
				parts = append(parts, strconv.Itoa(l))
			}
			px.Hw.Interrupts = strings.Join(parts, ",")
		}
		doc.Partitions = append(doc.Partitions, px)
	}
	for _, pl := range cfg.Plans {
		plx := Plan{ID: pl.ID, MajorFrame: formatTime(pl.MajorFrame)}
		for i, sl := range pl.Slots {
			plx.Slots = append(plx.Slots, Slot{
				ID: i, PartitionID: sl.PartitionID,
				Start: formatTime(sl.Start), Duration: formatTime(sl.Duration),
			})
		}
		doc.Plans = append(doc.Plans, plx)
	}
	for _, ch := range cfg.Channels {
		switch ch.Type {
		case xm.SamplingChannel:
			doc.Sampling = append(doc.Sampling, SamplingChan{
				Name: ch.Name, MaxMsgSize: formatSize(ch.MaxMsgSize),
				Source: ChanEnd{ch.Source}, Dest: ChanEnd{ch.Destination},
			})
		case xm.QueuingChannel:
			doc.Queuing = append(doc.Queuing, QueuingChan{
				Name: ch.Name, MaxMsgSize: formatSize(ch.MaxMsgSize),
				MaxNoMsgs: ch.MaxNoMsgs,
				Source:    ChanEnd{ch.Source}, Dest: ChanEnd{ch.Destination},
			})
		}
	}
	// Emit the HM table in a stable event order.
	for _, name := range hmEventNamesSorted() {
		ev := hmEventByName[name]
		ac, ok := cfg.HMActions[ev]
		if !ok {
			continue
		}
		for acName, a := range hmActionByName {
			if a == ac {
				doc.HealthMonitor = append(doc.HealthMonitor,
					HMEventAction{Name: name, Action: acName})
				break
			}
		}
	}
	return doc
}

// hmEventNamesSorted returns the known HM event names sorted
// alphabetically for deterministic emission.
func hmEventNamesSorted() []string {
	names := make([]string, 0, len(hmEventByName))
	for n := range hmEventByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Emit marshals a kernel configuration to indented XML.
func Emit(cfg xm.Config) ([]byte, error) {
	doc := Document(cfg)
	out, err := xml.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmcfg: %w", err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

func permString(p sparc.Perm) string {
	var b strings.Builder
	if p&sparc.PermRead != 0 {
		b.WriteByte('r')
	}
	if p&sparc.PermWrite != 0 {
		b.WriteByte('w')
	}
	if p&sparc.PermExec != 0 {
		b.WriteByte('x')
	}
	return b.String()
}

func formatSize(n uint32) string {
	switch {
	case n != 0 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n != 0 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func formatTime(t xm.Time) string {
	switch {
	case t != 0 && t%1000000 == 0:
		return fmt.Sprintf("%ds", t/1000000)
	case t != 0 && t%1000 == 0:
		return fmt.Sprintf("%dms", t/1000)
	default:
		return fmt.Sprintf("%dus", t)
	}
}
