package inject

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"

	"xmrobust/internal/apispec"
	"xmrobust/internal/dict"
	"xmrobust/internal/eagleeye"
	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// sampleDatasets returns a deterministic slice of real campaign datasets.
func sampleDatasets(t *testing.T, n int) []testgen.Dataset {
	t.Helper()
	plan, err := testgen.NewPlan("rand:"+strconv.Itoa(n), apispec.Default(), dict.Builtin(), 11)
	if err != nil {
		t.Fatal(err)
	}
	return testgen.Materialize(plan)
}

func TestScheduleIsPureFunctionOfSeedAndDataset(t *testing.T) {
	s, err := NewSchedule(Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range sampleDatasets(t, 40) {
		a, b := s.Plan(ds), s.Plan(ds)
		if (a == nil) != (b == nil) {
			t.Fatalf("%s: inconsistent decision", ds)
		}
		if a == nil {
			continue
		}
		aj, _ := json.Marshal(a.Injection)
		bj, _ := json.Marshal(b.Injection)
		if string(aj) != string(bj) {
			t.Fatalf("%s: plans differ across calls:\n%s\n%s", ds, aj, bj)
		}
		if a.frameDraw != b.frameDraw || a.pageDraw != b.pageDraw ||
			a.offDraw != b.offDraw || a.unitDraw != b.unitDraw {
			t.Fatalf("%s: draws differ across calls", ds)
		}
	}
}

func TestScheduleSeedChangesDecisions(t *testing.T) {
	s1, _ := NewSchedule(Params{Seed: 1})
	s2, _ := NewSchedule(Params{Seed: 2})
	differ := false
	for _, ds := range sampleDatasets(t, 40) {
		a, b := s1.Plan(ds), s2.Plan(ds)
		switch {
		case a == nil || b == nil:
			differ = differ || (a == nil) != (b == nil)
		case a.Injection.Site != b.Injection.Site || a.Injection.Bit != b.Injection.Bit ||
			a.Injection.Phase != b.Injection.Phase:
			differ = true
		}
	}
	if !differ {
		t.Fatal("40 datasets drew identical injections under two different seeds")
	}
}

func TestScheduleRate(t *testing.T) {
	datasets := sampleDatasets(t, 100)
	full, _ := NewSchedule(Params{Rate: 1, Seed: 3})
	half, _ := NewSchedule(Params{Rate: 0.5, Seed: 3})
	nFull, nHalf := 0, 0
	for _, ds := range datasets {
		if full.Plan(ds) != nil {
			nFull++
		}
		if half.Plan(ds) != nil {
			nHalf++
		}
	}
	if nFull != len(datasets) {
		t.Fatalf("rate 1 injected %d of %d", nFull, len(datasets))
	}
	if nHalf == 0 || nHalf == len(datasets) {
		t.Fatalf("rate 0.5 injected %d of %d — not a coin at all", nHalf, len(datasets))
	}
}

func TestNewScheduleValidates(t *testing.T) {
	if _, err := NewSchedule(Params{Rate: 1.5}); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
	if _, err := NewSchedule(Params{Rate: -0.1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewSchedule(Params{Rate: math.NaN()}); err == nil {
		t.Fatal("NaN rate accepted")
	}
	if _, err := NewSchedule(Params{Sites: []string{"rom"}}); err == nil ||
		!strings.Contains(err.Error(), "rom") || !strings.Contains(err.Error(), SiteRAM) {
		t.Fatal("unknown site must be named alongside the inventory")
	}
	s, err := NewSchedule(Params{Sites: []string{SiteRAM, SiteRAM, SiteClock}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Signature(); !strings.Contains(got, "sites=clock,ram") {
		t.Fatalf("sites not deduped+sorted in signature: %s", got)
	}
}

func TestSignatureDistinguishesSchedules(t *testing.T) {
	base, _ := NewSchedule(Params{})
	seeded, _ := NewSchedule(Params{Seed: 9})
	rated, _ := NewSchedule(Params{Rate: 0.25})
	sited, _ := NewSchedule(Params{Sites: []string{SiteIU}})
	sigs := map[string]bool{}
	for _, s := range []Schedule{base, seeded, rated, sited} {
		sigs[s.Signature()] = true
	}
	if len(sigs) != 4 {
		t.Fatalf("4 distinct schedules produced %d signatures", len(sigs))
	}
	if base.Signature() != "rate=1|sites=clock,iu,mmu,ram,timer|seed=0" {
		t.Fatalf("default signature drifted: %s", base.Signature())
	}
}

func TestScheduleSiteRestriction(t *testing.T) {
	s, _ := NewSchedule(Params{Sites: []string{SiteMMU}})
	for _, ds := range sampleDatasets(t, 20) {
		if p := s.Plan(ds); p != nil && p.Injection.Site != SiteMMU {
			t.Fatalf("%s: drew site %s outside the restriction", ds, p.Injection.Site)
		}
	}
}

// bootSystem builds an EagleEye system on a fresh machine and runs one
// major frame so the banks hold live state.
func bootSystem(t *testing.T) *xm.Kernel {
	t.Helper()
	k, err := eagleeye.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	return k
}

// forcedPlan builds a plan pinned to one site with fixed draws.
func forcedPlan(site, phase string, bit uint8) *Plan {
	p := &Plan{pageDraw: 1, offDraw: 5, unitDraw: 0, frameDraw: 0}
	p.Injection.Site = site
	p.Injection.Phase = phase
	p.Injection.Bit = bit
	return p
}

func TestApplyRAMFlipLandsInDirtyPage(t *testing.T) {
	k := bootSystem(t)
	m := k.Machine()
	pages := m.DirtyPages()
	if len(pages) == 0 {
		t.Fatal("a booted system left no dirty pages — the testbed changed shape")
	}
	p := forcedPlan(SiteRAM, PhasePost, 3)
	p.PostRun(k, eagleeye.FDIR, 1)
	if !p.Injection.Applied {
		t.Fatalf("ram flip did not apply: %+v", p.Injection)
	}
	want := pages[1%len(pages)] + sparc.Addr(5%sparc.DirtyPageSize)
	if p.Injection.Addr != uint64(want) {
		t.Fatalf("flip landed at %#x, drawn target %#x", p.Injection.Addr, want)
	}
	if p.Injection.Cycle != int64(m.Now()) {
		t.Fatalf("cycle %d, clock %d", p.Injection.Cycle, m.Now())
	}
}

func TestApplyRAMFallsBackToDataArea(t *testing.T) {
	k, err := eagleeye.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	// No frame has run: nothing is dirty yet.
	if pages := k.Machine().DirtyPages(); len(pages) != 0 {
		t.Skipf("boot already dirtied %d pages; fallback untestable", len(pages))
	}
	area, ok := k.PartitionDataArea(eagleeye.FDIR)
	if !ok {
		t.Fatal("no FDIR data area")
	}
	p := forcedPlan(SiteRAM, PhasePre, 0)
	p.PreArm(k, eagleeye.FDIR)
	if !p.Injection.Applied {
		t.Fatalf("fallback flip did not apply: %+v", p.Injection)
	}
	if !area.Contains(sparc.Addr(p.Injection.Addr), 1) {
		t.Fatalf("fallback landed at %#x outside the data area %v", p.Injection.Addr, area)
	}
}

func TestApplyEachSiteOnLiveSystem(t *testing.T) {
	for _, site := range Sites() {
		k := bootSystem(t)
		p := forcedPlan(site, PhasePost, 17)
		p.PostRun(k, eagleeye.FDIR, 1)
		switch site {
		case SiteTimer:
			// Between frames the GPTIMER units may legitimately be
			// disarmed; either way the plan must have resolved.
			if armedAny(k.Machine()) != p.Injection.Applied {
				t.Fatalf("timer applied=%v with armed=%v", p.Injection.Applied, armedAny(k.Machine()))
			}
		default:
			if !p.Injection.Applied {
				t.Fatalf("site %s did not apply on a live system", site)
			}
		}
	}
}

func armedAny(m *sparc.Machine) bool {
	for i := 0; i < sparc.NumTimerUnits; i++ {
		if armed, _ := m.Timer(i).Armed(); armed {
			return true
		}
	}
	return false
}

func TestApplyRunsAtMostOnce(t *testing.T) {
	k := bootSystem(t)
	p := forcedPlan(SiteClock, PhaseMid, 4)
	before := k.Machine().Now()
	p.BeforeFrame(1, 3, k, eagleeye.FDIR) // frameDraw 0 -> fires before frame 1
	first := k.Machine().Now()
	if first == before {
		t.Fatal("clock flip did not move the clock")
	}
	p.BeforeFrame(2, 3, k, eagleeye.FDIR)
	if k.Machine().Now() != first {
		t.Fatal("second hook call flipped again")
	}
}

func TestApplySkipsCrashedSimulator(t *testing.T) {
	k := bootSystem(t)
	k.Machine().Crash("died earlier")
	p := forcedPlan(SiteClock, PhasePost, 4)
	p.PostRun(k, eagleeye.FDIR, 1)
	if p.Injection.Applied {
		t.Fatal("flip applied to a crashed simulator")
	}
}

func TestMidPhaseFrameSelection(t *testing.T) {
	// With mafs > 1 the mid flip must land on a frame in [1, mafs).
	for draw := uint64(0); draw < 5; draw++ {
		k := bootSystem(t)
		p := forcedPlan(SiteClock, PhaseMid, 2)
		p.frameDraw = draw
		fired := -1
		for f := 0; f < 4; f++ {
			was := p.Injection.Applied
			p.BeforeFrame(f, 4, k, eagleeye.FDIR)
			if !was && p.Injection.Applied {
				fired = f
			}
		}
		want := 1 + int(draw%3)
		if fired != want {
			t.Fatalf("draw %d fired before frame %d, want %d", draw, fired, want)
		}
	}
	// With mafs == 1 it degrades to frame 0 (after arming).
	k := bootSystem(t)
	p := forcedPlan(SiteClock, PhaseMid, 2)
	p.BeforeFrame(0, 1, k, eagleeye.FDIR)
	if !p.Injection.Applied {
		t.Fatal("single-frame mid flip never fired")
	}
}

// TestInjectionLeavesNoMachineResidue extends sparc's
// TestResetScrubsEverything across the injector's primitives: whatever a
// flip touched, Reset must scrub back to a state the exhaustive
// VerifyClean scan accepts — the invariant the campaign's recycling
// machine pool stands on.
func TestInjectionLeavesNoMachineResidue(t *testing.T) {
	for _, site := range Sites() {
		for bit := uint8(0); bit < 64; bit += 7 {
			k, err := eagleeye.NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			m := k.Machine()
			if err := k.RunMajorFrames(1); err != nil {
				t.Fatal(err)
			}
			p := forcedPlan(site, PhasePost, bit)
			p.PostRun(k, eagleeye.FDIR, 1)
			m.Reset()
			if err := m.VerifyClean(); err != nil {
				t.Fatalf("site %s bit %d left residue: %v", site, bit, err)
			}
		}
	}
}
