// Package inject is the single-event-upset (SEU) fault-injection
// subsystem: the scenario axis the paper's API campaign cannot express.
// The platform the campaign targets (LEON3 in orbit) fails primarily
// through radiation flipping bits in live machine state, not through
// hostile hypercall arguments; this package models that fault class as a
// deterministic *schedule* of bit flips layered over any execution
// backend, the way the divergence oracle layers over two of them.
//
// A Schedule is a pure function of (seed, dataset): for every test it
// decides whether to upset the run, at which site, at which point of the
// execution, and which bit to flip. Nothing is sampled at execution time
// — the pseudo-random draws are all taken up front from a splitmix64
// stream keyed by the dataset's rendered call, so an interrupted campaign
// resumes to byte-identical records and a fixed seed reproduces the
// identical fault sequence on any platform.
//
// Sites model where radiation strikes the simulated machine:
//
//   - ram:   one bit of a live (dirty) memory page — kernel image,
//     partition data, IPC buffers. Pages no run has touched are skipped
//     in favour of the test partition's data area: flipping a bit nobody
//     reads cannot be observed, and the study is about what the system
//     does when the upset lands somewhere that matters.
//   - mmu:   one bit of the test partition's MMU context (a mapped
//     region's base address) — the spatial-separation hardware itself.
//   - iu:    the interrupt unit's register state (IRQ mask and pending
//     lines).
//   - timer: an armed GPTIMER compare value — the clocks XtratuM
//     multiplexes its scheduling on.
//   - clock: the virtual timebase.
//
// The injected execution runs next to an uninjected reference leg of the
// same dataset; comparing the two classifies the upset's outcome: masked
// (no observable difference), wrong-result (observables diverge without
// any error report), hm-detected (the health monitor logged the upset),
// crash (simulator death, hypervisor halt or an unexpected reset), or
// hang (control never returned to the test partition).
package inject

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"xmrobust/internal/sparc"
	"xmrobust/internal/testgen"
	"xmrobust/internal/xm"
)

// Injection sites.
const (
	SiteRAM   = "ram"
	SiteMMU   = "mmu"
	SiteIU    = "iu"
	SiteTimer = "timer"
	SiteClock = "clock"
)

// Injection phases: where in the test's execution the flip lands.
const (
	// PhasePre flips before the fault placeholder is armed — the upset
	// predates the test call.
	PhasePre = "pre"
	// PhaseMid flips between two observation frames (for single-frame
	// tests: after arming, before the frame) — the upset lands mid-run.
	PhaseMid = "mid"
	// PhasePost flips after the observation frames, before the log is
	// harvested — the upset can only corrupt the final state.
	PhasePost = "post"
)

// Outcome classes of an applied flip, judged against the clean reference
// leg.
const (
	OutcomeMasked   = "masked"
	OutcomeWrong    = "wrong-result"
	OutcomeDetected = "hm-detected"
	OutcomeCrash    = "crash"
	OutcomeHang     = "hang"
)

// phases is the draw order of the phase pick.
var phases = [...]string{PhasePre, PhaseMid, PhasePost}

// Sites returns every injection site, sorted — the default site set and
// the vocabulary -inject-sites validates against.
func Sites() []string {
	return []string{SiteClock, SiteIU, SiteMMU, SiteRAM, SiteTimer}
}

// timeBitLimit clamps clock and timer flips to the low 28 bits (≈134 s of
// skew): an upset in a high bit would fast-forward the timebase past
// every armed expiry or overflow the kernel's deadline arithmetic, which
// models a broken simulator rather than a surviving system.
const timeBitLimit = 28

// Params configures a Schedule. The zero value injects every test across
// every site, seeded by seed 0.
type Params struct {
	// Rate is the fraction of tests injected, in (0, 1]. The zero value
	// selects 1: every test carries an upset.
	Rate float64
	// Sites restricts the flip sites (nil/empty: all of Sites()).
	Sites []string
	// Seed keys the schedule. Campaigns anchor it to the campaign seed so
	// one -seed flag reproduces both the plan and the fault sequence.
	Seed int64
}

// Schedule is a validated, immutable injection schedule: a pure function
// from dataset to (optional) injection plan. It is safe for concurrent
// use — Plan shares no state between calls.
type Schedule struct {
	rate  float64
	sites []string
	seed  int64
}

// NewSchedule validates the parameters and builds the schedule.
func NewSchedule(p Params) (Schedule, error) {
	s := Schedule{rate: p.Rate, seed: p.Seed}
	if s.rate == 0 {
		s.rate = 1
	}
	// Negated form so NaN fails the range check too.
	if !(s.rate > 0 && s.rate <= 1) {
		return Schedule{}, fmt.Errorf("inject: rate %v outside (0, 1]", p.Rate)
	}
	if len(p.Sites) == 0 {
		s.sites = Sites()
		return s, nil
	}
	known := map[string]bool{}
	for _, site := range Sites() {
		known[site] = true
	}
	seen := map[string]bool{}
	for _, site := range p.Sites {
		if !known[site] {
			return Schedule{}, fmt.Errorf("inject: unknown site %q (have %s)",
				site, strings.Join(Sites(), ", "))
		}
		if !seen[site] {
			seen[site] = true
			s.sites = append(s.sites, site)
		}
	}
	sort.Strings(s.sites)
	return s, nil
}

// Signature renders the schedule's full identity — campaign checkpoints
// record it and refuse to resume under a different one, exactly as they
// refuse a mismatched plan fingerprint or target name.
func (s Schedule) Signature() string {
	return fmt.Sprintf("rate=%s|sites=%s|seed=%d",
		strconv.FormatFloat(s.rate, 'g', -1, 64), strings.Join(s.sites, ","), s.seed)
}

// hash64 is FNV-1a over the dataset's rendered call: the per-test key of
// the schedule. Identical datasets draw identical injections in any
// campaign position, which is what makes checkpoint resume an exact
// replay without threading any injector state.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Plan decides the injection for one test: nil when the schedule leaves
// this test clean, otherwise a freshly armed plan (plans are single-use
// and not safe to share across executions).
func (s Schedule) Plan(ds testgen.Dataset) *Plan {
	rng := testgen.NewSplitMix64(s.seed ^ int64(hash64(ds.String())))
	if float64(rng.Next()>>11) >= s.rate*float64(uint64(1)<<53) {
		return nil
	}
	p := &Plan{
		frameDraw: rng.Next(),
		pageDraw:  rng.Next(),
		offDraw:   rng.Next(),
		unitDraw:  rng.Next(),
	}
	p.Injection.Site = s.sites[rng.Intn(len(s.sites))]
	p.Injection.Phase = phases[rng.Intn(len(phases))]
	p.Injection.Bit = uint8(rng.Next() % 64)
	return p
}

// Injection is the record of one scheduled upset — what the schedule
// decided, where the flip actually landed, and how the injected run's
// observables compared to its clean reference leg. It is threaded through
// the campaign log (campaign.JSONRecord) like every other observable.
type Injection struct {
	// Site and Phase are the schedule's picks; Bit is the drawn bit index
	// (each site interprets it modulo its register width).
	Site  string `json:"site"`
	Phase string `json:"phase"`
	Bit   uint8  `json:"bit"`
	// Frame is the observation frame the flip preceded (0 for pre-arm,
	// the frame count for post-run).
	Frame int `json:"frame,omitempty"`
	// Addr locates memory and MMU flips (0 for register sites); Cycle is
	// the virtual time in microseconds at which the flip was applied.
	Addr  uint64 `json:"addr,omitempty"`
	Cycle int64  `json:"cycle,omitempty"`
	// Applied reports whether the flip landed (a timer flip on a machine
	// with nothing armed, or any flip on an already-crashed simulator,
	// has nowhere to go).
	Applied bool `json:"applied"`
	// Outcome classifies an applied flip against the reference leg
	// (OutcomeMasked … OutcomeHang); Delta is the compact rendering of
	// the observable differences ("" when masked).
	Outcome string `json:"outcome,omitempty"`
	Delta   string `json:"delta,omitempty"`
}

// Plan is one test's armed injection: the schedule's draws plus the
// record they resolve into during execution. The executing backend calls
// the three hook methods at its phase anchors; each is a single nil check
// away on the no-injection path.
type Plan struct {
	Injection Injection

	frameDraw uint64
	pageDraw  uint64
	offDraw   uint64
	unitDraw  uint64
	done      bool
}

// PreArm is the hook before the fault placeholder is armed.
func (p *Plan) PreArm(k *xm.Kernel, testPart int) {
	if p.Injection.Phase == PhasePre {
		p.apply(k, testPart, 0)
	}
}

// BeforeFrame is the hook before observation frame `frame` of `mafs`. A
// mid-phase plan fires before one deterministically drawn frame — frame
// 1..mafs-1 when the test runs several, frame 0 (after arming) when it
// runs one.
func (p *Plan) BeforeFrame(frame, mafs int, k *xm.Kernel, testPart int) {
	if p.Injection.Phase != PhaseMid {
		return
	}
	at := 0
	if mafs > 1 {
		at = 1 + int(p.frameDraw%uint64(mafs-1))
	}
	if frame == at {
		p.apply(k, testPart, frame)
	}
}

// PostRun is the hook after the last observation frame, before harvest.
func (p *Plan) PostRun(k *xm.Kernel, testPart, mafs int) {
	if p.Injection.Phase == PhasePost {
		p.apply(k, testPart, mafs)
	}
}

// apply performs the flip. It runs at most once per plan and never on a
// crashed simulator (radiation cannot upset a machine that no longer
// exists — and the harness must not trust one).
func (p *Plan) apply(k *xm.Kernel, testPart, frame int) {
	if p.done {
		return
	}
	p.done = true
	m := k.Machine()
	if crashed, _ := m.Crashed(); crashed {
		return
	}
	p.Injection.Frame = frame
	p.Injection.Cycle = int64(m.Now())
	switch p.Injection.Site {
	case SiteRAM:
		addr, ok := p.ramTarget(k, testPart, m)
		if ok && m.FlipBit(addr, p.Injection.Bit) {
			p.Injection.Addr = uint64(addr)
			p.Injection.Applied = true
		}
	case SiteMMU:
		// Radiation does not aim at the test partition: the victim is
		// drawn across the whole partition table, so an upset in an OBSW
		// partition's context surfaces through that partition's own
		// traffic (and the health monitor's reaction to it).
		parts := k.NumPartitions()
		if parts == 0 {
			return
		}
		sp := k.PartitionSpace(int(p.unitDraw % uint64(parts)))
		if sp == nil {
			return
		}
		regions := sp.Regions()
		if len(regions) == 0 {
			return
		}
		if base, ok := sp.FlipRegionBit(int(p.pageDraw%uint64(len(regions))), p.Injection.Bit); ok {
			p.Injection.Addr = uint64(base)
			p.Injection.Applied = true
		}
	case SiteIU:
		irq := m.IRQ()
		if p.Injection.Bit%32 < 16 {
			irq.SetMask(irq.Mask() ^ 1<<(p.Injection.Bit%16))
		} else {
			line := 1 + int(p.Injection.Bit)%(sparc.NumIRQLines-1)
			if irq.Pending()&(1<<line) != 0 {
				irq.Ack(line)
			} else {
				irq.Raise(line)
			}
		}
		p.Injection.Applied = true
	case SiteTimer:
		// Try the drawn unit first, then the others: an upset needs an
		// armed compare register to land in.
		for i := 0; i < sparc.NumTimerUnits; i++ {
			unit := int((p.unitDraw + uint64(i)) % sparc.NumTimerUnits)
			if _, ok := m.Timer(unit).FlipExpiryBit(p.Injection.Bit % timeBitLimit); ok {
				p.Injection.Applied = true
				return
			}
		}
	case SiteClock:
		m.FlipClockBit(p.Injection.Bit % timeBitLimit)
		p.Injection.Applied = true
	}
}

// ramTarget picks the memory flip's address: a deterministically drawn
// byte of a live (dirty) page, falling back to the test partition's data
// area when the run has not written anywhere yet (flips go where state
// can be observed; FlipBit marks the page dirty either way, so Reset
// scrubs the upset like any other store).
func (p *Plan) ramTarget(k *xm.Kernel, testPart int, m *sparc.Machine) (sparc.Addr, bool) {
	if pages := m.DirtyPages(); len(pages) > 0 {
		page := pages[p.pageDraw%uint64(len(pages))]
		return page + sparc.Addr(p.offDraw%sparc.DirtyPageSize), true
	}
	area, ok := k.PartitionDataArea(testPart)
	if !ok || area.Size == 0 {
		return 0, false
	}
	return area.Base + sparc.Addr(p.offDraw%uint64(area.Size)), true
}
