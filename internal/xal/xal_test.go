package xal

import (
	"testing"

	"xmrobust/internal/sparc"
	"xmrobust/internal/xm"
)

// harness boots a single-partition system hosting fn as its program body
// and runs one major frame.
func harness(t *testing.T, fn func(c *Ctx)) *xm.Kernel {
	t.Helper()
	area := sparc.Region{Name: "data", Base: 0x40100000, Size: 0x10000, Perm: sparc.PermRW}
	cfg := xm.Config{
		Name: "xal-test",
		Partitions: []xm.PartitionConfig{{
			ID: 0, Name: "XAL", System: true,
			MemoryAreas: []sparc.Region{area},
		}},
		Plans: []xm.PlanConfig{{ID: 0, MajorFrame: 100000, Slots: []xm.SlotConfig{
			{PartitionID: 0, Start: 0, Duration: 80000},
		}}},
		Channels: []xm.ChannelConfig{
			{Name: "loop", Type: xm.SamplingChannel, MaxMsgSize: 32, Source: 0, Destination: 0},
			{Name: "q", Type: xm.QueuingChannel, MaxMsgSize: 16, MaxNoMsgs: 2, Source: 0, Destination: 0},
		},
	}
	k, err := xm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	if err := k.AttachProgram(0, prog(func(env xm.Env) bool {
		if done {
			return false
		}
		done = true
		fn(New(env, area))
		return false
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	return k
}

type prog func(env xm.Env) bool

func (p prog) Boot(env xm.Env)      {}
func (p prog) Step(env xm.Env) bool { return p(env) }

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	harness(t, func(c *Ctx) {
		a := c.Alloc(3)
		b := c.Alloc(5)
		if a == 0 || b == 0 {
			t.Error("alloc failed")
		}
		if uint32(a)%8 != 0 || uint32(b)%8 != 0 {
			t.Errorf("allocations not 8-aligned: %#x %#x", a, b)
		}
		if b <= a {
			t.Error("allocator not monotonic")
		}
		// Exhaust the heap (upper half of a 64 KiB area = 32 KiB).
		if c.Alloc(0x8000) != 0 {
			t.Error("over-allocation succeeded")
		}
		c.ResetHeap()
		if c.Alloc(0x4000) == 0 {
			t.Error("allocation after ResetHeap failed")
		}
	})
}

func TestGetTimeAndSetTimer(t *testing.T) {
	harness(t, func(c *Ctx) {
		hw, rc := c.GetTime(xm.HwClock)
		if rc != xm.OK || hw < 0 {
			t.Errorf("GetTime(hw) = %d %v", hw, rc)
		}
		ex, rc := c.GetTime(xm.ExecClock)
		if rc != xm.OK || ex <= 0 {
			t.Errorf("GetTime(exec) = %d %v", ex, rc)
		}
		if _, rc := c.GetTime(7); rc != xm.InvalidParam {
			t.Errorf("GetTime(7) = %v", rc)
		}
		if rc := c.SetTimer(xm.HwClock, hw+5000, 0); rc != xm.OK {
			t.Errorf("SetTimer = %v", rc)
		}
	})
}

func TestPrintReachesConsole(t *testing.T) {
	k := harness(t, func(c *Ctx) {
		if rc := c.Printf("hello %d\n", 42); rc <= 0 {
			t.Errorf("Printf = %v", rc)
		}
		if rc := c.Print(""); rc != xm.NoAction {
			t.Errorf("empty Print = %v", rc)
		}
	})
	if got := k.Machine().UART().String(); got != "hello 42\n" {
		t.Fatalf("console = %q", got)
	}
}

func TestSamplingPortLoopback(t *testing.T) {
	harness(t, func(c *Ctx) {
		src, rc := c.CreateSamplingPort("loop", 32, xm.SourcePort)
		if rc != xm.OK {
			t.Fatalf("create source: %v", rc)
		}
		dst, rc := c.CreateSamplingPort("loop", 32, xm.DestinationPort)
		if rc != xm.OK {
			t.Fatalf("create dest: %v", rc)
		}
		if rc := src.WriteSampling([]byte("ping")); rc != xm.OK {
			t.Fatalf("write: %v", rc)
		}
		msg, rc := dst.ReadSampling(32)
		if rc != xm.OK || string(msg) != "ping" {
			t.Fatalf("read = %q %v", msg, rc)
		}
		if rc := dst.Close(); rc != xm.OK {
			t.Fatalf("close: %v", rc)
		}
	})
}

func TestQueuingPortLoopback(t *testing.T) {
	harness(t, func(c *Ctx) {
		src, rc := c.CreateQueuingPort("q", 2, 16, xm.SourcePort)
		if rc != xm.OK {
			t.Fatalf("create source: %v", rc)
		}
		dst, rc := c.CreateQueuingPort("q", 2, 16, xm.DestinationPort)
		if rc != xm.OK {
			t.Fatalf("create dest: %v", rc)
		}
		if rc := src.Send([]byte("a")); rc != xm.OK {
			t.Fatalf("send: %v", rc)
		}
		if rc := src.Send([]byte("b")); rc != xm.OK {
			t.Fatalf("send: %v", rc)
		}
		if rc := src.Send([]byte("c")); rc != xm.NotAvailable {
			t.Fatalf("send to full = %v", rc)
		}
		msg, rc := dst.Receive(16)
		if rc != xm.OK || string(msg) != "a" {
			t.Fatalf("receive = %q %v (FIFO)", msg, rc)
		}
	})
}

func TestCreatePortErrors(t *testing.T) {
	harness(t, func(c *Ctx) {
		if _, rc := c.CreateSamplingPort("nosuch", 32, xm.SourcePort); rc != xm.InvalidConfig {
			t.Errorf("unknown channel = %v", rc)
		}
		if _, rc := c.CreateSamplingPort("loop", 16, xm.SourcePort); rc != xm.InvalidConfig {
			t.Errorf("size mismatch = %v", rc)
		}
	})
}

func TestReadHMAndPartitionStatus(t *testing.T) {
	harness(t, func(c *Ctx) {
		if _, rc := c.ReadHM(0); rc != xm.NoAction {
			t.Errorf("ReadHM(0) = %v", rc)
		}
		if _, rc := c.ReadHM(4); rc != xm.NoAction {
			t.Errorf("ReadHM on empty log = %v", rc)
		}
		st, rc := c.GetPartitionStatus(0)
		if rc != xm.OK {
			t.Fatalf("GetPartitionStatus = %v", rc)
		}
		if st.ID != 0 || st.State != xm.PStateNormal || !st.System {
			t.Errorf("status = %+v", st)
		}
		if _, rc := c.GetPartitionStatus(9); rc != xm.InvalidParam {
			t.Errorf("bad id = %v", rc)
		}
	})
}

func TestTraceEventBinding(t *testing.T) {
	harness(t, func(c *Ctx) {
		var payload [16]byte
		copy(payload[:], "trace-me")
		if rc := c.TraceEvent(1, payload); rc != xm.OK {
			t.Errorf("TraceEvent = %v", rc)
		}
		if rc := c.TraceEvent(0, payload); rc != xm.NoAction {
			t.Errorf("TraceEvent(0) = %v", rc)
		}
	})
}

func TestResetPartitionBinding(t *testing.T) {
	k := harness(t, func(c *Ctx) {
		if rc := c.ResetPartition(0, xm.WarmReset); rc != xm.OK {
			t.Errorf("ResetPartition = %v", rc)
		}
		t.Error("control must not return after resetting oneself")
	})
	st, _ := k.PartitionStatus(0)
	if st.BootCount != 2 {
		t.Fatalf("BootCount = %d, want 2", st.BootCount)
	}
}
