// Package xal is the guest-side runtime partition code is written against
// — the analogue of the XtratuM Abstraction Layer (XAL), the single-
// threaded C runtime the paper lists among the guest environments XM
// supports.
//
// It wraps the raw hypercall ABI (xm.Env) in typed bindings, provides a
// bump allocator over the partition's data area, and offers a console
// printf. Everything stays inside the partition's own address space; a
// buggy or malicious program can still attempt arbitrary addresses through
// the raw Env, which is exactly what the fault-injection harness does.
package xal

import (
	"encoding/binary"
	"fmt"

	"xmrobust/internal/sparc"
	"xmrobust/internal/xm"
)

// Ctx wraps the kernel-provided environment with the XAL conveniences.
type Ctx struct {
	Env xm.Env
	// ri and hc4 cache the environment's optional allocation-free
	// capabilities (nil when the Env does not provide them).
	ri  xm.ReaderInto
	hc4 xm.Hypercaller4
	// heap is the bump-allocation cursor inside the data area.
	heapBase sparc.Addr
	heapEnd  sparc.Addr
	heapCur  sparc.Addr
	// scratch backs fixed-size kernel-structure reads (status records,
	// clock values) and hmRaw the health-monitor drain, so steady-state
	// polling does not allocate.
	scratch [32]byte
	hmRaw   []byte
}

// New builds a XAL context over a raw environment. dataArea is the
// partition's writable area (from the configuration, or discovered with
// XM_get_partition_mmap); the allocator serves from its upper half so the
// lower half stays free for static program data.
func New(env xm.Env, dataArea sparc.Region) *Ctx {
	half := dataArea.Size / 2
	c := &Ctx{
		Env:      env,
		heapBase: dataArea.Base + sparc.Addr(half),
		heapEnd:  dataArea.Base + sparc.Addr(dataArea.Size),
		heapCur:  dataArea.Base + sparc.Addr(half),
	}
	c.ri, _ = env.(xm.ReaderInto)
	c.hc4, _ = env.(xm.Hypercaller4)
	return c
}

// hc issues a hypercall through the fixed-arity fast path when the
// environment has one; unused arguments are zero, which the dispatcher
// treats exactly like missing ones.
func (c *Ctx) hc(nr xm.Nr, a0, a1, a2, a3 uint64) xm.RetCode {
	if c.hc4 != nil {
		return c.hc4.Hypercall4(nr, a0, a1, a2, a3)
	}
	return c.Env.Hypercall(nr, a0, a1, a2, a3)
}

// readInto copies a kernel-written structure back out of guest memory
// into a caller-owned buffer, without allocating when the environment
// supports it.
func (c *Ctx) readInto(addr sparc.Addr, buf []byte) bool {
	if c.ri != nil {
		return c.ri.ReadInto(addr, buf)
	}
	b, ok := c.Env.Read(addr, uint32(len(buf)))
	if !ok {
		return false
	}
	copy(buf, b)
	return true
}

// ResetHeap rewinds the bump allocator. Long-running programs call it at
// the top of each processing cycle; buffers from earlier cycles are
// forgotten wholesale, which is the usual static-allocation discipline of
// single-threaded flight software.
func (c *Ctx) ResetHeap() { c.heapCur = c.heapBase }

// Alloc reserves size bytes in the data area, 8-byte aligned. It returns
// 0 when the heap is exhausted (the XAL has no free()).
func (c *Ctx) Alloc(size uint32) sparc.Addr {
	cur := (uint32(c.heapCur) + 7) &^ 7
	if uint64(cur)+uint64(size) > uint64(c.heapEnd) {
		return 0
	}
	c.heapCur = sparc.Addr(cur + size)
	return sparc.Addr(cur)
}

// AllocBytes allocates and initialises a guest buffer, returning its
// address (0 on exhaustion or write failure).
func (c *Ctx) AllocBytes(data []byte) sparc.Addr {
	addr := c.Alloc(uint32(len(data)))
	if addr == 0 {
		return 0
	}
	if !c.Env.Write(addr, data) {
		return 0
	}
	return addr
}

// AllocString allocates a NUL-terminated guest string. Short strings
// (port and plan names) stage through the context's scratch buffer, so
// the common create-port boot sequence does not allocate host memory.
func (c *Ctx) AllocString(s string) sparc.Addr {
	var buf []byte
	if len(s)+1 <= len(c.scratch) {
		buf = c.scratch[:len(s)+1]
	} else {
		buf = make([]byte, len(s)+1)
	}
	copy(buf, s)
	buf[len(s)] = 0
	return c.AllocBytes(buf)
}

// --- Time management -------------------------------------------------------

// GetTime reads one of the two kernel clocks.
func (c *Ctx) GetTime(clock uint32) (xm.Time, xm.RetCode) {
	ptr := c.Alloc(8)
	if ptr == 0 {
		return 0, xm.InvalidParam
	}
	rc := c.hc(xm.NrGetTime, uint64(clock), uint64(ptr), 0, 0)
	if rc != xm.OK {
		return 0, rc
	}
	if !c.readInto(ptr, c.scratch[:8]) {
		return 0, xm.InvalidParam
	}
	return xm.Time(binary.BigEndian.Uint64(c.scratch[:8])), xm.OK
}

// SetTimer arms the partition's timer on the given clock.
func (c *Ctx) SetTimer(clock uint32, absTime, interval xm.Time) xm.RetCode {
	return c.hc(xm.NrSetTimer, uint64(clock), uint64(absTime), uint64(interval), 0)
}

// --- Console ----------------------------------------------------------------

// Print writes a string to the hypervisor console.
func (c *Ctx) Print(s string) xm.RetCode {
	if s == "" {
		return xm.NoAction
	}
	buf := c.AllocBytes([]byte(s))
	if buf == 0 {
		return xm.InvalidParam
	}
	return c.hc(xm.NrWriteConsole, uint64(buf), uint64(len(s)), 0, 0)
}

// PrintBytes writes a byte slice to the hypervisor console without
// copying through a string — the allocation-free sibling of Print for
// programs that format into a reused buffer.
func (c *Ctx) PrintBytes(b []byte) xm.RetCode {
	if len(b) == 0 {
		return xm.NoAction
	}
	buf := c.AllocBytes(b)
	if buf == 0 {
		return xm.InvalidParam
	}
	return c.hc(xm.NrWriteConsole, uint64(buf), uint64(len(b)), 0, 0)
}

// Printf formats and writes to the hypervisor console.
func (c *Ctx) Printf(format string, args ...any) xm.RetCode {
	return c.Print(fmt.Sprintf(format, args...))
}

// --- IPC ---------------------------------------------------------------------

// Port is an open IPC port descriptor.
type Port struct {
	ctx *Ctx
	ID  int32
}

// CreateSamplingPort attaches to a sampling channel.
func (c *Ctx) CreateSamplingPort(name string, maxMsgSize, direction uint32) (*Port, xm.RetCode) {
	namePtr := c.AllocString(name)
	if namePtr == 0 {
		return nil, xm.InvalidParam
	}
	rc := c.hc(xm.NrCreateSamplingPort, uint64(namePtr), uint64(maxMsgSize), uint64(direction), 0)
	if rc < 0 {
		return nil, rc
	}
	return &Port{ctx: c, ID: int32(rc)}, xm.OK
}

// CreateQueuingPort attaches to a queuing channel.
func (c *Ctx) CreateQueuingPort(name string, maxNoMsgs, maxMsgSize, direction uint32) (*Port, xm.RetCode) {
	namePtr := c.AllocString(name)
	if namePtr == 0 {
		return nil, xm.InvalidParam
	}
	rc := c.hc(xm.NrCreateQueuingPort,
		uint64(namePtr), uint64(maxNoMsgs), uint64(maxMsgSize), uint64(direction))
	if rc < 0 {
		return nil, rc
	}
	return &Port{ctx: c, ID: int32(rc)}, xm.OK
}

// WriteSampling publishes a message on a sampling port.
func (p *Port) WriteSampling(msg []byte) xm.RetCode {
	buf := p.ctx.AllocBytes(msg)
	if buf == 0 {
		return xm.InvalidParam
	}
	return p.ctx.hc(xm.NrWriteSamplingMsg, uint64(uint32(p.ID)), uint64(buf), uint64(len(msg)), 0)
}

// ReadSampling reads the freshest message (nil, XM_NO_ACTION when none).
func (p *Port) ReadSampling(maxSize uint32) ([]byte, xm.RetCode) {
	b := make([]byte, maxSize)
	n, rc := p.ReadSamplingInto(b)
	if rc != xm.OK {
		return nil, rc
	}
	return b[:n], xm.OK
}

// ReadSamplingInto reads the freshest message into a caller-owned
// buffer, returning the number of bytes copied — the allocation-free
// sibling of ReadSampling. len(buf) is the requested maximum size.
func (p *Port) ReadSamplingInto(buf []byte) (int, xm.RetCode) {
	addr := p.ctx.Alloc(uint32(len(buf)))
	if addr == 0 {
		return 0, xm.InvalidParam
	}
	rc := p.ctx.hc(xm.NrReadSamplingMsg, uint64(uint32(p.ID)), uint64(addr), uint64(len(buf)), 0)
	if rc < 0 {
		return 0, rc
	}
	if !p.ctx.readInto(addr, buf[:uint32(rc)]) {
		return 0, xm.InvalidParam
	}
	return int(rc), xm.OK
}

// Send enqueues a message on a queuing port.
func (p *Port) Send(msg []byte) xm.RetCode {
	buf := p.ctx.AllocBytes(msg)
	if buf == 0 {
		return xm.InvalidParam
	}
	return p.ctx.hc(xm.NrSendQueuingMsg, uint64(uint32(p.ID)), uint64(buf), uint64(len(msg)), 0)
}

// Receive dequeues the oldest message (nil, XM_NO_ACTION when empty).
func (p *Port) Receive(maxSize uint32) ([]byte, xm.RetCode) {
	b := make([]byte, maxSize)
	n, rc := p.ReceiveInto(b)
	if rc != xm.OK {
		return nil, rc
	}
	return b[:n], xm.OK
}

// ReceiveInto dequeues the oldest message into a caller-owned buffer,
// returning the number of bytes copied — the allocation-free sibling of
// Receive. len(buf) is the requested maximum size.
func (p *Port) ReceiveInto(buf []byte) (int, xm.RetCode) {
	addr := p.ctx.Alloc(uint32(len(buf)))
	if addr == 0 {
		return 0, xm.InvalidParam
	}
	rc := p.ctx.hc(xm.NrReceiveQueuingMsg, uint64(uint32(p.ID)), uint64(addr), uint64(len(buf)), 0)
	if rc < 0 {
		return 0, rc
	}
	if !p.ctx.readInto(addr, buf[:uint32(rc)]) {
		return 0, xm.InvalidParam
	}
	return int(rc), xm.OK
}

// Close releases the port descriptor.
func (p *Port) Close() xm.RetCode {
	return p.ctx.hc(xm.NrClosePort, uint64(uint32(p.ID)), 0, 0, 0)
}

// --- Health monitoring & partition management (system partitions) -----------

// HMEntry is one decoded health-monitor record as read by XM_hm_read.
type HMEntry struct {
	Seq       uint32
	Event     xm.HMEvent
	Partition int32 // -1 for kernel scope
	Action    xm.HMAction
	Time      xm.Time
}

// hmEntrySize mirrors the kernel's guest serialisation (24 bytes).
const hmEntrySize = 24

// ReadHM drains up to max health-monitor entries.
func (c *Ctx) ReadHM(max uint32) ([]HMEntry, xm.RetCode) {
	if max == 0 {
		return nil, xm.NoAction
	}
	buf := c.Alloc(max * hmEntrySize)
	if buf == 0 {
		return nil, xm.InvalidParam
	}
	rc := c.hc(xm.NrHmRead, uint64(buf), uint64(max), 0, 0)
	if rc < 0 {
		return nil, rc
	}
	n := uint32(rc)
	if n == 0 {
		return nil, xm.OK
	}
	if uint32(cap(c.hmRaw)) < n*hmEntrySize {
		c.hmRaw = make([]byte, n*hmEntrySize)
	}
	raw := c.hmRaw[:n*hmEntrySize]
	if !c.readInto(buf, raw) {
		return nil, xm.InvalidParam
	}
	out := make([]HMEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		rec := raw[i*hmEntrySize:]
		out = append(out, HMEntry{
			Seq:       binary.BigEndian.Uint32(rec[0:4]),
			Event:     xm.HMEvent(binary.BigEndian.Uint32(rec[4:8])),
			Partition: int32(binary.BigEndian.Uint32(rec[8:12])),
			Action:    xm.HMAction(binary.BigEndian.Uint32(rec[12:16])),
			Time:      xm.Time(binary.BigEndian.Uint64(rec[16:24])),
		})
	}
	return out, xm.OK
}

// PartitionState is the decoded result of XM_get_partition_status.
type PartitionState struct {
	ID        uint32
	State     xm.PState
	BootCount uint32
	Pending   uint32
	ExecClock xm.Time
	System    bool
}

// GetPartitionStatus queries another partition's state (system partitions
// only).
func (c *Ctx) GetPartitionStatus(id int32) (PartitionState, xm.RetCode) {
	buf := c.Alloc(32)
	if buf == 0 {
		return PartitionState{}, xm.InvalidParam
	}
	rc := c.hc(xm.NrGetPartitionStatus, uint64(uint32(id)), uint64(buf), 0, 0)
	if rc != xm.OK {
		return PartitionState{}, rc
	}
	if !c.readInto(buf, c.scratch[:32]) {
		return PartitionState{}, xm.InvalidParam
	}
	b := c.scratch[:32]
	return PartitionState{
		ID:        binary.BigEndian.Uint32(b[0:4]),
		State:     xm.PState(binary.BigEndian.Uint32(b[4:8])),
		BootCount: binary.BigEndian.Uint32(b[8:12]),
		Pending:   binary.BigEndian.Uint32(b[12:16]),
		ExecClock: xm.Time(binary.BigEndian.Uint64(b[16:24])),
		System:    binary.BigEndian.Uint32(b[24:28]) == 1,
	}, xm.OK
}

// ResetPartition restarts another partition (system partitions only).
func (c *Ctx) ResetPartition(id int32, mode uint32) xm.RetCode {
	return c.hc(xm.NrResetPartition, uint64(uint32(id)), uint64(mode), 0, 0)
}

// TraceEvent stores a 16-byte trace record in the caller's stream.
func (c *Ctx) TraceEvent(bitmask uint32, payload [16]byte) xm.RetCode {
	buf := c.AllocBytes(payload[:])
	if buf == 0 {
		return xm.InvalidParam
	}
	return c.hc(xm.NrTraceEvent, uint64(bitmask), uint64(buf), 0, 0)
}
