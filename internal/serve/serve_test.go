package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"xmrobust/internal/campaign"
	"xmrobust/internal/inject"
	"xmrobust/internal/serve"
)

// newService starts a campaign service over httptest.
func newService(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// submit POSTs a submission and decodes the created status.
func submit(t *testing.T, base string, sub serve.Submission) serve.Status {
	t.Helper()
	st, code := trySubmit(t, base, sub)
	if code != http.StatusCreated {
		t.Fatalf("POST /v1/campaigns: status %d", code)
	}
	return st
}

func trySubmit(t *testing.T, base string, sub serve.Submission) (serve.Status, int) {
	t.Helper()
	body, _ := json.Marshal(sub)
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Status
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// getStatus fetches one campaign's status.
func getStatus(t *testing.T, base, id string) serve.Status {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET campaign %s: status %d", id, resp.StatusCode)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitFor polls the campaign until cond holds (fatal after 60s).
func waitFor(t *testing.T, base, id string, cond func(serve.Status) bool) serve.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, base, id)
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached the awaited condition (state %s, %d/%d)",
				id, st.State, st.Executed, st.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// readSSE consumes a Server-Sent Events body, invoking fn per event
// until fn returns false or the stream ends.
func readSSE(t *testing.T, r io.Reader, fn func(kind string, data []byte) bool) {
	t.Helper()
	br := bufio.NewReaderSize(r, 1<<20)
	var kind string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if !fn(kind, []byte(strings.TrimPrefix(line, "data: "))) {
				return
			}
		}
	}
}

// collectStream subscribes to a campaign's event stream and collects
// every record line (keyed by seq) until the end event.
func collectStream(t *testing.T, base, id string) (map[int][]byte, serve.Status) {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	records := map[int][]byte{}
	var last serve.Status
	ended := false
	readSSE(t, resp.Body, func(kind string, data []byte) bool {
		switch kind {
		case "record":
			var hdr struct {
				Seq int `json:"seq"`
			}
			if err := json.Unmarshal(data, &hdr); err != nil {
				t.Fatalf("record event is not a JSON record: %v\n%s", err, data)
			}
			if prev, dup := records[hdr.Seq]; dup && !bytes.Equal(prev, data) {
				t.Fatalf("seq %d delivered twice with different bytes", hdr.Seq)
			}
			records[hdr.Seq] = append([]byte(nil), data...)
		case "status":
			if err := json.Unmarshal(data, &last); err != nil {
				t.Fatal(err)
			}
		case "end":
			ended = true
			return false
		}
		return true
	})
	if !ended {
		t.Fatal("event stream closed without an end event")
	}
	return records, last
}

// mergeRecords renders collected stream records as the campaign-order
// JSON Lines log.
func mergeRecords(records map[int][]byte) []byte {
	seqs := make([]int, 0, len(records))
	for seq := range records {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	var buf bytes.Buffer
	for _, seq := range seqs {
		buf.Write(records[seq])
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// getLog fetches the merged campaign log over HTTP.
func getLog(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id + "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// libraryRun executes the same campaign through the engine directly and
// returns its merged log — the reference the HTTP path must match byte
// for byte.
func libraryRun(t *testing.T, opts campaign.Options, eo campaign.EngineOptions) []byte {
	t.Helper()
	dir := t.TempDir()
	plan, ropts, err := campaign.BuildPlan(opts)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := plan.(io.Closer); ok {
		defer c.Close()
	}
	eo.Options = ropts
	eo.ShardDir = dir
	eo.CheckpointPath = filepath.Join(dir, "checkpoint.jsonl")
	if _, err := campaign.StreamPlan(plan, eo, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := campaign.MergeShards(dir, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServiceStreamMatchesLibrary is the tentpole invariant: a
// fixed-seed inject:sim campaign submitted over HTTP, with an SSE
// subscriber attached mid-run, yields an event stream whose records —
// replayed ones and live ones alike — reassemble into exactly the
// merged log, which in turn is byte-identical to the library run.
func TestServiceStreamMatchesLibrary(t *testing.T) {
	_, ts := newService(t, serve.Config{})
	sub := serve.Submission{
		Plan: "rand:600", Target: "inject:sim", Seed: 7,
		Workers: 2, Codec: "raw", InjectRate: 0.5,
	}
	st := submit(t, ts.URL, sub)
	if st.State != serve.StateQueued && st.State != serve.StateRunning {
		t.Fatalf("fresh campaign in state %s", st.State)
	}
	if st.Total != 600 {
		t.Fatalf("campaign total %d, want 600", st.Total)
	}

	// Attach the subscriber mid-run when the pacing allows: some
	// records then arrive by shard replay, the rest live. (On a machine
	// fast enough to finish first, the stream is pure replay — the
	// byte-identity claim is the same.)
	waitFor(t, ts.URL, st.ID, func(s serve.Status) bool {
		return s.Executed > 0 || s.State.Terminal()
	})
	records, last := collectStream(t, ts.URL, st.ID)
	if last.State != serve.StateDone {
		t.Fatalf("campaign ended %s (%s)", last.State, last.Error)
	}
	if len(records) != 600 {
		t.Fatalf("stream delivered %d distinct records, want 600", len(records))
	}

	streamLog := mergeRecords(records)
	httpLog := getLog(t, ts.URL, st.ID)
	if !bytes.Equal(streamLog, httpLog) {
		t.Fatal("SSE stream records differ from the merged log")
	}
	refLog := libraryRun(t, campaign.Options{
		Plan: "rand:600", Target: "inject:sim", Seed: 7,
		Workers: 2, Inject: inject.Params{Rate: 0.5},
	}, campaign.EngineOptions{Codec: "raw"})
	if !bytes.Equal(httpLog, refLog) {
		t.Fatal("HTTP campaign log differs from the library run")
	}
}

// TestServiceCancelThenResume: DELETE mid-run cancels the campaign,
// leaving a checkpoint in the campaign directory from which an
// ordinary engine resume replays the balance — merged log
// byte-identical to an uninterrupted run.
func TestServiceCancelThenResume(t *testing.T) {
	_, ts := newService(t, serve.Config{})
	sub := serve.Submission{Plan: "rand:4000", Target: "sim", Seed: 11, Workers: 2}
	st := submit(t, ts.URL, sub)

	waitFor(t, ts.URL, st.ID, func(s serve.Status) bool { return s.Executed >= 20 })
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	final := waitFor(t, ts.URL, st.ID, func(s serve.Status) bool { return s.State.Terminal() })
	if final.State != serve.StateCanceled {
		t.Fatalf("cancelled campaign settled as %s (%s)", final.State, final.Error)
	}
	if final.Executed >= final.Total {
		t.Fatal("campaign ran to completion; DELETE cancelled nothing")
	}

	// Resume the service's campaign directory through the engine.
	opts := campaign.Options{Plan: "rand:4000", Target: "sim", Seed: 11, Workers: 2}
	plan, ropts, err := campaign.BuildPlan(opts)
	if err != nil {
		t.Fatal(err)
	}
	eo := campaign.EngineOptions{
		Options:        ropts,
		ShardDir:       final.Dir,
		CheckpointPath: filepath.Join(final.Dir, "checkpoint.jsonl"),
		Resume:         true,
	}
	stats, err := campaign.StreamPlan(plan, eo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped == 0 || stats.Executed == 0 {
		t.Fatalf("resume skipped %d / executed %d — the cancel left no usable checkpoint",
			stats.Skipped, stats.Executed)
	}
	var resumed bytes.Buffer
	if _, err := campaign.MergeShards(final.Dir, &resumed); err != nil {
		t.Fatal(err)
	}
	ref := libraryRun(t, opts, campaign.EngineOptions{})
	if !bytes.Equal(resumed.Bytes(), ref) {
		t.Fatal("cancelled-then-resumed merged log differs from the uninterrupted run")
	}
}

// TestServiceQueueLimit: a client past its live-campaign budget gets
// 429 until one of its campaigns settles.
func TestServiceQueueLimit(t *testing.T) {
	_, ts := newService(t, serve.Config{MaxPerClient: 1})
	sub := serve.Submission{Plan: "rand:50000", Target: "sim", Seed: 1, Workers: 2, Client: "ci"}
	st := submit(t, ts.URL, sub)

	if _, code := trySubmit(t, ts.URL, sub); code != http.StatusTooManyRequests {
		t.Fatalf("second live submission: status %d, want 429", code)
	}
	// Another client is unaffected by the first one's budget.
	other := sub
	other.Client = "someone-else"
	other.Plan = "rand:2"
	st2, code := trySubmit(t, ts.URL, other)
	if code != http.StatusCreated {
		t.Fatalf("other client's submission: status %d, want 201", code)
	}
	waitFor(t, ts.URL, st2.ID, func(s serve.Status) bool { return s.State.Terminal() })

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, ts.URL, st.ID, func(s serve.Status) bool { return s.State.Terminal() })
	// The slot freed: the same client may submit again.
	st3, code := trySubmit(t, ts.URL, serve.Submission{Plan: "rand:2", Target: "sim", Client: "ci"})
	if code != http.StatusCreated {
		t.Fatalf("post-settle submission: status %d, want 201", code)
	}
	waitFor(t, ts.URL, st3.ID, func(s serve.Status) bool { return s.State.Terminal() })
}

// TestServiceDrain: Shutdown cancels live campaigns (resumably) and
// refuses new submissions with 503.
func TestServiceDrain(t *testing.T) {
	s, ts := newService(t, serve.Config{})
	sub := serve.Submission{Plan: "rand:4000", Target: "sim", Seed: 3, Workers: 2}
	st := submit(t, ts.URL, sub)
	waitFor(t, ts.URL, st.ID, func(s serve.Status) bool { return s.Executed >= 10 })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	final := getStatus(t, ts.URL, st.ID)
	if final.State != serve.StateCanceled {
		t.Fatalf("drained campaign settled as %s", final.State)
	}
	if _, code := trySubmit(t, ts.URL, serve.Submission{Plan: "rand:2"}); code != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: status %d, want 503", code)
	}
}

// TestServiceValidation: bad specifications are 400 at submission.
func TestServiceValidation(t *testing.T) {
	_, ts := newService(t, serve.Config{})
	for _, sub := range []serve.Submission{
		{Plan: "bogus:plan"},
		{Target: "bogus"},
		{Codec: "bogus"},
		{Target: "inject:sim", InjectRate: 2},
	} {
		if _, code := trySubmit(t, ts.URL, sub); code != http.StatusBadRequest {
			t.Errorf("submission %+v: status %d, want 400", sub, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/c999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: status %d, want 404", resp.StatusCode)
	}
}
