// Package serve is the campaign service behind cmd/xmrobustd: it turns
// the invoke-and-wait library (pkg/xmrobust) into a long-running daemon
// that accepts campaign submissions over HTTP, executes them on a
// bounded executor over the shared machine pool, and streams per-test
// records and progress deltas live over Server-Sent Events.
//
// The service is a thin composition of existing seams, not a second
// engine: submissions validate through campaign.BuildPlan, execute
// through campaign.StreamPlan with a shard directory and checkpoint
// under the data directory (so a cancelled campaign resumes with the
// ordinary -resume tooling), and persist through the internal/store
// seam. The SSE stream is byte-consistent with the merged log: live
// records are the campaign-order record lines the merge produces, late
// subscribers replay the already-written records out of the shard
// files, and consumers that order by seq and drop duplicates hold the
// exact bytes of GET /v1/campaigns/{id}/log.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"xmrobust/internal/campaign"
	"xmrobust/internal/inject"
	"xmrobust/internal/obs"
	"xmrobust/internal/store"
	"xmrobust/internal/xm"
)

// State is a campaign's position in the service lifecycle.
type State string

// Campaign lifecycle states. Queued and Running are live (DELETE
// cancels them); the other three are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateCanceled State = "canceled"
	StateFailed   State = "failed"
)

// Terminal reports whether the state is final.
func (st State) Terminal() bool {
	return st == StateDone || st == StateCanceled || st == StateFailed
}

// Submission is the body of POST /v1/campaigns: the campaign-shaping
// subset of the library options. Zero values mean the library defaults
// (exhaustive plan, sim target, seed 0, json codec).
type Submission struct {
	// Plan selects the test-generation strategy ("exhaustive",
	// "pairwise", "rand:N", "feedback:N", ...).
	Plan string `json:"plan,omitempty"`
	// Target selects the execution backend ("sim", "phantom",
	// "diff:a,b", "inject:sim", ...).
	Target string `json:"target,omitempty"`
	// Seed feeds randomised plans and injection schedules.
	Seed int64 `json:"seed,omitempty"`
	// Codec selects the shard record codec ("json" or "raw").
	Codec string `json:"codec,omitempty"`
	// MAFs is the number of major frames per test (0: default).
	MAFs int `json:"mafs,omitempty"`
	// Workers is the engine parallelism (0: GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Shards is the shard-writer count (0: workers).
	Shards int `json:"shards,omitempty"`
	// Batch leases contiguous runs of tests per worker slot on batching
	// targets (0: unbatched; results identical either way).
	Batch int `json:"batch,omitempty"`
	// Limit stops dispatching after N tests (0: run everything); the
	// checkpoint makes the balance resumable.
	Limit int `json:"limit,omitempty"`
	// Stress pre-loads the system before injection (paper §V).
	Stress bool `json:"stress,omitempty"`
	// Patched tests the post-fault-removal kernel.
	Patched bool `json:"patched,omitempty"`
	// Coverage collects kernel edge coverage per test.
	Coverage bool `json:"coverage,omitempty"`
	// InjectRate and InjectSites parameterise the SEU schedule of
	// inject:* targets (rate in (0,1]; no sites: all).
	InjectRate  float64  `json:"inject_rate,omitempty"`
	InjectSites []string `json:"inject_sites,omitempty"`
	// Client identifies the submitter for the per-client queue limit
	// (empty: the connection's remote host).
	Client string `json:"client,omitempty"`
}

// Status is the service's view of one campaign — the body of
// GET /v1/campaigns/{id} and of SSE status events.
type Status struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Plan   string `json:"plan"`
	Target string `json:"target"`
	Seed   int64  `json:"seed"`
	Codec  string `json:"codec"`
	// Total is the campaign size; Executed ran in the service; Skipped
	// were restored from a checkpoint (always 0 today — the service
	// starts campaigns fresh; resume is the CLI's job).
	Total    int `json:"total"`
	Executed int `json:"executed"`
	Skipped  int `json:"skipped"`
	// Dir is the campaign's shard+checkpoint directory — the -stream
	// directory a cancelled campaign resumes from.
	Dir string `json:"dir"`
	// Client is the submitter identity the queue limit counted.
	Client string `json:"client,omitempty"`
	// Error carries the failure (state "failed") or cancellation cause.
	Error string `json:"error,omitempty"`
}

// Config parameterises the service.
type Config struct {
	// DataDir is where campaign directories (shards + checkpoint) are
	// created, one subdirectory per campaign ID. Required.
	DataDir string
	// MaxActive bounds concurrently executing campaigns (default 1):
	// queued submissions wait for a slot in submission order.
	MaxActive int
	// MaxPerClient bounds one client's live (queued + running)
	// campaigns (default 4); beyond it POST returns 429.
	MaxPerClient int
	// Obs is the observability handle the service mounts (/metrics,
	// /healthz, /progress, pprof) and threads through every campaign's
	// engine. Nil: a private handle is created.
	Obs *obs.Obs
	// Store is the persistence seam campaigns write through (nil: the
	// local filesystem).
	Store store.Store
	// Logf, when non-nil, receives service log lines.
	Logf func(format string, args ...any)
}

// Server owns the campaign lifecycle: submission, the bounded
// executor, cancellation, status, and the per-campaign event hubs. It
// serves HTTP through Handler and drains through Shutdown.
type Server struct {
	cfg Config
	obs *obs.Obs
	st  store.Store
	raw campaign.Codec // merged-log wire encoding for SSE records
	sem chan struct{}  // executor slots (MaxActive)
	wg  sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // submission order, for listing
	perClient map[string]int
	nextID    int
	draining  bool
}

// job is one submitted campaign.
type job struct {
	id     string
	dir    string
	client string
	sub    Submission
	opts   campaign.Options
	cancel context.CancelFunc
	ctx    context.Context
	hub    *hub
	done   chan struct{} // closed when the runner settles

	mu       sync.Mutex
	state    State
	errStr   string
	total    int
	executed int
	skipped  int
}

// New builds the service. The data directory is created on first
// campaign; existing campaign directories only advance the ID counter,
// so a restarted daemon never reuses an old campaign's directory.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("serve: Config.DataDir is required")
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 1
	}
	if cfg.MaxPerClient <= 0 {
		cfg.MaxPerClient = 4
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	if cfg.Store == nil {
		cfg.Store = store.Local()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	raw, err := campaign.NewCodec("raw")
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		obs:       cfg.Obs,
		st:        cfg.Store,
		raw:       raw,
		sem:       make(chan struct{}, cfg.MaxActive),
		jobs:      map[string]*job{},
		perClient: map[string]int{},
		nextID:    1,
	}
	// Prior daemon lifetimes left their campaign directories behind
	// (each holds a checkpoint); start numbering above them.
	if names, err := s.st.ListLogs(filepath.Join(cfg.DataDir, "c*", checkpointName)); err == nil {
		for _, name := range names {
			base := store.Base(name[:len(name)-len(checkpointName)-1])
			if n, err := strconv.Atoi(strings.TrimPrefix(base, "c")); err == nil && n >= s.nextID {
				s.nextID = n + 1
			}
		}
	}
	return s, nil
}

// checkpointName is the checkpoint file inside a campaign directory —
// the same name the xmfuzz -stream path uses, so `xmfuzz -stream
// <dir> -resume` continues a cancelled service campaign directly.
const checkpointName = "checkpoint.jsonl"

// submitError maps a refused submission onto its HTTP status.
type submitError struct {
	code int
	msg  string
}

func (e *submitError) Error() string { return e.msg }

// Submit validates and enqueues one campaign, returning its initial
// status. Refusals come back as *submitError: 400 for a bad
// specification, 429 past the client's queue limit, 503 while
// draining.
func (s *Server) Submit(sub Submission, client string) (Status, error) {
	if sub.Client != "" {
		client = sub.Client
	}
	if client == "" {
		client = "anonymous"
	}
	opts := campaign.Options{
		Plan:     sub.Plan,
		Target:   sub.Target,
		Seed:     sub.Seed,
		MAFs:     sub.MAFs,
		Workers:  sub.Workers,
		Stress:   sub.Stress,
		Coverage: sub.Coverage,
	}
	if sub.Patched {
		opts.Faults = xm.PatchedFaults()
	}
	if sub.InjectRate != 0 || len(sub.InjectSites) > 0 {
		// Negated form so NaN fails too (the library's WithInjection
		// check).
		if r := sub.InjectRate; !(r > 0 && r <= 1) {
			return Status{}, &submitError{400, fmt.Sprintf("injection rate %v outside (0, 1]", sub.InjectRate)}
		}
		opts.Inject = inject.Params{Rate: sub.InjectRate, Sites: sub.InjectSites}
	}
	if _, err := campaign.NewCodec(sub.Codec); err != nil {
		return Status{}, &submitError{400, err.Error()}
	}
	// Build the plan once up front so a bad spec (unknown plan or
	// target, malformed composite) is a 400 at submission, not a failed
	// campaign minutes later. The runner rebuilds it; plans are cheap
	// to construct and deterministic.
	plan, _, err := campaign.BuildPlan(opts)
	if err != nil {
		return Status{}, &submitError{400, err.Error()}
	}
	total := plan.Len()
	if c, ok := plan.(io.Closer); ok {
		c.Close()
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Status{}, &submitError{503, "service is draining"}
	}
	if s.perClient[client] >= s.cfg.MaxPerClient {
		s.mu.Unlock()
		return Status{}, &submitError{429, fmt.Sprintf("client %q already has %d live campaigns", client, s.perClient[client])}
	}
	id := fmt.Sprintf("c%06d", s.nextID)
	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:     id,
		dir:    filepath.Join(s.cfg.DataDir, id),
		client: client,
		sub:    sub,
		opts:   opts,
		cancel: cancel,
		ctx:    ctx,
		hub:    newHub(),
		done:   make(chan struct{}),
		state:  StateQueued,
		total:  total,
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.perClient[client]++
	s.wg.Add(1)
	s.mu.Unlock()

	s.cfg.Logf("campaign %s queued: plan=%q target=%q seed=%d total=%d client=%s",
		id, sub.Plan, sub.Target, sub.Seed, total, client)
	go s.run(j)
	return j.status(), nil
}

// run executes one campaign: wait for an executor slot, stream the
// plan through the engine with the SSE sink attached, settle the
// terminal state.
func (s *Server) run(j *job) {
	defer s.wg.Done()
	defer s.settle(j)

	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-j.ctx.Done():
		// Cancelled while queued: nothing ran, nothing was written.
		j.finish(StateCanceled, context.Cause(j.ctx).Error())
		return
	}
	if j.ctx.Err() != nil {
		j.finish(StateCanceled, context.Cause(j.ctx).Error())
		return
	}

	j.setState(StateRunning)
	j.hub.broadcast(event{kind: "status", data: mustJSON(j.status()), seq: -1})

	plan, ropts, err := campaign.BuildPlan(j.opts)
	if err != nil {
		j.finish(StateFailed, err.Error())
		return
	}
	if c, ok := plan.(io.Closer); ok {
		defer c.Close()
	}
	eo := campaign.EngineOptions{
		Options:        ropts,
		Ctx:            j.ctx,
		ShardDir:       j.dir,
		CheckpointPath: filepath.Join(j.dir, checkpointName),
		Codec:          j.sub.Codec,
		Shards:         j.sub.Shards,
		BatchSize:      j.sub.Batch,
		Limit:          j.sub.Limit,
		Store:          s.st,
		Obs:            s.obs,
	}
	// The sink runs on the engine's collector goroutine after the
	// record is shard-written and checkpoint-marked, so every record a
	// subscriber sees live is already durable — exactly what shard
	// replay will show a later subscriber.
	var scratch []byte
	sink := func(pos int, r campaign.Result) {
		rec := campaign.ToRecord(pos, r)
		line, encErr := s.raw.AppendEncode(scratch[:0], &rec)
		if encErr != nil {
			return
		}
		scratch = line
		j.mu.Lock()
		j.executed++
		done, total := j.executed+j.skipped, j.total
		j.mu.Unlock()
		j.hub.broadcast(event{kind: "record", data: append([]byte(nil), line...), seq: pos})
		j.hub.broadcast(event{kind: "progress",
			data: []byte(fmt.Sprintf(`{"done":%d,"total":%d}`, done, total)), seq: -1})
	}
	stats, err := campaign.StreamPlan(plan, eo, sink)
	j.mu.Lock()
	j.executed, j.skipped, j.total = stats.Executed, stats.Skipped, stats.Total
	j.mu.Unlock()
	switch {
	case err != nil && j.ctx.Err() != nil:
		// Shards are flushed and the checkpoint is durable: the
		// campaign directory resumes like any interrupted run.
		j.finish(StateCanceled, err.Error())
	case err != nil:
		j.finish(StateFailed, err.Error())
	default:
		j.finish(StateDone, "")
	}
}

// settle releases the job's per-client slot and logs the outcome.
func (s *Server) settle(j *job) {
	s.mu.Lock()
	s.perClient[j.client]--
	if s.perClient[j.client] <= 0 {
		delete(s.perClient, j.client)
	}
	s.mu.Unlock()
	st := j.status()
	s.cfg.Logf("campaign %s %s: executed=%d/%d %s", j.id, st.State, st.Executed, st.Total, st.Error)
}

// Cancel cancels a queued or running campaign. It reports false when
// the ID is unknown; a campaign already terminal is left untouched
// (the returned status says so).
func (s *Server) Cancel(id string) (Status, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return Status{}, false
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if !terminal {
		j.cancel()
	}
	return j.status(), true
}

// Get returns one campaign's status.
func (s *Server) Get(id string) (Status, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return Status{}, false
	}
	return j.status(), true
}

// List returns every campaign's status in submission order.
func (s *Server) List() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Get(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// MergedLog writes the campaign's merged JSON Lines log to w in
// campaign order — byte-identical to the library's merged log for the
// same submission. Mid-run it returns the durable prefix.
func (s *Server) MergedLog(id string, w io.Writer) (int, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return 0, fmt.Errorf("serve: unknown campaign %q", id)
	}
	return campaign.MergeShardsIn(s.st, j.dir, w)
}

// Shutdown drains the service: submissions start returning 503, every
// queued and running campaign is cancelled (running ones flush shards
// and checkpoint, staying resumable), and Shutdown returns when all
// runners have settled or ctx expires. SSE subscribers see the final
// status and end events before their streams close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- job state ----------------------------------------------------------

// status snapshots the job.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:       j.id,
		State:    j.state,
		Plan:     j.opts.Plan,
		Target:   j.opts.Target,
		Seed:     j.opts.Seed,
		Codec:    j.sub.Codec,
		Total:    j.total,
		Executed: j.executed,
		Skipped:  j.skipped,
		Dir:      j.dir,
		Client:   j.client,
		Error:    j.errStr,
	}
}

func (j *job) setState(st State) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// finish records the terminal state and ends the event stream: final
// status, then the end event, then the hub closes — subscribers drain
// both before their channels close.
func (j *job) finish(st State, errStr string) {
	j.mu.Lock()
	j.state = st
	j.errStr = errStr
	j.mu.Unlock()
	j.hub.broadcast(event{kind: "status", data: mustJSON(j.status()), seq: -1})
	j.hub.broadcast(event{kind: "end", data: endData(st, errStr), seq: -1})
	j.hub.close()
	close(j.done)
}
