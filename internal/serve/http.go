package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"

	"xmrobust/internal/campaign"
	"xmrobust/internal/obs"
)

// Handler returns the service's HTTP surface: the /v1/campaigns API
// plus the ops endpoints (/metrics, /healthz, /progress, /debug/pprof)
// mounted from the service's observability handle.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/log", s.handleLog)
	obs.Mount(mux, s.obs)
	return mux
}

// maxSubmissionBytes bounds a submission body; the JSON above is a few
// hundred bytes, so a megabyte is generous.
const maxSubmissionBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub Submission
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmissionBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad submission: %v", err))
		return
	}
	client := sub.Client
	if client == "" {
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			client = host
		} else {
			client = r.RemoteAddr
		}
	}
	st, err := s.Submit(sub, client)
	if err != nil {
		var se *submitError
		if errors.As(err, &se) {
			httpError(w, se.code, se.msg)
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/campaigns/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	switch {
	case !ok:
		httpError(w, http.StatusNotFound, "unknown campaign")
	case st.State.Terminal():
		// Nothing to cancel; report the settled state.
		writeJSON(w, http.StatusConflict, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		httpError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Errors past this point are mid-body; the bytes already written
	// are a valid log prefix, so there is nothing better to send.
	s.MergedLog(id, w)
}

// handleEvents is the SSE stream: an initial status event, a replay of
// every record already in the campaign's shard files, then the live
// feed. Subscription precedes the replay, and live records duplicated
// by the replay (or by engine-level lease re-issue) are dropped by seq,
// so a subscriber — however late it attaches — collects exactly the
// records of the merged log, byte for byte.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	sse, ok := newSSEWriter(w)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	ch := j.hub.subscribe()
	defer j.hub.unsubscribe(ch)

	if err := sse.send("status", mustJSON(j.status())); err != nil {
		return
	}
	// Replay the durable records. A campaign that has not started (or
	// wrote nothing yet) simply has no shards to list.
	seen := map[int]bool{}
	var buf []byte
	err := campaign.ScanShardsIn(s.st, j.dir, func(rec campaign.JSONRecord) error {
		if seen[rec.Seq] {
			return nil
		}
		seen[rec.Seq] = true
		line, err := s.raw.AppendEncode(buf[:0], &rec)
		if err != nil {
			return err
		}
		buf = line
		return sse.send("record", line)
	})
	if err != nil {
		return
	}
	// The live feed. The channel closes after the end event when the
	// campaign finishes, or without one when this subscriber lagged
	// past its buffer — then it is told to resubscribe (the replay
	// path makes reconnection lossless).
	for {
		select {
		case ev, open := <-ch:
			if !open {
				st := j.status()
				if st.State.Terminal() {
					sse.send("status", mustJSON(st))
					sse.send("end", endData(st.State, st.Error))
				} else {
					sse.send("end", endData("lagged", "subscriber fell behind; resubscribe to replay"))
				}
				return
			}
			if ev.seq >= 0 {
				if seen[ev.seq] {
					continue
				}
				seen[ev.seq] = true
			}
			if err := sse.send(ev.kind, ev.data); err != nil {
				return
			}
			if ev.kind == "end" {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// --- helpers ------------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// mustJSON marshals service-owned types whose encoding cannot fail.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// endData is the body of an SSE end event.
func endData[T ~string](state T, errStr string) []byte {
	return mustJSON(map[string]string{"state": string(state), "error": errStr})
}
