package serve

import (
	"bufio"
	"fmt"
	"net/http"
	"sync"
)

// event is one item of a campaign's live stream. Record events carry
// the campaign position (Seq >= 0) so subscribers replaying shard files
// can drop the live copies of records they already saw; every other
// kind carries Seq -1.
type event struct {
	kind string // "status", "record", "progress", "end"
	data []byte
	seq  int
}

// subscriber buffer: a consumer this many events behind the campaign is
// cut off (it resubscribes and replays from the shard files) rather
// than allowed to backpressure the engine's collector goroutine.
const subscriberBuffer = 4096

// hub fans a campaign's event stream out to its SSE subscribers.
// Broadcast never blocks: a subscriber whose buffer is full is dropped
// (its channel closes, and the handler tells it to resubscribe — the
// shard replay path makes reconnection lossless). After close,
// subscribe returns an already-closed channel, so late subscribers fall
// straight through to the replay-then-end path.
type hub struct {
	mu     sync.Mutex
	subs   map[chan event]bool
	closed bool
}

func newHub() *hub { return &hub{subs: map[chan event]bool{}} }

// subscribe registers a new subscriber channel. On a closed hub the
// returned channel is already closed.
func (h *hub) subscribe() chan event {
	ch := make(chan event, subscriberBuffer)
	h.mu.Lock()
	if h.closed {
		close(ch)
	} else {
		h.subs[ch] = true
	}
	h.mu.Unlock()
	return ch
}

// unsubscribe removes a subscriber (idempotent; safe after a drop).
func (h *hub) unsubscribe(ch chan event) {
	h.mu.Lock()
	if h.subs[ch] {
		delete(h.subs, ch)
		close(ch)
	}
	h.mu.Unlock()
}

// broadcast delivers ev to every subscriber, dropping any whose buffer
// is full.
func (h *hub) broadcast(ev event) {
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			delete(h.subs, ch)
			close(ch)
		}
	}
	h.mu.Unlock()
}

// close ends the stream: every subscriber channel closes after the
// events already buffered, and future subscribers get a closed channel.
func (h *hub) close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		for ch := range h.subs {
			delete(h.subs, ch)
			close(ch)
		}
	}
	h.mu.Unlock()
}

// sseWriter frames events as Server-Sent Events on one response.
// Event data is always a single line (campaign records never contain
// newlines), so each event is exactly "event: <kind>\ndata: <data>\n\n".
type sseWriter struct {
	bw    *bufio.Writer
	flush http.Flusher
}

func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	return &sseWriter{bw: bufio.NewWriter(w), flush: f}, true
}

// send writes one framed event and flushes it to the client.
func (w *sseWriter) send(kind string, data []byte) error {
	if _, err := fmt.Fprintf(w.bw, "event: %s\ndata: %s\n\n", kind, data); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.flush.Flush()
	return nil
}
