package xm

import (
	"testing"

	"xmrobust/internal/sparc"
)

func TestNewValidatesConfig(t *testing.T) {
	_, err := New(Config{Name: "empty"})
	if err == nil {
		t.Fatal("New accepted an empty config")
	}
}

func TestNewRejectsOverlappingWritableAreas(t *testing.T) {
	cfg := testConfig()
	cfg.Partitions[1].MemoryAreas[0].Base = tpUserBase + 0x1000 // overlap P0
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted overlapping writable areas (spatial separation)")
	}
}

func TestSchedulerRunsSlotsInOrder(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	var order []int
	for id := 0; id < 2; id++ {
		id := id
		if err := k.AttachProgram(id, progFunc(func(env Env) bool {
			order = append(order, env.PartitionID())
			return false
		})); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.RunMajorFrames(2); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1}
	if len(order) != len(want) {
		t.Fatalf("execution order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
	if st := k.Status(); st.MAFCount != 2 {
		t.Fatalf("MAFCount = %d, want 2", st.MAFCount)
	}
}

func TestSchedulerAdvancesVirtualTime(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	if err := k.RunMajorFrames(3); err != nil {
		t.Fatal(err)
	}
	if now := k.Machine().Now(); now != 3*250000 {
		t.Fatalf("machine time after 3 MAFs = %d, want 750000", now)
	}
}

func TestSlotBudgetLimitsSteps(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	steps := 0
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		steps++
		env.Compute(10000) // 10ms per step, 50ms slot
		return true
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	if steps < 4 || steps > 6 {
		t.Fatalf("steps in a 50ms slot at 10ms each = %d, want ~5", steps)
	}
}

func TestGuestComputeAccumulatesExecClock(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		env.Compute(1000)
		return false
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(2); err != nil {
		t.Fatal(err)
	}
	st, _ := k.PartitionStatus(0)
	// Two steps of ~1ms plus boot overhead.
	if st.ExecClock < 2000 || st.ExecClock > 3000 {
		t.Fatalf("ExecClock = %d, want ~2000-3000", st.ExecClock)
	}
	if st.BootCount != 1 {
		t.Fatalf("BootCount = %d, want 1", st.BootCount)
	}
}

func TestBootRunsOncePerIncarnation(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	boots, steps := 0, 0
	if err := k.AttachProgram(0, &bootProg{
		boot: func(env Env) { boots++ },
		step: func(env Env) bool { steps++; return false },
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(3); err != nil {
		t.Fatal(err)
	}
	if boots != 1 {
		t.Fatalf("boots = %d, want 1", boots)
	}
	if steps != 3 {
		t.Fatalf("steps = %d, want 3", steps)
	}
}

func TestGuestMemoryAccessWithinAreas(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	var readBack []byte
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		if !env.Write(tpUserBase+16, []byte{1, 2, 3, 4}) {
			t.Error("in-area write failed")
		}
		readBack, _ = env.Read(tpUserBase+16, 4)
		return false
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	if len(readBack) != 4 || readBack[0] != 1 || readBack[3] != 4 {
		t.Fatalf("readBack = %v", readBack)
	}
}

func TestSpatialViolationHaltsPartition(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		// P0 writes into P1's area: a spatial separation violation.
		env.Write(tpSystemBase, []byte{0xFF})
		t.Error("control returned to the guest after a spatial violation")
		return false
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	st, _ := k.PartitionStatus(0)
	if st.State != PStateHalted {
		t.Fatalf("partition state = %v, want HALTED", st.State)
	}
	if !hmHas(k, HMEvMemProtection) {
		t.Fatal("no XM_HM_EV_MEM_PROTECTION in the HM log")
	}
	// The victim partition's memory must be untouched.
	b, err := k.ReadGuest(1, tpSystemBase, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Fatal("spatial violation leaked a write into the victim partition")
	}
}

func TestHaltedPartitionGetsNoSlots(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	steps := 0
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		steps++
		env.Write(tpSystemBase, []byte{1}) // halts on first step
		return true
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(3); err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Fatalf("halted partition stepped %d times, want 1", steps)
	}
}

func TestHypercallCostCharged(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	calls := 0
	if err := k.AttachProgram(1, progFunc(func(env Env) bool {
		calls++
		env.Hypercall(NrSparcFlushRegWin)
		return calls < 3
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	st, _ := k.PartitionStatus(1)
	if st.ExecClock < 3*HypercallCost {
		t.Fatalf("ExecClock = %d, want >= %d", st.ExecClock, 3*HypercallCost)
	}
	if k.HypercallCount() != 3 {
		t.Fatalf("HypercallCount = %d, want 3", k.HypercallCount())
	}
}

func TestUnknownHypercall(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	res, err := runSystemCall(t, k, Nr(9999))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, UnknownHypercall)
}

func TestSystemOnlyHypercallFromNormalPartition(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	res, err := runCallFrom(t, k, 0, NrResetSystem, uint64(ColdReset))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, PermError)
	if st := k.Status(); st.ColdResets != 0 {
		t.Fatal("normal partition managed to reset the system")
	}
}

func TestHaltSystemStopsKernel(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	res, err := runSystemCall(t, k, NrHaltSystem)
	if err != ErrHalted {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if res.returned {
		t.Fatal("XM_halt_system returned to the guest")
	}
	if st := k.Status(); st.State != KStateHalted {
		t.Fatalf("kernel state = %v, want HALTED", st.State)
	}
}

func TestSystemResetRestartsPartitions(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	res, err := runSystemCall(t, k, NrResetSystem, uint64(ColdReset))
	if err != nil {
		t.Fatal(err)
	}
	if res.returned {
		t.Fatal("XM_reset_system returned to the caller")
	}
	st := k.Status()
	if st.ColdResets != 1 {
		t.Fatalf("ColdResets = %d, want 1", st.ColdResets)
	}
	// Partitions reboot on their next slot.
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	p0, _ := k.PartitionStatus(0)
	if p0.BootCount != 2 {
		t.Fatalf("P0 BootCount after system reset = %d, want 2", p0.BootCount)
	}
}

func TestWarmResetPreservesHMLog(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	// Generate an HM event first.
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		env.Write(0x50000000, []byte{1})
		return false
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	if len(k.HMEntries()) == 0 {
		t.Fatal("setup: no HM entries")
	}
	res, err := runSystemCall(t, k, NrResetSystem, uint64(WarmReset))
	if err != nil {
		t.Fatal(err)
	}
	if res.returned {
		t.Fatal("reset returned")
	}
	if len(k.HMEntries()) == 0 {
		t.Fatal("warm reset cleared the HM log; it must be preserved for post-mortem")
	}
	st := k.Status()
	if st.WarmResets != 1 || st.ColdResets != 0 {
		t.Fatalf("resets = cold %d warm %d, want 0/1", st.ColdResets, st.WarmResets)
	}
}

func TestColdResetClearsHMLog(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		env.Write(0x50000000, []byte{1})
		return false
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	if _, err := runSystemCall(t, k, NrResetSystem, uint64(ColdReset)); err != nil {
		t.Fatal(err)
	}
	if n := len(k.HMEntries()); n != 0 {
		t.Fatalf("cold reset left %d HM entries", n)
	}
}

func TestPlanSwitchTakesEffectAtFrameBoundary(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	base, _ := sysArea(k)
	res, err := runSystemCall(t, k, NrSwitchSchedPlan, 1, uint64(base))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, OK)
	// The previous plan id (0) must be in guest memory.
	b, err := k.ReadGuest(1, base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b[3] != 0 {
		t.Fatalf("prevPlanId = %v, want 0", b)
	}
	if k.Status().CurrentPlan != 1 {
		t.Fatalf("plan after frame boundary = %d, want 1", k.Status().CurrentPlan)
	}
}

func TestGuestStopDoesNotLeakPanics(t *testing.T) {
	// A program panicking with a non-guestStop value must crash the test,
	// not be swallowed. Here we check the inverse: normal runs never
	// panic outwards.
	k := newTestKernel(t, LegacyFaults())
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped the scheduler: %v", r)
		}
	}()
	if err := k.AttachProgram(1, progFunc(func(env Env) bool {
		env.Hypercall(NrSuspendSelf)
		return true
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(1); err != nil {
		t.Fatal(err)
	}
	st, _ := k.PartitionStatus(1)
	if st.State != PStateSuspended {
		t.Fatalf("state = %v, want SUSPENDED", st.State)
	}
}

func TestWriteGuestReadGuestRoundTrip(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	if err := k.WriteGuest(0, tpUserBase+64, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	b, err := k.ReadGuest(0, tpUserBase+64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "abc" {
		t.Fatalf("read back %q", b)
	}
	// Outside the partition's space must fail.
	if err := k.WriteGuest(0, tpSystemBase, []byte{1}); err == nil {
		t.Fatal("WriteGuest crossed partition boundaries")
	}
}

func TestPartitionDataArea(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	r, ok := k.PartitionDataArea(1)
	if !ok || r.Base != tpSystemBase || r.Size != tpAreaSize {
		t.Fatalf("data area = %v %v", r, ok)
	}
	if _, ok := k.PartitionDataArea(99); ok {
		t.Fatal("data area for unknown partition")
	}
}

func TestIdleSelfYieldsSlot(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	steps := 0
	if err := k.AttachProgram(1, progFunc(func(env Env) bool {
		steps++
		env.Hypercall(NrIdleSelf)
		t.Error("control returned after XM_idle_self within the slot")
		return true
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(2); err != nil {
		t.Fatal(err)
	}
	if steps != 2 {
		t.Fatalf("steps = %d, want 2 (one per slot)", steps)
	}
	st, _ := k.PartitionStatus(1)
	if st.State != PStateNormal {
		t.Fatalf("state = %v, want NORMAL (idle_self is per-slot)", st.State)
	}
}

func TestHMActionPartitionColdReset(t *testing.T) {
	cfg := testConfig()
	cfg.HMActions = map[HMEvent]HMAction{HMEvMemProtection: HMActColdResetPartition}
	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AttachProgram(0, progFunc(func(env Env) bool {
		env.Write(0x50000000, []byte{1})
		return false
	})); err != nil {
		t.Fatal(err)
	}
	if err := k.RunMajorFrames(2); err != nil {
		t.Fatal(err)
	}
	st, _ := k.PartitionStatus(0)
	if st.BootCount < 2 {
		t.Fatalf("BootCount = %d, want >= 2 (HM cold-reset action)", st.BootCount)
	}
}

func TestMachineOptionIsUsed(t *testing.T) {
	m := sparc.NewDefaultMachine()
	k, err := New(testConfig(), WithMachine(m))
	if err != nil {
		t.Fatal(err)
	}
	if k.Machine() != m {
		t.Fatal("WithMachine ignored")
	}
}
