package xm

import (
	"encoding/binary"

	"xmrobust/internal/sparc"
)

// guestEnv implements Env for the partition currently holding the CPU.
type guestEnv struct {
	k  *Kernel
	sc *slotCtx
}

func (e *guestEnv) PartitionID() int { return e.sc.p.ID() }

func (e *guestEnv) Now() Time { return e.k.machine.Now() }

func (e *guestEnv) SlotRemaining() Time { return e.sc.remaining() }

func (e *guestEnv) Compute(d Time) {
	if d > 0 {
		e.k.charge(d)
	}
}

// Hypercall traps into the kernel. After the service returns, machine time
// is synchronised and the consequences of the call are applied: if the
// calling partition is no longer running — it reset itself, the system is
// resetting, the hypervisor halted, or the simulator crashed — control does
// not return to the guest (modelled with the guestStop panic the scheduler
// absorbs).
func (e *guestEnv) Hypercall(nr Nr, args ...uint64) RetCode {
	k, p := e.k, e.sc.p
	ret := k.dispatch(p, nr, args)
	if err := k.sync(e.sc); err != nil {
		panic(guestStop{reason: err.Error()})
	}
	k.handleOverrun(e.sc)
	e.checkConsequences()
	return ret
}

// Hypercall4 is the fixed-arity fast path of Hypercall: identical
// semantics with exactly four arguments (the dispatcher zero-fills
// missing ones and ignores extras, so padding with zeros is free),
// without the variadic slice escaping to the heap on every call.
func (e *guestEnv) Hypercall4(nr Nr, a0, a1, a2, a3 uint64) RetCode {
	args := [4]uint64{a0, a1, a2, a3}
	k, p := e.k, e.sc.p
	ret := k.dispatch(p, nr, args[:])
	if err := k.sync(e.sc); err != nil {
		panic(guestStop{reason: err.Error()})
	}
	k.handleOverrun(e.sc)
	e.checkConsequences()
	return ret
}

// checkConsequences aborts guest execution when the world changed under it.
func (e *guestEnv) checkConsequences() {
	k, p := e.k, e.sc.p
	if crashed, why := k.machine.Crashed(); crashed {
		panic(guestStop{reason: "simulator crashed: " + why})
	}
	if k.state != KStateRunning {
		panic(guestStop{reason: "hypervisor halted"})
	}
	if k.pendingSysReset {
		panic(guestStop{reason: "system reset in progress"})
	}
	if p.state != PStateNormal {
		panic(guestStop{reason: "partition no longer running: " + p.state.String()})
	}
}

// Read copies size bytes out of the partition's address space. A spatial
// violation is reported to the health monitor (the guest performed an
// illegal access) and, if the configured action stopped the partition,
// control does not return.
func (e *guestEnv) Read(addr sparc.Addr, size uint32) ([]byte, bool) {
	k, p := e.k, e.sc.p
	if tr := p.space.Check(addr, size, sparc.PermRead); tr != nil {
		k.raiseHM(HMEvMemProtection, p, tr.String())
		e.checkConsequences()
		return nil, false
	}
	data, tr := k.machine.Read(addr, size)
	if tr != nil {
		k.raiseHM(HMEvMemProtection, p, tr.String())
		e.checkConsequences()
		return nil, false
	}
	return data, true
}

// ReadInto copies len(buf) bytes from the partition's address space into
// a caller-owned buffer — the allocation-free sibling of Read, surfaced
// to guests as the optional ReaderInto capability.
func (e *guestEnv) ReadInto(addr sparc.Addr, buf []byte) bool {
	k, p := e.k, e.sc.p
	if len(buf) == 0 {
		return true
	}
	if tr := p.space.Check(addr, uint32(len(buf)), sparc.PermRead); tr != nil {
		k.raiseHM(HMEvMemProtection, p, tr.String())
		e.checkConsequences()
		return false
	}
	if tr := k.machine.ReadInto(addr, buf); tr != nil {
		k.raiseHM(HMEvMemProtection, p, tr.String())
		e.checkConsequences()
		return false
	}
	return true
}

// Write copies data into the partition's address space, with the same
// spatial-violation semantics as Read.
func (e *guestEnv) Write(addr sparc.Addr, data []byte) bool {
	k, p := e.k, e.sc.p
	if tr := p.space.Check(addr, uint32(len(data)), sparc.PermWrite); tr != nil {
		k.raiseHM(HMEvMemProtection, p, tr.String())
		e.checkConsequences()
		return false
	}
	if tr := k.machine.Write(addr, data); tr != nil {
		k.raiseHM(HMEvMemProtection, p, tr.String())
		e.checkConsequences()
		return false
	}
	return true
}

// --- kernel-side guest memory accessors ---------------------------------
//
// Hypercall services use these to dereference guest pointers *with*
// validation against the caller's space; the seeded legacy paths that skip
// validation use the unchecked variants and take the consequences.

// copyFromGuest validates and reads size bytes at addr in p's space.
func (k *Kernel) copyFromGuest(p *Partition, addr sparc.Addr, size uint32) ([]byte, bool) {
	if size == 0 {
		return nil, true
	}
	if tr := p.space.Check(addr, size, sparc.PermRead); tr != nil {
		return nil, false
	}
	data, tr := k.machine.Read(addr, size)
	return data, tr == nil
}

// copyFromGuestInto validates and reads len(buf) bytes at addr in p's
// space into a caller-owned buffer, avoiding the per-call allocation of
// copyFromGuest on hot service paths.
func (k *Kernel) copyFromGuestInto(p *Partition, addr sparc.Addr, buf []byte) bool {
	if len(buf) == 0 {
		return true
	}
	if tr := p.space.Check(addr, uint32(len(buf)), sparc.PermRead); tr != nil {
		return false
	}
	return k.machine.ReadInto(addr, buf) == nil
}

// copyToGuest validates and writes data at addr in p's space.
func (k *Kernel) copyToGuest(p *Partition, addr sparc.Addr, data []byte) bool {
	if len(data) == 0 {
		return true
	}
	if tr := p.space.Check(addr, uint32(len(data)), sparc.PermWrite); tr != nil {
		return false
	}
	return k.machine.Write(addr, data) == nil
}

// guestWritable reports whether [addr, addr+size) is writable by p.
func (k *Kernel) guestWritable(p *Partition, addr sparc.Addr, size uint32) bool {
	return p.space.Check(addr, size, sparc.PermWrite) == nil
}

// guestReadable reports whether [addr, addr+size) is readable by p.
func (k *Kernel) guestReadable(p *Partition, addr sparc.Addr, size uint32) bool {
	return p.space.Check(addr, size, sparc.PermRead) == nil
}

// readGuestString reads a NUL-terminated string of at most max bytes
// into buf (usually a stack array resliced to zero length — every caller
// only compares the name, so nothing heap-allocates on this path). The
// fast path reads whole chunks when the caller's space admits them; the
// byte-wise fallback preserves the exact semantics of a byte-at-a-time
// probe — a string whose terminator lands before the first unreadable
// byte still succeeds.
func (k *Kernel) readGuestString(p *Partition, addr sparc.Addr, max uint32, buf []byte) ([]byte, bool) {
	var chunk [64]byte
	out := buf
	for i := uint32(0); i < max; {
		n := max - i
		if n > uint32(len(chunk)) {
			n = uint32(len(chunk))
		}
		a := addr + sparc.Addr(i)
		if p.space.Check(a, n, sparc.PermRead) == nil && k.machine.ReadInto(a, chunk[:n]) == nil {
			for j := uint32(0); j < n; j++ {
				if chunk[j] == 0 {
					return append(out, chunk[:j]...), true
				}
			}
			out = append(out, chunk[:n]...)
			i += n
			continue
		}
		// Chunk not fully readable: probe byte by byte so a terminator
		// before the faulting byte still counts.
		for ; i < max; i++ {
			b, ok := k.copyFromGuest(p, addr+sparc.Addr(i), 1)
			if !ok {
				return nil, false
			}
			if b[0] == 0 {
				return out, true
			}
			out = append(out, b[0])
		}
	}
	return nil, false // unterminated within max
}

// be32/be64 build big-endian encodings for guest-visible structures.
func be32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

func be64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// packWords concatenates big-endian words into one guest structure image.
func packWords(words ...uint32) []byte {
	out := make([]byte, 0, 4*len(words))
	for _, w := range words {
		out = append(out, be32(w)...)
	}
	return out
}
