package xm

import "xmrobust/internal/sparc"

// --- Trace Management -------------------------------------------------------
//
// Each partition owns a bounded trace stream. Normal partitions may only
// touch their own stream; system partitions may read any (that is how the
// FDIR partition of the testbed collects post-mortem data).

// traceEventSize is the guest-visible size of one trace event: a 16-byte
// opaque payload chosen by the partition.
const traceEventSize = 16

// traceCap bounds each partition's trace stream; older events are dropped
// and counted, like the real kernel's trace device.
const traceCap = 32

// traceEvent is one stored trace record.
type traceEvent struct {
	at      Time
	payload [traceEventSize]byte
}

// traceStream is the per-partition trace state.
type traceStream struct {
	events  []traceEvent
	cursor  int
	dropped uint32
}

func (s *traceStream) push(ev traceEvent) {
	if len(s.events) >= traceCap {
		copy(s.events, s.events[1:])
		s.events[len(s.events)-1] = ev
		s.dropped++
		if s.cursor > 0 {
			s.cursor--
		}
		return
	}
	s.events = append(s.events, ev)
}

// traceTarget validates a trace stream id against the caller's privilege.
func (k *Kernel) traceTarget(caller *Partition, id int32) (*Partition, RetCode) {
	if id < 0 || int(id) >= len(k.parts) {
		return nil, InvalidParam
	}
	if !caller.System() && int(id) != caller.ID() {
		return nil, PermError
	}
	return k.parts[id], OK
}

// hcTraceEvent implements XM_trace_event(bitmask, event*): stores one
// 16-byte event in the caller's stream if the bitmask selects an enabled
// trace class (bitmask 0 selects nothing and is a no-op).
func (k *Kernel) hcTraceEvent(caller *Partition, bitmask uint32, ptr sparc.Addr) RetCode {
	data, ok := k.copyFromGuest(caller, ptr, traceEventSize)
	if !ok {
		return InvalidParam
	}
	if bitmask == 0 {
		return NoAction
	}
	var ev traceEvent
	ev.at = k.machine.Now()
	copy(ev.payload[:], data)
	if len(caller.trace.events) >= traceCap {
		k.cov(NrTraceEvent, 0) // stream full: oldest event dropped
	}
	caller.trace.push(ev)
	return OK
}

// hcTraceRead implements XM_trace_read(id, event*): copies the event at
// stream id's cursor and advances it; XM_NO_ACTION at end of stream.
func (k *Kernel) hcTraceRead(caller *Partition, id int32, ptr sparc.Addr) RetCode {
	target, rc := k.traceTarget(caller, id)
	if rc != OK {
		return rc
	}
	if !k.guestWritable(caller, ptr, traceEventSize) {
		return InvalidParam
	}
	s := &target.trace
	if s.cursor >= len(s.events) {
		return NoAction
	}
	if !k.copyToGuest(caller, ptr, s.events[s.cursor].payload[:]) {
		return InvalidParam
	}
	s.cursor++
	return OK
}

// hcTraceSeek implements XM_trace_seek(id, offset, whence).
func (k *Kernel) hcTraceSeek(caller *Partition, id, offset int32, whence uint32) RetCode {
	target, rc := k.traceTarget(caller, id)
	if rc != OK {
		return rc
	}
	s := &target.trace
	var base int
	switch whence {
	case SeekSet:
		k.cov(NrTraceSeek, 0)
		base = 0
	case SeekCur:
		k.cov(NrTraceSeek, 1)
		base = s.cursor
	case SeekEnd:
		k.cov(NrTraceSeek, 2)
		base = len(s.events)
	default:
		return InvalidParam
	}
	pos := base + int(offset)
	if pos < 0 || pos > len(s.events) {
		return InvalidParam
	}
	s.cursor = pos
	return RetCode(pos)
}

// traceStatusSize is the guest-visible size of the trace status record.
const traceStatusSize = 16

// hcTraceStatus implements XM_trace_status(id, status*).
func (k *Kernel) hcTraceStatus(caller *Partition, id int32, ptr sparc.Addr) RetCode {
	target, rc := k.traceTarget(caller, id)
	if rc != OK {
		return rc
	}
	if !k.guestWritable(caller, ptr, traceStatusSize) {
		return InvalidParam
	}
	s := &target.trace
	img := packWords(uint32(len(s.events)), uint32(s.cursor), s.dropped, traceCap)
	if !k.copyToGuest(caller, ptr, img) {
		return InvalidParam
	}
	return OK
}

// hcTraceOpen implements XM_trace_open(id): validates the stream and
// returns its descriptor (the id itself).
func (k *Kernel) hcTraceOpen(caller *Partition, id int32) RetCode {
	if _, rc := k.traceTarget(caller, id); rc != OK {
		return rc
	}
	return RetCode(id)
}
