package xm

import "xmrobust/internal/sparc"

// --- Memory Management ----------------------------------------------------

// memoryCopyChunk is the granularity the copy loop charges time at.
const memoryCopyChunk = 256

// hcMemoryCopy implements XM_memory_copy(destAddr, srcAddr, size): a
// kernel-mediated copy between two ranges the *caller* is allowed to touch
// (its own areas, including read-only sources and shared regions).
//
// Every parameter is validated before a byte moves — the paper's campaign
// threw 991 datasets at this service and raised no issue, which is the
// behaviour reproduced here.
func (k *Kernel) hcMemoryCopy(caller *Partition, dst, src sparc.Addr, size uint32) RetCode {
	if size == 0 {
		return NoAction
	}
	if tr := caller.space.Check(src, size, sparc.PermRead); tr != nil {
		k.cov(NrMemoryCopy, 0) // source range rejected
		return InvalidParam
	}
	if tr := caller.space.Check(dst, size, sparc.PermWrite); tr != nil {
		k.cov(NrMemoryCopy, 1) // destination range rejected
		return InvalidParam
	}
	// Overlapping ranges are legal (memmove semantics): Machine.Read
	// snapshots the source before the write.
	data, tr := k.machine.Read(src, size)
	if tr != nil {
		return InvalidParam
	}
	if tr := k.machine.Write(dst, data); tr != nil {
		return InvalidParam
	}
	k.cov(NrMemoryCopy, 2) // bytes actually moved
	k.charge(Time(size/memoryCopyChunk) + 1)
	return OK
}

// hcUpdatePage32 implements XM_update_page32(pageAddr, value): a
// system-partition service that patches one word of a page the caller maps
// (real XtratuM uses it for para-virtualised page-table updates).
func (k *Kernel) hcUpdatePage32(caller *Partition, addr sparc.Addr, value uint32) RetCode {
	if uint32(addr)%4 != 0 {
		k.cov(NrUpdatePage32, 0) // misaligned page address
		return InvalidParam
	}
	if tr := caller.space.Check(addr, 4, sparc.PermWrite); tr != nil {
		k.cov(NrUpdatePage32, 1) // page outside the caller's areas
		return InvalidParam
	}
	if tr := k.machine.Write32(addr, value); tr != nil {
		return InvalidParam
	}
	return OK
}
