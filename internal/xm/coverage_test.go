package xm

import (
	"testing"

	"xmrobust/internal/cover"
)

// newCoveredKernel boots a test kernel with a coverage sink attached.
func newCoveredKernel(t *testing.T, faults FaultSet) (*Kernel, *cover.Map) {
	t.Helper()
	m := &cover.Map{}
	k, err := New(testConfig(), WithFaults(faults), WithCoverage(m))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return k, m
}

func TestCoverageDisabledByDefault(t *testing.T) {
	k := newTestKernel(t, LegacyFaults())
	if k.Coverage() != nil {
		t.Fatal("kernel has a coverage sink without WithCoverage")
	}
	res, err := runSystemCall(t, k, NrGetTime, uint64(HwClock), uint64(tpSystemBase))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, OK)
}

func TestCoverageRecordsDispatchEdges(t *testing.T) {
	k, m := newCoveredKernel(t, LegacyFaults())
	res, err := runSystemCall(t, k, NrGetTime, uint64(HwClock), uint64(tpSystemBase))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, OK)
	if !m.Has(CoverSiteDispatch(NrGetTime, OK)) {
		t.Error("missing (XM_get_time, OK) dispatch edge")
	}
	if !m.Has(CoverSiteSvc(NrGetTime, 0)) {
		t.Error("missing hw-clock service branch")
	}
	if m.Has(CoverSiteSvc(NrGetTime, 1)) {
		t.Error("exec-clock branch recorded for a hw-clock read")
	}
	// Distinct outcomes are distinct edges.
	before := m.Count()
	k2, m2 := newCoveredKernel(t, LegacyFaults())
	res, err = runSystemCall(t, k2, NrGetTime, 99, uint64(tpSystemBase))
	if err != nil {
		t.Fatal(err)
	}
	mustRet(t, res, InvalidParam)
	if !m2.Has(CoverSiteDispatch(NrGetTime, InvalidParam)) {
		t.Error("missing (XM_get_time, XM_INVALID_PARAM) edge")
	}
	if before == 0 {
		t.Error("coverage map empty after an instrumented run")
	}
}

func TestCoverageRecordsHMEdges(t *testing.T) {
	k, m := newCoveredKernel(t, LegacyFaults())
	// An unvalidated multicall batch walk traps in kernel context and
	// raises XM_HM_EV_MEM_PROTECTION attributed to XM_multicall.
	res, err := runSystemCall(t, k, NrMulticall, 0xDEAD0000, 0xDEAD0000+4*MulticallEntrySize)
	if err != nil {
		t.Fatal(err)
	}
	if res.returned {
		t.Fatalf("multicall batch trap returned %v to the guest", res.ret)
	}
	if !hmHas(k, HMEvMemProtection) {
		t.Fatal("no memory-protection HM event raised")
	}
	if !m.Has(CoverSiteHM(NrMulticall, HMEvMemProtection, HMActHaltPartition)) {
		t.Error("HM edge not attributed to XM_multicall")
	}
	if !m.Has(CoverSiteSvc(NrMulticall, 1)) {
		t.Error("missing batch-walk-trap service branch")
	}
}

func TestCoverageRecordsKernelLifecycle(t *testing.T) {
	k, m := newCoveredKernel(t, LegacyFaults())
	if _, err := runSystemCall(t, k, NrHaltSystem); err != ErrHalted {
		t.Fatalf("RunMajorFrames = %v, want ErrHalted", err)
	}
	if !m.Has(CoverSiteKernel(coverKernelHalt)) {
		t.Error("missing hypervisor-halt lifecycle edge")
	}
}

func TestCoverRetIndexBuckets(t *testing.T) {
	if coverRetIndex(OK) != 0 {
		t.Error("OK must map to 0")
	}
	if coverRetIndex(InvalidParam) == coverRetIndex(PermError) {
		t.Error("distinct error codes collide")
	}
	if coverRetIndex(RetCode(-1000)) != coverRetIndex(RetCode(-2000)) {
		t.Error("out-of-manual negatives must clamp to one bucket")
	}
	// Positive codes bucket by magnitude: small descriptors collapse less
	// than huge register images, and none escape 6 bits.
	if coverRetIndex(1) == coverRetIndex(100000) {
		t.Error("tiny and huge positive codes collide")
	}
	for _, r := range []RetCode{1, 2, 63, 1 << 30, -1, -100, 0} {
		if idx := coverRetIndex(r); idx > 63 {
			t.Errorf("coverRetIndex(%d) = %d, beyond 6 bits", r, idx)
		}
	}
}

func TestCoverSiteSpaces(t *testing.T) {
	// The four kinds must not collide and must stay inside cover.NumSites.
	sites := []uint32{
		CoverSiteDispatch(NrSetTimer, OK),
		CoverSiteHM(NrSetTimer, HMEvFatalError, HMActHaltHypervisor),
		CoverSiteSvc(NrSetTimer, 2),
		CoverSiteKernel(coverKernelTimerStorm),
	}
	seen := map[uint32]bool{}
	for _, s := range sites {
		if s >= cover.NumSites {
			t.Errorf("site %d outside the map", s)
		}
		if seen[s] {
			t.Errorf("site %d collides across kinds", s)
		}
		seen[s] = true
	}
}

func TestCoverageTimerStorm(t *testing.T) {
	k, m := newCoveredKernel(t, LegacyFaults())
	// TMR-1: a 1µs periodic hardware timer recurses the handler and halts
	// the hypervisor via HM.
	_, err := runSystemCall(t, k, NrSetTimer, uint64(HwClock), 1, 1)
	if err != ErrHalted {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if !m.Has(CoverSiteKernel(coverKernelTimerStorm)) {
		t.Error("missing timer-storm lifecycle edge")
	}
	if !m.Has(CoverSiteSvc(NrSetTimer, 2)) {
		t.Error("missing hw-clock arm branch")
	}
	if !m.Has(CoverSiteHM(0, HMEvFatalError, HMActHaltHypervisor)) {
		t.Error("timer-trap HM edge should attribute to nr 0 (outside dispatch)")
	}
}
