package xm

import "fmt"

// HMEvent identifies one class of irregular event the health monitor
// detects (paper §II: "fault monitor and handling mechanism").
type HMEvent int

// Health monitor events.
const (
	// HMEvMemProtection: a partition (or the kernel on a partition's
	// behalf) attempted an access outside the partition's areas.
	HMEvMemProtection HMEvent = iota
	// HMEvSchedOverrun: a partition overran its scheduling slot — a
	// temporal-separation violation.
	HMEvSchedOverrun
	// HMEvPartitionError: a partition-scope irregular event (unexpected
	// trap, bad self-call).
	HMEvPartitionError
	// HMEvFatalError: an unrecoverable kernel-scope error (e.g. kernel
	// stack overflow in the timer trap handler).
	HMEvFatalError
	// HMEvInternalError: a kernel invariant violation that is contained.
	HMEvInternalError
	// HMEvWatchdog: the kernel watchdog expired.
	HMEvWatchdog

	numHMEvents
)

var hmEventNames = [...]string{
	HMEvMemProtection:  "XM_HM_EV_MEM_PROTECTION",
	HMEvSchedOverrun:   "XM_HM_EV_SCHED_OVERRUN",
	HMEvPartitionError: "XM_HM_EV_PARTITION_ERROR",
	HMEvFatalError:     "XM_HM_EV_FATAL_ERROR",
	HMEvInternalError:  "XM_HM_EV_INTERNAL_ERROR",
	HMEvWatchdog:       "XM_HM_EV_WATCHDOG",
}

func (e HMEvent) String() string {
	if e >= 0 && int(e) < len(hmEventNames) {
		return hmEventNames[e]
	}
	return fmt.Sprintf("XM_HM_EV(%d)", int(e))
}

// HMAction is the configured reaction to a health-monitor event.
type HMAction int

// Health monitor actions.
const (
	HMActIgnore HMAction = iota
	HMActLog
	HMActSuspendPartition
	HMActHaltPartition
	HMActColdResetPartition
	HMActWarmResetPartition
	HMActHaltHypervisor
	HMActColdResetHypervisor
	HMActWarmResetHypervisor
	HMActPropagate // forward to the partition as a virtual trap
)

var hmActionNames = [...]string{
	HMActIgnore:              "XM_HM_AC_IGNORE",
	HMActLog:                 "XM_HM_AC_LOG",
	HMActSuspendPartition:    "XM_HM_AC_SUSPEND",
	HMActHaltPartition:       "XM_HM_AC_HALT",
	HMActColdResetPartition:  "XM_HM_AC_PARTITION_COLD_RESET",
	HMActWarmResetPartition:  "XM_HM_AC_PARTITION_WARM_RESET",
	HMActHaltHypervisor:      "XM_HM_AC_HYPERVISOR_HALT",
	HMActColdResetHypervisor: "XM_HM_AC_HYPERVISOR_COLD_RESET",
	HMActWarmResetHypervisor: "XM_HM_AC_HYPERVISOR_WARM_RESET",
	HMActPropagate:           "XM_HM_AC_PROPAGATE",
}

func (a HMAction) String() string {
	if a >= 0 && int(a) < len(hmActionNames) {
		return hmActionNames[a]
	}
	return fmt.Sprintf("XM_HM_AC(%d)", int(a))
}

// DefaultHMActions returns the health-monitor table of the EagleEye-style
// testbed: spatial violations halt the offending partition, temporal
// violations suspend it, kernel-fatal errors halt the hypervisor.
func DefaultHMActions() map[HMEvent]HMAction {
	return map[HMEvent]HMAction{
		HMEvMemProtection:  HMActHaltPartition,
		HMEvSchedOverrun:   HMActSuspendPartition,
		HMEvPartitionError: HMActLog,
		HMEvFatalError:     HMActHaltHypervisor,
		HMEvInternalError:  HMActLog,
		HMEvWatchdog:       HMActWarmResetHypervisor,
	}
}

// HMLogEntry is one record of the health monitor log. SystemScope marks
// kernel-scope events; otherwise PartitionID names the offender.
type HMLogEntry struct {
	Seq         uint32
	Time        Time
	Event       HMEvent
	Action      HMAction
	SystemScope bool
	PartitionID int
	Detail      string
}

func (e HMLogEntry) String() string {
	scope := fmt.Sprintf("P%d", e.PartitionID)
	if e.SystemScope {
		scope = "XM"
	}
	return fmt.Sprintf("#%d t=%dus %s %s -> %s: %s", e.Seq, e.Time, scope, e.Event, e.Action, e.Detail)
}

// hmLogCap is the capacity of the health-monitor event log. Real XtratuM
// keeps a small ring; overflow drops the oldest entries and counts them.
const hmLogCap = 64

// healthMonitor is the kernel-side fault monitoring and handling mechanism.
type healthMonitor struct {
	actions map[HMEvent]HMAction
	log     []HMLogEntry
	seq     uint32
	dropped uint32
	// readCursor is the position XM_hm_read/XM_hm_seek operate on.
	readCursor int
	// counters per event class, preserved across warm resets.
	counts [numHMEvents]uint32
}

func newHealthMonitor(overrides map[HMEvent]HMAction) *healthMonitor {
	actions := DefaultHMActions()
	for ev, ac := range overrides {
		actions[ev] = ac
	}
	return &healthMonitor{actions: actions}
}

// record logs an event and returns the configured action.
func (h *healthMonitor) record(now Time, ev HMEvent, systemScope bool, part int, detail string) HMAction {
	action, ok := h.actions[ev]
	if !ok {
		action = HMActLog
	}
	h.seq++
	if ev >= 0 && ev < numHMEvents {
		h.counts[ev]++
	}
	entry := HMLogEntry{
		Seq: h.seq, Time: now, Event: ev, Action: action,
		SystemScope: systemScope, PartitionID: part, Detail: detail,
	}
	if len(h.log) >= hmLogCap {
		copy(h.log, h.log[1:])
		h.log[len(h.log)-1] = entry
		h.dropped++
		if h.readCursor > 0 {
			h.readCursor--
		}
	} else {
		h.log = append(h.log, entry)
	}
	return action
}

// entries returns a copy of the current log.
func (h *healthMonitor) entries() []HMLogEntry {
	return append([]HMLogEntry(nil), h.log...)
}

// reset applies hypervisor-reset semantics to the log: a cold reset wipes
// all health-monitor history; a warm reset preserves the log and counters
// so a system partition can read them post-mortem after reboot.
func (h *healthMonitor) reset(cold bool) {
	if !cold {
		return
	}
	h.log = nil
	h.readCursor = 0
	h.seq = 0
	h.dropped = 0
	h.counts = [numHMEvents]uint32{}
}

// recycle returns the monitor to its as-constructed state for kernel
// reuse, keeping the log's capacity (the entries themselves are
// unreachable: entries() hands out copies). The action table survives —
// it is fixed at construction and never written afterwards.
func (h *healthMonitor) recycle() {
	h.log = h.log[:0]
	h.readCursor = 0
	h.seq = 0
	h.dropped = 0
	h.counts = [numHMEvents]uint32{}
}

// clearLog empties the log on behalf of XM_hm_reset (counters persist).
func (h *healthMonitor) clearLog() {
	h.log = nil
	h.readCursor = 0
}
