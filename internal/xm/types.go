// Package xm implements an XtratuM-like separation kernel for the simulated
// LEON3 machine in package sparc.
//
// The kernel provides the services the paper's Table III enumerates — 61
// hypercalls in 11 categories — together with the mechanisms of Section II:
// cyclic-schedule temporal partitioning, MMU-backed spatial partitioning,
// sampling/queuing inter-partition communication, and a health monitor that
// detects and handles irregular events.
//
// The robustness vulnerabilities the paper uncovered in XtratuM 3.x for
// LEON3 are faithfully seeded behind a FaultSet: with LegacyFaults (the
// default used for the reproduction campaign) the kernel exhibits the nine
// issues of paper §IV.C; with PatchedFaults it behaves as the revised kernel
// the XtratuM team shipped after the campaign.
package xm

import "xmrobust/internal/sparc"

// Time is virtual time in microseconds (an alias of the machine clock).
type Time = sparc.Time

// RetCode is the signed 32-bit hypercall return code (xm_s32_t). Values
// >= 0 are success (and, for the port services, carry a descriptor id);
// negative values are the error codes of the XM reference manual.
type RetCode int32

// Hypercall return codes.
const (
	OK               RetCode = 0
	NoAction         RetCode = -1
	UnknownHypercall RetCode = -2
	InvalidParam     RetCode = -3
	PermError        RetCode = -4
	InvalidConfig    RetCode = -5
	InvalidMode      RetCode = -6
	NotAvailable     RetCode = -7
	OpNotAllowed     RetCode = -8
)

var retNames = map[RetCode]string{
	OK:               "XM_OK",
	NoAction:         "XM_NO_ACTION",
	UnknownHypercall: "XM_UNKNOWN_HYPERCALL",
	InvalidParam:     "XM_INVALID_PARAM",
	PermError:        "XM_PERM_ERROR",
	InvalidConfig:    "XM_INVALID_CONFIG",
	InvalidMode:      "XM_INVALID_MODE",
	NotAvailable:     "XM_NOT_AVAILABLE",
	OpNotAllowed:     "XM_OP_NOT_ALLOWED",
}

// String renders the symbolic name of the return code; non-negative codes
// render as the descriptor/value they carry.
func (r RetCode) String() string {
	if n, ok := retNames[r]; ok {
		return n
	}
	if r > 0 {
		return "XM_OK+" + itoa(int64(r))
	}
	return "XM_ERR(" + itoa(int64(r)) + ")"
}

// itoa is a tiny strconv.FormatInt(…, 10) to keep fmt out of the hot path.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Reset modes for XM_reset_system and XM_reset_partition.
const (
	ColdReset uint32 = 0 // XM_COLD_RESET
	WarmReset uint32 = 1 // XM_WARM_RESET
)

// Clock identifiers for XM_get_time / XM_set_timer.
const (
	HwClock   uint32 = 0 // XM_HW_CLOCK: wall (machine) time
	ExecClock uint32 = 1 // XM_EXEC_CLOCK: partition execution time
)

// MinTimerInterval is the minimum timer interval the patched kernel
// accepts, per the fix the XM development team applied after the paper's
// TMR-1 finding ("XM_set_timer will now return XM_INVALID_PARAM for
// interval values under 50µs").
const MinTimerInterval Time = 50

// timerHandlerLatency is the virtual time the kernel's timer trap handler
// needs to dispatch one expiry. A periodic timer whose interval is below
// this latency has its next expiry already in the past when the handler
// re-arms it, so the handler re-enters before unwinding — the recursion
// behind the paper's TMR-1/TMR-2 findings.
const timerHandlerLatency Time = 4

// Port directions for the IPC services.
const (
	SourcePort      uint32 = 0 // XM_SOURCE_PORT
	DestinationPort uint32 = 1 // XM_DESTINATION_PORT
)

// Entity classes for XM_get_gid_by_name.
const (
	EntityPartition uint32 = 0
	EntityChannel   uint32 = 1
)

// Seek whence values for XM_hm_seek and XM_trace_seek.
const (
	SeekSet uint32 = 0
	SeekCur uint32 = 1
	SeekEnd uint32 = 2
)

// MulticallEntrySize is the size in bytes of one encoded hypercall record
// in an XM_multicall batch buffer: nr(u32), pad(u32), arg0(u32), arg1(u32).
const MulticallEntrySize = 16

// multicallEntryCost is the virtual time the kernel spends decoding and
// dispatching one batch entry (guest-memory fetch, unpack, dispatch table
// walk). It is what turns an unbounded batch into the temporal-isolation
// break of paper MSC-3: a batch spanning half the test partition's data
// area already needs more kernel time than one scheduling slot offers.
const multicallEntryCost Time = 30

// HypercallCost is the base virtual-time cost charged to the calling
// partition's slot for any hypercall.
const HypercallCost Time = 2

// DataType describes one row of the paper's Table I: an XM interface data
// type, its bit width and its ANSI C declaration.
type DataType struct {
	Name     string // XM basic type, e.g. "xm_u32_t"
	Extended string // XM extended aliases, "-" if none
	Bits     int
	C        string // ANSI C type
	Signed   bool
	Pointer  bool
}

// DataTypes returns the paper's Table I — the complete XM interface type
// inventory — plus the void* pointer pseudo-type used by the API spec.
// The slice is freshly allocated; callers may mutate it.
func DataTypes() []DataType {
	return []DataType{
		{Name: "xm_u8_t", Extended: "-", Bits: 8, C: "unsigned char"},
		{Name: "xm_s8_t", Extended: "-", Bits: 8, C: "signed char", Signed: true},
		{Name: "xm_u16_t", Extended: "-", Bits: 16, C: "unsigned short"},
		{Name: "xm_s16_t", Extended: "-", Bits: 16, C: "signed short", Signed: true},
		{Name: "xm_u32_t", Extended: "xmWord_t xmAddress_t xmIoAddress_t xmSize_t xmId_t", Bits: 32, C: "unsigned int"},
		{Name: "xm_s32_t", Extended: "xmSSize_t", Bits: 32, C: "signed int", Signed: true},
		{Name: "xm_u64_t", Extended: "-", Bits: 64, C: "unsigned long long"},
		{Name: "xm_s64_t", Extended: "xmTime_t", Bits: 64, C: "signed long long", Signed: true},
		{Name: "void*", Extended: "-", Bits: 32, C: "void *", Pointer: true},
	}
}
