package xm

// FaultSet selects which of the paper's nine §IV.C vulnerabilities are
// present in the kernel. Each field is named after the *check* the patched
// kernel performs; a false value means the check is missing, i.e. the
// vulnerability is live.
//
// The default for the reproduction campaign is LegacyFaults — the XtratuM
// 3.x behaviour the paper tested. PatchedFaults reflects the revisions the
// XM development team applied after the campaign.
type FaultSet struct {
	// ResetSystemModeCheck: when false, XM_reset_system decides cold/warm
	// from bit 0 of the mode word without validating the rest, so modes 2
	// and 16 cold-reset and mode 4294967295 warm-resets the kernel
	// (issues SYS-1..3). When true, modes other than 0/1 return
	// XM_INVALID_PARAM.
	ResetSystemModeCheck bool

	// TimerMinInterval: when false, XM_set_timer accepts intervals below
	// 50µs; the next expiry is always already in the past when the timer
	// handler re-arms, and the recursive handler overflows the kernel
	// stack (issue TMR-1 on the hardware clock) or escapes as a timer
	// trap that kills the simulator (issue TMR-2 on the execution clock).
	// When true, intervals in (0, 50µs) return XM_INVALID_PARAM.
	TimerMinInterval bool

	// TimerNegativeCheck: when false, XM_set_timer accepts negative
	// intervals and reports success (issue TMR-3). When true they return
	// XM_INVALID_PARAM.
	TimerNegativeCheck bool

	// MulticallRemoved: when true, XM_multicall returns
	// XM_OP_NOT_ALLOWED — the XM team's interim fix ("this service has
	// been temporarily removed"). When false the legacy implementation
	// runs: batch pointers are not validated (issues MSC-1/MSC-2) and the
	// batch length is not bounded against the remaining slot time
	// (issue MSC-3).
	MulticallRemoved bool
}

// LegacyFaults returns the fault set of the kernel version the paper
// tested: all nine vulnerabilities live.
func LegacyFaults() FaultSet { return FaultSet{} }

// PatchedFaults returns the fault set of the revised kernel: every check
// present, XM_multicall removed.
func PatchedFaults() FaultSet {
	return FaultSet{
		ResetSystemModeCheck: true,
		TimerMinInterval:     true,
		TimerNegativeCheck:   true,
		MulticallRemoved:     true,
	}
}

// Patched reports whether all checks are enabled.
func (f FaultSet) Patched() bool {
	return f.ResetSystemModeCheck && f.TimerMinInterval && f.TimerNegativeCheck && f.MulticallRemoved
}
